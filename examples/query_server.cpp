/// \file query_server.cpp
/// \brief The analyst side of the paper's workflow as a long-lived service:
/// compress a short "run" into one PTA1 archive, open it with
/// serve::QueryServer, and answer the queries Sec. V motivates — one
/// element, one fiber, a spatial sub-box, a time range — each reconstructed
/// on demand from the covering window models, never materializing a full
/// window. Queries can also be submitted asynchronously through the
/// server's bounded executor; the demo ends with a per-query trace
/// breakdown and the server's live stats_report().
///
///   ./query_server --ranks 2 --dim 24 --species 6 --windows 4 --window 3

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <future>
#include <numbers>

#include "core/st_hosvd.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "pario/archive_io.hpp"
#include "serve/query_server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace ptucker;

namespace {

/// Same toy field shape as streaming_compress: drifting Gaussian bursts.
double field_at(std::span<const std::size_t> idx, std::size_t dim,
                std::size_t species, std::size_t step) {
  const double x = static_cast<double>(idx[0]) / static_cast<double>(dim);
  const double y = static_cast<double>(idx[1]) / static_cast<double>(dim);
  const double t = 0.05 * static_cast<double>(step);
  const double s =
      static_cast<double>(idx[2] + 1) / static_cast<double>(species);
  const double cx = 0.5 + 0.3 * std::sin(2.0 * std::numbers::pi * (t + s));
  const double cy = 0.5 + 0.3 * std::cos(2.0 * std::numbers::pi * t * s);
  const double r2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
  return s * std::exp(-40.0 * r2) +
         0.1 * std::sin(2.0 * std::numbers::pi * (x + y) + t);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("query_server",
                       "serve element/fiber/subtensor/time-range queries "
                       "from a PTA1 archive");
  args.add_int("ranks", 2, "number of (thread) ranks for the archive build");
  args.add_int("dim", 24, "spatial extent (dim x dim grid)");
  args.add_int("species", 6, "number of species");
  args.add_int("windows", 4, "number of window models");
  args.add_int("window", 3, "timesteps per window");
  args.add_double("eps", 1e-4, "max normalized RMS error per window");
  args.add_string("archive", "", "PTA1 archive path (default: tmp)");
  args.parse(argc, argv);

  const int p = static_cast<int>(args.get_int("ranks"));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t species =
      static_cast<std::size_t>(args.get_int("species"));
  const std::size_t windows =
      static_cast<std::size_t>(args.get_int("windows"));
  const std::size_t window = static_cast<std::size_t>(args.get_int("window"));
  const tensor::Dims step_dims{dim, dim, species};

  namespace fs = std::filesystem;
  std::string archive = args.get_string("archive");
  const bool temp = archive.empty();
  if (temp) {
    const std::string dir =
        (fs::temp_directory_path() / "ptucker_query_server").string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    archive = dir + "/run.pta";
  }

  // Phase 1: compress the "run" window-by-window into one archive. This is
  // the producer side; everything after it is a single serving process.
  if (!fs::exists(archive)) {
    mps::run(p, [&](mps::Comm& comm) {
      std::vector<int> shape = dist::default_grid_shape(p, step_dims);
      shape.push_back(1);
      auto grid = dist::make_grid(comm, shape);
      pario::archive_create(archive, comm, step_dims, /*species_mode=*/-1);
      for (std::size_t w = 0; w < windows; ++w) {
        tensor::Dims dims = step_dims;
        dims.push_back(window);
        dist::DistTensor x(grid, dims);
        x.fill_global([&](std::span<const std::size_t> idx) {
          return field_at(idx, dim, species, w * window + idx.back());
        });
        core::SthosvdOptions opts;
        opts.epsilon = args.get_double("eps");
        core::TuckerTensor model = core::st_hosvd(x, opts).tucker;
        pario::archive_append_model(
            archive, w * window, opts.epsilon, model.core,
            std::span<const tensor::Matrix>(model.factors));
      }
    });
  }

  // Phase 2: open the archive and serve queries.
  serve::ServerOptions options;
  options.cache_capacity = 8;
  options.executor_threads = 2;
  serve::QueryServer server({archive}, options);

  std::printf("archive: %s\n", archive.c_str());
  std::printf("  steps per archived field: %llu, step dims %zu x %zu x %zu\n",
              static_cast<unsigned long long>(server.num_steps(0)), dim, dim,
              species);

  // One element: the value at (dim/2, dim/2, species 0) of step 1.
  const std::size_t mid[3] = {dim / 2, dim / 2, 0};
  std::printf("element (%zu, %zu, 0) @ step 1: %.6f (field %.6f)\n", mid[0],
              mid[1], server.element(0, 1, mid),
              field_at(mid, dim, species, 1));

  // One spatial fiber: vary mode 0 across the grid at fixed (y, species).
  const std::vector<double> xf = server.fiber(0, 1, /*mode=*/0, mid);
  std::printf("x-fiber @ step 1: %zu values, [%.4f, %.4f, %.4f, ...]\n",
              xf.size(), xf[0], xf[1], xf[2]);

  // The time fiber: one grid point's history across ALL archived steps —
  // this spans every window boundary in one call.
  const std::vector<double> tf =
      server.fiber(0, 0, static_cast<int>(step_dims.size()), mid);
  std::printf("time fiber @ (%zu, %zu, 0): %zu steps, first %.4f last %.4f\n",
              mid[0], mid[1], tf.size(), tf.front(), tf.back());

  // A spatial sub-box over a step range crossing a window boundary.
  serve::Request req;
  req.step_lo = window - 1;  // last step of window 0 ...
  req.step_hi = window + 2;  // ... through the second step of window 1
  req.box = {util::Range{0, dim / 2}, util::Range{dim / 4, dim / 2},
             util::Range{0, species}};
  const tensor::Tensor box = server.subtensor(req);
  std::printf("subtensor steps [%llu, %llu) box %zu x %zu x %zu: %zu values\n",
              static_cast<unsigned long long>(req.step_lo),
              static_cast<unsigned long long>(req.step_hi), dim / 2, dim / 4,
              species, box.size());

  // Async: overlap several queries through the bounded executor.
  std::vector<std::future<tensor::Tensor>> pending;
  for (std::uint64_t s = 0; s + 1 < server.num_steps(0); ++s) {
    serve::Request r;
    r.step_lo = s;
    r.step_hi = s + 1;
    pending.push_back(server.submit(std::move(r)));
  }
  double total = 0.0;
  for (auto& f : pending) total += f.get().data()[0];
  std::printf("executor: %zu async single-step queries done (sum %.4f)\n",
              pending.size(), total);

  // Per-query introspection: re-run the sub-box query traced. Every panel
  // it needs is now cached, so the breakdown shows the hit path.
  serve::QueryTrace qt;
  const tensor::Tensor traced = server.subtensor_traced(req, qt);
  PT_CHECK(traced.size() == box.size(),
           "traced query disagrees with the untraced one");
  std::printf(
      "traced query: %zu entries (%zu hit, %zu miss), %llu bytes loaded\n",
      qt.entries_touched, qt.cache_hits, qt.cache_misses,
      static_cast<unsigned long long>(qt.bytes_loaded));
  std::printf(
      "  route %llu us | load %llu us | reconstruct %llu us | "
      "denormalize %llu us | stitch %llu us | total %llu us\n",
      static_cast<unsigned long long>(qt.route_us),
      static_cast<unsigned long long>(qt.load_us),
      static_cast<unsigned long long>(qt.reconstruct_us),
      static_cast<unsigned long long>(qt.denormalize_us),
      static_cast<unsigned long long>(qt.stitch_us),
      static_cast<unsigned long long>(qt.total_us));

  // Live introspection: the whole stack (server, cache, executor, plus the
  // process-wide obs registry) in one text report.
  std::printf("--- stats_report ---\n%s", server.stats_report().c_str());

  if (temp) fs::remove_all(fs::path(archive).parent_path());
  return 0;
}
