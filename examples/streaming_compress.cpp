/// \file streaming_compress.cpp
/// \brief The paper's Sec. II in-situ scenario: a solver dumps one tensor
/// file per timestep; the compressor consumes them window-by-window as they
/// land on disk, never materializing the global space-time tensor anywhere.
///
/// Phase 1 ("the simulation") writes each step as a chunked PTB1 file —
/// every rank pwrites its own spatial block. Phase 2 streams windows of
/// steps back through core::StreamingCompressor (every rank preads its own
/// sub-blocks), normalizes per species, and appends every window's model to
/// ONE PTA1 archive — a single container covering the whole run, from which
/// tensor_reconstruct_tool --steps a:b reconstructs arbitrary time ranges.
/// The only inter-rank traffic on the whole IO path is barriers.
///
///   ./streaming_compress --ranks 4 --steps 12 --window 4 --eps 1e-3
///   ./streaming_compress --ranks 4 --steps 12 --window 0   # cost model
///
/// --window 0 lets the cost model pick the window size; --no_normalize
/// skips the per-species normalization (then the archived models
/// reconstruct the raw field and --check_eps comparisons are exact).

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numbers>

#include "core/streaming.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "obs/trace.hpp"
#include "pario/block_file.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ptucker;

namespace {

/// A toy time-evolving field: drifting Gaussian bursts per species plus a
/// slow global oscillation — combustion-surrogate-shaped, cheap to evaluate.
double field_at(std::span<const std::size_t> idx, std::size_t dim,
                std::size_t species, std::size_t step) {
  const double x = static_cast<double>(idx[0]) / static_cast<double>(dim);
  const double y = static_cast<double>(idx[1]) / static_cast<double>(dim);
  const double t = 0.05 * static_cast<double>(step);
  const double s = static_cast<double>(idx[2] + 1) /
                   static_cast<double>(species);
  const double cx = 0.5 + 0.3 * std::sin(2.0 * std::numbers::pi * (t + s));
  const double cy = 0.5 + 0.3 * std::cos(2.0 * std::numbers::pi * t * s);
  const double r2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
  return s * std::exp(-40.0 * r2) +
         0.1 * std::sin(2.0 * std::numbers::pi * (x + y) + t);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("streaming_compress",
                       "compress a simulation timestep-by-timestep into one "
                       "PTA1 archive");
  args.add_int("ranks", 4, "number of (thread) ranks");
  args.add_int("dim", 32, "spatial extent (dim x dim grid)");
  args.add_int("species", 8, "number of species");
  args.add_int("steps", 12, "number of timesteps to 'simulate'");
  args.add_int("window", 4,
               "timesteps compressed together (0 = cost-model choice)");
  args.add_double("eps", 1e-3, "max normalized RMS error per window");
  args.add_string("dir", "", "timestep directory (default: tmp)");
  args.add_string("archive", "",
                  "output PTA1 archive (default: <dir>/models.pta)");
  args.add_flag("no_normalize", "skip the per-species normalization");
  args.add_string("trace", "",
                  "write a chrome://tracing JSON of the run to this path");
  args.parse(argc, argv);

  const int p = static_cast<int>(args.get_int("ranks"));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t species =
      static_cast<std::size_t>(args.get_int("species"));
  const std::size_t steps = static_cast<std::size_t>(args.get_int("steps"));
  const std::size_t window =
      static_cast<std::size_t>(args.get_int("window"));
  PT_REQUIRE(window <= steps, "--window must be in [0, steps]");
  std::string dir = args.get_string("dir");
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "ptucker_steps").string();
  }
  std::filesystem::create_directories(dir);
  std::string archive = args.get_string("archive");
  if (archive.empty()) archive = dir + "/models.pta";

  const tensor::Dims step_dims{dim, dim, species};

  const std::string trace_path = args.get_string("trace");
  if (!trace_path.empty()) obs::TraceSession::start();

  mps::run(p, [&](mps::Comm& comm) {
    auto spatial_grid =
        dist::make_grid(comm, dist::default_grid_shape(p, step_dims));

    // Phase 1: the "solver" dumps one PTB1 file per step, rank-parallel.
    util::Timer dump_timer;
    for (std::size_t t = 0; t < steps; ++t) {
      dist::DistTensor field(spatial_grid, step_dims);
      field.fill_global([&](std::span<const std::size_t> idx) {
        return field_at(idx, dim, species, t);
      });
      char name[32];
      std::snprintf(name, sizeof(name), "step_%04zu.ptb", t);
      pario::write_dist_tensor(dir + "/" + name, field);
    }
    const double dump_s = dump_timer.seconds();

    // Phase 2: stream windows back and append each model to the archive.
    core::StreamingOptions opts;
    opts.sthosvd.epsilon = args.get_double("eps");
    opts.window = window;
    opts.species_mode = args.get_flag("no_normalize") ? -1 : 2;
    core::StreamingCompressor compressor(comm, dir, archive, opts);

    if (comm.rank() == 0) {
      std::printf("streaming %zu steps of", compressor.num_steps());
      for (std::size_t d : compressor.reader().step_dims()) {
        std::printf(" %zu", d);
      }
      std::printf(" (dumped in %.2fs), window %zu%s -> %s\n", dump_s,
                  compressor.window(),
                  window == 0 ? " (cost model)" : "", archive.c_str());
    }

    core::StreamingCompressor::WindowResult r;
    while (compressor.compress_next(&r)) {
      if (comm.rank() == 0) {
        std::printf(
            "  window [%3zu, %3zu): ratio %6.1fx, bound %.2e, %.2fs\n",
            r.step_first, r.step_first + r.step_count, r.compression_ratio,
            r.error_bound, r.seconds);
      }
    }
    if (comm.rank() == 0) {
      const pario::ArchiveReader reader(archive);
      std::printf(
          "archived %zu models covering steps [0, %llu) in one PTA1 "
          "container (%zu-slot table)\n",
          reader.entry_count(),
          static_cast<unsigned long long>(reader.step_end()),
          reader.entry_capacity());
    }
  });
  if (!trace_path.empty()) {
    obs::TraceSession::stop();
    obs::TraceSession::write_chrome_json(trace_path);
    std::printf("trace: %zu events -> %s\n",
                obs::TraceSession::events().size(), trace_path.c_str());
  }
  return 0;
}
