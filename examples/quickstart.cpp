/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the ptucker API.
///
/// Generates a noisy low-multilinear-rank tensor distributed over a 2x2x2
/// processor grid, compresses it with ST-HOSVD + HOOI at a relative error
/// target, reconstructs, and reports what the paper's pipeline reports:
/// reduced dimensions, compression ratio, and normalized errors.
///
///   ./quickstart [--ranks 8] [--eps 1e-3]

#include <cstdio>

#include "core/hooi.hpp"
#include "core/metrics.hpp"
#include "core/reconstruct.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("quickstart", "minimal ptucker compression example");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.add_double("eps", 1e-3, "relative error target");
  args.parse(argc, argv);

  const int p = static_cast<int>(args.get_int("ranks"));
  const double eps = args.get_double("eps");

  // The data: 60 x 60 x 60 with true multilinear rank (8, 6, 10) plus a
  // little white noise — a toy stand-in for simulation output.
  const tensor::Dims dims{60, 60, 60};
  const tensor::Dims true_ranks{8, 6, 10};

  mps::run(p, [&](mps::Comm& comm) {
    // 1. Build a processor grid (here: chosen automatically for P ranks).
    auto grid = dist::make_grid(comm, dist::default_grid_shape(p, dims));

    // 2. Each rank fills its own block of the global tensor.
    const dist::DistTensor x =
        data::make_low_rank(grid, dims, true_ranks, /*seed=*/7,
                            /*noise_level=*/1e-6);

    // 3. Compress: ST-HOSVD initialization + HOOI refinement.
    core::SthosvdOptions init;
    init.epsilon = eps;
    core::HooiOptions hooi_opts;
    hooi_opts.max_sweeps = 3;
    const core::HooiResult result = core::hooi(x, init, hooi_opts);

    // 4. Reconstruct and measure.
    const dist::DistTensor xt = core::reconstruct(result.tucker);
    const double err = core::normalized_error(x, xt);
    const double max_err = core::max_abs_error(x, xt);

    if (comm.rank() == 0) {
      const auto rd = result.tucker.core_dims();
      std::printf("quickstart: %zux%zux%zu tensor on %d ranks\n", dims[0],
                  dims[1], dims[2], p);
      std::printf("  target eps            : %.1e\n", eps);
      std::printf("  reduced dimensions    : %zu x %zu x %zu\n", rd[0], rd[1],
                  rd[2]);
      std::printf("  compression ratio     : %.1fx\n",
                  result.tucker.compression_ratio());
      std::printf("  normalized RMS error  : %.3e (after init %.3e)\n", err,
                  result.error_history.front());
      std::printf("  max abs element error : %.3e\n", max_err);
      std::printf("  HOOI sweeps           : %d\n", result.sweeps);
    }
  });
  return 0;
}
