/// \file tensor_reconstruct_tool.cpp
/// \brief File-to-file reconstruction utility: reads a compressed Tucker
/// model ("PTZ1"/legacy "PTKR") or a time-partitioned model archive
/// ("PTA1"), sniffed by magic, and writes a dense tensor file — the full
/// reconstruction, an arbitrary per-mode index range ("a:b" slices), or,
/// against an archive, an arbitrary global time range (--steps a:b) that
/// may span several archived window models. Output is "PTT1" by default or
/// the chunked "PTB1" container with --block_output (every rank writes its
/// own block). With --reference the tool also checks the normalized RMS
/// error — against the original tensor file for a single model, or against
/// the original step directory (per covered window) for an archive — used
/// by CI to verify the eq. 3 bound.
///
///   ./tensor_reconstruct_tool --model demo.ptz --output slice.ptt
///       --slices "0:48,10:20,0:36"
///   ./tensor_reconstruct_tool --model run.pta --steps 30:42
///       --output days.ptt --reference step_dir --check_eps 1e-3

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/reconstruct.hpp"
#include "core/streaming.hpp"
#include "core/tucker_io.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "obs/trace.hpp"
#include "pario/block_file.hpp"
#include "pario/model_io.hpp"
#include "pario/timestep_reader.hpp"
#include "tensor/tensor_io.hpp"
#include "util/cli.hpp"

using namespace ptucker;

namespace {

/// Parse a full unsigned decimal string; fails through PT_REQUIRE (naming
/// the offending text) on garbage, partial parses, or overflow instead of
/// letting stoull's bare exceptions escape.
std::uint64_t parse_u64(const std::string& text, const char* what) {
  std::uint64_t v = 0;
  std::size_t pos = 0;
  try {
    v = std::stoull(text, &pos);
  } catch (const std::logic_error&) {  // std::invalid_argument/out_of_range
    pos = std::string::npos;
  }
  PT_REQUIRE(!text.empty() && pos == text.size(),
             what << ": '" << text << "' is not an unsigned integer");
  return v;
}

/// Parse "lo:hi" into a pair; fails loudly on malformed input.
std::pair<std::uint64_t, std::uint64_t> parse_lo_hi(const std::string& text,
                                                    const char* what) {
  const auto colon = text.find(':');
  PT_REQUIRE(colon != std::string::npos,
             what << ": '" << text << "' must look like lo:hi");
  return {parse_u64(text.substr(0, colon), what),
          parse_u64(text.substr(colon + 1), what)};
}

/// Parse "a:b,c:d,..." into per-mode ranges; empty string = full tensor.
std::vector<util::Range> parse_slices(const std::string& text,
                                      const tensor::Dims& dims) {
  std::vector<util::Range> ranges;
  if (text.empty()) {
    for (std::size_t d : dims) ranges.push_back({0, d});
    return ranges;
  }
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const auto [lo, hi] = parse_lo_hi(part, "--slices");
    ranges.push_back({static_cast<std::size_t>(lo),
                      static_cast<std::size_t>(hi)});
  }
  PT_REQUIRE(ranges.size() == dims.size(),
             "need one lo:hi slice per mode (" << dims.size() << ")");
  for (std::size_t n = 0; n < dims.size(); ++n) {
    PT_REQUIRE(ranges[n].lo < ranges[n].hi && ranges[n].hi <= dims[n],
               "slice " << n << " out of range");
  }
  return ranges;
}

/// Normalized RMS error of the distributed slice vs the same ranges of a
/// reference tensor file: each rank preads only its own sub-block of the
/// reference, then two scalar all-reduces.
double error_vs_reference(const dist::DistTensor& slice,
                          const std::vector<util::Range>& slice_origin,
                          const std::string& reference_path) {
  const pario::BlockFile ref = pario::BlockFile::open(reference_path);
  std::vector<util::Range> mine(slice_origin.size());
  for (int n = 0; n < slice.order(); ++n) {
    const util::Range r = slice.mode_range(n);
    const std::size_t base = slice_origin[static_cast<std::size_t>(n)].lo;
    mine[static_cast<std::size_t>(n)] = {base + r.lo, base + r.hi};
  }
  const tensor::Tensor expect = ref.read_ranges(mine);
  PT_REQUIRE(expect.size() == slice.local().size(),
             "--reference dims do not cover the reconstructed slice");
  double diff_sq = 0.0;
  double ref_sq = 0.0;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const double d = slice.local()[i] - expect[i];
    diff_sq += d * d;
    ref_sq += expect[i] * expect[i];
  }
  diff_sq = mps::allreduce_scalar(slice.comm(), diff_sq);
  ref_sq = mps::allreduce_scalar(slice.comm(), ref_sq);
  return ref_sq > 0.0 ? std::sqrt(diff_sq / ref_sq) : std::sqrt(diff_sq);
}

/// Single-model reconstruction (PTZ1 / PTKR): the pre-archive flow.
int run_single_model(mps::Comm& comm, const util::ArgParser& args,
                     const std::string& model_path,
                     const std::string& output) {
  const int p = comm.size();
  // Grid order must match the model's order; PTZ1 headers are readable on
  // every rank, the legacy PTKR peek happens on root + broadcast.
  std::uint64_t order = 0;
  if (pario::is_ptz1(model_path)) {
    // Every rank peeks at the header itself: no broadcast needed.
    const pario::File f = pario::File::open_read(model_path);
    std::uint64_t fields[2] = {0, 0};  // version, order
    f.read_at(4, fields, sizeof(fields));
    PT_REQUIRE(fields[0] == 1 || fields[0] == 2,
               "unsupported PTZ1 version in " << model_path);
    order = fields[1];
  } else {
    if (comm.rank() == 0) {
      const pario::File f = pario::File::open_read(model_path);
      std::uint64_t fields[2] = {0, 0};
      f.read_at(4, fields, sizeof(fields));
      order = fields[1];
    }
    mps::broadcast(comm, std::span<std::uint64_t>(&order, 1), 0);
  }
  PT_REQUIRE(order >= 1 && order <= 64,
             "implausible model order " << order << " in " << model_path);
  std::vector<int> shape(order, 1);
  // Distribute ranks over the last mode by default (safe for any dims).
  shape[order - 1] = p;
  auto grid = dist::make_grid(comm, shape);

  const core::TuckerTensor model = core::load_tucker(model_path, grid);
  const tensor::Dims dims = model.data_dims();
  const auto ranges = parse_slices(args.get_string("slices"), dims);

  const dist::DistTensor slice = core::reconstruct_range(model, ranges);

  if (args.get_flag("block_output")) {
    pario::write_dist_tensor(output, slice);
  } else {
    const tensor::Tensor global = slice.gather(0);
    if (comm.rank() == 0) tensor::save_tensor(output, global);
  }
  if (comm.rank() == 0) {
    std::printf("reconstructed");
    for (const auto& r : ranges) std::printf(" %zu:%zu", r.lo, r.hi);
    std::printf(" (%zu elements) from %s -> %s%s\n",
                static_cast<std::size_t>(tensor::prod(slice.global_dims())),
                model_path.c_str(), output.c_str(),
                args.get_flag("block_output") ? " (PTB1)" : "");
  }

  int exit_code = 0;
  if (!args.get_string("reference").empty()) {
    const double err =
        error_vs_reference(slice, ranges, args.get_string("reference"));
    const double bound = args.get_double("check_eps");
    if (comm.rank() == 0) {
      std::printf("  error vs reference : %.3e", err);
      if (bound > 0.0) {
        std::printf(" (bound %.1e: %s)", bound,
                    err <= bound ? "OK" : "FAIL");
      }
      std::printf("\n");
      if (bound > 0.0 && err > bound) exit_code = 1;
    }
  }
  return exit_code;
}

/// Archive reconstruction (--steps a:b against a PTA1 container): maps the
/// time range onto the covering window models, stitches their partial
/// reconstructions, and (with --reference <step_dir>) checks the
/// normalized RMS error per covered window against the original dumps.
int run_archive(mps::Comm& comm, const util::ArgParser& args,
                const std::string& model_path, const std::string& output) {
  const std::string steps_text = args.get_string("steps");
  PT_REQUIRE(!steps_text.empty(),
             "a PTA1 archive needs --steps a:b (which global timesteps to "
             "reconstruct)");
  const auto [step_lo, step_hi] = parse_lo_hi(steps_text, "--steps");

  // Every rank parses the archive itself — no broadcast anywhere.
  const core::StreamingReconstructor recon(model_path);
  const tensor::Dims& sdims = recon.step_dims();
  const auto spatial = parse_slices(args.get_string("slices"), sdims);

  tensor::Dims spatial_sizes(sdims.size());
  for (std::size_t n = 0; n < sdims.size(); ++n) {
    spatial_sizes[n] = spatial[n].size();
  }
  std::vector<int> shape =
      dist::default_grid_shape(comm.size(), spatial_sizes);
  shape.push_back(1);  // time extent 1: stitching stays local
  auto grid = dist::make_grid(comm, shape);

  const std::vector<std::size_t> covered =
      recon.archive().covering(step_lo, step_hi);
  const dist::DistTensor slice =
      recon.reconstruct_steps(grid, step_lo, step_hi, spatial);

  if (args.get_flag("block_output")) {
    pario::write_dist_tensor(output, slice);
  } else {
    const tensor::Tensor global = slice.gather(0);
    if (comm.rank() == 0) tensor::save_tensor(output, global);
  }
  if (comm.rank() == 0) {
    std::printf("reconstructed steps %llu:%llu x",
                static_cast<unsigned long long>(step_lo),
                static_cast<unsigned long long>(step_hi));
    for (const auto& r : spatial) std::printf(" %zu:%zu", r.lo, r.hi);
    std::printf(" (%zu elements, %zu window models) from %s -> %s%s\n",
                static_cast<std::size_t>(tensor::prod(slice.global_dims())),
                covered.size(), model_path.c_str(), output.c_str(),
                args.get_flag("block_output") ? " (PTB1)" : "");
  }

  int exit_code = 0;
  if (!args.get_string("reference").empty()) {
    // --reference is the original step directory: check the normalized RMS
    // error of every covered window (the per-entry eq. 3 bound).
    const pario::TimestepReader ref(args.get_string("reference"));
    PT_REQUIRE(ref.step_dims() == sdims,
               "--reference step dims do not match the archive");
    std::vector<util::Range> mine(sdims.size());
    std::size_t slab = 1;
    for (std::size_t n = 0; n < sdims.size(); ++n) {
      const util::Range r = slice.mode_range(static_cast<int>(n));
      mine[n] = {spatial[n].lo + r.lo, spatial[n].lo + r.hi};
      slab *= r.size();
    }
    const double bound = args.get_double("check_eps");
    for (std::size_t e : covered) {
      const pario::ArchiveEntry& ent = recon.archive().entry(e);
      const std::uint64_t wlo = std::max(step_lo, ent.step_first);
      const std::uint64_t whi = std::min(step_hi, ent.step_end());
      double diff_sq = 0.0;
      double ref_sq = 0.0;
      for (std::uint64_t t = wlo; t < whi; ++t) {
        const tensor::Tensor expect = ref.read_step(t, mine);
        const double* got =
            slice.local().data() + (t - step_lo) * slab;
        for (std::size_t i = 0; i < expect.size(); ++i) {
          const double d = got[i] - expect[i];
          diff_sq += d * d;
          ref_sq += expect[i] * expect[i];
        }
      }
      diff_sq = mps::allreduce_scalar(comm, diff_sq);
      ref_sq = mps::allreduce_scalar(comm, ref_sq);
      const double err = ref_sq > 0.0 ? std::sqrt(diff_sq / ref_sq)
                                      : std::sqrt(diff_sq);
      if (comm.rank() == 0) {
        std::printf("  window [%3llu, %3llu) error vs reference : %.3e",
                    static_cast<unsigned long long>(wlo),
                    static_cast<unsigned long long>(whi), err);
        if (bound > 0.0) {
          std::printf(" (bound %.1e: %s)", bound,
                      err <= bound ? "OK" : "FAIL");
        }
        std::printf("\n");
        if (bound > 0.0 && err > bound) exit_code = 1;
      }
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("tensor_reconstruct_tool",
                       "reconstruct a tensor (or slice) from a Tucker model "
                       "or a PTA1 model archive");
  args.add_string("model", "",
                  "input model file (PTZ1/PTKR) or archive (PTA1)");
  args.add_string("output", "", "output tensor file");
  args.add_string("slices", "", "per-mode lo:hi ranges, e.g. 0:48,10:20,0:36"
                  " (spatial modes only when --steps is used)");
  args.add_string("steps", "",
                  "global timestep range a:b to reconstruct from a PTA1 "
                  "archive");
  args.add_flag("block_output", "write chunked PTB1 instead of PTT1");
  args.add_string("reference", "",
                  "original tensor file (single model) or step directory "
                  "(archive) to compare against");
  args.add_double("check_eps", 0.0,
                  "fail unless error vs --reference is <= this bound "
                  "(per covered window for an archive)");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.add_string("trace", "",
                  "write a chrome://tracing JSON of the run to this path");
  args.parse(argc, argv);

  const std::string model_path = args.get_string("model");
  const std::string output = args.get_string("output");
  PT_REQUIRE(!model_path.empty() && !output.empty(),
             "--model and --output are required");
  const int p = static_cast<int>(args.get_int("ranks"));

  const std::string trace_path = args.get_string("trace");
  if (!trace_path.empty()) obs::TraceSession::start();

  int exit_code = 0;
  mps::run(p, [&](mps::Comm& comm) {
    int code = 0;
    if (pario::is_pta1(model_path)) {
      code = run_archive(comm, args, model_path, output);
    } else {
      PT_REQUIRE(args.get_string("steps").empty(),
                 "--steps needs a PTA1 archive; " << model_path
                                                  << " is a single model");
      code = run_single_model(comm, args, model_path, output);
    }
    if (comm.rank() == 0) exit_code = code;
  });
  if (!trace_path.empty()) {
    obs::TraceSession::stop();
    obs::TraceSession::write_chrome_json(trace_path);
    std::printf("trace: %zu events -> %s\n",
                obs::TraceSession::events().size(), trace_path.c_str());
  }
  return exit_code;
}
