/// \file tensor_reconstruct_tool.cpp
/// \brief File-to-file reconstruction utility: reads a compressed Tucker
/// model ("PTKR") and writes a dense tensor file ("PTT1") — either the full
/// reconstruction or an arbitrary per-mode index range ("a:b" slices), the
/// paper's post-hoc analysis workflow.
///
///   ./tensor_reconstruct_tool --model demo.ptkr --output slice.ptt \
///       --slices "0:48,10:20,0:36"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/reconstruct.hpp"
#include "core/tucker_io.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "tensor/tensor_io.hpp"
#include "util/cli.hpp"

using namespace ptucker;

namespace {

/// Parse "a:b,c:d,..." into per-mode ranges; empty string = full tensor.
std::vector<util::Range> parse_slices(const std::string& text,
                                      const tensor::Dims& dims) {
  std::vector<util::Range> ranges;
  if (text.empty()) {
    for (std::size_t d : dims) ranges.push_back({0, d});
    return ranges;
  }
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const auto colon = part.find(':');
    PT_REQUIRE(colon != std::string::npos,
               "slice '" << part << "' must look like lo:hi");
    const std::size_t lo = std::stoull(part.substr(0, colon));
    const std::size_t hi = std::stoull(part.substr(colon + 1));
    ranges.push_back({lo, hi});
  }
  PT_REQUIRE(ranges.size() == dims.size(),
             "need one lo:hi slice per mode (" << dims.size() << ")");
  for (std::size_t n = 0; n < dims.size(); ++n) {
    PT_REQUIRE(ranges[n].lo < ranges[n].hi && ranges[n].hi <= dims[n],
               "slice " << n << " out of range");
  }
  return ranges;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("tensor_reconstruct_tool",
                       "reconstruct a tensor (or slice) from a Tucker model");
  args.add_string("model", "", "input model file (PTKR format)");
  args.add_string("output", "", "output tensor file (PTT1 format)");
  args.add_string("slices", "", "per-mode lo:hi ranges, e.g. 0:48,10:20,0:36");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.parse(argc, argv);

  const std::string model_path = args.get_string("model");
  const std::string output = args.get_string("output");
  PT_REQUIRE(!model_path.empty() && !output.empty(),
             "--model and --output are required");
  const int p = static_cast<int>(args.get_int("ranks"));

  mps::run(p, [&](mps::Comm& comm) {
    // Grid order must match the model's order; peek at the file on root.
    std::uint64_t order = 0;
    if (comm.rank() == 0) {
      std::ifstream is(model_path, std::ios::binary);
      PT_REQUIRE(is.good(), "cannot open " << model_path);
      char magic[4];
      is.read(magic, 4);
      std::uint64_t version = 0;
      is.read(reinterpret_cast<char*>(&version), sizeof(version));
      is.read(reinterpret_cast<char*>(&order), sizeof(order));
    }
    mps::broadcast(comm, std::span<std::uint64_t>(&order, 1), 0);
    std::vector<int> shape(order, 1);
    // Distribute ranks over the last mode by default (safe for any dims).
    shape[order - 1] = p;
    auto grid = dist::make_grid(comm, shape);

    const core::TuckerTensor model = core::load_tucker(model_path, grid);
    const tensor::Dims dims = model.data_dims();
    const auto ranges = parse_slices(args.get_string("slices"), dims);

    const dist::DistTensor slice = core::reconstruct_range(model, ranges);
    const tensor::Tensor global = slice.gather(0);
    if (comm.rank() == 0) {
      tensor::save_tensor(output, global);
      std::printf("reconstructed");
      for (const auto& r : ranges) std::printf(" %zu:%zu", r.lo, r.hi);
      std::printf(" (%zu elements) from %s -> %s\n",
                  static_cast<std::size_t>(global.size()),
                  model_path.c_str(), output.c_str());
    }
  });
  return 0;
}
