/// \file tensor_reconstruct_tool.cpp
/// \brief File-to-file reconstruction utility: reads a compressed Tucker
/// model ("PTZ1" or legacy "PTKR", sniffed by magic) and writes a dense
/// tensor file — either the full reconstruction or an arbitrary per-mode
/// index range ("a:b" slices), the paper's post-hoc analysis workflow.
/// Output is "PTT1" by default or the chunked "PTB1" container with
/// --block_output (every rank writes its own block). With --reference the
/// tool also checks the normalized RMS error against the original tensor
/// file — rank-parallel reads again, used by CI to verify the eq. 3 bound.
///
///   ./tensor_reconstruct_tool --model demo.ptz --output slice.ptt
///       --slices "0:48,10:20,0:36"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/reconstruct.hpp"
#include "core/tucker_io.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "pario/block_file.hpp"
#include "pario/model_io.hpp"
#include "tensor/tensor_io.hpp"
#include "util/cli.hpp"

using namespace ptucker;

namespace {

/// Parse "a:b,c:d,..." into per-mode ranges; empty string = full tensor.
std::vector<util::Range> parse_slices(const std::string& text,
                                      const tensor::Dims& dims) {
  std::vector<util::Range> ranges;
  if (text.empty()) {
    for (std::size_t d : dims) ranges.push_back({0, d});
    return ranges;
  }
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const auto colon = part.find(':');
    PT_REQUIRE(colon != std::string::npos,
               "slice '" << part << "' must look like lo:hi");
    const std::size_t lo = std::stoull(part.substr(0, colon));
    const std::size_t hi = std::stoull(part.substr(colon + 1));
    ranges.push_back({lo, hi});
  }
  PT_REQUIRE(ranges.size() == dims.size(),
             "need one lo:hi slice per mode (" << dims.size() << ")");
  for (std::size_t n = 0; n < dims.size(); ++n) {
    PT_REQUIRE(ranges[n].lo < ranges[n].hi && ranges[n].hi <= dims[n],
               "slice " << n << " out of range");
  }
  return ranges;
}

/// Normalized RMS error of the distributed slice vs the same ranges of a
/// reference tensor file: each rank preads only its own sub-block of the
/// reference, then two scalar all-reduces.
double error_vs_reference(const dist::DistTensor& slice,
                          const std::vector<util::Range>& slice_origin,
                          const std::string& reference_path) {
  const pario::BlockFile ref = pario::BlockFile::open(reference_path);
  std::vector<util::Range> mine(slice_origin.size());
  for (int n = 0; n < slice.order(); ++n) {
    const util::Range r = slice.mode_range(n);
    const std::size_t base = slice_origin[static_cast<std::size_t>(n)].lo;
    mine[static_cast<std::size_t>(n)] = {base + r.lo, base + r.hi};
  }
  const tensor::Tensor expect = ref.read_ranges(mine);
  PT_REQUIRE(expect.size() == slice.local().size(),
             "--reference dims do not cover the reconstructed slice");
  double diff_sq = 0.0;
  double ref_sq = 0.0;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const double d = slice.local()[i] - expect[i];
    diff_sq += d * d;
    ref_sq += expect[i] * expect[i];
  }
  diff_sq = mps::allreduce_scalar(slice.comm(), diff_sq);
  ref_sq = mps::allreduce_scalar(slice.comm(), ref_sq);
  return ref_sq > 0.0 ? std::sqrt(diff_sq / ref_sq) : std::sqrt(diff_sq);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("tensor_reconstruct_tool",
                       "reconstruct a tensor (or slice) from a Tucker model");
  args.add_string("model", "", "input model file (PTZ1 or PTKR format)");
  args.add_string("output", "", "output tensor file");
  args.add_string("slices", "", "per-mode lo:hi ranges, e.g. 0:48,10:20,0:36");
  args.add_flag("block_output", "write chunked PTB1 instead of PTT1");
  args.add_string("reference", "",
                  "original tensor file to compare against (PTT1/PTB1)");
  args.add_double("check_eps", 0.0,
                  "fail unless error vs --reference is <= this bound");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.parse(argc, argv);

  const std::string model_path = args.get_string("model");
  const std::string output = args.get_string("output");
  PT_REQUIRE(!model_path.empty() && !output.empty(),
             "--model and --output are required");
  const int p = static_cast<int>(args.get_int("ranks"));

  int exit_code = 0;
  mps::run(p, [&](mps::Comm& comm) {
    // Grid order must match the model's order; PTZ1 headers are readable on
    // every rank, the legacy PTKR peek happens on root + broadcast.
    std::uint64_t order = 0;
    if (pario::is_ptz1(model_path)) {
      // Every rank peeks at the header itself: no broadcast needed.
      const pario::File f = pario::File::open_read(model_path);
      std::uint64_t fields[2] = {0, 0};  // version, order
      f.read_at(4, fields, sizeof(fields));
      PT_REQUIRE(fields[0] == 1,
                 "unsupported PTZ1 version in " << model_path);
      order = fields[1];
    } else {
      if (comm.rank() == 0) {
        const pario::File f = pario::File::open_read(model_path);
        std::uint64_t fields[2] = {0, 0};
        f.read_at(4, fields, sizeof(fields));
        order = fields[1];
      }
      mps::broadcast(comm, std::span<std::uint64_t>(&order, 1), 0);
    }
    PT_REQUIRE(order >= 1 && order <= 64,
               "implausible model order " << order << " in " << model_path);
    std::vector<int> shape(order, 1);
    // Distribute ranks over the last mode by default (safe for any dims).
    shape[order - 1] = p;
    auto grid = dist::make_grid(comm, shape);

    const core::TuckerTensor model = core::load_tucker(model_path, grid);
    const tensor::Dims dims = model.data_dims();
    const auto ranges = parse_slices(args.get_string("slices"), dims);

    const dist::DistTensor slice = core::reconstruct_range(model, ranges);

    if (args.get_flag("block_output")) {
      pario::write_dist_tensor(output, slice);
    } else {
      const tensor::Tensor global = slice.gather(0);
      if (comm.rank() == 0) tensor::save_tensor(output, global);
    }
    if (comm.rank() == 0) {
      std::printf("reconstructed");
      for (const auto& r : ranges) std::printf(" %zu:%zu", r.lo, r.hi);
      std::printf(" (%zu elements) from %s -> %s%s\n",
                  static_cast<std::size_t>(tensor::prod(slice.global_dims())),
                  model_path.c_str(), output.c_str(),
                  args.get_flag("block_output") ? " (PTB1)" : "");
    }

    if (!args.get_string("reference").empty()) {
      const double err =
          error_vs_reference(slice, ranges, args.get_string("reference"));
      const double bound = args.get_double("check_eps");
      if (comm.rank() == 0) {
        std::printf("  error vs reference : %.3e", err);
        if (bound > 0.0) {
          std::printf(" (bound %.1e: %s)", bound,
                      err <= bound ? "OK" : "FAIL");
        }
        std::printf("\n");
        if (bound > 0.0 && err > bound) exit_code = 1;
      }
    }
  });
  return exit_code;
}
