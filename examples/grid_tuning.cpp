/// \file grid_tuning.cpp
/// \brief Processor-grid selection: measure ST-HOSVD across candidate grids
/// and compare against the alpha-beta-gamma cost model (paper Sec. VIII-B).
///
///   ./grid_tuning --ranks 16 --dim 32

#include <cstdio>

#include "core/st_hosvd.hpp"
#include "costmodel/tucker_model.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("grid_tuning",
                       "measure ST-HOSVD across processor grids");
  args.add_int("ranks", 16, "number of (thread) ranks");
  args.add_int("dim", 32, "tensor extent per mode (4-way tensor)");
  args.add_int("rank", 8, "target rank per mode");
  args.parse(argc, argv);

  const int p = static_cast<int>(args.get_int("ranks"));
  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t rank = static_cast<std::size_t>(args.get_int("rank"));
  const tensor::Dims dims{dim, dim, dim, dim};
  const tensor::Dims ranks{rank, rank, rank, rank};

  auto shapes = mps::heuristic_grid_shapes(p, dims, 6);

  auto shape_name = [](const std::vector<int>& shape) {
    std::string s;
    for (std::size_t i = 0; i < shape.size(); ++i) {
      if (i > 0) s += "x";
      s += std::to_string(shape[i]);
    }
    return s;
  };

  util::Table table({"grid", "time(s)", "model(s)", "flops/rank", "words/rank",
                     "msgs/rank"});
  costmodel::Machine machine;  // generic machine constants

  for (const auto& shape : shapes) {
    mps::Runtime rt(p);
    double elapsed = 0.0;
    rt.run([&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x =
          data::make_low_rank(grid, dims, ranks, 3, 0.01);
      comm.barrier();
      util::Timer timer;
      core::SthosvdOptions opts;
      opts.fixed_ranks = ranks;
      (void)core::st_hosvd(x, opts);
      comm.barrier();
      const double t = timer.seconds();
      if (comm.rank() == 0) elapsed = t;
    });
    const auto cost = costmodel::sthosvd_cost(dims, ranks, shape,
                                              {0, 1, 2, 3});
    table.add_row({shape_name(shape),
                   util::Table::fmt(elapsed, 3),
                   util::Table::fmt(machine.seconds(cost), 3),
                   util::Table::fmt_sci(cost.flops, 2),
                   util::Table::fmt_sci(cost.words, 2),
                   util::Table::fmt_int(static_cast<long long>(cost.messages))});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper Sec. VIII-B: the best grids put P1 = 1 so the first (most\n"
      "expensive) Gram and TTM run without communication; the model columns\n"
      "rank the grids the same way the measurements do.\n");
  return 0;
}
