/// \file tensor_compress_tool.cpp
/// \brief File-to-file compression utility: reads a dense tensor file
/// ("PTT1" or chunked "PTB1"), compresses it in parallel, and writes the
/// compressed Tucker model (parallel "PTZ1" by default, legacy "PTKR" on
/// request). The archive-side half of the paper's storage/transfer
/// workflow. Input and output move through src/pario/: every rank reads
/// and writes only its own block — nothing funnels through rank 0.
///
///   # generate a demo input, compress at 1e-3, inspect sizes
///   ./tensor_compress_tool --demo demo.ptt
///   ./tensor_compress_tool --input demo.ptt --output demo.ptz --eps 1e-3

#include <cstdio>
#include <filesystem>

#include "core/metrics.hpp"
#include "core/st_hosvd.hpp"
#include "core/tucker_io.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "obs/trace.hpp"
#include "pario/block_file.hpp"
#include "tensor/tensor_io.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("tensor_compress_tool",
                       "compress a tensor file into a Tucker model file");
  args.add_string("input", "", "input tensor file (PTT1 or PTB1 format)");
  args.add_string("output", "", "output model file (default: input + .ptz)");
  args.add_string("format", "ptz1", "model container: ptz1 or ptkr");
  args.add_string("demo", "", "write a demo low-rank tensor here and exit");
  args.add_double("eps", 1e-3, "max normalized RMS error");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.add_flag("hooi", "refine with HOOI sweeps after ST-HOSVD");
  args.add_string("trace", "",
                  "write a chrome://tracing JSON of the run to this path");
  args.parse(argc, argv);

  if (!args.get_string("demo").empty()) {
    const tensor::Tensor demo = data::make_low_rank_seq(
        tensor::Dims{48, 40, 36}, tensor::Dims{6, 5, 4}, 1234, 1e-6);
    tensor::save_tensor(args.get_string("demo"), demo);
    std::printf("wrote demo tensor 48x40x36 (true ranks 6x5x4) to %s\n",
                args.get_string("demo").c_str());
    return 0;
  }

  const std::string input = args.get_string("input");
  PT_REQUIRE(!input.empty(), "--input is required (or use --demo)");
  const std::string format_name = args.get_string("format");
  PT_REQUIRE(format_name == "ptz1" || format_name == "ptkr",
             "--format must be ptz1 or ptkr");
  const core::ModelFormat format = format_name == "ptkr"
                                       ? core::ModelFormat::Ptkr
                                       : core::ModelFormat::Ptz1;
  std::string output = args.get_string("output");
  if (output.empty()) {
    output = input + (format == core::ModelFormat::Ptkr ? ".ptkr" : ".ptz");
  }
  const int p = static_cast<int>(args.get_int("ranks"));
  const double eps = args.get_double("eps");

  const std::string trace_path = args.get_string("trace");
  if (!trace_path.empty()) obs::TraceSession::start();

  mps::run(p, [&](mps::Comm& comm) {
    // Every rank reads the header itself and preads exactly its own block
    // of the input — no root read, no scatter.
    const tensor::Dims dims = pario::BlockFile::open(input).dims();
    auto grid = dist::make_grid(comm, dist::default_grid_shape(p, dims));
    const dist::DistTensor x = pario::read_dist_tensor(grid, input);

    util::Timer timer;
    core::SthosvdOptions opts;
    opts.epsilon = eps;
    const auto result = core::st_hosvd(x, opts);
    const double seconds = timer.seconds();
    core::save_tucker(output, result.tucker, format);

    if (comm.rank() == 0) {
      const auto in_bytes = std::filesystem::file_size(input);
      const auto out_bytes = std::filesystem::file_size(output);
      std::printf("compressed %s -> %s (%s)\n", input.c_str(), output.c_str(),
                  format_name.c_str());
      std::printf("  dims        :");
      for (std::size_t d : dims) std::printf(" %zu", d);
      std::printf("\n  reduced dims:");
      for (std::size_t r : result.tucker.core_dims()) std::printf(" %zu", r);
      std::printf("\n  file size   : %.2f MB -> %.3f MB (%.1fx)\n",
                  static_cast<double>(in_bytes) / 1048576.0,
                  static_cast<double>(out_bytes) / 1048576.0,
                  static_cast<double>(in_bytes) /
                      static_cast<double>(out_bytes));
      std::printf("  error bound : %.3e (target %.1e)\n", result.error_bound,
                  eps);
      std::printf("  time        : %.2fs on %d ranks\n", seconds, p);
    }
  });
  if (!trace_path.empty()) {
    obs::TraceSession::stop();
    obs::TraceSession::write_chrome_json(trace_path);
    std::printf("trace: %zu events -> %s\n",
                obs::TraceSession::events().size(), trace_path.c_str());
  }
  return 0;
}
