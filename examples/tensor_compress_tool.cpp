/// \file tensor_compress_tool.cpp
/// \brief File-to-file compression utility: reads a dense tensor file
/// (tensor_io "PTT1" format), compresses it in parallel, and writes the
/// compressed Tucker model ("PTKR"). The archive-side half of the paper's
/// storage/transfer workflow.
///
///   # generate a demo input, compress at 1e-3, inspect sizes
///   ./tensor_compress_tool --demo demo.ptt
///   ./tensor_compress_tool --input demo.ptt --output demo.ptkr --eps 1e-3

#include <cstdio>
#include <filesystem>

#include "core/metrics.hpp"
#include "core/st_hosvd.hpp"
#include "core/tucker_io.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "tensor/tensor_io.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("tensor_compress_tool",
                       "compress a tensor file into a Tucker model file");
  args.add_string("input", "", "input tensor file (PTT1 format)");
  args.add_string("output", "", "output model file (default: input + .ptkr)");
  args.add_string("demo", "", "write a demo low-rank tensor here and exit");
  args.add_double("eps", 1e-3, "max normalized RMS error");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.add_flag("hooi", "refine with HOOI sweeps after ST-HOSVD");
  args.parse(argc, argv);

  if (!args.get_string("demo").empty()) {
    const tensor::Tensor demo = data::make_low_rank_seq(
        tensor::Dims{48, 40, 36}, tensor::Dims{6, 5, 4}, 1234, 1e-6);
    tensor::save_tensor(args.get_string("demo"), demo);
    std::printf("wrote demo tensor 48x40x36 (true ranks 6x5x4) to %s\n",
                args.get_string("demo").c_str());
    return 0;
  }

  const std::string input = args.get_string("input");
  PT_REQUIRE(!input.empty(), "--input is required (or use --demo)");
  std::string output = args.get_string("output");
  if (output.empty()) output = input + ".ptkr";
  const int p = static_cast<int>(args.get_int("ranks"));
  const double eps = args.get_double("eps");

  mps::run(p, [&](mps::Comm& comm) {
    // Root reads the file; the tensor is scattered onto a grid picked for
    // its dims.
    tensor::Tensor global;
    tensor::Dims dims;
    if (comm.rank() == 0) {
      global = tensor::load_tensor(input);
      dims = global.dims();
    }
    std::uint64_t order = dims.size();
    mps::broadcast(comm, std::span<std::uint64_t>(&order, 1), 0);
    std::vector<std::uint64_t> dims64(order);
    if (comm.rank() == 0) {
      for (std::size_t n = 0; n < order; ++n) dims64[n] = dims[n];
    }
    mps::broadcast(comm, std::span<std::uint64_t>(dims64), 0);
    dims.assign(dims64.begin(), dims64.end());

    auto grid = dist::make_grid(comm, dist::default_grid_shape(p, dims));
    const dist::DistTensor x = dist::DistTensor::scatter(grid, global, 0);

    util::Timer timer;
    core::SthosvdOptions opts;
    opts.epsilon = eps;
    const auto result = core::st_hosvd(x, opts);
    const double seconds = timer.seconds();
    core::save_tucker(output, result.tucker);

    if (comm.rank() == 0) {
      const auto in_bytes = std::filesystem::file_size(input);
      const auto out_bytes = std::filesystem::file_size(output);
      std::printf("compressed %s -> %s\n", input.c_str(), output.c_str());
      std::printf("  dims        :");
      for (std::size_t d : dims) std::printf(" %zu", d);
      std::printf("\n  reduced dims:");
      for (std::size_t r : result.tucker.core_dims()) std::printf(" %zu", r);
      std::printf("\n  file size   : %.2f MB -> %.3f MB (%.1fx)\n",
                  static_cast<double>(in_bytes) / 1048576.0,
                  static_cast<double>(out_bytes) / 1048576.0,
                  static_cast<double>(in_bytes) /
                      static_cast<double>(out_bytes));
      std::printf("  error bound : %.3e (target %.1e)\n", result.error_bound,
                  eps);
      std::printf("  time        : %.2fs on %d ranks\n", seconds, p);
    }
  });
  return 0;
}
