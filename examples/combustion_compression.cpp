/// \file combustion_compression.cpp
/// \brief The paper's headline use case: compress a (surrogate) DNS
/// combustion dataset and archive the compressed model.
///
/// Mirrors the Sec. VII pipeline: generate the dataset distributed across
/// ranks, center/scale each species slice, run ST-HOSVD at a relative error
/// target, then report reduced dimensions, compression ratio, errors, and
/// the on-disk size of the saved model.
///
///   ./combustion_compression --preset hcci --scale 0.06 --eps 1e-3

#include <cstdio>
#include <filesystem>

#include "core/metrics.hpp"
#include "core/reconstruct.hpp"
#include "core/st_hosvd.hpp"
#include "data/combustion.hpp"
#include "data/normalize.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "pario/model_io.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ptucker;

namespace {
data::CombustionPreset parse_preset(const std::string& name) {
  if (name == "hcci") return data::CombustionPreset::HCCI;
  if (name == "tjlr") return data::CombustionPreset::TJLR;
  if (name == "sp") return data::CombustionPreset::SP;
  throw InvalidArgument("unknown preset '" + name + "' (hcci|tjlr|sp)");
}
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("combustion_compression",
                       "compress a DNS-surrogate combustion dataset");
  args.add_string("preset", "hcci", "dataset preset: hcci, tjlr, or sp");
  args.add_double("scale", 0.05, "spatial/time scale factor vs the paper");
  args.add_double("eps", 1e-3, "max normalized RMS error");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.add_string("out", "", "path for the compressed model (default: tmp)");
  args.parse(argc, argv);

  const auto preset = parse_preset(args.get_string("preset"));
  const auto spec = data::combustion_spec(preset, args.get_double("scale"));
  const double eps = args.get_double("eps");
  const int p = static_cast<int>(args.get_int("ranks"));
  std::string out = args.get_string("out");
  if (out.empty()) {
    out = (std::filesystem::temp_directory_path() /
           ("ptucker_" + std::string(data::preset_name(preset)) + ".ptz"))
              .string();
  }

  mps::run(p, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, dist::default_grid_shape(p, spec.dims));

    util::Timer gen_timer;
    dist::DistTensor x = data::make_combustion(grid, spec);
    const auto stats = data::normalize_species(x, spec.species_mode);
    const double gen_s = gen_timer.seconds();

    util::Timer compress_timer;
    core::SthosvdOptions opts;
    opts.epsilon = eps;
    const auto result = core::st_hosvd(x, opts);
    const double compress_s = compress_timer.seconds();

    const dist::DistTensor xt = core::reconstruct(result.tucker);
    const double err = core::normalized_error(x, xt);
    const double max_err = core::max_abs_error(x, xt);

    // Archive block-parallel, with the per-species stats in the header so
    // physical values are reconstructible from the file alone.
    pario::write_model(out, result.tucker.core,
                       std::span<const tensor::Matrix>(result.tucker.factors),
                       &stats);

    if (comm.rank() == 0) {
      const std::size_t raw_bytes =
          tensor::prod(spec.dims) * sizeof(double);
      const std::size_t model_bytes = std::filesystem::file_size(out);
      std::printf("dataset %s (scale %.3f): dims =", data::preset_name(preset),
                  args.get_double("scale"));
      for (std::size_t d : spec.dims) std::printf(" %zu", d);
      std::printf("  (%.1f MB raw)\n",
                  static_cast<double>(raw_bytes) / 1048576.0);
      std::printf("  species normalized    : %zu slices (std floor %.0e)\n",
                  stats.mean.size(), data::kStdFloor);
      std::printf("  reduced dims          :");
      for (std::size_t r : result.tucker.core_dims()) std::printf(" %zu", r);
      std::printf("\n");
      std::printf("  compression ratio     : %.1fx\n",
                  result.tucker.compression_ratio());
      std::printf("  normalized RMS error  : %.3e (target %.1e, bound %.3e)\n",
                  err, eps, result.error_bound);
      std::printf("  max abs element error : %.3e\n", max_err);
      std::printf("  model file            : %s (%.2f MB)\n", out.c_str(),
                  static_cast<double>(model_bytes) / 1048576.0);
      std::printf("  generation %.2fs, compression %.2fs on %d ranks\n",
                  gen_s, compress_s, p);
    }
  });
  return 0;
}
