/// \file partial_reconstruction.cpp
/// \brief The paper's analysis workflow (Sec. II-C / VII): once a dataset is
/// compressed, reconstruct only the slices an analyst asks for — "a single
/// species, a few time steps, a subset of the grid, or any combination" —
/// without ever forming the full tensor.
///
///   ./partial_reconstruction --scale 0.04 --ranks 8

#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/metrics.hpp"
#include "core/reconstruct.hpp"
#include "core/st_hosvd.hpp"
#include "data/combustion.hpp"
#include "data/normalize.hpp"
#include "dist/grid.hpp"
#include "mps/runtime.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("partial_reconstruction",
                       "reconstruct selected slices from a compressed model");
  args.add_double("scale", 0.04, "dataset scale factor");
  args.add_double("eps", 1e-3, "compression error target");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.parse(argc, argv);

  const auto spec = data::combustion_spec(data::CombustionPreset::SP,
                                          args.get_double("scale"));
  const int p = static_cast<int>(args.get_int("ranks"));

  mps::run(p, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, dist::default_grid_shape(p, spec.dims));
    dist::DistTensor x = data::make_combustion(grid, spec);
    data::normalize_species(x, spec.species_mode);

    core::SthosvdOptions opts;
    opts.epsilon = args.get_double("eps");
    const auto model = core::st_hosvd(x, opts).tucker;

    // --- full reconstruction (the expensive baseline) ---------------------
    util::Timer full_timer;
    const dist::DistTensor full = core::reconstruct(model);
    const double full_s = full_timer.seconds();

    // --- request 1: a single species, all space and time ------------------
    const std::size_t species = 3;
    std::vector<std::vector<std::size_t>> one_species(spec.dims.size());
    one_species[static_cast<std::size_t>(spec.species_mode)] = {species};
    util::Timer sp_timer;
    const dist::DistTensor species_slice =
        core::reconstruct_subtensor(model, one_species);
    const double sp_s = sp_timer.seconds();

    // --- request 2: two time steps on a coarse (every 4th point) grid -----
    std::vector<std::vector<std::size_t>> coarse(spec.dims.size());
    for (int n = 0; n < 3; ++n) {  // spatial modes of the SP preset
      for (std::size_t i = 0; i < spec.dims[static_cast<std::size_t>(n)];
           i += 4) {
        coarse[static_cast<std::size_t>(n)].push_back(i);
      }
    }
    coarse[static_cast<std::size_t>(spec.time_mode)] = {
        0, spec.dims[static_cast<std::size_t>(spec.time_mode)] - 1};
    util::Timer coarse_timer;
    const dist::DistTensor coarse_slice =
        core::reconstruct_subtensor(model, coarse);
    const double coarse_s = coarse_timer.seconds();

    // --- verify the species slice against the full reconstruction ---------
    const tensor::Tensor full_g = full.gather(0);
    const tensor::Tensor slice_g = species_slice.gather(0);
    double max_dev = 0.0;
    if (comm.rank() == 0) {
      std::vector<util::Range> ranges;
      for (std::size_t n = 0; n < spec.dims.size(); ++n) {
        if (static_cast<int>(n) == spec.species_mode) {
          ranges.push_back(util::Range{species, species + 1});
        } else {
          ranges.push_back(util::Range{0, spec.dims[n]});
        }
      }
      const tensor::Tensor expected = full_g.subtensor(ranges);
      for (std::size_t i = 0; i < expected.size(); ++i) {
        max_dev = std::max(max_dev,
                           std::fabs(expected[i] - slice_g[i]));
      }
    }

    if (comm.rank() == 0) {
      std::printf("compressed SP surrogate: dims =");
      for (std::size_t d : spec.dims) std::printf(" %zu", d);
      std::printf(", ratio %.1fx\n", model.compression_ratio());
      std::printf("  full reconstruction      : %8zu elements  %.3fs\n",
                  tensor::prod(full.global_dims()), full_s);
      std::printf("  single species           : %8zu elements  %.3fs\n",
                  tensor::prod(species_slice.global_dims()), sp_s);
      std::printf("  coarse grid + 2 steps    : %8zu elements  %.3fs\n",
                  tensor::prod(coarse_slice.global_dims()), coarse_s);
      std::printf("  species slice vs full    : max deviation %.2e\n",
                  max_dev);
      std::printf(
          "partial reconstructions touch only the requested output — the\n"
          "laptop-scale analysis workflow the paper motivates.\n");
    }
  });
  return 0;
}
