#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace ptucker::util {

ArgParser::ArgParser(std::string prog, std::string description)
    : prog_(std::move(prog)), description_(std::move(description)) {}

void ArgParser::add_int(const std::string& name, std::int64_t def,
                        const std::string& help) {
  options_[name] = Option{Kind::Int, help, std::to_string(def),
                          std::to_string(def)};
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double def,
                           const std::string& help) {
  std::ostringstream os;
  os << def;
  options_[name] = Option{Kind::Double, help, os.str(), os.str()};
  order_.push_back(name);
}

void ArgParser::add_string(const std::string& name, const std::string& def,
                           const std::string& help) {
  options_[name] = Option{Kind::String, help, def, def};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::Flag, help, "0", "0"};
  order_.push_back(name);
}

void ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    PT_REQUIRE(arg.rfind("--", 0) == 0,
               "unexpected positional argument '" << arg << "'");
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    auto it = options_.find(name);
    PT_REQUIRE(it != options_.end(), "unknown option '--" << name << "'");
    if (it->second.kind == Kind::Flag) {
      it->second.value = "1";
      continue;
    }
    if (has_inline) {
      it->second.value = inline_value;
    } else {
      PT_REQUIRE(i + 1 < argc, "option '--" << name << "' expects a value");
      it->second.value = argv[++i];
    }
  }
}

const ArgParser::Option& ArgParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  PT_REQUIRE(it != options_.end(), "option '" << name << "' not declared");
  PT_REQUIRE(it->second.kind == kind,
             "option '" << name << "' accessed with wrong type");
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::Int).value);
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::Double).value);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).value == "1";
}

std::vector<std::size_t> ArgParser::parse_dims(const std::string& text) {
  std::vector<std::size_t> dims;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (part.empty()) continue;
    const long long v = std::stoll(part);
    PT_REQUIRE(v > 0, "dimension entries must be positive, got " << v);
    dims.push_back(static_cast<std::size_t>(v));
  }
  PT_REQUIRE(!dims.empty(), "empty dimension list '" << text << "'");
  return dims;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << prog_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::Int: os << " <int>"; break;
      case Kind::Double: os << " <float>"; break;
      case Kind::String: os << " <str>"; break;
      case Kind::Flag: break;
    }
    os << "\n      " << opt.help;
    if (opt.kind != Kind::Flag) os << " (default: " << opt.def << ")";
    os << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace ptucker::util
