#pragma once
/// \file crc32c.hpp
/// \brief CRC32C (Castagnoli) checksum used by the pario containers to
/// detect silent bit rot and torn writes in block payloads.
///
/// The incremental form composes: crc32c(crc32c(0, a), b) equals
/// crc32c(0, a || b), which is what lets the blocked readers accumulate a
/// block's checksum across the mode-0 runs they pread without ever
/// materializing the block contiguously.

#include <cstddef>
#include <cstdint>

namespace ptucker::util {

/// Extend \p crc over \p n bytes of \p data. Seed with 0 for a fresh
/// checksum; feed the previous result to continue one.
[[nodiscard]] std::uint32_t crc32c(std::uint32_t crc, const void* data,
                                   std::size_t n);

}  // namespace ptucker::util
