#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ptucker::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
thread_local int t_rank = -1;
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::ErrorLevel: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

void log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  if (t_rank >= 0) {
    std::fprintf(stderr, "[%s rank %d] %s\n", level_name(level), t_rank,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
  }
}

}  // namespace ptucker::util
