#pragma once
/// \file rng.hpp
/// \brief Random number utilities.
///
/// Two generators are provided:
///  - Rng: a seeded mt19937_64 wrapper for sequential use (tests, factor
///    initialization on a single rank).
///  - CounterRng: a stateless counter-based generator (splitmix64 hash of a
///    global index). Every rank of a distributed run can evaluate the same
///    global random field independently, so synthetic tensors are identical
///    regardless of the processor grid — essential for the property tests
///    that compare runs across grids.

#include <cstdint>
#include <random>

namespace ptucker::util {

/// splitmix64 hash step: maps any 64-bit value to a well-mixed 64-bit value.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seeded sequential RNG (mt19937_64 based).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unif_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal double.
  double normal() { return norm_(engine_); }

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unif_{0.0, 1.0};
  std::normal_distribution<double> norm_{0.0, 1.0};
};

/// Stateless counter-based RNG: value at (seed, counter) is deterministic and
/// independent of evaluation order, enabling grid-independent random fields.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) : seed_(splitmix64(seed ^ kSalt)) {}

  /// Uniform double in [0, 1) for a global counter value.
  [[nodiscard]] double uniform(std::uint64_t counter) const {
    const std::uint64_t h = splitmix64(seed_ ^ splitmix64(counter));
    // 53 high bits -> double in [0,1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  /// Standard normal double for a global counter value (Box-Muller on two
  /// decorrelated uniforms derived from the same counter).
  [[nodiscard]] double normal(std::uint64_t counter) const;

 private:
  static constexpr std::uint64_t kSalt = 0x7075636b65727477ULL;  // "puckertw"
  std::uint64_t seed_;
};

/// Counter-based Gaussian test-matrix generator for the randomized factor
/// route: entry (row, col) of the Jhat_n x w test matrix Omega drawn for
/// (seed, mode) is a standard normal indexed by the *global* unfolding
/// column `row`, so every rank of any processor grid (and the sequential
/// oracle) evaluates the same Omega on its own blocks — the sketch subspace
/// is reproducible per (seed, mode) and independent of the grid and of
/// evaluation order.
class SketchRng {
 public:
  SketchRng(std::uint64_t seed, int mode)
      : rng_(splitmix64(seed) ^
             splitmix64(kModeSalt + static_cast<std::uint64_t>(mode))) {}

  /// Omega(row, col) for a test matrix of the given width (columns).
  [[nodiscard]] double omega(std::uint64_t row, std::uint64_t col,
                             std::uint64_t width) const {
    return rng_.normal(row * width + col);
  }

 private:
  static constexpr std::uint64_t kModeSalt = 0x736b657463686d30ULL;
  CounterRng rng_;
};

}  // namespace ptucker::util
