#include "util/crc32c.hpp"

#include <array>

namespace ptucker::util {

namespace {

/// Reflected Castagnoli polynomial (the iSCSI/ext4 CRC32C).
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (c >> 1) ^ kPoly : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n-- != 0) {
    crc = kTable[(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ptucker::util
