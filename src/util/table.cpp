#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace ptucker::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  PT_REQUIRE(cells.size() <= headers_.size(),
             "row has " << cells.size() << " cells but table has "
                        << headers_.size() << " columns");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "  " << std::string(width[c], '-');
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

}  // namespace ptucker::util
