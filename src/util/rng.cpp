#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace ptucker::util {

double CounterRng::normal(std::uint64_t counter) const {
  // Derive two independent uniforms from disjoint streams of the counter.
  const std::uint64_t h1 = splitmix64(seed_ ^ splitmix64(counter * 2 + 0));
  const std::uint64_t h2 = splitmix64(seed_ ^ splitmix64(counter * 2 + 1));
  // u1 in (0,1] to keep log() finite; u2 in [0,1).
  const double u1 =
      (static_cast<double>(h1 >> 11) + 1.0) * 0x1.0p-53;  // (0, 1]
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace ptucker::util
