#include "util/timer.hpp"

#include <algorithm>

namespace ptucker::util {

void KernelTimers::add(const std::string& kernel, int mode, double seconds) {
  if (std::find(order_.begin(), order_.end(), kernel) == order_.end()) {
    order_.push_back(kernel);
  }
  buckets_[{kernel, mode}] += seconds;
}

double KernelTimers::total(const std::string& kernel) const {
  double sum = 0.0;
  for (const auto& [key, sec] : buckets_) {
    if (key.first == kernel) sum += sec;
  }
  return sum;
}

double KernelTimers::get(const std::string& kernel, int mode) const {
  auto it = buckets_.find({kernel, mode});
  return it == buckets_.end() ? 0.0 : it->second;
}

double KernelTimers::grand_total() const {
  double sum = 0.0;
  for (const auto& [key, sec] : buckets_) sum += sec;
  return sum;
}

void KernelTimers::merge_max(const KernelTimers& other) {
  for (const auto& [key, sec] : other.buckets_) {
    double& mine = buckets_[key];
    mine = std::max(mine, sec);
    if (std::find(order_.begin(), order_.end(), key.first) == order_.end()) {
      order_.push_back(key.first);
    }
  }
}

void KernelTimers::merge_sum(const KernelTimers& other) {
  for (const auto& [key, sec] : other.buckets_) {
    buckets_[key] += sec;
    if (std::find(order_.begin(), order_.end(), key.first) == order_.end()) {
      order_.push_back(key.first);
    }
  }
}

void KernelTimers::clear() {
  buckets_.clear();
  order_.clear();
}

}  // namespace ptucker::util
