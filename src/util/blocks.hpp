#pragma once
/// \file blocks.hpp
/// \brief Uniform block partitioning of an index range over P parts.
///
/// Used consistently by the tensor distribution layer and the collectives:
/// part i of [0, total) is [floor(i*total/P), floor((i+1)*total/P)). Parts
/// differ in size by at most one, and the paper's "Pn evenly divides In"
/// presentation assumption is not required anywhere in this codebase.

#include <cstddef>
#include <vector>

namespace ptucker::util {

struct Range {
  std::size_t lo = 0;
  std::size_t hi = 0;
  [[nodiscard]] std::size_t size() const { return hi - lo; }
};

/// Block i (0-based) of [0, total) split into parts pieces.
[[nodiscard]] inline Range uniform_block(std::size_t total, std::size_t parts,
                                         std::size_t i) {
  return Range{(i * total) / parts, ((i + 1) * total) / parts};
}

/// Sizes of all parts.
[[nodiscard]] inline std::vector<std::size_t> uniform_block_sizes(
    std::size_t total, std::size_t parts) {
  std::vector<std::size_t> sizes(parts);
  for (std::size_t i = 0; i < parts; ++i) {
    sizes[i] = uniform_block(total, parts, i).size();
  }
  return sizes;
}

/// Which part owns global index g.
[[nodiscard]] inline std::size_t uniform_block_owner(std::size_t total,
                                                     std::size_t parts,
                                                     std::size_t g) {
  // floor((g+1)*parts - 1 / total) without overflow concerns at our sizes:
  // search is fine too, but the closed form is exact for floor splits.
  std::size_t i = (g * parts) / total;
  while (uniform_block(total, parts, i).hi <= g) ++i;
  while (uniform_block(total, parts, i).lo > g) --i;
  return i;
}

}  // namespace ptucker::util
