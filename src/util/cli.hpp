#pragma once
/// \file cli.hpp
/// \brief Minimal command-line parsing for the benchmark and example
/// binaries: `--name value` options, `--flag` booleans, and `--help`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ptucker::util {

/// Declarative argument parser.
///
/// Usage:
/// \code
///   ArgParser args("fig9a_strong_scaling", "Strong-scaling experiment");
///   args.add_int("dim", 64, "tensor dimension per mode");
///   args.add_flag("full", "run the full-size configuration");
///   args.parse(argc, argv);           // exits(0) on --help
///   int dim = args.get_int("dim");
/// \endcode
class ArgParser {
 public:
  ArgParser(std::string prog, std::string description);

  void add_int(const std::string& name, std::int64_t def,
               const std::string& help);
  void add_double(const std::string& name, double def, const std::string& help);
  void add_string(const std::string& name, const std::string& def,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Throws InvalidArgument on unknown options or missing
  /// values. Prints usage and exits(0) when --help is present.
  void parse(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Parse a comma-separated integer list such as "4,3,2".
  [[nodiscard]] static std::vector<std::size_t> parse_dims(
      const std::string& text);

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { Int, Double, String, Flag };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // textual; flags use "0"/"1"
    std::string def;
  };
  std::string prog_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;

  const Option& find(const std::string& name, Kind kind) const;
};

}  // namespace ptucker::util
