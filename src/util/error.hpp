#pragma once
/// \file error.hpp
/// \brief Error-checking macros and exception types used across ptucker.
///
/// All invariant violations throw (never abort) so that the thread-based
/// message-passing runtime can unwind cleanly: a throwing rank triggers a
/// universe-wide abort that wakes every blocked rank.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ptucker {

/// Base class for all ptucker errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on precondition/argument violations (bad dims, bad grid, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on internal invariant violations (bugs).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "PT_REQUIRE") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace ptucker

/// Precondition check on user-supplied arguments; throws InvalidArgument.
#define PT_REQUIRE(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::std::ostringstream pt_os_;                                           \
      pt_os_ << msg; /* NOLINT */                                            \
      ::ptucker::detail::throw_check_failure("PT_REQUIRE", #expr, __FILE__,  \
                                             __LINE__, pt_os_.str());        \
    }                                                                        \
  } while (0)

/// Internal invariant check; throws InternalError.
#define PT_CHECK(expr, msg)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::std::ostringstream pt_os_;                                           \
      pt_os_ << msg; /* NOLINT */                                            \
      ::ptucker::detail::throw_check_failure("PT_CHECK", #expr, __FILE__,    \
                                             __LINE__, pt_os_.str());        \
    }                                                                        \
  } while (0)
