#pragma once
/// \file error.hpp
/// \brief Error-checking macros and exception types used across ptucker.
///
/// All invariant violations throw (never abort) so that the thread-based
/// message-passing runtime can unwind cleanly: a throwing rank triggers a
/// universe-wide abort that wakes every blocked rank.

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ptucker {

/// Base class for all ptucker errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on precondition/argument violations (bad dims, bad grid, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on internal invariant violations (bugs).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "PT_REQUIRE") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}
}  // namespace detail

namespace util {

/// a * b with an overflow check: throws InvalidArgument naming \p what
/// instead of silently wrapping. Used by the pario containers wherever a
/// byte offset is derived from untrusted (or caller-supplied) dims, so a
/// hostile header or an absurd shape fails loudly before any allocation or
/// file arithmetic happens.
[[nodiscard]] inline std::uint64_t checked_mul(std::uint64_t a,
                                               std::uint64_t b,
                                               const char* what) {
  if (b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b) {
    throw InvalidArgument(std::string(what) +
                          ": u64 overflow in size/offset multiply");
  }
  return a * b;
}

/// a + b with the matching overflow check (offset accumulation).
[[nodiscard]] inline std::uint64_t checked_add(std::uint64_t a,
                                               std::uint64_t b,
                                               const char* what) {
  if (a > std::numeric_limits<std::uint64_t>::max() - b) {
    throw InvalidArgument(std::string(what) +
                          ": u64 overflow in size/offset add");
  }
  return a + b;
}

}  // namespace util

}  // namespace ptucker

/// Precondition check on user-supplied arguments; throws InvalidArgument.
#define PT_REQUIRE(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::std::ostringstream pt_os_;                                           \
      pt_os_ << msg; /* NOLINT */                                            \
      ::ptucker::detail::throw_check_failure("PT_REQUIRE", #expr, __FILE__,  \
                                             __LINE__, pt_os_.str());        \
    }                                                                        \
  } while (0)

/// Internal invariant check; throws InternalError.
#define PT_CHECK(expr, msg)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::std::ostringstream pt_os_;                                           \
      pt_os_ << msg; /* NOLINT */                                            \
      ::ptucker::detail::throw_check_failure("PT_CHECK", #expr, __FILE__,    \
                                             __LINE__, pt_os_.str());        \
    }                                                                        \
  } while (0)
