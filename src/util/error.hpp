#pragma once
/// \file error.hpp
/// \brief Error-checking macros and exception types used across ptucker.
///
/// All invariant violations throw (never abort) so that the thread-based
/// message-passing runtime can unwind cleanly: a throwing rank triggers a
/// universe-wide abort that wakes every blocked rank.

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ptucker {

/// Base class for all ptucker errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on precondition/argument violations (bad dims, bad grid, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on internal invariant violations (bugs).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown by pario::File when a syscall fails for real — a -1 return with a
/// non-transient errno, or a transient one (EIO/EAGAIN) after the
/// RetryPolicy budget is exhausted. Always carries errno_text().
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when a stored CRC32C does not match the bytes read back — silent
/// bit rot or a torn write. Names the file, block/region, and byte offset.
class ChecksumError : public Error {
 public:
  explicit ChecksumError(const std::string& what) : Error(what) {}
};

/// Thrown by archive_append_model when the PTA1 entry table is full.
/// Derives from InvalidArgument because the condition is caller-resolvable:
/// recreate the archive with a larger entry_capacity.
class ArchiveFull : public InvalidArgument {
 public:
  explicit ArchiveFull(const std::string& what) : InvalidArgument(what) {}
};

/// serve: the per-query deadline elapsed before the answer was complete.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// serve: the executor queue was full in shed mode; the query was rejected
/// at submission instead of blocking the caller.
class Overloaded : public Error {
 public:
  explicit Overloaded(const std::string& what) : Error(what) {}
};

/// serve: the requested archive entry was poisoned by an earlier read
/// failure and is quarantined until the archive is repaired/rewritten.
class QuarantinedError : public Error {
 public:
  explicit QuarantinedError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "PT_REQUIRE") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}
}  // namespace detail

namespace util {

/// a * b with an overflow check: throws InvalidArgument naming \p what
/// instead of silently wrapping. Used by the pario containers wherever a
/// byte offset is derived from untrusted (or caller-supplied) dims, so a
/// hostile header or an absurd shape fails loudly before any allocation or
/// file arithmetic happens.
[[nodiscard]] inline std::uint64_t checked_mul(std::uint64_t a,
                                               std::uint64_t b,
                                               const char* what) {
  if (b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b) {
    throw InvalidArgument(std::string(what) +
                          ": u64 overflow in size/offset multiply");
  }
  return a * b;
}

/// a + b with the matching overflow check (offset accumulation).
[[nodiscard]] inline std::uint64_t checked_add(std::uint64_t a,
                                               std::uint64_t b,
                                               const char* what) {
  if (a > std::numeric_limits<std::uint64_t>::max() - b) {
    throw InvalidArgument(std::string(what) +
                          ": u64 overflow in size/offset add");
  }
  return a + b;
}

}  // namespace util

}  // namespace ptucker

/// Precondition check on user-supplied arguments; throws InvalidArgument.
#define PT_REQUIRE(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::std::ostringstream pt_os_;                                           \
      pt_os_ << msg; /* NOLINT */                                            \
      ::ptucker::detail::throw_check_failure("PT_REQUIRE", #expr, __FILE__,  \
                                             __LINE__, pt_os_.str());        \
    }                                                                        \
  } while (0)

/// Internal invariant check; throws InternalError.
#define PT_CHECK(expr, msg)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::std::ostringstream pt_os_;                                           \
      pt_os_ << msg; /* NOLINT */                                            \
      ::ptucker::detail::throw_check_failure("PT_CHECK", #expr, __FILE__,    \
                                             __LINE__, pt_os_.str());        \
    }                                                                        \
  } while (0)
