#pragma once
/// \file timer.hpp
/// \brief Wall-clock timers and the per-kernel time breakdown used to
/// reproduce the paper's Fig. 8 stacked Gram/Evecs/TTM bars.

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace ptucker::util {

/// Simple steady-clock stopwatch.
class Timer {
 public:
  Timer() { reset(); }

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named kernel timings, keyed by (kernel, mode).
///
/// The Tucker drivers record one entry per kernel invocation per tensor
/// mode, mirroring the paper's Fig. 8 presentation where each ST-HOSVD bar
/// is a stack of per-mode Gram / Evecs / TTM blocks.
class KernelTimers {
 public:
  /// Add \p seconds to the (kernel, mode) bucket. Mode -1 = unattributed.
  void add(const std::string& kernel, int mode, double seconds);

  /// Total seconds across modes for one kernel.
  [[nodiscard]] double total(const std::string& kernel) const;

  /// Seconds for one (kernel, mode) bucket; 0 if never recorded.
  [[nodiscard]] double get(const std::string& kernel, int mode) const;

  /// Sum of all buckets.
  [[nodiscard]] double grand_total() const;

  /// Kernel names seen so far, in first-use order.
  [[nodiscard]] const std::vector<std::string>& kernels() const {
    return order_;
  }

  /// Merge another rank's breakdown, keeping the per-bucket MAX. This is
  /// the Fig. 8 semantics: each stacked block shows the slowest rank's time
  /// in that kernel/mode, the bottleneck view. Note grand_total() of a
  /// max-merged breakdown OVERSTATES any one rank's critical path (the max
  /// of sums is at most the sum of maxes, and each bucket's max may come
  /// from a different rank) — use merge_sum for totals.
  void merge_max(const KernelTimers& other);

  /// Merge another rank's breakdown, summing buckets — aggregate
  /// CPU-seconds across ranks. grand_total() of a sum-merged breakdown is
  /// the true total work; divide by ranks for the mean.
  void merge_sum(const KernelTimers& other);

  void clear();

 private:
  std::map<std::pair<std::string, int>, double> buckets_;
  std::vector<std::string> order_;
};

/// RAII helper: times a scope into a KernelTimers bucket.
class ScopedKernelTimer {
 public:
  ScopedKernelTimer(KernelTimers* sink, std::string kernel, int mode)
      : sink_(sink), kernel_(std::move(kernel)), mode_(mode) {}
  ~ScopedKernelTimer() {
    if (sink_ != nullptr) sink_->add(kernel_, mode_, timer_.seconds());
  }
  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;

 private:
  KernelTimers* sink_;
  std::string kernel_;
  int mode_;
  Timer timer_;
};

}  // namespace ptucker::util
