#pragma once
/// \file table.hpp
/// \brief ASCII table formatting for benchmark output. The bench binaries
/// print the same rows/series as the paper's tables and figures; this keeps
/// them aligned and readable.

#include <string>
#include <vector>

namespace ptucker::util {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row. Missing cells render empty; extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  [[nodiscard]] std::string str() const;

  /// Convenience numeric formatting used throughout the benches.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt_sci(double v, int precision = 3);
  static std::string fmt_int(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ptucker::util
