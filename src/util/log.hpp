#pragma once
/// \file log.hpp
/// \brief Thread-safe logging with rank prefixes. The message-passing
/// runtime registers the current rank so log lines from concurrent ranks
/// are attributable and never interleave mid-line.

#include <sstream>
#include <string>

namespace ptucker::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3 };

/// Set the global minimum level (default Info).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Register the calling thread's rank for log prefixes (-1 = not a rank).
void set_thread_rank(int rank);
[[nodiscard]] int thread_rank();

/// Emit a single log line (thread-safe; atomic per line).
void log_line(LogLevel level, const std::string& message);

}  // namespace ptucker::util

#define PT_LOG(level, expr)                                         \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::ptucker::util::log_level())) {           \
      ::std::ostringstream pt_log_os_;                              \
      pt_log_os_ << expr; /* NOLINT */                              \
      ::ptucker::util::log_line(level, pt_log_os_.str());           \
    }                                                               \
  } while (0)

#define PT_INFO(expr) PT_LOG(::ptucker::util::LogLevel::Info, expr)
#define PT_WARN(expr) PT_LOG(::ptucker::util::LogLevel::Warn, expr)
#define PT_DEBUG(expr) PT_LOG(::ptucker::util::LogLevel::Debug, expr)
