#include "core/streaming.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

#include "core/reconstruct.hpp"
#include "costmodel/tucker_model.hpp"
#include "dist/grid.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ptucker::core {

std::size_t pick_streaming_window(const tensor::Dims& step_dims,
                                  const std::vector<int>& spatial_grid,
                                  std::size_t max_window,
                                  double memory_budget_doubles,
                                  std::size_t num_steps) {
  PT_REQUIRE(spatial_grid.size() == step_dims.size(),
             "pick_streaming_window: grid/step order mismatch");
  PT_REQUIRE(max_window >= 1, "pick_streaming_window: max_window < 1");
  const std::size_t cap =
      num_steps == 0 ? max_window : std::min(max_window, num_steps);
  std::vector<int> grid = spatial_grid;
  grid.push_back(1);  // time: undistributed within a window
  const costmodel::Machine machine;

  std::size_t best = 1;
  double best_per_step = std::numeric_limits<double>::infinity();
  for (std::size_t w = 1; w <= cap; ++w) {
    tensor::Dims dims = step_dims;
    dims.push_back(w);
    // The eps-driven ranks are unknown before the window is compressed;
    // budget for half of each extent so the memory bound is conservative.
    tensor::Dims ranks(dims.size());
    for (std::size_t n = 0; n < dims.size(); ++n) {
      ranks[n] = std::max<std::size_t>(1, dims[n] / 2);
    }
    if (costmodel::memory_bound_per_rank(dims, ranks, grid) >
        memory_budget_doubles) {
      break;  // eq. 2 memory grows with w: larger windows cannot fit either
    }
    std::vector<int> order(dims.size());
    std::iota(order.begin(), order.end(), 0);
    const double per_step =
        machine.seconds(costmodel::sthosvd_cost(dims, ranks, grid, order)) /
        static_cast<double>(w);
    if (per_step <= best_per_step) {  // ties go to the larger window
      best = w;
      best_per_step = per_step;
    }
  }
  return best;
}

StreamingCompressor::StreamingCompressor(mps::Comm& comm,
                                         std::string step_dir,
                                         std::string archive_path,
                                         StreamingOptions options)
    : comm_(comm),
      reader_(std::move(step_dir)),
      archive_path_(std::move(archive_path)),
      opts_(std::move(options)) {
  const tensor::Dims& sdims = reader_.step_dims();
  PT_REQUIRE(opts_.species_mode < static_cast<int>(sdims.size()),
             "StreamingCompressor: species mode " << opts_.species_mode
                                                  << " out of step order");
  std::vector<int> shape = dist::default_grid_shape(comm.size(), sdims);
  shape.push_back(1);  // time: undistributed within a window
  grid_ = dist::make_grid(comm, shape);
  window_ =
      opts_.window > 0
          ? std::min(opts_.window, reader_.num_steps())
          : pick_streaming_window(sdims, dist::default_grid_shape(
                                             comm.size(), sdims),
                                  opts_.max_window,
                                  opts_.memory_budget_doubles,
                                  reader_.num_steps());
  pario::archive_create(archive_path_, comm, sdims, opts_.species_mode,
                        opts_.archive_capacity);
}

bool StreamingCompressor::compress_next(WindowResult* out) {
  if (next_ >= reader_.num_steps()) return false;
  const std::size_t count = std::min(window_, reader_.num_steps() - next_);
  util::Timer timer;
  obs::Span span_window("stream.window",
                        static_cast<std::int64_t>(next_));
  dist::DistTensor x = [&] {
    obs::Span span("stream.read", static_cast<std::int64_t>(next_));
    return reader_.read_window(grid_, next_, count);
  }();
  data::NormalizationStats stats;
  const bool normalize = opts_.species_mode >= 0;
  if (normalize) {
    obs::Span span("stream.normalize", static_cast<std::int64_t>(next_));
    stats = data::normalize_species(x, opts_.species_mode);
  }
  SthosvdResult result = [&] {
    obs::Span span("stream.compress", static_cast<std::int64_t>(next_));
    return st_hosvd(x, opts_.sthosvd);
  }();
  // The entry's recorded eps is the guarantee the window was compressed
  // under; with fixed ranks there is no requested eps, so the achieved
  // eq. 3 bound is recorded instead.
  const double entry_eps = opts_.sthosvd.fixed_ranks.empty()
                               ? opts_.sthosvd.epsilon
                               : result.error_bound;
  const double error_bound = result.error_bound;
  const double ratio = result.tucker.compression_ratio();

  // Buffer the compressed window; the batched append commits every
  // commit_every windows and at the end of the stream, so K windows share
  // one bracketing fsync pair.
  PendingWindow pend;
  pend.step_first = next_;
  pend.eps = entry_eps;
  pend.model = std::move(result.tucker);
  pend.has_stats = normalize;
  if (normalize) pend.stats = std::move(stats);
  pending_.push_back(std::move(pend));
  next_ += count;
  const std::size_t commit_every = std::max<std::size_t>(
      1, opts_.commit_every);
  if (pending_.size() >= commit_every || next_ >= reader_.num_steps()) {
    flush_pending();
  }

  if (out != nullptr) {
    out->step_first = next_ - count;
    out->step_count = count;
    out->error_bound = error_bound;
    out->compression_ratio = ratio;
    out->seconds = timer.seconds();
  }
  return true;
}

void StreamingCompressor::flush_pending() {
  if (pending_.empty()) return;
  obs::Span span("stream.append",
                 static_cast<std::int64_t>(pending_.front().step_first));
  std::vector<pario::ArchiveWindow> wins;
  wins.reserve(pending_.size());
  for (const PendingWindow& p : pending_) {
    pario::ArchiveWindow w;
    w.step_first = p.step_first;
    w.eps = p.eps;
    w.core = &p.model.core;
    w.factors = std::span<const tensor::Matrix>(p.model.factors);
    w.stats = p.has_stats ? &p.stats : nullptr;
    wins.push_back(w);
  }
  pario::archive_append_models(
      archive_path_, std::span<const pario::ArchiveWindow>(wins));
  pending_.clear();
}

std::vector<StreamingCompressor::WindowResult>
StreamingCompressor::compress_all() {
  std::vector<WindowResult> results;
  WindowResult r;
  while (compress_next(&r)) results.push_back(r);
  return results;
}

StreamingReconstructor::StreamingReconstructor(const std::string& archive_path)
    : archive_(archive_path) {}

dist::DistTensor StreamingReconstructor::reconstruct_steps(
    std::shared_ptr<mps::CartGrid> grid, std::uint64_t step_lo,
    std::uint64_t step_hi, std::vector<util::Range> spatial,
    bool denormalize) const {
  PT_REQUIRE(grid != nullptr, "reconstruct_steps: null grid");
  const tensor::Dims& sdims = archive_.step_dims();
  const std::size_t sorder = sdims.size();
  PT_REQUIRE(grid->order() == static_cast<int>(sorder) + 1,
             "reconstruct_steps: grid order " << grid->order()
                                              << " != step order + 1");
  PT_REQUIRE(grid->extent(static_cast<int>(sorder)) == 1,
             "reconstruct_steps: the grid's time extent must be 1 (time "
             "stitching is local; distribute the spatial modes instead, or "
             "use serve::QueryServer for the grid-free single-process path)");
  if (spatial.empty()) {
    spatial.resize(sorder);
    for (std::size_t n = 0; n < sorder; ++n) spatial[n] = {0, sdims[n]};
  }
  PT_REQUIRE(spatial.size() == sorder,
             "reconstruct_steps: one spatial range per step mode");
  for (std::size_t n = 0; n < sorder; ++n) {
    PT_REQUIRE(spatial[n].lo < spatial[n].hi && spatial[n].hi <= sdims[n],
               "reconstruct_steps: spatial range out of bounds in mode "
                   << n);
  }
  const std::vector<std::size_t> hits = archive_.covering(step_lo, step_hi);

  tensor::Dims out_dims(sorder + 1);
  for (std::size_t n = 0; n < sorder; ++n) out_dims[n] = spatial[n].size();
  out_dims[sorder] = step_hi - step_lo;
  dist::DistTensor out(std::move(grid), out_dims);
  std::size_t slab = 1;  // elements of one local time slice
  for (std::size_t n = 0; n < sorder; ++n) {
    slab *= out.mode_range(static_cast<int>(n)).size();
  }

  for (std::size_t e : hits) {
    const pario::ArchiveEntry& ent = archive_.entry(e);
    pario::ModelData md = archive_.read_entry(e, out.grid_ptr());
    TuckerTensor model;
    model.core = std::move(md.core);
    model.factors = std::move(md.factors);
    const std::uint64_t glo = std::max<std::uint64_t>(step_lo,
                                                      ent.step_first);
    const std::uint64_t ghi = std::min<std::uint64_t>(step_hi,
                                                      ent.step_end());
    std::vector<util::Range> ranges = spatial;
    ranges.push_back({static_cast<std::size_t>(glo - ent.step_first),
                      static_cast<std::size_t>(ghi - ent.step_first)});
    dist::DistTensor part = reconstruct_range(model, ranges);
    if (md.has_stats && denormalize) {
      PT_REQUIRE(md.stats.species_mode < static_cast<int>(sorder),
                 "reconstruct_steps: archived stats name a non-spatial "
                 "species mode");
      data::denormalize_species_range(
          part, md.stats,
          spatial[static_cast<std::size_t>(md.stats.species_mode)].lo);
    }
    // Stitch along time: the time mode is last (slowest) and undistributed,
    // so this entry's local block is one contiguous slab of out's local
    // block — a pure memcpy, no inter-rank movement.
    if (slab > 0) {
      PT_CHECK(part.local().size() == slab * (ghi - glo),
               "reconstruct_steps: stitch slab size mismatch");
      std::memcpy(out.local().data() + (glo - step_lo) * slab,
                  part.local().data(),
                  part.local().size() * sizeof(double));
    }
  }
  return out;
}

}  // namespace ptucker::core
