#pragma once
/// \file tucker_io.hpp
/// \brief Persistence of compressed Tucker models.
///
/// The compressed artifact is what a simulation pipeline would actually
/// archive or transfer: the core tensor plus factor matrices (plus the
/// normalization statistics if the caller saves them separately). The file
/// is written by rank 0 after gathering the distributed core.
///
/// Format: "PTKR" | u64 version | u64 order | tensor core | matrix U(1..N).

#include <string>

#include "core/tucker_tensor.hpp"

namespace ptucker::core {

/// Collective: gathers the core to rank 0 and writes the model file there.
void save_tucker(const std::string& path, const TuckerTensor& model);

/// Collective: rank 0 reads the file; core is scattered onto \p grid and
/// factors broadcast to all ranks.
[[nodiscard]] TuckerTensor load_tucker(const std::string& path,
                                       std::shared_ptr<mps::CartGrid> grid);

/// Size in bytes of the serialized model (for compression reporting).
[[nodiscard]] std::size_t serialized_bytes(const TuckerTensor& model);

}  // namespace ptucker::core
