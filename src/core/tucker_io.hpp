#pragma once
/// \file tucker_io.hpp
/// \brief Persistence of compressed Tucker models.
///
/// Two container formats (byte layouts in docs/FORMATS.md):
///  - PTZ1 (default): the parallel container from src/pario/ — the core is
///    written and read block-parallel (every rank touches only its own
///    bytes), factors ride in the header. Nothing funnels through rank 0.
///  - PTKR (legacy): rank 0 gathers the core and writes everything; load
///    scatters the core and broadcasts the factors. Kept for old archives
///    and as the ablation baseline.
///
/// load_tucker sniffs the magic, so both formats load transparently.

#include <string>

#include "core/tucker_tensor.hpp"

namespace ptucker::core {

/// On-disk container for save_tucker / serialized_bytes.
enum class ModelFormat {
  Ptz1,  ///< parallel chunked container (default)
  Ptkr,  ///< legacy rank-0 stream format
};

/// Collective: write the model file. PTZ1 writes the core block-parallel;
/// PTKR gathers it to rank 0 first.
void save_tucker(const std::string& path, const TuckerTensor& model,
                 ModelFormat format = ModelFormat::Ptz1);

/// Collective: load a model file of either format onto \p grid.
[[nodiscard]] TuckerTensor load_tucker(const std::string& path,
                                       std::shared_ptr<mps::CartGrid> grid);

/// Size in bytes of the serialized model (for compression reporting). The
/// PTZ1 size depends on the grid of \p model's core (offset-table length).
[[nodiscard]] std::size_t serialized_bytes(
    const TuckerTensor& model, ModelFormat format = ModelFormat::Ptz1);

}  // namespace ptucker::core
