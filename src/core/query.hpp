#pragma once
/// \file query.hpp
/// \brief Compressed-domain queries: evaluate single elements or whole
/// fibers of X̃ directly from the Tucker model, without reconstructing any
/// tensor. This is the logical endpoint of the paper's partial
/// reconstruction story (Sec. II-C): an analyst probing point values or
/// 1-D profiles pays O(prod Rn) per element instead of touching prod(In).

#include "core/tucker_tensor.hpp"

namespace ptucker::core {

/// Sequential query engine over a gathered model. Build it once (gathers
/// the distributed core to every rank via all-gather semantics), then query
/// freely with no further communication — the "analysis on a laptop" mode.
class CompressedQuery {
 public:
  /// Collective: gathers the core to rank 0 and broadcasts it, so every
  /// rank can answer queries independently afterwards.
  explicit CompressedQuery(const TuckerTensor& model);

  /// Build from an already-local core + factors (e.g. after load on 1 rank).
  CompressedQuery(Tensor core, std::vector<Matrix> factors);

  [[nodiscard]] const Dims& data_dims() const { return data_dims_; }

  /// X̃(i1, ..., iN): one element, O(prod Rn) flops. Throws
  /// InvalidArgument on a wrong index arity or any out-of-range component.
  [[nodiscard]] double element(std::span<const std::size_t> index) const;

  /// The mode-n fiber through \p index: values for all in in [0, In) with
  /// the other indices fixed. O(prod Rn * In) flops. Throws
  /// InvalidArgument on an out-of-range \p mode, a wrong index arity, or
  /// any out-of-range component (including index[mode], which the fiber
  /// itself ignores — callers passing garbage there are buggy).
  [[nodiscard]] std::vector<double> fiber(int mode,
                                          std::span<const std::size_t> index)
      const;

 private:
  Tensor core_;
  std::vector<Matrix> factors_;
  Dims data_dims_;

  /// Validate arity and every component of \p index; throws
  /// InvalidArgument.
  void check_index(std::span<const std::size_t> index) const;

  /// Contract the core with one factor row per mode in `skip`-aware order;
  /// returns the remaining tensor (used by both queries).
  [[nodiscard]] Tensor contract_rows(std::span<const std::size_t> index,
                                     int skip_mode) const;
};

}  // namespace ptucker::core
