#include "core/tucker_tensor.hpp"

namespace ptucker::core {

Dims TuckerTensor::data_dims() const {
  Dims dims(factors.size());
  for (std::size_t n = 0; n < factors.size(); ++n) {
    dims[n] = factors[n].rows();
  }
  return dims;
}

std::size_t TuckerTensor::compressed_elements() const {
  std::size_t total = tensor::prod(core.global_dims());
  for (const Matrix& u : factors) total += u.rows() * u.cols();
  return total;
}

std::size_t TuckerTensor::original_elements() const {
  return tensor::prod(data_dims());
}

double TuckerTensor::compression_ratio() const {
  return static_cast<double>(original_elements()) /
         static_cast<double>(compressed_elements());
}

}  // namespace ptucker::core
