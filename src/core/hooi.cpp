#include "core/hooi.hpp"

#include <cmath>

namespace ptucker::core {

HooiResult hooi(const DistTensor& x, const SthosvdOptions& init_options,
                const HooiOptions& options) {
  HooiResult result;
  result.init = st_hosvd(x, init_options);
  result.norm_x = result.init.norm_x;
  const double norm_x_sq = result.init.norm_x_sq;
  const int order = x.order();

  // HOOI takes ownership of the initialization's model; init retains the
  // spectra, error bound, and mode order for inspection, but not the tensor.
  result.tucker = std::move(result.init.tucker);
  std::vector<Matrix>& factors = result.tucker.factors;

  // Ranks are fixed by the initialization.
  std::vector<std::size_t> ranks(static_cast<std::size_t>(order));
  for (int n = 0; n < order; ++n) {
    ranks[static_cast<std::size_t>(n)] =
        factors[static_cast<std::size_t>(n)].cols();
  }

  auto rel_error_sq = [&](double core_norm_sq) {
    return std::max(0.0, norm_x_sq - core_norm_sq) /
           (norm_x_sq > 0.0 ? norm_x_sq : 1.0);
  };

  double err_sq = rel_error_sq(result.tucker.core.norm_squared());
  result.error_history.push_back(std::sqrt(err_sq));

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    DistTensor y;
    for (int n = 0; n < order; ++n) {
      // Y = X x_{m != n} U(m)^T  (paper Alg. 2 line 5). Transposed factors
      // are formed per use; the multi-TTM order is the natural one (the
      // paper notes it does not tune over these orders either).
      std::vector<Matrix> transposed(static_cast<std::size_t>(order));
      std::vector<const Matrix*> ptrs(static_cast<std::size_t>(order),
                                      nullptr);
      std::vector<int> ttm_order;
      for (int m = 0; m < order; ++m) {
        if (m == n) continue;
        transposed[static_cast<std::size_t>(m)] =
            factors[static_cast<std::size_t>(m)].transposed();
        ptrs[static_cast<std::size_t>(m)] =
            &transposed[static_cast<std::size_t>(m)];
        ttm_order.push_back(m);
      }
      y = dist::ttm_chain(x, ptrs, ttm_order, options.ttm_algo,
                          options.timers);

      const std::size_t rank = ranks[static_cast<std::size_t>(n)];
      const dist::RankSelection select = dist::RankSelection::fixed_rank(rank);
      const FactorRoute route = resolve_factor_route(
          options.factor_method, y, n, options.sketch, 0.0, rank);
      dist::FactorResult factor;
      if (route == FactorRoute::Randomized) {
        // Fixed-rank selection: the sketch result is always certified.
        factor = dist::factor_via_sketch(y, n, select, options.sketch,
                                         options.timers)
                     .factor;
      } else if (route == FactorRoute::Tsqr) {
        factor = dist::factor_via_tsqr(y, n, select, options.timers);
      } else {
        const dist::GramColumns s =
            dist::gram(y, n, options.gram_algo, options.timers);
        factor = dist::eigenvectors(s, y.grid(), n, select, options.eig_algo,
                                    options.timers);
      }
      factors[static_cast<std::size_t>(n)] = std::move(factor.u);
    }
    // Core: the last working tensor already has every product but mode N
    // (Alg. 2 line 9 exploits this).
    const Matrix ut_last =
        factors[static_cast<std::size_t>(order - 1)].transposed();
    result.tucker.core =
        dist::ttm(y, ut_last, order - 1, options.ttm_algo, options.timers);

    const double new_err_sq = rel_error_sq(result.tucker.core.norm_squared());
    result.error_history.push_back(std::sqrt(new_err_sq));
    result.sweeps = sweep + 1;

    const double improvement = err_sq - new_err_sq;
    err_sq = new_err_sq;
    if (options.target_error > 0.0 &&
        new_err_sq <= options.target_error * options.target_error) {
      break;
    }
    if (improvement < options.improvement_tol) break;
  }
  return result;
}

}  // namespace ptucker::core
