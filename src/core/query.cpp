#include "core/query.hpp"

#include "mps/collectives.hpp"
#include "tensor/local_kernels.hpp"

namespace ptucker::core {

CompressedQuery::CompressedQuery(const TuckerTensor& model)
    : factors_(model.factors), data_dims_(model.data_dims()) {
  // Gather the core at rank 0, then broadcast so every rank can query.
  Tensor core = model.core.gather(0);
  const mps::Comm& comm = model.core.grid().comm();
  const Dims core_dims = model.core.global_dims();
  if (comm.rank() != 0) core = Tensor(core_dims);
  mps::broadcast(comm, core.span(), 0);
  core_ = std::move(core);
}

CompressedQuery::CompressedQuery(Tensor core, std::vector<Matrix> factors)
    : core_(std::move(core)), factors_(std::move(factors)) {
  data_dims_.resize(factors_.size());
  for (std::size_t n = 0; n < factors_.size(); ++n) {
    PT_REQUIRE(factors_[n].cols() == core_.dim(static_cast<int>(n)),
               "query: factor/core rank mismatch in mode " << n);
    data_dims_[n] = factors_[n].rows();
  }
}

void CompressedQuery::check_index(std::span<const std::size_t> index) const {
  PT_REQUIRE(index.size() == factors_.size(),
             "query: index has " << index.size() << " components, model has "
                                 << factors_.size() << " modes");
  // Every component is validated — including the one a fiber query ignores
  // — so an out-of-range index never silently "works" depending on which
  // query consumed it.
  for (std::size_t n = 0; n < index.size(); ++n) {
    PT_REQUIRE(index[n] < data_dims_[n],
               "query: index " << index[n] << " out of range in mode " << n
                               << " (extent " << data_dims_[n] << ")");
  }
}

Tensor CompressedQuery::contract_rows(std::span<const std::size_t> index,
                                      int skip_mode) const {
  Tensor y = core_;
  // Contract the largest ranks first so intermediates shrink fastest; each
  // step multiplies by a 1 x Rn matrix (a factor row).
  for (int n = 0; n < static_cast<int>(factors_.size()); ++n) {
    if (n == skip_mode) continue;
    const std::size_t un = static_cast<std::size_t>(n);
    Matrix row(1, factors_[un].cols());
    for (std::size_t j = 0; j < row.cols(); ++j) {
      row(0, j) = factors_[un](index[un], j);
    }
    y = tensor::local_ttm(y, row, n);
  }
  return y;
}

double CompressedQuery::element(std::span<const std::size_t> index) const {
  check_index(index);
  const Tensor contracted = contract_rows(index, /*skip_mode=*/-1);
  PT_CHECK(contracted.size() == 1, "query: element contraction not scalar");
  return contracted[0];
}

std::vector<double> CompressedQuery::fiber(
    int mode, std::span<const std::size_t> index) const {
  PT_REQUIRE(mode >= 0 && mode < static_cast<int>(factors_.size()),
             "query: fiber mode " << mode << " out of range (order "
                                  << factors_.size() << ")");
  check_index(index);
  const Tensor contracted = contract_rows(index, mode);
  // contracted has extent R_mode in `mode` and 1 elsewhere; multiply by the
  // full factor to expand to the data extent.
  const Tensor expanded =
      tensor::local_ttm(contracted, factors_[static_cast<std::size_t>(mode)],
                        mode);
  PT_CHECK(expanded.size() == data_dims_[static_cast<std::size_t>(mode)],
           "query: fiber expansion size mismatch");
  return {expanded.data(), expanded.data() + expanded.size()};
}

}  // namespace ptucker::core
