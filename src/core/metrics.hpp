#pragma once
/// \file metrics.hpp
/// \brief Error and compression metrics used throughout the evaluation
/// (paper Sec. VII): normalized RMS error, maximum absolute element error,
/// mode-wise error contributions, and compression ratios.

#include "core/tucker_tensor.hpp"

namespace ptucker::core {

/// ‖X − X̃‖ / ‖X‖ (collective). With the paper's per-species normalization
/// the data is approximately unit-variance, so this equals the normalized
/// RMS error the paper reports.
[[nodiscard]] double normalized_error(const DistTensor& x,
                                      const DistTensor& x_tilde);

/// max |X − X̃| over all elements (collective) — Tab. II's "Max. Abs. Elem.
/// Err." on centered/scaled data.
[[nodiscard]] double max_abs_error(const DistTensor& x,
                                   const DistTensor& x_tilde);

/// Mode-wise normalized RMS contribution for a given spectrum and rank:
/// sqrt(sum_{i >= r} lambda_i) / ‖X‖ (the Fig. 6 curves).
[[nodiscard]] double modewise_error(std::span<const double> eigenvalues_desc,
                                    std::size_t rank, double norm_x);

/// Compression ratio for dims/ranks without building a model (Fig. 7).
[[nodiscard]] double compression_ratio(const tensor::Dims& dims,
                                       const tensor::Dims& ranks);

/// Relative-error estimate from the core norm: sqrt(‖X‖² − ‖G‖²)/‖X‖.
[[nodiscard]] double error_from_core_norm(double norm_x_sq,
                                          double core_norm_sq);

}  // namespace ptucker::core
