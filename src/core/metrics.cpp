#include "core/metrics.hpp"

#include <cmath>

#include "mps/collectives.hpp"

namespace ptucker::core {

double normalized_error(const DistTensor& x, const DistTensor& x_tilde) {
  PT_REQUIRE(x.global_dims() == x_tilde.global_dims(),
             "normalized_error: dimension mismatch");
  const Tensor& a = x.local();
  const Tensor& b = x_tilde.local();
  double diff_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    diff_sq += d * d;
  }
  double sums[2] = {diff_sq, a.norm_squared()};
  mps::allreduce(x.grid().comm(), std::span<double>(sums, 2));
  return sums[1] > 0.0 ? std::sqrt(sums[0] / sums[1]) : std::sqrt(sums[0]);
}

double max_abs_error(const DistTensor& x, const DistTensor& x_tilde) {
  PT_REQUIRE(x.global_dims() == x_tilde.global_dims(),
             "max_abs_error: dimension mismatch");
  const Tensor& a = x.local();
  const Tensor& b = x_tilde.local();
  double max_err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_err = std::max(max_err, std::fabs(a[i] - b[i]));
  }
  return mps::allreduce_scalar(x.grid().comm(), max_err,
                               mps::Max<double>{});
}

double modewise_error(std::span<const double> eigenvalues_desc,
                      std::size_t rank, double norm_x) {
  double tail = 0.0;
  for (std::size_t i = eigenvalues_desc.size(); i-- > rank;) {
    tail += std::max(0.0, eigenvalues_desc[i]);
  }
  return norm_x > 0.0 ? std::sqrt(tail) / norm_x : 0.0;
}

double compression_ratio(const tensor::Dims& dims, const tensor::Dims& ranks) {
  PT_REQUIRE(dims.size() == ranks.size(), "compression_ratio: order mismatch");
  double compressed = 1.0;
  for (std::size_t r : ranks) compressed *= static_cast<double>(r);
  for (std::size_t n = 0; n < dims.size(); ++n) {
    compressed += static_cast<double>(dims[n]) * static_cast<double>(ranks[n]);
  }
  return static_cast<double>(tensor::prod(dims)) / compressed;
}

double error_from_core_norm(double norm_x_sq, double core_norm_sq) {
  const double err_sq = std::max(0.0, norm_x_sq - core_norm_sq);
  return norm_x_sq > 0.0 ? std::sqrt(err_sq / norm_x_sq) : std::sqrt(err_sq);
}

}  // namespace ptucker::core
