#pragma once
/// \file tucker_tensor.hpp
/// \brief The compressed representation: core tensor G (distributed) plus
/// factor matrices U(n) (replicated), X ~ G x1 U(1) x2 ... xN U(N).

#include "dist/dist_tensor.hpp"
#include "tensor/matrix.hpp"

namespace ptucker::core {

using dist::DistTensor;
using tensor::Dims;
using tensor::Matrix;
using tensor::Tensor;

struct TuckerTensor {
  DistTensor core;              ///< G, size R1 x ... x RN, block distributed
  std::vector<Matrix> factors;  ///< U(n): In x Rn, replicated on every rank

  [[nodiscard]] int order() const {
    return static_cast<int>(factors.size());
  }

  /// Dimensions of the (uncompressed) data tensor.
  [[nodiscard]] Dims data_dims() const;

  /// Reduced dimensions (R1, ..., RN).
  [[nodiscard]] Dims core_dims() const { return core.global_dims(); }

  /// Element count of the compressed representation:
  /// prod(Rn) + sum(In * Rn)  (paper Sec. VII-B).
  [[nodiscard]] std::size_t compressed_elements() const;

  /// Element count of the original data: prod(In).
  [[nodiscard]] std::size_t original_elements() const;

  /// Compression ratio C = original / compressed (paper eq. in Sec. VII-B).
  [[nodiscard]] double compression_ratio() const;

  /// ‖G‖ (collective).
  [[nodiscard]] double core_norm() const { return core.norm(); }
};

}  // namespace ptucker::core
