#include "core/st_hosvd.hpp"

#include <cmath>

#include "costmodel/tucker_model.hpp"

namespace ptucker::core {

bool use_tsqr_route(FactorMethod method, const DistTensor& y, int mode) {
  switch (method) {
    case FactorMethod::GramEig:
      return false;
    case FactorMethod::TsqrSvd:
      return true;
    case FactorMethod::Auto:
      return costmodel::prefer_tsqr(y.global_dims(), mode, y.grid().shape());
  }
  return false;
}

SthosvdResult st_hosvd(const DistTensor& x, const SthosvdOptions& options) {
  const int order = x.order();
  PT_REQUIRE(options.fixed_ranks.empty() ||
                 static_cast<int>(options.fixed_ranks.size()) == order,
             "st_hosvd: fixed_ranks must have one entry per mode");
  PT_REQUIRE(options.epsilon >= 0.0, "st_hosvd: epsilon must be >= 0");

  SthosvdResult result;
  result.norm_x_sq = x.norm_squared();
  result.norm_x = std::sqrt(result.norm_x_sq);
  result.mode_eigenvalues.resize(static_cast<std::size_t>(order));
  result.mode_order_used = resolve_mode_order(
      options.order_strategy, x.global_dims(), options.fixed_ranks,
      options.custom_order);

  // Tail threshold per mode: eps^2 ||X||^2 / N (Alg. 1 line 5).
  const double tail_threshold =
      options.epsilon * options.epsilon * result.norm_x_sq /
      static_cast<double>(order);

  result.tucker.factors.resize(static_cast<std::size_t>(order));
  DistTensor y = x.clone();
  double tail_total = 0.0;

  for (int n : result.mode_order_used) {
    const dist::RankSelection select =
        options.fixed_ranks.empty()
            ? dist::RankSelection::threshold(tail_threshold)
            : dist::RankSelection::fixed_rank(
                  options.fixed_ranks[static_cast<std::size_t>(n)]);
    dist::FactorResult factor;
    if (use_tsqr_route(options.factor_method, y, n)) {
      factor = dist::factor_via_tsqr(y, n, select, options.timers);
      result.tsqr_modes.push_back(n);
    } else {
      const dist::GramColumns s =
          dist::gram(y, n, options.gram_algo, options.timers);
      factor = dist::eigenvectors(s, y.grid(), n, select, options.eig_algo,
                                  options.timers);
    }

    // Account the truncated tail toward the eq. (3) error bound.
    for (std::size_t i = factor.rank; i < factor.eigenvalues.size(); ++i) {
      tail_total += std::max(0.0, factor.eigenvalues[i]);
    }
    result.mode_eigenvalues[static_cast<std::size_t>(n)] =
        factor.eigenvalues;

    // Truncate: Y <- Y x_n U^T.
    const Matrix ut = factor.u.transposed();
    y = dist::ttm(y, ut, n, options.ttm_algo, options.timers);
    result.tucker.factors[static_cast<std::size_t>(n)] = std::move(factor.u);
  }

  result.tucker.core = std::move(y);
  result.error_bound =
      result.norm_x > 0.0 ? std::sqrt(tail_total) / result.norm_x : 0.0;
  return result;
}

}  // namespace ptucker::core
