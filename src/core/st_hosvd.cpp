#include "core/st_hosvd.hpp"

#include <cmath>

#include "costmodel/tucker_model.hpp"
#include "obs/trace.hpp"

namespace ptucker::core {

std::string_view factor_route_name(FactorRoute route) {
  switch (route) {
    case FactorRoute::Gram:
      return "gram";
    case FactorRoute::Tsqr:
      return "tsqr";
    case FactorRoute::Randomized:
      return "randomized";
  }
  return "?";
}

FactorRoute resolve_factor_route(FactorMethod method, const DistTensor& y,
                                 int mode, const dist::SketchOptions& sketch,
                                 double epsilon, std::size_t fixed_rank) {
  switch (method) {
    case FactorMethod::GramEig:
      return FactorRoute::Gram;
    case FactorMethod::TsqrSvd:
      return FactorRoute::Tsqr;
    case FactorMethod::Randomized:
      return FactorRoute::Randomized;
    case FactorMethod::Auto: {
      // The sketch only enters the running when the posteriori eq. 3 check
      // has headroom: fixed-rank selection never falls back, and a loose
      // eps leaves slack for the sketch residual. A tight eps would
      // routinely reject the sketch and pay for both routes.
      const bool sketch_eligible =
          fixed_rank > 0 || epsilon >= sketch.auto_min_epsilon;
      if (sketch_eligible) {
        const std::size_t width =
            dist::sketch_width(y.global_dim(mode), fixed_rank, sketch);
        if (costmodel::prefer_sketch(y.global_dims(), mode, width,
                                     sketch.power_iterations,
                                     y.grid().shape())) {
          return FactorRoute::Randomized;
        }
      }
      return costmodel::prefer_tsqr(y.global_dims(), mode, y.grid().shape())
                 ? FactorRoute::Tsqr
                 : FactorRoute::Gram;
    }
  }
  return FactorRoute::Gram;
}

SthosvdResult st_hosvd(const DistTensor& x, const SthosvdOptions& options) {
  const int order = x.order();
  PT_REQUIRE(options.fixed_ranks.empty() ||
                 static_cast<int>(options.fixed_ranks.size()) == order,
             "st_hosvd: fixed_ranks must have one entry per mode");
  PT_REQUIRE(options.epsilon >= 0.0, "st_hosvd: epsilon must be >= 0");

  SthosvdResult result;
  result.norm_x_sq = x.norm_squared();
  result.norm_x = std::sqrt(result.norm_x_sq);
  result.mode_eigenvalues.resize(static_cast<std::size_t>(order));
  result.mode_routes.assign(static_cast<std::size_t>(order),
                            FactorRoute::Gram);
  result.mode_order_used = resolve_mode_order(
      options.order_strategy, x.global_dims(), options.fixed_ranks,
      options.custom_order);

  // Tail threshold per mode: eps^2 ||X||^2 / N (Alg. 1 line 5).
  const double tail_threshold =
      options.epsilon * options.epsilon * result.norm_x_sq /
      static_cast<double>(order);

  result.tucker.factors.resize(static_cast<std::size_t>(order));
  DistTensor y = x.clone();
  double tail_total = 0.0;

  for (int n : result.mode_order_used) {
    // Span names match the KernelTimers buckets so a trace of one run
    // shows the Fig. 8 decomposition as a timeline, mode in the arg.
    obs::Span span_mode("st_hosvd.mode", n);
    const std::size_t fixed_rank =
        options.fixed_ranks.empty()
            ? std::size_t{0}
            : options.fixed_ranks[static_cast<std::size_t>(n)];
    const dist::RankSelection select =
        options.fixed_ranks.empty()
            ? dist::RankSelection::threshold(tail_threshold)
            : dist::RankSelection::fixed_rank(fixed_rank);
    FactorRoute route =
        resolve_factor_route(options.factor_method, y, n, options.sketch,
                             options.epsilon, fixed_rank);

    dist::FactorResult factor;
    if (route == FactorRoute::Randomized) {
      dist::SketchFactorResult sk = [&] {
        obs::Span span("Sketch", n);
        return dist::factor_via_sketch(y, n, select, options.sketch,
                                       options.timers);
      }();
      result.sketches.push_back({n, sk.seed, sk.width, sk.power_iterations,
                                 !sk.certified});
      if (sk.certified) {
        factor = std::move(sk.factor);
        // The energy outside the sketch subspace is part of what the
        // truncation discards — charge it to the eq. 3 tail.
        tail_total += sk.residual_energy;
      } else {
        route = FactorRoute::Gram;
        result.downgrades.push_back(
            {n, FactorRoute::Randomized, FactorRoute::Gram,
             "sketch residual exceeds the eq. 3 per-mode budget"});
      }
    }
    if (route == FactorRoute::Tsqr) {
      obs::Span span("TSQR", n);
      factor = dist::factor_via_tsqr(y, n, select, options.timers);
      result.tsqr_modes.push_back(n);
    } else if (route == FactorRoute::Gram) {
      const dist::GramColumns s = [&] {
        obs::Span span("Gram", n);
        return dist::gram(y, n, options.gram_algo, options.timers);
      }();
      obs::Span span("Evecs", n);
      factor = dist::eigenvectors(s, y.grid(), n, select, options.eig_algo,
                                  options.timers);
    }
    result.mode_routes[static_cast<std::size_t>(n)] = route;

    // Account the truncated tail toward the eq. (3) error bound.
    for (std::size_t i = factor.rank; i < factor.eigenvalues.size(); ++i) {
      tail_total += std::max(0.0, factor.eigenvalues[i]);
    }
    result.mode_eigenvalues[static_cast<std::size_t>(n)] =
        factor.eigenvalues;

    // Truncate: Y <- Y x_n U^T.
    const Matrix ut = factor.u.transposed();
    {
      obs::Span span("TTM", n);
      y = dist::ttm(y, ut, n, options.ttm_algo, options.timers);
    }
    result.tucker.factors[static_cast<std::size_t>(n)] = std::move(factor.u);
  }

  result.tucker.core = std::move(y);
  result.error_bound =
      result.norm_x > 0.0 ? std::sqrt(tail_total) / result.norm_x : 0.0;
  return result;
}

}  // namespace ptucker::core
