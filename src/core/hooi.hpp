#pragma once
/// \file hooi.hpp
/// \brief Higher-order orthogonal iteration (paper Alg. 2).
///
/// Alternating optimization initialized by ST-HOSVD: for each mode n,
/// multiply X by every other factor transpose (multi-TTM), recompute the
/// Gram matrix and take its leading Rn eigenvectors as the new factor. The
/// model fit ‖X − G x {U}‖² equals ‖X‖² − ‖G‖² (paper line 10), which
/// decreases monotonically; iteration stops on small improvement, reaching
/// the error target, or the sweep limit.

#include "core/st_hosvd.hpp"

namespace ptucker::core {

struct HooiOptions {
  int max_sweeps = 10;
  /// Stop when the decrease of (‖X‖² − ‖G‖²) / ‖X‖² falls below this.
  double improvement_tol = 1e-6;
  /// Stop early when relative error reaches this target (0 = disabled).
  double target_error = 0.0;

  dist::TtmAlgo ttm_algo = dist::TtmAlgo::Auto;
  dist::GramAlgo gram_algo = dist::GramAlgo::Auto;
  dist::EigAlgo eig_algo = dist::EigAlgo::TridiagonalQL;
  /// Route for the per-mode factor update: Gram + eig (paper default),
  /// Gram-free TSQR, the randomized sketch, or the per-mode cost-model
  /// choice. Works on any grid.
  FactorMethod factor_method = FactorMethod::GramEig;
  /// Knobs for FactorMethod::Randomized. HOOI sweeps use fixed-rank
  /// selection, so the sketch never needs the eps-tail fallback here.
  dist::SketchOptions sketch;
  util::KernelTimers* timers = nullptr;
};

struct HooiResult {
  TuckerTensor tucker;
  /// Relative error sqrt(‖X‖² − ‖G‖²)/‖X‖ after init and after each sweep.
  std::vector<double> error_history;
  int sweeps = 0;
  double norm_x = 0.0;
  SthosvdResult init;  ///< the ST-HOSVD initialization (spectra, bound, ...)
};

/// Run ST-HOSVD initialization followed by HOOI sweeps. Ranks are chosen by
/// the initialization (via \p init_options) and stay fixed during HOOI.
[[nodiscard]] HooiResult hooi(const DistTensor& x,
                              const SthosvdOptions& init_options = {},
                              const HooiOptions& options = {});

}  // namespace ptucker::core
