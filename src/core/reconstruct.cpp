#include "core/reconstruct.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "tensor/local_kernels.hpp"

namespace ptucker::core {

namespace {

/// Multiply small modes first: applying the factor with the smallest
/// output/input growth early keeps intermediates small. Shared by the
/// distributed reconstruction and the sequential serve-layer evaluation so
/// the two paths contract in the same order (bit-identical floats on a
/// 1-rank grid).
std::vector<int> growth_sorted_modes(std::span<const Matrix> factors) {
  std::vector<int> mode_order(factors.size());
  std::iota(mode_order.begin(), mode_order.end(), 0);
  std::stable_sort(mode_order.begin(), mode_order.end(), [&](int a, int b) {
    const auto& fa = factors[static_cast<std::size_t>(a)];
    const auto& fb = factors[static_cast<std::size_t>(b)];
    const double ga = static_cast<double>(fa.rows()) /
                      static_cast<double>(std::max<std::size_t>(1, fa.cols()));
    const double gb = static_cast<double>(fb.rows()) /
                      static_cast<double>(std::max<std::size_t>(1, fb.cols()));
    return ga < gb;
  });
  return mode_order;
}

DistTensor reconstruct_with_factors(const TuckerTensor& model,
                                    const std::vector<Matrix>& factors,
                                    dist::TtmAlgo algo,
                                    util::KernelTimers* timers) {
  const int order = model.order();
  const std::vector<int> mode_order =
      growth_sorted_modes(std::span<const Matrix>(factors));
  std::vector<const Matrix*> ptrs(static_cast<std::size_t>(order));
  for (int n = 0; n < order; ++n) {
    ptrs[static_cast<std::size_t>(n)] = &factors[static_cast<std::size_t>(n)];
  }
  return dist::ttm_chain(model.core, ptrs, mode_order, algo, timers);
}

}  // namespace

DistTensor reconstruct(const TuckerTensor& model, dist::TtmAlgo algo,
                       util::KernelTimers* timers) {
  return reconstruct_with_factors(model, model.factors, algo, timers);
}

DistTensor reconstruct_subtensor(
    const TuckerTensor& model,
    const std::vector<std::vector<std::size_t>>& index_sets,
    dist::TtmAlgo algo, util::KernelTimers* timers) {
  PT_REQUIRE(index_sets.size() == static_cast<std::size_t>(model.order()),
             "reconstruct_subtensor: one index set per mode required");
  std::vector<Matrix> sub_factors(index_sets.size());
  for (std::size_t n = 0; n < index_sets.size(); ++n) {
    const Matrix& u = model.factors[n];
    if (index_sets[n].empty()) {
      sub_factors[n] = u;
    } else {
      sub_factors[n] = u.row_subset(std::span<const std::size_t>(
          index_sets[n].data(), index_sets[n].size()));
    }
  }
  return reconstruct_with_factors(model, sub_factors, algo, timers);
}

DistTensor reconstruct_range(const TuckerTensor& model,
                             const std::vector<util::Range>& ranges,
                             dist::TtmAlgo algo, util::KernelTimers* timers) {
  PT_REQUIRE(ranges.size() == static_cast<std::size_t>(model.order()),
             "reconstruct_range: one range per mode required");
  std::vector<std::vector<std::size_t>> index_sets(ranges.size());
  for (std::size_t n = 0; n < ranges.size(); ++n) {
    index_sets[n].resize(ranges[n].size());
    std::iota(index_sets[n].begin(), index_sets[n].end(), ranges[n].lo);
  }
  return reconstruct_subtensor(model, index_sets, algo, timers);
}

tensor::Tensor reconstruct_range_local(const tensor::Tensor& core,
                                       std::span<const Matrix> factors,
                                       const std::vector<util::Range>& ranges) {
  PT_REQUIRE(factors.size() == static_cast<std::size_t>(core.order()),
             "reconstruct_range_local: " << factors.size()
                                         << " factors for an order-"
                                         << core.order() << " core");
  PT_REQUIRE(ranges.size() == factors.size(),
             "reconstruct_range_local: one range per mode required");
  std::vector<Matrix> sub(factors.size());
  for (std::size_t n = 0; n < factors.size(); ++n) {
    PT_REQUIRE(factors[n].cols() == core.dim(static_cast<int>(n)),
               "reconstruct_range_local: factor/core rank mismatch in mode "
                   << n);
    PT_REQUIRE(ranges[n].lo < ranges[n].hi &&
                   ranges[n].hi <= factors[n].rows(),
               "reconstruct_range_local: range [" << ranges[n].lo << ", "
                                                  << ranges[n].hi
                                                  << ") out of bounds in mode "
                                                  << n << " (extent "
                                                  << factors[n].rows() << ")");
    // row_block copies the same rows row_subset(iota) would, so this stays
    // element-for-element the matrix reconstruct_range builds.
    sub[n] = ranges[n].lo == 0 && ranges[n].hi == factors[n].rows()
                 ? factors[n]
                 : factors[n].row_block(ranges[n]);
  }
  // Same contraction order as reconstruct_with_factors; on a 1-rank grid
  // dist::ttm is exactly local_ttm_into, so this function is bit-identical
  // to reconstruct_range evaluated on one rank.
  const std::vector<int> mode_order =
      growth_sorted_modes(std::span<const Matrix>(sub));
  tensor::Tensor result;
  bool first = true;
  for (int n : mode_order) {
    result = tensor::local_ttm(first ? core : result,
                               sub[static_cast<std::size_t>(n)], n);
    first = false;
  }
  if (first) return core;
  return result;
}

}  // namespace ptucker::core
