#include "core/reconstruct.hpp"

#include <algorithm>
#include <numeric>

namespace ptucker::core {

namespace {

DistTensor reconstruct_with_factors(const TuckerTensor& model,
                                    const std::vector<Matrix>& factors,
                                    dist::TtmAlgo algo,
                                    util::KernelTimers* timers) {
  // Multiply small modes first: applying the factor with the smallest
  // output/input growth early keeps intermediates small.
  const int order = model.order();
  std::vector<int> mode_order(static_cast<std::size_t>(order));
  std::iota(mode_order.begin(), mode_order.end(), 0);
  std::stable_sort(mode_order.begin(), mode_order.end(), [&](int a, int b) {
    const auto& fa = factors[static_cast<std::size_t>(a)];
    const auto& fb = factors[static_cast<std::size_t>(b)];
    const double ga = static_cast<double>(fa.rows()) /
                      static_cast<double>(std::max<std::size_t>(1, fa.cols()));
    const double gb = static_cast<double>(fb.rows()) /
                      static_cast<double>(std::max<std::size_t>(1, fb.cols()));
    return ga < gb;
  });
  std::vector<const Matrix*> ptrs(static_cast<std::size_t>(order));
  for (int n = 0; n < order; ++n) {
    ptrs[static_cast<std::size_t>(n)] = &factors[static_cast<std::size_t>(n)];
  }
  return dist::ttm_chain(model.core, ptrs, mode_order, algo, timers);
}

}  // namespace

DistTensor reconstruct(const TuckerTensor& model, dist::TtmAlgo algo,
                       util::KernelTimers* timers) {
  return reconstruct_with_factors(model, model.factors, algo, timers);
}

DistTensor reconstruct_subtensor(
    const TuckerTensor& model,
    const std::vector<std::vector<std::size_t>>& index_sets,
    dist::TtmAlgo algo, util::KernelTimers* timers) {
  PT_REQUIRE(index_sets.size() == static_cast<std::size_t>(model.order()),
             "reconstruct_subtensor: one index set per mode required");
  std::vector<Matrix> sub_factors(index_sets.size());
  for (std::size_t n = 0; n < index_sets.size(); ++n) {
    const Matrix& u = model.factors[n];
    if (index_sets[n].empty()) {
      sub_factors[n] = u;
    } else {
      sub_factors[n] = u.row_subset(std::span<const std::size_t>(
          index_sets[n].data(), index_sets[n].size()));
    }
  }
  return reconstruct_with_factors(model, sub_factors, algo, timers);
}

DistTensor reconstruct_range(const TuckerTensor& model,
                             const std::vector<util::Range>& ranges,
                             dist::TtmAlgo algo, util::KernelTimers* timers) {
  PT_REQUIRE(ranges.size() == static_cast<std::size_t>(model.order()),
             "reconstruct_range: one range per mode required");
  std::vector<std::vector<std::size_t>> index_sets(ranges.size());
  for (std::size_t n = 0; n < ranges.size(); ++n) {
    index_sets[n].resize(ranges[n].size());
    std::iota(index_sets[n].begin(), index_sets[n].end(), ranges[n].lo);
  }
  return reconstruct_subtensor(model, index_sets, algo, timers);
}

}  // namespace ptucker::core
