#pragma once
/// \file reconstruct.hpp
/// \brief Reconstruction from a Tucker model (paper Sec. II-C):
/// X̃ = G x1 U(1) ... xN U(N), and partial reconstruction of arbitrary
/// sub-tensors using row subsets of the factors — the paper's key analysis
/// feature ("extract only the reconstruction of a single species, a few
/// time steps, a coarser grid, a subset of the grid").

#include <span>

#include "core/tucker_tensor.hpp"
#include "dist/ttm.hpp"

namespace ptucker::core {

/// Full reconstruction (collective): returns an In1 x ... x InN distributed
/// tensor on the same grid as the core.
[[nodiscard]] DistTensor reconstruct(const TuckerTensor& model,
                                     dist::TtmAlgo algo = dist::TtmAlgo::Auto,
                                     util::KernelTimers* timers = nullptr);

/// Partial reconstruction: only the given global indices of each mode are
/// produced (empty selection = all indices of that mode). The result is a
/// |sel_1| x ... x |sel_N| distributed tensor. Cost scales with the output
/// size, never with prod(In).
[[nodiscard]] DistTensor reconstruct_subtensor(
    const TuckerTensor& model,
    const std::vector<std::vector<std::size_t>>& index_sets,
    dist::TtmAlgo algo = dist::TtmAlgo::Auto,
    util::KernelTimers* timers = nullptr);

/// Convenience overload for contiguous ranges.
[[nodiscard]] DistTensor reconstruct_range(
    const TuckerTensor& model, const std::vector<util::Range>& ranges,
    dist::TtmAlgo algo = dist::TtmAlgo::Auto,
    util::KernelTimers* timers = nullptr);

/// Sequential partial reconstruction of a box: contract \p core with the
/// [lo, hi) row blocks of each factor, smallest-growth mode first — the
/// serve layer's per-query evaluation. Communication-free (no grid, no
/// runtime) and bit-identical to reconstruct_range of the same box on a
/// 1-rank grid: the contraction order is shared, and on one rank the
/// distributed TTM collapses to the same local kernel call.
[[nodiscard]] tensor::Tensor reconstruct_range_local(
    const tensor::Tensor& core, std::span<const tensor::Matrix> factors,
    const std::vector<util::Range>& ranges);

}  // namespace ptucker::core
