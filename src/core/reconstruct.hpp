#pragma once
/// \file reconstruct.hpp
/// \brief Reconstruction from a Tucker model (paper Sec. II-C):
/// X̃ = G x1 U(1) ... xN U(N), and partial reconstruction of arbitrary
/// sub-tensors using row subsets of the factors — the paper's key analysis
/// feature ("extract only the reconstruction of a single species, a few
/// time steps, a coarser grid, a subset of the grid").

#include "core/tucker_tensor.hpp"
#include "dist/ttm.hpp"

namespace ptucker::core {

/// Full reconstruction (collective): returns an In1 x ... x InN distributed
/// tensor on the same grid as the core.
[[nodiscard]] DistTensor reconstruct(const TuckerTensor& model,
                                     dist::TtmAlgo algo = dist::TtmAlgo::Auto,
                                     util::KernelTimers* timers = nullptr);

/// Partial reconstruction: only the given global indices of each mode are
/// produced (empty selection = all indices of that mode). The result is a
/// |sel_1| x ... x |sel_N| distributed tensor. Cost scales with the output
/// size, never with prod(In).
[[nodiscard]] DistTensor reconstruct_subtensor(
    const TuckerTensor& model,
    const std::vector<std::vector<std::size_t>>& index_sets,
    dist::TtmAlgo algo = dist::TtmAlgo::Auto,
    util::KernelTimers* timers = nullptr);

/// Convenience overload for contiguous ranges.
[[nodiscard]] DistTensor reconstruct_range(
    const TuckerTensor& model, const std::vector<util::Range>& ranges,
    dist::TtmAlgo algo = dist::TtmAlgo::Auto,
    util::KernelTimers* timers = nullptr);

}  // namespace ptucker::core
