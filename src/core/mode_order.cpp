#include "core/mode_order.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace ptucker::core {

namespace {

/// Greedy flop-minimizing order (Vannieuwenhoven et al. heuristic, cited in
/// paper Sec. VIII-C): at each step pick the unprocessed mode whose
/// Gram + TTM flops for the *current* working dims are smallest.
std::vector<int> greedy_flops_order(const tensor::Dims& dims,
                                    const std::vector<std::size_t>& ranks) {
  const int order = static_cast<int>(dims.size());
  tensor::Dims work = dims;
  std::vector<bool> done(dims.size(), false);
  std::vector<int> result;
  for (int step = 0; step < order; ++step) {
    int best = -1;
    double best_cost = 0.0;
    const double volume = static_cast<double>(tensor::prod(work));
    for (int n = 0; n < order; ++n) {
      if (done[static_cast<std::size_t>(n)]) continue;
      const double jn = static_cast<double>(work[static_cast<std::size_t>(n)]);
      const double rn =
          ranks.empty()
              ? jn  // unknown target rank: assume no reduction for the TTM
              : static_cast<double>(ranks[static_cast<std::size_t>(n)]);
      // Gram: 2 * Jn * J; TTM: 2 * Rn * J flops on the current working size.
      const double cost = 2.0 * jn * volume + 2.0 * rn * volume;
      if (best < 0 || cost < best_cost) {
        best = n;
        best_cost = cost;
      }
    }
    result.push_back(best);
    done[static_cast<std::size_t>(best)] = true;
    if (!ranks.empty()) {
      work[static_cast<std::size_t>(best)] =
          ranks[static_cast<std::size_t>(best)];
    }
  }
  return result;
}

/// Greedy compression-ratio order: maximize In/Rn first (paper Sec. VIII-C
/// "another reasonable heuristic").
std::vector<int> greedy_ratio_order(const tensor::Dims& dims,
                                    const std::vector<std::size_t>& ranks) {
  std::vector<int> order(dims.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra = static_cast<double>(dims[static_cast<std::size_t>(a)]) /
                      static_cast<double>(ranks[static_cast<std::size_t>(a)]);
    const double rb = static_cast<double>(dims[static_cast<std::size_t>(b)]) /
                      static_cast<double>(ranks[static_cast<std::size_t>(b)]);
    return ra > rb;
  });
  return order;
}

}  // namespace

std::vector<int> resolve_mode_order(ModeOrderStrategy strategy,
                                    const tensor::Dims& dims,
                                    const std::vector<std::size_t>& ranks,
                                    const std::vector<int>& custom) {
  const int order = static_cast<int>(dims.size());
  switch (strategy) {
    case ModeOrderStrategy::Natural: {
      std::vector<int> result(dims.size());
      std::iota(result.begin(), result.end(), 0);
      return result;
    }
    case ModeOrderStrategy::Custom: {
      PT_REQUIRE(static_cast<int>(custom.size()) == order,
                 "custom mode order must be a permutation of all modes");
      std::vector<bool> seen(dims.size(), false);
      for (int n : custom) {
        PT_REQUIRE(n >= 0 && n < order && !seen[static_cast<std::size_t>(n)],
                   "custom mode order is not a permutation");
        seen[static_cast<std::size_t>(n)] = true;
      }
      return custom;
    }
    case ModeOrderStrategy::GreedyFlops:
      return greedy_flops_order(dims, ranks);
    case ModeOrderStrategy::GreedyRatio:
      if (ranks.empty()) return greedy_flops_order(dims, ranks);
      return greedy_ratio_order(dims, ranks);
  }
  throw InternalError("unknown mode order strategy");
}

}  // namespace ptucker::core
