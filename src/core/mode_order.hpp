#pragma once
/// \file mode_order.hpp
/// \brief Mode-processing-order strategies for ST-HOSVD (paper Sec. VIII-C).
///
/// The order in which ST-HOSVD processes modes does not change the error
/// guarantee but strongly affects cost: each truncation shrinks the working
/// tensor for all later modes. The paper discusses two heuristics: the
/// ST-HOSVD authors' greedy flop-minimizing order and a greedy
/// compression-ratio order (maximize In/Rn). Neither is always optimal
/// (Fig. 8b); bench/fig8b_mode_order sweeps explicit orders.

#include <vector>

#include "tensor/tensor.hpp"

namespace ptucker::core {

enum class ModeOrderStrategy {
  Natural,      ///< 1, 2, ..., N (paper Alg. 1 as written)
  Custom,       ///< caller-provided permutation
  GreedyFlops,  ///< per step, pick the unprocessed mode minimizing the
                ///< current iteration's Gram+TTM flops
  GreedyRatio,  ///< per step, pick the unprocessed mode maximizing In/Rn
                ///< (requires known target ranks; falls back to GreedyFlops)
};

/// Resolve the processing order for the given strategy.
/// \p dims are the full tensor dims; \p ranks the target ranks (may be empty
/// when using an error threshold — ratio-based strategies then fall back).
/// \p custom is used only for ModeOrderStrategy::Custom.
[[nodiscard]] std::vector<int> resolve_mode_order(
    ModeOrderStrategy strategy, const tensor::Dims& dims,
    const std::vector<std::size_t>& ranks, const std::vector<int>& custom);

}  // namespace ptucker::core
