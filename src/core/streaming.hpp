#pragma once
/// \file streaming.hpp
/// \brief The end-to-end in-situ pipeline (paper Sec. II): consume a
/// directory of per-timestep dumps window by window, compress each window
/// with ST-HOSVD, and append the models to ONE PTA1 archive; then answer
/// arbitrary-time-range reconstruction queries against that archive.
///
///   StreamingCompressor   TimestepReader::read_window -> normalize ->
///                         st_hosvd -> pario::archive_append_model
///   StreamingReconstructor maps a global step range onto the covering
///                         archive entries, partially reconstructs each
///                         (row subsets of the time factor), denormalizes
///                         with the per-window archived stats, and stitches
///                         the pieces along the time mode.
///
/// The window size is either fixed by the caller or chosen from the cost
/// model: among the windows whose modeled per-rank working set (paper
/// eq. 2) fits the memory budget, the one with the lowest modeled
/// ST-HOSVD seconds per step (ties to the larger window). The whole
/// archive IO path (append payload, entry loads) stays
/// communication-free; only the compression/reconstruction kernels
/// themselves communicate.

#include <memory>
#include <string>
#include <vector>

#include "core/st_hosvd.hpp"
#include "pario/archive_io.hpp"
#include "pario/timestep_reader.hpp"

namespace ptucker::core {

struct StreamingOptions {
  /// Per-window compression options (epsilon is the per-entry eq. 3 bound).
  SthosvdOptions sthosvd;
  /// Steps per window; 0 = pick from the cost model.
  std::size_t window = 0;
  /// Cap on the automatic window choice.
  std::size_t max_window = 32;
  /// Per-rank working-set budget (doubles) for the automatic choice
  /// (paper eq. 2 memory bound). Default ~0.8 GiB of doubles.
  double memory_budget_doubles = 1.0e8;
  /// Species mode of the step tensors; >= 0 enables per-window
  /// normalization, with the stats archived in each entry.
  int species_mode = -1;
  /// Entry-table capacity of the created archive.
  std::size_t archive_capacity = pario::kDefaultArchiveCapacity;
  /// Windows per archive commit: compressed models are buffered and
  /// appended in batches of this size through archive_append_models, so K
  /// windows cost one bracketing fsync pair instead of K. A crash loses at
  /// most the uncommitted tail of buffered windows (the archive stays
  /// consistent — re-run from its step_end). 1 = commit every window.
  std::size_t commit_every = 1;
};

/// Cost-model window choice (exposed for tests and tools): among the
/// windows in [1, max_window] whose modeled per-rank memory (paper eq. 2)
/// fits the budget, the one with the lowest modeled ST-HOSVD seconds per
/// step — ties going to the larger window (better time-mode compression).
/// Ranks are estimated at half of each extent (the bound must hold before
/// the true eps-driven ranks are known). Window 1 is the floor even when
/// the model says it exceeds the budget: there is no smaller unit of
/// streaming work.
[[nodiscard]] std::size_t pick_streaming_window(
    const tensor::Dims& step_dims, const std::vector<int>& spatial_grid,
    std::size_t max_window, double memory_budget_doubles,
    std::size_t num_steps);

/// Collective driver of the compression side. Construct inside the SPMD
/// region; each call to compress_next consumes one window.
class StreamingCompressor {
 public:
  struct WindowResult {
    std::size_t step_first = 0;
    std::size_t step_count = 0;
    double error_bound = 0.0;        ///< eq. 3 bound of this window
    double compression_ratio = 0.0;  ///< original / compressed elements
    double seconds = 0.0;            ///< read + compress + append wall time
  };

  /// Collective: scans \p step_dir, creates (truncating) the archive at
  /// \p archive_path, builds the processor grid (spatial default shape x 1
  /// time), and resolves the window size.
  StreamingCompressor(mps::Comm& comm, std::string step_dir,
                      std::string archive_path, StreamingOptions options = {});

  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] std::size_t num_steps() const { return reader_.num_steps(); }
  [[nodiscard]] std::size_t next_step() const { return next_; }
  [[nodiscard]] const pario::TimestepReader& reader() const { return reader_; }
  [[nodiscard]] const std::string& archive_path() const {
    return archive_path_;
  }

  /// Collective: compress the next window and append it to the archive
  /// (buffered: the append is committed every commit_every windows and when
  /// the last step is consumed, so the archive is always complete once the
  /// stream is). Returns false (and leaves \p out untouched) when every
  /// step has been consumed. The last window may be short — no step is
  /// ever dropped.
  bool compress_next(WindowResult* out = nullptr);

  /// Collective: drive compress_next to completion.
  std::vector<WindowResult> compress_all();

 private:
  /// One compressed-but-uncommitted window awaiting the batched append.
  struct PendingWindow {
    std::size_t step_first = 0;
    double eps = 0.0;
    TuckerTensor model;
    data::NormalizationStats stats;
    bool has_stats = false;
  };

  /// Collective: commit every buffered window in one batched append.
  void flush_pending();

  mps::Comm& comm_;
  pario::TimestepReader reader_;
  std::string archive_path_;
  StreamingOptions opts_;
  std::shared_ptr<mps::CartGrid> grid_;
  std::size_t window_ = 1;
  std::size_t next_ = 0;
  std::vector<PendingWindow> pending_;
};

/// Query side: maps arbitrary global time ranges onto the covering archive
/// entries and stitches their partial reconstructions. Construction is
/// per-rank and communication-free (every rank parses the archive itself).
class StreamingReconstructor {
 public:
  explicit StreamingReconstructor(const std::string& archive_path);

  [[nodiscard]] const pario::ArchiveReader& archive() const {
    return archive_;
  }
  [[nodiscard]] const tensor::Dims& step_dims() const {
    return archive_.step_dims();
  }
  /// One past the last archived step.
  [[nodiscard]] std::uint64_t num_steps() const {
    return archive_.step_end();
  }

  /// Collective: reconstruct global steps [step_lo, step_hi), restricted to
  /// \p spatial per-mode ranges (empty vector = full extent everywhere), as
  /// a DistTensor on \p grid whose last mode is time. The grid's time
  /// extent must be 1 so stitching entry outputs along time stays local —
  /// the archive read path moves zero words between ranks (the TTM chains
  /// inside reconstruction are the only communication). When an entry
  /// archived normalization stats and \p denormalize is set, physical
  /// values are restored per window.
  [[nodiscard]] dist::DistTensor reconstruct_steps(
      std::shared_ptr<mps::CartGrid> grid, std::uint64_t step_lo,
      std::uint64_t step_hi, std::vector<util::Range> spatial = {},
      bool denormalize = true) const;

 private:
  pario::ArchiveReader archive_;
};

}  // namespace ptucker::core
