#pragma once
/// \file st_hosvd.hpp
/// \brief Sequentially-truncated HOSVD (paper Alg. 1) — the workhorse of the
/// compression pipeline and the initializer for HOOI.
///
/// For each mode (in a configurable order): compute the leading left
/// singular vectors of the working tensor's unfolding as the factor —
/// either via the Gram matrix + symmetric eigensolver, via the Gram-free
/// row-distributed TSQR (Sec. IX, any grid), or letting the cost model pick
/// per mode (FactorMethod::Auto) — pick the rank from the
/// eps^2 ||X||^2 / N tail criterion (or use a fixed rank), and truncate the
/// working tensor with a TTM by the transposed factor. After all modes, the
/// working tensor is the core. Satisfies ‖X − X̃‖ <= eps ‖X‖ (paper eq. 3).

#include "core/mode_order.hpp"
#include "core/tucker_tensor.hpp"
#include "dist/eigenvectors.hpp"
#include "dist/gram.hpp"
#include "dist/tsqr.hpp"
#include "dist/ttm.hpp"

namespace ptucker::core {

/// How each factor matrix is computed.
enum class FactorMethod {
  GramEig,  ///< Gram matrix + symmetric eigensolver (paper default)
  TsqrSvd,  ///< Gram-free TSQR + small SVD (Sec. IX); row-distributed, so it
            ///< runs on any grid (any Pn)
  Auto,     ///< per-mode choice from costmodel/tucker_model: tall-skinny
            ///< unfoldings go through TSQR, fat ones through the Gram route
};

/// Resolve the route for one mode of the working tensor: TsqrSvd always
/// takes TSQR, GramEig never does, and Auto asks the cost model (the modes
/// actually routed through TSQR are recorded in SthosvdResult::tsqr_modes).
[[nodiscard]] bool use_tsqr_route(FactorMethod method, const DistTensor& y,
                                  int mode);

struct SthosvdOptions {
  /// Relative error target eps; used when fixed_ranks is empty.
  double epsilon = 1e-3;
  /// Fixed target ranks (one per mode); overrides epsilon when non-empty.
  std::vector<std::size_t> fixed_ranks;

  ModeOrderStrategy order_strategy = ModeOrderStrategy::Natural;
  std::vector<int> custom_order;  ///< used when order_strategy == Custom

  dist::TtmAlgo ttm_algo = dist::TtmAlgo::Auto;
  dist::GramAlgo gram_algo = dist::GramAlgo::Auto;
  dist::EigAlgo eig_algo = dist::EigAlgo::TridiagonalQL;
  FactorMethod factor_method = FactorMethod::GramEig;

  /// Optional per-kernel per-mode timing sink (Fig. 8 breakdowns).
  util::KernelTimers* timers = nullptr;
};

struct SthosvdResult {
  TuckerTensor tucker;
  /// Eigen-spectrum of the Gram matrix seen when each mode was processed,
  /// indexed by mode (not by processing position). For the first processed
  /// mode this is the spectrum of X(n) X(n)^T itself (Fig. 6 data).
  std::vector<std::vector<double>> mode_eigenvalues;
  std::vector<int> mode_order_used;
  /// Modes whose factor was computed by the TSQR route (all modes under
  /// TsqrSvd; the cost model's picks under Auto; empty under GramEig).
  std::vector<int> tsqr_modes;
  double norm_x = 0.0;       ///< ‖X‖
  double norm_x_sq = 0.0;    ///< ‖X‖²
  /// Upper bound on ‖X − X̃‖ / ‖X‖ from the truncated eigenvalue tails
  /// (paper eq. 3).
  double error_bound = 0.0;
};

[[nodiscard]] SthosvdResult st_hosvd(const DistTensor& x,
                                     const SthosvdOptions& options = {});

}  // namespace ptucker::core
