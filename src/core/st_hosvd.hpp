#pragma once
/// \file st_hosvd.hpp
/// \brief Sequentially-truncated HOSVD (paper Alg. 1) — the workhorse of the
/// compression pipeline and the initializer for HOOI.
///
/// For each mode (in a configurable order): compute the leading left
/// singular vectors of the working tensor's unfolding as the factor —
/// either via the Gram matrix + symmetric eigensolver, via the Gram-free
/// row-distributed TSQR (Sec. IX, any grid), or letting the cost model pick
/// per mode (FactorMethod::Auto) — pick the rank from the
/// eps^2 ||X||^2 / N tail criterion (or use a fixed rank), and truncate the
/// working tensor with a TTM by the transposed factor. After all modes, the
/// working tensor is the core. Satisfies ‖X − X̃‖ <= eps ‖X‖ (paper eq. 3).

#include <string>
#include <string_view>

#include "core/mode_order.hpp"
#include "core/tucker_tensor.hpp"
#include "dist/eigenvectors.hpp"
#include "dist/gram.hpp"
#include "dist/sketch.hpp"
#include "dist/tsqr.hpp"
#include "dist/ttm.hpp"

namespace ptucker::core {

/// How each factor matrix is computed.
enum class FactorMethod {
  GramEig,     ///< Gram matrix + symmetric eigensolver (paper default)
  TsqrSvd,     ///< Gram-free TSQR + small SVD (Sec. IX); row-distributed, so
               ///< it runs on any grid (any Pn)
  Randomized,  ///< randomized sketch: Y(n)*Omega + TSQR of the projected
               ///< tensor — O(Jn w Jhat/P) instead of O(Jn^2 Jhat/P), with
               ///< an eps-aware fallback to the Gram route when the sketch
               ///< cannot certify the eq. 3 budget
  Auto,        ///< per-mode choice from costmodel/tucker_model: huge
               ///< unfoldings with loose eps go through the sketch,
               ///< tall-skinny ones through TSQR, fat ones through Gram
};

/// The route actually used for a mode (after Auto resolution and any
/// eps-tail fallback).
enum class FactorRoute { Gram, Tsqr, Randomized };

[[nodiscard]] std::string_view factor_route_name(FactorRoute route);

/// A mode whose requested route could not run (or could not certify the
/// eq. 3 budget) and was replaced by an exact one — recorded instead of
/// silently downgrading, so benches and tests can assert which route ran.
struct RouteDowngrade {
  int mode = -1;
  FactorRoute requested = FactorRoute::Gram;
  FactorRoute used = FactorRoute::Gram;
  std::string reason;
};

/// Observability record for each mode the randomized route attempted.
struct SketchTrace {
  int mode = -1;
  std::uint64_t seed = 0;
  std::size_t width = 0;
  int power_iterations = 0;
  /// True when the eps-tail check rejected the sketch and the mode fell
  /// back to the Gram route (also recorded in downgrades).
  bool fell_back = false;
};

/// Resolve the route for one mode of the working tensor: the explicit
/// methods map one-to-one; Auto asks the cost model, considering the sketch
/// only when selection is fixed-rank or eps is loose enough to leave the
/// posteriori check headroom (sketch.auto_min_epsilon). \p fixed_rank is
/// this mode's fixed target rank, or 0 for eps-driven selection.
[[nodiscard]] FactorRoute resolve_factor_route(FactorMethod method,
                                               const DistTensor& y, int mode,
                                               const dist::SketchOptions& sketch,
                                               double epsilon,
                                               std::size_t fixed_rank);

struct SthosvdOptions {
  /// Relative error target eps; used when fixed_ranks is empty.
  double epsilon = 1e-3;
  /// Fixed target ranks (one per mode); overrides epsilon when non-empty.
  std::vector<std::size_t> fixed_ranks;

  ModeOrderStrategy order_strategy = ModeOrderStrategy::Natural;
  std::vector<int> custom_order;  ///< used when order_strategy == Custom

  dist::TtmAlgo ttm_algo = dist::TtmAlgo::Auto;
  dist::GramAlgo gram_algo = dist::GramAlgo::Auto;
  dist::EigAlgo eig_algo = dist::EigAlgo::TridiagonalQL;
  FactorMethod factor_method = FactorMethod::GramEig;
  /// Knobs for FactorMethod::Randomized (seed, oversampling, power
  /// iterations) and the Auto gate for it.
  dist::SketchOptions sketch;

  /// Optional per-kernel per-mode timing sink (Fig. 8 breakdowns).
  util::KernelTimers* timers = nullptr;
};

struct SthosvdResult {
  TuckerTensor tucker;
  /// Eigen-spectrum of the Gram matrix seen when each mode was processed,
  /// indexed by mode (not by processing position). For the first processed
  /// mode this is the spectrum of X(n) X(n)^T itself (Fig. 6 data). For a
  /// mode factored by the randomized route this is the sketch spectrum
  /// lambda_i(Q^T Y(n)) — length = sketch width, not Jn.
  std::vector<std::vector<double>> mode_eigenvalues;
  std::vector<int> mode_order_used;
  /// Route that actually produced each mode's factor, indexed by mode.
  std::vector<FactorRoute> mode_routes;
  /// Modes whose requested route was replaced (currently: the randomized
  /// route's eps-tail fallback to Gram). Empty means every mode ran the
  /// route the resolver picked.
  std::vector<RouteDowngrade> downgrades;
  /// One record per mode the randomized route attempted (seed, width, q,
  /// whether it fell back) — the observability trail for reproducing a run.
  std::vector<SketchTrace> sketches;
  /// Modes whose factor was computed by the TSQR route (all modes under
  /// TsqrSvd; the cost model's picks under Auto; empty under GramEig).
  std::vector<int> tsqr_modes;
  double norm_x = 0.0;       ///< ‖X‖
  double norm_x_sq = 0.0;    ///< ‖X‖²
  /// Upper bound on ‖X − X̃‖ / ‖X‖ from the truncated eigenvalue tails
  /// (paper eq. 3).
  double error_bound = 0.0;
};

[[nodiscard]] SthosvdResult st_hosvd(const DistTensor& x,
                                     const SthosvdOptions& options = {});

}  // namespace ptucker::core
