#include "core/tucker_io.hpp"

#include <cstring>
#include <fstream>

#include "mps/collectives.hpp"
#include "tensor/tensor_io.hpp"

namespace ptucker::core {

namespace {
constexpr std::uint64_t kVersion = 1;

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  PT_REQUIRE(is.good(), "tucker_io: truncated stream");
  return v;
}
}  // namespace

void save_tucker(const std::string& path, const TuckerTensor& model) {
  const Tensor core = model.core.gather(0);
  if (model.core.grid().comm().rank() != 0) return;
  std::ofstream os(path, std::ios::binary);
  PT_REQUIRE(os.good(), "tucker_io: cannot open " << path);
  os.write("PTKR", 4);
  write_u64(os, kVersion);
  write_u64(os, static_cast<std::uint64_t>(model.order()));
  tensor::write_tensor(os, core);
  for (const Matrix& u : model.factors) tensor::write_matrix(os, u);
  PT_REQUIRE(os.good(), "tucker_io: write failed");
}

TuckerTensor load_tucker(const std::string& path,
                         std::shared_ptr<mps::CartGrid> grid) {
  const mps::Comm& comm = grid->comm();
  Tensor core;
  std::vector<Matrix> factors;
  std::uint64_t order = 0;
  if (comm.rank() == 0) {
    std::ifstream is(path, std::ios::binary);
    PT_REQUIRE(is.good(), "tucker_io: cannot open " << path);
    char magic[4] = {};
    is.read(magic, 4);
    PT_REQUIRE(is.good() && std::memcmp(magic, "PTKR", 4) == 0,
               "tucker_io: bad magic in " << path);
    const std::uint64_t version = read_u64(is);
    PT_REQUIRE(version == kVersion, "tucker_io: unsupported version");
    order = read_u64(is);
    core = tensor::read_tensor(is);
    factors.reserve(order);
    for (std::uint64_t n = 0; n < order; ++n) {
      factors.push_back(tensor::read_matrix(is));
    }
  }
  mps::broadcast(comm, std::span<std::uint64_t>(&order, 1), 0);

  TuckerTensor model;
  model.core = dist::DistTensor::scatter(grid, core, 0);
  model.factors.resize(order);
  for (std::uint64_t n = 0; n < order; ++n) {
    std::uint64_t shape[2] = {0, 0};
    if (comm.rank() == 0) {
      shape[0] = factors[n].rows();
      shape[1] = factors[n].cols();
    }
    mps::broadcast(comm, std::span<std::uint64_t>(shape, 2), 0);
    Matrix u(shape[0], shape[1]);
    if (comm.rank() == 0) u = std::move(factors[n]);
    mps::broadcast(comm, u.span(), 0);
    model.factors[n] = std::move(u);
  }
  return model;
}

std::size_t serialized_bytes(const TuckerTensor& model) {
  // Header + core header/payload + factor headers/payloads.
  std::size_t bytes = 4 + 2 * sizeof(std::uint64_t);
  bytes += 4 + sizeof(std::uint64_t) * (1 + model.core.global_dims().size()) +
           sizeof(double) * tensor::prod(model.core.global_dims());
  for (const Matrix& u : model.factors) {
    bytes += 4 + 2 * sizeof(std::uint64_t) + sizeof(double) * u.size();
  }
  return bytes;
}

}  // namespace ptucker::core
