#include "core/tucker_io.hpp"

#include <cstring>
#include <fstream>

#include "mps/collectives.hpp"
#include "pario/model_io.hpp"
#include "tensor/tensor_io.hpp"

namespace ptucker::core {

namespace {
constexpr std::uint64_t kVersion = 1;

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  PT_REQUIRE(is.good(), "tucker_io: truncated stream");
  return v;
}

void save_tucker_ptkr(const std::string& path, const TuckerTensor& model) {
  const Tensor core = model.core.gather(0);
  if (model.core.grid().comm().rank() != 0) return;
  std::ofstream os(path, std::ios::binary);
  PT_REQUIRE(os.good(), "tucker_io: cannot open " << path);
  os.write("PTKR", 4);
  write_u64(os, kVersion);
  write_u64(os, static_cast<std::uint64_t>(model.order()));
  tensor::write_tensor(os, core);
  for (const Matrix& u : model.factors) tensor::write_matrix(os, u);
  PT_REQUIRE(os.good(), "tucker_io: write failed");
}

TuckerTensor load_tucker_ptkr(const std::string& path,
                              std::shared_ptr<mps::CartGrid> grid) {
  const mps::Comm& comm = grid->comm();
  Tensor core;
  std::vector<Matrix> factors;
  std::uint64_t order = 0;
  if (comm.rank() == 0) {
    std::ifstream is(path, std::ios::binary);
    PT_REQUIRE(is.good(), "tucker_io: cannot open " << path);
    char magic[4] = {};
    is.read(magic, 4);
    PT_REQUIRE(is.good() && std::memcmp(magic, "PTKR", 4) == 0,
               "tucker_io: bad magic in " << path);
    const std::uint64_t version = read_u64(is);
    PT_REQUIRE(version == kVersion, "tucker_io: unsupported version");
    order = read_u64(is);
    core = tensor::read_tensor(is);
    factors.reserve(order);
    for (std::uint64_t n = 0; n < order; ++n) {
      factors.push_back(tensor::read_matrix(is));
    }
  }
  mps::broadcast(comm, std::span<std::uint64_t>(&order, 1), 0);

  TuckerTensor model;
  model.core = dist::DistTensor::scatter(grid, core, 0);

  // Factor broadcast: one binomial broadcast of the packed shapes, one of
  // the concatenated payloads — 2 broadcasts total instead of 2 per mode.
  std::vector<std::uint64_t> shapes(2 * order, 0);
  if (comm.rank() == 0) {
    for (std::uint64_t n = 0; n < order; ++n) {
      shapes[2 * n] = factors[n].rows();
      shapes[2 * n + 1] = factors[n].cols();
    }
  }
  mps::broadcast(comm, std::span<std::uint64_t>(shapes), 0);
  std::size_t total = 0;
  for (std::uint64_t n = 0; n < order; ++n) {
    total += static_cast<std::size_t>(shapes[2 * n] * shapes[2 * n + 1]);
  }
  std::vector<double> packed(total);
  if (comm.rank() == 0) {
    std::size_t pos = 0;
    for (std::uint64_t n = 0; n < order; ++n) {
      std::memcpy(packed.data() + pos, factors[n].data(),
                  factors[n].size() * sizeof(double));
      pos += factors[n].size();
    }
  }
  mps::broadcast(comm, std::span<double>(packed), 0);
  model.factors.resize(order);
  std::size_t pos = 0;
  for (std::uint64_t n = 0; n < order; ++n) {
    Matrix u(shapes[2 * n], shapes[2 * n + 1]);
    std::memcpy(u.data(), packed.data() + pos, u.size() * sizeof(double));
    pos += u.size();
    model.factors[n] = std::move(u);
  }
  return model;
}
}  // namespace

void save_tucker(const std::string& path, const TuckerTensor& model,
                 ModelFormat format) {
  if (format == ModelFormat::Ptkr) {
    save_tucker_ptkr(path, model);
    return;
  }
  pario::write_model(path, model.core,
                     std::span<const Matrix>(model.factors));
}

TuckerTensor load_tucker(const std::string& path,
                         std::shared_ptr<mps::CartGrid> grid) {
  PT_REQUIRE(grid != nullptr, "load_tucker: null grid");
  // Sniffing is a local pread, so every rank dispatches without any
  // communication; both loaders validate the rest of the file themselves.
  if (pario::is_ptz1(path)) {
    pario::ModelData data = pario::read_model(path, std::move(grid));
    TuckerTensor model;
    model.core = std::move(data.core);
    model.factors = std::move(data.factors);
    return model;
  }
  return load_tucker_ptkr(path, std::move(grid));
}

std::size_t serialized_bytes(const TuckerTensor& model, ModelFormat format) {
  if (format == ModelFormat::Ptz1) {
    return pario::ptz1_file_bytes(model.core.global_dims(),
                                  model.core.grid().shape(),
                                  std::span<const Matrix>(model.factors));
  }
  // PTKR: header + core header/payload + factor headers/payloads.
  std::size_t bytes = 4 + 2 * sizeof(std::uint64_t);
  bytes += 4 + sizeof(std::uint64_t) * (1 + model.core.global_dims().size()) +
           sizeof(double) * tensor::prod(model.core.global_dims());
  for (const Matrix& u : model.factors) {
    bytes += 4 + 2 * sizeof(std::uint64_t) + sizeof(double) * u.size();
  }
  return bytes;
}

}  // namespace ptucker::core
