#pragma once
/// \file seq_tucker.hpp
/// \brief Sequential reference Tucker implementation.
///
/// A single-rank, communication-free ST-HOSVD / HOOI / reconstruction stack
/// built directly on the local kernels. It serves three purposes:
///  1. cross-validation oracle for the distributed algorithms (the property
///     tests demand bit-for-bit-comparable errors across all grids),
///  2. the single-node baseline for the scaling benches, and
///  3. the Sec. IX ablation host for the Gram-free SVD and randomized
///     sketch factor computations.

#include <string>
#include <string_view>

#include "core/mode_order.hpp"
#include "dist/sketch.hpp"
#include "lapack/lapack.hpp"
#include "tensor/local_kernels.hpp"

namespace ptucker::core::seq {

using tensor::Dims;
using tensor::Matrix;
using tensor::Tensor;

enum class FactorMethod {
  GramEig,    ///< Gram matrix + symmetric eigensolver (paper default)
  GramJacobi, ///< Gram matrix + Jacobi eigensolver
  SvdQr,      ///< QR of the unfolding's transpose + small SVD (Sec. IX)
  Randomized, ///< sketch Y(n)*Omega -> thin QR -> project -> small SVD,
              ///< mirroring the distributed route entry for entry (same
              ///< counter-based Omega per (seed, mode))
};

[[nodiscard]] std::string_view seq_factor_method_name(FactorMethod method);

/// A mode whose requested method could not run (SvdQr on a degenerate
/// non-wide unfolding, or a sketch that failed the eq. 3 posteriori check)
/// and was replaced by the Gram route. Recorded, never silent.
struct SeqDowngrade {
  int mode = -1;
  FactorMethod requested = FactorMethod::GramEig;
  FactorMethod used = FactorMethod::GramEig;
  std::string reason;
};

struct SeqTucker {
  Tensor core;
  std::vector<Matrix> factors;

  [[nodiscard]] Dims core_dims() const { return core.dims(); }
  [[nodiscard]] double compression_ratio() const;
};

struct SeqOptions {
  double epsilon = 1e-3;
  std::vector<std::size_t> fixed_ranks;
  ModeOrderStrategy order_strategy = ModeOrderStrategy::Natural;
  std::vector<int> custom_order;
  FactorMethod method = FactorMethod::GramEig;
  /// Knobs for FactorMethod::Randomized; the seed and width conventions are
  /// shared with the distributed route, so at a fixed (seed, mode) both
  /// sketch against the same Omega.
  dist::SketchOptions sketch;
};

struct SeqResult {
  SeqTucker tucker;
  std::vector<std::vector<double>> mode_eigenvalues;  ///< by mode
  std::vector<int> mode_order_used;
  /// Method that actually produced each mode's factor, indexed by mode
  /// (differs from SeqOptions::method only via a recorded downgrade).
  std::vector<FactorMethod> mode_methods;
  std::vector<SeqDowngrade> downgrades;
  double norm_x = 0.0;
  double error_bound = 0.0;
};

[[nodiscard]] SeqResult seq_st_hosvd(const Tensor& x,
                                     const SeqOptions& options = {});

struct SeqHooiResult {
  SeqTucker tucker;
  std::vector<double> error_history;
  int sweeps = 0;
};

[[nodiscard]] SeqHooiResult seq_hooi(const Tensor& x,
                                     const SeqOptions& init_options = {},
                                     int max_sweeps = 10,
                                     double improvement_tol = 1e-6);

[[nodiscard]] Tensor seq_reconstruct(const SeqTucker& model);

/// ‖X − X̃‖ / ‖X‖ for two plain tensors.
[[nodiscard]] double seq_normalized_error(const Tensor& x,
                                          const Tensor& x_tilde);

}  // namespace ptucker::core::seq
