#include "core/seq/seq_tucker.hpp"

#include <cmath>

#include "blas/blas.hpp"
#include "core/metrics.hpp"
#include "dist/eigenvectors.hpp"

namespace ptucker::core::seq {

namespace {

/// Leading left singular subspace of the mode-n unfolding of y, with rank
/// chosen by tail threshold or fixed. Returns (U, spectrum) where spectrum
/// holds Gram eigenvalues (squared singular values) descending.
std::pair<Matrix, std::vector<double>> leading_factor(
    const Tensor& y, int mode, FactorMethod method, std::size_t fixed_rank,
    double tail_threshold) {
  const std::size_t jn = y.dim(mode);
  std::vector<double> spectrum;
  Matrix basis;  // jn x jn orthonormal columns, leading first

  const tensor::UnfoldShape pre = tensor::unfold_shape(y.dims(), mode);
  if (method == FactorMethod::SvdQr && pre.left * pre.right < jn) {
    // QR route needs a wide unfolding; degenerate shapes use the Gram route.
    method = FactorMethod::GramEig;
  }
  if (method == FactorMethod::SvdQr) {
    // Materialize the unfolding (rows = jn) and run the Sec. IX path. The
    // unfolding copy is affordable sequentially; the distributed code never
    // does this.
    const tensor::UnfoldShape s = tensor::unfold_shape(y.dims(), mode);
    Matrix unf(jn, s.left * s.right);
    for (std::size_t r = 0; r < s.right; ++r) {
      for (std::size_t m = 0; m < s.mid; ++m) {
        for (std::size_t l = 0; l < s.left; ++l) {
          unf(m, l + r * s.left) = y[l + m * s.left + r * s.left * s.mid];
        }
      }
    }
    la::LeftSvd svd = la::left_svd_via_qr(unf.data(), jn, unf.cols(), jn);
    spectrum.resize(jn);
    for (std::size_t i = 0; i < jn; ++i) {
      spectrum[i] = svd.singular_values[i] * svd.singular_values[i];
    }
    basis = Matrix(jn, jn);
    blas::copy(svd.u.size(), svd.u.data(), basis.data());
  } else {
    const Matrix gram = tensor::local_gram(y, mode);
    la::SymEig eig = (method == FactorMethod::GramJacobi)
                         ? la::eig_sym_jacobi(gram.data(), jn, jn)
                         : la::eig_sym(gram.data(), jn, jn);
    spectrum = std::move(eig.values);
    basis = Matrix(jn, jn);
    blas::copy(eig.vectors.size(), eig.vectors.data(), basis.data());
  }

  const std::size_t rank =
      fixed_rank > 0
          ? std::min(fixed_rank, jn)
          : dist::select_rank_by_tail(spectrum, tail_threshold);
  Matrix u = basis.col_block(util::Range{0, rank});
  // Sign canonicalization matching the distributed eigenvector kernel.
  for (std::size_t j = 0; j < u.cols(); ++j) {
    double* col = u.col(j);
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < u.rows(); ++i) {
      if (std::fabs(col[i]) > std::fabs(col[argmax])) argmax = i;
    }
    if (col[argmax] < 0.0) blas::scal(u.rows(), -1.0, col);
  }
  return {std::move(u), std::move(spectrum)};
}

}  // namespace

double SeqTucker::compression_ratio() const {
  Dims dims(factors.size());
  Dims ranks(factors.size());
  for (std::size_t n = 0; n < factors.size(); ++n) {
    dims[n] = factors[n].rows();
    ranks[n] = factors[n].cols();
  }
  return core::compression_ratio(dims, ranks);
}

SeqResult seq_st_hosvd(const Tensor& x, const SeqOptions& options) {
  const int order = x.order();
  SeqResult result;
  result.norm_x = x.norm();
  const double norm_sq = result.norm_x * result.norm_x;
  const double tail_threshold =
      options.epsilon * options.epsilon * norm_sq / static_cast<double>(order);
  result.mode_order_used =
      resolve_mode_order(options.order_strategy, x.dims(), options.fixed_ranks,
                         options.custom_order);
  result.mode_eigenvalues.resize(static_cast<std::size_t>(order));
  result.tucker.factors.resize(static_cast<std::size_t>(order));

  Tensor y = x;
  double tail_total = 0.0;
  for (int n : result.mode_order_used) {
    const std::size_t fixed =
        options.fixed_ranks.empty()
            ? 0
            : options.fixed_ranks[static_cast<std::size_t>(n)];
    auto [u, spectrum] =
        leading_factor(y, n, options.method, fixed, tail_threshold);
    for (std::size_t i = u.cols(); i < spectrum.size(); ++i) {
      tail_total += std::max(0.0, spectrum[i]);
    }
    result.mode_eigenvalues[static_cast<std::size_t>(n)] = std::move(spectrum);
    y = tensor::local_ttm(y, u.transposed(), n);
    result.tucker.factors[static_cast<std::size_t>(n)] = std::move(u);
  }
  result.tucker.core = std::move(y);
  result.error_bound =
      result.norm_x > 0.0 ? std::sqrt(tail_total) / result.norm_x : 0.0;
  return result;
}

SeqHooiResult seq_hooi(const Tensor& x, const SeqOptions& init_options,
                       int max_sweeps, double improvement_tol) {
  SeqResult init = seq_st_hosvd(x, init_options);
  SeqHooiResult result;
  result.tucker = std::move(init.tucker);
  const int order = x.order();
  const double norm_sq = init.norm_x * init.norm_x;

  std::vector<std::size_t> ranks(static_cast<std::size_t>(order));
  for (int n = 0; n < order; ++n) {
    ranks[static_cast<std::size_t>(n)] =
        result.tucker.factors[static_cast<std::size_t>(n)].cols();
  }
  auto rel_err_sq = [&](double core_sq) {
    return std::max(0.0, norm_sq - core_sq) / (norm_sq > 0.0 ? norm_sq : 1.0);
  };
  double err_sq = rel_err_sq(result.tucker.core.norm_squared());
  result.error_history.push_back(std::sqrt(err_sq));

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    Tensor y;
    for (int n = 0; n < order; ++n) {
      y = x;
      for (int m = 0; m < order; ++m) {
        if (m == n) continue;
        y = tensor::local_ttm(
            y, result.tucker.factors[static_cast<std::size_t>(m)].transposed(),
            m);
      }
      auto [u, spectrum] = leading_factor(
          y, n, init_options.method, ranks[static_cast<std::size_t>(n)], 0.0);
      (void)spectrum;
      result.tucker.factors[static_cast<std::size_t>(n)] = std::move(u);
    }
    result.tucker.core = tensor::local_ttm(
        y,
        result.tucker.factors[static_cast<std::size_t>(order - 1)].transposed(),
        order - 1);
    const double new_err_sq = rel_err_sq(result.tucker.core.norm_squared());
    result.error_history.push_back(std::sqrt(new_err_sq));
    result.sweeps = sweep + 1;
    const double improvement = err_sq - new_err_sq;
    err_sq = new_err_sq;
    if (improvement < improvement_tol) break;
  }
  return result;
}

Tensor seq_reconstruct(const SeqTucker& model) {
  Tensor y = model.core;
  for (std::size_t n = 0; n < model.factors.size(); ++n) {
    y = tensor::local_ttm(y, model.factors[n], static_cast<int>(n));
  }
  return y;
}

double seq_normalized_error(const Tensor& x, const Tensor& x_tilde) {
  PT_REQUIRE(x.dims() == x_tilde.dims(), "seq error: dims mismatch");
  double diff_sq = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - x_tilde[i];
    diff_sq += d * d;
  }
  const double norm_sq = x.norm_squared();
  return norm_sq > 0.0 ? std::sqrt(diff_sq / norm_sq) : std::sqrt(diff_sq);
}

}  // namespace ptucker::core::seq
