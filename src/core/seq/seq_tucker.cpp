#include "core/seq/seq_tucker.hpp"

#include <cmath>
#include <cstring>

#include "blas/blas.hpp"
#include "core/metrics.hpp"
#include "dist/eigenvectors.hpp"
#include "util/rng.hpp"

namespace ptucker::core::seq {

namespace {

/// One mode's factor plus the trace the drivers need: the spectrum it was
/// selected from, the energy outside the sketch subspace (randomized route
/// only; part of the eq. 3 tail), and the method that actually ran.
struct ModeFactor {
  Matrix u;
  std::vector<double> spectrum;
  double residual = 0.0;
  FactorMethod used = FactorMethod::GramEig;
};

/// Sign canonicalization matching the distributed eigenvector kernel.
void canonicalize(Matrix& u) {
  for (std::size_t j = 0; j < u.cols(); ++j) {
    double* col = u.col(j);
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < u.rows(); ++i) {
      if (std::fabs(col[i]) > std::fabs(col[argmax])) argmax = i;
    }
    if (col[argmax] < 0.0) blas::scal(u.rows(), -1.0, col);
  }
}

/// Materialized mode-n unfolding (rows = jn, cols = Jhat_n). Affordable
/// sequentially; the distributed code never does this.
Matrix materialize_unfolding(const Tensor& y, int mode) {
  const tensor::UnfoldShape s = tensor::unfold_shape(y.dims(), mode);
  Matrix unf(y.dim(mode), s.left * s.right);
  for (std::size_t r = 0; r < s.right; ++r) {
    for (std::size_t m = 0; m < s.mid; ++m) {
      for (std::size_t l = 0; l < s.left; ++l) {
        unf(m, l + r * s.left) = y[l + m * s.left + r * s.left * s.mid];
      }
    }
  }
  return unf;
}

/// The test-matrix tensor W for the sketch S = Y(n) * Omega, entry at mode
/// index c and unfolding column gj equal to Omega(gj, c) — the same
/// counter-based field the distributed route evaluates blockwise, with the
/// same first-fastest column convention gj = left + right * prod(left dims).
Tensor omega_tensor(const Dims& dims, int mode, std::size_t width,
                    std::uint64_t seed) {
  const util::SketchRng rng(seed, mode);
  const int order = static_cast<int>(dims.size());
  std::vector<std::size_t> stride(dims.size(), 0);
  std::size_t gl_prod = 1;
  for (int m = 0; m < mode; ++m) {
    stride[static_cast<std::size_t>(m)] = gl_prod;
    gl_prod *= dims[static_cast<std::size_t>(m)];
  }
  std::size_t gr_prod = 1;
  for (int m = mode + 1; m < order; ++m) {
    stride[static_cast<std::size_t>(m)] = gr_prod;
    gr_prod *= dims[static_cast<std::size_t>(m)];
  }
  Dims w_dims = dims;
  w_dims[static_cast<std::size_t>(mode)] = width;
  Tensor w(w_dims);
  const std::size_t um = static_cast<std::size_t>(mode);
  w.fill_from([&](std::span<const std::size_t> idx) {
    std::size_t gl = 0;
    std::size_t gr = 0;
    for (std::size_t m = 0; m < idx.size(); ++m) {
      if (m == um) continue;
      const std::size_t g = idx[m] * stride[m];
      if (static_cast<int>(m) < mode) {
        gl += g;
      } else {
        gr += g;
      }
    }
    return rng.omega(gl + gr * gl_prod, idx[um], width);
  });
  return w;
}

/// Thin QR orthonormalization of the jn x w sketch.
Matrix orthonormalize(const Matrix& s) {
  Matrix q(s.rows(), s.cols());
  Matrix r(s.cols(), s.cols());
  la::qr_thin(s.data(), s.rows(), s.cols(), s.rows(), q.data(), q.rows(),
              r.data(), r.rows());
  return q;
}

/// The sequential randomized route, mirroring dist::factor_via_sketch:
/// sketch, thin QR, q power iterations, projection, small SVD. Returns an
/// empty u with used == GramEig when the eps-driven selection cannot
/// certify the eq. 3 budget (residual alone exceeds it) — the caller falls
/// back and records the downgrade.
ModeFactor randomized_factor(const Tensor& y, int mode, std::size_t fixed_rank,
                             double tail_threshold,
                             const dist::SketchOptions& sketch) {
  const std::size_t jn = y.dim(mode);
  const std::size_t jhat = tensor::prod_except(y.dims(), mode);
  const std::size_t width =
      std::min(dist::sketch_width(jn, std::min(fixed_rank, jn), sketch),
               std::max<std::size_t>(1, jhat));

  const Tensor omega = omega_tensor(y.dims(), mode, width, sketch.seed);
  Matrix q = orthonormalize(tensor::local_cross_gram(y, omega, mode));
  for (int pass = 0; pass < sketch.power_iterations; ++pass) {
    const Tensor z = tensor::local_ttm(y, q.transposed(), mode);
    q = orthonormalize(tensor::local_cross_gram(y, z, mode));
  }

  // B = Q^T Y(n) is the mode-n unfolding of Z = Y x_n Q^T; its left SVD
  // (via QR of B^T + small Jacobi SVD, the same math as the TSQR tree) is
  // the sketch spectrum and the inner vectors U_B.
  const Tensor z = tensor::local_ttm(y, q.transposed(), mode);
  const Matrix b = materialize_unfolding(z, mode);
  const la::LeftSvd svd = la::left_svd_via_qr(b.data(), width, b.cols(), width);

  ModeFactor out;
  out.used = FactorMethod::Randomized;
  out.spectrum.resize(width);
  double captured = 0.0;
  for (std::size_t i = 0; i < width; ++i) {
    out.spectrum[i] = svd.singular_values[i] * svd.singular_values[i];
    captured += out.spectrum[i];
  }
  out.residual = std::max(0.0, y.norm_squared() - captured);

  std::size_t rank;
  if (fixed_rank > 0) {
    rank = std::min(fixed_rank, width);
  } else if (out.residual <= tail_threshold) {
    rank = dist::select_rank_by_tail(out.spectrum,
                                     tail_threshold - out.residual);
  } else {
    out.used = FactorMethod::GramEig;  // cannot certify: caller falls back
    return out;
  }

  Matrix ub(width, rank);
  std::memcpy(ub.data(), svd.u.data(), width * rank * sizeof(double));
  out.u = Matrix::multiply(q, false, ub, false);
  canonicalize(out.u);
  return out;
}

/// Leading left singular subspace of the mode-n unfolding of y, with rank
/// chosen by tail threshold or fixed. `used` records the method that
/// actually ran; when it differs from \p method the caller records a
/// downgrade (SvdQr on a non-wide unfolding, or the sketch eps fallback).
ModeFactor leading_factor(const Tensor& y, int mode, FactorMethod method,
                          std::size_t fixed_rank, double tail_threshold,
                          const dist::SketchOptions& sketch) {
  const std::size_t jn = y.dim(mode);

  const tensor::UnfoldShape pre = tensor::unfold_shape(y.dims(), mode);
  if (method == FactorMethod::SvdQr && pre.left * pre.right < jn) {
    // QR route needs a wide unfolding; degenerate shapes use the Gram route.
    method = FactorMethod::GramEig;
  }
  if (method == FactorMethod::Randomized) {
    ModeFactor out =
        randomized_factor(y, mode, fixed_rank, tail_threshold, sketch);
    if (out.used == FactorMethod::Randomized) return out;
    method = FactorMethod::GramEig;  // eps-tail fallback
  }

  ModeFactor out;
  out.used = method;
  Matrix basis;  // jn x jn orthonormal columns, leading first
  if (method == FactorMethod::SvdQr) {
    const Matrix unf = materialize_unfolding(y, mode);
    la::LeftSvd svd = la::left_svd_via_qr(unf.data(), jn, unf.cols(), jn);
    out.spectrum.resize(jn);
    for (std::size_t i = 0; i < jn; ++i) {
      out.spectrum[i] = svd.singular_values[i] * svd.singular_values[i];
    }
    basis = Matrix(jn, jn);
    blas::copy(svd.u.size(), svd.u.data(), basis.data());
  } else {
    const Matrix gram = tensor::local_gram(y, mode);
    la::SymEig eig = (method == FactorMethod::GramJacobi)
                         ? la::eig_sym_jacobi(gram.data(), jn, jn)
                         : la::eig_sym(gram.data(), jn, jn);
    out.spectrum = std::move(eig.values);
    basis = Matrix(jn, jn);
    blas::copy(eig.vectors.size(), eig.vectors.data(), basis.data());
  }

  const std::size_t rank =
      fixed_rank > 0
          ? std::min(fixed_rank, jn)
          : dist::select_rank_by_tail(out.spectrum, tail_threshold);
  out.u = basis.col_block(util::Range{0, rank});
  canonicalize(out.u);
  return out;
}

}  // namespace

std::string_view seq_factor_method_name(FactorMethod method) {
  switch (method) {
    case FactorMethod::GramEig:
      return "gram-eig";
    case FactorMethod::GramJacobi:
      return "gram-jacobi";
    case FactorMethod::SvdQr:
      return "svd-qr";
    case FactorMethod::Randomized:
      return "randomized";
  }
  return "?";
}

double SeqTucker::compression_ratio() const {
  Dims dims(factors.size());
  Dims ranks(factors.size());
  for (std::size_t n = 0; n < factors.size(); ++n) {
    dims[n] = factors[n].rows();
    ranks[n] = factors[n].cols();
  }
  return core::compression_ratio(dims, ranks);
}

SeqResult seq_st_hosvd(const Tensor& x, const SeqOptions& options) {
  const int order = x.order();
  SeqResult result;
  result.norm_x = x.norm();
  const double norm_sq = result.norm_x * result.norm_x;
  const double tail_threshold =
      options.epsilon * options.epsilon * norm_sq / static_cast<double>(order);
  result.mode_order_used =
      resolve_mode_order(options.order_strategy, x.dims(), options.fixed_ranks,
                         options.custom_order);
  result.mode_eigenvalues.resize(static_cast<std::size_t>(order));
  result.mode_methods.assign(static_cast<std::size_t>(order), options.method);
  result.tucker.factors.resize(static_cast<std::size_t>(order));

  Tensor y = x;
  double tail_total = 0.0;
  for (int n : result.mode_order_used) {
    const std::size_t fixed =
        options.fixed_ranks.empty()
            ? 0
            : options.fixed_ranks[static_cast<std::size_t>(n)];
    ModeFactor factor = leading_factor(y, n, options.method, fixed,
                                       tail_threshold, options.sketch);
    if (factor.used != options.method) {
      result.downgrades.push_back(
          {n, options.method, factor.used,
           options.method == FactorMethod::SvdQr
               ? "unfolding not wide (Jhat_n < Jn): QR route undefined"
               : "sketch residual exceeds the eq. 3 per-mode budget"});
    }
    result.mode_methods[static_cast<std::size_t>(n)] = factor.used;
    tail_total += factor.residual;
    for (std::size_t i = factor.u.cols(); i < factor.spectrum.size(); ++i) {
      tail_total += std::max(0.0, factor.spectrum[i]);
    }
    result.mode_eigenvalues[static_cast<std::size_t>(n)] =
        std::move(factor.spectrum);
    y = tensor::local_ttm(y, factor.u.transposed(), n);
    result.tucker.factors[static_cast<std::size_t>(n)] = std::move(factor.u);
  }
  result.tucker.core = std::move(y);
  result.error_bound =
      result.norm_x > 0.0 ? std::sqrt(tail_total) / result.norm_x : 0.0;
  return result;
}

SeqHooiResult seq_hooi(const Tensor& x, const SeqOptions& init_options,
                       int max_sweeps, double improvement_tol) {
  SeqResult init = seq_st_hosvd(x, init_options);
  SeqHooiResult result;
  result.tucker = std::move(init.tucker);
  const int order = x.order();
  const double norm_sq = init.norm_x * init.norm_x;

  std::vector<std::size_t> ranks(static_cast<std::size_t>(order));
  for (int n = 0; n < order; ++n) {
    ranks[static_cast<std::size_t>(n)] =
        result.tucker.factors[static_cast<std::size_t>(n)].cols();
  }
  auto rel_err_sq = [&](double core_sq) {
    return std::max(0.0, norm_sq - core_sq) / (norm_sq > 0.0 ? norm_sq : 1.0);
  };
  double err_sq = rel_err_sq(result.tucker.core.norm_squared());
  result.error_history.push_back(std::sqrt(err_sq));

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    Tensor y;
    for (int n = 0; n < order; ++n) {
      y = x;
      for (int m = 0; m < order; ++m) {
        if (m == n) continue;
        y = tensor::local_ttm(
            y, result.tucker.factors[static_cast<std::size_t>(m)].transposed(),
            m);
      }
      ModeFactor factor =
          leading_factor(y, n, init_options.method,
                         ranks[static_cast<std::size_t>(n)], 0.0,
                         init_options.sketch);
      result.tucker.factors[static_cast<std::size_t>(n)] = std::move(factor.u);
    }
    result.tucker.core = tensor::local_ttm(
        y,
        result.tucker.factors[static_cast<std::size_t>(order - 1)].transposed(),
        order - 1);
    const double new_err_sq = rel_err_sq(result.tucker.core.norm_squared());
    result.error_history.push_back(std::sqrt(new_err_sq));
    result.sweeps = sweep + 1;
    const double improvement = err_sq - new_err_sq;
    err_sq = new_err_sq;
    if (improvement < improvement_tol) break;
  }
  return result;
}

Tensor seq_reconstruct(const SeqTucker& model) {
  Tensor y = model.core;
  for (std::size_t n = 0; n < model.factors.size(); ++n) {
    y = tensor::local_ttm(y, model.factors[n], static_cast<int>(n));
  }
  return y;
}

double seq_normalized_error(const Tensor& x, const Tensor& x_tilde) {
  PT_REQUIRE(x.dims() == x_tilde.dims(), "seq error: dims mismatch");
  double diff_sq = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - x_tilde[i];
    diff_sq += d * d;
  }
  const double norm_sq = x.norm_squared();
  return norm_sq > 0.0 ? std::sqrt(diff_sq / norm_sq) : std::sqrt(diff_sq);
}

}  // namespace ptucker::core::seq
