#pragma once
/// \file blas.hpp
/// \brief Dense linear-algebra kernels (the BLAS substitute).
///
/// The paper's local computations are "cast in terms of BLAS3 routines to
/// exploit optimized, architecture-specific kernels" (Sec. I). This module
/// provides those routines from scratch: a cache-blocked, packing GEMM with
/// a register-tiled microkernel, SYRK (both the paper's default
/// full-storage variant and a symmetry-exploiting variant for the Sec. IX
/// ablation), GEMV, and level-1 operations.
///
/// Conventions follow BLAS: column-major storage with leading dimensions,
/// but 0-based std::size_t sizes. All kernels count flops into a global
/// counter (used by the weak-scaling bench to report GFLOPS exactly as the
/// paper's Fig. 9b does).

#include <cstddef>
#include <cstdint>

namespace ptucker::blas {

enum class Trans : std::uint8_t {
  No,  ///< use the matrix as stored
  Yes  ///< use the transpose
};

/// Number of rows of op(A) given A's stored shape.
[[nodiscard]] constexpr std::size_t op_rows(Trans t, std::size_t rows,
                                            std::size_t cols) {
  return t == Trans::No ? rows : cols;
}

/// --- flop accounting ---------------------------------------------------------

/// Total flops executed by all kernels since the last reset (all threads).
[[nodiscard]] std::uint64_t flop_count();
void reset_flop_count();
void add_flops(std::uint64_t flops);

/// --- level 3 -------------------------------------------------------------------

/// C(m x n) = alpha * op(A) * op(B) + beta * C.
/// op(A) is m x k and op(B) is k x n; lda/ldb/ldc are leading dimensions of
/// the *stored* matrices.
void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          double alpha, const double* a, std::size_t lda, const double* b,
          std::size_t ldb, double beta, double* c, std::size_t ldc);

/// Batched gemm over `batch` items with constant strides between operands:
/// X_i = x + i*stride_x. Two stride values have packing-reuse semantics:
///
///  - stride_c == 0: all items accumulate into the *single* C,
///      C = beta*C + alpha * sum_i op(A_i) op(B_i),
///    with the batch fused into the KC loop of the packed engine. This is
///    the slice-summed local Gram / cross-Gram shape. KC slabs are clipped
///    at item boundaries, so the result is bit-identical to looping
///    single gemm calls with beta then 1.0.
///  - stride_b == 0 (with stride_c != 0): op(B) is shared and packed once
///    per KC slab instead of once per item — the local TTM shape, where the
///    per-slice loop used to re-pack the factor matrix `batch` times.
///
/// The intra-kernel threading decision is made on the *aggregate* batch
/// flops (2*m*n*k*batch), so thousands of small slices thread as one large
/// call. Results are bit-identical for any gemm_threads() setting. The
/// fully general case (all strides nonzero) is legal but runs as a loop of
/// single calls — there is nothing to reuse.
void gemm_batch_strided(Trans ta, Trans tb, std::size_t m, std::size_t n,
                        std::size_t k, double alpha, const double* a,
                        std::size_t lda, std::size_t stride_a, const double* b,
                        std::size_t ldb, std::size_t stride_b, double beta,
                        double* c, std::size_t ldc, std::size_t stride_c,
                        std::size_t batch);

/// Intra-kernel threading (paper Sec. IX: "using multi-threaded BLAS for
/// all local computations"). When set > 1, level-3 calls whose *aggregate*
/// flops (whole batch, not per slice) exceed a threshold fork onto that
/// many parts of the calling thread's persistent worker pool
/// (blas/threadpool.hpp) — no per-call thread spawn/join. Work is
/// partitioned over packed macro/micro tiles; ownership never changes the
/// per-element accumulation order, so results are bit-identical for any
/// setting. Default 1: in this runtime the ranks themselves are threads, so
/// nested parallelism only pays when running fewer ranks than cores. The
/// setting is global (atomic).
void set_gemm_threads(int threads);
[[nodiscard]] int gemm_threads();

/// Auto-tune hook called by grid construction: defaults the gemm threads to
/// max(1, hardware_threads / active_ranks) — the spare cores when running
/// fewer ranks than the machine has — unless the user already called
/// set_gemm_threads, which always wins.
void autotune_gemm_threads(int active_ranks);

/// Return to the startup state: 1 thread, auto-tune re-armed (clears the
/// explicit override). For tests and benches that toggle the setting.
void reset_gemm_threads();

/// C(n x n) = alpha * op(A) * op(A)^T + beta * C with *both* triangles
/// stored — the paper's Gram computation "ignores the fact that S is
/// symmetric, storing both upper and lower triangles explicitly" (Sec. V-C).
/// trans == No: op(A) = A (n x k);  trans == Yes: op(A) = A^T (A is k x n).
void syrk_full(Trans trans, std::size_t n, std::size_t k, double alpha,
               const double* a, std::size_t lda, double beta, double* c,
               std::size_t ldc);

/// Symmetry-exploiting variant: computes the lower triangle in n(n+1)k
/// flops (vs 2 n^2 k) and leaves the upper triangle untouched. Use
/// symmetrize_from_lower() to fill the mirror. Implemented as a true
/// blocked-packed kernel: both operand panels are packed once per KC slab
/// and micro tiles strictly above the diagonal are skipped, so the flop
/// saving is realized at full microkernel throughput (the optimization the
/// paper's Sec. IX lists as future work; bench/ablate_gram_symmetry
/// measures it). Flops are counted as n(n+1)k, once.
void syrk_lower(Trans trans, std::size_t n, std::size_t k, double alpha,
                const double* a, std::size_t lda, double beta, double* c,
                std::size_t ldc);

/// Batched syrk_lower: C = beta*C + alpha * sum_i op(A_i) op(A_i)^T with
/// A_i = a + i*stride_a — the slice-summed symmetric local Gram in one
/// kernel invocation. Same fused-KC semantics (and bit-equality with the
/// per-slice loop) as gemm_batch_strided with stride_c == 0.
void syrk_lower_batch_strided(Trans trans, std::size_t n, std::size_t k,
                              double alpha, const double* a, std::size_t lda,
                              std::size_t stride_a, double beta, double* c,
                              std::size_t ldc, std::size_t batch);

/// Copy the lower triangle into the upper triangle (cache-tiled transpose
/// copy).
void symmetrize_from_lower(std::size_t n, double* c, std::size_t ldc);

/// --- level 2 -------------------------------------------------------------------

/// y = alpha * op(A) * x + beta * y, A stored m x n.
void gemv(Trans trans, std::size_t m, std::size_t n, double alpha,
          const double* a, std::size_t lda, const double* x, double beta,
          double* y);

/// --- level 1 -------------------------------------------------------------------

void axpy(std::size_t n, double alpha, const double* x, double* y);
[[nodiscard]] double dot(std::size_t n, const double* x, const double* y);
[[nodiscard]] double nrm2(std::size_t n, const double* x);
void scal(std::size_t n, double alpha, double* x);
void copy(std::size_t n, const double* x, double* y);

}  // namespace ptucker::blas
