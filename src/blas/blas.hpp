#pragma once
/// \file blas.hpp
/// \brief Dense linear-algebra kernels (the BLAS substitute).
///
/// The paper's local computations are "cast in terms of BLAS3 routines to
/// exploit optimized, architecture-specific kernels" (Sec. I). This module
/// provides those routines from scratch: a cache-blocked, packing GEMM with
/// a register-tiled microkernel, SYRK (both the paper's default
/// full-storage variant and a symmetry-exploiting variant for the Sec. IX
/// ablation), GEMV, and level-1 operations.
///
/// Conventions follow BLAS: column-major storage with leading dimensions,
/// but 0-based std::size_t sizes. All kernels count flops into a global
/// counter (used by the weak-scaling bench to report GFLOPS exactly as the
/// paper's Fig. 9b does).

#include <cstddef>
#include <cstdint>

namespace ptucker::blas {

enum class Trans : std::uint8_t {
  No,  ///< use the matrix as stored
  Yes  ///< use the transpose
};

/// Number of rows of op(A) given A's stored shape.
[[nodiscard]] constexpr std::size_t op_rows(Trans t, std::size_t rows,
                                            std::size_t cols) {
  return t == Trans::No ? rows : cols;
}

/// --- flop accounting ---------------------------------------------------------

/// Total flops executed by all kernels since the last reset (all threads).
[[nodiscard]] std::uint64_t flop_count();
void reset_flop_count();
void add_flops(std::uint64_t flops);

/// --- level 3 -------------------------------------------------------------------

/// C(m x n) = alpha * op(A) * op(B) + beta * C.
/// op(A) is m x k and op(B) is k x n; lda/ldb/ldc are leading dimensions of
/// the *stored* matrices.
void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          double alpha, const double* a, std::size_t lda, const double* b,
          std::size_t ldb, double beta, double* c, std::size_t ldc);

/// Intra-kernel threading (paper Sec. IX: "using multi-threaded BLAS for
/// all local computations"). When set > 1, large gemm calls split their
/// column dimension across that many threads. Default 1: in this runtime
/// the ranks themselves are threads, so nested parallelism only pays when
/// running fewer ranks than cores. The setting is global (atomic).
void set_gemm_threads(int threads);
[[nodiscard]] int gemm_threads();

/// Auto-tune hook called by grid construction: defaults the gemm threads to
/// max(1, hardware_threads / active_ranks) — the spare cores when running
/// fewer ranks than the machine has — unless the user already called
/// set_gemm_threads, which always wins.
void autotune_gemm_threads(int active_ranks);

/// Return to the startup state: 1 thread, auto-tune re-armed (clears the
/// explicit override). For tests and benches that toggle the setting.
void reset_gemm_threads();

/// C(n x n) = alpha * op(A) * op(A)^T + beta * C with *both* triangles
/// stored — the paper's Gram computation "ignores the fact that S is
/// symmetric, storing both upper and lower triangles explicitly" (Sec. V-C).
/// trans == No: op(A) = A (n x k);  trans == Yes: op(A) = A^T (A is k x n).
void syrk_full(Trans trans, std::size_t n, std::size_t k, double alpha,
               const double* a, std::size_t lda, double beta, double* c,
               std::size_t ldc);

/// Symmetry-exploiting variant: computes the lower triangle in ~n^2 k flops
/// (vs 2 n^2 k) and leaves the upper triangle untouched. Use
/// symmetrize_from_lower() to fill the mirror. This is the optimization the
/// paper's Sec. IX lists as future work; bench/ablate_gram_symmetry measures
/// it.
void syrk_lower(Trans trans, std::size_t n, std::size_t k, double alpha,
                const double* a, std::size_t lda, double beta, double* c,
                std::size_t ldc);

/// Copy the lower triangle into the upper triangle.
void symmetrize_from_lower(std::size_t n, double* c, std::size_t ldc);

/// --- level 2 -------------------------------------------------------------------

/// y = alpha * op(A) * x + beta * y, A stored m x n.
void gemv(Trans trans, std::size_t m, std::size_t n, double alpha,
          const double* a, std::size_t lda, const double* x, double beta,
          double* y);

/// --- level 1 -------------------------------------------------------------------

void axpy(std::size_t n, double alpha, const double* x, double* y);
[[nodiscard]] double dot(std::size_t n, const double* x, const double* y);
[[nodiscard]] double nrm2(std::size_t n, const double* x);
void scal(std::size_t n, double alpha, double* x);
void copy(std::size_t n, const double* x, double* y);

}  // namespace ptucker::blas
