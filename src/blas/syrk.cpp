#include <algorithm>

#include "blas/blas.hpp"
#include "util/error.hpp"

namespace ptucker::blas {

void syrk_full(Trans trans, std::size_t n, std::size_t k, double alpha,
               const double* a, std::size_t lda, double beta, double* c,
               std::size_t ldc) {
  // Full-storage Gram update: both triangles computed (the paper's default).
  // Delegates to gemm with B = A under the complementary transpose; gemm
  // already counted 2 n^2 k flops, matching the paper's Gram flop count.
  if (trans == Trans::No) {
    gemm(Trans::No, Trans::Yes, n, n, k, alpha, a, lda, a, lda, beta, c, ldc);
  } else {
    gemm(Trans::Yes, Trans::No, n, n, k, alpha, a, lda, a, lda, beta, c, ldc);
  }
}

void syrk_lower(Trans trans, std::size_t n, std::size_t k, double alpha,
                const double* a, std::size_t lda, double beta, double* c,
                std::size_t ldc) {
  // Symmetry-exploiting variant (Sec. IX future work): process column-blocks
  // of C; for each block, one gemm for the sub-diagonal rectangle and one
  // small gemm for the diagonal block (upper half of the diagonal block is
  // computed and discarded — an O(n * NB * k) overhead).
  constexpr std::size_t NB = 32;
  if (n == 0) return;
  for (std::size_t j0 = 0; j0 < n; j0 += NB) {
    const std::size_t nb = std::min(NB, n - j0);
    // Diagonal block C(j0:j0+nb, j0:j0+nb).
    if (trans == Trans::No) {
      gemm(Trans::No, Trans::Yes, nb, nb, k, alpha, a + j0, lda, a + j0, lda,
           beta, c + j0 * ldc + j0, ldc);
    } else {
      gemm(Trans::Yes, Trans::No, nb, nb, k, alpha, a + j0 * lda, lda,
           a + j0 * lda, lda, beta, c + j0 * ldc + j0, ldc);
    }
    // Rectangle below the diagonal block: rows j0+nb .. n.
    const std::size_t rows = n - (j0 + nb);
    if (rows == 0) continue;
    if (trans == Trans::No) {
      gemm(Trans::No, Trans::Yes, rows, nb, k, alpha, a + (j0 + nb), lda,
           a + j0, lda, beta, c + j0 * ldc + (j0 + nb), ldc);
    } else {
      gemm(Trans::Yes, Trans::No, rows, nb, k, alpha, a + (j0 + nb) * lda,
           lda, a + j0 * lda, lda, beta, c + j0 * ldc + (j0 + nb), ldc);
    }
  }
}

void symmetrize_from_lower(std::size_t n, double* c, std::size_t ldc) {
  for (std::size_t j = 1; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      c[j * ldc + i] = c[i * ldc + j];
    }
  }
}

}  // namespace ptucker::blas
