#include <algorithm>

#include "blas/blas.hpp"
#include "blas/kernel_core.hpp"
#include "util/error.hpp"

namespace ptucker::blas {

void syrk_full(Trans trans, std::size_t n, std::size_t k, double alpha,
               const double* a, std::size_t lda, double beta, double* c,
               std::size_t ldc) {
  // Full-storage Gram update: both triangles computed (the paper's default).
  // Delegates to gemm with B = A under the complementary transpose; gemm
  // already counted 2 n^2 k flops, matching the paper's Gram flop count.
  if (trans == Trans::No) {
    gemm(Trans::No, Trans::Yes, n, n, k, alpha, a, lda, a, lda, beta, c, ldc);
  } else {
    gemm(Trans::Yes, Trans::No, n, n, k, alpha, a, lda, a, lda, beta, c, ldc);
  }
}

void syrk_lower(Trans trans, std::size_t n, std::size_t k, double alpha,
                const double* a, std::size_t lda, double beta, double* c,
                std::size_t ldc) {
  syrk_lower_batch_strided(trans, n, k, alpha, a, lda, 0, beta, c, ldc, 1);
}

void syrk_lower_batch_strided(Trans trans, std::size_t n, std::size_t k,
                              double alpha, const double* a, std::size_t lda,
                              std::size_t stride_a, double beta, double* c,
                              std::size_t ldc, std::size_t batch) {
  PT_REQUIRE(ldc >= std::max<std::size_t>(1, n),
             "syrk_lower_batch_strided: ldc too small");
  if (n == 0) return;
  if (batch == 0) {
    // Empty sum: C_lower = beta * C_lower, upper untouched.
    detail::EngineArgs scale;
    scale.m = n;
    scale.n = n;
    scale.k = 0;
    scale.alpha = 0.0;
    scale.beta = beta;
    scale.c = c;
    scale.ldc = ldc;
    scale.lower_only = true;
    detail::run_engine(scale);
    return;
  }
  // Symmetric-kernel flop model: n(n+1)k multiply-adds per item — the lower
  // triangle including the diagonal, counted once (vs the 2 n^2 k a full
  // gemm would report). This is what makes the sym-vs-full GF/s columns of
  // ablate_gram_symmetry comparable.
  add_flops((k == 0 || alpha == 0.0) ? 0 : n * (n + 1) * k * batch);

  // The packed engine runs C = alpha * op(A) op(A)^T + beta * C as a gemm
  // whose two operands are the same matrix under complementary transposes,
  // skipping micro tiles strictly above the diagonal (lower_only). Both
  // packed panels are built once per KC slab — unlike the old NB=32 gemm
  // decomposition, which re-packed the same columns n/NB times and fed the
  // microkernel NB-wide slivers.
  detail::EngineArgs args;
  args.ta = trans;
  args.tb = trans == Trans::No ? Trans::Yes : Trans::No;
  args.m = n;
  args.n = n;
  args.k = k;
  args.alpha = alpha;
  args.beta = beta;
  args.a = a;
  args.lda = lda;
  args.stride_a = stride_a;
  args.b = a;
  args.ldb = lda;
  args.stride_b = stride_a;
  args.c = c;
  args.ldc = ldc;
  args.stride_c = 0;  // fused: every item accumulates into the single C
  args.batch = batch;
  args.lower_only = true;
  detail::run_engine(args);
}

void symmetrize_from_lower(std::size_t n, double* c, std::size_t ldc) {
  // Tiled transpose copy: the naive per-element loop strides a full column
  // of C for every source read, thrashing cache once n exceeds a few
  // hundred. Walking TB x TB tiles keeps both the strided source block and
  // the contiguous destination columns resident.
  constexpr std::size_t TB = 64;
  for (std::size_t j0 = 0; j0 < n; j0 += TB) {
    const std::size_t jb = std::min(TB, n - j0);
    for (std::size_t i0 = 0; i0 <= j0; i0 += TB) {
      const std::size_t ib = std::min(TB, n - i0);
      for (std::size_t j = j0; j < j0 + jb; ++j) {
        double* dst = c + j * ldc;        // upper: column j, rows i < j
        const double* src = c + j;        // lower: row j, walked by column
        const std::size_t ihi = std::min(i0 + ib, j);
        for (std::size_t i = i0; i < ihi; ++i) dst[i] = src[i * ldc];
      }
    }
  }
}

}  // namespace ptucker::blas
