/// \file batch_engine.cpp
/// \brief The shared packed-panel engine (see kernel_core.hpp).

#include <algorithm>
#include <barrier>
#include <cstring>
#include <vector>

#include "blas/kernel_core.hpp"
#include "blas/threadpool.hpp"
#include "util/error.hpp"

namespace ptucker::blas::detail {

namespace {

/// Logical element access strides for op(X): element (i, j) of op(X) lives
/// at x[i*rs + j*cs].
struct OpStrides {
  std::size_t rs;
  std::size_t cs;
};

OpStrides strides_for(Trans t, std::size_t ld) {
  return t == Trans::No ? OpStrides{1, ld} : OpStrides{ld, 1};
}

/// Pack an mc x kc block of op(A) into MR-row panels, zero-padding the
/// ragged last panel. Layout: panel p holds rows [p*MR, p*MR+MR) as kc
/// consecutive MR-vectors. Panels with p % parts != part are skipped, so a
/// pool job splits the packing work without overlap.
void pack_a(const double* a, OpStrides s, std::size_t row0, std::size_t col0,
            std::size_t mc, std::size_t kc, double* dst, int part, int parts) {
  for (std::size_t p = static_cast<std::size_t>(part); p < (mc + MR - 1) / MR;
       p += static_cast<std::size_t>(parts)) {
    const std::size_t i0 = p * MR;
    const std::size_t rows = std::min(MR, mc - i0);
    for (std::size_t l = 0; l < kc; ++l) {
      const double* src = a + (row0 + i0) * s.rs + (col0 + l) * s.cs;
      double* out = dst + p * (KC * MR) + l * MR;
      std::size_t i = 0;
      for (; i < rows; ++i) out[i] = src[i * s.rs];
      for (; i < MR; ++i) out[i] = 0.0;
    }
  }
}

/// Pack a kc x nc block of op(B) into NR-column panels, zero-padded, with
/// the same part/parts panel split as pack_a.
void pack_b(const double* b, OpStrides s, std::size_t row0, std::size_t col0,
            std::size_t kc, std::size_t nc, double* dst, int part, int parts) {
  for (std::size_t p = static_cast<std::size_t>(part); p < (nc + NR - 1) / NR;
       p += static_cast<std::size_t>(parts)) {
    const std::size_t j0 = p * NR;
    const std::size_t cols = std::min(NR, nc - j0);
    for (std::size_t l = 0; l < kc; ++l) {
      const double* src = b + (row0 + l) * s.rs + (col0 + j0) * s.cs;
      double* out = dst + p * (KC * NR) + l * NR;
      std::size_t j = 0;
      for (; j < cols; ++j) out[j] = src[j * s.cs];
      for (; j < NR; ++j) out[j] = 0.0;
    }
  }
}

/// MR x NR register-tiled microkernel: acc = sum_l Ap(:,l) * Bp(l,:).
/// Ap: kc MR-vectors; Bp: kc NR-vectors. Plain nested loops over fixed-size
/// arrays; GCC/Clang vectorize this into FMA code with -O3 -march=native.
inline void micro_kernel(std::size_t kc, const double* ap, const double* bp,
                         double acc[MR][NR]) {
  for (std::size_t i = 0; i < MR; ++i) {
    for (std::size_t j = 0; j < NR; ++j) acc[i][j] = 0.0;
  }
  for (std::size_t l = 0; l < kc; ++l) {
    const double* av = ap + l * MR;
    const double* bv = bp + l * NR;
    for (std::size_t i = 0; i < MR; ++i) {
      const double ai = av[i];
      for (std::size_t j = 0; j < NR; ++j) {
        acc[i][j] += ai * bv[j];
      }
    }
  }
}

/// Write acc back into C(gi.., gj..). With lower_only, rows above the
/// diagonal are skipped element-wise when the tile straddles it.
inline void write_back(double* c, std::size_t ldc, std::size_t gi,
                       std::size_t gj, std::size_t rows, std::size_t cols,
                       double alpha, double beta_eff,
                       const double acc[MR][NR], bool lower_only) {
  const bool straddles = lower_only && gi + 1 < gj + cols;
  for (std::size_t j = 0; j < cols; ++j) {
    double* cj = c + (gj + j) * ldc + gi;
    std::size_t i = 0;
    if (straddles && gj + j > gi) i = gj + j - gi;  // first row with gi+i >= gj+j
    if (beta_eff == 0.0) {
      for (; i < rows; ++i) cj[i] = alpha * acc[i][j];
    } else {
      for (; i < rows; ++i) cj[i] = beta_eff * cj[i] + alpha * acc[i][j];
    }
  }
}

/// Scale one C by beta (the k == 0 / alpha == 0 degenerate case); with
/// lower_only only the stored triangle is touched.
void scale_c(double* c, std::size_t ldc, std::size_t m, std::size_t n,
             double beta, bool lower_only) {
  if (beta == 1.0) return;
  for (std::size_t j = 0; j < n; ++j) {
    double* col = c + j * ldc;
    const std::size_t i0 = lower_only ? std::min(j, m) : 0;
    if (beta == 0.0) {
      if (m > i0) std::memset(col + i0, 0, (m - i0) * sizeof(double));
    } else {
      for (std::size_t i = i0; i < m; ++i) col[i] *= beta;
    }
  }
}

/// Barrier wrapper: no-op in the serial (parts == 1) path.
struct SyncCtx {
  std::barrier<>* bar = nullptr;
  void sync() const {
    if (bar != nullptr) bar->arrive_and_wait();
  }
};

std::size_t a_pack_len() { return ((MC + MR - 1) / MR) * KC * MR; }
std::size_t b_pack_len() { return ((NC + NR - 1) / NR) * KC * NR; }

/// Fused-k body: one C, the batch rides in the contraction dimension with
/// KC slabs clipped at item boundaries (bit-equal to a per-item gemm loop).
/// Packing is split panel-wise across parts; the compute phase partitions
/// micro tiles round-robin. All parts execute identical loop bounds, so the
/// barrier arrival counts always match.
void fused_body(const EngineArgs& g, double* a_pack, double* b_pack, int part,
                int parts, const SyncCtx& ctx) {
  const OpStrides sa = strides_for(g.ta, g.lda);
  const OpStrides sb = strides_for(g.tb, g.ldb);
  const std::size_t k_total = g.k * g.batch;
  double acc[MR][NR];
  for (std::size_t jc = 0; jc < g.n; jc += NC) {
    const std::size_t nc = std::min(NC, g.n - jc);
    const std::size_t n_panels = (nc + NR - 1) / NR;
    std::size_t pc = 0;
    while (pc < k_total) {
      const std::size_t r = pc / g.k;
      const std::size_t k0 = pc - r * g.k;
      const std::size_t kc = std::min(KC, (r + 1) * g.k - pc);
      const double beta_eff = (pc == 0) ? g.beta : 1.0;
      pack_b(g.b + r * g.stride_b, sb, k0, jc, kc, nc, b_pack, part, parts);
      ctx.sync();
      for (std::size_t ic = 0; ic < g.m; ic += MC) {
        const std::size_t mc = std::min(MC, g.m - ic);
        const std::size_t m_panels = (mc + MR - 1) / MR;
        pack_a(g.a + r * g.stride_a, sa, ic, k0, mc, kc, a_pack, part, parts);
        ctx.sync();
        const std::size_t tiles = m_panels * n_panels;
        for (std::size_t t = static_cast<std::size_t>(part); t < tiles;
             t += static_cast<std::size_t>(parts)) {
          const std::size_t ip = t % m_panels;
          const std::size_t jp = t / m_panels;
          const std::size_t i0 = ip * MR;
          const std::size_t j0 = jp * NR;
          const std::size_t rows = std::min(MR, mc - i0);
          const std::size_t cols = std::min(NR, nc - j0);
          const std::size_t gi = ic + i0;
          const std::size_t gj = jc + j0;
          if (g.lower_only && gi + rows <= gj) continue;  // strictly upper
          micro_kernel(kc, a_pack + ip * (KC * MR), b_pack + jp * (KC * NR),
                       acc);
          write_back(g.c, g.ldc, gi, gj, rows, cols, g.alpha, beta_eff, acc,
                     g.lower_only);
        }
        ctx.sync();
      }
      pc += kc;
    }
  }
}

/// Strided-C body: per-item C with a shared op(B) packed once per KC slab
/// (stride_b == 0). Work units are (item, MC-tile) pairs; each part packs
/// the op(A) tiles it owns into its own private buffer, so the only shared
/// state is the B panel (two barriers per KC slab). \p a_pack is this
/// part's private buffer, allocated by the caller *before* the fork: a
/// barrier-synchronized body must never throw (an allocation failure here
/// would strand the other parts at the barrier), so it performs no
/// allocation at all.
void strided_body(const EngineArgs& g, double* b_pack, double* a_pack,
                  int part, int parts, const SyncCtx& ctx) {
  const OpStrides sa = strides_for(g.ta, g.lda);
  const OpStrides sb = strides_for(g.tb, g.ldb);
  const std::size_t m_tiles = (g.m + MC - 1) / MC;
  const std::size_t units = g.batch * m_tiles;
  double acc[MR][NR];
  for (std::size_t jc = 0; jc < g.n; jc += NC) {
    const std::size_t nc = std::min(NC, g.n - jc);
    const std::size_t n_panels = (nc + NR - 1) / NR;
    for (std::size_t pc = 0; pc < g.k; pc += KC) {
      const std::size_t kc = std::min(KC, g.k - pc);
      const double beta_eff = (pc == 0) ? g.beta : 1.0;
      pack_b(g.b, sb, pc, jc, kc, nc, b_pack, part, parts);
      ctx.sync();
      for (std::size_t u = static_cast<std::size_t>(part); u < units;
           u += static_cast<std::size_t>(parts)) {
        const std::size_t r = u / m_tiles;
        const std::size_t ic = (u % m_tiles) * MC;
        const std::size_t mc = std::min(MC, g.m - ic);
        const std::size_t m_panels = (mc + MR - 1) / MR;
        pack_a(g.a + r * g.stride_a, sa, ic, pc, mc, kc, a_pack, 0, 1);
        double* c_item = g.c + r * g.stride_c;
        for (std::size_t jp = 0; jp < n_panels; ++jp) {
          const std::size_t j0 = jp * NR;
          const std::size_t cols = std::min(NR, nc - j0);
          for (std::size_t ip = 0; ip < m_panels; ++ip) {
            const std::size_t i0 = ip * MR;
            const std::size_t rows = std::min(MR, mc - i0);
            micro_kernel(kc, a_pack + ip * (KC * MR), b_pack + jp * (KC * NR),
                         acc);
            write_back(c_item, g.ldc, ic + i0, jc + j0, rows, cols, g.alpha,
                       beta_eff, acc, false);
          }
        }
      }
      ctx.sync();
    }
  }
}

/// Threading decision: aggregate batch flops above the threshold, enough
/// flops per barrier-synchronized KC slab to amortize the sync, never from
/// inside a pool worker, and capped at the number of independent work
/// units so every part has something to do.
int decide_parts(const EngineArgs& g, bool fused) {
  const int threads = gemm_threads();
  if (threads <= 1 || ThreadPool::in_worker()) return 1;
  double flops = 2.0 * static_cast<double>(g.m) * static_cast<double>(g.n) *
                 static_cast<double>(g.k) * static_cast<double>(g.batch);
  if (g.lower_only) flops *= 0.5;  // upper micro tiles are skipped
  if (flops <= kThreadFlopThreshold) return 1;
  // Fused slabs are clipped at item boundaries: a tiny per-item k with a
  // huge batch means thousands of thin slabs, each paying barriers. The
  // strided path barriers once per (jc, pc) block regardless of batch.
  const std::size_t k_slabs = (g.k + KC - 1) / KC;
  const std::size_t slabs = ((g.n + NC - 1) / NC) *
                            (fused ? g.batch * k_slabs : k_slabs);
  if (flops / static_cast<double>(slabs) < kThreadFlopsPerSlabMin) return 1;
  std::size_t units;
  if (fused) {
    units = ((std::min(g.m, MC) + MR - 1) / MR) *
            ((std::min(g.n, NC) + NR - 1) / NR);
  } else {
    units = g.batch * ((g.m + MC - 1) / MC);
  }
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), units));
}

}  // namespace

void run_engine(const EngineArgs& g) {
  if (g.m == 0 || g.n == 0 || g.batch == 0) return;
  if (g.k == 0 || g.alpha == 0.0) {
    if (g.stride_c == 0 || g.batch == 1) {
      scale_c(g.c, g.ldc, g.m, g.n, g.beta, g.lower_only);
    } else {
      for (std::size_t r = 0; r < g.batch; ++r) {
        scale_c(g.c + r * g.stride_c, g.ldc, g.m, g.n, g.beta, g.lower_only);
      }
    }
    return;
  }

  const bool fused = g.stride_c == 0 || g.batch == 1;
  PT_CHECK(fused || g.stride_b == 0,
           "run_engine: strided-C batches require a shared B "
           "(the public wrapper loops the general case)");
  PT_CHECK(!g.lower_only || fused, "run_engine: lower_only requires fused C");

  // All scratch is allocated on the calling thread *before* any fork and
  // reused across calls; pool workers receive raw pointers through the job
  // closure. The bodies themselves never allocate: a throw between barrier
  // phases would strand the sibling parts at the barrier.
  const int parts = decide_parts(g, fused);
  thread_local std::vector<double> t_shared_b;
  thread_local std::vector<double> t_a_packs;  // one private slab per part
  t_shared_b.resize(b_pack_len());
  double* b_pack = t_shared_b.data();
  t_a_packs.resize(a_pack_len() * (fused ? 1 : static_cast<std::size_t>(parts)));
  double* a_packs = t_a_packs.data();

  if (parts <= 1) {
    const SyncCtx ctx{};
    if (fused) {
      fused_body(g, a_packs, b_pack, 0, 1, ctx);
    } else {
      strided_body(g, b_pack, a_packs, 0, 1, ctx);
    }
    return;
  }
  std::barrier<> bar(parts);
  const SyncCtx ctx{&bar};
  ThreadPool::local().run(parts, [&](int part) {
    if (fused) {
      fused_body(g, a_packs, b_pack, part, parts, ctx);
    } else {
      strided_body(g, b_pack,
                   a_packs + a_pack_len() * static_cast<std::size_t>(part),
                   part, parts, ctx);
    }
  });
}

}  // namespace ptucker::blas::detail
