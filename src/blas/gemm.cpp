#include <algorithm>
#include <atomic>
#include <thread>

#include "blas/blas.hpp"
#include "blas/kernel_core.hpp"
#include "util/error.hpp"

namespace ptucker::blas {

namespace {
std::atomic<std::uint64_t> g_flops{0};
std::atomic<int> g_gemm_threads{1};
std::atomic<bool> g_gemm_threads_explicit{false};
}  // namespace

std::uint64_t flop_count() { return g_flops.load(std::memory_order_relaxed); }

void reset_flop_count() { g_flops.store(0, std::memory_order_relaxed); }

void add_flops(std::uint64_t flops) {
  g_flops.fetch_add(flops, std::memory_order_relaxed);
}

void set_gemm_threads(int threads) {
  PT_REQUIRE(threads >= 1, "set_gemm_threads: need >= 1");
  g_gemm_threads_explicit.store(true, std::memory_order_relaxed);
  g_gemm_threads.store(threads, std::memory_order_relaxed);
}

int gemm_threads() { return g_gemm_threads.load(std::memory_order_relaxed); }

void autotune_gemm_threads(int active_ranks) {
  PT_REQUIRE(active_ranks >= 1, "autotune_gemm_threads: need >= 1 ranks");
  if (g_gemm_threads_explicit.load(std::memory_order_relaxed)) return;
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  g_gemm_threads.store(std::max(1, hw / active_ranks),
                       std::memory_order_relaxed);
}

void reset_gemm_threads() {
  g_gemm_threads_explicit.store(false, std::memory_order_relaxed);
  g_gemm_threads.store(1, std::memory_order_relaxed);
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          double alpha, const double* a, std::size_t lda, const double* b,
          std::size_t ldb, double beta, double* c, std::size_t ldc) {
  gemm_batch_strided(ta, tb, m, n, k, alpha, a, lda, 0, b, ldb, 0, beta, c,
                     ldc, 0, 1);
}

void gemm_batch_strided(Trans ta, Trans tb, std::size_t m, std::size_t n,
                        std::size_t k, double alpha, const double* a,
                        std::size_t lda, std::size_t stride_a, const double* b,
                        std::size_t ldb, std::size_t stride_b, double beta,
                        double* c, std::size_t ldc, std::size_t stride_c,
                        std::size_t batch) {
  PT_REQUIRE(ldc >= std::max<std::size_t>(1, m),
             "gemm_batch_strided: ldc too small");
  if (m == 0 || n == 0) return;
  if (batch == 0) {
    // An empty fused sum still owes C its beta scaling
    // (C = beta*C + alpha * sum over nothing); with per-item Cs there is
    // no item to scale.
    if (stride_c == 0) {
      gemm(Trans::No, Trans::No, m, n, 0, 0.0, nullptr, 1, nullptr, 1, beta,
           c, ldc);
    }
    return;
  }
  add_flops((k == 0 || alpha == 0.0) ? 0 : 2ull * m * n * k * batch);

  detail::EngineArgs args;
  args.ta = ta;
  args.tb = tb;
  args.m = m;
  args.n = n;
  args.k = k;
  args.alpha = alpha;
  args.beta = beta;
  args.a = a;
  args.lda = lda;
  args.stride_a = stride_a;
  args.b = b;
  args.ldb = ldb;
  args.stride_b = stride_b;
  args.c = c;
  args.ldc = ldc;
  args.stride_c = stride_c;
  args.batch = batch;

  // The engine fuses the batch into the contraction (stride_c == 0) or
  // shares the packed op(B) across per-item Cs (stride_b == 0). The fully
  // general case — distinct A, B, and C per item — has no panel reuse to
  // exploit, so it runs as a loop of single calls.
  if (batch > 1 && stride_c != 0 && stride_b != 0) {
    args.batch = 1;
    for (std::size_t r = 0; r < batch; ++r) {
      args.a = a + r * stride_a;
      args.b = b + r * stride_b;
      args.c = c + r * stride_c;
      detail::run_engine(args);
    }
    return;
  }
  detail::run_engine(args);
}

}  // namespace ptucker::blas
