#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "blas/blas.hpp"
#include "util/blocks.hpp"
#include "util/error.hpp"

namespace ptucker::blas {

namespace {
std::atomic<std::uint64_t> g_flops{0};
std::atomic<int> g_gemm_threads{1};
std::atomic<bool> g_gemm_threads_explicit{false};

// Blocking parameters (doubles): KC*MR and KC*NR panels stay in L1/L2.
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 8;
constexpr std::size_t MC = 128;
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 2048;

/// Logical element access strides for op(X): element (i, j) of op(X) lives
/// at x[i*rs + j*cs].
struct OpStrides {
  std::size_t rs;
  std::size_t cs;
};

OpStrides strides_for(Trans t, std::size_t ld) {
  return t == Trans::No ? OpStrides{1, ld} : OpStrides{ld, 1};
}

/// Pack an mc x kc block of op(A) into MR-row panels, zero-padding the
/// ragged last panel. Layout: panel p holds rows [p*MR, p*MR+MR) as
/// kc consecutive MR-vectors.
void pack_a(const double* a, OpStrides s, std::size_t row0, std::size_t col0,
            std::size_t mc, std::size_t kc, double* dst) {
  for (std::size_t p = 0; p < (mc + MR - 1) / MR; ++p) {
    const std::size_t i0 = p * MR;
    const std::size_t rows = std::min(MR, mc - i0);
    for (std::size_t l = 0; l < kc; ++l) {
      const double* src =
          a + (row0 + i0) * s.rs + (col0 + l) * s.cs;
      double* out = dst + p * (KC * MR) + l * MR;
      std::size_t i = 0;
      for (; i < rows; ++i) out[i] = src[i * s.rs];
      for (; i < MR; ++i) out[i] = 0.0;
    }
  }
}

/// Pack a kc x nc block of op(B) into NR-column panels, zero-padded.
void pack_b(const double* b, OpStrides s, std::size_t row0, std::size_t col0,
            std::size_t kc, std::size_t nc, double* dst) {
  for (std::size_t p = 0; p < (nc + NR - 1) / NR; ++p) {
    const std::size_t j0 = p * NR;
    const std::size_t cols = std::min(NR, nc - j0);
    for (std::size_t l = 0; l < kc; ++l) {
      const double* src =
          b + (row0 + l) * s.rs + (col0 + j0) * s.cs;
      double* out = dst + p * (KC * NR) + l * NR;
      std::size_t j = 0;
      for (; j < cols; ++j) out[j] = src[j * s.cs];
      for (; j < NR; ++j) out[j] = 0.0;
    }
  }
}

/// MR x NR register-tiled microkernel: acc = sum_l Ap(:,l) * Bp(l,:).
/// Ap: kc MR-vectors; Bp: kc NR-vectors. Plain nested loops over fixed-size
/// arrays; GCC/Clang vectorize this into FMA code with -O3 -march=native.
inline void micro_kernel(std::size_t kc, const double* ap, const double* bp,
                         double acc[MR][NR]) {
  for (std::size_t i = 0; i < MR; ++i) {
    for (std::size_t j = 0; j < NR; ++j) acc[i][j] = 0.0;
  }
  for (std::size_t l = 0; l < kc; ++l) {
    const double* av = ap + l * MR;
    const double* bv = bp + l * NR;
    for (std::size_t i = 0; i < MR; ++i) {
      const double ai = av[i];
      for (std::size_t j = 0; j < NR; ++j) {
        acc[i][j] += ai * bv[j];
      }
    }
  }
}

}  // namespace

std::uint64_t flop_count() { return g_flops.load(std::memory_order_relaxed); }

void reset_flop_count() { g_flops.store(0, std::memory_order_relaxed); }

void add_flops(std::uint64_t flops) {
  g_flops.fetch_add(flops, std::memory_order_relaxed);
}

void set_gemm_threads(int threads) {
  PT_REQUIRE(threads >= 1, "set_gemm_threads: need >= 1");
  g_gemm_threads_explicit.store(true, std::memory_order_relaxed);
  g_gemm_threads.store(threads, std::memory_order_relaxed);
}

int gemm_threads() { return g_gemm_threads.load(std::memory_order_relaxed); }

void autotune_gemm_threads(int active_ranks) {
  PT_REQUIRE(active_ranks >= 1, "autotune_gemm_threads: need >= 1 ranks");
  if (g_gemm_threads_explicit.load(std::memory_order_relaxed)) return;
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  g_gemm_threads.store(std::max(1, hw / active_ranks),
                       std::memory_order_relaxed);
}

void reset_gemm_threads() {
  g_gemm_threads_explicit.store(false, std::memory_order_relaxed);
  g_gemm_threads.store(1, std::memory_order_relaxed);
}

namespace {
/// Single-threaded blocked kernel (flops are counted by the dispatcher).
void gemm_impl(Trans ta, Trans tb, std::size_t m, std::size_t n,
               std::size_t k, double alpha, const double* a, std::size_t lda,
               const double* b, std::size_t ldb, double beta, double* c,
               std::size_t ldc);
}  // namespace

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          double alpha, const double* a, std::size_t lda, const double* b,
          std::size_t ldb, double beta, double* c, std::size_t ldc) {
  PT_REQUIRE(ldc >= std::max<std::size_t>(1, m), "gemm: ldc too small");
  if (m == 0 || n == 0) return;
  add_flops((k == 0 || alpha == 0.0) ? 0 : 2ull * m * n * k);

  // Sec. IX intra-kernel threading: split the column dimension into stripes
  // (disjoint C columns -> no synchronization needed). Column j of op(B)
  // starts at b + j*cs where cs is op(B)'s column stride.
  const int threads = g_gemm_threads.load(std::memory_order_relaxed);
  if (threads > 1 && n >= static_cast<std::size_t>(2 * threads) &&
      2.0 * static_cast<double>(m) * static_cast<double>(n) *
              static_cast<double>(k) >
          4e6) {
    const std::size_t bcs = (tb == Trans::No) ? ldb : 1;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      const util::Range stripe = util::uniform_block(
          n, static_cast<std::size_t>(threads), static_cast<std::size_t>(t));
      if (stripe.size() == 0) continue;
      workers.emplace_back([=]() {
        gemm_impl(ta, tb, m, stripe.size(), k, alpha, a, lda,
                  b + stripe.lo * bcs, ldb, beta, c + stripe.lo * ldc, ldc);
      });
    }
    for (auto& w : workers) w.join();
    return;
  }
  gemm_impl(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

namespace {
void gemm_impl(Trans ta, Trans tb, std::size_t m, std::size_t n,
               std::size_t k, double alpha, const double* a, std::size_t lda,
               const double* b, std::size_t ldb, double beta, double* c,
               std::size_t ldc) {

  auto scale_c = [&](double factor) {
    if (factor == 1.0) return;
    for (std::size_t j = 0; j < n; ++j) {
      double* col = c + j * ldc;
      if (factor == 0.0) {
        std::memset(col, 0, m * sizeof(double));
      } else {
        for (std::size_t i = 0; i < m; ++i) col[i] *= factor;
      }
    }
  };

  if (k == 0 || alpha == 0.0) {
    scale_c(beta);
    return;
  }

  const OpStrides sa = strides_for(ta, lda);
  const OpStrides sb = strides_for(tb, ldb);

  // Packing buffers (thread-local to avoid repeated allocation; each rank
  // thread gets its own).
  thread_local std::vector<double> a_pack;
  thread_local std::vector<double> b_pack;
  a_pack.resize(((MC + MR - 1) / MR) * KC * MR);
  b_pack.resize(((NC + NR - 1) / NR) * KC * NR);

  double acc[MR][NR];

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      const double beta_eff = (pc == 0) ? beta : 1.0;
      pack_b(b, sb, pc, jc, kc, nc, b_pack.data());
      for (std::size_t ic = 0; ic < m; ic += MC) {
        const std::size_t mc = std::min(MC, m - ic);
        pack_a(a, sa, ic, pc, mc, kc, a_pack.data());
        const std::size_t m_panels = (mc + MR - 1) / MR;
        const std::size_t n_panels = (nc + NR - 1) / NR;
        for (std::size_t jp = 0; jp < n_panels; ++jp) {
          const std::size_t j0 = jp * NR;
          const std::size_t cols = std::min(NR, nc - j0);
          for (std::size_t ip = 0; ip < m_panels; ++ip) {
            const std::size_t i0 = ip * MR;
            const std::size_t rows = std::min(MR, mc - i0);
            micro_kernel(kc, a_pack.data() + ip * (KC * MR),
                         b_pack.data() + jp * (KC * NR), acc);
            // Write-back: C(ic+i0+i, jc+j0+j).
            for (std::size_t j = 0; j < cols; ++j) {
              double* cj = c + (jc + j0 + j) * ldc + (ic + i0);
              if (beta_eff == 0.0) {
                for (std::size_t i = 0; i < rows; ++i) {
                  cj[i] = alpha * acc[i][j];
                }
              } else {
                for (std::size_t i = 0; i < rows; ++i) {
                  cj[i] = beta_eff * cj[i] + alpha * acc[i][j];
                }
              }
            }
          }
        }
      }
    }
  }
}
}  // namespace

}  // namespace ptucker::blas
