#pragma once
/// \file kernel_core.hpp
/// \brief Internal shared packed-panel core behind gemm, gemm_batch_strided
/// and the packed syrk (not installed API; include only from src/blas/).
///
/// One engine serves every level-3 entry point. It is a classic BLIS-style
/// blocked kernel — pack op(B) into NR-column panels and op(A) into MR-row
/// panels per KC slab, run a register-tiled microkernel over the macro tile
/// — extended with:
///
///  * a *batch* dimension with two schedules:
///     - fused-k (stride_c == 0): all batch items accumulate into one C and
///       the batch rides inside the KC loop as a virtual contraction length
///       k*batch. KC slabs are clipped at item boundaries so the per-element
///       floating-point grouping is *identical* to issuing one gemm per item
///       — the batched and per-slice local-kernel paths produce bit-equal
///       results.
///     - strided-C (stride_c != 0, stride_b == 0): one C per item with a
///       shared op(B) packed once per KC slab — the local TTM shape, where
///       the old code re-packed the factor matrix for every right-slice.
///  * a lower_only mode for syrk: micro tiles strictly above the diagonal
///    are skipped (half the flops at full microkernel throughput), tiles
///    crossing it write back only i >= j.
///  * fork/join threading on the persistent ThreadPool, with the decision
///    made on *aggregate* batch flops and work partitioned over micro tiles
///    (fused) or (item, MC-tile) units (strided). Ownership never changes
///    the per-element accumulation order, so results are bit-identical for
///    any thread count.

#include <cstddef>

#include "blas/blas.hpp"

namespace ptucker::blas::detail {

// Blocking parameters (doubles): KC*MR and KC*NR panels stay in L1/L2.
inline constexpr std::size_t MR = 4;
inline constexpr std::size_t NR = 8;
inline constexpr std::size_t MC = 128;
inline constexpr std::size_t KC = 256;
inline constexpr std::size_t NC = 2048;

/// Aggregate-flop threshold below which a call stays single-threaded. The
/// old dispatcher applied this per gemm call, so batched slice loops never
/// crossed it; the engine applies it to the whole batch.
inline constexpr double kThreadFlopThreshold = 4e6;

/// Minimum flops per KC slab for forking: every slab costs barrier
/// round-trips, so a fused batch whose slabs are clipped very thin (small
/// per-item k, huge batch) would spend more time synchronizing than
/// computing. ~50 us of compute per slab at laptop GEMM rates, vs ~10 us
/// of barrier traffic.
inline constexpr double kThreadFlopsPerSlabMin = 1e5;

/// Engine request: C_i = alpha * op(A_i) * op(B_i) + beta * C_i for
/// i in [0, batch), X_i = x + i*stride_x; op shapes m x k and k x n.
/// stride_c == 0 fuses the batch into one C (see file comment). Flops are
/// counted by the public wrappers, not here.
struct EngineArgs {
  Trans ta = Trans::No;
  Trans tb = Trans::No;
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;  ///< per-item contraction length
  double alpha = 1.0;
  double beta = 0.0;
  const double* a = nullptr;
  std::size_t lda = 1;
  std::size_t stride_a = 0;
  const double* b = nullptr;
  std::size_t ldb = 1;
  std::size_t stride_b = 0;
  double* c = nullptr;
  std::size_t ldc = 1;
  std::size_t stride_c = 0;
  std::size_t batch = 1;
  bool lower_only = false;  ///< skip strictly-upper micro tiles (fused only)
};

void run_engine(const EngineArgs& args);

}  // namespace ptucker::blas::detail
