#pragma once
/// \file threadpool.hpp
/// \brief Persistent worker pool for intra-kernel threading.
///
/// The original gemm dispatcher spawned and joined fresh std::threads on
/// every large call — acceptable for one huge multiply, ruinous for the
/// batched local kernels where one ST-HOSVD issues thousands of calls. This
/// pool keeps the workers alive across calls: each *calling* thread (in this
/// runtime the ranks themselves are threads) lazily owns one private pool,
/// so concurrent ranks never contend on a shared job queue and the worker
/// count tracks blas::gemm_threads() per rank, matching the
/// autotune_gemm_threads sizing of hardware_threads / ranks.
///
/// The pool runs fork/join jobs: run(parts, fn) invokes fn(part) for part in
/// [0, parts), part 0 on the caller itself, the rest on persistent workers.
/// Jobs may synchronize internally (the packed-panel engine shares packing
/// buffers via a std::barrier); the pool itself only forks and joins.

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ptucker::blas {

class ThreadPool {
 public:
  ThreadPool();
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The calling thread's private persistent pool (lazily constructed,
  /// destroyed — workers joined — when the thread exits).
  [[nodiscard]] static ThreadPool& local();

  /// True when called from inside a pool worker. Kernels use this to stay
  /// serial instead of forking nested jobs.
  [[nodiscard]] static bool in_worker();

  /// Invoke fn(part) for part in [0, parts); part 0 runs on the caller, the
  /// others on persistent workers (grown as needed, never shrunk). Blocks
  /// until every part returns; the first exception thrown by any part is
  /// rethrown after the join. Must not be called from inside a worker.
  /// Caveat: the pool can only join parts that *return*. A job that
  /// synchronizes internally (std::barrier) must not throw between barrier
  /// phases — the sibling parts would wait forever for the missing arrival.
  /// The kernel engine therefore does all allocation before forking.
  void run(int parts, const std::function<void(int)>& fn);

  /// Workers currently alive in this pool.
  [[nodiscard]] int workers() const {
    return static_cast<int>(workers_.size());
  }

  /// Process-wide count of worker threads ever spawned (all pools). The
  /// reuse test asserts this stays flat across repeated kernel calls.
  [[nodiscard]] static std::uint64_t workers_spawned();

 private:
  struct State;
  void ensure_workers(int count);
  void worker_loop(int index);

  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

}  // namespace ptucker::blas
