#include <cmath>
#include <cstring>

#include "blas/blas.hpp"

namespace ptucker::blas {

void gemv(Trans trans, std::size_t m, std::size_t n, double alpha,
          const double* a, std::size_t lda, const double* x, double beta,
          double* y) {
  const std::size_t ylen = (trans == Trans::No) ? m : n;
  if (beta == 0.0) {
    std::memset(y, 0, ylen * sizeof(double));
  } else if (beta != 1.0) {
    for (std::size_t i = 0; i < ylen; ++i) y[i] *= beta;
  }
  add_flops(2ull * m * n);
  if (trans == Trans::No) {
    // y += alpha * A x: accumulate columns (stride-1 over rows).
    for (std::size_t j = 0; j < n; ++j) {
      const double s = alpha * x[j];
      const double* col = a + j * lda;
      for (std::size_t i = 0; i < m; ++i) y[i] += s * col[i];
    }
  } else {
    // y += alpha * A^T x: dot of each column with x.
    for (std::size_t j = 0; j < n; ++j) {
      const double* col = a + j * lda;
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) s += col[i] * x[i];
      y[j] += alpha * s;
    }
  }
}

void axpy(std::size_t n, double alpha, const double* x, double* y) {
  add_flops(2ull * n);
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double dot(std::size_t n, const double* x, const double* y) {
  add_flops(2ull * n);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double nrm2(std::size_t n, const double* x) {
  // Scaled accumulation for overflow safety (netlib dnrm2 style).
  add_flops(2ull * n);
  double scale = 0.0;
  double ssq = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = std::fabs(x[i]);
    if (xi == 0.0) continue;
    if (scale < xi) {
      const double r = scale / xi;
      ssq = 1.0 + ssq * r * r;
      scale = xi;
    } else {
      const double r = xi / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

void scal(std::size_t n, double alpha, double* x) {
  add_flops(n);
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void copy(std::size_t n, const double* x, double* y) {
  std::memcpy(y, x, n * sizeof(double));
}

}  // namespace ptucker::blas
