#include "blas/threadpool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace ptucker::blas {

namespace {
std::atomic<std::uint64_t> g_workers_spawned{0};
thread_local bool t_in_worker = false;

/// Pool utilization metrics ("blas.pool.*"): jobs is every run() call,
/// serial_jobs the parts==1 fast path, parts the total fan-out (so
/// parts/jobs is the mean parallel width), workers the spawn count.
struct PoolCounters {
  obs::Counter jobs;
  obs::Counter serial_jobs;
  obs::Counter parts;
  obs::Counter workers_spawned;
};

PoolCounters& pool_counters() {
  static PoolCounters* c = [] {
    auto* t = new PoolCounters;
    t->jobs = obs::registry().counter("blas.pool.jobs");
    t->serial_jobs = obs::registry().counter("blas.pool.serial_jobs");
    t->parts = obs::registry().counter("blas.pool.parts");
    t->workers_spawned = obs::registry().counter("blas.pool.workers_spawned");
    return t;
  }();
  return *c;
}
}  // namespace

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  const std::function<void(int)>* job = nullptr;
  int job_parts = 0;
  std::uint64_t generation = 0;
  int outstanding = 0;  ///< workers that have not finished the current job
  int registered = 0;   ///< workers that have adopted the current generation
  bool stop = false;
  std::exception_ptr error;
};

ThreadPool::ThreadPool() : state_(std::make_unique<State>()) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->cv_work.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::local() {
  static thread_local ThreadPool pool;
  return pool;
}

bool ThreadPool::in_worker() { return t_in_worker; }

void ThreadPool::worker_loop(int index) {
  t_in_worker = true;
  State& st = *state_;
  // Adopt the current generation under the lock before signalling
  // readiness. Starting from seen = 0 would let a late-spawned worker
  // consume a *stale* generation left by an earlier job (an extra
  // --outstanding that ends the join one part early); adopting a
  // *post-job* generation would make it miss the job it was spawned for.
  // ensure_workers blocks until every spawn has registered, so neither can
  // happen.
  std::uint64_t seen = 0;
  {
    std::unique_lock<std::mutex> lock(st.mutex);
    seen = st.generation;
    ++st.registered;
    st.cv_done.notify_all();
  }
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    bool participate = false;
    {
      std::unique_lock<std::mutex> lock(st.mutex);
      st.cv_work.wait(lock,
                      [&] { return st.stop || st.generation != seen; });
      if (st.stop) return;
      seen = st.generation;
      fn = st.job;
      participate = index + 1 < st.job_parts;
    }
    if (!participate) continue;  // idle workers never touch the join count
    try {
      (*fn)(index + 1);
    } catch (...) {
      std::lock_guard<std::mutex> lock(st.mutex);
      if (!st.error) st.error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(st.mutex);
      if (--st.outstanding == 0) st.cv_done.notify_all();
    }
  }
}

void ThreadPool::ensure_workers(int count) {
  if (static_cast<int>(workers_.size()) >= count) return;
  while (static_cast<int>(workers_.size()) < count) {
    const int index = static_cast<int>(workers_.size());
    workers_.emplace_back([this, index] { worker_loop(index); });
    g_workers_spawned.fetch_add(1, std::memory_order_relaxed);
    pool_counters().workers_spawned.inc();
  }
  // Wait for every new worker to adopt the current generation; run() may
  // bump it immediately after we return.
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv_done.wait(lock, [&] {
    return state_->registered == static_cast<int>(workers_.size());
  });
}

void ThreadPool::run(int parts, const std::function<void(int)>& fn) {
  PT_REQUIRE(parts >= 1, "ThreadPool::run: parts must be >= 1");
  PT_REQUIRE(!t_in_worker, "ThreadPool::run: nested fork from a worker");
  pool_counters().jobs.inc();
  pool_counters().parts.add(static_cast<std::uint64_t>(parts));
  if (parts == 1) {
    pool_counters().serial_jobs.inc();
    fn(0);
    return;
  }
  State& st = *state_;
  ensure_workers(parts - 1);
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.job = &fn;
    st.job_parts = parts;
    // Join on the participants only: workers beyond parts-1 just re-arm on
    // the new generation without being scheduled into the join path, so a
    // small job on a grown pool doesn't wait for idle workers to wake.
    st.outstanding = parts - 1;
    ++st.generation;
  }
  st.cv_work.notify_all();
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr job_error;
  {
    std::unique_lock<std::mutex> lock(st.mutex);
    st.cv_done.wait(lock, [&] { return st.outstanding == 0; });
    st.job = nullptr;
    job_error = st.error;
    st.error = nullptr;
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (job_error) std::rethrow_exception(job_error);
}

std::uint64_t ThreadPool::workers_spawned() {
  return g_workers_spawned.load(std::memory_order_relaxed);
}

}  // namespace ptucker::blas
