#include "costmodel/tucker_model.hpp"

#include <cmath>

#include "costmodel/collective_model.hpp"
#include "dist/gram.hpp"
#include "mps/cart.hpp"
#include "util/error.hpp"

namespace ptucker::costmodel {

namespace {

double dprod(const Dims& dims) {
  double p = 1.0;
  for (std::size_t d : dims) p *= static_cast<double>(d);
  return p;
}

double grid_size(const std::vector<int>& grid) {
  double p = 1.0;
  for (int g : grid) p *= static_cast<double>(g);
  return p;
}

double log2_ceil(int p) {
  double l = 0.0;
  int v = 1;
  while (v < p) {
    v <<= 1;
    l += 1.0;
  }
  return l;
}

}  // namespace

KernelCost ttm_cost(const Dims& dims, std::size_t k, int mode,
                    const std::vector<int>& grid) {
  PT_REQUIRE(dims.size() == grid.size(), "ttm_cost: order mismatch");
  const double j = dprod(dims);
  const double p = grid_size(grid);
  const double pn = static_cast<double>(grid[static_cast<std::size_t>(mode)]);
  const double jn = static_cast<double>(dims[static_cast<std::size_t>(mode)]);
  const double jhat = j / jn;
  KernelCost cost;
  cost.flops = 2.0 * j * static_cast<double>(k) / p;
  cost.messages = pn * log2_ceil(static_cast<int>(pn));
  cost.words = (pn - 1.0) * jhat * static_cast<double>(k) / p;
  return cost;
}

KernelCost gram_cost(const Dims& dims, int mode, const std::vector<int>& grid,
                     bool symmetric) {
  PT_REQUIRE(dims.size() == grid.size(), "gram_cost: order mismatch");
  const double j = dprod(dims);
  const double p = grid_size(grid);
  const double pn = static_cast<double>(grid[static_cast<std::size_t>(mode)]);
  const double phat = p / pn;
  const double jn = static_cast<double>(dims[static_cast<std::size_t>(mode)]);
  KernelCost cost;
  // Full storage: 2 Jn J/P. The symmetric kernel computes only the lower
  // triangle of the *diagonal* block (Jn(Jn+1)k locally, i.e. (Jn+1) J/P);
  // the Pn-1 cross-Gram blocks of the ring are rectangular either way.
  const double diag_flops = symmetric ? (jn + 1.0) * j / p : 2.0 * jn * j / p;
  cost.flops = pn <= 1.0 ? diag_flops
                         : (diag_flops + 2.0 * (pn - 1.0) * jn * j / p) / pn;
  // Ring shift of the local tensor (Pn-1 exchanges of J/P words) + the
  // all-reduce of the Jn x Jn/Pn block column across the processor row.
  cost.messages = 2.0 * (pn - 1.0) + 2.0 * log2_ceil(static_cast<int>(phat));
  cost.words =
      2.0 * (pn - 1.0) * j / p + 2.0 * (phat - 1.0) * jn * jn / p;
  return cost;
}

KernelCost evecs_cost(std::size_t in, int mode, const std::vector<int>& grid) {
  const double pn = static_cast<double>(grid[static_cast<std::size_t>(mode)]);
  const double din = static_cast<double>(in);
  KernelCost cost;
  cost.flops = (10.0 / 3.0) * din * din * din;
  cost.messages = log2_ceil(static_cast<int>(pn));
  cost.words = (pn - 1.0) / pn * din * din;
  return cost;
}

KernelCost tsqr_cost(const Dims& dims, int mode,
                     const std::vector<int>& grid) {
  PT_REQUIRE(dims.size() == grid.size(), "tsqr_cost: order mismatch");
  const double j = dprod(dims);
  const double p = grid_size(grid);
  const double pn = static_cast<double>(grid[static_cast<std::size_t>(mode)]);
  const double jn = static_cast<double>(dims[static_cast<std::size_t>(mode)]);
  const double jhat = j / jn;
  const double logp = log2_ceil(static_cast<int>(p));
  KernelCost cost;
  // Row exchange within the processor column: each rank parts with
  // (Pn-1)/Pn of its J/P local block (send + receive counted, matching the
  // gram_cost ring convention).
  cost.messages = 2.0 * (pn - 1.0);
  cost.words = 2.0 * (pn - 1.0) / pn * j / p;
  // Local Householder QR of the (Jhat_n/P) x Jn full-width slab.
  cost.flops = 2.0 * (jhat / p) * jn * jn;
  // Binomial combine tree + broadcast of the Jn x Jn R: each level stacks
  // two R factors and re-factors (QR of 2Jn x Jn ~ (10/3) Jn^3).
  cost.flops += logp * (10.0 / 3.0) * jn * jn * jn;
  cost.messages += 2.0 * logp;
  cost.words += 2.0 * logp * jn * jn;
  // Redundant Jacobi SVD of R^T on every rank (same cubic as the Gram
  // route's redundant eigensolve).
  cost.flops += (10.0 / 3.0) * jn * jn * jn;
  return cost;
}

/// GramAlgo::Auto's kernel choice, from the shared dist predicate so the
/// model and the runtime cannot drift apart.
static bool auto_gram_symmetric(const std::vector<int>& grid, int mode) {
  return dist::auto_gram_prefers_symmetric(
      grid[static_cast<std::size_t>(mode)]);
}

bool prefer_tsqr(const Dims& dims, int mode, const std::vector<int>& grid,
                 const Machine& machine) {
  KernelCost gram_route =
      gram_cost(dims, mode, grid, auto_gram_symmetric(grid, mode));
  gram_route += evecs_cost(dims[static_cast<std::size_t>(mode)], mode, grid);
  return machine.seconds(tsqr_cost(dims, mode, grid)) <
         machine.seconds(gram_route);
}

KernelCost sketch_cost(const Dims& dims, int mode, std::size_t width,
                       int power_iterations, const std::vector<int>& grid) {
  PT_REQUIRE(dims.size() == grid.size(), "sketch_cost: order mismatch");
  const double j = dprod(dims);
  const double p = grid_size(grid);
  const double pn = static_cast<double>(grid[static_cast<std::size_t>(mode)]);
  const double phat = p / pn;
  const double jn = static_cast<double>(dims[static_cast<std::size_t>(mode)]);
  const double jhat = j / jn;
  const double w = static_cast<double>(width);
  const double passes = 1.0 + static_cast<double>(power_iterations);

  KernelCost cost;
  // Counter-based Gaussian test-matrix evaluation on the local block
  // (Box-Muller per entry; ~50 flop-equivalents each).
  cost.flops += 50.0 * w * jhat / phat;
  // (1+q) sketch cross-Grams of the local block against the width-w tensor.
  cost.flops += passes * 2.0 * w * j / p;
  // (1+q) full-grid allreduces of the Jn x w sketch.
  cost.messages += passes * 2.0 * log2_ceil(static_cast<int>(p));
  cost.words += passes * 2.0 * (p - 1.0) / p * jn * w;
  // (1+q) redundant thin QRs of the replicated Jn x w sketch.
  cost.flops += passes * 2.0 * jn * w * w;
  // (1+q) width-w TTMs (q power-iteration projections + the final one).
  for (int t = 0; t < static_cast<int>(passes); ++t) {
    cost += ttm_cost(dims, width, mode, grid);
  }
  // q processor-column allgathers of the re-blocked projected tensor.
  cost.messages += static_cast<double>(power_iterations) * 2.0 * (pn - 1.0);
  cost.words += static_cast<double>(power_iterations) * 2.0 * (pn - 1.0) /
                pn * w * jhat / phat;
  // TSQR of the projected tensor (mode extent w instead of Jn).
  Dims projected = dims;
  projected[static_cast<std::size_t>(mode)] = width;
  cost += tsqr_cost(projected, mode, grid);
  // Redundant w x w SVD of R^T and the factor lift U = Q U_B.
  cost.flops += (10.0 / 3.0) * w * w * w + 2.0 * jn * w * w;
  return cost;
}

bool prefer_sketch(const Dims& dims, int mode, std::size_t width,
                   int power_iterations, const std::vector<int>& grid,
                   const Machine& machine) {
  const std::size_t jn = dims[static_cast<std::size_t>(mode)];
  // A sketch as wide as the mode itself has no flop advantage over the
  // exact routes and still pays the sketch error — never pick it.
  if (2 * width >= jn) return false;
  KernelCost gram_route =
      gram_cost(dims, mode, grid, auto_gram_symmetric(grid, mode));
  gram_route += evecs_cost(jn, mode, grid);
  const double exact = std::min(machine.seconds(gram_route),
                                machine.seconds(tsqr_cost(dims, mode, grid)));
  return machine.seconds(
             sketch_cost(dims, mode, width, power_iterations, grid)) < exact;
}

KernelCost sthosvd_cost(const Dims& dims, const Dims& ranks,
                        const std::vector<int>& grid,
                        const std::vector<int>& order) {
  PT_REQUIRE(dims.size() == ranks.size() && dims.size() == grid.size(),
             "sthosvd_cost: order mismatch");
  Dims work = dims;
  KernelCost total;
  for (int n : order) {
    const std::size_t un = static_cast<std::size_t>(n);
    // Model the GramAlgo::Auto execution (symmetric kernel on short rings)
    // so the benches' modeled GFLOPS match the counted flops of a default
    // run.
    total += gram_cost(work, n, grid, auto_gram_symmetric(grid, n));
    total += evecs_cost(work[un], n, grid);
    total += ttm_cost(work, ranks[un], n, grid);
    work[un] = ranks[un];
  }
  return total;
}

KernelCost hooi_sweep_cost(const Dims& dims, const Dims& ranks,
                           const std::vector<int>& grid) {
  const int order = static_cast<int>(dims.size());
  KernelCost total;
  for (int n = 0; n < order; ++n) {
    // Multi-TTM: start from X, multiply every mode but n (natural order).
    Dims work = dims;
    for (int m = 0; m < order; ++m) {
      if (m == n) continue;
      const std::size_t um = static_cast<std::size_t>(m);
      total += ttm_cost(work, ranks[um], m, grid);
      work[um] = ranks[um];
    }
    total += gram_cost(work, n, grid, auto_gram_symmetric(grid, n));
    total += evecs_cost(work[static_cast<std::size_t>(n)], n, grid);
    if (n == order - 1) {
      // Final core TTM (Alg. 2 line 9).
      total += ttm_cost(work, ranks[static_cast<std::size_t>(n)], n, grid);
    }
  }
  return total;
}

double memory_bound_per_rank(const Dims& dims, const Dims& ranks,
                             const std::vector<int>& grid) {
  const double p = grid_size(grid);
  double bound = 2.0 * dprod(dims) / p;
  double max_in_sq = 0.0;
  double max_rn_in = 0.0;
  for (std::size_t n = 0; n < dims.size(); ++n) {
    const double in = static_cast<double>(dims[n]);
    const double rn = static_cast<double>(ranks[n]);
    const double pn = static_cast<double>(grid[n]);
    bound += rn * in / pn;
    max_in_sq = std::max(max_in_sq, in * in);
    max_rn_in = std::max(max_rn_in, rn * in);
  }
  return bound + max_in_sq + max_rn_in;
}

double sthosvd_flops(const Dims& dims, const Dims& ranks,
                     const std::vector<int>& order) {
  const std::vector<int> unit_grid(dims.size(), 1);
  return sthosvd_cost(dims, ranks, unit_grid, order).flops;
}

std::vector<int> best_grid(const Dims& dims, const Dims& ranks, int p,
                           const Machine& machine) {
  PT_REQUIRE(p >= 1, "best_grid: p must be >= 1");
  std::vector<int> order(dims.size());
  for (std::size_t n = 0; n < dims.size(); ++n) order[n] = static_cast<int>(n);
  std::vector<int> best;
  double best_seconds = 0.0;
  for (const auto& shape : mps::all_grid_shapes(p, static_cast<int>(dims.size()))) {
    bool feasible = true;
    for (std::size_t n = 0; n < dims.size(); ++n) {
      if (static_cast<std::size_t>(shape[n]) > dims[n]) feasible = false;
    }
    if (!feasible) continue;
    const double seconds =
        machine.seconds(sthosvd_cost(dims, ranks, shape, order));
    if (best.empty() || seconds < best_seconds) {
      best = shape;
      best_seconds = seconds;
    }
  }
  PT_REQUIRE(!best.empty(), "best_grid: no feasible grid for p = " << p);
  return best;
}

}  // namespace ptucker::costmodel
