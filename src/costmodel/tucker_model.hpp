#pragma once
/// \file tucker_model.hpp
/// \brief Analytical cost model for the parallel Tucker kernels and drivers
/// (paper Sec. V-B/C/D and Sec. VI), used for grid auto-tuning, model
/// validation tests, and the peak-fraction reporting of the scaling benches.

#include <vector>

#include "tensor/tensor.hpp"

namespace ptucker::costmodel {

using tensor::Dims;

/// Per-rank critical-path cost of one kernel invocation.
struct KernelCost {
  double flops = 0.0;
  double words = 0.0;     ///< beta multiplier
  double messages = 0.0;  ///< alpha multiplier

  KernelCost& operator+=(const KernelCost& other) {
    flops += other.flops;
    words += other.words;
    messages += other.messages;
    return *this;
  }
};

/// Machine parameters for converting costs into seconds.
struct Machine {
  double alpha = 1e-6;   ///< per-message latency (s)
  double beta = 1e-9;    ///< per-word transfer time (s/word)
  double gamma = 2.5e-10; ///< per-flop time (s); ~4 GFLOP/s/core scalar
  [[nodiscard]] double seconds(const KernelCost& cost) const {
    return alpha * cost.messages + beta * cost.words + gamma * cost.flops;
  }
};

/// Cost of Z = Y x_n M with Y of size dims, M of size K x dims[n]
/// (paper C_TTM: 2*J*K/P flops, alpha*Pn*logPn, beta*(Pn-1)*Jhat_n*K/P).
[[nodiscard]] KernelCost ttm_cost(const Dims& dims, std::size_t k, int mode,
                                  const std::vector<int>& grid);

/// Cost of S = Y(n) Y(n)^T (paper C_GRAM). With symmetric = true the local
/// diagonal-block kernel is the packed symmetry-exploiting syrk — (Jn+1)/2Jn
/// of the full-storage flops (n(n+1)k vs 2n^2k), identical communication.
/// Since the blas rework realizes that saving at full microkernel
/// throughput, GramAlgo::Auto routes short rings through ExploitSymmetry
/// (dist/gram.cpp); bench/ablate_gram_symmetry has the measurements.
[[nodiscard]] KernelCost gram_cost(const Dims& dims, int mode,
                                   const std::vector<int>& grid,
                                   bool symmetric = false);

/// Cost of the leading-eigenvector computation (paper C_EIG; note the
/// paper's beta term prints In where the all-gathered matrix actually has
/// In^2 entries — we model In^2).
[[nodiscard]] KernelCost evecs_cost(std::size_t in, int mode,
                                    const std::vector<int>& grid);

/// Cost of the Gram-free TSQR factor route for mode n (paper Sec. IX,
/// generalized to any grid): the processor-column row exchange, the local
/// Householder QR of the (Jhat_n/P) x Jn slab, the binomial R-combine tree
/// and broadcast over all P ranks, and the redundant small SVD of R^T.
/// Covers the same work as gram_cost + evecs_cost do for the Gram route.
[[nodiscard]] KernelCost tsqr_cost(const Dims& dims, int mode,
                                   const std::vector<int>& grid);

/// FactorMethod::Auto predicate: true when the modeled TSQR route beats
/// Gram + eigensolver for mode n under the machine parameters. Tall-skinny
/// unfoldings (Jn << Jhat_n) with Pn > 1 favor TSQR — it moves 1/Pn of the
/// local block once instead of ring-shifting all of it Pn-1 times — while
/// fat unfoldings pay O(log P) extra Jn^3 tree factorizations and stay on
/// the Gram route.
[[nodiscard]] bool prefer_tsqr(const Dims& dims, int mode,
                               const std::vector<int>& grid,
                               const Machine& machine = {});

/// Cost of the randomized sketch factor route for mode n with sketch width
/// w and q power iterations: test-matrix generation, (1+q) sketch
/// cross-Grams + allreduces + redundant thin QRs, (1+q) width-w TTMs, q
/// processor-column allgathers, the TSQR of the projected (w-row) tensor,
/// and the redundant w x w SVD + factor lift. The leading term is
/// 2(1+2q) w J/P flops — linear in w where the exact routes are linear in
/// Jn — so it wins exactly when w << Jn.
[[nodiscard]] KernelCost sketch_cost(const Dims& dims, int mode,
                                     std::size_t width, int power_iterations,
                                     const std::vector<int>& grid);

/// FactorMethod::Auto predicate for the randomized route: true when the
/// modeled sketch beats the better of the two exact routes for mode n.
/// Always false when the sketch width is not materially narrower than Jn
/// (no flop advantage, only sketch error).
[[nodiscard]] bool prefer_sketch(const Dims& dims, int mode, std::size_t width,
                                 int power_iterations,
                                 const std::vector<int>& grid,
                                 const Machine& machine = {});

/// Total ST-HOSVD cost: sums the three kernels over modes in the given
/// processing order with the working dims shrinking as the paper's Sec. VI-A
/// analysis does.
[[nodiscard]] KernelCost sthosvd_cost(const Dims& dims, const Dims& ranks,
                                      const std::vector<int>& grid,
                                      const std::vector<int>& order);

/// Cost of one HOOI sweep (paper Sec. VI-B), mirroring our implementation:
/// for every mode, a full (N-1)-TTM chain from X, a Gram, an eigensolve;
/// plus the final core TTM.
[[nodiscard]] KernelCost hooi_sweep_cost(const Dims& dims, const Dims& ranks,
                                         const std::vector<int>& grid);

/// Paper eq. (2): per-rank memory upper bound (in doubles) for ST-HOSVD /
/// HOOI.
[[nodiscard]] double memory_bound_per_rank(const Dims& dims, const Dims& ranks,
                                           const std::vector<int>& grid);

/// Sequential flop count for ST-HOSVD (P = 1 grid), used to compute the
/// GFLOPS figures of the scaling benches.
[[nodiscard]] double sthosvd_flops(const Dims& dims, const Dims& ranks,
                                   const std::vector<int>& order);

/// Model-driven grid selection: evaluates the ST-HOSVD cost of every P-rank
/// grid shape (skipping shapes with an extent exceeding its dim) under the
/// machine parameters and returns the cheapest. This automates the paper's
/// Sec. VIII-B manual tuning.
[[nodiscard]] std::vector<int> best_grid(const Dims& dims, const Dims& ranks,
                                         int p, const Machine& machine = {});

}  // namespace ptucker::costmodel
