#pragma once
/// \file collective_model.hpp
/// \brief The alpha-beta-gamma communication model of paper Tab. I, plus the
/// exact per-rank traffic formulas of our own collective implementations.
///
/// "Paper" formulas express critical-path cost assuming bandwidth-optimal
/// collectives: time = alpha * messages + beta * words (reduce flops
/// ignored, as the paper does). "Impl" formulas predict the exact number of
/// messages/words each rank *injects* under our ring/binomial algorithms —
/// the quantities the runtime counters measure, asserted by the tests.

#include <cstddef>

namespace ptucker::costmodel {

/// Critical-path communication volume: latency term (message count) and
/// bandwidth term (word count).
struct CommVolume {
  double messages = 0.0;
  double words = 0.0;
};

/// --- paper Tab. I -------------------------------------------------------------
[[nodiscard]] CommVolume paper_send(double w);
[[nodiscard]] CommVolume paper_allgather(int p, double w);
[[nodiscard]] CommVolume paper_reduce(int p, double w);
[[nodiscard]] CommVolume paper_allreduce(int p, double w);

/// --- exact per-rank injected traffic of the mps implementations ---------------
/// Ring all-gather of per-rank blocks of w/p words (total w).
[[nodiscard]] CommVolume impl_allgather(int p, double w);
/// Ring reduce-scatter of full vectors of w words.
[[nodiscard]] CommVolume impl_reduce_scatter(int p, double w);
/// All-reduce of w words (reduce-scatter + all-gather when w >= 2p,
/// otherwise binomial reduce + broadcast; this mirrors mps::allreduce).
[[nodiscard]] CommVolume impl_allreduce(int p, double w);
/// Binomial reduce: worst-case per-rank injected traffic (non-roots send
/// exactly once).
[[nodiscard]] CommVolume impl_reduce(int p, double w);
/// Dissemination barrier.
[[nodiscard]] CommVolume impl_barrier(int p);

/// --- overlap-aware terms ------------------------------------------------------
/// The nonblocking collectives let a schedule hide transfer time behind
/// compute (initiate, compute, complete). These terms price that hiding so
/// GramAlgo::Auto / TtmAlgo::Auto can compare overlapped schedules instead
/// of assuming every word serializes in front of the flops.

/// Chunked ring reduce-scatter (dist/ttm.cpp's pipelined schedule): the
/// destination blocks travel in `chunks` back-to-back collectives, each a
/// full ring round. Words are unchanged — every rank still injects
/// (p-1)/p * w — but the latency term multiplies by the chunk count
/// (zero-length chunks still travel as empty messages).
[[nodiscard]] CommVolume impl_reduce_scatter_chunked(int p, double w,
                                                     int chunks);

/// Communication seconds left exposed on the critical path when comm_s of
/// transfer is overlapped with compute_s of independent compute:
/// max(comm_s - compute_s, 0).
[[nodiscard]] double exposed_comm(double compute_s, double comm_s);

/// Makespan of a two-stage (compute -> communicate) pipeline over `chunks`
/// equal chunks with a fixed per-chunk initiation overhead:
///   (a + b) + (chunks - 1) * max(a, b) + chunks * overhead
/// with a = compute_s/chunks, b = comm_s/chunks. chunks = 1 is the
/// non-overlapped baseline compute_s + comm_s + overhead.
[[nodiscard]] double pipeline_makespan(double compute_s, double comm_s,
                                       double per_chunk_overhead_s, int chunks);

/// The chunk count in [1, max_chunks] minimizing pipeline_makespan, with the
/// modeled makespan at that count.
struct PipelinePlan {
  int chunks = 1;
  double seconds = 0.0;
};
[[nodiscard]] PipelinePlan pipeline_chunks(double compute_s, double comm_s,
                                           double per_chunk_overhead_s,
                                           int max_chunks);

}  // namespace ptucker::costmodel
