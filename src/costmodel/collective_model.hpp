#pragma once
/// \file collective_model.hpp
/// \brief The alpha-beta-gamma communication model of paper Tab. I, plus the
/// exact per-rank traffic formulas of our own collective implementations.
///
/// "Paper" formulas express critical-path cost assuming bandwidth-optimal
/// collectives: time = alpha * messages + beta * words (reduce flops
/// ignored, as the paper does). "Impl" formulas predict the exact number of
/// messages/words each rank *injects* under our ring/binomial algorithms —
/// the quantities the runtime counters measure, asserted by the tests.

#include <cstddef>

namespace ptucker::costmodel {

/// Critical-path communication volume: latency term (message count) and
/// bandwidth term (word count).
struct CommVolume {
  double messages = 0.0;
  double words = 0.0;
};

/// --- paper Tab. I -------------------------------------------------------------
[[nodiscard]] CommVolume paper_send(double w);
[[nodiscard]] CommVolume paper_allgather(int p, double w);
[[nodiscard]] CommVolume paper_reduce(int p, double w);
[[nodiscard]] CommVolume paper_allreduce(int p, double w);

/// --- exact per-rank injected traffic of the mps implementations ---------------
/// Ring all-gather of per-rank blocks of w/p words (total w).
[[nodiscard]] CommVolume impl_allgather(int p, double w);
/// Ring reduce-scatter of full vectors of w words.
[[nodiscard]] CommVolume impl_reduce_scatter(int p, double w);
/// All-reduce of w words (reduce-scatter + all-gather when w >= 2p,
/// otherwise binomial reduce + broadcast; this mirrors mps::allreduce).
[[nodiscard]] CommVolume impl_allreduce(int p, double w);
/// Binomial reduce: worst-case per-rank injected traffic (non-roots send
/// exactly once).
[[nodiscard]] CommVolume impl_reduce(int p, double w);
/// Dissemination barrier.
[[nodiscard]] CommVolume impl_barrier(int p);

}  // namespace ptucker::costmodel
