#include "costmodel/collective_model.hpp"

#include <cmath>

namespace ptucker::costmodel {

namespace {
double log2_ceil(int p) {
  double l = 0.0;
  int v = 1;
  while (v < p) {
    v <<= 1;
    l += 1.0;
  }
  return l;
}
double frac(int p) {
  return static_cast<double>(p - 1) / static_cast<double>(p);
}
}  // namespace

CommVolume paper_send(double w) { return {1.0, w}; }

CommVolume paper_allgather(int p, double w) {
  if (p <= 1) return {0.0, 0.0};
  return {log2_ceil(p), frac(p) * w};
}

CommVolume paper_reduce(int p, double w) {
  if (p <= 1) return {0.0, 0.0};
  return {log2_ceil(p), frac(p) * w};
}

CommVolume paper_allreduce(int p, double w) {
  if (p <= 1) return {0.0, 0.0};
  return {2.0 * log2_ceil(p), 2.0 * frac(p) * w};
}

CommVolume impl_allgather(int p, double w) {
  if (p <= 1) return {0.0, 0.0};
  // Ring: p-1 sends per rank; every rank forwards all blocks except the one
  // it finishes with: (p-1)/p * w words for uniform blocks.
  return {static_cast<double>(p - 1), frac(p) * w};
}

CommVolume impl_reduce_scatter(int p, double w) {
  if (p <= 1) return {0.0, 0.0};
  // Ring: p-1 sends per rank, total words = w - (own block) = (p-1)/p * w.
  return {static_cast<double>(p - 1), frac(p) * w};
}

CommVolume impl_allreduce(int p, double w) {
  if (p <= 1 || w == 0.0) return {0.0, 0.0};
  if (w >= 2.0 * static_cast<double>(p)) {
    const CommVolume rs = impl_reduce_scatter(p, w);
    const CommVolume ag = impl_allgather(p, w);
    return {rs.messages + ag.messages, rs.words + ag.words};
  }
  // Binomial reduce + broadcast: a rank sends at most once in the reduce
  // (w words) and at most ceil(log2 p) times in the broadcast.
  return {1.0 + log2_ceil(p), (1.0 + log2_ceil(p)) * w};
}

CommVolume impl_reduce(int p, double w) {
  if (p <= 1) return {0.0, 0.0};
  // Non-root ranks send exactly one message of w words; interior tree nodes
  // also receive up to log2(p). Injected traffic per rank <= w.
  return {1.0, w};
}

CommVolume impl_barrier(int p) {
  if (p <= 1) return {0.0, 0.0};
  return {log2_ceil(p), 0.0};
}

CommVolume impl_reduce_scatter_chunked(int p, double w, int chunks) {
  if (p <= 1) return {0.0, 0.0};
  const int c = chunks < 1 ? 1 : chunks;
  return {static_cast<double>(c) * static_cast<double>(p - 1), frac(p) * w};
}

double exposed_comm(double compute_s, double comm_s) {
  const double exposed = comm_s - compute_s;
  return exposed > 0.0 ? exposed : 0.0;
}

double pipeline_makespan(double compute_s, double comm_s,
                         double per_chunk_overhead_s, int chunks) {
  const double c = static_cast<double>(chunks < 1 ? 1 : chunks);
  const double a = compute_s / c;
  const double b = comm_s / c;
  const double bottleneck = a > b ? a : b;
  return (a + b) + (c - 1.0) * bottleneck + c * per_chunk_overhead_s;
}

PipelinePlan pipeline_chunks(double compute_s, double comm_s,
                             double per_chunk_overhead_s, int max_chunks) {
  PipelinePlan best{1, pipeline_makespan(compute_s, comm_s,
                                         per_chunk_overhead_s, 1)};
  for (int c = 2; c <= max_chunks; ++c) {
    const double t =
        pipeline_makespan(compute_s, comm_s, per_chunk_overhead_s, c);
    if (t < best.seconds) best = {c, t};
  }
  return best;
}

}  // namespace ptucker::costmodel
