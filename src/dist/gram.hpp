#pragma once
/// \file gram.hpp
/// \brief Distributed Gram matrix S = Y(n) Y(n)^T (paper Alg. 4).
///
/// Each rank ends up with the block column S(:, range) matching its mode-n
/// index range, replicated across its processor row. The kernel shifts local
/// blocks around the mode-n "processor column" (ranks differing only in
/// coordinate n own the same unfolding columns but different row blocks),
/// computes one cross-Gram per received block, and all-reduces the assembled
/// block column over the "processor row" to sum over unfolding columns.

#include "dist/dist_tensor.hpp"
#include "tensor/local_kernels.hpp"
#include "util/timer.hpp"

namespace ptucker::dist {

enum class GramAlgo {
  Auto,             ///< ExploitSymmetry for short rings, OverlappedRing else
  FullStorage,      ///< stepwise ring, both triangles computed (paper default)
  ExploitSymmetry,  ///< packed symmetric kernel for the diagonal block
  OverlappedRing,   ///< windowed eager ring sends (Sec. IX overlap item)
};

/// The GramAlgo::Auto kernel policy, shared with the cost model so
/// costmodel::sthosvd_cost / prefer_tsqr always model what the runtime
/// executes: short rings are flop-bound and take the packed symmetric
/// kernel; longer rings are communication-bound and take the overlapped
/// full-storage schedule.
[[nodiscard]] constexpr bool auto_gram_prefers_symmetric(int pn) {
  return pn <= 2;
}

/// A rank's block column of the Gram matrix: cols is Jn x range.size(),
/// holding columns [range.lo, range.hi) of the full Jn x Jn matrix.
struct GramColumns {
  tensor::Matrix cols;
  util::Range range;
};

/// Collective: compute this rank's Gram block column for mode n.
[[nodiscard]] GramColumns gram(const DistTensor& x, int mode,
                               GramAlgo algo = GramAlgo::Auto,
                               util::KernelTimers* timers = nullptr);

}  // namespace ptucker::dist
