#pragma once
/// \file dist_tensor.hpp
/// \brief Block-distributed dense tensor (paper Sec. IV-B).
///
/// A DistTensor splits each mode n of a global I1 x ... x IN tensor into Pn
/// contiguous blocks over the processor grid; the rank at coordinates
/// (c1, ..., cN) owns the Cartesian product of block cn of every mode, as a
/// dense local Tensor in the same first-index-fastest layout. Blocks are the
/// uniform floor splits of util::uniform_block, so "Pn evenly divides In" is
/// never required and some blocks may be empty.
///
/// All methods marked collective must be called by every rank of the grid.

#include <functional>
#include <memory>

#include "dist/grid.hpp"
#include "mps/collectives.hpp"
#include "tensor/tensor.hpp"

namespace ptucker::dist {

/// Copy \p src into \p dst at the sub-block described by \p ranges (the
/// inverse of Tensor::subtensor; used by gather and the scatter root).
void place_subtensor(tensor::Tensor& dst,
                     const std::vector<util::Range>& ranges,
                     const tensor::Tensor& src);

class DistTensor {
 public:
  /// Invalid placeholder (no grid); assign a real DistTensor before use.
  DistTensor() = default;

  /// Collective: allocate the zero tensor of the given global dims on the
  /// grid. Throws InvalidArgument when dims.size() != grid order.
  DistTensor(std::shared_ptr<mps::CartGrid> grid, tensor::Dims global_dims);

  /// Collective: distribute a global tensor living on \p root (ignored and
  /// may be empty on other ranks) onto the grid. Uses the binomial-tree
  /// scatter by default; Flat is the legacy direct-send root loop (kept for
  /// the IO-path ablation). Prefer pario::read_dist_tensor when the data is
  /// on disk — it needs no root copy at all.
  [[nodiscard]] static DistTensor scatter(
      const std::shared_ptr<mps::CartGrid>& grid, const tensor::Tensor& global,
      int root, mps::RootedAlgo algo = mps::RootedAlgo::Tree);

  /// Collective: assemble the global tensor on \p root; other ranks get an
  /// empty Tensor. Tree by default (see scatter); prefer
  /// pario::write_dist_tensor when the target is a file.
  [[nodiscard]] tensor::Tensor gather(
      int root, mps::RootedAlgo algo = mps::RootedAlgo::Tree) const;

  /// Deep copy (same grid, copied local block).
  [[nodiscard]] DistTensor clone() const { return *this; }

  [[nodiscard]] int order() const {
    return static_cast<int>(global_dims_.size());
  }
  [[nodiscard]] const tensor::Dims& global_dims() const { return global_dims_; }
  [[nodiscard]] std::size_t global_dim(int n) const {
    return global_dims_[static_cast<std::size_t>(n)];
  }

  [[nodiscard]] const mps::CartGrid& grid() const { return *grid_; }
  [[nodiscard]] const std::shared_ptr<mps::CartGrid>& grid_ptr() const {
    return grid_;
  }
  [[nodiscard]] const mps::Comm& comm() const { return grid_->comm(); }

  [[nodiscard]] tensor::Tensor& local() { return local_; }
  [[nodiscard]] const tensor::Tensor& local() const { return local_; }

  /// Global index range this rank owns in mode n.
  [[nodiscard]] util::Range mode_range(int n) const {
    return mode_range_of(n, grid_->coord(n));
  }

  /// Global index range the rank at grid coordinate \p coord owns in mode n.
  [[nodiscard]] util::Range mode_range_of(int n, int coord) const {
    return util::uniform_block(global_dims_[static_cast<std::size_t>(n)],
                               static_cast<std::size_t>(grid_->extent(n)),
                               static_cast<std::size_t>(coord));
  }

  /// Fill every rank's block by evaluating \p fn at global multi-indices.
  /// Communication-free and grid-independent for a fixed \p fn.
  void fill_global(
      const std::function<double(std::span<const std::size_t>)>& fn);

  /// Sum of squared entries over the global tensor (collective).
  [[nodiscard]] double norm_squared() const;
  [[nodiscard]] double norm() const;

 private:
  std::shared_ptr<mps::CartGrid> grid_;
  tensor::Dims global_dims_;
  tensor::Tensor local_;

  /// Per-mode ranges of the block owned by grid rank \p rank.
  [[nodiscard]] std::vector<util::Range> block_ranges_of(int rank) const;
};

}  // namespace ptucker::dist
