#include "dist/grid.hpp"

#include "blas/blas.hpp"

namespace ptucker::dist {

std::shared_ptr<mps::CartGrid> make_grid(mps::Comm& comm,
                                         std::vector<int> shape) {
  long long product = 1;
  for (int extent : shape) {
    PT_REQUIRE(extent >= 1, "make_grid: grid extents must be >= 1");
    product *= extent;
  }
  PT_REQUIRE(product == comm.size(),
             "make_grid: grid shape product " << product
                                              << " != communicator size "
                                              << comm.size());
  // Hand idle cores to the local BLAS: with fewer ranks than hardware
  // threads, large gemms split across the spare ones (ROADMAP item; an
  // explicit set_gemm_threads always wins).
  blas::autotune_gemm_threads(comm.size());
  return std::make_shared<mps::CartGrid>(comm, std::move(shape));
}

std::vector<int> default_grid_shape(int p, const tensor::Dims& dims) {
  PT_REQUIRE(p >= 1, "default_grid_shape: p must be >= 1");
  PT_REQUIRE(!dims.empty(), "default_grid_shape: dims must be non-empty");
  const auto shapes = mps::heuristic_grid_shapes(p, dims, 1);
  PT_CHECK(!shapes.empty(), "default_grid_shape: no factorization found");
  return shapes.front();
}

}  // namespace ptucker::dist
