#include "dist/ttm.hpp"

#include <cstring>

#include "mps/collectives.hpp"

namespace ptucker::dist {

namespace {

/// M restricted to the columns matching this rank's mode-n row range.
tensor::Matrix my_column_block(const tensor::Matrix& m,
                               const util::Range& range) {
  return m.col_block(range);
}

/// Blocked Alg. 3: Pn rounds; round l multiplies by the l-th row block of M
/// and binomial-reduces the partial to the rank owning output block l.
void ttm_blocked(const DistTensor& x, const tensor::Matrix& m_cols, int mode,
                 DistTensor& z) {
  const mps::CartGrid& grid = x.grid();
  const mps::Comm& col_comm = grid.mode_comm(mode);
  const int pn = grid.extent(mode);
  const int c = grid.coord(mode);

  tensor::Dims partial_dims = x.local().dims();
  tensor::Tensor partial;  // reused across rounds: the batched local TTM
                           // overwrites (beta = 0), so equal-sized blocks —
                           // the common divisible-grid case — skip the
                           // re-allocation and re-zeroing of J/P doubles
  for (int l = 0; l < pn; ++l) {
    const util::Range out_block = z.mode_range_of(mode, l);
    const tensor::Matrix m_block = m_cols.row_block(out_block);
    partial_dims[static_cast<std::size_t>(mode)] = out_block.size();
    if (partial.dims() != partial_dims) partial = tensor::Tensor(partial_dims);
    tensor::local_ttm_into(x.local(), m_block, mode, partial);
    mps::reduce(col_comm, std::span<const double>(partial.span()),
                c == l ? std::span<double>(z.local().span())
                       : std::span<double>(),
                l);
  }
}

/// Single multiply + reduce-scatter: compute all K output rows locally,
/// repack per destination block, scatter-reduce within the column.
void ttm_reduce_scatter(const DistTensor& x, const tensor::Matrix& m_cols,
                        int mode, DistTensor& z) {
  const mps::CartGrid& grid = x.grid();
  const mps::Comm& col_comm = grid.mode_comm(mode);
  const int pn = grid.extent(mode);

  tensor::Dims partial_dims = x.local().dims();
  partial_dims[static_cast<std::size_t>(mode)] = m_cols.rows();
  tensor::Tensor partial(partial_dims);
  tensor::local_ttm_into(x.local(), m_cols, mode, partial);

  // Pack the partial per destination: block l of the mode-n extent becomes
  // the contiguous chunk reduce-scatter delivers to coordinate l.
  std::vector<double> packed(partial.size());
  std::vector<std::size_t> counts(static_cast<std::size_t>(pn));
  std::vector<util::Range> ranges(partial_dims.size());
  for (std::size_t n = 0; n < partial_dims.size(); ++n) {
    ranges[n] = util::Range{0, partial_dims[n]};
  }
  std::size_t offset = 0;
  for (int l = 0; l < pn; ++l) {
    ranges[static_cast<std::size_t>(mode)] = z.mode_range_of(mode, l);
    const tensor::Tensor block = partial.subtensor(ranges);
    counts[static_cast<std::size_t>(l)] = block.size();
    std::memcpy(packed.data() + offset, block.data(),
                block.size() * sizeof(double));
    offset += block.size();
  }
  PT_CHECK(offset == packed.size(), "ttm: packing size mismatch");

  mps::reduce_scatter(col_comm, std::span<const double>(packed),
                      std::span<double>(z.local().span()),
                      std::span<const std::size_t>(counts));
}

}  // namespace

DistTensor ttm(const DistTensor& x, const tensor::Matrix& m, int mode,
               TtmAlgo algo, util::KernelTimers* timers) {
  PT_REQUIRE(mode >= 0 && mode < x.order(), "ttm: mode out of range");
  const std::size_t jn = x.global_dim(mode);
  PT_REQUIRE(m.cols() == jn, "ttm: matrix has "
                                 << m.cols() << " columns but mode " << mode
                                 << " has global extent " << jn);
  util::ScopedKernelTimer scope(timers, "TTM", mode);

  const std::size_t k = m.rows();
  tensor::Dims out_dims = x.global_dims();
  out_dims[static_cast<std::size_t>(mode)] = k;
  DistTensor z(x.grid_ptr(), out_dims);

  const int pn = x.grid().extent(mode);
  if (pn == 1) {
    // Paper Sec. V-B: no parallel communication at all when Pn = 1.
    tensor::local_ttm_into(x.local(), m, mode, z.local());
    return z;
  }

  const tensor::Matrix m_cols = my_column_block(m, x.mode_range(mode));
  if (algo == TtmAlgo::Auto) {
    algo = (k * static_cast<std::size_t>(pn) <= jn) ? TtmAlgo::ReduceScatter
                                                    : TtmAlgo::Blocked;
  }
  if (algo == TtmAlgo::ReduceScatter) {
    ttm_reduce_scatter(x, m_cols, mode, z);
  } else {
    ttm_blocked(x, m_cols, mode, z);
  }
  return z;
}

DistTensor ttm_chain(const DistTensor& x,
                     const std::vector<const tensor::Matrix*>& ms,
                     const std::vector<int>& order, TtmAlgo algo,
                     util::KernelTimers* timers) {
  PT_REQUIRE(ms.size() == static_cast<std::size_t>(x.order()),
             "ttm_chain: need one matrix slot per mode");
  DistTensor result;
  bool first = true;
  for (int n : order) {
    PT_REQUIRE(n >= 0 && n < x.order(), "ttm_chain: mode out of range");
    const tensor::Matrix* m = ms[static_cast<std::size_t>(n)];
    PT_REQUIRE(m != nullptr, "ttm_chain: no matrix for mode " << n);
    result = ttm(first ? x : result, *m, n, algo, timers);
    first = false;
  }
  if (first) return x.clone();
  return result;
}

}  // namespace ptucker::dist
