#include "dist/ttm.hpp"

#include <algorithm>
#include <cstring>

#include "costmodel/collective_model.hpp"
#include "costmodel/tucker_model.hpp"
#include "mps/collectives.hpp"

namespace ptucker::dist {

namespace {

/// M restricted to the columns matching this rank's mode-n row range.
tensor::Matrix my_column_block(const tensor::Matrix& m,
                               const util::Range& range) {
  return m.col_block(range);
}

/// Blocked Alg. 3, software-pipelined: Pn rounds; round l multiplies by the
/// l-th row block of M and binomial-reduces the partial to the rank owning
/// output block l. The reduce is initiated nonblocking and completed only
/// after round l+1's local multiply, so round l's tree traffic drains while
/// the next partial is being computed. ireduce captures its input at
/// initiation, so the partial buffer is immediately reusable and a single
/// buffer pipelines arbitrarily deep.
void ttm_blocked(const DistTensor& x, const tensor::Matrix& m_cols, int mode,
                 DistTensor& z) {
  const mps::CartGrid& grid = x.grid();
  const mps::Comm& col_comm = grid.mode_comm(mode);
  const int pn = grid.extent(mode);
  const int c = grid.coord(mode);

  tensor::Dims partial_dims = x.local().dims();
  tensor::Tensor partial;  // reused across rounds: the batched local TTM
                           // overwrites (beta = 0), so equal-sized blocks —
                           // the common divisible-grid case — skip the
                           // re-allocation and re-zeroing of J/P doubles
  mps::CollectiveHandle inflight;  // round l-1's reduce
  for (int l = 0; l < pn; ++l) {
    const util::Range out_block = z.mode_range_of(mode, l);
    const tensor::Matrix m_block = m_cols.row_block(out_block);
    partial_dims[static_cast<std::size_t>(mode)] = out_block.size();
    if (partial.dims() != partial_dims) partial = tensor::Tensor(partial_dims);
    tensor::local_ttm_into(x.local(), m_block, mode, partial);
    mps::CollectiveHandle h =
        mps::ireduce(col_comm, std::span<const double>(partial.span()),
                     c == l ? std::span<double>(z.local().span())
                            : std::span<double>(),
                     l);
    inflight.wait();
    inflight = std::move(h);
  }
  inflight.wait();
}

/// Append the packed per-destination chunks of \p partial for destination
/// coordinates [lo, hi) to \p packed and record their sizes in \p counts
/// (counts is full Pn-length; entries outside [lo, hi) stay zero).
void pack_destination_blocks(const tensor::Tensor& partial, const DistTensor& z,
                             int mode, int lo, int hi,
                             std::vector<double>& packed,
                             std::vector<std::size_t>& counts) {
  std::vector<util::Range> ranges(partial.dims().size());
  for (std::size_t n = 0; n < partial.dims().size(); ++n) {
    ranges[n] = util::Range{0, partial.dims()[n]};
  }
  const util::Range group{z.mode_range_of(mode, lo).lo,
                          z.mode_range_of(mode, hi - 1).hi};
  packed.clear();
  packed.resize(partial.size());
  std::size_t offset = 0;
  for (int l = lo; l < hi; ++l) {
    ranges[static_cast<std::size_t>(mode)] = util::Range{
        z.mode_range_of(mode, l).lo - group.lo,
        z.mode_range_of(mode, l).hi - group.lo};
    const tensor::Tensor block = partial.subtensor(ranges);
    counts[static_cast<std::size_t>(l)] = block.size();
    std::memcpy(packed.data() + offset, block.data(),
                block.size() * sizeof(double));
    offset += block.size();
  }
  PT_CHECK(offset == packed.size(), "ttm: packing size mismatch");
}

/// Pick the chunk-group count for the pipelined reduce-scatter schedule from
/// the overlap-aware cost model: the local multiply and the ring transfer of
/// each group form a two-stage pipeline whose per-chunk overhead is one ring
/// round of latency (zero-length chunks still travel as empty messages).
int reduce_scatter_chunk_count(const DistTensor& x, std::size_t k,
                               std::size_t out_words, int pn) {
  const costmodel::Machine machine;
  const double compute_s = machine.gamma * 2.0 *
                           static_cast<double>(x.local().size()) *
                           static_cast<double>(k);
  const costmodel::CommVolume ring =
      costmodel::impl_reduce_scatter(pn, static_cast<double>(out_words));
  const double comm_s =
      machine.alpha * ring.messages + machine.beta * ring.words;
  const double overhead_s = machine.alpha * static_cast<double>(pn - 1);
  return costmodel::pipeline_chunks(compute_s, comm_s, overhead_s, pn).chunks;
}

/// Reduce-scatter schedule, chunk-pipelined: the destination blocks are
/// split into C groups of consecutive coordinates; group g's partial rows
/// are multiplied and packed while group g-1's ireduce_scatter is still in
/// flight. Each group's collective carries the full Pn-length counts vector
/// with zeros outside the group, so block l's ring path — and therefore its
/// floating-point reduction order — is exactly the monolithic schedule's,
/// making the chunked result bitwise identical (C = 1 degenerates to the
/// original single collective).
void ttm_reduce_scatter(const DistTensor& x, const tensor::Matrix& m_cols,
                        int mode, DistTensor& z) {
  const mps::CartGrid& grid = x.grid();
  const mps::Comm& col_comm = grid.mode_comm(mode);
  const int pn = grid.extent(mode);
  const int c = grid.coord(mode);

  const std::size_t out_words =
      x.local().size() /
      std::max<std::size_t>(
          1, x.local().dims()[static_cast<std::size_t>(mode)]) *
      m_cols.rows();
  const int chunks = std::min(
      pn,
      std::max(1, reduce_scatter_chunk_count(x, m_cols.rows(), out_words, pn)));

  tensor::Dims partial_dims = x.local().dims();
  tensor::Tensor partial;
  std::vector<double> packed;
  std::vector<std::size_t> counts(static_cast<std::size_t>(pn));
  mps::CollectiveHandle inflight;  // previous group's reduce-scatter
  for (int g = 0; g < chunks; ++g) {
    // Consecutive destination coordinates [lo, hi) form group g.
    const int lo = static_cast<int>(
        static_cast<long long>(g) * pn / chunks);
    const int hi = static_cast<int>(
        static_cast<long long>(g + 1) * pn / chunks);
    const util::Range rows{z.mode_range_of(mode, lo).lo,
                           z.mode_range_of(mode, hi - 1).hi};
    partial_dims[static_cast<std::size_t>(mode)] = rows.size();
    if (partial.dims() != partial_dims) partial = tensor::Tensor(partial_dims);
    tensor::local_ttm_into(x.local(), m_cols.row_block(rows), mode, partial);

    std::fill(counts.begin(), counts.end(), 0);
    pack_destination_blocks(partial, z, mode, lo, hi, packed, counts);
    const bool mine = c >= lo && c < hi;
    mps::CollectiveHandle h = mps::ireduce_scatter(
        col_comm, std::span<const double>(packed),
        mine ? std::span<double>(z.local().span()) : std::span<double>(),
        std::span<const std::size_t>(counts));
    inflight.wait();
    inflight = std::move(h);
  }
  inflight.wait();
}

}  // namespace

DistTensor ttm(const DistTensor& x, const tensor::Matrix& m, int mode,
               TtmAlgo algo, util::KernelTimers* timers) {
  PT_REQUIRE(mode >= 0 && mode < x.order(), "ttm: mode out of range");
  const std::size_t jn = x.global_dim(mode);
  PT_REQUIRE(m.cols() == jn, "ttm: matrix has "
                                 << m.cols() << " columns but mode " << mode
                                 << " has global extent " << jn);
  util::ScopedKernelTimer scope(timers, "TTM", mode);

  const std::size_t k = m.rows();
  tensor::Dims out_dims = x.global_dims();
  out_dims[static_cast<std::size_t>(mode)] = k;
  DistTensor z(x.grid_ptr(), out_dims);

  const int pn = x.grid().extent(mode);
  if (pn == 1) {
    // Paper Sec. V-B: no parallel communication at all when Pn = 1.
    tensor::local_ttm_into(x.local(), m, mode, z.local());
    return z;
  }

  const tensor::Matrix m_cols = my_column_block(m, x.mode_range(mode));
  if (algo == TtmAlgo::Auto) {
    // Price the two schedules as the overlapped pipelines they now are:
    // ReduceScatter hides the ring behind the chunked local multiply,
    // Blocked hides each binomial reduce behind the next round's multiply
    // (a fixed Pn-chunk pipeline). The paper's K*Pn <= Jn switch falls out
    // of the word terms when latency is negligible; the model additionally
    // accounts for what overlap can hide.
    const costmodel::Machine machine;
    const std::size_t j_loc = std::max<std::size_t>(
        1, x.local().dims()[static_cast<std::size_t>(mode)]);
    const double out_words =
        static_cast<double>(x.local().size() / j_loc) * static_cast<double>(k);
    const double compute_s = machine.gamma * 2.0 *
                             static_cast<double>(x.local().size()) *
                             static_cast<double>(k);
    const costmodel::CommVolume rs_ring =
        costmodel::impl_reduce_scatter(pn, out_words);
    const double rs_comm_s =
        machine.alpha * rs_ring.messages + machine.beta * rs_ring.words;
    const double rs_s =
        costmodel::pipeline_chunks(compute_s, rs_comm_s,
                                   machine.alpha * (pn - 1), pn)
            .seconds;
    const costmodel::CommVolume round =
        costmodel::paper_reduce(pn, out_words / pn);
    const double bl_comm_s =
        pn * (machine.alpha * round.messages + machine.beta * round.words);
    const double bl_s =
        costmodel::pipeline_makespan(compute_s, bl_comm_s, 0.0, pn);
    algo = rs_s <= bl_s ? TtmAlgo::ReduceScatter : TtmAlgo::Blocked;
  }
  if (algo == TtmAlgo::ReduceScatter) {
    ttm_reduce_scatter(x, m_cols, mode, z);
  } else {
    ttm_blocked(x, m_cols, mode, z);
  }
  return z;
}

DistTensor ttm_chain(const DistTensor& x,
                     const std::vector<const tensor::Matrix*>& ms,
                     const std::vector<int>& order, TtmAlgo algo,
                     util::KernelTimers* timers) {
  PT_REQUIRE(ms.size() == static_cast<std::size_t>(x.order()),
             "ttm_chain: need one matrix slot per mode");
  DistTensor result;
  bool first = true;
  for (int n : order) {
    PT_REQUIRE(n >= 0 && n < x.order(), "ttm_chain: mode out of range");
    const tensor::Matrix* m = ms[static_cast<std::size_t>(n)];
    PT_REQUIRE(m != nullptr, "ttm_chain: no matrix for mode " << n);
    result = ttm(first ? x : result, *m, n, algo, timers);
    first = false;
  }
  if (first) return x.clone();
  return result;
}

}  // namespace ptucker::dist
