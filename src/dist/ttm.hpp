#pragma once
/// \file ttm.hpp
/// \brief Distributed tensor-times-matrix Z = Y x_n M (paper Sec. V-B).
///
/// M is K x Jn and replicated; Y's mode-n blocks are spread over the Pn
/// ranks of the processor column, so each rank contributes the partial
/// product of M's matching column block with its local tensor, and the
/// partials are summed within the processor column. Two communication
/// schedules are provided:
///  - Blocked (Alg. 3): Pn rounds, round l reducing the K/Pn-row output
///    block to its owner — bounded temporaries, Pn binomial reduces, each
///    initiated nonblocking and drained under the next round's multiply.
///  - ReduceScatter: the K output rows are multiplied and reduce-scattered
///    in chunk groups, each group's collective in flight during the next
///    group's multiply (the chunk count comes from the overlap-aware
///    pipeline model; one chunk degenerates to the original single
///    multiply + reduce-scatter).
/// Auto prices both schedules with costmodel::pipeline_chunks /
/// pipeline_makespan — the paper's K <= Jn/Pn switch is the word-term limit
/// of that comparison; with Pn = 1 either path degenerates to one local
/// call with no communication at all.

#include "dist/dist_tensor.hpp"
#include "tensor/local_kernels.hpp"
#include "util/timer.hpp"

namespace ptucker::dist {

enum class TtmAlgo {
  Auto,           ///< cheaper overlapped schedule under the pipeline model
  Blocked,        ///< paper Alg. 3: Pn pipelined rounds of binomial reduces
  ReduceScatter,  ///< chunk-pipelined multiply + reduce-scatter
};

/// Collective: Z = Y x_n M with M of size K x Jn (decomposition passes U^T,
/// reconstruction passes U). The result lives on the same grid with mode n
/// re-blocked to extent K.
[[nodiscard]] DistTensor ttm(const DistTensor& x, const tensor::Matrix& m,
                             int mode, TtmAlgo algo = TtmAlgo::Auto,
                             util::KernelTimers* timers = nullptr);

/// Collective: apply ttm for each mode listed in \p order, using
/// ms[mode] (entries for unlisted modes may be null).
[[nodiscard]] DistTensor ttm_chain(const DistTensor& x,
                                   const std::vector<const tensor::Matrix*>& ms,
                                   const std::vector<int>& order,
                                   TtmAlgo algo = TtmAlgo::Auto,
                                   util::KernelTimers* timers = nullptr);

}  // namespace ptucker::dist
