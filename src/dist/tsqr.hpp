#pragma once
/// \file tsqr.hpp
/// \brief Communication-avoiding TSQR factorization of the mode-n unfolding
/// (paper Sec. IX): the Gram-free route to the factor matrix.
///
/// Requires Pn = 1 for the mode: every rank then owns all Jn rows of the
/// unfolding over a disjoint set of columns, so the transposed unfolding is
/// a tall matrix row-partitioned over all P ranks. Each rank computes a
/// local Householder QR, the Jn x Jn R factors are combined up a binomial
/// tree, and the final R (with R^T R = Y(n) Y(n)^T) is broadcast. Because R
/// is produced without ever squaring Y, singular values as small as
/// machine-eps times the largest remain resolvable — the deep spectral tail
/// the Gram route flattens.

#include "dist/eigenvectors.hpp"

namespace ptucker::dist {

/// True when the TSQR route can factor mode n: the grid keeps that mode's
/// rows together (Pn == 1).
[[nodiscard]] bool tsqr_applicable(const DistTensor& x, int mode);

/// Collective: the Jn x Jn R factor of the transposed mode-n unfolding,
/// replicated on every rank. Throws InvalidArgument when not applicable.
[[nodiscard]] tensor::Matrix tsqr_r_factor(const DistTensor& x, int mode,
                                           util::KernelTimers* timers =
                                               nullptr);

/// Collective: factor matrix via TSQR + small SVD of R^T. Returns the same
/// FactorResult shape as eigenvectors(): eigenvalues are squared singular
/// values (full length Jn, descending), U is Jn x rank, sign-canonicalized.
[[nodiscard]] FactorResult factor_via_tsqr(const DistTensor& x, int mode,
                                           const RankSelection& select,
                                           util::KernelTimers* timers =
                                               nullptr);

}  // namespace ptucker::dist
