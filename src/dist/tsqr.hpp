#pragma once
/// \file tsqr.hpp
/// \brief Communication-avoiding TSQR factorization of the mode-n unfolding
/// (paper Sec. IX): the Gram-free route to the factor matrix.
///
/// Works on any processor grid. The transposed unfolding A = Y(n)^T is a
/// tall matrix whose rows (the unfolding's columns) are spread over the
/// grid. When Pn > 1 each rank first exchanges sub-blocks within the mode-n
/// processor column so that every rank holds a full-width (all Jn columns)
/// slab of a disjoint set of rows; with Pn == 1 that exchange is a no-op.
/// Each rank then computes a local Householder QR of its slab, the Jn x Jn
/// R factors are combined up a binomial tree over the whole grid, and the
/// final R (with R^T R = Y(n) Y(n)^T) is broadcast. Because R is produced
/// without ever squaring Y, singular values as small as machine-eps times
/// the largest remain resolvable — the deep spectral tail the Gram route
/// flattens.

#include "dist/eigenvectors.hpp"

namespace ptucker::dist {

/// Collective: the Jn x Jn R factor of the transposed mode-n unfolding,
/// replicated on every rank. Valid for any grid (any Pn).
[[nodiscard]] tensor::Matrix tsqr_r_factor(const DistTensor& x, int mode,
                                           util::KernelTimers* timers =
                                               nullptr);

/// Collective: factor matrix via TSQR + small SVD of R^T. Returns the same
/// FactorResult shape as eigenvectors(): eigenvalues are squared singular
/// values (full length Jn, descending), U is Jn x rank, sign-canonicalized.
[[nodiscard]] FactorResult factor_via_tsqr(const DistTensor& x, int mode,
                                           const RankSelection& select,
                                           util::KernelTimers* timers =
                                               nullptr);

}  // namespace ptucker::dist
