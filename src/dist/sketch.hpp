#pragma once
/// \file sketch.hpp
/// \brief Randomized sketched factor route (`FactorMethod::Randomized`).
///
/// Instead of paying for the full unfolding — the O(Jn · J/P) Gram or the
/// full-width TSQR — this route recovers the leading left singular subspace
/// of Y(n) from a width-w sketch, w = rank + oversample << Jn:
///
///   1. Sketch: S = Y(n) · Omega with a counter-based Gaussian test matrix
///      Omega (Jhat_n x w). Each rank evaluates the Omega rows of its own
///      unfolding columns on the fly (util::SketchRng, indexed by the
///      *global* column, so the sketch subspace is identical on any grid),
///      multiplies through the batched cross-Gram kernel, and one allreduce
///      of the Jn x w partial replicates S. Cost O(Jn · w · J/(Jn·P)).
///   2. Orthonormalize: Q = thin-QR(S), redundant on every rank (S is
///      small and replicated — no communication).
///   3. Optional power iterations (q passes): Z = Y ×n Qᵀ (a TTM), then
///      S = Y(n) Z(n)ᵀ (cross-Gram against the column-allgathered Z) and
///      re-orthonormalize — sharpens the subspace when the spectrum decays
///      slowly, at one TTM + one sketch-width cross-Gram per pass.
///   4. Project + small spectrum: Z = Y ×n Qᵀ, then the existing general
///      TSQR tree runs on the *projected* tensor (w-row unfolding — cheap),
///      and the redundant SVD of Rᵀ yields the spectrum of B = Qᵀ Y(n) and
///      its left vectors U_B. The factor is U = Q · U_B.
///
/// Error accounting is exact, not heuristic: truncating Y to the subspace
/// spanned by the leading r columns of U adds exactly
/// ‖Y‖² − Σ_{i<r} λ_i(B) to the squared error, i.e. the in-sketch tail
/// plus the out-of-sketch residual ‖Y‖² − ‖Z‖². Rank selection charges
/// both, so an eq. 3 eps budget certified here is a true bound; when even
/// the residual alone exceeds the per-mode budget the result is returned
/// uncertified and the driver falls back to the Gram route (recorded in
/// SthosvdResult::downgrades).

#include "dist/eigenvectors.hpp"
#include "dist/ttm.hpp"

namespace ptucker::dist {

/// Knobs for the randomized route (core::SthosvdOptions::sketch).
struct SketchOptions {
  /// Seed of the counter-based test matrix; results are deterministic per
  /// (seed, mode) and bit-identical for any gemm_threads setting.
  std::uint64_t seed = 0x5eed;
  /// Oversampling p: sketch width = target rank + p (clamped to Jn).
  std::size_t oversample = 8;
  /// Power-iteration passes q (each one TTM + one sketch cross-Gram).
  int power_iterations = 1;
  /// Assumed target rank when selection is eps-driven (no fixed ranks);
  /// 0 = the Jn/4 heuristic. Ignored under fixed-rank selection.
  std::size_t rank_guess = 0;
  /// FactorMethod::Auto considers the sketch only when the eps target is at
  /// least this loose (tight targets would always trip the eps-tail
  /// fallback and pay for both routes). Fixed-rank runs ignore it.
  double auto_min_epsilon = 1e-6;
};

/// Sketch width for a mode of extent jn: target + oversample, clamped to
/// jn. \p fixed_rank is the fixed target rank, or 0 for eps-driven
/// selection (then rank_guess / the Jn/4 heuristic supplies the target).
[[nodiscard]] std::size_t sketch_width(std::size_t jn, std::size_t fixed_rank,
                                       const SketchOptions& options);

struct SketchFactorResult {
  /// eigenvalues are the sketch spectrum λ_i(B) (length = width, not Jn).
  FactorResult factor;
  /// ‖Y‖² − Σ λ_i(B): the energy outside the sketch subspace. Drivers must
  /// charge it to the eq. 3 tail on top of the truncated in-sketch
  /// eigenvalues.
  double residual_energy = 0.0;
  /// False when eps-driven selection could not certify the per-mode budget
  /// (residual_energy alone exceeds it) — the caller must fall back to an
  /// exact route. Always true under fixed-rank selection.
  bool certified = true;
  std::size_t width = 0;
  int power_iterations = 0;
  std::uint64_t seed = 0;
};

/// Collective: factor matrix via the randomized sketch. Every rank returns
/// bitwise-identical results; the subspace is reproducible per (seed, mode)
/// on any grid.
[[nodiscard]] SketchFactorResult factor_via_sketch(
    const DistTensor& y, int mode, const RankSelection& select,
    const SketchOptions& options, util::KernelTimers* timers = nullptr);

}  // namespace ptucker::dist
