#include "dist/eigenvectors.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "lapack/lapack.hpp"
#include "mps/collectives.hpp"

namespace ptucker::dist {

std::size_t select_rank_by_tail(std::span<const double> eigenvalues_desc,
                                double tail_threshold) {
  const std::size_t n = eigenvalues_desc.size();
  PT_REQUIRE(n >= 1, "select_rank_by_tail: empty spectrum");
  std::size_t rank = n;
  double tail = 0.0;
  for (std::size_t r = n; r-- > 1;) {
    tail += std::max(0.0, eigenvalues_desc[r]);
    if (tail <= tail_threshold) {
      rank = r;
    } else {
      break;
    }
  }
  return rank;
}

std::size_t RankSelection::resolve(std::span<const double> spectrum) const {
  if (is_fixed) {
    return std::min<std::size_t>(std::max<std::size_t>(fixed, 1),
                                 spectrum.size());
  }
  return select_rank_by_tail(spectrum, tail);
}

namespace detail {

void canonicalize_columns(tensor::Matrix& u) {
  for (std::size_t j = 0; j < u.cols(); ++j) {
    double* col = u.col(j);
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < u.rows(); ++i) {
      if (std::fabs(col[i]) > std::fabs(col[argmax])) argmax = i;
    }
    if (col[argmax] < 0.0) {
      for (std::size_t i = 0; i < u.rows(); ++i) col[i] = -col[i];
    }
  }
}

}  // namespace detail

FactorResult eigenvectors(const GramColumns& s, const mps::CartGrid& grid,
                          int mode, const RankSelection& select, EigAlgo algo,
                          util::KernelTimers* timers) {
  PT_REQUIRE(mode >= 0 && mode < grid.order(),
             "eigenvectors: mode out of range");
  util::ScopedKernelTimer scope(timers, "Evecs", mode);

  const std::size_t jn = s.cols.rows();
  const int pn = grid.extent(mode);
  PT_REQUIRE(jn >= 1, "eigenvectors: empty Gram matrix");

  // Assemble the full Jn x Jn matrix: block column l (Jn * |block l| values,
  // already contiguous column-major) lands at column offset block l.lo.
  std::vector<double> full(jn * jn);
  std::vector<std::size_t> counts(static_cast<std::size_t>(pn));
  for (int l = 0; l < pn; ++l) {
    counts[static_cast<std::size_t>(l)] =
        jn * util::uniform_block(jn, static_cast<std::size_t>(pn),
                                 static_cast<std::size_t>(l))
                 .size();
  }
  mps::allgatherv(grid.mode_comm(mode),
                  std::span<const double>(s.cols.span()),
                  std::span<double>(full),
                  std::span<const std::size_t>(counts));

  // Redundant eigendecomposition on every rank (deterministic solver +
  // identical input => identical factors everywhere).
  const la::SymEig eig = algo == EigAlgo::Jacobi
                             ? la::eig_sym_jacobi(full.data(), jn, jn)
                             : la::eig_sym(full.data(), jn, jn);

  FactorResult result;
  result.eigenvalues = eig.values;
  result.rank = select.resolve(result.eigenvalues);
  result.u = tensor::Matrix(jn, result.rank);
  std::memcpy(result.u.data(), eig.vectors.data(),
              jn * result.rank * sizeof(double));
  detail::canonicalize_columns(result.u);
  return result;
}

}  // namespace ptucker::dist
