#include "dist/gram.hpp"

#include <cstring>

#include "mps/collectives.hpp"

namespace ptucker::dist {

namespace {

constexpr int kTagGramRing = 310;

/// Copy \p block (rows x my_cols) into rows [row_lo, row_lo + rows) of the
/// assembled block column \p cols (jn x my_cols).
void fill_rows(tensor::Matrix& cols, std::size_t row_lo,
               const tensor::Matrix& block) {
  for (std::size_t j = 0; j < block.cols(); ++j) {
    std::memcpy(cols.col(j) + row_lo, block.col(j),
                block.rows() * sizeof(double));
  }
}

/// Local dims of the block owned by mode-coordinate \p coord (all other
/// modes as in my own block — ranks of a mode comm share those).
tensor::Dims block_dims_at(const DistTensor& x, int mode, int coord) {
  tensor::Dims dims = x.local().dims();
  dims[static_cast<std::size_t>(mode)] = x.mode_range_of(mode, coord).size();
  return dims;
}

}  // namespace

GramColumns gram(const DistTensor& x, int mode, GramAlgo algo,
                 util::KernelTimers* timers) {
  PT_REQUIRE(mode >= 0 && mode < x.order(), "gram: mode out of range");
  util::ScopedKernelTimer scope(timers, "Gram", mode);

  const std::size_t jn = x.global_dim(mode);
  const util::Range my_range = x.mode_range(mode);
  const mps::CartGrid& grid = x.grid();
  const int pn = grid.extent(mode);
  const int c = grid.coord(mode);

  if (algo == GramAlgo::Auto) {
    // See auto_gram_prefers_symmetric (shared with the cost model). The old
    // Auto picked FullStorage on short rings because the NB-blocked
    // syrk_lower was slower in wall-clock despite the flop saving; the
    // packed kernel made ExploitSymmetry the faster route
    // (bench/ablate_gram_symmetry).
    algo = auto_gram_prefers_symmetric(pn) ? GramAlgo::ExploitSymmetry
                                           : GramAlgo::OverlappedRing;
  }

  tensor::Matrix cols(jn, my_range.size());

  // Diagonal block: my rows x my columns of S, from my own local block.
  const tensor::Matrix own =
      algo == GramAlgo::ExploitSymmetry
          ? tensor::local_gram_sym(x.local(), mode)
          : tensor::local_gram(x.local(), mode);
  fill_rows(cols, my_range.lo, own);

  if (pn > 1) {
    const mps::Comm& ring = grid.mode_comm(mode);
    if (algo == GramAlgo::OverlappedRing) {
      // Windowed overlap via handles: keep at most kSendWindow eager sends
      // ahead of the receives (bounding the in-flight copies of the local
      // block to O(window) per mailbox), and keep the *receive* for block
      // k+1 posted while the cross-Gram of block k runs, double-buffering
      // the incoming tensors. Peer k of my schedule is (c + k) mod Pn; that
      // peer receives from me at step k of its own receive schedule, so all
      // ranks advance in lockstep and no receive can starve. Transfers of
      // slab k+1 thus land during slab k's compute instead of serializing
      // in front of it.
      constexpr int kSendWindow = 2;
      const auto send_to_peer = [&](int k) {
        mps::isend(ring, std::span<const double>(x.local().span()),
                   (c + k) % pn, kTagGramRing)
            .wait();  // eager transport: already complete at initiation
      };
      for (int k = 1; k <= std::min(pn - 1, kSendWindow); ++k) {
        send_to_peer(k);
      }
      tensor::Tensor incoming[2];
      mps::CollectiveHandle arrival[2];
      const auto post_recv = [&](int k) {
        const int src = (c - k + pn) % pn;
        tensor::Tensor& buf = incoming[k & 1];
        buf = tensor::Tensor(block_dims_at(x, mode, src));
        arrival[k & 1] =
            mps::irecv(ring, std::span<double>(buf.span()), src, kTagGramRing);
      };
      post_recv(1);
      for (int k = 1; k < pn; ++k) {
        if (k + kSendWindow < pn) send_to_peer(k + kSendWindow);
        // Next slab's transfer is in flight before this slab's compute.
        if (k + 1 < pn) post_recv(k + 1);
        arrival[k & 1].wait();
        const int src = (c - k + pn) % pn;
        const tensor::Matrix cross =
            tensor::local_cross_gram(incoming[k & 1], x.local(), mode);
        fill_rows(cols, x.mode_range_of(mode, src).lo, cross);
      }
    } else {
      // Stepwise ring (Alg. 4): after step s the traveling block is the one
      // owned by coordinate (c - s) mod Pn.
      const int right = (c + 1) % pn;
      const int left = (c - 1 + pn) % pn;
      tensor::Tensor travel;  // step 1 sends my block directly, no copy
      const tensor::Tensor* outgoing = &x.local();
      for (int step = 1; step < pn; ++step) {
        const int src = (c - step + pn) % pn;
        ring.send(std::span<const double>(outgoing->span()), right,
                  kTagGramRing);
        tensor::Tensor incoming(block_dims_at(x, mode, src));
        ring.recv(incoming.span(), left, kTagGramRing);
        travel = std::move(incoming);
        outgoing = &travel;
        const tensor::Matrix cross =
            tensor::local_cross_gram(travel, x.local(), mode);
        fill_rows(cols, x.mode_range_of(mode, src).lo, cross);
      }
    }
  }

  // Sum the partial block column over the processor row (the ranks holding
  // the other unfolding-column blocks).
  mps::allreduce(grid.slice_comm(mode), cols.span());

  return GramColumns{std::move(cols), my_range};
}

}  // namespace ptucker::dist
