#pragma once
/// \file eigenvectors.hpp
/// \brief Leading eigenvectors of the distributed Gram matrix (paper Alg. 5)
/// and the eps^2 ||X||^2 / N tail criterion for rank selection (eq. 3).
///
/// The Gram block columns are all-gathered over the mode's processor column
/// so every rank holds the full (small) Jn x Jn matrix, then the symmetric
/// eigensolver runs redundantly on every rank — identical, deterministic
/// results with no further communication, exactly the paper's strategy of
/// preferring redundant computation over a parallel eigensolver.

#include <span>
#include <vector>

#include "dist/gram.hpp"

namespace ptucker::dist {

enum class EigAlgo {
  TridiagonalQL,  ///< Householder tridiagonalization + QL (dsyevx stand-in)
  Jacobi,         ///< cyclic Jacobi (cross-check oracle)
};

/// How the factor rank is chosen from the Gram spectrum.
struct RankSelection {
  /// Keep exactly \p r columns (clamped to the mode extent).
  [[nodiscard]] static RankSelection fixed_rank(std::size_t r) {
    RankSelection s;
    s.is_fixed = true;
    s.fixed = r;
    return s;
  }

  /// Smallest rank whose truncated eigenvalue tail is <= \p tail
  /// (the per-mode threshold eps^2 ||X||^2 / N of Alg. 1).
  [[nodiscard]] static RankSelection threshold(double tail) {
    RankSelection s;
    s.is_fixed = false;
    s.tail = tail;
    return s;
  }

  bool is_fixed = false;
  std::size_t fixed = 0;
  double tail = 0.0;

  /// Resolve against a descending spectrum.
  [[nodiscard]] std::size_t resolve(std::span<const double> spectrum) const;
};

/// Smallest rank r >= 1 with sum_{i >= r} max(0, lambda_i) <= threshold;
/// the full length if even dropping the last eigenvalue exceeds it.
[[nodiscard]] std::size_t select_rank_by_tail(
    std::span<const double> eigenvalues_desc, double tail_threshold);

/// Factor matrix result: U (In x rank, orthonormal, sign-canonicalized) and
/// the full descending Gram spectrum (length In) it was selected from.
struct FactorResult {
  tensor::Matrix u;
  std::vector<double> eigenvalues;
  std::size_t rank = 0;
};

/// Collective over the mode's processor column: assemble the full Gram
/// matrix from the block columns and compute its leading eigenvectors.
/// Every rank returns bitwise-identical results.
[[nodiscard]] FactorResult eigenvectors(const GramColumns& s,
                                        const mps::CartGrid& grid, int mode,
                                        const RankSelection& select,
                                        EigAlgo algo = EigAlgo::TridiagonalQL,
                                        util::KernelTimers* timers = nullptr);

namespace detail {
/// Flip each column's sign so its largest-magnitude entry is positive (the
/// canonicalization shared by the Gram, TSQR, and sequential routes).
void canonicalize_columns(tensor::Matrix& u);
}  // namespace detail

}  // namespace ptucker::dist
