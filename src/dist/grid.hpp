#pragma once
/// \file grid.hpp
/// \brief Processor-grid construction for the distributed Tucker layer.
///
/// A thin facade over mps::CartGrid (paper Sec. IV): the grid maps the P
/// ranks onto a logical P1 x ... x PN lattice and exposes, per mode, the
/// "processor column" (mode_comm) and "processor row" (slice_comm)
/// sub-communicators the Gram / TTM / eigenvector kernels communicate over.
/// Grids are shared (shared_ptr) because every DistTensor produced from a
/// tensor keeps the grid of its input alive.

#include <memory>

#include "mps/cart.hpp"
#include "tensor/tensor.hpp"

namespace ptucker::dist {

/// Collective: build the Cartesian grid and its 2N sub-communicators.
/// Requires prod(shape) == comm.size() (throws InvalidArgument otherwise).
[[nodiscard]] std::shared_ptr<mps::CartGrid> make_grid(mps::Comm& comm,
                                                       std::vector<int> shape);

/// Heuristic grid shape for \p p ranks and a tensor of the given dims:
/// prefers P1 = 1 (paper Sec. VIII-B), extents dividing the dims evenly,
/// and squat grids. The returned shape always satisfies prod(shape) == p
/// and shape.size() == dims.size().
[[nodiscard]] std::vector<int> default_grid_shape(int p,
                                                  const tensor::Dims& dims);

}  // namespace ptucker::dist
