#include "dist/sketch.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "dist/tsqr.hpp"
#include "lapack/lapack.hpp"
#include "mps/collectives.hpp"
#include "tensor/local_kernels.hpp"
#include "util/rng.hpp"

namespace ptucker::dist {

namespace {

/// Local block of the test-matrix tensor W: dims equal y's local block with
/// mode n widened to the sketch width, entry at mode-n index c and non-n
/// local index j equal to Omega(gj, c) for the *global* unfolding column gj
/// of j. With this tensor, local_cross_gram(y.local(), W, mode) is this
/// rank's partial of S = Y(n) * Omega — same batched kernel, same
/// first-fastest column convention (gj = left + right * GL) as pack_rows.
tensor::Tensor omega_block(const DistTensor& x, int mode, std::size_t width,
                           std::uint64_t seed) {
  const int order = x.order();
  const util::SketchRng rng(seed, mode);

  tensor::Dims local_dims = x.local().dims();
  local_dims[static_cast<std::size_t>(mode)] = width;

  // Global strides of the unfolding-column composite: modes < n contribute
  // with the left product's strides, modes > n with the right product's,
  // and the full left product GL couples them (gj = gl + gr * GL).
  std::vector<std::size_t> stride(static_cast<std::size_t>(order), 0);
  std::vector<std::size_t> offset(static_cast<std::size_t>(order), 0);
  std::size_t gl_prod = 1;
  for (int m = 0; m < mode; ++m) {
    stride[static_cast<std::size_t>(m)] = gl_prod;
    gl_prod *= x.global_dim(m);
  }
  std::size_t gr_prod = 1;
  for (int m = mode + 1; m < order; ++m) {
    stride[static_cast<std::size_t>(m)] = gr_prod;
    gr_prod *= x.global_dim(m);
  }
  for (int m = 0; m < order; ++m) {
    if (m != mode) offset[static_cast<std::size_t>(m)] = x.mode_range(m).lo;
  }

  tensor::Tensor w(local_dims);
  const std::size_t um = static_cast<std::size_t>(mode);
  w.fill_from([&](std::span<const std::size_t> idx) {
    std::size_t gl = 0;
    std::size_t gr = 0;
    for (std::size_t m = 0; m < idx.size(); ++m) {
      if (m == um) continue;
      const std::size_t g = (idx[m] + offset[m]) * stride[m];
      if (static_cast<int>(m) < mode) {
        gl += g;
      } else {
        gr += g;
      }
    }
    const std::size_t gj = gl + gr * gl_prod;
    return rng.omega(gj, idx[um], width);
  });
  return w;
}

/// This rank's partial of the Jn x width product Y(n) * Z(n)^T (Z any tensor
/// matching y's local block except mode n), scattered to the rank's mode-n
/// row offset and summed over the whole grid: every rank owns a distinct
/// (mode block x non-mode block), so the full-comm allreduce assembles the
/// replicated global product.
tensor::Matrix replicated_cross_gram(const DistTensor& x,
                                     const tensor::Tensor& z, int mode) {
  const std::size_t jn = x.global_dim(mode);
  const std::size_t width = z.dim(mode);
  const tensor::Matrix partial = tensor::local_cross_gram(x.local(), z, mode);
  tensor::Matrix s(jn, width);
  const util::Range rows = x.mode_range(mode);
  for (std::size_t j = 0; j < width; ++j) {
    std::memcpy(s.col(j) + rows.lo, partial.col(j),
                rows.size() * sizeof(double));
  }
  mps::allreduce(x.comm(), s.span());
  return s;
}

/// Orthonormalize the replicated Jn x w sketch in place (thin QR, redundant
/// on every rank — S is identical grid-wide after the allreduce).
tensor::Matrix orthonormalize(const tensor::Matrix& s) {
  tensor::Matrix q(s.rows(), s.cols());
  tensor::Matrix r(s.cols(), s.cols());
  la::qr_thin(s.data(), s.rows(), s.cols(), s.rows(), q.data(), q.rows(),
              r.data(), r.rows());
  return q;
}

/// Power-iteration cross-Gram S = Y(n) Z(n)^T with the processor-column
/// allgatherv of Z's mode-n blocks overlapped against compute. The TTM
/// re-blocks mode n (extent w) over the Pn ranks of the processor column;
/// every output column of S belongs to exactly one source block, so the
/// columns owned by this rank's own block are computed from z.local()
/// while the ring carries the other blocks, and the remaining columns are
/// computed per received piece after completion. Each output element is the
/// same independent dot product the monolithic full-width cross-Gram
/// evaluates, so the split is bitwise identical to gathering first.
tensor::Matrix overlapped_power_cross_gram(const DistTensor& y,
                                           const DistTensor& z, int mode) {
  const mps::Comm& mcomm = z.grid().mode_comm(mode);
  const int pn = mcomm.size();
  const int c = z.grid().coord(mode);
  const std::size_t width = z.global_dim(mode);
  const std::size_t jn = y.global_dim(mode);

  tensor::Dims piece_dims = z.local().dims();
  std::size_t base = 1;
  for (int m = 0; m < z.order(); ++m) {
    if (m != mode) base *= piece_dims[static_cast<std::size_t>(m)];
  }

  std::vector<std::size_t> counts(static_cast<std::size_t>(pn));
  for (int q = 0; q < pn; ++q) {
    counts[static_cast<std::size_t>(q)] = base * z.mode_range_of(mode, q).size();
  }
  std::vector<double> all(base * width);
  mps::CollectiveHandle gathered =
      mps::iallgatherv(mcomm, std::span<const double>(z.local().span()),
                       std::span<double>(all),
                       std::span<const std::size_t>(counts));

  tensor::Matrix s(jn, width);
  const util::Range rows = y.mode_range(mode);
  const auto emit_columns = [&](const tensor::Tensor& piece,
                                std::size_t col_lo) {
    const tensor::Matrix part = tensor::local_cross_gram(y.local(), piece, mode);
    for (std::size_t j = 0; j < part.cols(); ++j) {
      std::memcpy(s.col(col_lo + j) + rows.lo, part.col(j),
                  rows.size() * sizeof(double));
    }
  };

  // My own block's columns need no communication: compute them while the
  // ring is in flight.
  if (z.mode_range(mode).size() > 0) {
    emit_columns(z.local(), z.mode_range(mode).lo);
  }
  gathered.wait();

  std::size_t off = 0;
  for (int q = 0; q < pn; ++q) {
    const util::Range block = z.mode_range_of(mode, q);
    if (block.size() == 0) continue;
    if (q == c) {
      off += counts[static_cast<std::size_t>(q)];
      continue;
    }
    piece_dims[static_cast<std::size_t>(mode)] = block.size();
    tensor::Tensor piece(piece_dims);
    std::memcpy(piece.data(), all.data() + off,
                piece.size() * sizeof(double));
    emit_columns(piece, block.lo);
    off += piece.size();
  }

  mps::allreduce(y.comm(), s.span());
  return s;
}

}  // namespace

std::size_t sketch_width(std::size_t jn, std::size_t fixed_rank,
                         const SketchOptions& options) {
  if (jn == 0) return 0;
  std::size_t target = fixed_rank;
  if (target == 0) target = options.rank_guess;
  if (target == 0) target = std::max<std::size_t>(1, jn / 4);
  return std::min(jn, std::max<std::size_t>(1, target + options.oversample));
}

SketchFactorResult factor_via_sketch(const DistTensor& y, int mode,
                                     const RankSelection& select,
                                     const SketchOptions& options,
                                     util::KernelTimers* timers) {
  PT_REQUIRE(mode >= 0 && mode < y.order(), "sketch: mode out of range");
  const std::size_t jn = y.global_dim(mode);
  const std::size_t jhat =
      tensor::prod_except(y.global_dims(), mode);
  const std::size_t fixed =
      select.is_fixed ? std::min(select.fixed, jn) : std::size_t{0};
  // Wider than the number of unfolding columns adds only zero directions.
  const std::size_t width =
      std::min(sketch_width(jn, fixed, options), std::max<std::size_t>(1, jhat));

  // Sketch + orthonormalize: S = Y(n) Omega, Q = thin-QR(S).
  tensor::Matrix q;
  {
    util::ScopedKernelTimer scope(timers, "Sketch", mode);
    const tensor::Tensor omega = omega_block(y, mode, width, options.seed);
    q = orthonormalize(replicated_cross_gram(y, omega, mode));
  }

  // Power iterations: S <- Y(n) Y(n)^T Q via one TTM (Z = Y x_n Q^T, so
  // Z(n) = Q^T Y(n)) and one sketch-width cross-Gram with the
  // processor-column allgatherv hidden under the own-block columns, then
  // re-orthonormalize.
  for (int pass = 0; pass < options.power_iterations; ++pass) {
    const DistTensor z = ttm(y, q.transposed(), mode, TtmAlgo::Auto, timers);
    util::ScopedKernelTimer scope(timers, "Sketch", mode);
    q = orthonormalize(overlapped_power_cross_gram(y, z, mode));
  }

  // Project and take the small spectrum: Z = Y x_n Q^T is the projected
  // tensor whose mode-n unfolding is B = Q^T Y(n); the general TSQR tree on
  // Z (w-row unfolding — cheap) plus the redundant SVD of R^T yields
  // sigma_i(B) and the left vectors U_B, exactly as factor_via_tsqr does for
  // the full unfolding.
  const DistTensor z = ttm(y, q.transposed(), mode, TtmAlgo::Auto, timers);
  const tensor::Matrix r = tsqr_r_factor(z, mode, timers);

  util::ScopedKernelTimer scope(timers, "Evecs", mode);
  const tensor::Matrix rt = r.transposed();
  const la::JacobiSvd svd = la::jacobi_svd(rt.data(), width, width, width);

  SketchFactorResult out;
  out.width = width;
  out.power_iterations = options.power_iterations;
  out.seed = options.seed;
  out.factor.eigenvalues.resize(width);
  double captured = 0.0;
  for (std::size_t i = 0; i < width; ++i) {
    out.factor.eigenvalues[i] = svd.sigma[i] * svd.sigma[i];
    captured += out.factor.eigenvalues[i];
  }
  // Energy outside the sketch subspace: ||Y||^2 - ||Q^T Y(n)||^2. Exact, so
  // charging it to the eq. 3 tail certifies the bound for the truncation
  // onto any leading columns of U.
  out.residual_energy = std::max(0.0, y.norm_squared() - captured);

  if (select.is_fixed) {
    out.factor.rank = select.resolve(out.factor.eigenvalues);
    out.certified = true;
  } else if (out.residual_energy <= select.tail) {
    out.factor.rank = select_rank_by_tail(out.factor.eigenvalues,
                                          select.tail - out.residual_energy);
    out.certified = true;
  } else {
    // Even keeping the whole sketch overshoots the per-mode budget: the
    // subspace cannot certify eq. 3. Return the best available factor
    // uncertified; drivers fall back to an exact route.
    out.factor.rank = width;
    out.certified = false;
  }

  // U = Q * U_B[:, :rank] (Jn x rank), then the shared sign convention.
  tensor::Matrix ub(width, out.factor.rank);
  std::memcpy(ub.data(), svd.u.data(),
              width * out.factor.rank * sizeof(double));
  out.factor.u = tensor::Matrix::multiply(q, false, ub, false);
  detail::canonicalize_columns(out.factor.u);
  return out;
}

}  // namespace ptucker::dist
