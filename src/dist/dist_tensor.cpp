#include "dist/dist_tensor.hpp"

#include <cmath>
#include <cstring>

#include "mps/collectives.hpp"

namespace ptucker::dist {

void place_subtensor(tensor::Tensor& dst,
                     const std::vector<util::Range>& ranges,
                     const tensor::Tensor& src) {
  PT_REQUIRE(static_cast<int>(ranges.size()) == dst.order(),
             "place_subtensor: need one range per mode");
  PT_REQUIRE(src.order() == dst.order(),
             "place_subtensor: src/dst order mismatch");
  for (std::size_t n = 0; n < ranges.size(); ++n) {
    PT_REQUIRE(ranges[n].lo <= ranges[n].hi &&
                   ranges[n].hi <= dst.dim(static_cast<int>(n)),
               "place_subtensor: range out of bounds in mode " << n);
    PT_REQUIRE(src.dim(static_cast<int>(n)) == ranges[n].size(),
               "place_subtensor: src extent mismatch in mode " << n);
  }
  if (src.size() == 0) return;

  // Copy contiguous mode-0 runs: the src run [0, len) at a fixed tail index
  // lands at dst offset ranges[0].lo plus the shifted tail offsets.
  const std::size_t len = src.dim(0);
  const std::size_t order = ranges.size();
  std::vector<std::size_t> idx(order, 0);  // src multi-index, mode 0 fixed 0
  const std::size_t runs = src.size() / len;
  std::vector<std::size_t> dst_idx(order);
  for (std::size_t run = 0; run < runs; ++run) {
    for (std::size_t n = 0; n < order; ++n) {
      dst_idx[n] = ranges[n].lo + idx[n];
    }
    const std::size_t src_off = src.linear_index(idx);
    const std::size_t dst_off = dst.linear_index(dst_idx);
    std::memcpy(dst.data() + dst_off, src.data() + src_off,
                len * sizeof(double));
    for (std::size_t n = 1; n < order; ++n) {
      if (++idx[n] < src.dim(static_cast<int>(n))) break;
      idx[n] = 0;
    }
  }
}

DistTensor::DistTensor(std::shared_ptr<mps::CartGrid> grid,
                       tensor::Dims global_dims)
    : grid_(std::move(grid)), global_dims_(std::move(global_dims)) {
  PT_REQUIRE(grid_ != nullptr, "DistTensor: null grid");
  PT_REQUIRE(static_cast<int>(global_dims_.size()) == grid_->order(),
             "DistTensor: tensor order " << global_dims_.size()
                                         << " != grid order "
                                         << grid_->order());
  tensor::Dims local_dims(global_dims_.size());
  for (int n = 0; n < order(); ++n) {
    local_dims[static_cast<std::size_t>(n)] = mode_range(n).size();
  }
  local_ = tensor::Tensor(std::move(local_dims));
}

std::vector<util::Range> DistTensor::block_ranges_of(int rank) const {
  const std::vector<int> coords = grid_->coords_of(rank);
  std::vector<util::Range> ranges(global_dims_.size());
  for (int n = 0; n < order(); ++n) {
    ranges[static_cast<std::size_t>(n)] =
        mode_range_of(n, coords[static_cast<std::size_t>(n)]);
  }
  return ranges;
}

DistTensor DistTensor::scatter(const std::shared_ptr<mps::CartGrid>& grid,
                               const tensor::Tensor& global, int root,
                               mps::RootedAlgo algo) {
  PT_REQUIRE(grid != nullptr, "scatter: null grid");
  const mps::Comm& comm = grid->comm();

  // Only the root knows the dims; broadcast them first.
  std::vector<std::uint64_t> dims64(static_cast<std::size_t>(grid->order()),
                                    0);
  if (comm.rank() == root) {
    PT_REQUIRE(global.order() == grid->order(),
               "scatter: tensor order " << global.order() << " != grid order "
                                        << grid->order());
    for (int n = 0; n < global.order(); ++n) {
      dims64[static_cast<std::size_t>(n)] = global.dim(n);
    }
  }
  mps::broadcast(comm, std::span<std::uint64_t>(dims64), root);
  tensor::Dims dims(dims64.begin(), dims64.end());

  DistTensor result(grid, dims);
  std::vector<std::vector<double>> blocks;
  if (comm.rank() == root) {
    blocks.resize(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      const tensor::Tensor sub = global.subtensor(result.block_ranges_of(r));
      blocks[static_cast<std::size_t>(r)].assign(sub.data(),
                                                 sub.data() + sub.size());
    }
  }
  const std::vector<double> mine =
      mps::scatter_varied(comm, blocks, root, algo);
  PT_CHECK(mine.size() == result.local_.size(),
           "scatter: block size mismatch");
  std::memcpy(result.local_.data(), mine.data(),
              mine.size() * sizeof(double));
  return result;
}

tensor::Tensor DistTensor::gather(int root, mps::RootedAlgo algo) const {
  PT_REQUIRE(grid_ != nullptr, "gather: invalid DistTensor");
  const mps::Comm& comm = grid_->comm();
  const auto blocks = mps::gather_varied(
      comm, std::span<const double>(local_.span()), root, algo);
  if (comm.rank() != root) return {};

  tensor::Tensor global(global_dims_);
  for (int r = 0; r < comm.size(); ++r) {
    const std::vector<util::Range> ranges = block_ranges_of(r);
    tensor::Dims block_dims(ranges.size());
    for (std::size_t n = 0; n < ranges.size(); ++n) {
      block_dims[n] = ranges[n].size();
    }
    tensor::Tensor block(block_dims);
    const std::vector<double>& payload = blocks[static_cast<std::size_t>(r)];
    PT_CHECK(payload.size() == block.size(), "gather: block size mismatch");
    std::memcpy(block.data(), payload.data(),
                payload.size() * sizeof(double));
    place_subtensor(global, ranges, block);
  }
  return global;
}

void DistTensor::fill_global(
    const std::function<double(std::span<const std::size_t>)>& fn) {
  PT_REQUIRE(grid_ != nullptr, "fill_global: invalid DistTensor");
  const std::size_t order_u = global_dims_.size();
  std::vector<std::size_t> lo(order_u);
  for (std::size_t n = 0; n < order_u; ++n) {
    lo[n] = mode_range(static_cast<int>(n)).lo;
  }
  std::vector<std::size_t> gidx = lo;  // global index of the current element
  std::vector<std::size_t> lidx(order_u, 0);
  for (std::size_t i = 0; i < local_.size(); ++i) {
    local_[i] = fn(gidx);
    for (std::size_t n = 0; n < order_u; ++n) {
      if (++lidx[n] < local_.dim(static_cast<int>(n))) {
        gidx[n] = lo[n] + lidx[n];
        break;
      }
      lidx[n] = 0;
      gidx[n] = lo[n];
    }
  }
}

double DistTensor::norm_squared() const {
  PT_REQUIRE(grid_ != nullptr, "norm_squared: invalid DistTensor");
  return mps::allreduce_scalar(grid_->comm(), local_.norm_squared());
}

double DistTensor::norm() const { return std::sqrt(norm_squared()); }

}  // namespace ptucker::dist
