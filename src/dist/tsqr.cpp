#include "dist/tsqr.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "lapack/lapack.hpp"
#include "mps/collectives.hpp"

namespace ptucker::dist {

namespace {

constexpr int kTagTsqrTree = 320;
constexpr int kTagTsqrExchange = 321;

/// Rows [rows.lo, rows.hi) of this rank's block of A = Y(n)^T, packed as a
/// column-major (rows.size() x local-Jn) buffer. Row c of the local A block
/// is the unfolding column with local (left, right) indices (c % left,
/// c / left).
std::vector<double> pack_rows(const tensor::Tensor& y, int mode,
                              util::Range rows) {
  const tensor::UnfoldShape s = tensor::unfold_shape(y.dims(), mode);
  const std::size_t m = rows.size();
  std::vector<double> buf(m * s.mid);
  if (m == 0 || s.mid == 0) return buf;
  for (std::size_t j = 0; j < s.mid; ++j) {
    std::size_t l = rows.lo % s.left;
    std::size_t ri = rows.lo / s.left;
    for (std::size_t k = 0; k < m; ++k) {
      buf[k + j * m] = y[l + j * s.left + ri * s.left * s.mid];
      if (++l == s.left) {
        l = 0;
        ++ri;
      }
    }
  }
  return buf;
}

/// Full-width slab of A for this rank: its chunk of the processor column's
/// shared unfolding columns, against all Jn mode-n columns. Ranks of the
/// mode-n processor column own the same unfolding columns but different
/// mode-n blocks, so each sends chunk q of its block to column rank q and
/// assembles the received pieces at the senders' mode-n offsets. Zero-padded
/// to at least Jn rows so the local QR's m >= n holds even for empty chunks.
tensor::Matrix assemble_slab(const DistTensor& x, int mode) {
  const tensor::Tensor& y = x.local();
  const tensor::UnfoldShape s = tensor::unfold_shape(y.dims(), mode);
  const std::size_t jn = x.global_dim(mode);
  const std::size_t cols = s.left * s.right;  // local rows of A, pre-exchange

  const mps::Comm& mcomm = x.grid().mode_comm(mode);
  const int pn = mcomm.size();
  const int me = mcomm.rank();  // == grid coordinate in mode n
  const util::Range mine = util::uniform_block(cols, static_cast<std::size_t>(pn),
                                               static_cast<std::size_t>(me));
  const std::size_t rows_mine = mine.size();

  tensor::Matrix slab(std::max(rows_mine, jn), jn);

  // Sends are eager, so initiate every outgoing chunk before receiving (the
  // payload is captured at initiation, so the pack buffer can be dropped
  // immediately). A send or receive is skipped exactly when both sides can
  // see it is empty: the chunk partition (over the column-shared `cols`)
  // and each rank's mode-n block sizes are known grid-wide.
  for (int q = 0; q < pn; ++q) {
    if (q == me) continue;
    const util::Range chunk = util::uniform_block(
        cols, static_cast<std::size_t>(pn), static_cast<std::size_t>(q));
    if (chunk.size() == 0 || s.mid == 0) continue;
    const std::vector<double> buf = pack_rows(y, mode, chunk);
    mps::isend(mcomm, std::span<const double>(buf), q, kTagTsqrExchange)
        .wait();
  }
  // Post every receive up front, then pack the local chunk while the
  // transfers are in flight; completion and unpacking happen sender by
  // sender afterwards.
  std::vector<std::vector<double>> bufs(static_cast<std::size_t>(pn));
  std::vector<mps::CollectiveHandle> arrivals(static_cast<std::size_t>(pn));
  for (int q = 0; q < pn; ++q) {
    if (q == me) continue;
    const util::Range sender = x.mode_range_of(mode, q);
    if (rows_mine == 0 || sender.size() == 0) continue;
    std::vector<double>& buf = bufs[static_cast<std::size_t>(q)];
    buf.resize(rows_mine * sender.size());
    arrivals[static_cast<std::size_t>(q)] = mps::irecv(
        mcomm, std::span<double>(buf), q, kTagTsqrExchange);
  }
  if (rows_mine > 0 && s.mid > 0) {
    const std::vector<double> own = pack_rows(y, mode, mine);
    const std::size_t off = x.mode_range(mode).lo;
    for (std::size_t j = 0; j < s.mid; ++j) {
      std::memcpy(slab.col(off + j), own.data() + j * rows_mine,
                  rows_mine * sizeof(double));
    }
  }
  for (int q = 0; q < pn; ++q) {
    if (q == me) continue;
    const util::Range sender = x.mode_range_of(mode, q);
    if (rows_mine == 0 || sender.size() == 0) continue;
    arrivals[static_cast<std::size_t>(q)].wait();
    const std::vector<double>& buf = bufs[static_cast<std::size_t>(q)];
    for (std::size_t j = 0; j < sender.size(); ++j) {
      std::memcpy(slab.col(sender.lo + j), buf.data() + j * rows_mine,
                  rows_mine * sizeof(double));
    }
  }
  return slab;
}

/// Stack two Jn x Jn R factors and re-factor: the TSQR combine step.
tensor::Matrix combine_r(const tensor::Matrix& top,
                         const tensor::Matrix& bottom) {
  const std::size_t jn = top.rows();
  tensor::Matrix stacked(2 * jn, jn);
  for (std::size_t j = 0; j < jn; ++j) {
    std::memcpy(stacked.col(j), top.col(j), jn * sizeof(double));
    std::memcpy(stacked.col(j) + jn, bottom.col(j), jn * sizeof(double));
  }
  tensor::Matrix r(jn, jn);
  la::qr_r_factor(stacked.data(), 2 * jn, jn, 2 * jn, r.data(), jn);
  return r;
}

}  // namespace

tensor::Matrix tsqr_r_factor(const DistTensor& x, int mode,
                             util::KernelTimers* timers) {
  PT_REQUIRE(mode >= 0 && mode < x.order(), "tsqr: mode out of range");
  util::ScopedKernelTimer scope(timers, "TSQR", mode);

  const std::size_t jn = x.global_dim(mode);
  const tensor::Matrix slab = assemble_slab(x, mode);
  tensor::Matrix r(jn, jn);
  if (jn > 0) {
    la::qr_r_factor(slab.data(), slab.rows(), jn, slab.rows(), r.data(), jn);
  }

  // After the column exchange every rank owns a disjoint set of A's rows, so
  // the binomial combine tree runs over the whole grid, root 0, then the
  // final R is broadcast.
  const mps::Comm& comm = x.grid().comm();
  const int p = comm.size();
  const int rank = comm.rank();
  // The combines themselves stay blocking — each tree level needs the
  // child's R before re-factoring — but the transfers run through the
  // handle API like every other collective path.
  int mask = 1;
  while (mask < p) {
    if ((rank & mask) != 0) {
      mps::isend(comm, std::span<const double>(r.span()), rank - mask,
                 kTagTsqrTree)
          .wait();
      break;
    }
    const int partner = rank | mask;
    if (partner < p) {
      tensor::Matrix other(jn, jn);
      mps::irecv(comm, std::span<double>(other.span()), partner, kTagTsqrTree)
          .wait();
      r = combine_r(r, other);
    }
    mask <<= 1;
  }
  mps::ibroadcast(comm, std::span<double>(r.span()), 0).wait();
  return r;
}

FactorResult factor_via_tsqr(const DistTensor& x, int mode,
                             const RankSelection& select,
                             util::KernelTimers* timers) {
  const tensor::Matrix r = tsqr_r_factor(x, mode, timers);
  util::ScopedKernelTimer scope(timers, "Evecs", mode);
  const std::size_t jn = r.rows();

  // Y(n) = R^T Q^T, so the left singular vectors of Y(n) are those of R^T;
  // R is small, so the SVD runs redundantly on every rank.
  const tensor::Matrix rt = r.transposed();
  const la::JacobiSvd svd = la::jacobi_svd(rt.data(), jn, jn, jn);

  FactorResult result;
  result.eigenvalues.resize(jn);
  for (std::size_t i = 0; i < jn; ++i) {
    result.eigenvalues[i] = svd.sigma[i] * svd.sigma[i];
  }
  result.rank = select.resolve(result.eigenvalues);
  result.u = tensor::Matrix(jn, result.rank);
  std::memcpy(result.u.data(), svd.u.data(),
              jn * result.rank * sizeof(double));
  detail::canonicalize_columns(result.u);
  return result;
}

}  // namespace ptucker::dist
