#include "dist/tsqr.hpp"

#include <algorithm>
#include <cstring>

#include "lapack/lapack.hpp"
#include "mps/collectives.hpp"

namespace ptucker::dist {

namespace {

constexpr int kTagTsqr = 320;

/// R factor of one local block: the transposed unfolding (cols x Jn),
/// zero-padded to at least Jn rows so qr_thin's m >= n holds even for
/// blocks narrower than Jn (including empty ones).
tensor::Matrix local_r_factor(const tensor::Tensor& y, int mode) {
  const tensor::UnfoldShape s = tensor::unfold_shape(y.dims(), mode);
  const std::size_t jn = s.mid;
  const std::size_t cols = s.left * s.right;
  tensor::Matrix r(jn, jn);
  if (y.size() == 0) return r;

  const std::size_t rows = std::max(cols, jn);
  tensor::Matrix a(rows, jn);  // A = Y(n)^T, zero rows beyond `cols`
  for (std::size_t ri = 0; ri < s.right; ++ri) {
    for (std::size_t j = 0; j < jn; ++j) {
      for (std::size_t l = 0; l < s.left; ++l) {
        a(l + ri * s.left, j) = y[l + j * s.left + ri * s.left * s.mid];
      }
    }
  }
  tensor::Matrix q(rows, jn);
  la::qr_thin(a.data(), rows, jn, rows, q.data(), rows, r.data(), jn);
  return r;
}

/// Stack two Jn x Jn R factors and re-factor: the TSQR combine step.
tensor::Matrix combine_r(const tensor::Matrix& top,
                         const tensor::Matrix& bottom) {
  const std::size_t jn = top.rows();
  tensor::Matrix stacked(2 * jn, jn);
  for (std::size_t j = 0; j < jn; ++j) {
    std::memcpy(stacked.col(j), top.col(j), jn * sizeof(double));
    std::memcpy(stacked.col(j) + jn, bottom.col(j), jn * sizeof(double));
  }
  tensor::Matrix q(2 * jn, jn);
  tensor::Matrix r(jn, jn);
  la::qr_thin(stacked.data(), 2 * jn, jn, 2 * jn, q.data(), 2 * jn, r.data(),
              jn);
  return r;
}

}  // namespace

bool tsqr_applicable(const DistTensor& x, int mode) {
  PT_REQUIRE(mode >= 0 && mode < x.order(),
             "tsqr_applicable: mode out of range");
  return x.grid().extent(mode) == 1;
}

tensor::Matrix tsqr_r_factor(const DistTensor& x, int mode,
                             util::KernelTimers* timers) {
  PT_REQUIRE(mode >= 0 && mode < x.order(), "tsqr: mode out of range");
  PT_REQUIRE(tsqr_applicable(x, mode),
             "tsqr: mode " << mode << " is distributed (Pn = "
                           << x.grid().extent(mode)
                           << "); TSQR needs Pn == 1");
  util::ScopedKernelTimer scope(timers, "TSQR", mode);

  tensor::Matrix r = local_r_factor(x.local(), mode);

  // Binomial combine tree over the whole grid (Pn = 1, so the unfolding's
  // columns are spread over all P ranks), root 0, then broadcast.
  const mps::Comm& comm = x.grid().comm();
  const int p = comm.size();
  const int rank = comm.rank();
  const std::size_t jn = r.rows();
  int mask = 1;
  while (mask < p) {
    if ((rank & mask) != 0) {
      comm.send(std::span<const double>(r.span()), rank - mask, kTagTsqr);
      break;
    }
    const int partner = rank | mask;
    if (partner < p) {
      tensor::Matrix other(jn, jn);
      comm.recv(other.span(), partner, kTagTsqr);
      r = combine_r(r, other);
    }
    mask <<= 1;
  }
  mps::broadcast(comm, r.span(), 0);
  return r;
}

FactorResult factor_via_tsqr(const DistTensor& x, int mode,
                             const RankSelection& select,
                             util::KernelTimers* timers) {
  const tensor::Matrix r = tsqr_r_factor(x, mode, timers);
  util::ScopedKernelTimer scope(timers, "Evecs", mode);
  const std::size_t jn = r.rows();

  // Y(n) = R^T Q^T, so the left singular vectors of Y(n) are those of R^T;
  // R is small, so the SVD runs redundantly on every rank.
  const tensor::Matrix rt = r.transposed();
  const la::JacobiSvd svd = la::jacobi_svd(rt.data(), jn, jn, jn);

  FactorResult result;
  result.eigenvalues.resize(jn);
  for (std::size_t i = 0; i < jn; ++i) {
    result.eigenvalues[i] = svd.sigma[i] * svd.sigma[i];
  }
  result.rank = select.resolve(result.eigenvalues);
  result.u = tensor::Matrix(jn, result.rank);
  std::memcpy(result.u.data(), svd.u.data(),
              jn * result.rank * sizeof(double));
  detail::canonicalize_columns(result.u);
  return result;
}

}  // namespace ptucker::dist
