#include <algorithm>
#include <cmath>
#include <numeric>

#include "blas/blas.hpp"
#include "lapack/lapack.hpp"
#include "util/error.hpp"

namespace ptucker::la {

namespace detail {

/// Sort eigenpairs so values are descending; reorders vector columns to
/// match. Shared by both eigensolvers.
void sort_eig_descending(SymEig& eig) {
  const std::size_t n = eig.n;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return eig.values[a] > eig.values[b];
  });
  std::vector<double> values(n);
  std::vector<double> vectors(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = eig.values[perm[i]];
    blas::copy(n, eig.vectors.data() + perm[i] * n, vectors.data() + i * n);
  }
  eig.values = std::move(values);
  eig.vectors = std::move(vectors);
}

}  // namespace detail

namespace {

/// Householder reduction of a real symmetric matrix to tridiagonal form with
/// accumulation of the orthogonal transform (tred2 lineage, adapted to
/// column-major 0-based storage; z is symmetric input on entry, transform
/// accumulator on exit).
void tridiagonalize(std::vector<double>& z, std::vector<double>& d,
                    std::vector<double>& e, std::size_t n) {
  auto zz = [&](std::size_t i, std::size_t j) -> double& {
    return z[i + j * n];
  };
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(zz(i, k));
      if (scale == 0.0) {
        e[i] = zz(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          zz(i, k) /= scale;
          h += zz(i, k) * zz(i, k);
        }
        double f = zz(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        zz(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          zz(j, i) = zz(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += zz(j, k) * zz(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += zz(k, j) * zz(i, k);
          e[j] = g / h;
          f += e[j] * zz(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = zz(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (std::size_t k = 0; k <= j; ++k) {
            zz(j, k) -= f * e[k] + g * zz(i, k);
          }
        }
      }
    } else {
      e[i] = zz(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += zz(i, k) * zz(k, j);
        for (std::size_t k = 0; k < i; ++k) zz(k, j) -= g * zz(k, i);
      }
    }
    d[i] = zz(i, i);
    zz(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      zz(j, i) = 0.0;
      zz(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix with
/// eigenvector accumulation (tql2 lineage).
void tridiag_ql(std::vector<double>& d, std::vector<double>& e,
                std::vector<double>& z, std::size_t n) {
  auto zz = [&](std::size_t i, std::size_t j) -> double& {
    return z[i + j * n];
  };
  auto sign = [](double a, double b) {
    return b >= 0.0 ? std::fabs(a) : -std::fabs(a);
  };
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        PT_CHECK(iter++ < 64, "tridiagonal QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow_break = false;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow_break = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = zz(k, i + 1);
            zz(k, i + 1) = s * zz(k, i) + c * f;
            zz(k, i) = c * zz(k, i) - s * f;
          }
        }
        if (underflow_break) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

SymEig eig_sym(const double* a, std::size_t n, std::size_t lda) {
  PT_REQUIRE(n >= 1, "eig_sym: empty matrix");
  SymEig eig;
  eig.n = n;
  eig.values.assign(n, 0.0);
  eig.vectors.resize(n * n);
  for (std::size_t j = 0; j < n; ++j) {
    blas::copy(n, a + j * lda, eig.vectors.data() + j * n);
  }
  if (n == 1) {
    eig.values[0] = eig.vectors[0];
    eig.vectors[0] = 1.0;
    return eig;
  }
  std::vector<double> e(n, 0.0);
  // ~(10/3) n^3 flops for the full solve, the paper's Sec. V-D estimate.
  blas::add_flops(static_cast<std::uint64_t>(10.0 / 3.0 *
                                             static_cast<double>(n) * n * n));
  tridiagonalize(eig.vectors, eig.values, e, n);
  tridiag_ql(eig.values, e, eig.vectors, n);
  detail::sort_eig_descending(eig);
  return eig;
}

}  // namespace ptucker::la
