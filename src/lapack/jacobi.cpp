#include <algorithm>
#include <cmath>
#include <numeric>

#include "blas/blas.hpp"
#include "lapack/lapack.hpp"
#include "util/error.hpp"

namespace ptucker::la {

namespace detail {
void sort_eig_descending(SymEig& eig);  // defined in eig.cpp
}

SymEig eig_sym_jacobi(const double* a, std::size_t n, std::size_t lda) {
  PT_REQUIRE(n >= 1, "eig_sym_jacobi: empty matrix");
  // Working copy of A and accumulator V (starts as identity).
  std::vector<double> w(n * n);
  for (std::size_t j = 0; j < n; ++j) {
    blas::copy(n, a + j * lda, w.data() + j * n);
  }
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i + i * n] = 1.0;

  auto ww = [&](std::size_t i, std::size_t j) -> double& { return w[i + j * n]; };
  auto vv = [&](std::size_t i, std::size_t j) -> double& { return v[i + j * n]; };

  const double tol = 1e-14;
  double norm = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) norm += w[i] * w[i];
  norm = std::sqrt(norm);
  const double threshold = tol * std::max(norm, 1e-300);

  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += ww(p, q) * ww(p, q);
    }
    if (std::sqrt(2.0 * off) <= threshold) break;
    PT_CHECK(sweep < 99, "Jacobi eigensolver failed to converge");

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = ww(p, q);
        if (std::fabs(apq) <= threshold / (static_cast<double>(n) * n)) {
          continue;
        }
        const double app = ww(p, p);
        const double aqq = ww(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply rotation R(p,q; c,s) on both sides of W and accumulate in V.
        for (std::size_t k = 0; k < n; ++k) {
          const double wkp = ww(k, p);
          const double wkq = ww(k, q);
          ww(k, p) = c * wkp - s * wkq;
          ww(k, q) = s * wkp + c * wkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double wpk = ww(p, k);
          const double wqk = ww(q, k);
          ww(p, k) = c * wpk - s * wqk;
          ww(q, k) = s * wpk + c * wqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = vv(k, p);
          const double vkq = vv(k, q);
          vv(k, p) = c * vkp - s * vkq;
          vv(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  SymEig eig;
  eig.n = n;
  eig.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) eig.values[i] = ww(i, i);
  eig.vectors = std::move(v);
  detail::sort_eig_descending(eig);
  return eig;
}

JacobiSvd jacobi_svd(const double* a, std::size_t m, std::size_t n,
                     std::size_t lda) {
  PT_REQUIRE(m >= n && n >= 1, "jacobi_svd requires m >= n >= 1");
  JacobiSvd svd;
  svd.m = m;
  svd.n = n;
  svd.u.resize(m * n);
  for (std::size_t j = 0; j < n; ++j) {
    blas::copy(m, a + j * lda, svd.u.data() + j * m);
  }
  svd.v.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) svd.v[i + i * n] = 1.0;
  svd.sigma.assign(n, 0.0);

  double* u = svd.u.data();
  double* v = svd.v.data();

  // One-sided Jacobi: rotate column pairs of U until mutually orthogonal.
  const double eps = 1e-15;
  for (int sweep = 0; sweep < 60; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double* up = u + p * m;
        double* uq = u + q * m;
        const double app = blas::dot(m, up, up);
        const double aqq = blas::dot(m, uq, uq);
        const double apq = blas::dot(m, up, uq);
        if (std::fabs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        converged = false;
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (std::size_t k = 0; k < m; ++k) {
          const double ukp = up[k];
          const double ukq = uq[k];
          up[k] = c * ukp - s * ukq;
          uq[k] = s * ukp + c * ukq;
        }
        double* vp = v + p * n;
        double* vq = v + q * n;
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = vp[k];
          const double vkq = vq[k];
          vp[k] = c * vkp - s * vkq;
          vq[k] = s * vkp + c * vkq;
        }
      }
    }
    if (converged) break;
    PT_CHECK(sweep < 59, "one-sided Jacobi SVD failed to converge");
  }

  // Extract singular values, normalize U columns, sort descending.
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t j = 0; j < n; ++j) {
    svd.sigma[j] = blas::nrm2(m, u + j * m);
  }
  std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a_, std::size_t b_) {
    return svd.sigma[a_] > svd.sigma[b_];
  });
  std::vector<double> u_sorted(m * n);
  std::vector<double> v_sorted(n * n);
  std::vector<double> s_sorted(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = perm[j];
    s_sorted[j] = svd.sigma[src];
    blas::copy(m, u + src * m, u_sorted.data() + j * m);
    blas::copy(n, v + src * n, v_sorted.data() + j * n);
    if (s_sorted[j] > 0.0) {
      blas::scal(m, 1.0 / s_sorted[j], u_sorted.data() + j * m);
    }
  }
  svd.sigma = std::move(s_sorted);
  svd.u = std::move(u_sorted);
  svd.v = std::move(v_sorted);
  return svd;
}

}  // namespace ptucker::la
