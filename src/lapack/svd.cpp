#include <algorithm>
#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "lapack/lapack.hpp"
#include "util/error.hpp"

namespace ptucker::la {

LeftSvd left_svd_via_gram(const double* y, std::size_t rows, std::size_t cols,
                          std::size_t ldy) {
  PT_REQUIRE(rows >= 1, "left_svd_via_gram: empty matrix");
  // S = Y Y^T (rows x rows), then eigendecompose. This is the paper's
  // default: appropriate when the target accuracy is well above
  // sqrt(machine epsilon) (Sec. II-B discussion).
  std::vector<double> s(rows * rows, 0.0);
  blas::syrk_full(blas::Trans::No, rows, cols, 1.0, y, ldy, 0.0, s.data(),
                  rows);
  SymEig eig = eig_sym(s.data(), rows, rows);
  LeftSvd out;
  out.rows = rows;
  out.u = std::move(eig.vectors);
  out.singular_values.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    out.singular_values[i] = std::sqrt(std::max(0.0, eig.values[i]));
  }
  return out;
}

LeftSvd left_svd_via_qr(const double* y, std::size_t rows, std::size_t cols,
                        std::size_t ldy) {
  PT_REQUIRE(cols >= rows && rows >= 1,
             "left_svd_via_qr expects a wide matrix (rows <= cols)");
  // Y^T = Q R with Y^T tall (cols x rows); then Y = R^T Q^T, so the left
  // singular vectors of Y are those of the small square R^T, computed with
  // a numerically safe one-sided Jacobi SVD (no condition-number squaring).
  std::vector<double> yt(cols * rows);
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < rows; ++i) {
      yt[j + i * cols] = y[i + j * ldy];
    }
  }
  std::vector<double> r(rows * rows);
  qr_r_factor(yt.data(), cols, rows, cols, r.data(), rows);

  // R^T (rows x rows).
  std::vector<double> rt(rows * rows);
  for (std::size_t j = 0; j < rows; ++j) {
    for (std::size_t i = 0; i < rows; ++i) {
      rt[i + j * rows] = r[j + i * rows];
    }
  }
  JacobiSvd svd = jacobi_svd(rt.data(), rows, rows, rows);

  LeftSvd out;
  out.rows = rows;
  out.singular_values = std::move(svd.sigma);
  out.u = std::move(svd.u);
  return out;
}

}  // namespace ptucker::la
