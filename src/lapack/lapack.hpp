#pragma once
/// \file lapack.hpp
/// \brief Dense eigen/QR/SVD solvers (the LAPACK substitute).
///
/// The Tucker algorithms need exactly one LAPACK capability: the
/// eigendecomposition of the small (In x In) symmetric Gram matrix, computed
/// redundantly on every rank (paper Alg. 5 uses dsyevx). We provide:
///  - eig_sym: Householder tridiagonalization + implicit-shift QL
///    (tred2/tql2 lineage), eigenpairs sorted descending,
///  - eig_sym_jacobi: cyclic Jacobi — slower but independently derived, used
///    as a cross-check oracle and in bench/ablate_eig_solvers,
///  - qr_thin: Householder QR with explicit thin Q,
///  - left_svd_via_gram / left_svd_via_qr: the two routes to leading left
///    singular vectors discussed in the paper (Gram route is the paper's
///    default; the QR route is the Sec. IX numerical-stability option at
///    roughly twice the cost).
///
/// All matrices are column-major with leading dimensions.

#include <cstddef>
#include <vector>

namespace ptucker::la {

/// Symmetric eigendecomposition result. values[i] is the i-th eigenvalue in
/// DESCENDING order; column i of vectors (n x n, column-major, ld = n) is
/// the corresponding unit eigenvector.
struct SymEig {
  std::size_t n = 0;
  std::vector<double> values;
  std::vector<double> vectors;

  [[nodiscard]] const double* vector(std::size_t i) const {
    return vectors.data() + i * n;
  }
};

/// Tridiagonalization + implicit QL. \p a is n x n symmetric (both triangles
/// stored), not modified. Throws on convergence failure (pathological input).
[[nodiscard]] SymEig eig_sym(const double* a, std::size_t n, std::size_t lda);

/// Cyclic Jacobi eigensolver (reference oracle; O(n^3) per sweep).
[[nodiscard]] SymEig eig_sym_jacobi(const double* a, std::size_t n,
                                    std::size_t lda);

/// Thin Householder QR of a (m x n, m >= n): a is not modified; on return
/// q is m x n with orthonormal columns (ldq) and r is n x n upper triangular
/// (ldr, lower part zeroed).
void qr_thin(const double* a, std::size_t m, std::size_t n, std::size_t lda,
             double* q, std::size_t ldq, double* r, std::size_t ldr);

/// R factor only (same reduction as qr_thin, Q never formed — about half
/// the flops). Used by the TSQR tree and the QR-route SVD, which both need
/// just R^T R = A^T A.
void qr_r_factor(const double* a, std::size_t m, std::size_t n,
                 std::size_t lda, double* r, std::size_t ldr);

/// Left singular subspace of a wide matrix.
struct LeftSvd {
  std::size_t rows = 0;
  std::vector<double> singular_values;  ///< descending
  std::vector<double> u;                ///< rows x rows column-major
  [[nodiscard]] const double* left_vector(std::size_t i) const {
    return u.data() + i * rows;
  }
};

/// One-sided Jacobi SVD of a (m x n, m >= n): returns U (m x n), sigma (n,
/// descending), V (n x n) with a = U diag(sigma) V^T.
struct JacobiSvd {
  std::size_t m = 0, n = 0;
  std::vector<double> u;      ///< m x n
  std::vector<double> sigma;  ///< n, descending
  std::vector<double> v;      ///< n x n
};
[[nodiscard]] JacobiSvd jacobi_svd(const double* a, std::size_t m,
                                   std::size_t n, std::size_t lda);

/// Left singular vectors of Y (rows x cols, rows <= cols) via the Gram
/// matrix Y Y^T — the paper's default route. sigma_i = sqrt(max(lambda_i,0)).
[[nodiscard]] LeftSvd left_svd_via_gram(const double* y, std::size_t rows,
                                        std::size_t cols, std::size_t ldy);

/// Left singular vectors of Y via QR of Y^T followed by a small Jacobi SVD
/// of R^T — avoids squaring the condition number (paper Sec. IX).
[[nodiscard]] LeftSvd left_svd_via_qr(const double* y, std::size_t rows,
                                      std::size_t cols, std::size_t ldy);

}  // namespace ptucker::la
