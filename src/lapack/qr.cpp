#include <cmath>
#include <cstring>
#include <vector>

#include "blas/blas.hpp"
#include "lapack/lapack.hpp"
#include "util/error.hpp"

namespace ptucker::la {

namespace {

/// Householder reduction of a (m x n, via lda) into w: on return column j of
/// w holds R's entries on and above the diagonal and the reflector v_j
/// (implicit leading 1) below it, with tau[j] the reflector scale.
void householder_reduce(const double* a, std::size_t m, std::size_t n,
                        std::size_t lda, std::vector<double>& w,
                        std::vector<double>& tau) {
  w.resize(m * n);
  for (std::size_t j = 0; j < n; ++j) {
    blas::copy(m, a + j * lda, w.data() + j * m);
  }
  tau.assign(n, 0.0);

  for (std::size_t j = 0; j < n; ++j) {
    double* col = w.data() + j * m;
    const double xnorm = blas::nrm2(m - j, col + j);
    if (xnorm == 0.0) {
      tau[j] = 0.0;
      continue;
    }
    const double alpha = col[j];
    double beta = -std::copysign(xnorm, alpha);
    tau[j] = (beta - alpha) / beta;
    const double inv = 1.0 / (alpha - beta);
    for (std::size_t i = j + 1; i < m; ++i) col[i] *= inv;
    col[j] = beta;  // R diagonal; v_j below with implicit leading 1
    // Apply H_j to the trailing columns.
    for (std::size_t jj = j + 1; jj < n; ++jj) {
      double* cjj = w.data() + jj * m;
      double s = cjj[j];
      for (std::size_t i = j + 1; i < m; ++i) s += col[i] * cjj[i];
      s *= tau[j];
      cjj[j] -= s;
      for (std::size_t i = j + 1; i < m; ++i) cjj[i] -= s * col[i];
    }
  }
}

void extract_r(const std::vector<double>& w, std::size_t m, std::size_t n,
               double* r, std::size_t ldr) {
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      r[i + j * ldr] = (i <= j) ? w[i + j * m] : 0.0;
    }
  }
}

}  // namespace

void qr_thin(const double* a, std::size_t m, std::size_t n, std::size_t lda,
             double* q, std::size_t ldq, double* r, std::size_t ldr) {
  PT_REQUIRE(m >= n && n >= 1, "qr_thin requires m >= n >= 1");

  std::vector<double> w;
  std::vector<double> tau;
  blas::add_flops(2ull * m * n * n);  // classical QR flop estimate 2mn^2
  householder_reduce(a, m, n, lda, w, tau);
  extract_r(w, m, n, r, ldr);

  // Form thin Q by applying H_0 ... H_{n-1} to the first n identity columns
  // in reverse order.
  for (std::size_t j = 0; j < n; ++j) {
    double* qj = q + j * ldq;
    std::memset(qj, 0, m * sizeof(double));
    qj[j] = 1.0;
  }
  for (std::size_t j = n; j-- > 0;) {
    const double* v = w.data() + j * m;
    for (std::size_t jj = 0; jj < n; ++jj) {
      double* qjj = q + jj * ldq;
      double s = qjj[j];
      for (std::size_t i = j + 1; i < m; ++i) s += v[i] * qjj[i];
      s *= tau[j];
      qjj[j] -= s;
      for (std::size_t i = j + 1; i < m; ++i) qjj[i] -= s * v[i];
    }
  }
}

void qr_r_factor(const double* a, std::size_t m, std::size_t n,
                 std::size_t lda, double* r, std::size_t ldr) {
  PT_REQUIRE(m >= n && n >= 1, "qr_r_factor requires m >= n >= 1");
  std::vector<double> w;
  std::vector<double> tau;
  // Householder reduction only: 2mn^2 - (2/3)n^3.
  blas::add_flops(2ull * m * n * n - (2ull * n * n * n) / 3ull);
  householder_reduce(a, m, n, lda, w, tau);
  extract_r(w, m, n, r, ldr);
}

}  // namespace ptucker::la
