#pragma once
/// \file posix_file.hpp
/// \brief Thin RAII wrapper over POSIX positioned file I/O (pread/pwrite).
///
/// Every pario container is accessed through positioned reads and writes at
/// rank-computed byte offsets, so any number of rank-threads can touch the
/// same file concurrently without a shared seek pointer, locks, or any
/// inter-rank coordination beyond two barriers on the write path.

#include <cstddef>
#include <cstdint>
#include <string>

namespace ptucker::pario {

/// Bounded exponential backoff for *transient* syscall errors (EIO, EAGAIN)
/// — the hiccups a shared cluster filesystem produces under load. EINTR is
/// not budgeted here: an interrupted syscall moved no data and is always
/// retried immediately. Non-transient errnos (ENOSPC, EBADF, ...) fail
/// immediately with IoError.
///
/// Each syscall site gets max_attempts total tries; attempt k sleeps
/// base_backoff_us * 2^(k-1), capped at max_backoff_us, before retrying.
/// Retries increment the `pario.retries` counter; an exhausted budget
/// increments `pario.giveups` and throws IoError with errno_text().
struct RetryPolicy {
  int max_attempts = 4;
  std::uint64_t base_backoff_us = 200;
  std::uint64_t max_backoff_us = 10000;
};

/// Install the process-wide retry policy (thread-safe).
void set_retry_policy(const RetryPolicy& policy);
[[nodiscard]] RetryPolicy retry_policy();

/// Whether pario writers emit version-2 (CRC32C-checksummed) containers.
/// Defaults to true. Version-1 files remain readable either way; flip off
/// to produce byte-identical pre-checksum output for compatibility.
void set_write_checksums(bool on);
[[nodiscard]] bool write_checksums();

class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Open an existing file for reading; throws InvalidArgument on failure.
  [[nodiscard]] static File open_read(const std::string& path);
  /// Create (truncating if present) for writing.
  [[nodiscard]] static File create(const std::string& path);
  /// Open an existing file for positioned writes (no truncation).
  [[nodiscard]] static File open_write(const std::string& path);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t size() const;

  /// Read exactly \p n bytes at \p offset. EINTR is retried immediately;
  /// transient errnos are retried per the RetryPolicy; other syscall
  /// failures throw IoError with errno_text(). A file that simply ends
  /// early (pread returns 0) throws InvalidArgument ("truncated read").
  void read_at(std::uint64_t offset, void* buf, std::size_t n) const;
  /// Write exactly \p n bytes at \p offset (extends the file as needed).
  void write_at(std::uint64_t offset, const void* buf, std::size_t n) const;
  /// Set the file length (used by the header writer so the container has
  /// its full size even when trailing blocks are empty).
  void truncate(std::uint64_t length) const;

  /// Flush written data to stable storage (fsync). The archive appender
  /// syncs the entry payload before committing the table so a crash between
  /// the two never yields a committed-but-unwritten entry.
  void sync() const;

  void close();

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;  // for error messages
};

}  // namespace ptucker::pario
