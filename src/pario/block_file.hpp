#pragma once
/// \file block_file.hpp
/// \brief The PTB1 chunked block-tensor container: rank-parallel reads and
/// writes of a distributed dense tensor with zero inter-rank data movement.
///
/// Layout (little-endian):
///   "PTB1" | u64 version | u64 order N | u64 dims[N] | u64 grid[N]
///   | u64 block_offset[prod(grid)]
///   | u64 block_crc[prod(grid)]          (version 2 only)
///   | f64 block payloads ...
///
/// Version 2 (the default since the robustness PR; see
/// pario::set_write_checksums) adds one CRC32C per block — stored in the
/// low 32 bits of a u64 slot, written by the owning rank alongside its
/// payload — verified on any read that fully covers a block. Version-1
/// files are still read (no verification).
///
/// Block b (grid-rank order, coordinate 0 fastest — the CartGrid
/// linearization) holds the uniform_block sub-tensor of every mode at b's
/// grid coordinates, dense in first-index-fastest layout, starting at byte
/// block_offset[b]. Offsets are computable from dims + grid, so on write
/// every rank pwrites its own block with no communication (rank 0 writes
/// the header, bracketed by two barriers); on read every rank preads
/// exactly the bytes of its own block. The offset table still rides in the
/// header so a reader on a *different* grid can locate the runs it needs
/// (redistribution) and so truncation is detected, not trusted.
///
/// A plain "PTT1" tensor file is readable through the same interface as a
/// degenerate PTB1 with a 1 x ... x 1 grid, which is what lets the example
/// tools and the timestep reader ingest legacy files block-parallel.

#include <memory>
#include <string>

#include "dist/dist_tensor.hpp"
#include "pario/layout.hpp"
#include "pario/posix_file.hpp"

namespace ptucker::pario {

/// Parsed header + open descriptor of a PTB1 (or PTT1) file; read side.
/// Construction and reads are communication-free.
class BlockFile {
 public:
  /// Open and validate; sniffs PTB1 vs PTT1 by magic.
  [[nodiscard]] static BlockFile open(const std::string& path);

  [[nodiscard]] const tensor::Dims& dims() const { return dims_; }
  [[nodiscard]] int order() const { return static_cast<int>(dims_.size()); }
  /// Writer grid shape (all ones for a PTT1 file).
  [[nodiscard]] const std::vector<int>& grid_shape() const { return grid_; }

  /// Read an arbitrary hyper-rectangle into a dense tensor (preads only).
  [[nodiscard]] tensor::Tensor read_ranges(
      const std::vector<util::Range>& ranges) const;

  /// True for a version-2 (checksummed) file.
  [[nodiscard]] bool checksummed() const { return !crcs_.empty(); }

 private:
  BlockFile() = default;
  File file_;
  tensor::Dims dims_;
  std::vector<int> grid_;
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint64_t> crcs_;  // empty for version-1 / PTT1 files
};

/// Collective: write \p x as a PTB1 container. Rank 0 writes the header and
/// sizes the file; every rank then pwrites its own block at its computed
/// offset. The only communication is two barriers (zero payload words).
void write_dist_tensor(const std::string& path, const dist::DistTensor& x);

/// Collective: build a DistTensor on \p grid from a PTB1/PTT1 file. Every
/// rank preads exactly its own block — one contiguous read when the file
/// was written on the same grid, otherwise the runs intersecting the
/// writer's blocks (redistribution). Zero messages, no barriers.
[[nodiscard]] dist::DistTensor read_dist_tensor(
    std::shared_ptr<mps::CartGrid> grid, const std::string& path);

/// Total byte size of the PTB1 container for the given dims and grid, for
/// the version the current pario::write_checksums() setting would emit.
[[nodiscard]] std::uint64_t ptb1_file_bytes(const tensor::Dims& dims,
                                            const std::vector<int>& grid);

}  // namespace ptucker::pario
