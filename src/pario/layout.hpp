#pragma once
/// \file layout.hpp
/// \brief Shared machinery of the chunked containers (PTB1 / PTZ1): the
/// block-offset table of a tensor split over a grid, header (de)serialization
/// helpers, and the positioned-read of an arbitrary hyper-rectangle out of a
/// blocked layout.
///
/// A "blocked layout" stores the uniform_block sub-tensor of every grid rank
/// contiguously (first-index-fastest within the block), in grid-rank order
/// (coordinate 0 fastest — the CartGrid linearization). Offsets are
/// deterministic functions of dims + grid, so a writer rank needs no
/// communication to find its slot; the table is still stored in file headers
/// so readers on *other* grids can locate the runs they need and so
/// truncation is detectable without trusting arithmetic on corrupt fields.

#include <cstdint>
#include <vector>

#include "pario/posix_file.hpp"
#include "tensor/tensor.hpp"
#include "util/blocks.hpp"

namespace ptucker::pario::detail {

/// Per-mode global index ranges of block \p b of \p dims split over \p grid.
[[nodiscard]] std::vector<util::Range> block_ranges(
    const tensor::Dims& dims, const std::vector<int>& grid, int b);

/// Element count of block \p b.
[[nodiscard]] std::uint64_t block_elements(const tensor::Dims& dims,
                                           const std::vector<int>& grid,
                                           int b);

/// Byte offsets of every block when the blocks are packed contiguously in
/// grid-rank order starting at \p base. Returns prod(grid) + 1 entries; the
/// last is one past the final block (the data end).
[[nodiscard]] std::vector<std::uint64_t> block_offsets(
    const tensor::Dims& dims, const std::vector<int>& grid,
    std::uint64_t base);

/// Read the hyper-rectangle \p ranges of the global tensor out of a blocked
/// layout via positioned reads only: for every block intersecting the
/// request, the mode-0 runs of the intersection are pread directly into the
/// result tensor. A request matching one block exactly is a single pread.
///
/// \p block_crcs (one stored CRC32C per block, from a version-2 header)
/// arms verification: any block *fully covered* by the request has its
/// checksum accumulated across the runs as they are pread (run order over a
/// covered block is exactly the block's byte order) and mismatches throw
/// ChecksumError naming the file, block, and byte offset. Blocks only
/// partially intersected by a redistribution read cannot be verified this
/// way and are passed through unchecked — grid-matched reads (the serve
/// path, local reconstruction) always cover whole blocks and are always
/// verified. Empty = version-1 file, no verification.
[[nodiscard]] tensor::Tensor read_blocked_ranges(
    const File& file, const tensor::Dims& dims, const std::vector<int>& grid,
    const std::vector<std::uint64_t>& offsets,
    const std::vector<util::Range>& ranges,
    const std::vector<std::uint64_t>& block_crcs = {});

/// Compare \p computed against the stored low-32 bits of \p stored (the
/// header field is a u64 slot for alignment); throws ChecksumError naming
/// the container, region, file, and payload byte offset on mismatch.
/// Counts pario.crc_checked / pario.crc_failures.
void verify_crc32c(const char* container, const File& file,
                   const std::string& what, std::uint64_t offset,
                   std::uint64_t stored, std::uint32_t computed);

/// --- header (de)serialization -------------------------------------------------

/// Append-only little-endian header builder.
class HeaderWriter {
 public:
  void magic(const char m[4]);
  void u64(std::uint64_t v);
  void u64s(const std::vector<std::uint64_t>& v);
  void f64s(const double* data, std::size_t count);
  [[nodiscard]] const std::vector<char>& bytes() const { return buf_; }
  [[nodiscard]] std::uint64_t size() const { return buf_.size(); }

 private:
  std::vector<char> buf_;
};

/// Sequential positioned reader with bounds-checked primitives. \p start
/// positions the reader at an arbitrary byte (a blob inside a container;
/// 0 = whole-file headers).
class HeaderReader {
 public:
  explicit HeaderReader(const File& file, std::uint64_t start = 0)
      : file_(file), pos_(start) {}
  /// Read 4 magic bytes without consuming unless they match; returns match.
  [[nodiscard]] bool try_magic(const char m[4]);
  void expect_magic(const char m[4]);
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::vector<std::uint64_t> u64s(std::size_t count);
  void f64s(double* out, std::size_t count);
  [[nodiscard]] std::uint64_t pos() const { return pos_; }

 private:
  const File& file_;
  std::uint64_t pos_ = 0;
};

/// Sanity bounds applied when parsing untrusted headers.
inline constexpr std::uint64_t kMaxOrder = 64;
inline constexpr std::uint64_t kMaxGridRanks = 1u << 22;
/// Ceiling on total (and per-mode) element counts: 2^48 doubles = 2 PiB,
/// far above any real dataset but small enough that every size product in
/// the readers stays exact in 64 bits.
inline constexpr std::uint64_t kMaxElements = 1ull << 48;

/// Parse + validate a grid-shape field of \p order extents from \p reader
/// (extent bounds and prod(grid) <= kMaxGridRanks). Shared by every
/// container header that embeds a writer grid.
[[nodiscard]] std::vector<int> read_grid_shape(HeaderReader& reader,
                                               std::uint64_t order,
                                               const File& file);

/// Validate order/dims/grid fields parsed from a file and that every block's
/// payload [offsets[b], offsets[b] + bytes) lies within
/// [header_end, limit). \p limit is the file size for whole-file containers,
/// or the end of the enclosing blob for a model embedded in an archive (so a
/// truncated *entry* is detected even when later bytes exist in the file).
/// Throws InvalidArgument describing \p what on violation.
void validate_blocked_header(const char* what, const File& file,
                             const tensor::Dims& dims,
                             const std::vector<int>& grid,
                             const std::vector<std::uint64_t>& offsets,
                             std::uint64_t header_end, std::uint64_t limit);

}  // namespace ptucker::pario::detail
