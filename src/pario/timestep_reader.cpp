#include "pario/timestep_reader.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "pario/block_file.hpp"

namespace ptucker::pario {

TimestepReader::TimestepReader(std::string dir) : dir_(std::move(dir)) {
  namespace fs = std::filesystem;
  PT_REQUIRE(fs::is_directory(dir_),
             "TimestepReader: " << dir_ << " is not a directory");
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".ptb" || ext == ".ptt") {
      paths_.push_back(entry.path().string());
    }
  }
  PT_REQUIRE(!paths_.empty(),
             "TimestepReader: no .ptb/.ptt step files in " << dir_);
  std::sort(paths_.begin(), paths_.end());
  for (std::size_t t = 0; t < paths_.size(); ++t) {
    const BlockFile file = BlockFile::open(paths_[t]);
    if (t == 0) {
      step_dims_ = file.dims();
    } else {
      PT_REQUIRE(file.dims() == step_dims_,
                 "TimestepReader: " << paths_[t]
                                    << " dims differ from the first step");
    }
  }
}

tensor::Tensor TimestepReader::read_step(
    std::size_t t, const std::vector<util::Range>& ranges) const {
  PT_REQUIRE(t < paths_.size(), "read_step: step " << t << " out of range");
  return BlockFile::open(paths_[t]).read_ranges(ranges);
}

dist::DistTensor TimestepReader::read_window(
    std::shared_ptr<mps::CartGrid> grid, std::size_t first,
    std::size_t count) const {
  PT_REQUIRE(grid != nullptr, "read_window: null grid");
  const std::size_t order = step_dims_.size();
  PT_REQUIRE(grid->order() == static_cast<int>(order) + 1,
             "read_window: grid order " << grid->order()
                                        << " != step order + 1");
  PT_REQUIRE(count >= 1 && first + count <= paths_.size(),
             "read_window: steps [" << first << ", " << (first + count)
                                    << ") out of range");
  tensor::Dims dims = step_dims_;
  dims.push_back(count);
  dist::DistTensor x(std::move(grid), std::move(dims));

  const int time_mode = static_cast<int>(order);
  std::vector<util::Range> spatial(order);
  std::size_t slab = 1;  // elements of one local time slice
  for (std::size_t n = 0; n < order; ++n) {
    spatial[n] = x.mode_range(static_cast<int>(n));
    slab *= spatial[n].size();
  }
  if (slab == 0) return x;

  // Time is the last (slowest) mode, so each local time slice is one
  // contiguous slab of the local block: stream step files straight in.
  const util::Range my_time = x.mode_range(time_mode);
  for (std::size_t ti = my_time.lo; ti < my_time.hi; ++ti) {
    const tensor::Tensor slice = read_step(first + ti, spatial);
    PT_CHECK(slice.size() == slab, "read_window: slab size mismatch");
    std::memcpy(x.local().data() + (ti - my_time.lo) * slab, slice.data(),
                slab * sizeof(double));
  }
  return x;
}

}  // namespace ptucker::pario
