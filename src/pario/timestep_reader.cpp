#include "pario/timestep_reader.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "pario/block_file.hpp"

namespace ptucker::pario {

TimestepReader::TimestepReader(std::string dir, std::size_t max_cached_files)
    : dir_(std::move(dir)), max_cached_(std::max<std::size_t>(1, max_cached_files)) {
  namespace fs = std::filesystem;
  PT_REQUIRE(fs::is_directory(dir_),
             "TimestepReader: " << dir_ << " is not a directory");
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".ptb" || ext == ".ptt") {
      paths_.push_back(entry.path().string());
    }
  }
  PT_REQUIRE(!paths_.empty(),
             "TimestepReader: no .ptb/.ptt step files in " << dir_);
  std::sort(paths_.begin(), paths_.end());
  // Validate every header once through the cache; after the scan the LRU
  // holds the last max_cached_ steps, so a window starting anywhere else
  // pays one re-open per step on first touch and zero afterwards.
  for (std::size_t t = 0; t < paths_.size(); ++t) {
    const std::shared_ptr<const BlockFile> file = step_file(t);
    if (t == 0) {
      step_dims_ = file->dims();
    } else {
      PT_REQUIRE(file->dims() == step_dims_,
                 "TimestepReader: " << paths_[t]
                                    << " dims differ from the first step");
    }
  }
}

TimestepReader::~TimestepReader() = default;

namespace {

/// stat result condensed to the fields the stale-cache check compares. The
/// check is only as fine as the filesystem's mtime granularity: an
/// in-place rewrite that keeps the size and lands within one timestamp
/// tick of the cached parse is indistinguishable (replace-by-rename — the
/// robust solver-side pattern — always changes the inode and is caught).
detail::StepFileSig sig_of(const struct stat& st) {
  return {static_cast<std::uint64_t>(st.st_dev),
          static_cast<std::uint64_t>(st.st_ino),
          static_cast<std::uint64_t>(st.st_size),
          static_cast<std::int64_t>(st.st_mtim.tv_sec),
          static_cast<std::int64_t>(st.st_mtim.tv_nsec)};
}

}  // namespace

std::shared_ptr<const BlockFile> TimestepReader::step_file(
    std::size_t t) const {
  PT_REQUIRE(t < paths_.size(), "TimestepReader: step " << t
                                                        << " out of range");
  // Revalidation stat happens before taking the lock, so concurrent hits
  // are not serialized behind each other's filesystem metadata round-trip
  // (the same reason the miss path opens with the lock dropped).
  struct stat st {};
  const bool alive = ::stat(paths_[t].c_str(), &st) == 0;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto hit = cache_.find(t);
    if (hit != cache_.end()) {
      // Revalidate before serving: a step file rewritten (or replaced by
      // rename) since it was parsed must not be read through the stale
      // header — the in-situ case where the solver is still producing.
      if (alive && sig_of(st) == hit->second->sig) {
        lru_.splice(lru_.begin(), lru_, hit->second);  // bump to front
        return hit->second->file;
      }
      lru_.erase(hit->second);  // stale: evict and fall through to re-open
      cache_.erase(hit);
    }
  }
  // Miss: open + parse with the lock dropped, so concurrent hits on other
  // steps are not serialized behind this step's disk I/O. Another thread
  // may race us to the same step; re-check before inserting and keep its
  // entry (one redundant open, counted, then discarded).
  PT_REQUIRE(alive, "TimestepReader: cannot stat " << paths_[t]);
  const detail::StepFileSig sig = sig_of(st);
  auto file = std::make_shared<const BlockFile>(BlockFile::open(paths_[t]));
  // Every step — at scan time and on any later re-open (a file rewritten
  // under a live reader) — must match the dims of the first step.
  PT_REQUIRE(step_dims_.empty() || file->dims() == step_dims_,
             "TimestepReader: " << paths_[t]
                                << " dims differ from the first step");
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++file_opens_;
  const auto hit = cache_.find(t);
  if (hit != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, hit->second);
    return hit->second->file;
  }
  lru_.push_front(CacheEntry{t, file, sig});
  cache_[t] = lru_.begin();
  while (lru_.size() > max_cached_) {
    cache_.erase(lru_.back().step);
    lru_.pop_back();
  }
  return file;
}

std::size_t TimestepReader::cached_files() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return lru_.size();
}

std::size_t TimestepReader::file_opens() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return file_opens_;
}

tensor::Tensor TimestepReader::read_step(
    std::size_t t, const std::vector<util::Range>& ranges) const {
  return step_file(t)->read_ranges(ranges);
}

dist::DistTensor TimestepReader::read_window(
    std::shared_ptr<mps::CartGrid> grid, std::size_t first,
    std::size_t count) const {
  PT_REQUIRE(grid != nullptr, "read_window: null grid");
  const std::size_t order = step_dims_.size();
  PT_REQUIRE(grid->order() == static_cast<int>(order) + 1,
             "read_window: grid order " << grid->order()
                                        << " != step order + 1");
  PT_REQUIRE(count >= 1 && first + count <= paths_.size(),
             "read_window: steps [" << first << ", " << (first + count)
                                    << ") out of range");
  tensor::Dims dims = step_dims_;
  dims.push_back(count);
  dist::DistTensor x(std::move(grid), std::move(dims));

  const int time_mode = static_cast<int>(order);
  std::vector<util::Range> spatial(order);
  std::size_t slab = 1;  // elements of one local time slice
  for (std::size_t n = 0; n < order; ++n) {
    spatial[n] = x.mode_range(static_cast<int>(n));
    slab *= spatial[n].size();
  }
  if (slab == 0) return x;

  // Time is the last (slowest) mode, so each local time slice is one
  // contiguous slab of the local block: stream step files straight in.
  const util::Range my_time = x.mode_range(time_mode);
  for (std::size_t ti = my_time.lo; ti < my_time.hi; ++ti) {
    const tensor::Tensor slice = read_step(first + ti, spatial);
    PT_CHECK(slice.size() == slab, "read_window: slab size mismatch");
    std::memcpy(x.local().data() + (ti - my_time.lo) * slab, slice.data(),
                slab * sizeof(double));
  }
  return x;
}

}  // namespace ptucker::pario
