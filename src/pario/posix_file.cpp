#include "pario/posix_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/registry.hpp"
#include "pario/failpoint.hpp"
#include "util/error.hpp"

namespace ptucker::pario {

namespace {
std::string errno_text() { return std::strerror(errno); }
std::string errno_text(int err) { return std::strerror(err); }

/// Process-wide I/O counters ("pario.*"): every byte that crosses the
/// pread/pwrite/fsync boundary, regardless of which layer asked for it.
struct IoCounters {
  obs::Counter reads;
  obs::Counter read_bytes;
  obs::Counter writes;
  obs::Counter write_bytes;
  obs::Counter fsyncs;
  obs::Counter opens;
  obs::Counter retries;
  obs::Counter giveups;
};

IoCounters& io_counters() {
  static IoCounters* c = [] {
    auto* t = new IoCounters;
    t->reads = obs::registry().counter("pario.reads");
    t->read_bytes = obs::registry().counter("pario.read_bytes");
    t->writes = obs::registry().counter("pario.writes");
    t->write_bytes = obs::registry().counter("pario.write_bytes");
    t->fsyncs = obs::registry().counter("pario.fsyncs");
    t->opens = obs::registry().counter("pario.file_opens");
    t->retries = obs::registry().counter("pario.retries");
    t->giveups = obs::registry().counter("pario.giveups");
    return t;
  }();
  return *c;
}

std::mutex g_policy_mutex;
RetryPolicy g_policy;                       // guarded by g_policy_mutex
std::atomic<bool> g_write_checksums{true};  // v2 containers by default

/// Errnos worth retrying with backoff: the transient faults a networked or
/// overloaded filesystem produces. Everything else fails immediately.
bool is_transient(int err) { return err == EIO || err == EAGAIN; }

/// Sleep before retry attempt \p attempt (1-based) and count the retry.
void backoff(int attempt, const RetryPolicy& policy) {
  io_counters().retries.inc();
  if (policy.base_backoff_us == 0) return;
  const int shift = std::min(attempt - 1, 20);
  const std::uint64_t us = std::min(policy.base_backoff_us << shift,
                                    policy.max_backoff_us);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

[[noreturn]] void throw_io_error(const char* op, const std::string& path,
                                 std::uint64_t offset, int err, int attempts) {
  io_counters().giveups.inc();
  std::ostringstream os;
  os << "pario: " << op << " " << path << " at offset " << offset
     << " failed: " << errno_text(err);
  if (attempts > 1) os << " (after " << attempts << " attempts)";
  throw IoError(os.str());
}
}  // namespace

void set_retry_policy(const RetryPolicy& policy) {
  const std::lock_guard<std::mutex> lock(g_policy_mutex);
  g_policy = policy;
}

RetryPolicy retry_policy() {
  const std::lock_guard<std::mutex> lock(g_policy_mutex);
  return g_policy;
}

void set_write_checksums(bool on) {
  g_write_checksums.store(on, std::memory_order_relaxed);
}

bool write_checksums() {
  return g_write_checksums.load(std::memory_order_relaxed);
}

File::~File() { close(); }

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

File File::open_read(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(hicpp-vararg)
  PT_REQUIRE(fd >= 0, "pario: cannot open " << path << " for reading: "
                                            << errno_text());
  io_counters().opens.inc();
  return File(fd, path);
}

File File::create(const std::string& path) {
  const int fd =  // NOLINT(hicpp-vararg)
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  PT_REQUIRE(fd >= 0,
             "pario: cannot create " << path << ": " << errno_text());
  io_counters().opens.inc();
  return File(fd, path);
}

File File::open_write(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);  // NOLINT(hicpp-vararg)
  PT_REQUIRE(fd >= 0, "pario: cannot open " << path << " for writing: "
                                            << errno_text());
  io_counters().opens.inc();
  return File(fd, path);
}

std::uint64_t File::size() const {
  PT_CHECK(valid(), "pario: size() on closed file");
  struct stat st {};
  PT_REQUIRE(::fstat(fd_, &st) == 0,
             "pario: fstat " << path_ << ": " << errno_text());
  return static_cast<std::uint64_t>(st.st_size);
}

void File::read_at(std::uint64_t offset, void* buf, std::size_t n) const {
  PT_CHECK(valid(), "pario: read_at on closed file");
  char* dst = static_cast<char*>(buf);
  faults::ReadCallPlan fp;
  if constexpr (faults::kEnabled) fp = faults::plan_read_call(path_, n);
  const RetryPolicy policy = retry_policy();
  int attempts = 1;  // transient-error budget for the current position
  std::size_t done = 0;
  while (done < n) {
    std::size_t want = n - done;
    faults::SyscallFault sf;
    if constexpr (faults::kEnabled) {
      if (fp.eio_left > 0) {
        --fp.eio_left;
        sf.err = EIO;
      } else {
        sf = faults::read_syscall_fault(path_, want);
      }
    }
    ssize_t got;
    if (sf.err != 0) {
      got = -1;
      errno = sf.err;
    } else {
      if (sf.short_bytes != 0) want = std::min(want, sf.short_bytes);
      got = ::pread(fd_, dst + done, want, static_cast<off_t>(offset + done));
    }
    if (got < 0) {
      const int err = errno;
      if (err == EINTR) continue;  // nothing moved; just go again
      if (is_transient(err) && attempts < policy.max_attempts) {
        backoff(attempts++, policy);
        continue;
      }
      throw_io_error("read", path_, offset + done, err, attempts);
    }
    PT_REQUIRE(got > 0, "pario: truncated read of "
                            << path_ << " at offset " << (offset + done)
                            << " (wanted " << (n - done)
                            << " more bytes, file ends early)");
    done += static_cast<std::size_t>(got);
    attempts = 1;  // progress: reset the transient budget
  }
  if constexpr (faults::kEnabled) faults::apply_read_call(fp, buf, n);
  io_counters().reads.inc();
  io_counters().read_bytes.add(n);
}

void File::write_at(std::uint64_t offset, const void* buf,
                    std::size_t n) const {
  PT_CHECK(valid(), "pario: write_at on closed file");
  const char* src = static_cast<const char*>(buf);
  std::size_t n_eff = n;
  faults::WriteCallPlan fp;
  if constexpr (faults::kEnabled) {
    const faults::OpGate gate = faults::write_op_gate(path_, n);
    if (gate.fail_errno != 0) {
      throw_io_error("write", path_, offset, gate.fail_errno, 1);
    }
    // A simulated crash: only gate.allowed bytes land and we return as if
    // the full write succeeded — no caller survives a real crash to see it.
    n_eff = std::min(n, gate.allowed);
    fp = faults::plan_write_call(path_);
  }
  const RetryPolicy policy = retry_policy();
  int attempts = 1;
  std::size_t done = 0;
  while (done < n_eff) {
    std::size_t want = n_eff - done;
    faults::SyscallFault sf;
    if constexpr (faults::kEnabled) {
      if (fp.eio_left > 0) {
        --fp.eio_left;
        sf.err = EIO;
      } else {
        sf = faults::write_syscall_fault(path_, want);
      }
    }
    ssize_t put;
    if (sf.err != 0) {
      put = -1;
      errno = sf.err;
    } else {
      if (sf.short_bytes != 0) want = std::min(want, sf.short_bytes);
      put = ::pwrite(fd_, src + done, want, static_cast<off_t>(offset + done));
    }
    if (put < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (is_transient(err) && attempts < policy.max_attempts) {
        backoff(attempts++, policy);
        continue;
      }
      throw_io_error("write", path_, offset + done, err, attempts);
    }
    PT_REQUIRE(put > 0,
               "pario: short write to " << path_ << ": " << errno_text());
    done += static_cast<std::size_t>(put);
    attempts = 1;
  }
  io_counters().writes.inc();
  io_counters().write_bytes.add(n);
}

void File::truncate(std::uint64_t length) const {
  PT_CHECK(valid(), "pario: truncate on closed file");
  if constexpr (faults::kEnabled) {
    if (!faults::truncate_op_allowed(path_)) return;  // post-crash: dropped
  }
  while (::ftruncate(fd_, static_cast<off_t>(length)) != 0) {
    if (errno == EINTR) continue;
    throw_io_error("ftruncate", path_, length, errno, 1);
  }
}

void File::sync() const {
  PT_CHECK(valid(), "pario: sync on closed file");
  if constexpr (faults::kEnabled) {
    if (!faults::sync_op_allowed(path_)) return;  // post-crash: dropped
  }
  // A failed fsync is never retried: after it fails, dirty pages may
  // already have been dropped, so a succeeding retry proves nothing.
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    throw_io_error("fsync", path_, 0, errno, 1);
  }
  io_counters().fsyncs.inc();
}

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ptucker::pario
