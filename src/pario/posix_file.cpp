#include "pario/posix_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace ptucker::pario {

namespace {
std::string errno_text() { return std::strerror(errno); }

/// Process-wide I/O counters ("pario.*"): every byte that crosses the
/// pread/pwrite/fsync boundary, regardless of which layer asked for it.
struct IoCounters {
  obs::Counter reads;
  obs::Counter read_bytes;
  obs::Counter writes;
  obs::Counter write_bytes;
  obs::Counter fsyncs;
  obs::Counter opens;
};

IoCounters& io_counters() {
  static IoCounters* c = [] {
    auto* t = new IoCounters;
    t->reads = obs::registry().counter("pario.reads");
    t->read_bytes = obs::registry().counter("pario.read_bytes");
    t->writes = obs::registry().counter("pario.writes");
    t->write_bytes = obs::registry().counter("pario.write_bytes");
    t->fsyncs = obs::registry().counter("pario.fsyncs");
    t->opens = obs::registry().counter("pario.file_opens");
    return t;
  }();
  return *c;
}
}  // namespace

File::~File() { close(); }

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

File File::open_read(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(hicpp-vararg)
  PT_REQUIRE(fd >= 0, "pario: cannot open " << path << " for reading: "
                                            << errno_text());
  io_counters().opens.inc();
  return File(fd, path);
}

File File::create(const std::string& path) {
  const int fd =  // NOLINT(hicpp-vararg)
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  PT_REQUIRE(fd >= 0,
             "pario: cannot create " << path << ": " << errno_text());
  io_counters().opens.inc();
  return File(fd, path);
}

File File::open_write(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);  // NOLINT(hicpp-vararg)
  PT_REQUIRE(fd >= 0, "pario: cannot open " << path << " for writing: "
                                            << errno_text());
  io_counters().opens.inc();
  return File(fd, path);
}

std::uint64_t File::size() const {
  PT_CHECK(valid(), "pario: size() on closed file");
  struct stat st {};
  PT_REQUIRE(::fstat(fd_, &st) == 0,
             "pario: fstat " << path_ << ": " << errno_text());
  return static_cast<std::uint64_t>(st.st_size);
}

void File::read_at(std::uint64_t offset, void* buf, std::size_t n) const {
  PT_CHECK(valid(), "pario: read_at on closed file");
  char* dst = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd_, dst + done, n - done,
                                static_cast<off_t>(offset + done));
    PT_REQUIRE(got > 0, "pario: truncated read of "
                            << path_ << " at offset " << (offset + done)
                            << " (wanted " << (n - done) << " more bytes)");
    done += static_cast<std::size_t>(got);
  }
  io_counters().reads.inc();
  io_counters().read_bytes.add(n);
}

void File::write_at(std::uint64_t offset, const void* buf,
                    std::size_t n) const {
  PT_CHECK(valid(), "pario: write_at on closed file");
  const char* src = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::pwrite(fd_, src + done, n - done,
                                 static_cast<off_t>(offset + done));
    PT_REQUIRE(put > 0,
               "pario: short write to " << path_ << ": " << errno_text());
    done += static_cast<std::size_t>(put);
  }
  io_counters().writes.inc();
  io_counters().write_bytes.add(n);
}

void File::truncate(std::uint64_t length) const {
  PT_CHECK(valid(), "pario: truncate on closed file");
  PT_REQUIRE(::ftruncate(fd_, static_cast<off_t>(length)) == 0,
             "pario: ftruncate " << path_ << ": " << errno_text());
}

void File::sync() const {
  PT_CHECK(valid(), "pario: sync on closed file");
  PT_REQUIRE(::fsync(fd_) == 0,
             "pario: fsync " << path_ << ": " << errno_text());
  io_counters().fsyncs.inc();
}

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ptucker::pario
