#pragma once
/// \file model_io.hpp
/// \brief The PTZ1 parallel compressed-model container: core tensor written
/// block-parallel, factor matrices and (optional) normalization statistics
/// riding in the header.
///
/// Layout (little-endian):
///   "PTZ1" | u64 version | u64 order N
///   | u64 core_dims[N] | u64 grid[N] | u64 factor_rows[N] | u64 factor_cols[N]
///   | u64 has_stats
///   | [ u64 species_mode | u64 count | f64 mean[count] | f64 stdev[count] ]
///   | u64 core_offset[prod(grid)]
///   | u64 core_crc[prod(grid)] | u64 factor_crc   (version 2 only)
///   | f64 factor payloads (column-major, mode order)
///   | core blocks (grid-rank order, as in PTB1)
///
/// Version 2 (the default; see pario::set_write_checksums) carries one
/// CRC32C per core block plus one over the whole factor payload region,
/// each in the low 32 bits of a u64 slot, verified on read. Version-1
/// blobs are still read (no verification).
///
/// Everything up to the core blocks is written by rank 0 (factors are
/// replicated, so no gather is needed); every rank then pwrites its own
/// core block. On load every rank reads the header and factor bytes itself
/// and preads its core block — zero messages on the whole load path, and
/// the offset table supports loading onto a different grid exactly as PTB1
/// does. This replaces the PTKR flow that gathered the core to rank 0 and
/// broadcast every factor.
///
/// pario sits below core in the layer map, so this interface speaks
/// DistTensor + Matrix spans; core/tucker_io adapts it to TuckerTensor.

#include <memory>
#include <span>
#include <string>

#include "data/normalize.hpp"
#include "dist/dist_tensor.hpp"
#include "pario/posix_file.hpp"
#include "tensor/matrix.hpp"

namespace ptucker::pario {

/// Contents of a loaded PTZ1 file.
struct ModelData {
  dist::DistTensor core;
  std::vector<tensor::Matrix> factors;
  bool has_stats = false;
  data::NormalizationStats stats;  ///< valid only when has_stats
};

/// Contents of a loaded PTZ1 file with the core assembled as one plain
/// (non-distributed) tensor — the serve layer's load path, where a server
/// thread needs the whole model without a grid or a runtime.
struct LocalModelData {
  tensor::Tensor core;
  std::vector<tensor::Matrix> factors;
  bool has_stats = false;
  data::NormalizationStats stats;  ///< valid only when has_stats
};

/// Collective: write the model block-parallel. \p stats may be null; when
/// given it is archived in the header (the paper's per-species mean/stdev,
/// needed to reconstruct physical values).
void write_model(const std::string& path, const dist::DistTensor& core,
                 std::span<const tensor::Matrix> factors,
                 const data::NormalizationStats* stats = nullptr);

/// Collective: load a PTZ1 file onto \p grid (any grid of matching order).
[[nodiscard]] ModelData read_model(const std::string& path,
                                   std::shared_ptr<mps::CartGrid> grid);

/// Collective: write the model as a PTZ1 blob starting at byte \p base of
/// \p path. With \p create the file is created/truncated first (write_model
/// is the base == 0 case); otherwise it must exist and is extended. The
/// blob's internal offsets are blob-relative, so an entry extracted from an
/// archive byte-for-byte is itself a valid PTZ1 file. Returns the blob byte
/// count (identical on every rank, no communication needed to agree).
std::uint64_t write_model_at(const std::string& path, std::uint64_t base,
                             bool create, const dist::DistTensor& core,
                             std::span<const tensor::Matrix> factors,
                             const data::NormalizationStats* stats = nullptr);

/// Every-rank read of the PTZ1 blob at byte \p base of \p file onto \p grid
/// (communication-free; each rank preads its own core block). \p limit is
/// one past the last byte the blob may occupy — the file size for a
/// standalone model, the committed entry end inside an archive. All
/// header-claimed sizes are validated against \p limit before any
/// allocation, so truncated or hostile headers throw InvalidArgument.
[[nodiscard]] ModelData read_model_at(const File& file, std::uint64_t base,
                                      std::uint64_t limit,
                                      std::shared_ptr<mps::CartGrid> grid);

/// Communication-free, grid-free read of the PTZ1 blob at byte \p base of
/// \p file: the full core is assembled from the writer's block layout via
/// the same positioned-read machinery read_model_at uses, so the result is
/// byte-identical to a 1-rank distributed load of the same blob. Safe to
/// call from any thread (no runtime, no collectives) — the serve layer's
/// loader. Header validation is identical to read_model_at.
[[nodiscard]] LocalModelData read_model_local_at(const File& file,
                                                 std::uint64_t base,
                                                 std::uint64_t limit);

/// True when the file at \p path starts with the PTZ1 magic.
[[nodiscard]] bool is_ptz1(const std::string& path);

/// Total byte size of the PTZ1 container for a model of the given shapes.
/// \p stats_count is the species extent when stats are archived, 0 otherwise.
[[nodiscard]] std::uint64_t ptz1_file_bytes(
    const tensor::Dims& core_dims, const std::vector<int>& grid,
    std::span<const tensor::Matrix> factors, std::size_t stats_count = 0);

}  // namespace ptucker::pario
