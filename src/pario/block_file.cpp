#include "pario/block_file.hpp"

#include "util/crc32c.hpp"

namespace ptucker::pario {

namespace {
constexpr char kMagicBlock[4] = {'P', 'T', 'B', '1'};
constexpr char kMagicTensor[4] = {'P', 'T', 'T', '1'};
constexpr std::uint64_t kVersionPlain = 1;  // no checksums
constexpr std::uint64_t kVersionCrc = 2;    // + per-block CRC32C table

/// Header bytes: magic + version + order + dims + grid + offset table
/// (+ crc table in version 2).
std::uint64_t ptb1_header_bytes(std::size_t order, std::uint64_t ranks,
                                bool crc) {
  return 4 +
         sizeof(std::uint64_t) * (2 + 2 * order + ranks + (crc ? ranks : 0));
}

/// Byte offset of the crc table (version 2): right after the offset table.
std::uint64_t ptb1_crc_table_offset(std::size_t order, std::uint64_t ranks) {
  return 4 + sizeof(std::uint64_t) * (2 + 2 * order + ranks);
}
}  // namespace

BlockFile BlockFile::open(const std::string& path) {
  BlockFile bf;
  bf.file_ = File::open_read(path);
  detail::HeaderReader reader(bf.file_);
  if (reader.try_magic(kMagicBlock)) {
    const std::uint64_t version = reader.u64();
    PT_REQUIRE(version == kVersionPlain || version == kVersionCrc,
               "pario: unsupported PTB1 version " << version << " in "
                                                  << path);
    const std::uint64_t order = reader.u64();
    PT_REQUIRE(order >= 1 && order <= detail::kMaxOrder,
               "pario: implausible order " << order << " in " << path);
    const auto dims64 = reader.u64s(order);
    bf.dims_.assign(dims64.begin(), dims64.end());
    bf.grid_ = detail::read_grid_shape(reader, order, bf.file_);
    std::uint64_t ranks = 1;
    for (int e : bf.grid_) ranks *= static_cast<std::uint64_t>(e);
    bf.offsets_ = reader.u64s(ranks);
    if (version == kVersionCrc) bf.crcs_ = reader.u64s(ranks);
    detail::validate_blocked_header("pario(PTB1)", bf.file_, bf.dims_,
                                    bf.grid_, bf.offsets_, reader.pos(),
                                    bf.file_.size());
  } else {
    // Legacy dense tensor file: one block covering everything.
    detail::HeaderReader treader(bf.file_);
    PT_REQUIRE(treader.try_magic(kMagicTensor),
               "pario: " << path << " is neither PTB1 nor PTT1");
    const std::uint64_t order = treader.u64();
    PT_REQUIRE(order >= 1 && order <= detail::kMaxOrder,
               "pario: implausible order " << order << " in " << path);
    const auto dims64 = treader.u64s(order);
    bf.dims_.assign(dims64.begin(), dims64.end());
    bf.grid_.assign(order, 1);
    bf.offsets_ = {treader.pos()};
    detail::validate_blocked_header("pario(PTT1)", bf.file_, bf.dims_,
                                    bf.grid_, bf.offsets_, treader.pos(),
                                    bf.file_.size());
  }
  return bf;
}

tensor::Tensor BlockFile::read_ranges(
    const std::vector<util::Range>& ranges) const {
  return detail::read_blocked_ranges(file_, dims_, grid_, offsets_, ranges,
                                     crcs_);
}

std::uint64_t ptb1_file_bytes(const tensor::Dims& dims,
                              const std::vector<int>& grid) {
  const auto offsets = detail::block_offsets(dims, grid, 0);
  return ptb1_header_bytes(dims.size(), offsets.size() - 1,
                           write_checksums()) +
         offsets.back();
}

void write_dist_tensor(const std::string& path, const dist::DistTensor& x) {
  const mps::Comm& comm = x.comm();
  const mps::CartGrid& grid = x.grid();
  const std::size_t order = x.global_dims().size();
  const std::uint64_t ranks = static_cast<std::uint64_t>(comm.size());
  const bool crc = write_checksums();
  const std::uint64_t header = ptb1_header_bytes(order, ranks, crc);
  const auto offsets =
      detail::block_offsets(x.global_dims(), grid.shape(), header);

  if (comm.rank() == 0) {
    detail::HeaderWriter w;
    w.magic(kMagicBlock);
    w.u64(crc ? kVersionCrc : kVersionPlain);
    w.u64(static_cast<std::uint64_t>(order));
    for (std::size_t d : x.global_dims()) w.u64(d);
    for (int e : grid.shape()) w.u64(static_cast<std::uint64_t>(e));
    for (std::uint64_t b = 0; b < ranks; ++b) w.u64(offsets[b]);
    // crc slots are zero-filled here and overwritten by the owning ranks;
    // an empty block keeps 0, which is exactly crc32c of zero bytes.
    if (crc) {
      for (std::uint64_t b = 0; b < ranks; ++b) w.u64(0);
    }
    PT_CHECK(w.size() == header, "pario: PTB1 header size mismatch");
    File f = File::create(path);
    f.write_at(0, w.bytes().data(), w.bytes().size());
    // Size the file up front so it is complete even when trailing blocks
    // are empty, and so concurrent block writes never race on extension.
    f.truncate(offsets.back());
  }
  comm.barrier();  // header visible before any block lands
  if (x.local().size() > 0) {
    const File f = File::open_write(path);
    if (crc) {
      const std::uint64_t c64 = util::crc32c(
          0, x.local().data(), x.local().size() * sizeof(double));
      f.write_at(ptb1_crc_table_offset(order, ranks) +
                     sizeof(std::uint64_t) *
                         static_cast<std::uint64_t>(comm.rank()),
                 &c64, sizeof(c64));
    }
    f.write_at(offsets[static_cast<std::size_t>(comm.rank())],
               x.local().data(), x.local().size() * sizeof(double));
  }
  comm.barrier();  // file complete before any rank returns
}

dist::DistTensor read_dist_tensor(std::shared_ptr<mps::CartGrid> grid,
                                  const std::string& path) {
  PT_REQUIRE(grid != nullptr, "read_dist_tensor: null grid");
  const BlockFile file = BlockFile::open(path);
  PT_REQUIRE(file.order() == grid->order(),
             "read_dist_tensor: file order " << file.order()
                                             << " != grid order "
                                             << grid->order());
  dist::DistTensor x(grid, file.dims());
  if (x.local().size() > 0) {
    std::vector<util::Range> mine(file.dims().size());
    for (int n = 0; n < x.order(); ++n) {
      mine[static_cast<std::size_t>(n)] = x.mode_range(n);
    }
    x.local() = file.read_ranges(mine);
  }
  return x;
}

}  // namespace ptucker::pario
