#pragma once
/// \file timestep_reader.hpp
/// \brief Streaming reader over a directory of per-timestep tensor files —
/// the "compress the simulation as it lands on disk" workflow (paper
/// Sec. II): a solver dumps one spatial x species tensor per step; the
/// compressor consumes them window-by-window without ever materializing a
/// global space-time tensor on any rank.
///
/// Steps are PTB1 or PTT1 files (mixable) with identical dims, ordered by
/// filename. All reads go through the chunked-container machinery, so each
/// rank touches only the bytes of its own sub-block: the whole pipeline is
/// communication-free.

#include <memory>
#include <string>
#include <vector>

#include "dist/dist_tensor.hpp"
#include "tensor/tensor.hpp"

namespace ptucker::pario {

class TimestepReader {
 public:
  /// Scan \p dir for step files (extensions .ptb / .ptt), sorted by
  /// filename, and validate that every header carries the same dims. The
  /// scan is deterministic, so SPMD ranks constructing a reader over the
  /// same directory agree on the step list with zero communication.
  explicit TimestepReader(std::string dir);

  [[nodiscard]] std::size_t num_steps() const { return paths_.size(); }
  /// Dims of one step (the spatial x species tensor, no time mode).
  [[nodiscard]] const tensor::Dims& step_dims() const { return step_dims_; }
  [[nodiscard]] const std::string& step_path(std::size_t t) const {
    return paths_[t];
  }

  /// Read the given per-mode ranges of step \p t (preads only).
  [[nodiscard]] tensor::Tensor read_step(
      std::size_t t, const std::vector<util::Range>& ranges) const;

  /// Collective: assemble steps [first, first + count) as a DistTensor
  /// whose last mode is time. \p grid must have order step-order + 1; each
  /// rank reads its own spatial sub-block of each step in its time range
  /// directly into its local slab. Zero messages.
  [[nodiscard]] dist::DistTensor read_window(
      std::shared_ptr<mps::CartGrid> grid, std::size_t first,
      std::size_t count) const;

 private:
  std::string dir_;
  std::vector<std::string> paths_;
  tensor::Dims step_dims_;
};

}  // namespace ptucker::pario
