#pragma once
/// \file timestep_reader.hpp
/// \brief Streaming reader over a directory of per-timestep tensor files —
/// the "compress the simulation as it lands on disk" workflow (paper
/// Sec. II): a solver dumps one spatial x species tensor per step; the
/// compressor consumes them window-by-window without ever materializing a
/// global space-time tensor on any rank.
///
/// Steps are PTB1 or PTT1 files (mixable) with identical dims, ordered by
/// filename. All reads go through the chunked-container machinery, so each
/// rank touches only the bytes of its own sub-block: the whole pipeline is
/// communication-free.
///
/// Open descriptors and parsed headers are kept in a small per-reader LRU
/// cache, so sliding a window over a thousand-step directory re-opens and
/// re-parses each file once per pass instead of once per read. The bound
/// keeps the fd footprint well under typical RLIMIT_NOFILE even with one
/// reader per rank.
///
/// Because the in-situ workflow reads step files while the solver is still
/// producing (and possibly rewriting) them, every cache hit revalidates the
/// file's identity and mtime/size against the filesystem: a step file that
/// was overwritten, replaced, or grown since it was parsed is evicted and
/// re-opened instead of being served from the stale header.

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <mutex>

#include "dist/dist_tensor.hpp"
#include "tensor/tensor.hpp"

namespace ptucker::pario {

class BlockFile;

namespace detail {
/// Filesystem identity + freshness of a step file at parse time; a
/// mismatch on a later cache hit means the file changed under us.
struct StepFileSig {
  std::uint64_t dev = 0;
  std::uint64_t ino = 0;
  std::uint64_t size = 0;
  std::int64_t mtime_sec = 0;
  std::int64_t mtime_nsec = 0;
  bool operator==(const StepFileSig&) const = default;
};
}  // namespace detail

class TimestepReader {
 public:
  /// Scan \p dir for step files (extensions .ptb / .ptt), sorted by
  /// filename, and validate that every header carries the same dims. The
  /// scan is deterministic, so SPMD ranks constructing a reader over the
  /// same directory agree on the step list with zero communication.
  /// \p max_cached_files bounds the open-fd/header LRU (>= 1).
  explicit TimestepReader(std::string dir, std::size_t max_cached_files = 32);
  ~TimestepReader();

  [[nodiscard]] std::size_t num_steps() const { return paths_.size(); }
  /// Dims of one step (the spatial x species tensor, no time mode).
  [[nodiscard]] const tensor::Dims& step_dims() const { return step_dims_; }
  [[nodiscard]] const std::string& step_path(std::size_t t) const {
    return paths_[t];
  }

  /// Read the given per-mode ranges of step \p t (preads only).
  [[nodiscard]] tensor::Tensor read_step(
      std::size_t t, const std::vector<util::Range>& ranges) const;

  /// Collective: assemble steps [first, first + count) as a DistTensor
  /// whose last mode is time. \p grid must have order step-order + 1; each
  /// rank reads its own spatial sub-block of each step in its time range
  /// directly into its local slab. Zero messages.
  [[nodiscard]] dist::DistTensor read_window(
      std::shared_ptr<mps::CartGrid> grid, std::size_t first,
      std::size_t count) const;

  /// Cache observability (tests and tuning): steps currently held open, and
  /// the total number of open+parse operations performed so far. A fully
  /// cached re-read leaves file_opens() unchanged.
  [[nodiscard]] std::size_t cached_files() const;
  [[nodiscard]] std::size_t file_opens() const;

 private:
  struct CacheEntry {
    std::size_t step = 0;
    std::shared_ptr<const BlockFile> file;
    detail::StepFileSig sig;
  };

  /// Fetch step \p t through the LRU (opens + parses on miss, evicting the
  /// least-recently-used entry at the bound). A hit is revalidated against
  /// the current stat of the path and treated as a miss when stale.
  /// Thread-safe; the returned handle stays valid after eviction (shared
  /// ownership) and its preads need no lock.
  [[nodiscard]] std::shared_ptr<const BlockFile> step_file(std::size_t t) const;

  std::string dir_;
  std::vector<std::string> paths_;
  tensor::Dims step_dims_;
  std::size_t max_cached_ = 32;

  mutable std::mutex cache_mutex_;
  /// Front = most recently used.
  mutable std::list<CacheEntry> lru_;
  mutable std::unordered_map<std::size_t, std::list<CacheEntry>::iterator>
      cache_;
  mutable std::size_t file_opens_ = 0;
};

}  // namespace ptucker::pario
