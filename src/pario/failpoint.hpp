#pragma once
/// \file failpoint.hpp
/// \brief Deterministic fault injection at the pread/pwrite/fsync boundary.
///
/// A shared cluster filesystem produces failures that unit tests on a local
/// disk never see: interrupted syscalls (EINTR), short transfers, transient
/// EIO, ENOSPC, torn writes from a crashed writer, and silent bit rot. This
/// substrate lets tests inject every one of those classes *deterministically*
/// (all decisions are pure functions of a seed and per-site decision
/// counters) right where they would occur — inside pario::File — so the
/// retry, checksum, and degradation machinery above can be exercised
/// end to end.
///
/// Mirrors the obs pattern: built by default, compiled to a zero-cost inline
/// stub under -DPTUCKER_FAULTS=OFF (PTUCKER_FAULTS_DISABLED). Callers branch
/// on `if constexpr (faults::kEnabled)` so the hooks vanish entirely from
/// the disabled build.
///
/// The "crash" model: write-class ops (write_at / sync / truncate) on
/// matching files are counted from arm(); at op crash_at_op the op transfers
/// only crash_keep_bytes (writes) or does nothing (sync/truncate), and every
/// later write-class effect is silently dropped while execution continues.
/// The file is left exactly as a real crash at that boundary would leave
/// it — the process just happens to survive to assert on the wreckage.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace ptucker::pario::faults {

#ifdef PTUCKER_FAULTS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// One armed fault schedule. Probabilities are evaluated against a
/// splitmix64 stream indexed by atomic decision counters, so a
/// single-threaded replay with the same seed is exactly reproducible and
/// concurrent callers draw distinct values.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Only files whose path contains this substring are faulted ("" = all).
  std::string path_substr;

  // --- probabilistic classes, each in [0, 1] ---
  double p_read_eintr = 0.0;    ///< per pread: fail once with EINTR
  double p_read_short = 0.0;    ///< per pread: transfer at most half the bytes
  double p_read_eio = 0.0;      ///< per read_at call: transient-EIO streak
  double p_read_bitflip = 0.0;  ///< per read_at call: flip one returned bit
  double p_write_eintr = 0.0;   ///< per pwrite: fail once with EINTR
  double p_write_short = 0.0;   ///< per pwrite: transfer at most half
  double p_write_eio = 0.0;     ///< per write_at call: transient-EIO streak

  /// Bit flips only hit read_at calls of at least this many bytes, so a test
  /// can corrupt payloads while leaving small header reads parseable.
  std::size_t bitflip_min_bytes = 0;

  /// Length of an injected transient-EIO streak: the syscall fails this many
  /// times, then succeeds. Size it against RetryPolicy::max_attempts to
  /// exercise both recovery (streak < budget) and giveup (streak >= budget).
  int eio_streak = 2;

  // --- one-shot write-class ops (0-based index since arm(); -1 = never) ---
  std::int64_t enospc_at_op = -1;  ///< this op fails loudly with ENOSPC
  std::int64_t crash_at_op = -1;   ///< "process dies" at this op (see above)
  /// Bytes of the crashing write that still land (a torn write). Ignored
  /// when the crashing op is a sync/truncate.
  std::uint64_t crash_keep_bytes = 0;
};

/// Per-read_at-call decisions, drawn once at entry.
struct ReadCallPlan {
  static constexpr std::uint64_t kNoFlip =
      std::numeric_limits<std::uint64_t>::max();
  int eio_left = 0;                  ///< EIOs to inject before preads succeed
  std::uint64_t flip_bit = kNoFlip;  ///< bit index (< 8n) to flip, or kNoFlip
};

/// Per-write_at-call decisions.
struct WriteCallPlan {
  int eio_left = 0;
};

/// Per-syscall fault: err != 0 makes this pread/pwrite fail with that errno;
/// otherwise short_bytes != 0 caps this syscall's transfer size.
struct SyscallFault {
  int err = 0;
  std::size_t short_bytes = 0;
};

/// Gate for one write-class op: how much of it is allowed to take effect.
struct OpGate {
  static constexpr std::size_t kAll = std::numeric_limits<std::size_t>::max();
  std::size_t allowed = kAll;  ///< bytes that may land (0 after a crash)
  int fail_errno = 0;          ///< nonzero: fail the whole op loudly (ENOSPC)
};

#ifndef PTUCKER_FAULTS_DISABLED

/// Install \p plan and zero all counters. Process-wide; tests serialize.
void arm(const FaultPlan& plan);
/// Remove the active plan (every hook becomes a no-op again).
void disarm();
[[nodiscard]] bool armed();

/// Write-class ops (write_at/sync/truncate on matching files) seen since
/// arm(). A probe run under a neutral plan measures this to size the
/// crash-at-every-boundary torture sweep.
[[nodiscard]] std::uint64_t write_class_ops();
/// Total faults injected since arm() (all classes).
[[nodiscard]] std::uint64_t injected();
/// True once crash_at_op has been reached.
[[nodiscard]] bool crashed();

[[nodiscard]] ReadCallPlan plan_read_call(const std::string& path,
                                          std::size_t n);
[[nodiscard]] SyscallFault read_syscall_fault(const std::string& path,
                                              std::size_t want);
/// Apply the call plan's bit flip (if any) to the filled buffer.
void apply_read_call(const ReadCallPlan& plan, void* buf, std::size_t n);

[[nodiscard]] WriteCallPlan plan_write_call(const std::string& path);
[[nodiscard]] SyscallFault write_syscall_fault(const std::string& path,
                                               std::size_t want);

/// Count one write-class op of \p n bytes and decide its fate.
[[nodiscard]] OpGate write_op_gate(const std::string& path, std::size_t n);
/// Count one sync/truncate op; false = silently drop it (post-crash).
[[nodiscard]] bool sync_op_allowed(const std::string& path);
[[nodiscard]] bool truncate_op_allowed(const std::string& path);

/// RAII arm/disarm for tests.
class Guard {
 public:
  explicit Guard(const FaultPlan& plan) { arm(plan); }
  ~Guard() { disarm(); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

#else  // PTUCKER_FAULTS_DISABLED — zero-cost stubs

inline void arm(const FaultPlan&) {}
inline void disarm() {}
[[nodiscard]] inline bool armed() { return false; }
[[nodiscard]] inline std::uint64_t write_class_ops() { return 0; }
[[nodiscard]] inline std::uint64_t injected() { return 0; }
[[nodiscard]] inline bool crashed() { return false; }
[[nodiscard]] inline ReadCallPlan plan_read_call(const std::string&,
                                                 std::size_t) {
  return {};
}
[[nodiscard]] inline SyscallFault read_syscall_fault(const std::string&,
                                                     std::size_t) {
  return {};
}
inline void apply_read_call(const ReadCallPlan&, void*, std::size_t) {}
[[nodiscard]] inline WriteCallPlan plan_write_call(const std::string&) {
  return {};
}
[[nodiscard]] inline SyscallFault write_syscall_fault(const std::string&,
                                                      std::size_t) {
  return {};
}
[[nodiscard]] inline OpGate write_op_gate(const std::string&, std::size_t) {
  return {};
}
[[nodiscard]] inline bool sync_op_allowed(const std::string&) { return true; }
[[nodiscard]] inline bool truncate_op_allowed(const std::string&) {
  return true;
}

class Guard {
 public:
  explicit Guard(const FaultPlan&) {}
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

#endif  // PTUCKER_FAULTS_DISABLED

}  // namespace ptucker::pario::faults
