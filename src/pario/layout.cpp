#include "pario/layout.hpp"

#include <cstring>

#include "obs/registry.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"

namespace ptucker::pario::detail {

namespace {

/// Coordinates of grid rank \p b (coordinate 0 fastest, as in CartGrid).
std::vector<int> grid_coords(const std::vector<int>& grid, int b) {
  std::vector<int> coords(grid.size());
  for (std::size_t n = 0; n < grid.size(); ++n) {
    coords[n] = b % grid[n];
    b /= grid[n];
  }
  return coords;
}

int grid_size(const std::vector<int>& grid) {
  int p = 1;
  for (int e : grid) p *= e;
  return p;
}

struct CrcCounters {
  obs::Counter checked;
  obs::Counter failures;
};

CrcCounters& crc_counters() {
  static CrcCounters* c = [] {
    auto* t = new CrcCounters;
    t->checked = obs::registry().counter("pario.crc_checked");
    t->failures = obs::registry().counter("pario.crc_failures");
    return t;
  }();
  return *c;
}

}  // namespace

void verify_crc32c(const char* container, const File& file,
                   const std::string& what, std::uint64_t offset,
                   std::uint64_t stored, std::uint32_t computed) {
  crc_counters().checked.inc();
  if ((stored & 0xFFFFFFFFull) == computed) return;
  crc_counters().failures.inc();
  std::ostringstream os;
  os << container << ": checksum mismatch in " << what << " of " << file.path()
     << " at offset " << offset << " (stored crc32c 0x" << std::hex
     << (stored & 0xFFFFFFFFull) << ", computed 0x" << computed << std::dec
     << ") — silent corruption or a torn write";
  throw ChecksumError(os.str());
}

std::vector<util::Range> block_ranges(const tensor::Dims& dims,
                                      const std::vector<int>& grid, int b) {
  PT_CHECK(dims.size() == grid.size(), "block_ranges: dims/grid order");
  const std::vector<int> coords = grid_coords(grid, b);
  std::vector<util::Range> ranges(dims.size());
  for (std::size_t n = 0; n < dims.size(); ++n) {
    ranges[n] = util::uniform_block(dims[n], static_cast<std::size_t>(grid[n]),
                                    static_cast<std::size_t>(coords[n]));
  }
  return ranges;
}

std::uint64_t block_elements(const tensor::Dims& dims,
                             const std::vector<int>& grid, int b) {
  std::uint64_t count = 1;
  for (const util::Range& r : block_ranges(dims, grid, b)) {
    count = util::checked_mul(count, r.size(), "pario: block_elements");
  }
  return count;
}

std::vector<std::uint64_t> block_offsets(const tensor::Dims& dims,
                                         const std::vector<int>& grid,
                                         std::uint64_t base) {
  const int p = grid_size(grid);
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(p) + 1);
  offsets[0] = base;
  for (int b = 0; b < p; ++b) {
    const std::uint64_t bytes = util::checked_mul(
        sizeof(double), block_elements(dims, grid, b), "pario: block_offsets");
    offsets[static_cast<std::size_t>(b) + 1] = util::checked_add(
        offsets[static_cast<std::size_t>(b)], bytes, "pario: block_offsets");
  }
  return offsets;
}

tensor::Tensor read_blocked_ranges(const File& file, const tensor::Dims& dims,
                                   const std::vector<int>& grid,
                                   const std::vector<std::uint64_t>& offsets,
                                   const std::vector<util::Range>& ranges,
                                   const std::vector<std::uint64_t>& block_crcs) {
  const std::size_t order = dims.size();
  PT_REQUIRE(ranges.size() == order, "read_blocked_ranges: one range per mode");
  tensor::Dims out_dims(order);
  for (std::size_t n = 0; n < order; ++n) {
    PT_REQUIRE(ranges[n].lo <= ranges[n].hi && ranges[n].hi <= dims[n],
               "read_blocked_ranges: range out of bounds in mode " << n);
    out_dims[n] = ranges[n].size();
  }
  tensor::Tensor out(out_dims);
  if (out.size() == 0) return out;

  const int p = grid_size(grid);
  for (int b = 0; b < p; ++b) {
    const std::vector<util::Range> block = block_ranges(dims, grid, b);

    // Intersection of the request with this block.
    std::vector<util::Range> is(order);
    bool empty = false;
    bool whole = true;    // intersection == block == request
    bool covered = true;  // intersection == block (crc verifiable)
    for (std::size_t n = 0; n < order; ++n) {
      is[n] = {std::max(ranges[n].lo, block[n].lo),
               std::min(ranges[n].hi, block[n].hi)};
      if (is[n].lo >= is[n].hi) {
        empty = true;
        break;
      }
      covered = covered && is[n].lo == block[n].lo && is[n].hi == block[n].hi;
      whole = whole && covered && is[n].lo == ranges[n].lo &&
              is[n].hi == ranges[n].hi;
    }
    if (empty) continue;

    const bool verify =
        covered && static_cast<std::size_t>(b) < block_crcs.size();
    const std::uint64_t block_base = offsets[static_cast<std::size_t>(b)];
    if (whole) {  // grid-matched fast path: the block IS the request
      file.read_at(block_base, out.data(), out.size() * sizeof(double));
      if (verify) {
        verify_crc32c("pario", file, "block " + std::to_string(b), block_base,
                      block_crcs[static_cast<std::size_t>(b)],
                      util::crc32c(0, out.data(), out.size() * sizeof(double)));
      }
      return out;
    }

    // Strides of the block's dense layout and of the output tensor.
    std::vector<std::uint64_t> bstride(order), ostride(order);
    std::uint64_t bs = 1;
    std::uint64_t os = 1;
    for (std::size_t n = 0; n < order; ++n) {
      bstride[n] = bs;
      ostride[n] = os;
      bs *= block[n].size();
      os *= out_dims[n];
    }

    // pread every mode-0 run of the intersection straight into `out`.
    // Over a fully covered block the runs visit the block's bytes exactly
    // in order, so the stored CRC can be accumulated run by run.
    const std::size_t run = is[0].size();
    std::uint64_t src0 = is[0].lo - block[0].lo;
    std::uint64_t dst0 = is[0].lo - ranges[0].lo;
    std::vector<std::size_t> idx(order, 0);  // tail index within is[1..]
    std::size_t runs = 1;
    for (std::size_t n = 1; n < order; ++n) runs *= is[n].size();
    std::uint32_t crc = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      std::uint64_t src = src0;
      std::uint64_t dst = dst0;
      for (std::size_t n = 1; n < order; ++n) {
        src += (is[n].lo - block[n].lo + idx[n]) * bstride[n];
        dst += (is[n].lo - ranges[n].lo + idx[n]) * ostride[n];
      }
      file.read_at(block_base + src * sizeof(double), out.data() + dst,
                   run * sizeof(double));
      if (verify) {
        crc = util::crc32c(crc, out.data() + dst, run * sizeof(double));
      }
      for (std::size_t n = 1; n < order; ++n) {
        if (++idx[n] < is[n].size()) break;
        idx[n] = 0;
      }
    }
    if (verify) {
      verify_crc32c("pario", file, "block " + std::to_string(b), block_base,
                    block_crcs[static_cast<std::size_t>(b)], crc);
    }
  }
  return out;
}

/// --- header (de)serialization -------------------------------------------------

void HeaderWriter::magic(const char m[4]) { buf_.insert(buf_.end(), m, m + 4); }

void HeaderWriter::u64(std::uint64_t v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf_.insert(buf_.end(), p, p + sizeof(v));
}

void HeaderWriter::u64s(const std::vector<std::uint64_t>& v) {
  for (std::uint64_t x : v) u64(x);
}

void HeaderWriter::f64s(const double* data, std::size_t count) {
  const char* p = reinterpret_cast<const char*>(data);
  buf_.insert(buf_.end(), p, p + count * sizeof(double));
}

bool HeaderReader::try_magic(const char m[4]) {
  char buf[4] = {};
  file_.read_at(pos_, buf, 4);
  if (std::memcmp(buf, m, 4) != 0) return false;
  pos_ += 4;
  return true;
}

void HeaderReader::expect_magic(const char m[4]) {
  PT_REQUIRE(try_magic(m), "pario: bad magic in " << file_.path()
                                                  << " (expected "
                                                  << std::string(m, 4) << ")");
}

std::uint64_t HeaderReader::u64() {
  std::uint64_t v = 0;
  file_.read_at(pos_, &v, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::vector<std::uint64_t> HeaderReader::u64s(std::size_t count) {
  std::vector<std::uint64_t> v(count);
  if (count > 0) file_.read_at(pos_, v.data(), count * sizeof(std::uint64_t));
  pos_ += count * sizeof(std::uint64_t);
  return v;
}

void HeaderReader::f64s(double* out, std::size_t count) {
  if (count > 0) file_.read_at(pos_, out, count * sizeof(double));
  pos_ += count * sizeof(double);
}

std::vector<int> read_grid_shape(HeaderReader& reader, std::uint64_t order,
                                 const File& file) {
  const auto grid64 = reader.u64s(order);
  std::vector<int> grid(order);
  std::uint64_t ranks = 1;
  for (std::uint64_t n = 0; n < order; ++n) {
    PT_REQUIRE(grid64[n] >= 1 && grid64[n] <= kMaxGridRanks,
               "pario: implausible grid extent in " << file.path());
    grid[n] = static_cast<int>(grid64[n]);
    ranks *= grid64[n];
    PT_REQUIRE(ranks <= kMaxGridRanks,
               "pario: implausible grid in " << file.path());
  }
  return grid;
}

void validate_blocked_header(const char* what, const File& file,
                             const tensor::Dims& dims,
                             const std::vector<int>& grid,
                             const std::vector<std::uint64_t>& offsets,
                             std::uint64_t header_end, std::uint64_t limit) {
  PT_REQUIRE(!dims.empty() && dims.size() <= kMaxOrder,
             what << ": implausible order " << dims.size() << " in "
                  << file.path());
  PT_REQUIRE(dims.size() == grid.size(),
             what << ": dims/grid order mismatch in " << file.path());
  // Bound the dims before any size arithmetic: past this check every
  // element/byte product in the readers is exact in 64 bits.
  std::uint64_t elements = 1;
  for (std::size_t d : dims) {
    const std::uint64_t factor = std::max<std::uint64_t>(d, 1);
    PT_REQUIRE(d <= kMaxElements && elements <= kMaxElements / factor,
               what << ": implausible dims in " << file.path());
    elements *= factor;
  }
  std::uint64_t ranks = 1;
  for (int e : grid) {
    PT_REQUIRE(e >= 1, what << ": grid extent " << e << " < 1 in "
                            << file.path());
    ranks *= static_cast<std::uint64_t>(e);
    PT_REQUIRE(ranks <= kMaxGridRanks,
               what << ": implausible grid in " << file.path());
  }
  PT_REQUIRE(offsets.size() == ranks,
             what << ": offset table size mismatch in " << file.path());
  PT_REQUIRE(limit <= file.size(),
             what << ": blob limit past the end of " << file.path());
  for (std::uint64_t b = 0; b < ranks; ++b) {
    const std::uint64_t bytes =
        sizeof(double) * block_elements(dims, grid, static_cast<int>(b));
    PT_REQUIRE(offsets[b] >= header_end &&
                   offsets[b] + bytes >= offsets[b] &&  // no wraparound
                   offsets[b] + bytes <= limit,
               what << ": block " << b << " extends past the end of "
                    << file.path() << " (truncated or corrupt header)");
  }
}

}  // namespace ptucker::pario::detail
