#include "pario/model_io.hpp"

#include <cstring>

#include "pario/layout.hpp"
#include "util/crc32c.hpp"

namespace ptucker::pario {

namespace {
constexpr char kMagicModel[4] = {'P', 'T', 'Z', '1'};
constexpr std::uint64_t kVersionPlain = 1;  // no checksums
constexpr std::uint64_t kVersionCrc = 2;    // + core_crc[R] + factor_crc

/// Ceiling on the per-species stats count a header may claim; far above any
/// real species extent, small enough that the payload math stays exact.
constexpr std::uint64_t kMaxStatsCount = 1ull << 30;

std::uint64_t stats_bytes(std::size_t count) {
  return count == 0 ? 0
                    : sizeof(std::uint64_t) * 2 +
                          util::checked_mul(sizeof(double) * 2, count,
                                            "pario: PTZ1 stats");
}

/// Version 2 appends, after the core_offset table: one CRC32C u64 slot per
/// core block (written by the owning rank) and one factor_crc u64 over the
/// whole factor payload region.
std::uint64_t header_bytes(std::size_t order, std::uint64_t ranks,
                           std::size_t stats_count, bool crc) {
  const std::uint64_t words = util::checked_add(
      2 + 4 * order + 1 + (crc ? ranks + 1 : 0), ranks, "pario: PTZ1 header");
  return util::checked_add(
      4 + util::checked_mul(sizeof(std::uint64_t), words,
                            "pario: PTZ1 header"),
      stats_bytes(stats_count), "pario: PTZ1 header");
}

std::uint64_t factor_bytes(std::span<const tensor::Matrix> factors) {
  std::uint64_t bytes = 0;
  for (const tensor::Matrix& u : factors) {
    bytes = util::checked_add(
        bytes,
        util::checked_mul(sizeof(double), u.size(), "pario: PTZ1 factors"),
        "pario: PTZ1 factors");
  }
  return bytes;
}
}  // namespace

std::uint64_t ptz1_file_bytes(const tensor::Dims& core_dims,
                              const std::vector<int>& grid,
                              std::span<const tensor::Matrix> factors,
                              std::size_t stats_count) {
  const auto offsets = detail::block_offsets(core_dims, grid, 0);
  return util::checked_add(
      util::checked_add(
          header_bytes(core_dims.size(), offsets.size() - 1, stats_count,
                       write_checksums()),
          factor_bytes(factors), "pario: PTZ1 size"),
      offsets.back(), "pario: PTZ1 size");
}

bool is_ptz1(const std::string& path) {
  const File file = File::open_read(path);
  if (file.size() < 4) return false;
  char magic[4] = {};
  file.read_at(0, magic, 4);
  return std::memcmp(magic, kMagicModel, 4) == 0;
}

std::uint64_t write_model_at(const std::string& path, std::uint64_t base,
                             bool create, const dist::DistTensor& core,
                             std::span<const tensor::Matrix> factors,
                             const data::NormalizationStats* stats) {
  const mps::Comm& comm = core.comm();
  const std::size_t order = core.global_dims().size();
  PT_REQUIRE(factors.size() == order,
             "write_model: need one factor per mode");
  if (stats != nullptr) {
    PT_REQUIRE(stats->mean.size() == stats->stdev.size(),
               "write_model: stats mean/stdev size mismatch");
  }
  const std::size_t stats_count = stats == nullptr ? 0 : stats->mean.size();
  const std::uint64_t ranks = static_cast<std::uint64_t>(comm.size());
  const bool crc = write_checksums();
  const std::uint64_t head = header_bytes(order, ranks, stats_count, crc);
  const std::uint64_t data_base = head + factor_bytes(factors);
  // Offsets are blob-relative: base + offsets[b] is the absolute position.
  const auto offsets =
      detail::block_offsets(core.global_dims(), core.grid().shape(),
                            data_base);
  const std::uint64_t blob_bytes = offsets.back();
  const std::uint64_t end =
      util::checked_add(base, blob_bytes, "pario: PTZ1 blob end");

  if (comm.rank() == 0) {
    detail::HeaderWriter w;
    w.magic(kMagicModel);
    w.u64(crc ? kVersionCrc : kVersionPlain);
    w.u64(static_cast<std::uint64_t>(order));
    for (std::size_t d : core.global_dims()) w.u64(d);
    for (int e : core.grid().shape()) w.u64(static_cast<std::uint64_t>(e));
    for (const tensor::Matrix& u : factors) w.u64(u.rows());
    for (const tensor::Matrix& u : factors) w.u64(u.cols());
    w.u64(stats_count > 0 ? 1 : 0);
    if (stats_count > 0) {
      w.u64(static_cast<std::uint64_t>(stats->species_mode));
      w.u64(stats_count);
      w.f64s(stats->mean.data(), stats_count);
      w.f64s(stats->stdev.data(), stats_count);
    }
    for (std::uint64_t b = 0; b < ranks; ++b) w.u64(offsets[b]);
    if (crc) {
      // Core crc slots: zero-filled, overwritten by the owning ranks (an
      // empty block keeps 0 = crc32c of zero bytes). factor_crc covers the
      // factor payload region exactly as it is serialized below.
      for (std::uint64_t b = 0; b < ranks; ++b) w.u64(0);
      std::uint32_t fcrc = 0;
      for (const tensor::Matrix& u : factors) {
        fcrc = util::crc32c(fcrc, u.data(), u.size() * sizeof(double));
      }
      w.u64(fcrc);
    }
    for (const tensor::Matrix& u : factors) w.f64s(u.data(), u.size());
    PT_CHECK(w.size() == data_base, "pario: PTZ1 header size mismatch");
    File f = create ? File::create(path) : File::open_write(path);
    f.write_at(base, w.bytes().data(), w.bytes().size());
    f.truncate(end);
  }
  comm.barrier();
  if (core.local().size() > 0) {
    const File f = File::open_write(path);
    if (crc) {
      const std::uint64_t c64 = util::crc32c(
          0, core.local().data(), core.local().size() * sizeof(double));
      // The crc table sits ranks+1 u64s before the factor payloads.
      const std::uint64_t crc_table = head - sizeof(std::uint64_t) * (ranks + 1);
      f.write_at(base + crc_table +
                     sizeof(std::uint64_t) *
                         static_cast<std::uint64_t>(comm.rank()),
                 &c64, sizeof(c64));
    }
    f.write_at(base + offsets[static_cast<std::size_t>(comm.rank())],
               core.local().data(), core.local().size() * sizeof(double));
  }
  comm.barrier();
  return blob_bytes;
}

void write_model(const std::string& path, const dist::DistTensor& core,
                 std::span<const tensor::Matrix> factors,
                 const data::NormalizationStats* stats) {
  (void)write_model_at(path, 0, /*create=*/true, core, factors, stats);
}

namespace {

/// Everything of a PTZ1 blob except the core payload: the parsed + validated
/// header, the replicated factors/stats, and the absolute core-block offset
/// table. Shared by the distributed reader (each rank then preads only its
/// own block) and the grid-free local reader (which preads every block).
struct ParsedModel {
  tensor::Dims core_dims;
  std::vector<int> file_grid;
  std::vector<std::uint64_t> core_offsets;  ///< absolute file positions
  std::vector<std::uint64_t> core_crcs;     ///< empty for version-1 blobs
  std::vector<tensor::Matrix> factors;
  bool has_stats = false;
  data::NormalizationStats stats;
};

ParsedModel parse_model_blob(const File& file, std::uint64_t base,
                             std::uint64_t limit) {
  PT_REQUIRE(base <= limit && limit <= file.size(),
             "pario: PTZ1 blob bounds [" << base << ", " << limit
                                         << ") outside " << file.path());
  detail::HeaderReader reader(file, base);
  reader.expect_magic(kMagicModel);
  const std::uint64_t version = reader.u64();
  PT_REQUIRE(version == kVersionPlain || version == kVersionCrc,
             "pario: unsupported PTZ1 version " << version << " in "
                                                << file.path());
  const std::uint64_t order = reader.u64();
  PT_REQUIRE(order >= 1 && order <= detail::kMaxOrder,
             "pario: implausible order " << order << " in " << file.path());
  const auto dims64 = reader.u64s(order);
  ParsedModel model;
  model.core_dims.assign(dims64.begin(), dims64.end());
  model.file_grid = detail::read_grid_shape(reader, order, file);
  std::uint64_t ranks = 1;
  for (int e : model.file_grid) ranks *= static_cast<std::uint64_t>(e);
  const auto rows = reader.u64s(order);
  const auto cols = reader.u64s(order);

  model.has_stats = reader.u64() != 0;
  if (model.has_stats) {
    const std::uint64_t species_mode = reader.u64();
    PT_REQUIRE(species_mode < order,
               "pario: implausible stats species mode in " << file.path());
    model.stats.species_mode = static_cast<int>(species_mode);
    const std::uint64_t count = reader.u64();
    // Validate the claimed count against the blob bytes actually present
    // BEFORE resizing, so a truncated or hostile header throws instead of
    // triggering a huge allocation or a short read mid-parse.
    PT_REQUIRE(count <= kMaxStatsCount,
               "pario: implausible stats count in " << file.path());
    const std::uint64_t payload = 2 * sizeof(double) * count;
    PT_REQUIRE(reader.pos() + payload <= limit,
               "pario: stats record extends past the end of "
                   << file.path() << " (truncated or hostile header)");
    model.stats.mean.resize(count);
    model.stats.stdev.resize(count);
    reader.f64s(model.stats.mean.data(), count);
    reader.f64s(model.stats.stdev.data(), count);
  }
  const auto core_offsets64 = reader.u64s(ranks);
  std::uint64_t factor_crc = 0;
  if (version == kVersionCrc) {
    model.core_crcs = reader.u64s(ranks);
    factor_crc = reader.u64();
  }
  PT_REQUIRE(reader.pos() <= limit,
             "pario: PTZ1 header extends past the end of "
                 << file.path() << " (truncated or hostile header)");

  // Factors: replicated, so every rank reads them straight from the file.
  // Claimed shapes are cross-checked against the blob size before any
  // Matrix is allocated. In version 2 the stored factor_crc is accumulated
  // across the payloads as they stream in and verified at the end.
  model.factors.reserve(order);
  const std::uint64_t factor_base = reader.pos();
  std::uint64_t factor_pos = factor_base;
  std::uint32_t fcrc = 0;
  for (std::uint64_t n = 0; n < order; ++n) {
    PT_REQUIRE(rows[n] <= (1ull << 30) && cols[n] <= (1ull << 30) &&
                   rows[n] * cols[n] <= detail::kMaxElements,
               "pario: implausible factor shape in " << file.path());
    const std::uint64_t fbytes = sizeof(double) * rows[n] * cols[n];
    PT_REQUIRE(factor_pos + fbytes <= limit,
               "pario: factor " << n << " extends past the end of "
                                << file.path()
                                << " (truncated or hostile header)");
    tensor::Matrix u(rows[n], cols[n]);
    if (u.size() > 0) {
      file.read_at(factor_pos, u.data(), fbytes);
      if (version == kVersionCrc) {
        fcrc = util::crc32c(fcrc, u.data(), fbytes);
      }
    }
    factor_pos += fbytes;
    model.factors.push_back(std::move(u));
  }
  if (version == kVersionCrc) {
    detail::verify_crc32c("pario(PTZ1)", file, "factor region", factor_base,
                          factor_crc, fcrc);
  }
  // Shift the blob-relative core offsets to absolute file positions.
  model.core_offsets.resize(core_offsets64.size());
  for (std::size_t b = 0; b < core_offsets64.size(); ++b) {
    model.core_offsets[b] =
        util::checked_add(base, core_offsets64[b], "pario: PTZ1 core offset");
  }
  detail::validate_blocked_header("pario(PTZ1)", file, model.core_dims,
                                  model.file_grid, model.core_offsets,
                                  factor_pos, limit);
  return model;
}

}  // namespace

ModelData read_model_at(const File& file, std::uint64_t base,
                        std::uint64_t limit,
                        std::shared_ptr<mps::CartGrid> grid) {
  PT_REQUIRE(grid != nullptr, "read_model: null grid");
  ParsedModel parsed = parse_model_blob(file, base, limit);
  PT_REQUIRE(static_cast<int>(parsed.core_dims.size()) == grid->order(),
             "read_model: file order " << parsed.core_dims.size()
                                       << " != grid order " << grid->order());
  ModelData model;
  model.factors = std::move(parsed.factors);
  model.has_stats = parsed.has_stats;
  model.stats = std::move(parsed.stats);

  // Core: every rank preads its own block out of the writer's layout.
  model.core = dist::DistTensor(std::move(grid), parsed.core_dims);
  if (model.core.local().size() > 0) {
    std::vector<util::Range> mine(parsed.core_dims.size());
    for (int n = 0; n < model.core.order(); ++n) {
      mine[static_cast<std::size_t>(n)] = model.core.mode_range(n);
    }
    model.core.local() = detail::read_blocked_ranges(
        file, parsed.core_dims, parsed.file_grid, parsed.core_offsets, mine,
        parsed.core_crcs);
  }
  return model;
}

LocalModelData read_model_local_at(const File& file, std::uint64_t base,
                                   std::uint64_t limit) {
  ParsedModel parsed = parse_model_blob(file, base, limit);
  LocalModelData model;
  model.factors = std::move(parsed.factors);
  model.has_stats = parsed.has_stats;
  model.stats = std::move(parsed.stats);
  // The full core: the same positioned-read machinery the distributed path
  // uses for one rank's block, asked for the whole hyper-rectangle — so the
  // assembled tensor is byte-identical to a 1-rank distributed load.
  std::vector<util::Range> all(parsed.core_dims.size());
  for (std::size_t n = 0; n < parsed.core_dims.size(); ++n) {
    all[n] = util::Range{0, parsed.core_dims[n]};
  }
  model.core = detail::read_blocked_ranges(file, parsed.core_dims,
                                           parsed.file_grid,
                                           parsed.core_offsets, all,
                                           parsed.core_crcs);
  return model;
}

ModelData read_model(const std::string& path,
                     std::shared_ptr<mps::CartGrid> grid) {
  const File file = File::open_read(path);
  return read_model_at(file, 0, file.size(), std::move(grid));
}

}  // namespace ptucker::pario
