#include "pario/archive_io.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>

#include "pario/layout.hpp"
#include "util/crc32c.hpp"

namespace ptucker::pario {

namespace {
constexpr char kMagicArchive[4] = {'P', 'T', 'A', '1'};
constexpr std::uint64_t kVersionPlain = 1;  // 5-u64 slots, no checksums
constexpr std::uint64_t kVersionCrc = 2;    // 6-u64 slots with slot_crc

/// Bytes of one entry-table slot: step_first, step_count, eps, byte_offset,
/// byte_count (eps is an f64, same width) — plus, in version 2, a CRC32C
/// over those five fields in the low 32 bits of a sixth u64.
std::uint64_t slot_bytes(bool crc) {
  return (crc ? 6 : 5) * sizeof(std::uint64_t);
}
constexpr std::uint64_t kSlotPayloadBytes = 5 * sizeof(std::uint64_t);

/// Ceiling on the table capacity a header may claim (a 2^20-slot table is
/// 40 MiB — far beyond any realistic run, small enough to parse safely).
constexpr std::uint64_t kMaxCapacity = 1ull << 20;

constexpr char kMagicCont[4] = {'P', 'T', 'A', 'C'};
/// Continuation-table prefix: magic + capacity + header_check + entry_count.
constexpr std::uint64_t kContPrefixBytes = 4 + 3 * sizeof(std::uint64_t);

std::atomic<std::size_t> g_archive_hard_cap{
    static_cast<std::size_t>(kMaxCapacity)};

/// Byte offset of the entry_count field (the commit point).
std::uint64_t count_field_offset(std::size_t step_order) {
  // magic + version + order + step_dims + species_mode + capacity
  return 4 + sizeof(std::uint64_t) * (2 + step_order + 2);
}

std::uint64_t slot_offset(std::size_t step_order, std::size_t slot,
                          bool crc) {
  return count_field_offset(step_order) + sizeof(std::uint64_t) +
         slot * slot_bytes(crc);
}

std::uint64_t archive_header_bytes(std::size_t step_order,
                                   std::uint64_t capacity, bool crc) {
  return slot_offset(step_order, capacity, crc);
}

/// One entry table of the chain: the primary (inside the PTA1 header) or a
/// PTAC continuation block materialized mid-file.
struct TableRef {
  std::uint64_t header_off = 0;  ///< file offset of the PTAC block (primary: 0)
  std::uint64_t capacity = 0;
  std::uint64_t count = 0;  ///< committed entries in this table
  bool primary = false;
};

std::uint64_t table_count_offset(const TableRef& t, std::size_t step_order) {
  return t.primary ? count_field_offset(step_order)
                   : t.header_off + 4 + 2 * sizeof(std::uint64_t);
}

std::uint64_t table_slot_offset(const TableRef& t, std::size_t step_order,
                                std::uint64_t slot, bool crc) {
  return t.primary ? slot_offset(step_order, slot, crc)
                   : t.header_off + kContPrefixBytes + slot * slot_bytes(crc);
}

std::uint64_t table_header_end(const TableRef& t, std::size_t step_order,
                               bool crc) {
  return table_slot_offset(t, step_order, t.capacity, crc);
}

/// Minimal parsed header state shared by the reader and the appender. Both
/// parse independently on every rank — the file is the only coordination.
struct ParsedArchive {
  tensor::Dims step_dims;
  std::uint64_t species_mode = kArchiveNoSpecies;
  std::uint64_t capacity = 0;  ///< primary-table capacity (the create arg)
  bool crc = false;            ///< version 2: checksummed table slots
  std::vector<TableRef> tables;  ///< primary first, then the followed chain
  std::vector<ArchiveEntry> entries;  ///< all committed entries, chain order
  std::uint64_t blob_end = 0;  ///< where the next blob (or table) would go
};

/// Sniff \p off for a continuation-table header. Returns false — chain ends,
/// exactly like a clean EOF — for anything a torn table *creation* could
/// leave behind: short file, wrong magic, implausible capacity, or a bad
/// header_check (version 2; version 1 writes zero and cannot check).
bool sniff_continuation(const File& file, std::uint64_t off, bool crc,
                        TableRef& out) {
  if (file.size() < off + kContPrefixBytes) return false;
  unsigned char hdr[kContPrefixBytes];
  file.read_at(off, hdr, kContPrefixBytes);
  if (std::memcmp(hdr, kMagicCont, 4) != 0) return false;
  std::uint64_t capacity = 0;
  std::uint64_t check = 0;
  std::memcpy(&capacity, hdr + 4, sizeof(capacity));
  std::memcpy(&check, hdr + 12, sizeof(check));
  if (capacity < 1 || capacity > kMaxCapacity) return false;
  if (crc && check != util::crc32c(0, hdr, 12)) return false;
  out.header_off = off;
  out.capacity = capacity;
  std::memcpy(&out.count, hdr + 20, sizeof(out.count));
  out.primary = false;
  return true;
}

/// Validate and collect table \p t's committed slots: blobs packed
/// contiguously from \p expect_offset (the table's header end), windows
/// contiguous from \p expect_step. Uncommitted slots are ignored (a crash
/// mid-append may have left a slot written with the count not yet bumped).
void parse_table_slots(const File& file, const TableRef& t,
                       std::size_t step_order, bool crc,
                       std::uint64_t& expect_offset,
                       std::uint64_t& expect_step,
                       std::vector<ArchiveEntry>& entries) {
  for (std::uint64_t i = 0; i < t.count; ++i) {
    const std::size_t e = entries.size();  // chain-global index, for messages
    const std::uint64_t off = table_slot_offset(t, step_order, i, crc);
    std::uint64_t v[6] = {};
    file.read_at(off, v, slot_bytes(crc));
    if (crc) {
      detail::verify_crc32c("pario(PTA1)", file,
                            "table slot " + std::to_string(e), off, v[5],
                            util::crc32c(0, v, kSlotPayloadBytes));
    }
    ArchiveEntry ent;
    ent.step_first = v[0];
    ent.step_count = v[1];
    std::memcpy(&ent.eps, &v[2], sizeof(double));
    ent.byte_offset = v[3];
    ent.byte_count = v[4];
    PT_REQUIRE(ent.step_first == expect_step && ent.step_count >= 1,
               "pario: entry " << e << " breaks the contiguous step order in "
                               << file.path());
    PT_REQUIRE(ent.byte_offset == expect_offset && ent.byte_count >= 1,
               "pario: entry " << e << " breaks the packed blob layout in "
                               << file.path());
    const std::uint64_t end = util::checked_add(
        ent.byte_offset, ent.byte_count, "pario: PTA1 entry end");
    PT_REQUIRE(end <= file.size(),
               "pario: entry " << e << " extends past the end of "
                               << file.path()
                               << " (truncated or corrupt archive)");
    expect_offset = end;
    expect_step = util::checked_add(ent.step_first, ent.step_count,
                                    "pario: PTA1 step range");
    entries.push_back(ent);
  }
}

ParsedArchive parse_archive(const File& file) {
  detail::HeaderReader reader(file);
  reader.expect_magic(kMagicArchive);
  const std::uint64_t version = reader.u64();
  PT_REQUIRE(version == kVersionPlain || version == kVersionCrc,
             "pario: unsupported PTA1 version " << version << " in "
                                                << file.path());
  const std::uint64_t order = reader.u64();
  PT_REQUIRE(order >= 2 && order <= detail::kMaxOrder,
             "pario: implausible model order " << order << " in "
                                               << file.path());
  const std::size_t step_order = static_cast<std::size_t>(order) - 1;
  const auto dims64 = reader.u64s(step_order);
  ParsedArchive a;
  a.step_dims.assign(dims64.begin(), dims64.end());
  std::uint64_t elements = 1;
  for (std::size_t d : a.step_dims) {
    const std::uint64_t factor = std::max<std::uint64_t>(d, 1);
    PT_REQUIRE(d >= 1 && d <= detail::kMaxElements &&
                   elements <= detail::kMaxElements / factor,
               "pario: implausible step dims in " << file.path());
    elements *= factor;
  }
  a.species_mode = reader.u64();
  PT_REQUIRE(a.species_mode == kArchiveNoSpecies ||
                 a.species_mode < step_order,
             "pario: implausible species mode in " << file.path());
  a.capacity = reader.u64();
  a.crc = version == kVersionCrc;
  PT_REQUIRE(a.capacity >= 1 && a.capacity <= kMaxCapacity,
             "pario: implausible table capacity in " << file.path());
  const std::uint64_t count = reader.u64();
  PT_REQUIRE(count <= a.capacity,
             "pario: entry count " << count << " exceeds capacity "
                                   << a.capacity << " in " << file.path());
  const std::uint64_t header_end =
      archive_header_bytes(step_order, a.capacity, a.crc);
  PT_REQUIRE(file.size() >= header_end,
             "pario: truncated PTA1 header in " << file.path());

  TableRef primary;
  primary.capacity = a.capacity;
  primary.count = count;
  primary.primary = true;
  std::uint64_t expect_offset = header_end;
  std::uint64_t expect_step = 0;
  parse_table_slots(file, primary, step_order, a.crc, expect_offset,
                    expect_step, a.entries);
  a.tables.push_back(primary);

  // Follow the continuation chain: a full table hands off to a PTAC block
  // at its last blob's end. A sniff miss there is the end of the chain —
  // a crash while materializing a table must look exactly like never having
  // grown. Once a header passes the sniff, though, its contents are
  // committed state and corruption is fatal, like any committed slot.
  while (a.tables.back().count == a.tables.back().capacity) {
    TableRef next;
    if (!sniff_continuation(file, expect_offset, a.crc, next)) break;
    PT_REQUIRE(next.count <= next.capacity,
               "pario: continuation entry count "
                   << next.count << " exceeds capacity " << next.capacity
                   << " in " << file.path());
    const std::uint64_t next_end =
        table_header_end(next, step_order, a.crc);
    if (next.count == 0 && file.size() < next_end) break;  // torn creation
    PT_REQUIRE(file.size() >= next_end,
               "pario: truncated continuation table in " << file.path());
    expect_offset = next_end;
    parse_table_slots(file, next, step_order, a.crc, expect_offset,
                      expect_step, a.entries);
    a.tables.push_back(next);
  }
  a.blob_end = expect_offset;
  return a;
}

}  // namespace

bool is_pta1(const std::string& path) {
  const File file = File::open_read(path);
  if (file.size() < 4) return false;
  char magic[4] = {};
  file.read_at(0, magic, 4);
  return std::memcmp(magic, kMagicArchive, 4) == 0;
}

void archive_create(const std::string& path, const mps::Comm& comm,
                    const tensor::Dims& step_dims, int species_mode,
                    std::size_t entry_capacity) {
  PT_REQUIRE(!step_dims.empty() &&
                 step_dims.size() + 1 <= detail::kMaxOrder,
             "archive_create: implausible step order " << step_dims.size());
  for (std::size_t d : step_dims) {
    PT_REQUIRE(d >= 1, "archive_create: zero step dim");
  }
  PT_REQUIRE(species_mode < static_cast<int>(step_dims.size()),
             "archive_create: species mode " << species_mode
                                             << " out of step order");
  PT_REQUIRE(entry_capacity >= 1 && entry_capacity <= kMaxCapacity,
             "archive_create: implausible capacity " << entry_capacity);
  if (comm.rank() == 0) {
    const bool crc = write_checksums();
    detail::HeaderWriter w;
    w.magic(kMagicArchive);
    w.u64(crc ? kVersionCrc : kVersionPlain);
    w.u64(static_cast<std::uint64_t>(step_dims.size()) + 1);
    for (std::size_t d : step_dims) w.u64(d);
    w.u64(species_mode < 0 ? kArchiveNoSpecies
                           : static_cast<std::uint64_t>(species_mode));
    w.u64(static_cast<std::uint64_t>(entry_capacity));
    w.u64(0);  // entry_count: nothing committed yet
    File f = File::create(path);
    f.write_at(0, w.bytes().data(), w.bytes().size());
    // Size the file to the full header so every table slot exists and the
    // first blob lands at a stable offset.
    f.truncate(archive_header_bytes(step_dims.size(), entry_capacity, crc));
  }
  comm.barrier();
}

void set_archive_hard_cap(std::size_t cap) {
  PT_REQUIRE(cap >= 1, "set_archive_hard_cap: zero cap");
  g_archive_hard_cap.store(cap, std::memory_order_relaxed);
}

std::size_t archive_hard_cap() {
  return g_archive_hard_cap.load(std::memory_order_relaxed);
}

void archive_append_models(const std::string& path,
                           std::span<const ArchiveWindow> windows) {
  PT_REQUIRE(!windows.empty(), "archive_append: empty window batch");
  PT_REQUIRE(windows[0].core != nullptr, "archive_append: null core");
  const mps::Comm& comm = windows[0].core->comm();
  ParsedArchive a;
  {
    const File file = File::open_read(path);
    a = parse_archive(file);
  }
  // Every rank must finish parsing before any rank modifies the file: a
  // continuation header written below is parse-visible (the sniff needs no
  // committed count), so without this fence a slow parser could see a
  // table its peers decided to materialize and diverge on the collective
  // schedule.
  comm.barrier();
  const std::size_t step_order = a.step_dims.size();

  // Validate the whole batch before touching the file: shapes against the
  // shared header, windows mutually contiguous and continuing step_end.
  std::uint64_t expect_step =
      a.entries.empty() ? 0 : a.entries.back().step_end();
  for (const ArchiveWindow& win : windows) {
    PT_REQUIRE(win.core != nullptr, "archive_append: null core");
    PT_REQUIRE(win.factors.size() == step_order + 1,
               "archive_append: model order " << win.factors.size()
                                              << " != step order + 1");
    for (std::size_t n = 0; n < step_order; ++n) {
      PT_REQUIRE(win.factors[n].rows() == a.step_dims[n],
                 "archive_append: factor " << n << " rows "
                                           << win.factors[n].rows()
                                           << " != archive step dim "
                                           << a.step_dims[n]);
    }
    const std::uint64_t step_count = win.factors[step_order].rows();
    PT_REQUIRE(step_count >= 1, "archive_append: empty time window");
    PT_REQUIRE(win.step_first == expect_step,
               "archive_append: window starts at step "
                   << win.step_first << " but the archive ends at step "
                   << expect_step << " (windows must be contiguous)");
    expect_step += step_count;
  }
  const std::size_t hard_cap = archive_hard_cap();
  if (a.entries.size() + windows.size() > hard_cap) {
    std::ostringstream os;
    os << "archive_append: " << path << " is full — " << a.entries.size()
       << " committed entries plus " << windows.size()
       << " new would exceed the hard cap of " << hard_cap
       << " (the entry_capacity chosen at archive_create chains "
          "automatically; raise pario::set_archive_hard_cap to let this "
          "archive grow further)";
    throw ArchiveFull(os.str());
  }

  // Write every payload (and any continuation table the batch grows into)
  // first; slots and counts are committed together afterwards. Every rank
  // derives identical placement from the same committed header, so the only
  // coordination is the barriers inside the collective writes.
  struct PendingSlot {
    std::size_t table;  ///< index into a.tables
    std::uint64_t slot;
    std::uint64_t step_first;
    std::uint64_t step_count;
    double eps;
    std::uint64_t byte_offset;
    std::uint64_t byte_count;
  };
  std::vector<PendingSlot> pending;
  pending.reserve(windows.size());
  std::vector<std::uint64_t> new_counts(a.tables.size());
  for (std::size_t t = 0; t < a.tables.size(); ++t) {
    new_counts[t] = a.tables[t].count;
  }
  std::uint64_t cursor = a.blob_end;
  for (const ArchiveWindow& win : windows) {
    if (new_counts.back() == a.tables.back().capacity) {
      // The active table is full: materialize a continuation table where
      // this blob would have gone. Not a commit point — its count is zero
      // and nothing references it until the final count writes — so a torn
      // creation is recoverable (the sniff rejects it and a later append
      // rewrites the header at the same offset). Capacity granule: the
      // primary capacity. The truncate sizes the file to the exact header
      // end, zero-filling the slots and discarding any torn garbage past
      // the last committed blob.
      TableRef next;
      next.header_off = cursor;
      next.capacity = a.capacity;
      if (comm.rank() == 0) {
        detail::HeaderWriter w;
        w.magic(kMagicCont);
        w.u64(next.capacity);
        w.u64(a.crc ? util::crc32c(0, w.bytes().data(), 12) : 0);
        w.u64(0);  // entry_count: nothing committed yet
        const File f = File::open_write(path);
        f.write_at(cursor, w.bytes().data(), w.bytes().size());
        f.truncate(table_header_end(next, step_order, a.crc));
      }
      comm.barrier();
      a.tables.push_back(next);
      new_counts.push_back(0);
      cursor = table_header_end(next, step_order, a.crc);
    }
    // Payload: block-parallel, exactly like write_model (rank 0 writes the
    // blob header and extends the file; every rank pwrites its core block).
    const std::uint64_t blob_bytes = write_model_at(
        path, cursor, /*create=*/false, *win.core, win.factors, win.stats);
    PendingSlot slot;
    slot.table = a.tables.size() - 1;
    slot.slot = new_counts.back()++;
    slot.step_first = win.step_first;
    slot.step_count = win.factors[step_order].rows();
    slot.eps = win.eps;
    slot.byte_offset = cursor;
    slot.byte_count = blob_bytes;
    pending.push_back(slot);
    cursor += blob_bytes;
  }

  // Commit: one bracketing fsync pair for the whole batch — sync the
  // payloads (and any new table headers), write every slot, sync, then
  // write the new counts, sync. Counts are the only commit points, so a
  // crash anywhere commits either the whole batch or none of it: payload
  // and slot bytes past the committed counts are unreferenced garbage.
  if (comm.rank() == 0) {
    const File f = File::open_write(path);
    f.sync();
    for (const PendingSlot& slot : pending) {
      detail::HeaderWriter w;
      w.u64(slot.step_first);
      w.u64(slot.step_count);
      std::uint64_t eps_bits = 0;
      std::memcpy(&eps_bits, &slot.eps, sizeof(double));
      w.u64(eps_bits);
      w.u64(slot.byte_offset);
      w.u64(slot.byte_count);
      if (a.crc) {
        // slot_crc covers the five fields exactly as serialized above, so
        // a torn slot write can never masquerade as a valid entry.
        w.u64(util::crc32c(0, w.bytes().data(), w.bytes().size()));
      }
      f.write_at(table_slot_offset(a.tables[slot.table], step_order,
                                   slot.slot, a.crc),
                 w.bytes().data(), w.bytes().size());
    }
    f.sync();
    for (std::size_t t = 0; t < a.tables.size(); ++t) {
      if (new_counts[t] == a.tables[t].count) continue;
      f.write_at(table_count_offset(a.tables[t], step_order), &new_counts[t],
                 sizeof(new_counts[t]));
    }
    f.sync();
  }
  comm.barrier();
}

void archive_append_model(const std::string& path, std::uint64_t step_first,
                          double eps, const dist::DistTensor& core,
                          std::span<const tensor::Matrix> factors,
                          const data::NormalizationStats* stats) {
  ArchiveWindow win;
  win.step_first = step_first;
  win.eps = eps;
  win.core = &core;
  win.factors = factors;
  win.stats = stats;
  archive_append_models(path, std::span<const ArchiveWindow>(&win, 1));
}

ArchiveReader::ArchiveReader(const std::string& path)
    : file_(File::open_read(path)) {
  ParsedArchive a = parse_archive(file_);
  step_dims_ = std::move(a.step_dims);
  species_mode_ = a.species_mode;
  capacity_ = static_cast<std::size_t>(a.capacity);
  for (const TableRef& t : a.tables) {
    total_capacity_ += static_cast<std::size_t>(t.capacity);
  }
  entries_ = std::move(a.entries);
}

int ArchiveReader::species_mode() const {
  return species_mode_ == kArchiveNoSpecies
             ? -1
             : static_cast<int>(species_mode_);
}

std::vector<std::size_t> ArchiveReader::covering(std::uint64_t lo,
                                                 std::uint64_t hi) const {
  PT_REQUIRE(lo < hi, "archive: empty step range [" << lo << ", " << hi
                                                    << ")");
  PT_REQUIRE(hi <= step_end(),
             "archive: step range [" << lo << ", " << hi
                                     << ") beyond archived steps [0, "
                                     << step_end() << ")");
  std::vector<std::size_t> hits;
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    if (entries_[e].step_first < hi && entries_[e].step_end() > lo) {
      hits.push_back(e);
    }
  }
  return hits;
}

void ArchiveReader::check_entry_shape(
    std::size_t e, std::span<const tensor::Matrix> factors) const {
  // Defense in depth: the blob must actually be a model of this archive's
  // shared shape.
  const ArchiveEntry& ent = entry(e);
  PT_REQUIRE(factors.size() == step_dims_.size() + 1,
             "archive: entry " << e << " order mismatch in " << file_.path());
  for (std::size_t n = 0; n < step_dims_.size(); ++n) {
    PT_REQUIRE(factors[n].rows() == step_dims_[n],
               "archive: entry " << e << " spatial dims mismatch in "
                                 << file_.path());
  }
  PT_REQUIRE(factors.back().rows() == ent.step_count,
             "archive: entry " << e << " time extent mismatch in "
                               << file_.path());
}

ModelData ArchiveReader::read_entry(std::size_t e,
                                    std::shared_ptr<mps::CartGrid> grid)
    const {
  const ArchiveEntry& ent = entry(e);
  ModelData model = read_model_at(file_, ent.byte_offset,
                                  ent.byte_offset + ent.byte_count,
                                  std::move(grid));
  check_entry_shape(e, std::span<const tensor::Matrix>(model.factors));
  return model;
}

LocalModelData ArchiveReader::read_entry_local(std::size_t e) const {
  const ArchiveEntry& ent = entry(e);
  LocalModelData model = read_model_local_at(
      file_, ent.byte_offset, ent.byte_offset + ent.byte_count);
  check_entry_shape(e, std::span<const tensor::Matrix>(model.factors));
  return model;
}

}  // namespace ptucker::pario
