#include "pario/archive_io.hpp"

#include <cstring>
#include <string>

#include "pario/layout.hpp"
#include "util/crc32c.hpp"

namespace ptucker::pario {

namespace {
constexpr char kMagicArchive[4] = {'P', 'T', 'A', '1'};
constexpr std::uint64_t kVersionPlain = 1;  // 5-u64 slots, no checksums
constexpr std::uint64_t kVersionCrc = 2;    // 6-u64 slots with slot_crc

/// Bytes of one entry-table slot: step_first, step_count, eps, byte_offset,
/// byte_count (eps is an f64, same width) — plus, in version 2, a CRC32C
/// over those five fields in the low 32 bits of a sixth u64.
std::uint64_t slot_bytes(bool crc) {
  return (crc ? 6 : 5) * sizeof(std::uint64_t);
}
constexpr std::uint64_t kSlotPayloadBytes = 5 * sizeof(std::uint64_t);

/// Ceiling on the table capacity a header may claim (a 2^20-slot table is
/// 40 MiB — far beyond any realistic run, small enough to parse safely).
constexpr std::uint64_t kMaxCapacity = 1ull << 20;

/// Byte offset of the entry_count field (the commit point).
std::uint64_t count_field_offset(std::size_t step_order) {
  // magic + version + order + step_dims + species_mode + capacity
  return 4 + sizeof(std::uint64_t) * (2 + step_order + 2);
}

std::uint64_t slot_offset(std::size_t step_order, std::size_t slot,
                          bool crc) {
  return count_field_offset(step_order) + sizeof(std::uint64_t) +
         slot * slot_bytes(crc);
}

std::uint64_t archive_header_bytes(std::size_t step_order,
                                   std::uint64_t capacity, bool crc) {
  return slot_offset(step_order, capacity, crc);
}

/// Minimal parsed header state shared by the reader and the appender. Both
/// parse independently on every rank — the file is the only coordination.
struct ParsedArchive {
  tensor::Dims step_dims;
  std::uint64_t species_mode = kArchiveNoSpecies;
  std::uint64_t capacity = 0;
  bool crc = false;  ///< version 2: checksummed table slots
  std::vector<ArchiveEntry> entries;
};

ParsedArchive parse_archive(const File& file) {
  detail::HeaderReader reader(file);
  reader.expect_magic(kMagicArchive);
  const std::uint64_t version = reader.u64();
  PT_REQUIRE(version == kVersionPlain || version == kVersionCrc,
             "pario: unsupported PTA1 version " << version << " in "
                                                << file.path());
  const std::uint64_t order = reader.u64();
  PT_REQUIRE(order >= 2 && order <= detail::kMaxOrder,
             "pario: implausible model order " << order << " in "
                                               << file.path());
  const std::size_t step_order = static_cast<std::size_t>(order) - 1;
  const auto dims64 = reader.u64s(step_order);
  ParsedArchive a;
  a.step_dims.assign(dims64.begin(), dims64.end());
  std::uint64_t elements = 1;
  for (std::size_t d : a.step_dims) {
    const std::uint64_t factor = std::max<std::uint64_t>(d, 1);
    PT_REQUIRE(d >= 1 && d <= detail::kMaxElements &&
                   elements <= detail::kMaxElements / factor,
               "pario: implausible step dims in " << file.path());
    elements *= factor;
  }
  a.species_mode = reader.u64();
  PT_REQUIRE(a.species_mode == kArchiveNoSpecies ||
                 a.species_mode < step_order,
             "pario: implausible species mode in " << file.path());
  a.capacity = reader.u64();
  a.crc = version == kVersionCrc;
  PT_REQUIRE(a.capacity >= 1 && a.capacity <= kMaxCapacity,
             "pario: implausible table capacity in " << file.path());
  const std::uint64_t count = reader.u64();
  PT_REQUIRE(count <= a.capacity,
             "pario: entry count " << count << " exceeds capacity "
                                   << a.capacity << " in " << file.path());
  const std::uint64_t header_end =
      archive_header_bytes(step_order, a.capacity, a.crc);
  PT_REQUIRE(file.size() >= header_end,
             "pario: truncated PTA1 header in " << file.path());

  // Validate every committed slot: blobs packed contiguously after the
  // header, windows contiguous from step 0. Uncommitted slots are ignored
  // (a crash mid-append may have left slot K written with count still K).
  a.entries.resize(count);
  std::uint64_t expect_offset = header_end;
  std::uint64_t expect_step = 0;
  for (std::uint64_t e = 0; e < count; ++e) {
    const std::uint64_t off = slot_offset(step_order, e, a.crc);
    std::uint64_t v[6] = {};
    file.read_at(off, v, slot_bytes(a.crc));
    if (a.crc) {
      detail::verify_crc32c("pario(PTA1)", file,
                            "table slot " + std::to_string(e), off, v[5],
                            util::crc32c(0, v, kSlotPayloadBytes));
    }
    ArchiveEntry& ent = a.entries[e];
    ent.step_first = v[0];
    ent.step_count = v[1];
    std::memcpy(&ent.eps, &v[2], sizeof(double));
    ent.byte_offset = v[3];
    ent.byte_count = v[4];
    PT_REQUIRE(ent.step_first == expect_step && ent.step_count >= 1,
               "pario: entry " << e << " breaks the contiguous step order in "
                               << file.path());
    PT_REQUIRE(ent.byte_offset == expect_offset && ent.byte_count >= 1,
               "pario: entry " << e << " breaks the packed blob layout in "
                               << file.path());
    const std::uint64_t end = util::checked_add(
        ent.byte_offset, ent.byte_count, "pario: PTA1 entry end");
    PT_REQUIRE(end <= file.size(),
               "pario: entry " << e << " extends past the end of "
                               << file.path()
                               << " (truncated or corrupt archive)");
    expect_offset = end;
    expect_step = util::checked_add(ent.step_first, ent.step_count,
                                    "pario: PTA1 step range");
  }
  return a;
}

}  // namespace

bool is_pta1(const std::string& path) {
  const File file = File::open_read(path);
  if (file.size() < 4) return false;
  char magic[4] = {};
  file.read_at(0, magic, 4);
  return std::memcmp(magic, kMagicArchive, 4) == 0;
}

void archive_create(const std::string& path, const mps::Comm& comm,
                    const tensor::Dims& step_dims, int species_mode,
                    std::size_t entry_capacity) {
  PT_REQUIRE(!step_dims.empty() &&
                 step_dims.size() + 1 <= detail::kMaxOrder,
             "archive_create: implausible step order " << step_dims.size());
  for (std::size_t d : step_dims) {
    PT_REQUIRE(d >= 1, "archive_create: zero step dim");
  }
  PT_REQUIRE(species_mode < static_cast<int>(step_dims.size()),
             "archive_create: species mode " << species_mode
                                             << " out of step order");
  PT_REQUIRE(entry_capacity >= 1 && entry_capacity <= kMaxCapacity,
             "archive_create: implausible capacity " << entry_capacity);
  if (comm.rank() == 0) {
    const bool crc = write_checksums();
    detail::HeaderWriter w;
    w.magic(kMagicArchive);
    w.u64(crc ? kVersionCrc : kVersionPlain);
    w.u64(static_cast<std::uint64_t>(step_dims.size()) + 1);
    for (std::size_t d : step_dims) w.u64(d);
    w.u64(species_mode < 0 ? kArchiveNoSpecies
                           : static_cast<std::uint64_t>(species_mode));
    w.u64(static_cast<std::uint64_t>(entry_capacity));
    w.u64(0);  // entry_count: nothing committed yet
    File f = File::create(path);
    f.write_at(0, w.bytes().data(), w.bytes().size());
    // Size the file to the full header so every table slot exists and the
    // first blob lands at a stable offset.
    f.truncate(archive_header_bytes(step_dims.size(), entry_capacity, crc));
  }
  comm.barrier();
}

void archive_append_model(const std::string& path, std::uint64_t step_first,
                          double eps, const dist::DistTensor& core,
                          std::span<const tensor::Matrix> factors,
                          const data::NormalizationStats* stats) {
  const mps::Comm& comm = core.comm();
  ParsedArchive a;
  {
    const File file = File::open_read(path);
    a = parse_archive(file);
  }
  const std::size_t step_order = a.step_dims.size();
  PT_REQUIRE(factors.size() == step_order + 1,
             "archive_append: model order " << factors.size()
                                            << " != step order + 1");
  for (std::size_t n = 0; n < step_order; ++n) {
    PT_REQUIRE(factors[n].rows() == a.step_dims[n],
               "archive_append: factor " << n << " rows "
                                         << factors[n].rows()
                                         << " != archive step dim "
                                         << a.step_dims[n]);
  }
  const std::uint64_t step_count = factors[step_order].rows();
  PT_REQUIRE(step_count >= 1, "archive_append: empty time window");
  const std::uint64_t expect_step =
      a.entries.empty() ? 0 : a.entries.back().step_end();
  PT_REQUIRE(step_first == expect_step,
             "archive_append: window starts at step "
                 << step_first << " but the archive ends at step "
                 << expect_step << " (windows must be contiguous)");
  if (a.entries.size() >= a.capacity) {
    std::ostringstream os;
    os << "archive_append: " << path << " is full — all " << a.capacity
       << " entry_capacity table slots are committed; recreate the archive "
          "with archive_create(..., entry_capacity > "
       << a.capacity << ") to hold more windows";
    throw ArchiveFull(os.str());
  }

  // Placement: blobs are packed, so the new entry starts where the last
  // one ends. Every rank derives this from the same committed header.
  const std::uint64_t base =
      a.entries.empty()
          ? archive_header_bytes(step_order, a.capacity, a.crc)
          : a.entries.back().byte_offset + a.entries.back().byte_count;

  // Payload: block-parallel, exactly like write_model (rank 0 writes the
  // blob header and extends the file; every rank pwrites its core block).
  const std::uint64_t blob_bytes =
      write_model_at(path, base, /*create=*/false, core, factors, stats);

  // Commit: rewrite only the fixed-size table tail — slot K, then the
  // entry count. The payload is synced first so a committed entry always
  // has its bytes; a crash before the count write leaves the previous
  // entries untouched and this payload invisible.
  if (comm.rank() == 0) {
    const File f = File::open_write(path);
    f.sync();
    detail::HeaderWriter w;
    w.u64(step_first);
    w.u64(step_count);
    std::uint64_t eps_bits = 0;
    std::memcpy(&eps_bits, &eps, sizeof(double));
    w.u64(eps_bits);
    w.u64(base);
    w.u64(blob_bytes);
    if (a.crc) {
      // slot_crc covers the five fields exactly as serialized above, so a
      // torn slot write can never masquerade as a valid entry.
      w.u64(util::crc32c(0, w.bytes().data(), w.bytes().size()));
    }
    f.write_at(slot_offset(step_order, a.entries.size(), a.crc),
               w.bytes().data(), w.bytes().size());
    f.sync();
    const std::uint64_t new_count = a.entries.size() + 1;
    f.write_at(count_field_offset(step_order), &new_count,
               sizeof(new_count));
    f.sync();
  }
  comm.barrier();
}

ArchiveReader::ArchiveReader(const std::string& path)
    : file_(File::open_read(path)) {
  ParsedArchive a = parse_archive(file_);
  step_dims_ = std::move(a.step_dims);
  species_mode_ = a.species_mode;
  capacity_ = static_cast<std::size_t>(a.capacity);
  entries_ = std::move(a.entries);
}

int ArchiveReader::species_mode() const {
  return species_mode_ == kArchiveNoSpecies
             ? -1
             : static_cast<int>(species_mode_);
}

std::vector<std::size_t> ArchiveReader::covering(std::uint64_t lo,
                                                 std::uint64_t hi) const {
  PT_REQUIRE(lo < hi, "archive: empty step range [" << lo << ", " << hi
                                                    << ")");
  PT_REQUIRE(hi <= step_end(),
             "archive: step range [" << lo << ", " << hi
                                     << ") beyond archived steps [0, "
                                     << step_end() << ")");
  std::vector<std::size_t> hits;
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    if (entries_[e].step_first < hi && entries_[e].step_end() > lo) {
      hits.push_back(e);
    }
  }
  return hits;
}

void ArchiveReader::check_entry_shape(
    std::size_t e, std::span<const tensor::Matrix> factors) const {
  // Defense in depth: the blob must actually be a model of this archive's
  // shared shape.
  const ArchiveEntry& ent = entry(e);
  PT_REQUIRE(factors.size() == step_dims_.size() + 1,
             "archive: entry " << e << " order mismatch in " << file_.path());
  for (std::size_t n = 0; n < step_dims_.size(); ++n) {
    PT_REQUIRE(factors[n].rows() == step_dims_[n],
               "archive: entry " << e << " spatial dims mismatch in "
                                 << file_.path());
  }
  PT_REQUIRE(factors.back().rows() == ent.step_count,
             "archive: entry " << e << " time extent mismatch in "
                               << file_.path());
}

ModelData ArchiveReader::read_entry(std::size_t e,
                                    std::shared_ptr<mps::CartGrid> grid)
    const {
  const ArchiveEntry& ent = entry(e);
  ModelData model = read_model_at(file_, ent.byte_offset,
                                  ent.byte_offset + ent.byte_count,
                                  std::move(grid));
  check_entry_shape(e, std::span<const tensor::Matrix>(model.factors));
  return model;
}

LocalModelData ArchiveReader::read_entry_local(std::size_t e) const {
  const ArchiveEntry& ent = entry(e);
  LocalModelData model = read_model_local_at(
      file_, ent.byte_offset, ent.byte_offset + ent.byte_count);
  check_entry_shape(e, std::span<const tensor::Matrix>(model.factors));
  return model;
}

}  // namespace ptucker::pario
