#pragma once
/// \file archive_io.hpp
/// \brief The PTA1 appendable time-partitioned model archive: one container
/// holding N PTZ1-style Tucker models, one per window of timesteps — the
/// paper's Sec. II in-situ workflow ("compress the simulation as it lands on
/// disk") archived as a single file instead of one model file per window,
/// as TuckerMPI frames the long-time-series use case.
///
/// Layout (little-endian):
///   "PTA1" | u64 version | u64 model order N (= step order + 1, time last)
///   | u64 step_dims[N-1]     spatial x species dims shared by every entry
///   | u64 species_mode       (u64)-1 when no species mode is declared
///   | u64 entry_capacity C   table slots preallocated at create
///   | u64 entry_count K      committed entries — THE commit point
///   | C x { u64 step_first | u64 step_count | f64 eps
///         | u64 byte_offset | u64 byte_count
///         | u64 slot_crc }                            the entry table
///   | entry payloads: each a complete PTZ1 blob (blob-relative offsets,
///     so an entry extracted byte-for-byte is a standalone PTZ1 file)
///
/// slot_crc (version 2, the default — see pario::set_write_checksums) is a
/// CRC32C over the slot's first five fields, so a torn table write can
/// never masquerade as a valid entry; version-1 archives use 5-u64 slots
/// with no checksum and are still read.
///
/// When the primary table fills, appends no longer stop: a *continuation
/// table* is materialized where the next blob would have gone —
///   "PTAC" | u64 capacity | u64 header_check | u64 entry_count
///   | capacity x slot
/// — and entries continue into it (blobs packed after the block, windows
/// still contiguous). Readers sniff the four bytes after the last committed
/// blob of a full table and follow the chain; anything that is not a valid
/// continuation header (short file, wrong magic, implausible capacity, bad
/// header_check) ends the chain exactly like a clean EOF, so a crash while
/// materializing a table is indistinguishable from never having grown.
/// header_check is a CRC32C over the magic and capacity in version-2
/// archives and zero (unchecked) in version 1; slots use the archive's
/// slot format. ArchiveFull is thrown only at the configurable
/// process-wide hard cap (set_archive_hard_cap).
///
/// Append protocol (collective): every rank parses the header independently
/// (deterministic, zero messages) and agrees on the placement; the payload
/// is then written block-parallel exactly like write_model (rank 0 writes
/// the blob header, every rank pwrites its own core block); finally rank 0
/// commits by writing table slot K and then entry_count = K + 1 — the only
/// rewritten bytes are that fixed-size table tail, so a crash anywhere
/// mid-append leaves the first K entries untouched and readable. The
/// payload is fsync'd before the commit so a committed entry is never
/// missing its bytes.
///
/// Reads are communication-free: every rank opens and validates the header
/// itself and preads only its own core blocks (ArchiveReader::read_entry),
/// exactly as read_model does for a standalone PTZ1 file.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pario/model_io.hpp"

namespace ptucker::pario {

/// One committed model of the archive: the window of global timesteps it
/// covers, the eps it was compressed to (the per-entry eq. 3 bound), and
/// the byte range of its PTZ1 blob.
struct ArchiveEntry {
  std::uint64_t step_first = 0;
  std::uint64_t step_count = 0;
  double eps = 0.0;
  std::uint64_t byte_offset = 0;
  std::uint64_t byte_count = 0;
  [[nodiscard]] std::uint64_t step_end() const {
    return step_first + step_count;
  }
};

/// Table slots preallocated by archive_create when not specified. 1024
/// entries cost 40 KiB of header — negligible next to any real payload.
inline constexpr std::size_t kDefaultArchiveCapacity = 1024;

/// Sentinel for "no species mode declared" in the shared header.
inline constexpr std::uint64_t kArchiveNoSpecies = ~0ull;

/// Process-wide ceiling on the total entry count an archive may grow to
/// across its continuation chain. Appends past the cap throw ArchiveFull;
/// the default is the format's structural limit (1 << 20 entries). Mostly a
/// testing and ops knob — it bounds how far a runaway producer can grow a
/// file before someone notices.
void set_archive_hard_cap(std::size_t cap);
[[nodiscard]] std::size_t archive_hard_cap();

/// Collective: create (truncating any existing file) an empty PTA1 archive
/// for models over steps of \p step_dims. \p species_mode declares which
/// spatial mode is the species mode (-1 = none); it is advisory — per-entry
/// normalization stats ride inside each PTZ1 blob as usual.
void archive_create(const std::string& path, const mps::Comm& comm,
                    const tensor::Dims& step_dims, int species_mode = -1,
                    std::size_t entry_capacity = kDefaultArchiveCapacity);

/// Collective: append one window model to the archive. The model's order
/// must be step order + 1 (time last); its spatial factor row counts must
/// match the archive's step_dims; its time factor rows give step_count.
/// Windows must be appended contiguously: step_first must equal the
/// archive's current step_end (0 for the first entry). \p eps is recorded
/// in the entry table as the window's eq. 3 bound.
void archive_append_model(const std::string& path, std::uint64_t step_first,
                          double eps, const dist::DistTensor& core,
                          std::span<const tensor::Matrix> factors,
                          const data::NormalizationStats* stats = nullptr);

/// One window of a batched append: the same arguments archive_append_model
/// takes, by reference — the caller keeps the models alive for the call.
struct ArchiveWindow {
  std::uint64_t step_first = 0;
  double eps = 0.0;
  const dist::DistTensor* core = nullptr;
  std::span<const tensor::Matrix> factors;
  const data::NormalizationStats* stats = nullptr;
};

/// Collective: append K window models in one commit. The payloads are all
/// written first, then rank 0 commits every table slot and the new entry
/// counts under a single bracketing fsync pair — K windows cost the same
/// three syncs one window does, and a crash anywhere commits either all K
/// entries or none of them (payload bytes past the committed count are
/// unreferenced garbage). Windows must be mutually contiguous and continue
/// the archive's current step_end, exactly as K sequential single appends
/// would.
void archive_append_models(const std::string& path,
                           std::span<const ArchiveWindow> windows);

/// True when the file at \p path starts with the PTA1 magic.
[[nodiscard]] bool is_pta1(const std::string& path);

/// Parsed header + open descriptor of a PTA1 archive; read side.
/// Construction and reads are communication-free — every rank builds its
/// own reader and preads only the bytes of its own core blocks.
class ArchiveReader {
 public:
  explicit ArchiveReader(const std::string& path);

  /// Dims of one step (spatial x species, no time mode).
  [[nodiscard]] const tensor::Dims& step_dims() const { return step_dims_; }
  /// Order of every archived model (= step order + 1).
  [[nodiscard]] int model_order() const {
    return static_cast<int>(step_dims_.size()) + 1;
  }
  /// Declared species mode, -1 when none.
  [[nodiscard]] int species_mode() const;

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  /// Slot count of the primary table (the archive_create capacity).
  [[nodiscard]] std::size_t entry_capacity() const { return capacity_; }
  /// Slot count summed over the primary table and every committed
  /// continuation table — how far the archive can grow without
  /// materializing another table.
  [[nodiscard]] std::size_t total_capacity() const { return total_capacity_; }
  [[nodiscard]] const std::vector<ArchiveEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const ArchiveEntry& entry(std::size_t e) const {
    PT_REQUIRE(e < entries_.size(),
               "archive: entry " << e << " out of range");
    return entries_[e];
  }
  /// One past the last archived step (entries are contiguous from 0).
  [[nodiscard]] std::uint64_t step_end() const {
    return entries_.empty() ? 0 : entries_.back().step_end();
  }

  /// Indices of the entries whose step windows intersect [lo, hi),
  /// ascending. Throws when the range is empty or not fully covered.
  [[nodiscard]] std::vector<std::size_t> covering(std::uint64_t lo,
                                                  std::uint64_t hi) const;

  /// Load entry \p e onto \p grid (any grid of model order). Every rank
  /// preads its own core block — zero messages, as read_model.
  [[nodiscard]] ModelData read_entry(std::size_t e,
                                     std::shared_ptr<mps::CartGrid> grid)
      const;

  /// Grid-free load of entry \p e: the full core as one plain tensor, via
  /// read_model_local_at. No runtime, no collectives — safe from any thread
  /// (positioned reads on the shared descriptor); the serve layer's loader.
  /// Applies the same defense-in-depth shape checks as read_entry.
  [[nodiscard]] LocalModelData read_entry_local(std::size_t e) const;

 private:
  /// Shared defense-in-depth shape validation for both read paths.
  void check_entry_shape(std::size_t e,
                         std::span<const tensor::Matrix> factors) const;

  File file_;
  tensor::Dims step_dims_;
  std::uint64_t species_mode_ = kArchiveNoSpecies;
  std::size_t capacity_ = 0;
  std::size_t total_capacity_ = 0;
  std::vector<ArchiveEntry> entries_;
};

}  // namespace ptucker::pario
