#include "pario/failpoint.hpp"

#ifndef PTUCKER_FAULTS_DISABLED

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>

namespace ptucker::pario::faults {

namespace {

/// All mutable state behind one atomic pointer: arm() installs a fresh
/// (leaked) block so rank-threads mid-I/O never race a reconfiguration.
/// Leaking is deliberate — plans are armed a handful of times per test
/// process and a stale pointer held by a concurrent reader stays valid.
struct State {
  FaultPlan plan;
  std::atomic<std::uint64_t> decisions{0};  ///< rng stream position
  std::atomic<std::uint64_t> ops{0};        ///< write-class op counter
  std::atomic<std::uint64_t> injected{0};
  std::atomic<bool> crashed{false};
};

std::atomic<State*> g_state{nullptr};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Next value of the seed-indexed decision stream (thread-safe: each call
/// consumes one distinct counter value).
std::uint64_t next_u64(State& s) {
  const std::uint64_t i = s.decisions.fetch_add(1, std::memory_order_relaxed);
  return splitmix64(s.plan.seed ^ splitmix64(i));
}

double next_unit(State& s) {
  return static_cast<double>(next_u64(s) >> 11) * 0x1.0p-53;
}

bool roll(State& s, double p) { return p > 0.0 && next_unit(s) < p; }

State* matching_state(const std::string& path) {
  State* s = g_state.load(std::memory_order_acquire);
  if (s == nullptr) return nullptr;
  if (!s->plan.path_substr.empty() &&
      path.find(s->plan.path_substr) == std::string::npos) {
    return nullptr;
  }
  return s;
}

}  // namespace

void arm(const FaultPlan& plan) {
  auto* s = new State;
  s->plan = plan;
  g_state.store(s, std::memory_order_release);
}

void disarm() { g_state.store(nullptr, std::memory_order_release); }

bool armed() { return g_state.load(std::memory_order_acquire) != nullptr; }

std::uint64_t write_class_ops() {
  State* s = g_state.load(std::memory_order_acquire);
  return s != nullptr ? s->ops.load(std::memory_order_relaxed) : 0;
}

std::uint64_t injected() {
  State* s = g_state.load(std::memory_order_acquire);
  return s != nullptr ? s->injected.load(std::memory_order_relaxed) : 0;
}

bool crashed() {
  State* s = g_state.load(std::memory_order_acquire);
  return s != nullptr && s->crashed.load(std::memory_order_acquire);
}

ReadCallPlan plan_read_call(const std::string& path, std::size_t n) {
  ReadCallPlan p;
  State* s = matching_state(path);
  if (s == nullptr) return p;
  if (roll(*s, s->plan.p_read_eio)) {
    p.eio_left = s->plan.eio_streak;
    s->injected.fetch_add(1, std::memory_order_relaxed);
  }
  if (n >= s->plan.bitflip_min_bytes && n > 0 &&
      roll(*s, s->plan.p_read_bitflip)) {
    p.flip_bit = next_u64(*s) % (static_cast<std::uint64_t>(n) * 8);
    s->injected.fetch_add(1, std::memory_order_relaxed);
  }
  return p;
}

SyscallFault read_syscall_fault(const std::string& path, std::size_t want) {
  SyscallFault f;
  State* s = matching_state(path);
  if (s == nullptr) return f;
  if (roll(*s, s->plan.p_read_eintr)) {
    f.err = EINTR;
    s->injected.fetch_add(1, std::memory_order_relaxed);
    return f;
  }
  if (want > 1 && roll(*s, s->plan.p_read_short)) {
    f.short_bytes = want / 2;
    s->injected.fetch_add(1, std::memory_order_relaxed);
  }
  return f;
}

void apply_read_call(const ReadCallPlan& plan, void* buf, std::size_t n) {
  if (plan.flip_bit == ReadCallPlan::kNoFlip || n == 0) return;
  auto* bytes = static_cast<unsigned char*>(buf);
  bytes[plan.flip_bit / 8] ^=
      static_cast<unsigned char>(1u << (plan.flip_bit % 8));
}

WriteCallPlan plan_write_call(const std::string& path) {
  WriteCallPlan p;
  State* s = matching_state(path);
  if (s == nullptr) return p;
  if (roll(*s, s->plan.p_write_eio)) {
    p.eio_left = s->plan.eio_streak;
    s->injected.fetch_add(1, std::memory_order_relaxed);
  }
  return p;
}

SyscallFault write_syscall_fault(const std::string& path, std::size_t want) {
  SyscallFault f;
  State* s = matching_state(path);
  if (s == nullptr) return f;
  if (roll(*s, s->plan.p_write_eintr)) {
    f.err = EINTR;
    s->injected.fetch_add(1, std::memory_order_relaxed);
    return f;
  }
  if (want > 1 && roll(*s, s->plan.p_write_short)) {
    f.short_bytes = want / 2;
    s->injected.fetch_add(1, std::memory_order_relaxed);
  }
  return f;
}

namespace {

/// Advance the write-class op counter and resolve the one-shot ops. Returns
/// the op's gate; used by write_op_gate and the sync/truncate wrappers.
OpGate gate_op(State& s, std::size_t write_bytes, bool is_write) {
  OpGate g;
  const auto op = static_cast<std::int64_t>(
      s.ops.fetch_add(1, std::memory_order_relaxed));
  if (s.crashed.load(std::memory_order_acquire)) {
    g.allowed = 0;  // post-crash: silently dropped
    return g;
  }
  if (is_write && s.plan.enospc_at_op >= 0 && op == s.plan.enospc_at_op) {
    s.injected.fetch_add(1, std::memory_order_relaxed);
    g.fail_errno = ENOSPC;
    return g;
  }
  if (s.plan.crash_at_op >= 0 && op == s.plan.crash_at_op) {
    s.injected.fetch_add(1, std::memory_order_relaxed);
    s.crashed.store(true, std::memory_order_release);
    g.allowed = is_write ? static_cast<std::size_t>(std::min<std::uint64_t>(
                               s.plan.crash_keep_bytes, write_bytes))
                         : 0;
    return g;
  }
  return g;
}

}  // namespace

OpGate write_op_gate(const std::string& path, std::size_t n) {
  State* s = matching_state(path);
  if (s == nullptr) return {};
  return gate_op(*s, n, /*is_write=*/true);
}

bool sync_op_allowed(const std::string& path) {
  State* s = matching_state(path);
  if (s == nullptr) return true;
  return gate_op(*s, 0, /*is_write=*/false).allowed != 0;
}

bool truncate_op_allowed(const std::string& path) {
  State* s = matching_state(path);
  if (s == nullptr) return true;
  return gate_op(*s, 0, /*is_write=*/false).allowed != 0;
}

}  // namespace ptucker::pario::faults

#endif  // PTUCKER_FAULTS_DISABLED
