#pragma once
/// \file collective_handle.hpp
/// \brief Two-phase (initiate/complete) machinery for nonblocking
/// collectives and point-to-point transfers.
///
/// Every nonblocking operation compiles, at initiation, into a deterministic
/// per-rank *script* of actions — eager sends, matched receives, and local
/// steps (accumulations, final copies) — that is exactly the send/recv
/// sequence the blocking algorithm in collectives.hpp would execute. The
/// script is then driven lazily:
///
///  - `istart` runs a nonblocking progress pass, so every leading send (ring
///    step 0, a leaf's tree contribution) is injected immediately;
///  - `test()` advances the script as far as already-arrived messages allow
///    and never blocks — this is what callers interleave with compute;
///  - `wait()` drives the script to completion, blocking only on receives
///    whose payload has not yet arrived.
///
/// Because the action order is fixed at initiation and only the *timing* of
/// receives varies, results are bitwise identical to the blocking path for
/// any interleaving of test()/wait() across ranks.
///
/// Tag discipline: each initiation takes one sequence number from its
/// communicator (Comm::alloc_async_seq) and derives all internal tags from
/// it, so several in-flight operations of the same kind on one communicator
/// never cross-match even though the mailbox matches only (context, src,
/// tag). Initiations are collective and must happen in the same order on
/// every member — the schedule verifier (Universe::verify_schedule) checks
/// exactly this, at initiation time, so a divergent async schedule is
/// reported at finalize instead of deadlocking inside wait().
///
/// A handle destroyed before completing records a leak in the Universe
/// (destructors must not throw); Runtime::run raises it at finalize with
/// the op named.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "mps/comm.hpp"

namespace ptucker::mps {

namespace detail {

/// Internal tag space for nonblocking collectives: below every fixed
/// reserved range (barrier rounds at -1000-k, legacy collective tags at
/// -2000..-7000). Each initiation's sequence number maps to a block of
/// kAsyncSubTags tags so multi-phase ops (all-reduce = reduce-scatter +
/// all-gather) keep their phases distinct.
constexpr int kTagAsyncBase = -1'000'000;
constexpr std::uint64_t kAsyncSeqWrap = std::uint64_t{1} << 20;
constexpr int kAsyncSubTags = 8;

[[nodiscard]] inline int async_tag(std::uint64_t seq, int sub) {
  return kTagAsyncBase -
         static_cast<int>((seq % kAsyncSeqWrap) *
                          static_cast<std::uint64_t>(kAsyncSubTags)) -
         sub;
}

/// One step of an operation's script. Exactly one of produce / consume /
/// run is set, per kind.
struct AsyncAction {
  enum class Kind { Send, Recv, Local };
  Kind kind = Kind::Local;
  int peer = -1;  ///< comm rank (Send dest / Recv src)
  int tag = 0;
  std::size_t recv_bytes = 0;  ///< expected payload size (Recv)
  std::function<std::span<const std::byte>()> produce;   ///< Send payload
  std::function<void(std::span<const std::byte>)> consume;  ///< Recv sink
  std::function<void()> run;  ///< Local step
};

/// The in-flight state of one nonblocking operation.
struct AsyncOp {
  Comm comm;
  OpKind kind = OpKind::P2P;
  std::vector<AsyncAction> actions;
  std::size_t next = 0;  ///< first action not yet executed
  /// Typed scratch (accumulators, packed blocks) the action closures point
  /// into; kept alive exactly as long as the op.
  std::shared_ptr<void> state;
  std::chrono::steady_clock::time_point started;
  bool finish_recorded = false;

  [[nodiscard]] bool done() const { return next >= actions.size(); }

  /// Execute the script in order. Sends and local steps never block; a
  /// receive blocks only when \p blocking is true, otherwise an absent
  /// message stops the pass. Returns done().
  bool progress(bool blocking);

  void on_start();   ///< obs: mps.inflight++, stamp initiation time
  void on_finish();  ///< obs: mps.inflight--, record mps.overlap_us
};

/// Per-op typed scratch shared by the script closures. One struct serves
/// all five collectives; unused members stay empty.
template <class T>
struct RingState {
  std::vector<T> work;   ///< reduce-scatter working copy of the input
  std::vector<T> block;  ///< all-reduce intermediate (my reduced block)
  std::vector<T> acc;    ///< tree-reduce accumulator
  std::vector<T> tmp;    ///< tree-reduce receive staging
  std::vector<std::size_t> counts;
  std::vector<std::size_t> offsets;
};

}  // namespace detail

/// Completion handle for one nonblocking operation. Movable, not copyable.
/// Must reach wait() (or test() returning true) before destruction: a
/// handle dropped mid-flight is recorded as a leak and Runtime::run throws
/// at finalize naming the op.
class CollectiveHandle {
 public:
  /// Already-complete handle (also what moved-from handles become).
  CollectiveHandle() = default;
  explicit CollectiveHandle(std::unique_ptr<detail::AsyncOp> op)
      : op_(std::move(op)) {}

  CollectiveHandle(CollectiveHandle&&) noexcept = default;
  CollectiveHandle& operator=(CollectiveHandle&& other) noexcept {
    if (this != &other) {
      abandon();
      op_ = std::move(other.op_);
    }
    return *this;
  }
  CollectiveHandle(const CollectiveHandle&) = delete;
  CollectiveHandle& operator=(const CollectiveHandle&) = delete;
  ~CollectiveHandle() { abandon(); }

  /// Drive the operation to completion (blocking on missing payloads).
  void wait();

  /// Advance as far as already-arrived messages allow; never blocks.
  /// Returns true once the operation has completed.
  bool test();

  [[nodiscard]] bool done() const { return !op_ || op_->done(); }

 private:
  /// Destructor/assignment path: completed ops are freed, in-flight ops are
  /// recorded as leaks (cannot throw here).
  void abandon() noexcept;

  std::unique_ptr<detail::AsyncOp> op_;
};

namespace detail {
/// Stamp the op started, run the initiating nonblocking progress pass (all
/// leading sends go out here), and wrap it in a handle.
[[nodiscard]] CollectiveHandle launch(std::unique_ptr<AsyncOp> op);
}  // namespace detail

}  // namespace ptucker::mps
