#pragma once
/// \file runtime.hpp
/// \brief Launches SPMD parallel regions: one thread per rank.
///
/// Usage:
/// \code
///   mps::Runtime rt(16);
///   rt.run([&](mps::Comm& comm) {
///     // SPMD body; comm.rank() in [0, 16)
///   });
///   auto words = rt.max_stats().words_sent();
/// \endcode
///
/// Exceptions thrown by any rank abort the whole region (all blocked ranks
/// are woken with AbortError) and the first-thrown exception is rethrown to
/// the caller.

#include <functional>
#include <memory>

#include "mps/comm.hpp"

namespace ptucker::mps {

class Runtime {
 public:
  explicit Runtime(int world_size);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] int world_size() const;

  /// Execute \p body on every rank concurrently; returns when all complete.
  /// Verifies all mailboxes drained on success.
  void run(const std::function<void(Comm&)>& body);

  /// Communication counters, available between runs.
  [[nodiscard]] const CommStats& rank_stats(int rank) const;
  [[nodiscard]] CommStats total_stats() const;
  [[nodiscard]] CommStats max_stats() const;
  void reset_stats();

  /// Deadlock-detection timeout for blocking receives (default 120 s).
  void set_recv_timeout_ms(long ms);

  /// Debug mode: fingerprint each rank's collective call sequence per
  /// communicator and verify they match when run() finishes (throws
  /// ScheduleMismatchError on divergence). Off by default — adds one
  /// hash-mix per collective call when on.
  void set_verify_schedule(bool on);

  [[nodiscard]] Universe& universe() { return *universe_; }

 private:
  std::unique_ptr<Universe> universe_;
};

/// One-shot convenience: run \p body on \p world_size ranks.
void run(int world_size, const std::function<void(Comm&)>& body);

}  // namespace ptucker::mps
