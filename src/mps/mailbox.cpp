#include "mps/mailbox.hpp"

#include "mps/universe.hpp"

namespace ptucker::mps {

void Mailbox::push(Message&& msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop_matching(std::uint64_t context, int src_world, int tag,
                              std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (universe_->aborted()) {
      throw AbortError("rank aborted while receiving: " +
                       universe_->abort_reason());
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->context == context && it->src_world == src_world &&
          it->tag == tag) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      throw InternalError(
          "recv timed out (likely deadlock): waiting for context=" +
          std::to_string(context) + " src=" + std::to_string(src_world) +
          " tag=" + std::to_string(tag));
    }
  }
}

std::optional<Message> Mailbox::try_pop_matching(std::uint64_t context,
                                                 int src_world, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (universe_->aborted()) {
    throw AbortError("rank aborted while receiving: " +
                     universe_->abort_reason());
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->context == context && it->src_world == src_world &&
        it->tag == tag) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::interrupt() { cv_.notify_all(); }

}  // namespace ptucker::mps
