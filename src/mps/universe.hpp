#pragma once
/// \file universe.hpp
/// \brief Shared runtime state for one distributed "machine": mailboxes,
/// abort propagation, communicator context registry, and per-rank stats.
///
/// The Universe is the stand-in for the physical network. Ranks interact
/// with it only through their Comm handles; no user data lives here, just
/// in-flight messages.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "mps/mailbox.hpp"
#include "mps/stats.hpp"
#include "util/error.hpp"

namespace ptucker::mps {

/// Thrown in every blocked rank when another rank fails: unwinds the whole
/// parallel region so the first error can be reported.
class AbortError : public Error {
 public:
  explicit AbortError(const std::string& what) : Error(what) {}
};

class Universe {
 public:
  explicit Universe(int world_size);

  [[nodiscard]] int world_size() const { return world_size_; }

  Mailbox& mailbox(int world_rank);

  /// --- abort propagation -------------------------------------------------
  void abort(const std::string& reason);
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::string abort_reason() const;
  void clear_abort();

  /// --- communicator contexts ---------------------------------------------
  /// Returns the same fresh context id to every rank requesting the key
  /// (parent context, split sequence number, color). Collision-free by
  /// construction (registry), unlike hash-derived schemes.
  std::uint64_t register_context(std::uint64_t parent, std::uint64_t seq,
                                 int color);

  /// --- stats ---------------------------------------------------------------
  CommStats& stats(int world_rank);
  [[nodiscard]] const CommStats& stats(int world_rank) const;
  [[nodiscard]] CommStats total_stats() const;
  [[nodiscard]] CommStats max_stats() const;  ///< per-field max over ranks
  void reset_stats();

  /// --- collective schedule verification (debug mode) -----------------------
  /// When enabled, every top-level collective entry mixes (op, payload
  /// bytes) into a per-rank, per-communicator-context rolling hash, and
  /// verify_schedule() — run by the Runtime at finalize — checks that all
  /// ranks sharing a context executed identical sequences. This is the
  /// matching oracle the planned async-collective engine needs: a rank that
  /// skips, reorders, or resizes a collective is flagged deterministically
  /// instead of deadlocking or silently corrupting a reduction.
  void set_verify_schedule(bool on) {
    verify_schedule_.store(on, std::memory_order_release);
  }
  [[nodiscard]] bool verify_schedule_enabled() const {
    return verify_schedule_.load(std::memory_order_acquire);
  }
  /// Called by each rank when it constructs a Comm for \p context, so a
  /// member that then never calls a collective still shows up (calls == 0)
  /// and is distinguishable from "never had this communicator".
  void fingerprint_seed(int world_rank, std::uint64_t context);
  /// Mix one collective call into \p world_rank's fingerprint for \p context.
  void fingerprint_record(int world_rank, std::uint64_t context, OpKind kind,
                          std::uint64_t bytes);
  /// Throws ScheduleMismatchError if ranks sharing a context diverged. Call
  /// only after the parallel region has joined (reads all ranks' entries).
  void verify_schedule() const;
  void reset_schedule();
  /// This rank's per-context fingerprints (tests).
  [[nodiscard]] const std::map<std::uint64_t, ContextFingerprint>&
  schedule_fingerprints(int world_rank) const;

  /// --- in-flight nonblocking-collective accounting --------------------------
  /// A CollectiveHandle destroyed before completing cannot throw from its
  /// destructor, so it records the leak here; the Runtime raises it at
  /// finalize (before quiescence, whose mailbox-leak diagnosis would be the
  /// unactionable symptom of the same bug).
  void note_async_leak(const std::string& description);
  void clear_async_leaks();
  /// Throws InternalError naming every leaked op if any handle was dropped
  /// while still in flight.
  void assert_no_async_leaks() const;

  /// Timeout applied to blocking receives (deadlock detection).
  void set_recv_timeout(std::chrono::milliseconds t) { recv_timeout_ = t; }
  [[nodiscard]] std::chrono::milliseconds recv_timeout() const {
    return recv_timeout_;
  }

  /// Throws InternalError if any mailbox still holds messages (message
  /// leaks usually mean tag mismatches). Called after successful runs.
  void assert_quiescent() const;

 private:
  int world_size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  // Stats are padded to their own cache lines to avoid false sharing.
  struct alignas(64) PaddedStats {
    CommStats stats;
  };
  std::vector<PaddedStats> stats_;

  // Each rank writes only its own entry from its own thread; verify reads
  // after the join, so no locking is needed.
  struct alignas(64) PaddedSchedule {
    std::map<std::uint64_t, ContextFingerprint> contexts;
  };
  std::vector<PaddedSchedule> schedules_;
  std::atomic<bool> verify_schedule_{false};

  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mutex_;
  std::string abort_reason_;

  mutable std::mutex async_leak_mutex_;
  std::vector<std::string> async_leaks_;

  std::mutex context_mutex_;
  std::map<std::tuple<std::uint64_t, std::uint64_t, int>, std::uint64_t>
      context_registry_;
  std::uint64_t next_context_ = 1;  // 0 is the world communicator

  std::chrono::milliseconds recv_timeout_{120000};
};

}  // namespace ptucker::mps
