#pragma once
/// \file universe.hpp
/// \brief Shared runtime state for one distributed "machine": mailboxes,
/// abort propagation, communicator context registry, and per-rank stats.
///
/// The Universe is the stand-in for the physical network. Ranks interact
/// with it only through their Comm handles; no user data lives here, just
/// in-flight messages.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "mps/mailbox.hpp"
#include "mps/stats.hpp"
#include "util/error.hpp"

namespace ptucker::mps {

/// Thrown in every blocked rank when another rank fails: unwinds the whole
/// parallel region so the first error can be reported.
class AbortError : public Error {
 public:
  explicit AbortError(const std::string& what) : Error(what) {}
};

class Universe {
 public:
  explicit Universe(int world_size);

  [[nodiscard]] int world_size() const { return world_size_; }

  Mailbox& mailbox(int world_rank);

  /// --- abort propagation -------------------------------------------------
  void abort(const std::string& reason);
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::string abort_reason() const;
  void clear_abort();

  /// --- communicator contexts ---------------------------------------------
  /// Returns the same fresh context id to every rank requesting the key
  /// (parent context, split sequence number, color). Collision-free by
  /// construction (registry), unlike hash-derived schemes.
  std::uint64_t register_context(std::uint64_t parent, std::uint64_t seq,
                                 int color);

  /// --- stats ---------------------------------------------------------------
  CommStats& stats(int world_rank);
  [[nodiscard]] const CommStats& stats(int world_rank) const;
  [[nodiscard]] CommStats total_stats() const;
  [[nodiscard]] CommStats max_stats() const;  ///< per-field max over ranks
  void reset_stats();

  /// Timeout applied to blocking receives (deadlock detection).
  void set_recv_timeout(std::chrono::milliseconds t) { recv_timeout_ = t; }
  [[nodiscard]] std::chrono::milliseconds recv_timeout() const {
    return recv_timeout_;
  }

  /// Throws InternalError if any mailbox still holds messages (message
  /// leaks usually mean tag mismatches). Called after successful runs.
  void assert_quiescent() const;

 private:
  int world_size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  // Stats are padded to their own cache lines to avoid false sharing.
  struct alignas(64) PaddedStats {
    CommStats stats;
  };
  std::vector<PaddedStats> stats_;

  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mutex_;
  std::string abort_reason_;

  std::mutex context_mutex_;
  std::map<std::tuple<std::uint64_t, std::uint64_t, int>, std::uint64_t>
      context_registry_;
  std::uint64_t next_context_ = 1;  // 0 is the world communicator

  std::chrono::milliseconds recv_timeout_{120000};
};

}  // namespace ptucker::mps
