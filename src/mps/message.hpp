#pragma once
/// \file message.hpp
/// \brief The unit of communication in the mps runtime.
///
/// mps ("message passing substrate") reproduces the distributed-memory MPI
/// programming model on one node: every rank is a thread with private data,
/// and the *only* way data moves between ranks is by value through Message
/// payloads. Matching follows MPI semantics: a receive names (communicator
/// context, source, tag) and matches the earliest such message (per-source
/// FIFO order is guaranteed by the single-deque mailbox).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ptucker::mps {

/// A single in-flight message.
struct Message {
  /// Communicator context id — isolates traffic of different communicators
  /// (split sub-communicators get fresh contexts from the Universe registry).
  std::uint64_t context = 0;
  /// Sender's world rank (mailboxes are addressed by world rank).
  int src_world = -1;
  /// User tag; collectives use reserved internal tags.
  int tag = 0;
  /// Payload, always copied on send — ranks never share buffers.
  std::vector<std::byte> payload;
};

}  // namespace ptucker::mps
