#include "mps/comm.hpp"

#include <algorithm>

#include "mps/collectives.hpp"
#include "obs/registry.hpp"

namespace ptucker::mps {

namespace {

/// Registry handles for per-op message/byte counters, resolved once. The
/// obs registry is additive to CommStats (which the cost-model tests read):
/// same numbers, exported under "mps.*" so one snapshot sees the whole
/// stack.
struct OpCounterPair {
  obs::Counter messages;
  obs::Counter bytes;
};

struct OpCounterTable {
  std::array<OpCounterPair, CommStats::kNumOps> per_op;
  obs::Counter messages;
  obs::Counter bytes;
};

OpCounterTable& op_counters() {
  static OpCounterTable* table = [] {
    auto* t = new OpCounterTable;
    for (int i = 0; i < CommStats::kNumOps; ++i) {
      const std::string base =
          std::string("mps.") + op_name(static_cast<OpKind>(i));
      t->per_op[static_cast<std::size_t>(i)].messages =
          obs::registry().counter(base + ".messages");
      t->per_op[static_cast<std::size_t>(i)].bytes =
          obs::registry().counter(base + ".bytes");
    }
    t->messages = obs::registry().counter("mps.messages");
    t->bytes = obs::registry().counter("mps.bytes");
    return t;
  }();
  return *table;
}

}  // namespace

Comm Comm::world(Universe* universe, int my_world_rank) {
  auto state = std::make_shared<State>();
  state->universe = universe;
  state->context = 0;
  state->group.resize(static_cast<std::size_t>(universe->world_size()));
  for (int r = 0; r < universe->world_size(); ++r) {
    state->group[static_cast<std::size_t>(r)] = r;
  }
  state->my_rank = my_world_rank;
  universe->fingerprint_seed(my_world_rank, state->context);
  return Comm(std::move(state));
}

void Comm::send_bytes(std::span<const std::byte> buf, int dest,
                      int tag) const {
  PT_CHECK(valid(), "send on null communicator");
  PT_CHECK(dest >= 0 && dest < size(), "send dest " << dest << " out of range");
  if (state_->universe->aborted()) {
    throw AbortError("send after abort: " + state_->universe->abort_reason());
  }
  Message msg;
  msg.context = state_->context;
  msg.src_world = my_world_rank();
  msg.tag = tag;
  msg.payload.assign(buf.begin(), buf.end());
  my_stats().record(current_op(), buf.size());
  if constexpr (obs::kEnabled) {
    OpCounterTable& oc = op_counters();
    oc.messages.inc();
    oc.bytes.add(buf.size());
    OpCounterPair& pair =
        oc.per_op[static_cast<std::size_t>(current_op())];
    pair.messages.inc();
    pair.bytes.add(buf.size());
  }
  state_->universe->mailbox(world_rank(dest)).push(std::move(msg));
}

void Comm::recv_bytes(std::span<std::byte> buf, int src, int tag) const {
  PT_CHECK(valid(), "recv on null communicator");
  PT_CHECK(src >= 0 && src < size(), "recv src " << src << " out of range");
  Message msg = state_->universe->mailbox(my_world_rank())
                    .pop_matching(state_->context, world_rank(src), tag,
                                  state_->universe->recv_timeout());
  PT_CHECK(msg.payload.size() == buf.size(),
           "recv size mismatch: expected " << buf.size() << " bytes, got "
                                           << msg.payload.size()
                                           << " (src=" << src
                                           << " tag=" << tag << ")");
  std::memcpy(buf.data(), msg.payload.data(), buf.size());
}

std::vector<std::byte> Comm::recv_bytes_any_size(int src, int tag) const {
  PT_CHECK(valid(), "recv on null communicator");
  PT_CHECK(src >= 0 && src < size(), "recv src " << src << " out of range");
  Message msg = state_->universe->mailbox(my_world_rank())
                    .pop_matching(state_->context, world_rank(src), tag,
                                  state_->universe->recv_timeout());
  return std::move(msg.payload);
}

std::optional<std::vector<std::byte>> Comm::try_recv_bytes_any_size(
    int src, int tag) const {
  PT_CHECK(valid(), "recv on null communicator");
  PT_CHECK(src >= 0 && src < size(), "recv src " << src << " out of range");
  auto msg = state_->universe->mailbox(my_world_rank())
                 .try_pop_matching(state_->context, world_rank(src), tag);
  if (!msg) return std::nullopt;
  return std::move(msg->payload);
}

Comm Comm::split(int color, int key) const {
  PT_CHECK(valid(), "split on null communicator");
  // Gather (color, key) from everyone so each rank can compute its group.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  const Entry mine{color, key, rank()};
  std::vector<Entry> all(static_cast<std::size_t>(size()));
  allgather(*this, std::span<const Entry>(&mine, 1), std::span<Entry>(all));

  // The split sequence number makes repeated splits on the same communicator
  // produce distinct contexts. All members advance it together because split
  // is collective.
  const std::uint64_t seq =
      state_->next_split_seq.fetch_add(1, std::memory_order_relaxed);

  if (color < 0) return Comm();

  std::vector<Entry> members;
  for (const Entry& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });

  auto state = std::make_shared<State>();
  state->universe = state_->universe;
  state->context =
      state_->universe->register_context(state_->context, seq, color);
  state->group.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    state->group.push_back(world_rank(members[i].rank));
    if (members[i].rank == rank()) state->my_rank = static_cast<int>(i);
  }
  PT_CHECK(state->my_rank >= 0, "split: caller missing from its own group");
  state->universe->fingerprint_seed(
      state->group[static_cast<std::size_t>(state->my_rank)], state->context);
  return Comm(std::move(state));
}

void Comm::barrier() const {
  PT_CHECK(valid(), "barrier on null communicator");
  note_collective(OpKind::Barrier, 0);
  OpScope scope(OpKind::Barrier);
  const int p = size();
  const int r = rank();
  // Dissemination barrier: ceil(log2 P) rounds, each rank sends one empty
  // message per round.
  constexpr int kTagBase = -1000;  // reserved internal tags are negative
  std::byte token{0};
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int dest = (r + k) % p;
    const int src = (r - k % p + p) % p;
    send_bytes(std::span<const std::byte>(&token, 1), dest, kTagBase - round);
    std::byte in{};
    recv_bytes(std::span<std::byte>(&in, 1), src, kTagBase - round);
  }
}

}  // namespace ptucker::mps
