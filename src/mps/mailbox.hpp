#pragma once
/// \file mailbox.hpp
/// \brief Single-consumer mailbox with (context, source, tag) matching.
///
/// Each rank owns exactly one mailbox; any rank may push to it, only the
/// owner pops. Messages from a given sender are matched in FIFO order, which
/// is the ordering guarantee that makes back-to-back collectives on the same
/// communicator safe without sequence numbers (same reasoning as MPI's
/// non-overtaking rule).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "mps/message.hpp"

namespace ptucker::mps {

class Universe;

class Mailbox {
 public:
  explicit Mailbox(Universe* universe) : universe_(universe) {}

  /// Deliver a message (called by senders). Never blocks.
  void push(Message&& msg);

  /// Block until a message matching (context, src_world, tag) is available
  /// and return it. Throws AbortError if the universe aborts, and
  /// InternalError after \p timeout elapses (deadlock detection).
  Message pop_matching(std::uint64_t context, int src_world, int tag,
                       std::chrono::milliseconds timeout);

  /// Non-blocking variant: return the matching message if one is already
  /// queued, std::nullopt otherwise. Never waits; this is the probe that
  /// drives CollectiveHandle::test() progress. Throws AbortError if the
  /// universe has aborted (same contract as pop_matching).
  std::optional<Message> try_pop_matching(std::uint64_t context, int src_world,
                                          int tag);

  /// Number of queued messages (diagnostics / quiescence checks).
  [[nodiscard]] std::size_t pending() const;

  /// Wake the owner if it is blocked (used by Universe::abort).
  void interrupt();

 private:
  Universe* universe_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace ptucker::mps
