#pragma once
/// \file comm.hpp
/// \brief Communicator handle: rank/size, point-to-point transfers, split.
///
/// A Comm names an ordered group of world ranks plus a context id that
/// isolates its traffic. Comm values are cheap shared handles; SPMD code
/// must call collective operations (split, barrier, and everything in
/// collectives.hpp) on all members in the same order.

#include <atomic>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mps/universe.hpp"

namespace ptucker::mps {

class Comm {
 public:
  /// Null communicator (rank not in group). valid() == false.
  Comm() = default;

  /// World communicator for one rank (made by the Runtime).
  static Comm world(Universe* universe, int my_world_rank);

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] int rank() const { return state_->my_rank; }
  [[nodiscard]] int size() const {
    return static_cast<int>(state_->group.size());
  }
  [[nodiscard]] Universe& universe() const { return *state_->universe; }
  [[nodiscard]] int world_rank(int r) const {
    return state_->group[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int my_world_rank() const {
    return state_->group[static_cast<std::size_t>(state_->my_rank)];
  }

  /// --- byte-level point-to-point ----------------------------------------
  /// Eager, non-blocking send: the payload is copied into the destination
  /// mailbox immediately (like an MPI buffered send).
  void send_bytes(std::span<const std::byte> buf, int dest, int tag) const;

  /// Blocking receive; the matched payload size must equal buf.size().
  void recv_bytes(std::span<std::byte> buf, int src, int tag) const;

  /// Receive whatever payload is matched, returning it (size discovered
  /// at match time — used by gatherv-style operations).
  [[nodiscard]] std::vector<std::byte> recv_bytes_any_size(int src,
                                                           int tag) const;

  /// Non-blocking probe: pop and return the matching payload if it has
  /// already arrived, std::nullopt otherwise. Drives CollectiveHandle
  /// progress without stalling the caller's compute.
  [[nodiscard]] std::optional<std::vector<std::byte>> try_recv_bytes_any_size(
      int src, int tag) const;

  /// --- typed point-to-point ----------------------------------------------
  template <class T>
  void send(std::span<const T> buf, int dest, int tag) const {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(std::as_bytes(buf), dest, tag);
  }

  template <class T>
  void recv(std::span<T> buf, int src, int tag) const {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(std::as_writable_bytes(buf), src, tag);
  }

  /// Combined exchange, safe in rings because sends are eager.
  template <class T>
  void sendrecv(std::span<const T> sendbuf, int dest, std::span<T> recvbuf,
                int src, int tag) const {
    send(sendbuf, dest, tag);
    recv(recvbuf, src, tag);
  }

  /// --- communicator management -------------------------------------------
  /// Collective: partitions the group by \p color (color < 0 => the caller
  /// gets a null Comm); members of each color are ordered by (key, rank).
  [[nodiscard]] Comm split(int color, int key) const;

  /// Collective: dissemination barrier (ceil(log2 P) rounds of p2p).
  void barrier() const;

  /// Allocate the next nonblocking-collective sequence number for this
  /// communicator. Every istart-style initiation takes exactly one, and all
  /// of an op's internal tags derive from it, so concurrently in-flight ops
  /// on one communicator never cross-match. Initiations are collective:
  /// every member must initiate the same ops in the same order (the
  /// schedule verifier enforces this), which keeps the per-rank counters in
  /// lockstep without any extra traffic.
  [[nodiscard]] std::uint64_t alloc_async_seq() const {
    return state_->next_async_seq.fetch_add(1, std::memory_order_relaxed);
  }

  /// Stats for this rank (world-level counters).
  [[nodiscard]] CommStats& my_stats() const {
    return state_->universe->stats(my_world_rank());
  }

  /// Record one top-level collective call into this rank's schedule
  /// fingerprint for this communicator's context. No-op unless
  /// Universe::set_verify_schedule(true); calls nested inside another
  /// collective (e.g. the reduce-scatter inside all-reduce) are suppressed
  /// with the same rule OpScope uses for traffic attribution. Collectives
  /// call this at entry, before any early return, so a P==1 call still
  /// counts. \p bytes must be a value every member computes identically
  /// (pass 0 for varied-size collectives).
  void note_collective(OpKind kind, std::uint64_t bytes) const {
    if (!state_->universe->verify_schedule_enabled()) return;
    if (current_op() != OpKind::P2P) return;
    state_->universe->fingerprint_record(my_world_rank(), state_->context,
                                         kind, bytes);
  }

 private:
  struct State {
    Universe* universe = nullptr;
    std::uint64_t context = 0;
    std::vector<int> group;  // world ranks, ordered; my position = my_rank
    int my_rank = -1;
    std::atomic<std::uint64_t> next_split_seq{0};
    std::atomic<std::uint64_t> next_async_seq{0};
  };
  std::shared_ptr<State> state_;

  explicit Comm(std::shared_ptr<State> state) : state_(std::move(state)) {}
};

}  // namespace ptucker::mps
