#pragma once
/// \file stats.hpp
/// \brief Per-rank communication counters.
///
/// Because every collective in mps is built from point-to-point sends, the
/// runtime can count exactly how many messages and words each rank injects,
/// attributed to the operation that caused them. These counters are what the
/// cost-model validation tests and the Tab. I bench compare against the
/// paper's alpha-beta-gamma formulas.

#include <array>
#include <cstdint>
#include <string>

namespace ptucker::mps {

/// Operation kinds for attribution of p2p traffic.
enum class OpKind : int {
  P2P = 0,        ///< user-level send/recv (e.g. the Gram shift ring)
  Barrier,
  Broadcast,
  Reduce,
  AllReduce,
  AllGather,
  ReduceScatter,
  Gather,
  Scatter,
  kCount
};

[[nodiscard]] const char* op_name(OpKind kind);

/// Counters for one rank. "Words" are 8-byte doubles, the unit of W in the
/// paper's model.
struct CommStats {
  static constexpr int kNumOps = static_cast<int>(OpKind::kCount);

  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::array<std::uint64_t, kNumOps> op_messages{};
  std::array<std::uint64_t, kNumOps> op_bytes{};

  [[nodiscard]] double words_sent() const {
    return static_cast<double>(bytes_sent) / 8.0;
  }
  [[nodiscard]] double op_words(OpKind kind) const {
    return static_cast<double>(op_bytes[static_cast<int>(kind)]) / 8.0;
  }
  [[nodiscard]] std::uint64_t op_message_count(OpKind kind) const {
    return op_messages[static_cast<int>(kind)];
  }

  void record(OpKind kind, std::uint64_t bytes) {
    messages_sent += 1;
    bytes_sent += bytes;
    op_messages[static_cast<int>(kind)] += 1;
    op_bytes[static_cast<int>(kind)] += bytes;
  }

  CommStats& operator+=(const CommStats& other) {
    messages_sent += other.messages_sent;
    bytes_sent += other.bytes_sent;
    for (int i = 0; i < kNumOps; ++i) {
      op_messages[i] += other.op_messages[i];
      op_bytes[i] += other.op_bytes[i];
    }
    return *this;
  }

  void clear() { *this = CommStats{}; }
};

/// The op kind the calling thread is currently executing (collectives set
/// this around their p2p traffic so sends are attributed correctly).
[[nodiscard]] OpKind current_op();
void set_current_op(OpKind kind);

/// RAII attribution scope used inside collectives. Nested scopes do NOT
/// override the outermost one: an all-reduce implemented as reduce-scatter +
/// all-gather attributes all of its traffic to AllReduce.
class OpScope {
 public:
  explicit OpScope(OpKind kind) : saved_(current_op()) {
    if (saved_ == OpKind::P2P) set_current_op(kind);
  }
  ~OpScope() { set_current_op(saved_); }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  OpKind saved_;
};

}  // namespace ptucker::mps
