#pragma once
/// \file stats.hpp
/// \brief Per-rank communication counters.
///
/// Because every collective in mps is built from point-to-point sends, the
/// runtime can count exactly how many messages and words each rank injects,
/// attributed to the operation that caused them. These counters are what the
/// cost-model validation tests and the Tab. I bench compare against the
/// paper's alpha-beta-gamma formulas.

#include <array>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace ptucker::mps {

/// Operation kinds for attribution of p2p traffic.
enum class OpKind : int {
  P2P = 0,        ///< user-level send/recv (e.g. the Gram shift ring)
  Barrier,
  Broadcast,
  Reduce,
  AllReduce,
  AllGather,
  ReduceScatter,
  Gather,
  Scatter,
  kCount
};

[[nodiscard]] const char* op_name(OpKind kind);

/// Counters for one rank. "Words" are 8-byte doubles, the unit of W in the
/// paper's model.
struct CommStats {
  static constexpr int kNumOps = static_cast<int>(OpKind::kCount);

  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::array<std::uint64_t, kNumOps> op_messages{};
  std::array<std::uint64_t, kNumOps> op_bytes{};

  [[nodiscard]] double words_sent() const {
    return static_cast<double>(bytes_sent) / 8.0;
  }
  [[nodiscard]] double op_words(OpKind kind) const {
    return static_cast<double>(op_bytes[static_cast<int>(kind)]) / 8.0;
  }
  [[nodiscard]] std::uint64_t op_message_count(OpKind kind) const {
    return op_messages[static_cast<int>(kind)];
  }

  void record(OpKind kind, std::uint64_t bytes) {
    messages_sent += 1;
    bytes_sent += bytes;
    op_messages[static_cast<int>(kind)] += 1;
    op_bytes[static_cast<int>(kind)] += bytes;
  }

  CommStats& operator+=(const CommStats& other) {
    messages_sent += other.messages_sent;
    bytes_sent += other.bytes_sent;
    for (int i = 0; i < kNumOps; ++i) {
      op_messages[i] += other.op_messages[i];
      op_bytes[i] += other.op_bytes[i];
    }
    return *this;
  }

  void clear() { *this = CommStats{}; }
};

/// Thrown by the debug-mode schedule verifier (parcoach-style collective
/// matching, see Universe::verify_schedule) when ranks of one communicator
/// executed divergent collective sequences — the precursor bug class for
/// the planned async-collective refactor, caught at finalize instead of as
/// a deadlock or a silently mismatched reduction.
class ScheduleMismatchError : public Error {
 public:
  explicit ScheduleMismatchError(const std::string& what) : Error(what) {}
};

/// Rolling fingerprint of the collective calls one rank issued on one
/// communicator context: an order-sensitive FNV-style hash over
/// (op, payload bytes) plus a call count. Two ranks of the same
/// communicator with equal (hash, calls) executed the same schedule with
/// overwhelming probability; any divergence — an extra call, a reordered
/// pair, a mismatched payload size — changes the hash.
struct ContextFingerprint {
  static constexpr std::uint64_t kOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  std::uint64_t hash = kOffset;
  std::uint64_t calls = 0;
  /// The most recent call, kept so a mismatch can be reported by name —
  /// the hash alone cannot be inverted back into an op sequence.
  OpKind last_kind = OpKind::P2P;  ///< P2P = no collective issued yet
  std::uint64_t last_bytes = 0;

  void mix(OpKind kind, std::uint64_t bytes) {
    hash = (hash ^ static_cast<std::uint64_t>(kind)) * kPrime;
    hash = (hash ^ bytes) * kPrime;
    ++calls;
    last_kind = kind;
    last_bytes = bytes;
  }
  bool operator==(const ContextFingerprint&) const = default;
};

/// The op kind the calling thread is currently executing (collectives set
/// this around their p2p traffic so sends are attributed correctly).
[[nodiscard]] OpKind current_op();
void set_current_op(OpKind kind);

/// RAII attribution scope used inside collectives. Nested scopes do NOT
/// override the outermost one: an all-reduce implemented as reduce-scatter +
/// all-gather attributes all of its traffic to AllReduce.
class OpScope {
 public:
  explicit OpScope(OpKind kind) : saved_(current_op()) {
    if (saved_ == OpKind::P2P) set_current_op(kind);
  }
  ~OpScope() { set_current_op(saved_); }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  OpKind saved_;
};

}  // namespace ptucker::mps
