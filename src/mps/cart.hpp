#pragma once
/// \file cart.hpp
/// \brief N-way Cartesian processor grid (paper Sec. IV).
///
/// A CartGrid maps the P ranks of a communicator onto a logical
/// P1 x P2 x ... x PN grid. Coordinates vary fastest in mode 1, matching the
/// tensor layout, so the linearization is rank = c1 + P1*(c2 + P2*(...)).
///
/// Two families of sub-communicators are exposed, using the paper's terms:
///  - mode_comm(n): the "processor column" for mode n — ranks that differ
///    only in coordinate n (size Pn). TTM reduces and Gram shifts happen here.
///  - slice_comm(n): the "processor row" for mode n — ranks sharing
///    coordinate n (size P/Pn). The Gram all-reduce happens here.

#include <vector>

#include "mps/collectives.hpp"
#include "mps/comm.hpp"

namespace ptucker::mps {

class CartGrid {
 public:
  /// Collective: builds the grid and all 2N sub-communicators.
  /// Requires prod(shape) == comm.size().
  CartGrid(Comm comm, std::vector<int> shape);

  [[nodiscard]] int order() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] const std::vector<int>& shape() const { return shape_; }
  [[nodiscard]] int extent(int n) const {
    return shape_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] const std::vector<int>& coords() const { return coords_; }
  [[nodiscard]] int coord(int n) const {
    return coords_[static_cast<std::size_t>(n)];
  }

  /// The full-grid communicator.
  [[nodiscard]] const Comm& comm() const { return comm_; }

  /// Ranks varying only in mode n (size Pn); my rank there == coord(n).
  [[nodiscard]] const Comm& mode_comm(int n) const {
    return mode_comms_[static_cast<std::size_t>(n)];
  }

  /// Ranks sharing coordinate n (size P/Pn).
  [[nodiscard]] const Comm& slice_comm(int n) const {
    return slice_comms_[static_cast<std::size_t>(n)];
  }

  /// Grid-rank of given coordinates.
  [[nodiscard]] int rank_of(const std::vector<int>& coords) const;

  /// Coordinates of a given grid rank.
  [[nodiscard]] std::vector<int> coords_of(int rank) const;

 private:
  Comm comm_;
  std::vector<int> shape_;
  std::vector<int> coords_;
  std::vector<Comm> mode_comms_;
  std::vector<Comm> slice_comms_;
};

/// All factorizations of \p p into \p order positive extents (every ordered
/// tuple with product p). Used by the grid-sweep bench (Fig. 8a) and the
/// auto-tuning shortlist.
[[nodiscard]] std::vector<std::vector<int>> all_grid_shapes(int p, int order);

/// Heuristic shortlist of grid shapes for a given tensor shape: prefers
/// P1 = 1 (paper Sec. VIII-B) and extents that divide evenly into dims.
[[nodiscard]] std::vector<std::vector<int>> heuristic_grid_shapes(
    int p, const std::vector<std::size_t>& dims, std::size_t max_shapes = 4);

}  // namespace ptucker::mps
