#include "mps/runtime.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace ptucker::mps {

Runtime::Runtime(int world_size)
    : universe_(std::make_unique<Universe>(world_size)) {}

Runtime::~Runtime() = default;

int Runtime::world_size() const { return universe_->world_size(); }

void Runtime::run(const std::function<void(Comm&)>& body) {
  universe_->clear_abort();
  universe_->reset_schedule();
  universe_->clear_async_leaks();
  const int p = universe_->world_size();

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([this, r, &body, &errors]() {
      util::set_thread_rank(r);
      try {
        Comm comm = Comm::world(universe_.get(), r);
        body(comm);
      } catch (const AbortError&) {
        // Secondary failure caused by another rank's abort; the original
        // exception carries the diagnosis.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        try {
          std::rethrow_exception(errors[static_cast<std::size_t>(r)]);
        } catch (const std::exception& e) {
          universe_->abort(e.what());
        } catch (...) {
          universe_->abort("unknown exception");
        }
      }
      util::set_thread_rank(-1);
    });
  }
  for (auto& t : threads) t.join();

  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  if (universe_->aborted()) {
    // All ranks saw only AbortError (shouldn't happen, but be defensive).
    throw InternalError("parallel region aborted: " +
                        universe_->abort_reason());
  }
  // A handle dropped mid-flight also leaves its messages in mailboxes, so
  // this check precedes assert_quiescent: the leak names the op, the
  // quiescence failure would only name the symptom.
  universe_->assert_no_async_leaks();
  if (universe_->verify_schedule_enabled()) {
    // Before assert_quiescent: a divergent schedule usually leaks messages
    // too, and the schedule diagnosis is the actionable one.
    universe_->verify_schedule();
  }
  universe_->assert_quiescent();
}

const CommStats& Runtime::rank_stats(int rank) const {
  return universe_->stats(rank);
}

CommStats Runtime::total_stats() const { return universe_->total_stats(); }

CommStats Runtime::max_stats() const { return universe_->max_stats(); }

void Runtime::reset_stats() { universe_->reset_stats(); }

void Runtime::set_recv_timeout_ms(long ms) {
  universe_->set_recv_timeout(std::chrono::milliseconds(ms));
}

void Runtime::set_verify_schedule(bool on) {
  universe_->set_verify_schedule(on);
}

void run(int world_size, const std::function<void(Comm&)>& body) {
  Runtime rt(world_size);
  rt.run(body);
}

}  // namespace ptucker::mps
