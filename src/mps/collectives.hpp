#pragma once
/// \file collectives.hpp
/// \brief Collective operations built on point-to-point messages, exposed
/// as a two-phase initiate/complete API.
///
/// Algorithms follow the classical implementations referenced by the paper
/// for its Tab. I cost model (Chan et al. 2007, Thakur et al. 2005):
///  - broadcast / reduce / gather-to-root: binomial trees (any P),
///  - all-gather / reduce-scatter: bandwidth-optimal rings (any P),
///  - all-reduce: reduce-scatter + all-gather (Rabenseifner) for large
///    payloads, reduce + broadcast for latency-bound payloads.
///
/// Each algorithm is compiled into a per-rank action script at initiation
/// (`ibroadcast` / `ireduce` / `iallreduce` / `iallgatherv` /
/// `ireduce_scatter`, returning a CollectiveHandle) and driven by
/// `wait()`/`test()` — see collective_handle.hpp. The blocking entry points
/// are thin istart+wait wrappers over the same scripts, so there is exactly
/// one implementation per algorithm and the nonblocking path is bitwise
/// identical to the blocking one by construction.
///
/// Per-rank injected words for the ring algorithms equal the paper's
/// (P-1)/P * W beta terms exactly; the cost-model tests assert this.
///
/// All functions are collective: every rank of the communicator must call
/// (for the i-forms: initiate) them in the same order. Reduction operators
/// must be commutative and associative (floating-point sums are reduced in
/// a deterministic order for a fixed communicator size, so repeated runs
/// are bitwise reproducible).

#include <cstring>
#include <span>
#include <vector>

#include "mps/collective_handle.hpp"
#include "mps/comm.hpp"
#include "util/blocks.hpp"

namespace ptucker::mps {

/// --- reduction operators ---------------------------------------------------

template <class T>
struct Sum {
  T operator()(const T& a, const T& b) const { return a + b; }
};

template <class T>
struct Max {
  T operator()(const T& a, const T& b) const { return a < b ? b : a; }
};

template <class T>
struct Min {
  T operator()(const T& a, const T& b) const { return b < a ? b : a; }
};

namespace detail {
// Reserved internal tag bases for the blocking rooted varied-size
// collectives (user tags must be >= 0). The five scripted collectives use
// the per-initiation async tag space instead (collective_handle.hpp).
constexpr int kTagGather = -6000;
constexpr int kTagScatter = -7000;

inline std::vector<std::size_t> offsets_from_counts(
    std::span<const std::size_t> counts) {
  std::vector<std::size_t> offsets(counts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i + 1] = offsets[i] + counts[i];
  }
  return offsets;
}

template <class T>
[[nodiscard]] inline std::span<const std::byte> bytes_of(const T* data,
                                                         std::size_t n) {
  return std::as_bytes(std::span<const T>(data, n));
}

/// --- script builders -------------------------------------------------------
/// Each builder appends the exact send/recv sequence of the corresponding
/// blocking algorithm to \p op. Scratch buffers live in the op's RingState,
/// which the closures reference by raw pointer (the op owns the state).

/// Binomial-tree broadcast of \p buf from \p root.
template <class T>
void build_bcast(AsyncOp& op, const Comm& comm, std::span<T> buf, int root,
                 int tag) {
  const int p = comm.size();
  if (p == 1) return;
  const int vr = (comm.rank() - root + p) % p;
  auto actual = [&](int vrank) { return (vrank + root) % p; };

  int mask = 1;
  int recv_mask = 0;
  while (mask < p) {
    if ((vr & mask) != 0) {
      recv_mask = mask;
      break;
    }
    mask <<= 1;
  }
  if (recv_mask != 0) {
    AsyncAction a;
    a.kind = AsyncAction::Kind::Recv;
    a.peer = actual(vr - recv_mask);
    a.tag = tag;
    a.recv_bytes = buf.size_bytes();
    T* dst = buf.data();
    a.consume = [dst](std::span<const std::byte> payload) {
      std::memcpy(dst, payload.data(), payload.size());
    };
    op.actions.push_back(std::move(a));
    mask = recv_mask;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((vr & (mask - 1)) == 0 && (vr | mask) != vr && vr + mask < p) {
      AsyncAction a;
      a.kind = AsyncAction::Kind::Send;
      a.peer = actual(vr + mask);
      a.tag = tag;
      const T* src = buf.data();
      const std::size_t n = buf.size();
      a.produce = [src, n] { return bytes_of(src, n); };
      op.actions.push_back(std::move(a));
    }
    mask >>= 1;
  }
}

/// Binomial-tree reduction into st->acc (pre-filled with this rank's
/// input). Returns true iff this rank is the tree root (vr == 0), whose
/// acc holds the full reduction once the script completes.
template <class T, class Op>
bool build_reduce_tree(AsyncOp& op, const Comm& comm, RingState<T>* st,
                       int root, int tag, Op theop) {
  const int p = comm.size();
  const int vr = (comm.rank() - root + p) % p;
  auto actual = [&](int vrank) { return (vrank + root) % p; };

  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      AsyncAction a;
      a.kind = AsyncAction::Kind::Send;
      a.peer = actual(vr - mask);
      a.tag = tag;
      RingState<T>* s = st;
      a.produce = [s] { return bytes_of(s->acc.data(), s->acc.size()); };
      op.actions.push_back(std::move(a));
      return false;  // leaf/subtree done; nothing more to contribute
    }
    const int partner = vr | mask;
    if (partner < p) {
      AsyncAction a;
      a.kind = AsyncAction::Kind::Recv;
      a.peer = actual(partner);
      a.tag = tag;
      a.recv_bytes = st->acc.size() * sizeof(T);
      RingState<T>* s = st;
      a.consume = [s, theop](std::span<const std::byte> payload) {
        std::memcpy(s->tmp.data(), payload.data(), payload.size());
        for (std::size_t i = 0; i < s->acc.size(); ++i) {
          s->acc[i] = theop(s->acc[i], s->tmp[i]);
        }
      };
      op.actions.push_back(std::move(a));
    }
    mask <<= 1;
  }
  return true;  // only the root completes the tree
}

/// Ring all-gather over the blocks of \p all (counts/offsets fixed at build
/// time). The caller is responsible for placing its own contribution at
/// all + offsets[rank] before the script's first send executes.
template <class T>
void build_allgatherv_ring(AsyncOp& op, const Comm& comm, T* all,
                           const std::vector<std::size_t>& counts,
                           const std::vector<std::size_t>& offsets, int tag) {
  const int p = comm.size();
  if (p == 1) return;
  const int r = comm.rank();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  int cur = r;
  for (int step = 0; step < p - 1; ++step) {
    const std::size_t cu = static_cast<std::size_t>(cur);
    {
      AsyncAction a;
      a.kind = AsyncAction::Kind::Send;
      a.peer = right;
      a.tag = tag;
      const T* src = all + offsets[cu];
      const std::size_t n = counts[cu];
      a.produce = [src, n] { return bytes_of(src, n); };
      op.actions.push_back(std::move(a));
    }
    const int prev = (cur - 1 + p) % p;
    const std::size_t pu = static_cast<std::size_t>(prev);
    {
      AsyncAction a;
      a.kind = AsyncAction::Kind::Recv;
      a.peer = left;
      a.tag = tag;
      a.recv_bytes = counts[pu] * sizeof(T);
      T* dst = all + offsets[pu];
      a.consume = [dst](std::span<const std::byte> payload) {
        std::memcpy(dst, payload.data(), payload.size());
      };
      op.actions.push_back(std::move(a));
    }
    cur = prev;
  }
}

/// Ring reduce-scatter over st->work (pre-filled with this rank's full
/// input; st->counts / st->offsets pre-filled). After the script, block
/// rank of work holds this rank's reduced block.
template <class T, class Op>
void build_reduce_scatter_ring(AsyncOp& op, const Comm& comm,
                               RingState<T>* st, int tag, Op theop) {
  const int p = comm.size();
  if (p == 1) return;
  const int r = comm.rank();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  for (int step = 0; step < p - 1; ++step) {
    const int send_idx = ((r - step - 1) % p + p) % p;
    const int recv_idx = ((r - step - 2) % p + p) % p;
    const std::size_t su = static_cast<std::size_t>(send_idx);
    const std::size_t ru = static_cast<std::size_t>(recv_idx);
    {
      AsyncAction a;
      a.kind = AsyncAction::Kind::Send;
      a.peer = right;
      a.tag = tag;
      RingState<T>* s = st;
      a.produce = [s, su] {
        return bytes_of(s->work.data() + s->offsets[su], s->counts[su]);
      };
      op.actions.push_back(std::move(a));
    }
    {
      AsyncAction a;
      a.kind = AsyncAction::Kind::Recv;
      a.peer = left;
      a.tag = tag;
      a.recv_bytes = st->counts[ru] * sizeof(T);
      RingState<T>* s = st;
      a.consume = [s, ru, theop](std::span<const std::byte> payload) {
        const T* incoming = reinterpret_cast<const T*>(payload.data());
        T* chunk = s->work.data() + s->offsets[ru];
        for (std::size_t i = 0; i < s->counts[ru]; ++i) {
          chunk[i] = theop(chunk[i], incoming[i]);
        }
      };
      op.actions.push_back(std::move(a));
    }
  }
}

[[nodiscard]] inline std::unique_ptr<AsyncOp> make_async_op(const Comm& comm,
                                                            OpKind kind) {
  auto op = std::make_unique<AsyncOp>();
  op->comm = comm;
  op->kind = kind;
  return op;
}

}  // namespace detail

/// --- nonblocking point-to-point ---------------------------------------------

/// Initiate a send. The transport is eager (the payload is copied into the
/// destination mailbox at initiation), so the returned handle is already
/// complete; it exists so call sites that pipeline sends and receives can
/// treat both uniformly.
template <class T>
[[nodiscard]] CollectiveHandle isend(const Comm& comm, std::span<const T> buf,
                                     int dest, int tag) {
  comm.send(buf, dest, tag);
  auto op = std::make_unique<detail::AsyncOp>();
  op->comm = comm;
  op->kind = OpKind::P2P;
  return detail::launch(std::move(op));
}

/// Initiate a receive into \p buf (which must outlive completion). The
/// matched payload size must equal buf.size_bytes().
template <class T>
[[nodiscard]] CollectiveHandle irecv(const Comm& comm, std::span<T> buf,
                                     int src, int tag) {
  PT_CHECK(src >= 0 && src < comm.size(),
           "irecv src " << src << " out of range");
  auto op = std::make_unique<detail::AsyncOp>();
  op->comm = comm;
  op->kind = OpKind::P2P;
  detail::AsyncAction a;
  a.kind = detail::AsyncAction::Kind::Recv;
  a.peer = src;
  a.tag = tag;
  a.recv_bytes = buf.size_bytes();
  T* dst = buf.data();
  a.consume = [dst](std::span<const std::byte> payload) {
    std::memcpy(dst, payload.data(), payload.size());
  };
  op->actions.push_back(std::move(a));
  return detail::launch(std::move(op));
}

/// --- broadcast ---------------------------------------------------------------

/// Initiate a binomial-tree broadcast of buf from root. \p buf must stay
/// valid (and at non-roots untouched) until the handle completes.
template <class T>
[[nodiscard]] CollectiveHandle ibroadcast(const Comm& comm, std::span<T> buf,
                                          int root) {
  comm.note_collective(OpKind::Broadcast, buf.size_bytes());
  auto op = detail::make_async_op(comm, OpKind::Broadcast);
  const int tag = detail::async_tag(comm.alloc_async_seq(), 0);
  detail::build_bcast(*op, comm, buf, root, tag);
  return detail::launch(std::move(op));
}

template <class T>
void broadcast(const Comm& comm, std::span<T> buf, int root) {
  ibroadcast(comm, buf, root).wait();
}

/// --- reduce ------------------------------------------------------------------

/// Initiate a binomial-tree reduction to root. \p out must have in.size()
/// elements at the root and may be empty elsewhere; in and out must not
/// alias. The input is captured (copied) at initiation.
template <class T, class Op = Sum<T>>
[[nodiscard]] CollectiveHandle ireduce(const Comm& comm, std::span<const T> in,
                                       std::span<T> out, int root, Op op = {}) {
  comm.note_collective(OpKind::Reduce, in.size_bytes());
  auto aop = detail::make_async_op(comm, OpKind::Reduce);
  const int tag = detail::async_tag(comm.alloc_async_seq(), 0);

  auto st = std::make_shared<detail::RingState<T>>();
  st->acc.assign(in.begin(), in.end());
  st->tmp.resize(in.size());
  aop->state = st;

  if (detail::build_reduce_tree(*aop, comm, st.get(), root, tag, op)) {
    PT_CHECK(out.size() == in.size(), "reduce: bad out size at root");
    detail::AsyncAction a;
    a.kind = detail::AsyncAction::Kind::Local;
    detail::RingState<T>* s = st.get();
    T* dst = out.data();
    a.run = [s, dst] {
      std::memcpy(dst, s->acc.data(), s->acc.size() * sizeof(T));
    };
    aop->actions.push_back(std::move(a));
  }
  return detail::launch(std::move(aop));
}

template <class T, class Op = Sum<T>>
void reduce(const Comm& comm, std::span<const T> in, std::span<T> out,
            int root, Op op = {}) {
  ireduce(comm, in, out, root, op).wait();
}

/// --- all-gather ----------------------------------------------------------------

/// Initiate a ring all-gather with per-rank counts. \p all receives rank
/// i's contribution at offset sum(counts[0..i)); this rank's own block is
/// placed at initiation, the rest as the ring progresses. \p all must stay
/// valid until completion.
template <class T>
[[nodiscard]] CollectiveHandle iallgatherv(const Comm& comm,
                                           std::span<const T> mine,
                                           std::span<T> all,
                                           std::span<const std::size_t> counts) {
  const int p = comm.size();
  comm.note_collective(OpKind::AllGather, all.size_bytes());
  PT_CHECK(static_cast<int>(counts.size()) == p, "allgatherv: counts size");
  auto op = detail::make_async_op(comm, OpKind::AllGather);
  const int tag = detail::async_tag(comm.alloc_async_seq(), 0);

  auto st = std::make_shared<detail::RingState<T>>();
  st->counts.assign(counts.begin(), counts.end());
  st->offsets = detail::offsets_from_counts(counts);
  op->state = st;

  PT_CHECK(all.size() == st->offsets[static_cast<std::size_t>(p)],
           "allgatherv: output buffer size mismatch");
  const int r = comm.rank();
  PT_CHECK(mine.size() == counts[static_cast<std::size_t>(r)],
           "allgatherv: my contribution size mismatch");
  std::memcpy(all.data() + st->offsets[static_cast<std::size_t>(r)],
              mine.data(), mine.size() * sizeof(T));
  detail::build_allgatherv_ring(*op, comm, all.data(), st->counts,
                                st->offsets, tag);
  return detail::launch(std::move(op));
}

template <class T>
void allgatherv(const Comm& comm, std::span<const T> mine, std::span<T> all,
                std::span<const std::size_t> counts) {
  iallgatherv(comm, mine, all, counts).wait();
}

/// Equal-count all-gather: every rank contributes mine.size() elements.
template <class T>
void allgather(const Comm& comm, std::span<const T> mine, std::span<T> all) {
  const std::vector<std::size_t> counts(
      static_cast<std::size_t>(comm.size()), mine.size());
  allgatherv(comm, mine, all, std::span<const std::size_t>(counts));
}

/// --- reduce-scatter ---------------------------------------------------------

/// Initiate a ring reduce-scatter: element-wise reduction of each rank's
/// full \p in, with block i of the result (counts[i] elements) delivered to
/// rank i's \p out. Bandwidth-optimal: each rank injects W - counts[rank]
/// words. The input is captured (copied) at initiation; \p out is written
/// at completion.
template <class T, class Op = Sum<T>>
[[nodiscard]] CollectiveHandle ireduce_scatter(
    const Comm& comm, std::span<const T> in, std::span<T> out,
    std::span<const std::size_t> counts, Op op = {}) {
  const int p = comm.size();
  comm.note_collective(OpKind::ReduceScatter, in.size_bytes());
  PT_CHECK(static_cast<int>(counts.size()) == p, "reduce_scatter: counts");
  auto aop = detail::make_async_op(comm, OpKind::ReduceScatter);
  const int tag = detail::async_tag(comm.alloc_async_seq(), 0);

  auto st = std::make_shared<detail::RingState<T>>();
  st->counts.assign(counts.begin(), counts.end());
  st->offsets = detail::offsets_from_counts(counts);
  aop->state = st;

  PT_CHECK(in.size() == st->offsets[static_cast<std::size_t>(p)],
           "reduce_scatter: input size mismatch");
  const int r = comm.rank();
  PT_CHECK(out.size() == counts[static_cast<std::size_t>(r)],
           "reduce_scatter: output size mismatch");
  st->work.assign(in.begin(), in.end());
  detail::build_reduce_scatter_ring(*aop, comm, st.get(), tag, op);
  {
    detail::AsyncAction a;
    a.kind = detail::AsyncAction::Kind::Local;
    detail::RingState<T>* s = st.get();
    T* dst = out.data();
    const std::size_t ru = static_cast<std::size_t>(r);
    a.run = [s, dst, ru] {
      std::memcpy(dst, s->work.data() + s->offsets[ru],
                  s->counts[ru] * sizeof(T));
    };
    aop->actions.push_back(std::move(a));
  }
  return detail::launch(std::move(aop));
}

template <class T, class Op = Sum<T>>
void reduce_scatter(const Comm& comm, std::span<const T> in, std::span<T> out,
                    std::span<const std::size_t> counts, Op op = {}) {
  ireduce_scatter(comm, in, out, counts, op).wait();
}

/// --- all-reduce ---------------------------------------------------------------

/// Initiate an in-place all-reduce. Uses reduce-scatter + all-gather
/// (Rabenseifner) when the payload is large enough to be bandwidth-bound,
/// otherwise a binomial reduce + broadcast. The input is captured at
/// initiation; \p inout must not be read or written until completion.
template <class T, class Op = Sum<T>>
[[nodiscard]] CollectiveHandle iallreduce(const Comm& comm, std::span<T> inout,
                                          Op op = {}) {
  const int p = comm.size();
  comm.note_collective(OpKind::AllReduce, inout.size_bytes());
  auto aop = detail::make_async_op(comm, OpKind::AllReduce);
  const std::uint64_t seq = comm.alloc_async_seq();
  if (p == 1 || inout.empty()) return detail::launch(std::move(aop));

  const std::size_t count = inout.size();
  auto st = std::make_shared<detail::RingState<T>>();
  aop->state = st;
  detail::RingState<T>* s = st.get();

  if (count >= static_cast<std::size_t>(2 * p)) {
    // Phase 0: ring reduce-scatter of a working copy; phase 1: ring
    // all-gather of the reduced blocks straight out of inout.
    st->counts =
        util::uniform_block_sizes(count, static_cast<std::size_t>(p));
    st->offsets = detail::offsets_from_counts(
        std::span<const std::size_t>(st->counts));
    st->work.assign(inout.begin(), inout.end());
    detail::build_reduce_scatter_ring(*aop, comm, s, detail::async_tag(seq, 0),
                                      op);
    {
      // Transition: my reduced block moves into my slot of inout, exactly
      // the own-block placement the all-gather phase starts from.
      detail::AsyncAction a;
      a.kind = detail::AsyncAction::Kind::Local;
      T* dst = inout.data();
      const std::size_t ru = static_cast<std::size_t>(comm.rank());
      a.run = [s, dst, ru] {
        std::memcpy(dst + s->offsets[ru], s->work.data() + s->offsets[ru],
                    s->counts[ru] * sizeof(T));
      };
      aop->actions.push_back(std::move(a));
    }
    detail::build_allgatherv_ring(*aop, comm, inout.data(), st->counts,
                                  st->offsets, detail::async_tag(seq, 1));
  } else {
    st->acc.assign(inout.begin(), inout.end());
    st->tmp.resize(count);
    if (detail::build_reduce_tree(*aop, comm, s, 0, detail::async_tag(seq, 0),
                                  op)) {
      detail::AsyncAction a;
      a.kind = detail::AsyncAction::Kind::Local;
      T* dst = inout.data();
      a.run = [s, dst] {
        std::memcpy(dst, s->acc.data(), s->acc.size() * sizeof(T));
      };
      aop->actions.push_back(std::move(a));
    }
    detail::build_bcast(*aop, comm, inout, 0, detail::async_tag(seq, 1));
  }
  return detail::launch(std::move(aop));
}

template <class T, class Op = Sum<T>>
void allreduce(const Comm& comm, std::span<T> inout, Op op = {}) {
  iallreduce(comm, inout, op).wait();
}

/// Scalar all-reduce convenience.
template <class T, class Op = Sum<T>>
[[nodiscard]] T allreduce_scalar(const Comm& comm, T value, Op op = {}) {
  allreduce(comm, std::span<T>(&value, 1), op);
  return value;
}

/// --- gather / scatter to or from a root ----------------------------------------

/// Schedule for the rooted varied-size collectives. Tree (the default)
/// forwards packed subtree payloads up/down a binomial tree, dropping the
/// root's latency term from (P-1) alpha to ceil(log2 P) alpha at the price
/// of relaying each word up to log2 P times; Flat is the direct-send
/// root loop, kept for the IO-path ablation bench and as a test oracle.
enum class RootedAlgo { Tree, Flat };

namespace detail {
/// Packed subtree payloads travel as records: u64 vrank | u64 bytes | bytes.
inline void pack_record(std::vector<std::byte>& buf, std::uint64_t vrank,
                        std::span<const std::byte> payload) {
  const std::uint64_t header[2] = {vrank, payload.size()};
  const auto* h = reinterpret_cast<const std::byte*>(header);
  buf.insert(buf.end(), h, h + sizeof(header));
  buf.insert(buf.end(), payload.begin(), payload.end());
}

template <class OnRecord>
inline void unpack_records(std::span<const std::byte> buf, int p,
                           OnRecord on_record) {
  std::size_t pos = 0;
  while (pos < buf.size()) {
    std::uint64_t header[2];
    PT_CHECK(pos + sizeof(header) <= buf.size(), "collectives: short record");
    std::memcpy(header, buf.data() + pos, sizeof(header));
    pos += sizeof(header);
    PT_CHECK(header[0] < static_cast<std::uint64_t>(p) &&
                 pos + header[1] <= buf.size(),
             "collectives: corrupt record");
    on_record(static_cast<int>(header[0]),
              buf.subspan(pos, static_cast<std::size_t>(header[1])));
    pos += static_cast<std::size_t>(header[1]);
  }
}
}  // namespace detail

/// Gather variable-size contributions to the root. Returns per-rank
/// payloads at the root; empty vector elsewhere.
template <class T>
[[nodiscard]] std::vector<std::vector<T>> gather_varied(
    const Comm& comm, std::span<const T> mine, int root,
    RootedAlgo algo = RootedAlgo::Tree) {
  const int p = comm.size();
  // Payload sizes legitimately differ per rank: fingerprint the op only.
  comm.note_collective(OpKind::Gather, 0);
  OpScope scope(OpKind::Gather);
  if (algo == RootedAlgo::Flat) {
    if (comm.rank() != root) {
      comm.send(mine, root, detail::kTagGather);
      return {};
    }
    std::vector<std::vector<T>> result(static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      if (src == root) {
        result[static_cast<std::size_t>(src)].assign(mine.begin(), mine.end());
        continue;
      }
      auto bytes = comm.recv_bytes_any_size(src, detail::kTagGather);
      PT_CHECK(bytes.size() % sizeof(T) == 0, "gather_varied: payload size");
      std::vector<T>& slot = result[static_cast<std::size_t>(src)];
      slot.resize(bytes.size() / sizeof(T));
      std::memcpy(slot.data(), bytes.data(), bytes.size());
    }
    return result;
  }

  // Binomial tree: after the round with bit `mask`, vrank vr holds the
  // payloads of virtual ranks [vr, vr + mask) (clipped to p).
  const int vr = (comm.rank() - root + p) % p;
  auto actual = [&](int vrank) { return (vrank + root) % p; };
  std::vector<std::vector<std::byte>> sub(static_cast<std::size_t>(p));
  const auto mine_bytes = std::as_bytes(mine);
  sub[static_cast<std::size_t>(vr)].assign(mine_bytes.begin(),
                                           mine_bytes.end());
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      std::vector<std::byte> packed;
      for (int v = vr; v < std::min(vr + mask, p); ++v) {
        packed.reserve(packed.size() + 16 +
                       sub[static_cast<std::size_t>(v)].size());
        detail::pack_record(packed, static_cast<std::uint64_t>(v),
                            sub[static_cast<std::size_t>(v)]);
      }
      comm.send_bytes(packed, actual(vr - mask), detail::kTagGather);
      return {};
    }
    const int partner = vr | mask;
    if (partner < p) {
      const auto packed =
          comm.recv_bytes_any_size(actual(partner), detail::kTagGather);
      detail::unpack_records(
          std::span<const std::byte>(packed), p,
          [&](int v, std::span<const std::byte> payload) {
            sub[static_cast<std::size_t>(v)].assign(payload.begin(),
                                                    payload.end());
          });
    }
    mask <<= 1;
  }
  PT_CHECK(vr == 0, "gather_varied: non-root completed tree");
  std::vector<std::vector<T>> result(static_cast<std::size_t>(p));
  for (int v = 0; v < p; ++v) {
    const std::vector<std::byte>& bytes = sub[static_cast<std::size_t>(v)];
    PT_CHECK(bytes.size() % sizeof(T) == 0, "gather_varied: payload size");
    std::vector<T>& slot = result[static_cast<std::size_t>(actual(v))];
    slot.resize(bytes.size() / sizeof(T));
    std::memcpy(slot.data(), bytes.data(), bytes.size());
  }
  return result;
}

/// Scatter variable-size blocks from the root. \p blocks is only read at
/// the root and must have one entry per rank.
template <class T>
[[nodiscard]] std::vector<T> scatter_varied(
    const Comm& comm, const std::vector<std::vector<T>>& blocks, int root,
    RootedAlgo algo = RootedAlgo::Tree) {
  const int p = comm.size();
  // Blocks are only known at the root: fingerprint the op only.
  comm.note_collective(OpKind::Scatter, 0);
  OpScope scope(OpKind::Scatter);
  if (algo == RootedAlgo::Flat) {
    if (comm.rank() == root) {
      PT_CHECK(static_cast<int>(blocks.size()) == p,
               "scatter_varied: need one block per rank");
      for (int dst = 0; dst < p; ++dst) {
        if (dst == root) continue;
        comm.send(std::span<const T>(blocks[static_cast<std::size_t>(dst)]),
                  dst, detail::kTagScatter);
      }
      return blocks[static_cast<std::size_t>(root)];
    }
    auto bytes = comm.recv_bytes_any_size(root, detail::kTagScatter);
    PT_CHECK(bytes.size() % sizeof(T) == 0, "scatter_varied: payload size");
    std::vector<T> mine(bytes.size() / sizeof(T));
    std::memcpy(mine.data(), bytes.data(), bytes.size());
    return mine;
  }

  // Binomial tree (mirror of the gather): each node receives the packed
  // payloads of its whole subtree, then halves it downward.
  const int vr = (comm.rank() - root + p) % p;
  auto actual = [&](int vrank) { return (vrank + root) % p; };
  std::vector<std::vector<std::byte>> sub(static_cast<std::size_t>(p));
  int mask = 1;
  if (vr == 0) {
    PT_CHECK(static_cast<int>(blocks.size()) == p,
             "scatter_varied: need one block per rank");
    for (int v = 0; v < p; ++v) {
      const auto bytes = std::as_bytes(
          std::span<const T>(blocks[static_cast<std::size_t>(actual(v))]));
      sub[static_cast<std::size_t>(v)].assign(bytes.begin(), bytes.end());
    }
    while (mask < p) mask <<= 1;
  } else {
    while ((vr & mask) == 0) mask <<= 1;  // mask = lowest set bit of vr
    const auto packed =
        comm.recv_bytes_any_size(actual(vr - mask), detail::kTagScatter);
    detail::unpack_records(std::span<const std::byte>(packed), p,
                           [&](int v, std::span<const std::byte> payload) {
                             sub[static_cast<std::size_t>(v)].assign(
                                 payload.begin(), payload.end());
                           });
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vr + m >= p) continue;
    std::vector<std::byte> packed;
    for (int v = vr + m; v < std::min(vr + 2 * m, p); ++v) {
      detail::pack_record(packed, static_cast<std::uint64_t>(v),
                          sub[static_cast<std::size_t>(v)]);
      sub[static_cast<std::size_t>(v)].clear();
    }
    comm.send_bytes(packed, actual(vr + m), detail::kTagScatter);
  }
  const std::vector<std::byte>& bytes = sub[static_cast<std::size_t>(vr)];
  PT_CHECK(bytes.size() % sizeof(T) == 0, "scatter_varied: payload size");
  std::vector<T> mine(bytes.size() / sizeof(T));
  std::memcpy(mine.data(), bytes.data(), bytes.size());
  return mine;
}

}  // namespace ptucker::mps
