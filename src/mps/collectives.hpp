#pragma once
/// \file collectives.hpp
/// \brief Collective operations built on point-to-point messages.
///
/// Algorithms follow the classical implementations referenced by the paper
/// for its Tab. I cost model (Chan et al. 2007, Thakur et al. 2005):
///  - broadcast / reduce / gather-to-root: binomial trees (any P),
///  - all-gather / reduce-scatter: bandwidth-optimal rings (any P),
///  - all-reduce: reduce-scatter + all-gather (Rabenseifner) for large
///    payloads, reduce + broadcast for latency-bound payloads.
///
/// Per-rank injected words for the ring algorithms equal the paper's
/// (P-1)/P * W beta terms exactly; the cost-model tests assert this.
///
/// All functions are collective: every rank of the communicator must call
/// them in the same order. Reduction operators must be commutative and
/// associative (floating-point sums are reduced in a deterministic order for
/// a fixed communicator size, so repeated runs are bitwise reproducible).

#include <cstring>
#include <span>
#include <vector>

#include "mps/comm.hpp"
#include "util/blocks.hpp"

namespace ptucker::mps {

/// --- reduction operators ---------------------------------------------------

template <class T>
struct Sum {
  T operator()(const T& a, const T& b) const { return a + b; }
};

template <class T>
struct Max {
  T operator()(const T& a, const T& b) const { return a < b ? b : a; }
};

template <class T>
struct Min {
  T operator()(const T& a, const T& b) const { return b < a ? b : a; }
};

namespace detail {
// Reserved internal tag bases (user tags must be >= 0).
constexpr int kTagBcast = -2000;
constexpr int kTagReduce = -3000;
constexpr int kTagAllGather = -4000;
constexpr int kTagReduceScatter = -5000;
constexpr int kTagGather = -6000;
constexpr int kTagScatter = -7000;

inline std::vector<std::size_t> offsets_from_counts(
    std::span<const std::size_t> counts) {
  std::vector<std::size_t> offsets(counts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i + 1] = offsets[i] + counts[i];
  }
  return offsets;
}
}  // namespace detail

/// --- broadcast ---------------------------------------------------------------

/// Binomial-tree broadcast of buf from root to all ranks.
template <class T>
void broadcast(const Comm& comm, std::span<T> buf, int root) {
  const int p = comm.size();
  comm.note_collective(OpKind::Broadcast, buf.size_bytes());
  if (p == 1) return;
  OpScope scope(OpKind::Broadcast);
  const int vr = (comm.rank() - root + p) % p;
  auto actual = [&](int vrank) { return (vrank + root) % p; };

  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      comm.recv(buf, actual(vr - mask), detail::kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((vr & (mask - 1)) == 0 && (vr | mask) != vr && vr + mask < p) {
      comm.send(std::span<const T>(buf.data(), buf.size()), actual(vr + mask),
                detail::kTagBcast);
    }
    mask >>= 1;
  }
}

/// --- reduce ------------------------------------------------------------------

/// Binomial-tree reduction to root. \p out must have in.size() elements at
/// the root and may be empty elsewhere. in and out must not alias.
template <class T, class Op = Sum<T>>
void reduce(const Comm& comm, std::span<const T> in, std::span<T> out,
            int root, Op op = {}) {
  const int p = comm.size();
  comm.note_collective(OpKind::Reduce, in.size_bytes());
  if (p == 1) {
    PT_CHECK(out.size() == in.size(), "reduce: bad out size at root");
    std::memcpy(out.data(), in.data(), in.size() * sizeof(T));
    return;
  }
  OpScope scope(OpKind::Reduce);
  const int vr = (comm.rank() - root + p) % p;
  auto actual = [&](int vrank) { return (vrank + root) % p; };

  std::vector<T> acc(in.begin(), in.end());
  std::vector<T> tmp(in.size());
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      comm.send(std::span<const T>(acc), actual(vr - mask),
                detail::kTagReduce);
      return;  // leaf/subtree done; nothing more to contribute
    }
    const int partner = vr | mask;
    if (partner < p) {
      comm.recv(std::span<T>(tmp), actual(partner), detail::kTagReduce);
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = op(acc[i], tmp[i]);
    }
    mask <<= 1;
  }
  // Only the root reaches this point.
  PT_CHECK(vr == 0, "reduce: non-root completed tree");
  PT_CHECK(out.size() == in.size(), "reduce: bad out size at root");
  std::memcpy(out.data(), acc.data(), acc.size() * sizeof(T));
}

/// --- all-gather ----------------------------------------------------------------

/// Ring all-gather with per-rank counts. \p all receives rank i's
/// contribution at offset sum(counts[0..i)).
template <class T>
void allgatherv(const Comm& comm, std::span<const T> mine, std::span<T> all,
                std::span<const std::size_t> counts) {
  const int p = comm.size();
  comm.note_collective(OpKind::AllGather, all.size_bytes());
  PT_CHECK(static_cast<int>(counts.size()) == p, "allgatherv: counts size");
  const auto offsets = detail::offsets_from_counts(counts);
  PT_CHECK(all.size() == offsets[static_cast<std::size_t>(p)],
           "allgatherv: output buffer size mismatch");
  const int r = comm.rank();
  PT_CHECK(mine.size() == counts[static_cast<std::size_t>(r)],
           "allgatherv: my contribution size mismatch");
  std::memcpy(all.data() + offsets[static_cast<std::size_t>(r)], mine.data(),
              mine.size() * sizeof(T));
  if (p == 1) return;
  OpScope scope(OpKind::AllGather);

  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  int cur = r;
  for (int step = 0; step < p - 1; ++step) {
    const std::size_t cu = static_cast<std::size_t>(cur);
    comm.send(std::span<const T>(all.data() + offsets[cu], counts[cu]), right,
              detail::kTagAllGather);
    const int prev = (cur - 1 + p) % p;
    const std::size_t pu = static_cast<std::size_t>(prev);
    comm.recv(std::span<T>(all.data() + offsets[pu], counts[pu]), left,
              detail::kTagAllGather);
    cur = prev;
  }
}

/// Equal-count all-gather: every rank contributes mine.size() elements.
template <class T>
void allgather(const Comm& comm, std::span<const T> mine, std::span<T> all) {
  const std::vector<std::size_t> counts(
      static_cast<std::size_t>(comm.size()), mine.size());
  allgatherv(comm, mine, all, std::span<const std::size_t>(counts));
}

/// --- reduce-scatter ---------------------------------------------------------

/// Ring reduce-scatter: element-wise reduction of each rank's full \p in,
/// with block i of the result (counts[i] elements) delivered to rank i's
/// \p out. Bandwidth-optimal: each rank injects W - counts[rank] words.
template <class T, class Op = Sum<T>>
void reduce_scatter(const Comm& comm, std::span<const T> in, std::span<T> out,
                    std::span<const std::size_t> counts, Op op = {}) {
  const int p = comm.size();
  comm.note_collective(OpKind::ReduceScatter, in.size_bytes());
  PT_CHECK(static_cast<int>(counts.size()) == p, "reduce_scatter: counts");
  const auto offsets = detail::offsets_from_counts(counts);
  PT_CHECK(in.size() == offsets[static_cast<std::size_t>(p)],
           "reduce_scatter: input size mismatch");
  const int r = comm.rank();
  PT_CHECK(out.size() == counts[static_cast<std::size_t>(r)],
           "reduce_scatter: output size mismatch");
  if (p == 1) {
    std::memcpy(out.data(), in.data(), in.size() * sizeof(T));
    return;
  }
  OpScope scope(OpKind::ReduceScatter);

  std::vector<T> work(in.begin(), in.end());
  std::vector<T> incoming;
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  for (int step = 0; step < p - 1; ++step) {
    const int send_idx = ((r - step - 1) % p + p) % p;
    const int recv_idx = ((r - step - 2) % p + p) % p;
    const std::size_t su = static_cast<std::size_t>(send_idx);
    const std::size_t ru = static_cast<std::size_t>(recv_idx);
    comm.send(std::span<const T>(work.data() + offsets[su], counts[su]), right,
              detail::kTagReduceScatter);
    incoming.resize(counts[ru]);
    comm.recv(std::span<T>(incoming), left, detail::kTagReduceScatter);
    T* chunk = work.data() + offsets[ru];
    for (std::size_t i = 0; i < counts[ru]; ++i) {
      chunk[i] = op(chunk[i], incoming[i]);
    }
  }
  std::memcpy(out.data(), work.data() + offsets[static_cast<std::size_t>(r)],
              counts[static_cast<std::size_t>(r)] * sizeof(T));
}

/// --- all-reduce ---------------------------------------------------------------

/// In-place all-reduce. Uses reduce-scatter + all-gather (Rabenseifner) when
/// the payload is large enough to be bandwidth-bound, otherwise a binomial
/// reduce + broadcast.
template <class T, class Op = Sum<T>>
void allreduce(const Comm& comm, std::span<T> inout, Op op = {}) {
  const int p = comm.size();
  comm.note_collective(OpKind::AllReduce, inout.size_bytes());
  if (p == 1 || inout.empty()) return;
  OpScope scope(OpKind::AllReduce);
  const std::size_t count = inout.size();
  if (count >= static_cast<std::size_t>(2 * p)) {
    const auto counts = util::uniform_block_sizes(
        count, static_cast<std::size_t>(p));
    std::vector<T> block(counts[static_cast<std::size_t>(comm.rank())]);
    reduce_scatter(comm, std::span<const T>(inout.data(), inout.size()),
                   std::span<T>(block), std::span<const std::size_t>(counts),
                   op);
    allgatherv(comm, std::span<const T>(block), inout,
               std::span<const std::size_t>(counts));
  } else {
    std::vector<T> result(comm.rank() == 0 ? count : 0);
    reduce(comm, std::span<const T>(inout.data(), inout.size()),
           std::span<T>(result), 0, op);
    if (comm.rank() == 0) {
      std::memcpy(inout.data(), result.data(), count * sizeof(T));
    }
    broadcast(comm, inout, 0);
  }
}

/// Scalar all-reduce convenience.
template <class T, class Op = Sum<T>>
[[nodiscard]] T allreduce_scalar(const Comm& comm, T value, Op op = {}) {
  allreduce(comm, std::span<T>(&value, 1), op);
  return value;
}

/// --- gather / scatter to or from a root ----------------------------------------

/// Schedule for the rooted varied-size collectives. Tree (the default)
/// forwards packed subtree payloads up/down a binomial tree, dropping the
/// root's latency term from (P-1) alpha to ceil(log2 P) alpha at the price
/// of relaying each word up to log2 P times; Flat is the direct-send
/// root loop, kept for the IO-path ablation bench and as a test oracle.
enum class RootedAlgo { Tree, Flat };

namespace detail {
/// Packed subtree payloads travel as records: u64 vrank | u64 bytes | bytes.
inline void pack_record(std::vector<std::byte>& buf, std::uint64_t vrank,
                        std::span<const std::byte> payload) {
  const std::uint64_t header[2] = {vrank, payload.size()};
  const auto* h = reinterpret_cast<const std::byte*>(header);
  buf.insert(buf.end(), h, h + sizeof(header));
  buf.insert(buf.end(), payload.begin(), payload.end());
}

template <class OnRecord>
inline void unpack_records(std::span<const std::byte> buf, int p,
                           OnRecord on_record) {
  std::size_t pos = 0;
  while (pos < buf.size()) {
    std::uint64_t header[2];
    PT_CHECK(pos + sizeof(header) <= buf.size(), "collectives: short record");
    std::memcpy(header, buf.data() + pos, sizeof(header));
    pos += sizeof(header);
    PT_CHECK(header[0] < static_cast<std::uint64_t>(p) &&
                 pos + header[1] <= buf.size(),
             "collectives: corrupt record");
    on_record(static_cast<int>(header[0]),
              buf.subspan(pos, static_cast<std::size_t>(header[1])));
    pos += static_cast<std::size_t>(header[1]);
  }
}
}  // namespace detail

/// Gather variable-size contributions to the root. Returns per-rank
/// payloads at the root; empty vector elsewhere.
template <class T>
[[nodiscard]] std::vector<std::vector<T>> gather_varied(
    const Comm& comm, std::span<const T> mine, int root,
    RootedAlgo algo = RootedAlgo::Tree) {
  const int p = comm.size();
  // Payload sizes legitimately differ per rank: fingerprint the op only.
  comm.note_collective(OpKind::Gather, 0);
  OpScope scope(OpKind::Gather);
  if (algo == RootedAlgo::Flat) {
    if (comm.rank() != root) {
      comm.send(mine, root, detail::kTagGather);
      return {};
    }
    std::vector<std::vector<T>> result(static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      if (src == root) {
        result[static_cast<std::size_t>(src)].assign(mine.begin(), mine.end());
        continue;
      }
      auto bytes = comm.recv_bytes_any_size(src, detail::kTagGather);
      PT_CHECK(bytes.size() % sizeof(T) == 0, "gather_varied: payload size");
      std::vector<T>& slot = result[static_cast<std::size_t>(src)];
      slot.resize(bytes.size() / sizeof(T));
      std::memcpy(slot.data(), bytes.data(), bytes.size());
    }
    return result;
  }

  // Binomial tree: after the round with bit `mask`, vrank vr holds the
  // payloads of virtual ranks [vr, vr + mask) (clipped to p).
  const int vr = (comm.rank() - root + p) % p;
  auto actual = [&](int vrank) { return (vrank + root) % p; };
  std::vector<std::vector<std::byte>> sub(static_cast<std::size_t>(p));
  const auto mine_bytes = std::as_bytes(mine);
  sub[static_cast<std::size_t>(vr)].assign(mine_bytes.begin(),
                                           mine_bytes.end());
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      std::vector<std::byte> packed;
      for (int v = vr; v < std::min(vr + mask, p); ++v) {
        packed.reserve(packed.size() + 16 +
                       sub[static_cast<std::size_t>(v)].size());
        detail::pack_record(packed, static_cast<std::uint64_t>(v),
                            sub[static_cast<std::size_t>(v)]);
      }
      comm.send_bytes(packed, actual(vr - mask), detail::kTagGather);
      return {};
    }
    const int partner = vr | mask;
    if (partner < p) {
      const auto packed =
          comm.recv_bytes_any_size(actual(partner), detail::kTagGather);
      detail::unpack_records(
          std::span<const std::byte>(packed), p,
          [&](int v, std::span<const std::byte> payload) {
            sub[static_cast<std::size_t>(v)].assign(payload.begin(),
                                                    payload.end());
          });
    }
    mask <<= 1;
  }
  PT_CHECK(vr == 0, "gather_varied: non-root completed tree");
  std::vector<std::vector<T>> result(static_cast<std::size_t>(p));
  for (int v = 0; v < p; ++v) {
    const std::vector<std::byte>& bytes = sub[static_cast<std::size_t>(v)];
    PT_CHECK(bytes.size() % sizeof(T) == 0, "gather_varied: payload size");
    std::vector<T>& slot = result[static_cast<std::size_t>(actual(v))];
    slot.resize(bytes.size() / sizeof(T));
    std::memcpy(slot.data(), bytes.data(), bytes.size());
  }
  return result;
}

/// Scatter variable-size blocks from the root. \p blocks is only read at
/// the root and must have one entry per rank.
template <class T>
[[nodiscard]] std::vector<T> scatter_varied(
    const Comm& comm, const std::vector<std::vector<T>>& blocks, int root,
    RootedAlgo algo = RootedAlgo::Tree) {
  const int p = comm.size();
  // Blocks are only known at the root: fingerprint the op only.
  comm.note_collective(OpKind::Scatter, 0);
  OpScope scope(OpKind::Scatter);
  if (algo == RootedAlgo::Flat) {
    if (comm.rank() == root) {
      PT_CHECK(static_cast<int>(blocks.size()) == p,
               "scatter_varied: need one block per rank");
      for (int dst = 0; dst < p; ++dst) {
        if (dst == root) continue;
        comm.send(std::span<const T>(blocks[static_cast<std::size_t>(dst)]),
                  dst, detail::kTagScatter);
      }
      return blocks[static_cast<std::size_t>(root)];
    }
    auto bytes = comm.recv_bytes_any_size(root, detail::kTagScatter);
    PT_CHECK(bytes.size() % sizeof(T) == 0, "scatter_varied: payload size");
    std::vector<T> mine(bytes.size() / sizeof(T));
    std::memcpy(mine.data(), bytes.data(), bytes.size());
    return mine;
  }

  // Binomial tree (mirror of the gather): each node receives the packed
  // payloads of its whole subtree, then halves it downward.
  const int vr = (comm.rank() - root + p) % p;
  auto actual = [&](int vrank) { return (vrank + root) % p; };
  std::vector<std::vector<std::byte>> sub(static_cast<std::size_t>(p));
  int mask = 1;
  if (vr == 0) {
    PT_CHECK(static_cast<int>(blocks.size()) == p,
             "scatter_varied: need one block per rank");
    for (int v = 0; v < p; ++v) {
      const auto bytes = std::as_bytes(
          std::span<const T>(blocks[static_cast<std::size_t>(actual(v))]));
      sub[static_cast<std::size_t>(v)].assign(bytes.begin(), bytes.end());
    }
    while (mask < p) mask <<= 1;
  } else {
    while ((vr & mask) == 0) mask <<= 1;  // mask = lowest set bit of vr
    const auto packed =
        comm.recv_bytes_any_size(actual(vr - mask), detail::kTagScatter);
    detail::unpack_records(std::span<const std::byte>(packed), p,
                           [&](int v, std::span<const std::byte> payload) {
                             sub[static_cast<std::size_t>(v)].assign(
                                 payload.begin(), payload.end());
                           });
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vr + m >= p) continue;
    std::vector<std::byte> packed;
    for (int v = vr + m; v < std::min(vr + 2 * m, p); ++v) {
      detail::pack_record(packed, static_cast<std::uint64_t>(v),
                          sub[static_cast<std::size_t>(v)]);
      sub[static_cast<std::size_t>(v)].clear();
    }
    comm.send_bytes(packed, actual(vr + m), detail::kTagScatter);
  }
  const std::vector<std::byte>& bytes = sub[static_cast<std::size_t>(vr)];
  PT_CHECK(bytes.size() % sizeof(T) == 0, "scatter_varied: payload size");
  std::vector<T> mine(bytes.size() / sizeof(T));
  std::memcpy(mine.data(), bytes.data(), bytes.size());
  return mine;
}

}  // namespace ptucker::mps
