#include "mps/universe.hpp"

namespace ptucker::mps {

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::P2P: return "p2p";
    case OpKind::Barrier: return "barrier";
    case OpKind::Broadcast: return "broadcast";
    case OpKind::Reduce: return "reduce";
    case OpKind::AllReduce: return "all-reduce";
    case OpKind::AllGather: return "all-gather";
    case OpKind::ReduceScatter: return "reduce-scatter";
    case OpKind::Gather: return "gather";
    case OpKind::Scatter: return "scatter";
    case OpKind::kCount: break;
  }
  return "?";
}

namespace {
thread_local OpKind t_current_op = OpKind::P2P;
}

OpKind current_op() { return t_current_op; }
void set_current_op(OpKind kind) { t_current_op = kind; }

Universe::Universe(int world_size) : world_size_(world_size) {
  PT_REQUIRE(world_size >= 1, "world size must be >= 1, got " << world_size);
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>(this));
  }
  stats_.resize(static_cast<std::size_t>(world_size));
}

Mailbox& Universe::mailbox(int world_rank) {
  PT_CHECK(world_rank >= 0 && world_rank < world_size_,
           "mailbox rank " << world_rank << " out of range");
  return *mailboxes_[static_cast<std::size_t>(world_rank)];
}

void Universe::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(abort_mutex_);
    if (!aborted_.load(std::memory_order_acquire)) {
      abort_reason_ = reason;
    }
  }
  aborted_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) mb->interrupt();
}

std::string Universe::abort_reason() const {
  std::lock_guard<std::mutex> lock(abort_mutex_);
  return abort_reason_;
}

void Universe::clear_abort() {
  std::lock_guard<std::mutex> lock(abort_mutex_);
  aborted_.store(false, std::memory_order_release);
  abort_reason_.clear();
}

std::uint64_t Universe::register_context(std::uint64_t parent,
                                         std::uint64_t seq, int color) {
  std::lock_guard<std::mutex> lock(context_mutex_);
  auto key = std::make_tuple(parent, seq, color);
  auto it = context_registry_.find(key);
  if (it != context_registry_.end()) return it->second;
  const std::uint64_t ctx = next_context_++;
  context_registry_.emplace(key, ctx);
  return ctx;
}

CommStats& Universe::stats(int world_rank) {
  return stats_[static_cast<std::size_t>(world_rank)].stats;
}

const CommStats& Universe::stats(int world_rank) const {
  return stats_[static_cast<std::size_t>(world_rank)].stats;
}

CommStats Universe::total_stats() const {
  CommStats total;
  for (const auto& s : stats_) total += s.stats;
  return total;
}

CommStats Universe::max_stats() const {
  CommStats out;
  for (const auto& s : stats_) {
    out.messages_sent = std::max(out.messages_sent, s.stats.messages_sent);
    out.bytes_sent = std::max(out.bytes_sent, s.stats.bytes_sent);
    for (int i = 0; i < CommStats::kNumOps; ++i) {
      out.op_messages[i] =
          std::max(out.op_messages[i], s.stats.op_messages[i]);
      out.op_bytes[i] = std::max(out.op_bytes[i], s.stats.op_bytes[i]);
    }
  }
  return out;
}

void Universe::reset_stats() {
  for (auto& s : stats_) s.stats.clear();
}

void Universe::assert_quiescent() const {
  for (int r = 0; r < world_size_; ++r) {
    const std::size_t pending = mailboxes_[static_cast<std::size_t>(r)]->pending();
    PT_CHECK(pending == 0, "mailbox of rank "
                               << r << " still holds " << pending
                               << " message(s) after the parallel region — "
                                  "likely a tag mismatch or missing recv");
  }
}

}  // namespace ptucker::mps
