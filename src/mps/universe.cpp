#include "mps/universe.hpp"

#include <sstream>

namespace ptucker::mps {

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::P2P: return "p2p";
    case OpKind::Barrier: return "barrier";
    case OpKind::Broadcast: return "broadcast";
    case OpKind::Reduce: return "reduce";
    case OpKind::AllReduce: return "all-reduce";
    case OpKind::AllGather: return "all-gather";
    case OpKind::ReduceScatter: return "reduce-scatter";
    case OpKind::Gather: return "gather";
    case OpKind::Scatter: return "scatter";
    case OpKind::kCount: break;
  }
  return "?";
}

namespace {
thread_local OpKind t_current_op = OpKind::P2P;
}

OpKind current_op() { return t_current_op; }
void set_current_op(OpKind kind) { t_current_op = kind; }

Universe::Universe(int world_size) : world_size_(world_size) {
  PT_REQUIRE(world_size >= 1, "world size must be >= 1, got " << world_size);
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>(this));
  }
  stats_.resize(static_cast<std::size_t>(world_size));
  schedules_.resize(static_cast<std::size_t>(world_size));
}

Mailbox& Universe::mailbox(int world_rank) {
  PT_CHECK(world_rank >= 0 && world_rank < world_size_,
           "mailbox rank " << world_rank << " out of range");
  return *mailboxes_[static_cast<std::size_t>(world_rank)];
}

void Universe::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(abort_mutex_);
    if (!aborted_.load(std::memory_order_acquire)) {
      abort_reason_ = reason;
    }
  }
  aborted_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) mb->interrupt();
}

std::string Universe::abort_reason() const {
  std::lock_guard<std::mutex> lock(abort_mutex_);
  return abort_reason_;
}

void Universe::clear_abort() {
  std::lock_guard<std::mutex> lock(abort_mutex_);
  aborted_.store(false, std::memory_order_release);
  abort_reason_.clear();
}

std::uint64_t Universe::register_context(std::uint64_t parent,
                                         std::uint64_t seq, int color) {
  std::lock_guard<std::mutex> lock(context_mutex_);
  auto key = std::make_tuple(parent, seq, color);
  auto it = context_registry_.find(key);
  if (it != context_registry_.end()) return it->second;
  const std::uint64_t ctx = next_context_++;
  context_registry_.emplace(key, ctx);
  return ctx;
}

CommStats& Universe::stats(int world_rank) {
  return stats_[static_cast<std::size_t>(world_rank)].stats;
}

const CommStats& Universe::stats(int world_rank) const {
  return stats_[static_cast<std::size_t>(world_rank)].stats;
}

CommStats Universe::total_stats() const {
  CommStats total;
  for (const auto& s : stats_) total += s.stats;
  return total;
}

CommStats Universe::max_stats() const {
  CommStats out;
  for (const auto& s : stats_) {
    out.messages_sent = std::max(out.messages_sent, s.stats.messages_sent);
    out.bytes_sent = std::max(out.bytes_sent, s.stats.bytes_sent);
    for (int i = 0; i < CommStats::kNumOps; ++i) {
      out.op_messages[i] =
          std::max(out.op_messages[i], s.stats.op_messages[i]);
      out.op_bytes[i] = std::max(out.op_bytes[i], s.stats.op_bytes[i]);
    }
  }
  return out;
}

void Universe::reset_stats() {
  for (auto& s : stats_) s.stats.clear();
}

void Universe::fingerprint_seed(int world_rank, std::uint64_t context) {
  schedules_[static_cast<std::size_t>(world_rank)].contexts[context];
}

void Universe::fingerprint_record(int world_rank, std::uint64_t context,
                                  OpKind kind, std::uint64_t bytes) {
  schedules_[static_cast<std::size_t>(world_rank)].contexts[context].mix(
      kind, bytes);
}

void Universe::verify_schedule() const {
  // Group per-rank entries by context, then require every member of a
  // context to match the first. Ranks that never saw a context (e.g. the
  // other color of a split) are legitimately absent and not compared.
  std::map<std::uint64_t, std::pair<int, ContextFingerprint>> reference;
  for (int r = 0; r < world_size_; ++r) {
    for (const auto& [ctx, fp] :
         schedules_[static_cast<std::size_t>(r)].contexts) {
      auto [it, inserted] = reference.emplace(ctx, std::make_pair(r, fp));
      if (inserted) continue;
      const auto& [ref_rank, ref_fp] = it->second;
      if (fp == ref_fp) continue;
      const auto describe = [](std::ostringstream& out,
                               const ContextFingerprint& f) {
        out << f.calls << " collective call(s)";
        if (f.calls > 0) {
          out << ", last " << op_name(f.last_kind) << " of " << f.last_bytes
              << " bytes";
        }
      };
      std::ostringstream os;
      os << "collective schedule mismatch on communicator context " << ctx
         << ": rank " << ref_rank << " issued ";
      describe(os, ref_fp);
      os << " (hash " << std::hex << ref_fp.hash << std::dec
         << ") but rank " << r << " issued ";
      describe(os, fp);
      os << " (hash " << std::hex << fp.hash << std::dec
         << ") — ranks of one communicator must call the same collectives "
            "in the same order with the same payload sizes";
      throw ScheduleMismatchError(os.str());
    }
  }
}

void Universe::reset_schedule() {
  for (auto& s : schedules_) s.contexts.clear();
}

const std::map<std::uint64_t, ContextFingerprint>&
Universe::schedule_fingerprints(int world_rank) const {
  return schedules_[static_cast<std::size_t>(world_rank)].contexts;
}

void Universe::note_async_leak(const std::string& description) {
  std::lock_guard<std::mutex> lock(async_leak_mutex_);
  async_leaks_.push_back(description);
}

void Universe::clear_async_leaks() {
  std::lock_guard<std::mutex> lock(async_leak_mutex_);
  async_leaks_.clear();
}

void Universe::assert_no_async_leaks() const {
  std::lock_guard<std::mutex> lock(async_leak_mutex_);
  if (async_leaks_.empty()) return;
  std::ostringstream os;
  os << async_leaks_.size()
     << " nonblocking collective handle(s) destroyed while still in flight"
        " — every CollectiveHandle must reach wait() or test()==true: ";
  for (std::size_t i = 0; i < async_leaks_.size(); ++i) {
    if (i > 0) os << "; ";
    os << async_leaks_[i];
  }
  throw InternalError(os.str());
}

void Universe::assert_quiescent() const {
  for (int r = 0; r < world_size_; ++r) {
    const std::size_t pending = mailboxes_[static_cast<std::size_t>(r)]->pending();
    PT_CHECK(pending == 0, "mailbox of rank "
                               << r << " still holds " << pending
                               << " message(s) after the parallel region — "
                                  "likely a tag mismatch or missing recv");
  }
}

}  // namespace ptucker::mps
