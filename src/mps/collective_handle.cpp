#include "mps/collective_handle.hpp"

#include <string>

#include "obs/registry.hpp"

namespace ptucker::mps {

namespace {

/// Registry handles for the async-collective metrics, resolved once.
struct AsyncObsTable {
  obs::Gauge inflight;       ///< ops initiated but not yet completed
  obs::Histogram overlap_us;  ///< in-flight microseconds per op: the window
                              ///< a caller had to hide compute in
};

AsyncObsTable& async_obs() {
  static AsyncObsTable* table = [] {
    auto* t = new AsyncObsTable;
    t->inflight = obs::registry().gauge("mps.inflight");
    t->overlap_us = obs::registry().histogram("mps.overlap_us");
    return t;
  }();
  return *table;
}

}  // namespace

namespace detail {

bool AsyncOp::progress(bool blocking) {
  // Attribute every send this pass injects to the initiating op, exactly as
  // the blocking implementation's OpScope does.
  OpScope scope(kind);
  while (next < actions.size()) {
    AsyncAction& a = actions[next];
    switch (a.kind) {
      case AsyncAction::Kind::Send:
        comm.send_bytes(a.produce(), a.peer, a.tag);
        break;
      case AsyncAction::Kind::Recv: {
        std::vector<std::byte> payload;
        if (blocking) {
          payload = comm.recv_bytes_any_size(a.peer, a.tag);
        } else {
          auto got = comm.try_recv_bytes_any_size(a.peer, a.tag);
          if (!got) return false;
          payload = std::move(*got);
        }
        PT_CHECK(payload.size() == a.recv_bytes,
                 op_name(kind) << " handle: recv size mismatch, expected "
                               << a.recv_bytes << " bytes, got "
                               << payload.size() << " (src=" << a.peer
                               << " tag=" << a.tag << ")");
        a.consume(payload);
        break;
      }
      case AsyncAction::Kind::Local:
        a.run();
        break;
    }
    ++next;
  }
  on_finish();
  return true;
}

void AsyncOp::on_start() {
  started = std::chrono::steady_clock::now();
  if constexpr (obs::kEnabled) {
    async_obs().inflight.add(1);
  }
}

void AsyncOp::on_finish() {
  if (finish_recorded) return;
  finish_recorded = true;
  if constexpr (obs::kEnabled) {
    AsyncObsTable& t = async_obs();
    t.inflight.add(-1);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - started);
    t.overlap_us.record(static_cast<std::uint64_t>(us.count()));
  }
}

CollectiveHandle launch(std::unique_ptr<AsyncOp> op) {
  op->on_start();
  op->progress(/*blocking=*/false);
  return CollectiveHandle(std::move(op));
}

}  // namespace detail

void CollectiveHandle::wait() {
  if (!op_) return;
  op_->progress(/*blocking=*/true);
  op_.reset();
}

bool CollectiveHandle::test() {
  if (!op_) return true;
  if (!op_->progress(/*blocking=*/false)) return false;
  op_.reset();
  return true;
}

void CollectiveHandle::abandon() noexcept {
  if (!op_) return;
  if (!op_->done()) {
    try {
      op_->comm.universe().note_async_leak(
          std::string(op_name(op_->kind)) + " on rank " +
          std::to_string(op_->comm.rank()) + " with " +
          std::to_string(op_->actions.size() - op_->next) +
          " step(s) outstanding");
    } catch (...) {
      // Leak bookkeeping is best-effort; never throw from a destructor.
    }
  }
  op_.reset();
}

}  // namespace ptucker::mps
