#include "mps/cart.hpp"

#include <algorithm>
#include <functional>

namespace ptucker::mps {

CartGrid::CartGrid(Comm comm, std::vector<int> shape)
    : comm_(std::move(comm)), shape_(std::move(shape)) {
  PT_REQUIRE(!shape_.empty(), "grid shape must be non-empty");
  long long product = 1;
  for (int extent : shape_) {
    PT_REQUIRE(extent >= 1, "grid extents must be >= 1");
    product *= extent;
  }
  PT_REQUIRE(product == comm_.size(),
             "grid shape product " << product << " != communicator size "
                                   << comm_.size());
  coords_ = coords_of(comm_.rank());

  const int order = this->order();
  mode_comms_.reserve(static_cast<std::size_t>(order));
  slice_comms_.reserve(static_cast<std::size_t>(order));
  for (int n = 0; n < order; ++n) {
    // mode_comm(n): color = linear index with coordinate n zeroed out,
    // key = coordinate n, so rank within the sub-communicator == coord(n).
    std::vector<int> base = coords_;
    base[static_cast<std::size_t>(n)] = 0;
    mode_comms_.push_back(comm_.split(rank_of(base), coord(n)));

    // slice_comm(n): color = coordinate n; key = my grid rank to keep a
    // deterministic ordering.
    slice_comms_.push_back(comm_.split(coord(n), comm_.rank()));
  }
}

int CartGrid::rank_of(const std::vector<int>& coords) const {
  PT_CHECK(coords.size() == shape_.size(), "rank_of: wrong coordinate count");
  int rank = 0;
  for (int n = order() - 1; n >= 0; --n) {
    const std::size_t un = static_cast<std::size_t>(n);
    PT_CHECK(coords[un] >= 0 && coords[un] < shape_[un],
             "rank_of: coordinate " << n << " out of range");
    rank = rank * shape_[un] + coords[un];
  }
  return rank;
}

std::vector<int> CartGrid::coords_of(int rank) const {
  std::vector<int> coords(shape_.size());
  for (std::size_t n = 0; n < shape_.size(); ++n) {
    coords[n] = rank % shape_[n];
    rank /= shape_[n];
  }
  return coords;
}

std::vector<std::vector<int>> all_grid_shapes(int p, int order) {
  std::vector<std::vector<int>> result;
  std::vector<int> current(static_cast<std::size_t>(order), 1);
  std::function<void(int, int)> rec = [&](int mode, int remaining) {
    if (mode == order - 1) {
      current[static_cast<std::size_t>(mode)] = remaining;
      result.push_back(current);
      return;
    }
    for (int extent = 1; extent <= remaining; ++extent) {
      if (remaining % extent != 0) continue;
      current[static_cast<std::size_t>(mode)] = extent;
      rec(mode + 1, remaining / extent);
    }
  };
  rec(0, p);
  return result;
}

std::vector<std::vector<int>> heuristic_grid_shapes(
    int p, const std::vector<std::size_t>& dims, std::size_t max_shapes) {
  auto shapes = all_grid_shapes(p, static_cast<int>(dims.size()));
  // Score: prefer P1 == 1 (cheap first Gram/TTM, Sec. VIII-B), prefer
  // extents that divide dims evenly, prefer squat grids (max extent small).
  auto score = [&](const std::vector<int>& shape) {
    double s = 0.0;
    if (shape[0] == 1) s -= 100.0;
    int max_extent = 1;
    for (std::size_t n = 0; n < shape.size(); ++n) {
      max_extent = std::max(max_extent, shape[n]);
      if (dims[n] % static_cast<std::size_t>(shape[n]) != 0) s += 10.0;
      if (static_cast<std::size_t>(shape[n]) > dims[n]) s += 1000.0;
    }
    s += max_extent;
    return s;
  };
  std::stable_sort(shapes.begin(), shapes.end(),
                   [&](const auto& a, const auto& b) {
                     return score(a) < score(b);
                   });
  if (shapes.size() > max_shapes) shapes.resize(max_shapes);
  return shapes;
}

}  // namespace ptucker::mps
