#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/log.hpp"

namespace ptucker::obs {

namespace {

/// One ring slot. Writers claim an index with fetch_add, fill the fields,
/// then publish with ready.store(release); readers only consume published
/// slots (acquire), so a drain racing a writer never sees a torn event.
struct Slot {
  std::atomic<std::uint32_t> ready{0};
  TraceEvent event;
};

struct Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};     ///< next slot to claim
  std::atomic<std::uint64_t> dropped{0};  ///< events lost to a full ring
  std::uint64_t t0_ns = 0;                ///< session start (steady clock)
};

std::atomic<bool> g_active{false};
std::atomic<Ring*> g_ring{nullptr};
std::mutex g_mutex;  ///< guards session transitions and the retired list
/// Every ring ever started, kept alive for the process lifetime: a
/// lock-free recorder may still hold the previous ring's pointer across a
/// restart, so rings are retired, never freed. Bounded by start() calls.
std::vector<std::unique_ptr<Ring>>& rings() {
  static auto* r = new std::vector<std::unique_ptr<Ring>>;
  return *r;
}

std::atomic<std::uint32_t> g_next_tid{0};
std::uint32_t local_tid() {
  thread_local std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

namespace detail {

bool trace_active_slow() {
  return g_active.load(std::memory_order_acquire);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record_span(const char* name, std::uint64_t t0_ns, std::int64_t arg) {
  Ring* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr || !g_active.load(std::memory_order_acquire)) return;
  const std::uint64_t idx =
      ring->head.fetch_add(1, std::memory_order_relaxed);
  if (idx >= ring->slots.size()) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = ring->slots[static_cast<std::size_t>(idx)];
  slot.event.name = name;
  slot.event.ts_ns = t0_ns > ring->t0_ns ? t0_ns - ring->t0_ns : 0;
  slot.event.dur_ns = now_ns() - t0_ns;
  slot.event.tid = local_tid();
  slot.event.rank = util::thread_rank();
  slot.event.arg = arg;
  slot.ready.store(1, std::memory_order_release);
}

}  // namespace detail

void TraceSession::start(std::size_t capacity) {
  if (capacity < 1) capacity = 1;
  std::lock_guard<std::mutex> lock(g_mutex);
  g_active.store(false, std::memory_order_release);
  auto ring = std::make_unique<Ring>(capacity);
  ring->t0_ns = detail::now_ns();
  g_ring.store(ring.get(), std::memory_order_release);
  rings().push_back(std::move(ring));
  g_active.store(true, std::memory_order_release);
}

void TraceSession::stop() { g_active.store(false, std::memory_order_release); }

bool TraceSession::active() {
  return g_active.load(std::memory_order_acquire);
}

std::uint64_t TraceSession::dropped() {
  const Ring* ring = g_ring.load(std::memory_order_acquire);
  return ring ? ring->dropped.load(std::memory_order_relaxed) : 0;
}

std::vector<TraceEvent> TraceSession::events() {
  const Ring* ring = g_ring.load(std::memory_order_acquire);
  std::vector<TraceEvent> out;
  if (ring == nullptr) return out;
  const std::uint64_t n =
      std::min<std::uint64_t>(ring->head.load(std::memory_order_relaxed),
                              ring->slots.size());
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const Slot& slot = ring->slots[static_cast<std::size_t>(i)];
    if (slot.ready.load(std::memory_order_acquire) != 0) {
      out.push_back(slot.event);
    }
  }
  return out;
}

std::string TraceSession::chrome_json() {
  const std::vector<TraceEvent> evs = events();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : evs) {
    if (!first) os << ",\n";
    first = false;
    // Complete ("X") events; ts/dur are microseconds in the trace format.
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"ptucker\",\"ph\":\"X\""
       << ",\"ts\":" << static_cast<double>(e.ts_ns) / 1000.0
       << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0
       << ",\"pid\":0,\"tid\":" << e.tid << ",\"args\":{\"rank\":" << e.rank;
    if (e.arg >= 0) os << ",\"arg\":" << e.arg;
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void TraceSession::write_chrome_json(const std::string& path) {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  PT_REQUIRE(f != nullptr, "trace: cannot open " << path << " for writing");
  const std::size_t put = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  PT_REQUIRE(put == json.size(), "trace: short write to " << path);
}

}  // namespace ptucker::obs
