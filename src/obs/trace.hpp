#pragma once
/// \file trace.hpp
/// \brief Structured tracing: nested RAII spans recorded into a bounded
/// in-memory ring, exportable as chrome://tracing JSON.
///
/// A trace answers the question the flat registry cannot: *where inside
/// one slow query (or one ST-HOSVD mode) did the time go?* Spans carry
/// thread and rank attribution, so loading a trace of `serve_qps --trace
/// out.json` into chrome://tracing (or https://ui.perfetto.dev) shows each
/// worker's route -> load -> reconstruct -> denormalize -> stitch
/// decomposition per query, and a tool run shows the per-mode
/// Gram/Evecs/TTM stacks of Fig. 8 as a timeline.
///
/// Cost model:
///  - Session inactive (the default): constructing a Span is one relaxed
///    atomic load and a branch — cheap enough for the hottest paths, and
///    verified to leave results bit-identical (determinism tests run with
///    tracing off and on).
///  - Session active: begin stamps a steady_clock time; end claims a ring
///    slot with one fetch_add and fills it. No locks on the record path.
///  - Compiled out entirely (empty Span, constant-false active()) when
///    PTUCKER_OBS_DISABLED is defined.
///
/// The ring is bounded: when full, new events are dropped and counted
/// (`TraceSession::dropped()`), never reallocated — a runaway span source
/// cannot take down a serving process. Span names must be string literals
/// (or otherwise outlive the session): the ring stores the pointer.

#include <cstdint>
#include <string>
#include <vector>

namespace ptucker::obs {

#ifdef PTUCKER_OBS_DISABLED
inline constexpr bool kTraceCompiled = false;
#else
inline constexpr bool kTraceCompiled = true;
#endif

/// One completed span. Times are nanoseconds since session start.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< process-unique per-thread id (first-span order)
  std::int32_t rank = -1; ///< mps rank of the recording thread, -1 outside
  std::int64_t arg = -1;  ///< span argument (tensor mode, entry index, ...)
};

/// Global trace collection. One session at a time; start/stop are
/// thread-safe, recording is lock-free. Typical tool usage:
///
///   obs::TraceSession::start();
///   ... run ...
///   obs::TraceSession::write_chrome_json("out.json");
///   obs::TraceSession::stop();
class TraceSession {
 public:
  /// Begin collecting spans into a fresh ring of \p capacity events.
  /// Restarting an active session discards its events.
  static void start(std::size_t capacity = 1 << 16);
  /// Stop collecting (events are kept until the next start()).
  static void stop();
  [[nodiscard]] static bool active();
  /// Events dropped because the ring was full.
  [[nodiscard]] static std::uint64_t dropped();
  /// Completed events recorded so far, in completion order.
  [[nodiscard]] static std::vector<TraceEvent> events();
  /// Serialize to the chrome://tracing "traceEvents" JSON format.
  [[nodiscard]] static std::string chrome_json();
  /// chrome_json() to a file; throws util::Error on I/O failure.
  static void write_chrome_json(const std::string& path);
};

namespace detail {
[[nodiscard]] bool trace_active_slow();
void record_span(const char* name, std::uint64_t t0_ns, std::int64_t arg);
[[nodiscard]] std::uint64_t now_ns();
}  // namespace detail

/// RAII span: times its scope into the active session. A span constructed
/// while the session is inactive records nothing, even if the session
/// starts before it ends (sessions never see half-open spans).
class Span {
 public:
  explicit Span(const char* name, std::int64_t arg = -1) {
    if constexpr (kTraceCompiled) {
      if (detail::trace_active_slow()) {
        name_ = name;
        arg_ = arg;
        t0_ns_ = detail::now_ns();
      }
    } else {
      (void)name;
      (void)arg;
    }
  }
  ~Span() {
    if constexpr (kTraceCompiled) {
      if (name_ != nullptr) detail::record_span(name_, t0_ns_, arg_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  // Members exist in the disabled build too (the if-constexpr-discarded
  // bodies must still name-resolve); the compiler drops the unused stores.
  const char* name_ = nullptr;
  std::uint64_t t0_ns_ = 0;
  std::int64_t arg_ = -1;
};

}  // namespace ptucker::obs
