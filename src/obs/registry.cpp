#include "obs/registry.hpp"

#include <deque>
#include <mutex>
#include <sstream>

namespace ptucker::obs {

std::uint64_t HistogramData::percentile(double p) const {
  return percentile_bounds(p).hi;
}

HistogramData::Bounds HistogramData::percentile_bounds(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return {};
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank: the k-th smallest sample, k = ceil(p/100 * n), k >= 1.
  std::uint64_t rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(n) + 0.9999999999);
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (seen >= rank) return {bucket_lo(b), bucket_hi(b)};
  }
  // Writers racing the walk can leave seen < rank; fall back to max().
  return {max(), max() + 1};
}

void HistogramData::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mutex;
  // deques: stable addresses across registration (handles never dangle).
  std::map<std::string, std::atomic<std::uint64_t>*, std::less<>> counters;
  std::map<std::string, std::atomic<std::int64_t>*, std::less<>> gauges;
  std::map<std::string, HistogramData*, std::less<>> histograms;
  std::deque<std::atomic<std::uint64_t>> counter_cells;
  std::deque<std::atomic<std::int64_t>> gauge_cells;
  std::deque<HistogramData> histogram_cells;
};

Registry::Impl& Registry::impl() const {
  // Leaked on purpose: metric updates may run during static/thread_local
  // destruction (e.g. a rank's ThreadPool joining its workers at exit).
  static Impl* instance = new Impl;
  if (impl_ == nullptr) impl_ = instance;
  return *impl_;
}

Counter Registry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    im.counter_cells.emplace_back(0);
    it = im.counters.emplace(std::string(name), &im.counter_cells.back())
             .first;
  }
  return Counter(it->second);
}

Gauge Registry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    im.gauge_cells.emplace_back(0);
    it = im.gauges.emplace(std::string(name), &im.gauge_cells.back()).first;
  }
  return Gauge(it->second);
}

Histogram Registry::histogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    im.histogram_cells.emplace_back();
    it = im.histograms.emplace(std::string(name), &im.histogram_cells.back())
             .first;
  }
  return Histogram(it->second);
}

Snapshot Registry::snapshot(std::string_view prefix) const {
  Impl& im = impl();
  Snapshot snap;
  std::lock_guard<std::mutex> lock(im.mutex);
  for (const auto& [name, cell] : im.counters) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    snap.counters.emplace(name, cell->load(std::memory_order_relaxed));
  }
  for (const auto& [name, cell] : im.gauges) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    snap.gauges.emplace(name, cell->load(std::memory_order_relaxed));
  }
  for (const auto& [name, data] : im.histograms) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    HistogramStats hs;
    hs.count = data->count();
    hs.sum = data->sum();
    hs.min = data->min();
    hs.max = data->max();
    hs.p50 = data->percentile(50);
    hs.p90 = data->percentile(90);
    hs.p99 = data->percentile(99);
    snap.histograms.emplace(name, hs);
  }
  return snap;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  for (auto& [name, cell] : im.counters) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : im.gauges) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, data] : im.histograms) data->reset();
}

std::string Snapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters) os << name << " " << v << "\n";
  for (const auto& [name, v] : gauges) os << name << " " << v << "\n";
  for (const auto& [name, h] : histograms) {
    os << name << " count " << h.count << " sum " << h.sum << " min "
       << h.min << " max " << h.max << " p50 " << h.p50 << " p90 " << h.p90
       << " p99 " << h.p99 << "\n";
  }
  return os.str();
}

namespace {
void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}
}  // namespace

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ",";
    first = false;
    append_json_string(os, name);
    os << ":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ",";
    first = false;
    append_json_string(os, name);
    os << ":" << v;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ",";
    first = false;
    append_json_string(os, name);
    os << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"p50\":" << h.p50
       << ",\"p90\":" << h.p90 << ",\"p99\":" << h.p99 << "}";
  }
  os << "}}";
  return os.str();
}

Registry& registry() {
  static Registry* instance = new Registry;
  return *instance;
}

}  // namespace ptucker::obs
