#pragma once
/// \file registry.hpp
/// \brief Process-wide metrics registry: named counters, gauges, and
/// log-bucketed latency histograms shared by every layer of the stack.
///
/// The paper's evaluation lives and dies by attribution — Fig. 8 splits
/// wall time across Gram/Evecs/TTM, Tab. I counts per-collective words —
/// and TuckerMPI ships the same per-phase timing/byte reporting as a
/// first-class feature. Before this layer the repo's counters were
/// fragmented per subsystem (mps::CommStats, the PanelCache counters, the
/// executor counters, TimestepReader::file_opens, ...) with no common
/// export path. obs::Registry unifies them: every subsystem registers its
/// counters here under a dotted name ("pario.read_bytes",
/// "serve.cache.hits", "mps.allreduce.bytes") and one
/// `registry().snapshot()` sees the whole stack.
///
/// Design rules:
///  - Handles (Counter/Gauge/Histogram) are trivially copyable value types
///    pointing at registry-owned cells. Registration takes a mutex once;
///    updates are single relaxed atomic ops — the fast path never locks.
///  - The registry is a leaked singleton: handles cached in function-local
///    statics stay valid through program exit (including thread_local
///    destructors that may still record).
///  - Metrics never influence computation: with `PTUCKER_OBS_DISABLED`
///    defined (CMake `-DPTUCKER_OBS=OFF`) every update compiles to nothing
///    and `obs::kEnabled` is false, checkable with `if constexpr`. Results
///    are bit-identical either way — the registry only ever observes.
///
/// Histograms are log-bucketed (8 sub-buckets per power of two, ~12.5%
/// relative resolution, HdrHistogram-style) so recording is one atomic
/// increment and percentile queries walk at most 496 buckets. Quantiles
/// are exact to the bucket: the reported p50/p90/p99 is the bound of the
/// bucket holding the nearest-rank sample (asserted against exact sorted
/// percentiles in serve_qps and tests/obs_test.cpp).

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ptucker::obs {

#ifdef PTUCKER_OBS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Log-bucketed histogram storage: values 0..7 exact, then 8 sub-buckets
/// per octave. Thread-safe: record() is wait-free (relaxed atomics), reads
/// are monotone snapshots. Usable standalone (serve_qps builds one per
/// scenario) or registry-owned via Registry::histogram().
class HistogramData {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSubCount = 1 << kSubBits;  // 8
  /// 8 exact buckets + one octave of 8 for each msb position 3..63.
  static constexpr int kBuckets = kSubCount * 62;  // 496

  /// Bucket index of value \p v; buckets partition [0, 2^64).
  [[nodiscard]] static int bucket_of(std::uint64_t v) {
    if (v < kSubCount) return static_cast<int>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBits;
    const int sub = static_cast<int>((v >> shift) & (kSubCount - 1));
    return kSubCount * (msb - 2) + sub;
  }
  /// Inclusive lower bound of bucket \p index.
  [[nodiscard]] static std::uint64_t bucket_lo(int index) {
    if (index < kSubCount) return static_cast<std::uint64_t>(index);
    const int octave = index >> kSubBits;  // >= 1
    const int shift = octave - 1;
    const std::uint64_t sub = static_cast<std::uint64_t>(index & (kSubCount - 1));
    return (static_cast<std::uint64_t>(kSubCount) + sub) << shift;
  }
  /// Exclusive upper bound of bucket \p index. The top bucket's true bound
  /// (2^64) is unrepresentable, so it saturates to 2^64 - 1, which that
  /// bucket holds inclusively.
  [[nodiscard]] static std::uint64_t bucket_hi(int index) {
    if (index < kSubCount) return static_cast<std::uint64_t>(index) + 1;
    const int shift = (index >> kSubBits) - 1;
    const std::uint64_t lo = bucket_lo(index);
    const std::uint64_t hi = lo + (std::uint64_t{1} << shift);
    return hi > lo ? hi : ~std::uint64_t{0};
  }

  void record(std::uint64_t v) {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomic_min(min_, v);
    atomic_max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kEmptyMin ? 0 : m;
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Nearest-rank percentile, reported as the upper bound of the bucket
  /// holding the rank-ceil(p/100 * count) sample. Exact within one bucket
  /// (~12.5% relative) by construction; 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const;
  /// [lo, hi) value range of the bucket the percentile falls in.
  struct Bounds {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  [[nodiscard]] Bounds percentile_bounds(double p) const;

  void reset();

 private:
  static constexpr std::uint64_t kEmptyMin = ~std::uint64_t{0};
  static void atomic_min(std::atomic<std::uint64_t>& cell, std::uint64_t v) {
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (v < cur &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& cell, std::uint64_t v) {
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (v > cur &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kEmptyMin};
  std::atomic<std::uint64_t> max_{0};
};

/// Monotonic counter handle. Copyable, never dangles (registry cells leak).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n) {
    if constexpr (kEnabled) {
      cell_->fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  void inc() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    if constexpr (kEnabled) {
      return cell_->load(std::memory_order_relaxed);
    }
    return 0;
  }

 private:
  friend class Registry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Instantaneous value handle (queue depths, resident panels, workers).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) {
    if constexpr (kEnabled) {
      cell_->store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  void add(std::int64_t delta) {
    if constexpr (kEnabled) {
      cell_->fetch_add(delta, std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }
  /// Raise to \p v if it is a new high-water mark.
  void record_peak(std::int64_t v) {
    if constexpr (kEnabled) {
      std::int64_t cur = cell_->load(std::memory_order_relaxed);
      while (v > cur && !cell_->compare_exchange_weak(
                            cur, v, std::memory_order_relaxed)) {
      }
    } else {
      (void)v;
    }
  }
  [[nodiscard]] std::int64_t value() const {
    if constexpr (kEnabled) {
      return cell_->load(std::memory_order_relaxed);
    }
    return 0;
  }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Histogram handle; record() is one relaxed atomic increment per bucket.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t v) {
    if constexpr (kEnabled) {
      data_->record(v);
    } else {
      (void)v;
    }
  }
  [[nodiscard]] const HistogramData* data() const { return data_; }

 private:
  friend class Registry;
  explicit Histogram(HistogramData* data) : data_(data) {}
  HistogramData* data_ = nullptr;
};

/// One histogram's digest inside a Snapshot.
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

/// Point-in-time view of every registered metric. Counters read with
/// relaxed loads while writers run: each value is some value the counter
/// actually held (monotone across snapshots), not a cross-metric cut.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// "name value" lines, sorted, histograms expanded to count/p50/p90/p99.
  [[nodiscard]] std::string to_text() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;
};

/// The process-wide registry. Metric names are dotted paths; requesting an
/// existing name returns a handle to the same cell (subsystems and tests
/// can observe each other's metrics by name).
class Registry {
 public:
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  /// Snapshot every metric, optionally restricted to names starting with
  /// \p prefix ("" = everything).
  [[nodiscard]] Snapshot snapshot(std::string_view prefix = {}) const;

  /// Zero every registered metric (tests and bench scenario boundaries).
  /// Handles stay valid — cells are reset, not replaced.
  void reset();

 private:
  friend Registry& registry();
  Registry() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
  mutable Impl* impl_ = nullptr;
};

/// The process-wide instance (leaked; safe to use from thread_local dtors).
[[nodiscard]] Registry& registry();

}  // namespace ptucker::obs
