#include "tensor/tensor.hpp"

#include "blas/blas.hpp"
#include "util/rng.hpp"

namespace ptucker::tensor {

std::size_t prod(const Dims& dims) {
  std::size_t p = 1;
  for (std::size_t d : dims) p *= d;
  return p;
}

std::size_t prod_except(const Dims& dims, int n) {
  std::size_t p = 1;
  for (int m = 0; m < static_cast<int>(dims.size()); ++m) {
    if (m != n) p *= dims[static_cast<std::size_t>(m)];
  }
  return p;
}

Tensor::Tensor(Dims dims) : dims_(std::move(dims)) {
  PT_REQUIRE(!dims_.empty(), "tensor must have order >= 1");
  data_.assign(prod(dims_), 0.0);
}

Tensor::Tensor(Dims dims, double fill) : Tensor(std::move(dims)) {
  std::fill(data_.begin(), data_.end(), fill);
}

Tensor Tensor::randn(Dims dims, std::uint64_t seed) {
  Tensor t(std::move(dims));
  util::Rng rng(seed);
  for (double& v : t.data_) v = rng.normal();
  return t;
}

std::size_t Tensor::linear_index(std::span<const std::size_t> idx) const {
  PT_CHECK(idx.size() == dims_.size(), "multi-index order mismatch");
  std::size_t linear = 0;
  for (std::size_t n = dims_.size(); n-- > 0;) {
    PT_CHECK(idx[n] < dims_[n], "index out of range in mode " << n);
    linear = linear * dims_[n] + idx[n];
  }
  return linear;
}

std::vector<std::size_t> Tensor::multi_index(std::size_t linear) const {
  std::vector<std::size_t> idx(dims_.size());
  for (std::size_t n = 0; n < dims_.size(); ++n) {
    idx[n] = linear % dims_[n];
    linear /= dims_[n];
  }
  return idx;
}

double Tensor::norm_squared() const {
  // Scaled accumulation via nrm2 for overflow safety.
  const double norm = blas::nrm2(data_.size(), data_.data());
  return norm * norm;
}

double Tensor::norm() const { return blas::nrm2(data_.size(), data_.data()); }

void Tensor::fill_from(
    const std::function<double(std::span<const std::size_t>)>& fn) {
  std::vector<std::size_t> idx(dims_.size(), 0);
  for (std::size_t linear = 0; linear < data_.size(); ++linear) {
    data_[linear] = fn(idx);
    for (std::size_t n = 0; n < dims_.size(); ++n) {
      if (++idx[n] < dims_[n]) break;
      idx[n] = 0;
    }
  }
}

Tensor Tensor::subtensor(const std::vector<util::Range>& ranges) const {
  PT_REQUIRE(ranges.size() == dims_.size(), "subtensor: order mismatch");
  Dims sub_dims(dims_.size());
  for (std::size_t n = 0; n < dims_.size(); ++n) {
    PT_REQUIRE(ranges[n].hi <= dims_[n] && ranges[n].lo <= ranges[n].hi,
               "subtensor: bad range in mode " << n);
    sub_dims[n] = ranges[n].size();
  }
  Tensor sub(sub_dims);
  if (sub.size() == 0) return sub;
  std::vector<std::size_t> idx(dims_.size());
  for (std::size_t n = 0; n < dims_.size(); ++n) idx[n] = ranges[n].lo;
  std::vector<std::size_t> sub_idx(dims_.size(), 0);
  // Copy contiguous mode-1 runs at a time.
  const std::size_t run = sub_dims[0];
  for (std::size_t linear = 0; linear < sub.size(); linear += run) {
    const std::size_t src = linear_index(idx);
    blas::copy(run, data_.data() + src, sub.data() + linear);
    // Advance all but mode 0.
    for (std::size_t n = 1; n < dims_.size(); ++n) {
      if (++sub_idx[n] < sub_dims[n]) {
        idx[n] = ranges[n].lo + sub_idx[n];
        break;
      }
      sub_idx[n] = 0;
      idx[n] = ranges[n].lo;
    }
  }
  return sub;
}

void Tensor::axpy(double alpha, const Tensor& other) {
  PT_REQUIRE(dims_ == other.dims_, "axpy: dimension mismatch");
  blas::axpy(data_.size(), alpha, other.data(), data());
}

void Tensor::scale(double alpha) { blas::scal(data_.size(), alpha, data()); }

UnfoldShape unfold_shape(const Dims& dims, int mode) {
  PT_REQUIRE(mode >= 0 && mode < static_cast<int>(dims.size()),
             "unfold mode " << mode << " out of range");
  UnfoldShape shape;
  for (int m = 0; m < static_cast<int>(dims.size()); ++m) {
    const std::size_t d = dims[static_cast<std::size_t>(m)];
    if (m < mode) {
      shape.left *= d;
    } else if (m == mode) {
      shape.mid = d;
    } else {
      shape.right *= d;
    }
  }
  return shape;
}

}  // namespace ptucker::tensor
