#pragma once
/// \file tensor_io.hpp
/// \brief Binary (de)serialization of tensors and matrices.
///
/// Format (little-endian):
///   magic "PTT1" | u64 order | u64 dims[order] | f64 data[prod(dims)]
/// for tensors, and "PTM1" | u64 rows | u64 cols | f64 data for matrices.

#include <iosfwd>
#include <string>

#include "tensor/matrix.hpp"
#include "tensor/tensor.hpp"

namespace ptucker::tensor {

void write_tensor(std::ostream& os, const Tensor& t);
[[nodiscard]] Tensor read_tensor(std::istream& is);

void write_matrix(std::ostream& os, const Matrix& m);
[[nodiscard]] Matrix read_matrix(std::istream& is);

void save_tensor(const std::string& path, const Tensor& t);
[[nodiscard]] Tensor load_tensor(const std::string& path);

}  // namespace ptucker::tensor
