#pragma once
/// \file matrix.hpp
/// \brief Dense column-major matrix (factor matrices, Gram matrices).

#include <cstdint>
#include <span>
#include <vector>

#include "util/blocks.hpp"
#include "util/error.hpp"

namespace ptucker::tensor {

/// Column-major dense matrix with leading dimension == rows.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] static Matrix randn(std::size_t rows, std::size_t cols,
                                    std::uint64_t seed);
  /// Orthonormal columns: thin Q of a random Gaussian matrix (rows >= cols).
  [[nodiscard]] static Matrix random_orthonormal(std::size_t rows,
                                                 std::size_t cols,
                                                 std::uint64_t seed);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] double* col(std::size_t j) { return data_.data() + j * rows_; }
  [[nodiscard]] const double* col(std::size_t j) const {
    return data_.data() + j * rows_;
  }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    return data_[i + j * rows_];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return data_[i + j * rows_];
  }

  [[nodiscard]] std::span<double> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> span() const {
    return {data_.data(), data_.size()};
  }

  /// Explicit transpose copy.
  [[nodiscard]] Matrix transposed() const;

  /// Copy of rows [range.lo, range.hi).
  [[nodiscard]] Matrix row_block(util::Range range) const;

  /// Copy of columns [range.lo, range.hi).
  [[nodiscard]] Matrix col_block(util::Range range) const;

  /// Copy of an arbitrary row subset (partial reconstruction, Sec. II-C).
  [[nodiscard]] Matrix row_subset(std::span<const std::size_t> rows) const;

  [[nodiscard]] double frob_norm() const;

  /// this = A * B (convenience for tests and small host-side products).
  [[nodiscard]] static Matrix multiply(const Matrix& a, bool transpose_a,
                                       const Matrix& b, bool transpose_b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ptucker::tensor
