#include "tensor/matrix.hpp"

#include "blas/blas.hpp"
#include "lapack/lapack.hpp"
#include "util/rng.hpp"

namespace ptucker::tensor {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Rng rng(seed);
  for (double& v : m.data_) v = rng.normal();
  return m;
}

Matrix Matrix::random_orthonormal(std::size_t rows, std::size_t cols,
                                  std::uint64_t seed) {
  PT_REQUIRE(rows >= cols, "random_orthonormal requires rows >= cols");
  const Matrix g = randn(rows, cols, seed);
  Matrix q(rows, cols);
  Matrix r(cols, cols);
  la::qr_thin(g.data(), rows, cols, rows, q.data(), rows, r.data(), cols);
  // Fix signs so the factor is deterministic across QR implementations:
  // make each R diagonal entry non-negative.
  for (std::size_t j = 0; j < cols; ++j) {
    if (r(j, j) < 0.0) {
      blas::scal(rows, -1.0, q.col(j));
    }
  }
  return q;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t j = 0; j < cols_; ++j) {
    for (std::size_t i = 0; i < rows_; ++i) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Matrix Matrix::row_block(util::Range range) const {
  PT_REQUIRE(range.hi <= rows_ && range.lo <= range.hi,
             "row_block: bad range");
  Matrix b(range.size(), cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    blas::copy(range.size(), col(j) + range.lo, b.col(j));
  }
  return b;
}

Matrix Matrix::col_block(util::Range range) const {
  PT_REQUIRE(range.hi <= cols_ && range.lo <= range.hi,
             "col_block: bad range");
  Matrix b(rows_, range.size());
  for (std::size_t j = 0; j < range.size(); ++j) {
    blas::copy(rows_, col(range.lo + j), b.col(j));
  }
  return b;
}

Matrix Matrix::row_subset(std::span<const std::size_t> rows) const {
  Matrix b(rows.size(), cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      PT_REQUIRE(rows[i] < rows_, "row_subset: index out of range");
      b(i, j) = (*this)(rows[i], j);
    }
  }
  return b;
}

double Matrix::frob_norm() const {
  return blas::nrm2(data_.size(), data_.data());
}

Matrix Matrix::multiply(const Matrix& a, bool transpose_a, const Matrix& b,
                        bool transpose_b) {
  const std::size_t m = transpose_a ? a.cols() : a.rows();
  const std::size_t ka = transpose_a ? a.rows() : a.cols();
  const std::size_t kb = transpose_b ? b.cols() : b.rows();
  const std::size_t n = transpose_b ? b.rows() : b.cols();
  PT_REQUIRE(ka == kb, "multiply: inner dimension mismatch");
  Matrix c(m, n);
  blas::gemm(transpose_a ? blas::Trans::Yes : blas::Trans::No,
             transpose_b ? blas::Trans::Yes : blas::Trans::No, m, n, ka, 1.0,
             a.data(), a.rows(), b.data(), b.rows(), 0.0, c.data(), m);
  return c;
}

}  // namespace ptucker::tensor
