#pragma once
/// \file tensor.hpp
/// \brief Dense N-way tensor with first-index-fastest ("generalized
/// column-major") layout, matching the paper's local storage convention:
/// the mode-1 unfolding of a stored tensor is a column-major matrix
/// (Sec. IV-A).

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "util/blocks.hpp"
#include "util/error.hpp"

namespace ptucker::tensor {

/// Tensor dimensions (I1, ..., IN).
using Dims = std::vector<std::size_t>;

/// Product of all entries (total element count).
[[nodiscard]] std::size_t prod(const Dims& dims);

/// Product of all entries except entry n (the paper's \f$\hat I_n\f$).
[[nodiscard]] std::size_t prod_except(const Dims& dims, int n);

/// Dense tensor. Element (i1, ..., iN) lives at linear offset
/// i1 + I1*(i2 + I2*(i3 + ...)).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Dims dims);
  Tensor(Dims dims, double fill);

  /// i.i.d. standard normal entries from a sequential RNG.
  [[nodiscard]] static Tensor randn(Dims dims, std::uint64_t seed);

  [[nodiscard]] int order() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const Dims& dims() const { return dims_; }
  [[nodiscard]] std::size_t dim(int n) const {
    return dims_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] std::span<double> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> span() const {
    return {data_.data(), data_.size()};
  }

  [[nodiscard]] double& operator[](std::size_t linear) { return data_[linear]; }
  [[nodiscard]] double operator[](std::size_t linear) const {
    return data_[linear];
  }

  /// Linear offset of a multi-index.
  [[nodiscard]] std::size_t linear_index(std::span<const std::size_t> idx) const;

  /// Multi-index of a linear offset (inverse of linear_index).
  [[nodiscard]] std::vector<std::size_t> multi_index(std::size_t linear) const;

  [[nodiscard]] double& at(std::span<const std::size_t> idx) {
    return data_[linear_index(idx)];
  }
  [[nodiscard]] double at(std::span<const std::size_t> idx) const {
    return data_[linear_index(idx)];
  }

  /// Sum of squared entries; norm() is its square root (‖X‖ = ‖X(1)‖_F).
  [[nodiscard]] double norm_squared() const;
  [[nodiscard]] double norm() const;

  /// Fill from a function of the multi-index (used by the distributed
  /// generators to evaluate global random fields on local blocks).
  void fill_from(
      const std::function<double(std::span<const std::size_t>)>& fn);

  /// Copy out the sub-tensor given per-mode index ranges.
  [[nodiscard]] Tensor subtensor(const std::vector<util::Range>& ranges) const;

  /// this += alpha * other (same dims).
  void axpy(double alpha, const Tensor& other);
  void scale(double alpha);

 private:
  Dims dims_;
  std::vector<double> data_;
};

/// Shape of the mode-n unfolding as the memory-layout triple used by all
/// local kernels (Sec. IV-C): the tensor is viewed as a (left, mid, right)
/// column-major 3-tensor with mid = Jn, left = prod of modes < n, right =
/// prod of modes > n. Slice r (fixed right index) is a contiguous
/// column-major (left x mid) matrix; the unfolding's r-th block column is
/// its transpose. No data movement is ever performed.
struct UnfoldShape {
  std::size_t left = 1;
  std::size_t mid = 1;
  std::size_t right = 1;
};
[[nodiscard]] UnfoldShape unfold_shape(const Dims& dims, int mode);

}  // namespace ptucker::tensor
