#pragma once
/// \file local_kernels.hpp
/// \brief Sequential (per-rank) TTM and Gram kernels that respect the local
/// unfolded-tensor layout of paper Sec. IV-C / Fig. 3b.
///
/// A stored tensor viewed in mode n is a (left, mid, right) column-major
/// 3-tensor (see unfold_shape). Its mode-n unfolding consists of `right`
/// block columns, each the transpose of a contiguous column-major
/// (left x mid) slice. All kernels walk those slices and issue one BLAS3
/// call per slice — exactly the paper's "multiple subroutine calls to
/// respect the local layout" for interior modes, collapsing to a single
/// call when left == 1 (first mode(s)) or right == 1 (last mode).

#include "tensor/matrix.hpp"
#include "tensor/tensor.hpp"

namespace ptucker::tensor {

/// Z = Y x_n M (TTM): Z(n) = M * Y(n) with M of size K x Jn.
/// Note the multiplying matrix convention matches the algorithms:
/// decomposition passes U^T (Rn x In), reconstruction passes U (In x Rn).
[[nodiscard]] Tensor local_ttm(const Tensor& y, const Matrix& m, int mode);

/// As local_ttm but writing into a preallocated output tensor whose dims
/// must equal y's with dims[mode] == m.rows(). Used by the parallel TTM to
/// reuse scratch buffers across the Pn blocked iterations.
void local_ttm_into(const Tensor& y, const Matrix& m, int mode, Tensor& z);

/// S = Y(n) * Y(n)^T, size Jn x Jn, both triangles stored (paper default).
[[nodiscard]] Matrix local_gram(const Tensor& y, int mode);

/// Symmetry-exploiting variant (~half the flops; Sec. IX future work).
[[nodiscard]] Matrix local_gram_sym(const Tensor& y, int mode);

/// C = Y(n) * W(n)^T for two tensors of identical dims except possibly mode
/// n; result is y.dim(n) x w.dim(n). This is the off-diagonal block kernel
/// of the parallel Gram (Alg. 4 line 11).
[[nodiscard]] Matrix local_cross_gram(const Tensor& y, const Tensor& w,
                                      int mode);

/// Naive reference implementations (element loops, no BLAS): oracles for
/// the property tests.
[[nodiscard]] Tensor naive_ttm(const Tensor& y, const Matrix& m, int mode);
[[nodiscard]] Matrix naive_gram(const Tensor& y, int mode);

}  // namespace ptucker::tensor
