#pragma once
/// \file local_kernels.hpp
/// \brief Sequential (per-rank) TTM and Gram kernels that respect the local
/// unfolded-tensor layout of paper Sec. IV-C / Fig. 3b.
///
/// A stored tensor viewed in mode n is a (left, mid, right) column-major
/// 3-tensor (see unfold_shape). Its mode-n unfolding consists of `right`
/// block columns, each the transpose of a contiguous column-major
/// (left x mid) slice. The kernels hand the whole slice batch to the
/// batched BLAS entry points (blas::gemm_batch_strided /
/// syrk_lower_batch_strided) as a *single* kernel invocation — shared
/// panels packed once, threading decided on aggregate flops — collapsing to
/// one plain call when left == 1 (first mode(s)) or right == 1 (last mode).
/// The paper's original "multiple subroutine calls to respect the local
/// layout" per-slice loop is kept behind LocalKernelPath::PerSlice for the
/// ablation benches; both paths produce bit-identical results.

#include "tensor/matrix.hpp"
#include "tensor/tensor.hpp"

namespace ptucker::tensor {

/// Which implementation the local TTM/Gram kernels use.
enum class LocalKernelPath {
  Batched,  ///< single batched kernel invocation per TTM/Gram (default)
  /// One BLAS3 call per right-slice — the paper's "multiple subroutine
  /// calls to respect the local layout" policy. For the Gram kernels this
  /// is exactly the pre-batched implementation; for the TTM it is the
  /// slice loop applied *uniformly*, including left == 1 modes where the
  /// pre-batched code already collapsed to a single gemm (there it is the
  /// naive slice-loop policy, not the shipped baseline — see
  /// bench/ablate_ttm_paths).
  PerSlice,
};

/// Global (atomic) switch, default Batched. The per-slice path exists for
/// bench/ablate_ttm_paths and the determinism tests; results are
/// bit-identical either way.
void set_local_kernel_path(LocalKernelPath path);
[[nodiscard]] LocalKernelPath local_kernel_path();

/// Z = Y x_n M (TTM): Z(n) = M * Y(n) with M of size K x Jn.
/// Note the multiplying matrix convention matches the algorithms:
/// decomposition passes U^T (Rn x In), reconstruction passes U (In x Rn).
[[nodiscard]] Tensor local_ttm(const Tensor& y, const Matrix& m, int mode);

/// As local_ttm but writing into a preallocated output tensor whose dims
/// must equal y's with dims[mode] == m.rows(). Used by the parallel TTM to
/// reuse scratch buffers across the Pn blocked iterations.
void local_ttm_into(const Tensor& y, const Matrix& m, int mode, Tensor& z);

/// S = Y(n) * Y(n)^T, size Jn x Jn, both triangles stored (paper default).
[[nodiscard]] Matrix local_gram(const Tensor& y, int mode);

/// Symmetry-exploiting variant (~half the flops; Sec. IX future work).
[[nodiscard]] Matrix local_gram_sym(const Tensor& y, int mode);

/// C = Y(n) * W(n)^T for two tensors of identical dims except possibly mode
/// n; result is y.dim(n) x w.dim(n). This is the off-diagonal block kernel
/// of the parallel Gram (Alg. 4 line 11).
[[nodiscard]] Matrix local_cross_gram(const Tensor& y, const Tensor& w,
                                      int mode);

/// Naive reference implementations (element loops, no BLAS): oracles for
/// the property tests.
[[nodiscard]] Tensor naive_ttm(const Tensor& y, const Matrix& m, int mode);
[[nodiscard]] Matrix naive_gram(const Tensor& y, int mode);

}  // namespace ptucker::tensor
