#include "tensor/tensor_io.hpp"

#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace ptucker::tensor {

namespace {

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  PT_REQUIRE(is.good(), "tensor_io: truncated stream");
  return v;
}

void write_magic(std::ostream& os, const char magic[4]) {
  os.write(magic, 4);
}

void expect_magic(std::istream& is, const char magic[4]) {
  char buf[4] = {};
  is.read(buf, 4);
  PT_REQUIRE(is.good() && std::memcmp(buf, magic, 4) == 0,
             "tensor_io: bad magic");
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_magic(os, "PTT1");
  write_u64(os, static_cast<std::uint64_t>(t.order()));
  for (int n = 0; n < t.order(); ++n) write_u64(os, t.dim(n));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(double)));
  PT_REQUIRE(os.good(), "tensor_io: write failed");
}

Tensor read_tensor(std::istream& is) {
  expect_magic(is, "PTT1");
  const std::uint64_t order = read_u64(is);
  PT_REQUIRE(order >= 1 && order <= 64, "tensor_io: implausible order");
  Dims dims(order);
  for (auto& d : dims) d = read_u64(is);
  Tensor t(dims);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(double)));
  PT_REQUIRE(is.good(), "tensor_io: truncated tensor data");
  return t;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  write_magic(os, "PTM1");
  write_u64(os, m.rows());
  write_u64(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(double)));
  PT_REQUIRE(os.good(), "tensor_io: write failed");
}

Matrix read_matrix(std::istream& is) {
  expect_magic(is, "PTM1");
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  Matrix m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  PT_REQUIRE(is.good(), "tensor_io: truncated matrix data");
  return m;
}

void save_tensor(const std::string& path, const Tensor& t) {
  std::ofstream os(path, std::ios::binary);
  PT_REQUIRE(os.good(), "tensor_io: cannot open " << path);
  write_tensor(os, t);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PT_REQUIRE(is.good(), "tensor_io: cannot open " << path);
  return read_tensor(is);
}

}  // namespace ptucker::tensor
