#include "tensor/local_kernels.hpp"

#include <algorithm>
#include <atomic>

#include "blas/blas.hpp"

namespace ptucker::tensor {

namespace {

std::atomic<LocalKernelPath> g_path{LocalKernelPath::Batched};

/// Output dims of a mode-n TTM.
Dims ttm_dims(const Tensor& y, const Matrix& m, int mode) {
  PT_REQUIRE(mode >= 0 && mode < y.order(), "ttm: mode out of range");
  PT_REQUIRE(m.cols() == y.dim(mode),
             "ttm: matrix has " << m.cols() << " columns but mode " << mode
                                << " has extent " << y.dim(mode));
  Dims dims = y.dims();
  dims[static_cast<std::size_t>(mode)] = m.rows();
  return dims;
}

}  // namespace

void set_local_kernel_path(LocalKernelPath path) {
  g_path.store(path, std::memory_order_relaxed);
}

LocalKernelPath local_kernel_path() {
  return g_path.load(std::memory_order_relaxed);
}

void local_ttm_into(const Tensor& y, const Matrix& m, int mode, Tensor& z) {
  const Dims expected = ttm_dims(y, m, mode);
  PT_REQUIRE(z.dims() == expected, "local_ttm_into: output dims mismatch");
  const UnfoldShape in = unfold_shape(y.dims(), mode);
  const std::size_t k = m.rows();
  if (z.size() == 0) return;
  if (y.size() == 0) {
    // Empty contraction (some extent of y is zero): Z is identically zero.
    // Overwrite — callers reuse z as scratch across calls.
    std::fill(z.span().begin(), z.span().end(), 0.0);
    return;
  }

  const std::size_t in_slice = in.left * in.mid;
  const std::size_t out_slice = in.left * k;

  if (local_kernel_path() == LocalKernelPath::PerSlice) {
    // Ablation baseline: one gemm per right-slice,
    // Z_r(left x k) = Y_r(left x mid) * M^T — the slice-loop policy applied
    // uniformly (thousands of tiny calls that re-pack M every iteration and
    // never cross the per-call threading threshold). For left > 1 this is
    // the pre-batched hot loop verbatim; for left == 1 the pre-batched code
    // already short-circuited to a single gemm, so there this measures the
    // naive policy, not the shipped baseline. Bit-identical to the batched
    // path either way: the contraction dimension and its KC blocking are
    // the same.
    for (std::size_t r = 0; r < in.right; ++r) {
      blas::gemm(blas::Trans::No, blas::Trans::Yes, in.left, k, in.mid, 1.0,
                 y.data() + r * in_slice, in.left, m.data(), k, 0.0,
                 z.data() + r * out_slice, in.left);
    }
    return;
  }

  if (in.left == 1) {
    // Y viewed as (mid x right) column-major: single gemm
    // Z(k x right) = M(k x mid) * Y.
    blas::gemm(blas::Trans::No, blas::Trans::No, k, in.right, in.mid, 1.0,
               m.data(), k, y.data(), in.mid, 0.0, z.data(), k);
    return;
  }
  // One batched kernel invocation over all right-slices: M^T is packed once
  // per KC slab and shared across the batch; the threading decision sees
  // the aggregate flops of the whole TTM.
  blas::gemm_batch_strided(blas::Trans::No, blas::Trans::Yes, in.left, k,
                           in.mid, 1.0, y.data(), in.left, in_slice, m.data(),
                           k, 0, 0.0, z.data(), in.left, out_slice, in.right);
}

Tensor local_ttm(const Tensor& y, const Matrix& m, int mode) {
  Tensor z(ttm_dims(y, m, mode));
  local_ttm_into(y, m, mode, z);
  return z;
}

Matrix local_gram(const Tensor& y, int mode) {
  const UnfoldShape s = unfold_shape(y.dims(), mode);
  Matrix gram(s.mid, s.mid);
  if (y.size() == 0) return gram;
  if (s.left == 1) {
    // Unfolding is the (mid x right) matrix itself: S = Y * Y^T.
    blas::syrk_full(blas::Trans::No, s.mid, s.right, 1.0, y.data(), s.mid,
                    0.0, gram.data(), s.mid);
    return gram;
  }
  const std::size_t slice = s.left * s.mid;
  if (local_kernel_path() == LocalKernelPath::PerSlice) {
    for (std::size_t r = 0; r < s.right; ++r) {
      // Block column r of the unfolding is B_r^T: S += B_r^T * B_r.
      blas::syrk_full(blas::Trans::Yes, s.mid, s.left, 1.0,
                      y.data() + r * slice, s.left, (r == 0) ? 0.0 : 1.0,
                      gram.data(), s.mid);
    }
    return gram;
  }
  // Single fused invocation: S = sum_r B_r^T B_r with the slice sum riding
  // inside the KC loop (stride_c == 0).
  blas::gemm_batch_strided(blas::Trans::Yes, blas::Trans::No, s.mid, s.mid,
                           s.left, 1.0, y.data(), s.left, slice, y.data(),
                           s.left, slice, 0.0, gram.data(), s.mid, 0,
                           s.right);
  return gram;
}

Matrix local_gram_sym(const Tensor& y, int mode) {
  const UnfoldShape s = unfold_shape(y.dims(), mode);
  Matrix gram(s.mid, s.mid);
  if (y.size() == 0) return gram;
  if (s.left == 1) {
    blas::syrk_lower(blas::Trans::No, s.mid, s.right, 1.0, y.data(), s.mid,
                     0.0, gram.data(), s.mid);
  } else if (local_kernel_path() == LocalKernelPath::PerSlice) {
    const std::size_t slice = s.left * s.mid;
    for (std::size_t r = 0; r < s.right; ++r) {
      blas::syrk_lower(blas::Trans::Yes, s.mid, s.left, 1.0,
                       y.data() + r * slice, s.left, (r == 0) ? 0.0 : 1.0,
                       gram.data(), s.mid);
    }
  } else {
    blas::syrk_lower_batch_strided(blas::Trans::Yes, s.mid, s.left, 1.0,
                                   y.data(), s.left, s.left * s.mid, 0.0,
                                   gram.data(), s.mid, s.right);
  }
  blas::symmetrize_from_lower(s.mid, gram.data(), s.mid);
  return gram;
}

Matrix local_cross_gram(const Tensor& y, const Tensor& w, int mode) {
  PT_REQUIRE(y.order() == w.order(), "cross_gram: order mismatch");
  for (int n = 0; n < y.order(); ++n) {
    PT_REQUIRE(n == mode || y.dim(n) == w.dim(n),
               "cross_gram: dims must match outside mode " << mode);
  }
  const UnfoldShape sy = unfold_shape(y.dims(), mode);
  const UnfoldShape sw = unfold_shape(w.dims(), mode);
  Matrix c(sy.mid, sw.mid);
  if (y.size() == 0 || w.size() == 0) return c;
  if (sy.left == 1) {
    // C = Y * W^T with Y (midY x right), W (midW x right).
    blas::gemm(blas::Trans::No, blas::Trans::Yes, sy.mid, sw.mid, sy.right,
               1.0, y.data(), sy.mid, w.data(), sw.mid, 0.0, c.data(), sy.mid);
    return c;
  }
  const std::size_t slice_y = sy.left * sy.mid;
  const std::size_t slice_w = sw.left * sw.mid;
  if (local_kernel_path() == LocalKernelPath::PerSlice) {
    for (std::size_t r = 0; r < sy.right; ++r) {
      // C += By_r^T * Bw_r.
      blas::gemm(blas::Trans::Yes, blas::Trans::No, sy.mid, sw.mid, sy.left,
                 1.0, y.data() + r * slice_y, sy.left, w.data() + r * slice_w,
                 sw.left, (r == 0) ? 0.0 : 1.0, c.data(), sy.mid);
    }
    return c;
  }
  blas::gemm_batch_strided(blas::Trans::Yes, blas::Trans::No, sy.mid, sw.mid,
                           sy.left, 1.0, y.data(), sy.left, slice_y, w.data(),
                           sw.left, slice_w, 0.0, c.data(), sy.mid, 0,
                           sy.right);
  return c;
}

Tensor naive_ttm(const Tensor& y, const Matrix& m, int mode) {
  Tensor z(ttm_dims(y, m, mode));
  const std::size_t jn = y.dim(mode);
  const std::size_t k = m.rows();
  std::vector<std::size_t> idx(static_cast<std::size_t>(y.order()), 0);
  for (std::size_t lin = 0; lin < y.size(); ++lin) {
    const auto yi = y.multi_index(lin);
    idx = yi;
    const double val = y[lin];
    const std::size_t j = yi[static_cast<std::size_t>(mode)];
    for (std::size_t kk = 0; kk < k; ++kk) {
      idx[static_cast<std::size_t>(mode)] = kk;
      z.at(idx) += m(kk, j) * val;
    }
  }
  (void)jn;
  return z;
}

Matrix naive_gram(const Tensor& y, int mode) {
  const std::size_t jn = y.dim(mode);
  Matrix s(jn, jn);
  // Accumulate outer products of unfolding columns: walk all elements and
  // combine entries sharing all non-mode indices.
  const UnfoldShape us = unfold_shape(y.dims(), mode);
  for (std::size_t r = 0; r < us.right; ++r) {
    for (std::size_t l = 0; l < us.left; ++l) {
      for (std::size_t i = 0; i < jn; ++i) {
        const double yi = y[l + i * us.left + r * us.left * us.mid];
        for (std::size_t j = 0; j < jn; ++j) {
          const double yj = y[l + j * us.left + r * us.left * us.mid];
          s(i, j) += yi * yj;
        }
      }
    }
  }
  return s;
}

}  // namespace ptucker::tensor
