#include "data/combustion.hpp"

#include <cmath>
#include <numbers>

#include "blas/blas.hpp"
#include "util/rng.hpp"

namespace ptucker::data {

const char* preset_name(CombustionPreset preset) {
  switch (preset) {
    case CombustionPreset::HCCI: return "HCCI";
    case CombustionPreset::TJLR: return "TJLR";
    case CombustionPreset::SP: return "SP";
  }
  return "?";
}

CombustionSpec combustion_spec(CombustionPreset preset, double scale,
                               std::uint64_t seed) {
  PT_REQUIRE(scale > 0.0 && scale <= 1.0, "combustion scale must be in (0,1]");
  auto scaled = [&](std::size_t full) {
    return std::max<std::size_t>(
        8, static_cast<std::size_t>(std::llround(scale * static_cast<double>(full))));
  };
  CombustionSpec spec;
  spec.seed = seed;
  switch (preset) {
    case CombustionPreset::HCCI:
      // 672 x 672 x 33 x 627: 2D grid, 33 species, 627 time steps.
      spec.dims = {scaled(672), scaled(672), 33, scaled(627)};
      spec.species_mode = 2;
      spec.time_mode = 3;
      spec.decades = 6.0;
      spec.noise_level = 3e-6;
      spec.steady = false;
      break;
    case CombustionPreset::TJLR:
      // 460 x 700 x 360 x 35 x 16: 3D grid, 35 variables, 16 steps;
      // heavily downsampled in the original -> closest to white, least
      // compressible (paper: C between 2 and 37).
      spec.dims = {scaled(460), scaled(700), scaled(360), 35,
                   std::max<std::size_t>(8, scaled(16))};
      spec.species_mode = 3;
      spec.time_mode = 4;
      spec.decades = 3.0;
      spec.noise_level = 2e-4;
      spec.steady = false;
      break;
    case CombustionPreset::SP:
      // 500 x 500 x 500 x 11 x 50: statistically steady planar flame ->
      // most compressible (paper: C between 5 and 5600).
      spec.dims = {scaled(500), scaled(500), scaled(500), 11, scaled(50)};
      spec.species_mode = 3;
      spec.time_mode = 4;
      spec.decades = 14.0;
      spec.noise_level = 1e-8;
      spec.steady = true;
      break;
  }
  // Derive the ladder: enough components to cover the largest non-species
  // mode with a smooth spectrum, decaying `decades` orders over one extent.
  std::size_t max_dim = 0;
  for (std::size_t n = 0; n < spec.dims.size(); ++n) {
    if (static_cast<int>(n) == spec.species_mode) continue;
    max_dim = std::max(max_dim, spec.dims[n]);
  }
  spec.components = static_cast<int>(
      std::min<std::size_t>(1200, std::max<std::size_t>(16, max_dim + max_dim / 4)));
  spec.rho = std::pow(10.0, -spec.decades / static_cast<double>(max_dim));
  return spec;
}

namespace {

/// Per-component 1D profiles for every mode, evaluated on the global index
/// range. Deterministic in (spec.seed, mode, component) and identical on
/// every rank.
struct ProfileTables {
  // tables[n] is a (In x components) column-major matrix: column c is the
  // profile of component c along mode n.
  std::vector<std::vector<double>> tables;
  std::vector<double> weights;  // w_c
};

ProfileTables build_profiles(const CombustionSpec& spec) {
  const std::size_t order = spec.dims.size();
  const std::size_t c_count = static_cast<std::size_t>(spec.components);
  ProfileTables out;
  out.tables.resize(order);
  out.weights.resize(c_count);

  util::Rng wrng(util::splitmix64(spec.seed ^ 0xB125Full));
  for (std::size_t c = 0; c < c_count; ++c) {
    out.weights[c] =
        std::pow(spec.rho, static_cast<double>(c)) * (0.7 + 0.6 * wrng.uniform());
  }

  for (std::size_t n = 0; n < order; ++n) {
    const std::size_t in = spec.dims[n];
    std::vector<double>& table = out.tables[n];
    table.assign(in * c_count, 0.0);
    util::Rng rng(util::splitmix64(spec.seed ^ (0x900D + 31 * n)));
    const bool is_species = static_cast<int>(n) == spec.species_mode;
    const bool is_time = static_cast<int>(n) == spec.time_mode;
    for (std::size_t c = 0; c < c_count; ++c) {
      double* col = table.data() + c * in;
      if (is_species) {
        // Dense random mixing across variables: the species mode barely
        // compresses (paper Fig. 6: species curves stay high).
        for (std::size_t i = 0; i < in; ++i) col[i] = rng.normal();
      } else if (is_time) {
        // Temporal envelope: oscillation with optional decay. Statistically
        // steady data (SP) fluctuates around a mean -> smoother, more
        // compressible time behaviour.
        const double freq = rng.uniform(0.5, spec.steady ? 2.0 : 6.0);
        const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
        const double lambda = spec.steady ? 0.0 : rng.uniform(0.0, 2.5);
        const double base = spec.steady ? rng.uniform(0.5, 1.0) : 0.0;
        for (std::size_t i = 0; i < in; ++i) {
          const double t =
              in > 1 ? static_cast<double>(i) / static_cast<double>(in - 1)
                     : 0.0;
          col[i] = base + std::exp(-lambda * t) *
                              std::sin(2.0 * std::numbers::pi * freq * t +
                                       phase);
        }
      } else {
        // Spatial mode: bursty Gaussian structure — "important activity
        // occurring in subsets of the spatial grid" (paper Sec. I).
        const double center = rng.uniform(0.05, 0.95);
        const double width =
            (rng.uniform() < 0.25) ? rng.uniform(0.15, 0.5)   // large eddy
                                   : rng.uniform(0.015, 0.12); // burst
        for (std::size_t i = 0; i < in; ++i) {
          const double x =
              in > 1 ? static_cast<double>(i) / static_cast<double>(in - 1)
                     : 0.0;
          const double z = (x - center) / width;
          col[i] = std::exp(-0.5 * z * z);
        }
      }
    }
  }
  return out;
}

/// Fill \p local (the block at \p ranges of the global tensor) with the
/// component-sum field plus counter-keyed noise.
void fill_block(Tensor& local, const std::vector<util::Range>& ranges,
                const CombustionSpec& spec, const ProfileTables& profiles) {
  const std::size_t order = spec.dims.size();
  const std::size_t c_count = static_cast<std::size_t>(spec.components);
  if (local.size() == 0) return;

  // Component sum, vectorized along mode 0: for each fiber (fixed indices
  // of modes >= 1), accumulate w_c * prod_{n>=1} f_cn(i_n) * f_c0(.).
  std::fill(local.data(), local.data() + local.size(), 0.0);
  const std::size_t fiber_len = local.dim(0);
  const std::size_t fibers = local.size() / fiber_len;
  std::vector<std::size_t> idx(order, 0);  // local indices of modes >= 1
  for (std::size_t f = 0; f < fibers; ++f) {
    double* dst = local.data() + f * fiber_len;
    for (std::size_t c = 0; c < c_count; ++c) {
      double coeff = profiles.weights[c];
      for (std::size_t n = 1; n < order; ++n) {
        const std::size_t gi = ranges[n].lo + idx[n];
        coeff *= profiles.tables[n][c * spec.dims[n] + gi];
      }
      if (coeff == 0.0) continue;
      const double* prof0 =
          profiles.tables[0].data() + c * spec.dims[0] + ranges[0].lo;
      blas::axpy(fiber_len, coeff, prof0, dst);
    }
    for (std::size_t n = 1; n < order; ++n) {
      if (++idx[n] < local.dim(static_cast<int>(n))) break;
      idx[n] = 0;
    }
  }

  if (spec.noise_level > 0.0) {
    const util::CounterRng noise(spec.seed ^ 0xD35Full);
    std::vector<std::size_t> strides(order);
    std::size_t stride = 1;
    for (std::size_t n = 0; n < order; ++n) {
      strides[n] = stride;
      stride *= spec.dims[n];
    }
    std::vector<std::size_t> lidx(order, 0);
    for (std::size_t i = 0; i < local.size(); ++i) {
      std::size_t gidx = 0;
      for (std::size_t n = 0; n < order; ++n) {
        gidx += (ranges[n].lo + lidx[n]) * strides[n];
      }
      local[i] += spec.noise_level * noise.normal(gidx);
      for (std::size_t n = 0; n < order; ++n) {
        if (++lidx[n] < local.dim(static_cast<int>(n))) break;
        lidx[n] = 0;
      }
    }
  }
}

}  // namespace

DistTensor make_combustion(std::shared_ptr<mps::CartGrid> grid,
                           const CombustionSpec& spec) {
  PT_REQUIRE(spec.components > 0, "combustion: components must be > 0");
  const ProfileTables profiles = build_profiles(spec);
  DistTensor x(grid, spec.dims);
  std::vector<util::Range> ranges(spec.dims.size());
  for (std::size_t n = 0; n < spec.dims.size(); ++n) {
    ranges[n] = x.mode_range(static_cast<int>(n));
  }
  fill_block(x.local(), ranges, spec, profiles);
  return x;
}

Tensor make_combustion_seq(const CombustionSpec& spec) {
  PT_REQUIRE(spec.components > 0, "combustion: components must be > 0");
  const ProfileTables profiles = build_profiles(spec);
  Tensor x(spec.dims);
  std::vector<util::Range> ranges(spec.dims.size());
  for (std::size_t n = 0; n < spec.dims.size(); ++n) {
    ranges[n] = util::Range{0, spec.dims[n]};
  }
  fill_block(x, ranges, spec, profiles);
  return x;
}

}  // namespace ptucker::data
