#pragma once
/// \file synthetic.hpp
/// \brief Synthetic tensor generators for tests and scaling benches.
///
/// The scaling experiments (paper Sec. VIII-D/E) use synthetic data formed
/// from a Tucker model: a random core of the target reduced dimensions
/// multiplied by random orthonormal factors, optionally perturbed by white
/// noise. The generator is deterministic given a seed, and the distributed
/// variant computes each rank's block locally (no communication, no global
/// materialization) so 15 TB-style weak-scaling inputs remain feasible in
/// principle.

#include "dist/dist_tensor.hpp"
#include "tensor/local_kernels.hpp"

namespace ptucker::data {

using dist::DistTensor;
using tensor::Dims;
using tensor::Matrix;
using tensor::Tensor;

/// Deterministic factor used by both the sequential and distributed
/// generators: orthonormal In x Rn from seed (per mode).
[[nodiscard]] Matrix synthetic_factor(std::size_t in, std::size_t rn,
                                      std::uint64_t seed, int mode);

/// Deterministic core tensor (i.i.d. normal entries).
[[nodiscard]] Tensor synthetic_core(const Dims& ranks, std::uint64_t seed);

/// Full tensor X = G x {U(n)} (+ noise_level * N(0,1) per element).
[[nodiscard]] Tensor make_low_rank_seq(const Dims& dims, const Dims& ranks,
                                       std::uint64_t seed,
                                       double noise_level = 0.0);

/// Distributed X = G x {U(n)} (+ noise): each rank builds its own block by
/// chaining local TTMs with the row blocks of the shared factors; the noise
/// field is a counter-based RNG of the global index, so the global tensor
/// is independent of the processor grid (up to fp rounding in the chain).
[[nodiscard]] DistTensor make_low_rank(std::shared_ptr<mps::CartGrid> grid,
                                       const Dims& dims, const Dims& ranks,
                                       std::uint64_t seed,
                                       double noise_level = 0.0);

}  // namespace ptucker::data
