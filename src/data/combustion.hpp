#pragma once
/// \file combustion.hpp
/// \brief DNS-surrogate data generator standing in for the paper's S3D
/// combustion datasets (Sec. VII-A).
///
/// The real datasets (HCCI 70 GB, TJLR 520 GB, SP 550 GB) are not available,
/// so we synthesize fields with the same *structure*: bursty, separable
/// space x species x time components with exponentially decaying amplitudes
/// plus broadband noise. Compressibility is controlled per preset so the
/// relative ordering matches the paper's findings: SP (statistically steady,
/// most compressible) > HCCI > TJLR (downsampled, least compressible).
///
/// Each component c contributes  w_c * prod_n f_{c,n}(i_n)  where f is a
/// Gaussian bump in spatial modes, a dense random mixing vector over
/// species, and a decaying oscillation in time; w_c = rho^c. The mode-wise
/// Gram spectra therefore decay geometrically at preset-specific rates down
/// to a noise floor — the behaviour Fig. 6 measures on the real data.
///
/// Generation is fully deterministic given the seed and independent of the
/// processor grid (profile tables are replicated; noise is a counter-based
/// hash of the global index).

#include "dist/dist_tensor.hpp"

namespace ptucker::data {

using dist::DistTensor;
using tensor::Dims;
using tensor::Tensor;

enum class CombustionPreset { HCCI, TJLR, SP };

[[nodiscard]] const char* preset_name(CombustionPreset preset);

/// Generation parameters; obtain defaults with combustion_spec().
///
/// The component amplitude ladder w_c = rho^c is derived from `decades`:
/// rho = 10^(-decades / max_non_species_dim), so the spectrum decays by
/// `decades` orders of magnitude across one full mode extent regardless of
/// the --scale factor. This keeps the *relative* compressibility of the
/// presets scale-invariant, which is what the figure reproductions rely on.
struct CombustionSpec {
  Dims dims;             ///< I1 ... IN (species mode kept at full size)
  int species_mode = 0;  ///< which mode indexes variables/species
  int time_mode = 0;     ///< which mode indexes time steps
  int components = 128;  ///< number of separable structures (derived)
  double rho = 0.95;     ///< per-component amplitude decay w_c = rho^c
  double decades = 6.0;  ///< spectral decay depth across one mode extent
  double noise_level = 1e-6;  ///< additive white-noise amplitude
  bool steady = false;        ///< statistically steady (SP) vs evolving
  std::uint64_t seed = 42;
};

/// Paper-matching spec scaled down by \p scale (applied to spatial and time
/// dims, floor 8; species dims unchanged). scale = 1 gives the paper's full
/// dataset sizes.
[[nodiscard]] CombustionSpec combustion_spec(CombustionPreset preset,
                                             double scale,
                                             std::uint64_t seed = 42);

/// Distributed generation on the given grid.
[[nodiscard]] DistTensor make_combustion(std::shared_ptr<mps::CartGrid> grid,
                                         const CombustionSpec& spec);

/// Sequential generation (tests / small runs); produces the same global
/// tensor as the distributed variant.
[[nodiscard]] Tensor make_combustion_seq(const CombustionSpec& spec);

}  // namespace ptucker::data
