#include "data/normalize.hpp"

#include <cmath>

#include "mps/collectives.hpp"

namespace ptucker::data {

namespace {

/// Walk the local tensor and apply fn(species_local_index, value_ref).
template <class Fn>
void for_each_species(tensor::Tensor& local, int species_mode, Fn&& fn) {
  const tensor::UnfoldShape s = tensor::unfold_shape(local.dims(),
                                                     species_mode);
  for (std::size_t r = 0; r < s.right; ++r) {
    for (std::size_t m = 0; m < s.mid; ++m) {
      double* base = local.data() + r * s.left * s.mid + m * s.left;
      for (std::size_t l = 0; l < s.left; ++l) {
        fn(m, base[l]);
      }
    }
  }
}

}  // namespace

NormalizationStats normalize_species(dist::DistTensor& x, int species_mode) {
  PT_REQUIRE(species_mode >= 0 && species_mode < x.order(),
             "normalize: species mode out of range");
  const std::size_t n_species = x.global_dim(species_mode);
  const util::Range my_range = x.mode_range(species_mode);
  const std::size_t local_species = my_range.size();

  // Per-local-species sums over my block, then summed over the processor
  // row (all ranks holding the same species block).
  std::vector<double> sums(2 * local_species, 0.0);
  for_each_species(x.local(), species_mode, [&](std::size_t s, double& v) {
    sums[s] += v;
    sums[local_species + s] += v * v;
  });
  const mps::Comm& row = x.grid().slice_comm(species_mode);
  mps::allreduce(row, std::span<double>(sums));

  const double count =
      static_cast<double>(tensor::prod_except(x.global_dims(), species_mode));
  std::vector<double> local_mean(local_species);
  std::vector<double> local_std(local_species);
  for (std::size_t s = 0; s < local_species; ++s) {
    local_mean[s] = sums[s] / count;
    const double var =
        std::max(0.0, sums[local_species + s] / count -
                          local_mean[s] * local_mean[s]);
    local_std[s] = std::sqrt(var);
  }

  // Transform my block.
  for_each_species(x.local(), species_mode, [&](std::size_t s, double& v) {
    v -= local_mean[s];
    if (local_std[s] >= kStdFloor) v /= local_std[s];
  });

  // Assemble the global stats (replicated) for reporting / denormalization.
  NormalizationStats stats;
  stats.species_mode = species_mode;
  stats.mean.assign(n_species, 0.0);
  stats.stdev.assign(n_species, 0.0);
  const mps::Comm& col = x.grid().mode_comm(species_mode);
  const int pn = x.grid().extent(species_mode);
  std::vector<std::size_t> counts(static_cast<std::size_t>(pn));
  for (int l = 0; l < pn; ++l) {
    counts[static_cast<std::size_t>(l)] =
        x.mode_range_of(species_mode, l).size();
  }
  mps::allgatherv(col, std::span<const double>(local_mean),
                  std::span<double>(stats.mean),
                  std::span<const std::size_t>(counts));
  mps::allgatherv(col, std::span<const double>(local_std),
                  std::span<double>(stats.stdev),
                  std::span<const std::size_t>(counts));
  return stats;
}

void denormalize_species(dist::DistTensor& x, const NormalizationStats& stats) {
  denormalize_species_range(x, stats, 0);
}

void denormalize_species_range(dist::DistTensor& x,
                               const NormalizationStats& stats,
                               std::size_t species_lo) {
  PT_REQUIRE(stats.species_mode >= 0 && stats.species_mode < x.order(),
             "denormalize: species mode out of range");
  const util::Range my_range = x.mode_range(stats.species_mode);
  PT_REQUIRE(species_lo + my_range.hi <= stats.mean.size(),
             "denormalize: species range [" << species_lo + my_range.lo
                                            << ", " << species_lo + my_range.hi
                                            << ") outside the stats ("
                                            << stats.mean.size()
                                            << " species)");
  for_each_species(x.local(), stats.species_mode,
                   [&](std::size_t s, double& v) {
                     const std::size_t g = species_lo + my_range.lo + s;
                     if (stats.stdev[g] >= kStdFloor) v *= stats.stdev[g];
                     v += stats.mean[g];
                   });
}

NormalizationStats normalize_species_seq(tensor::Tensor& x, int species_mode) {
  PT_REQUIRE(species_mode >= 0 && species_mode < x.order(),
             "normalize: species mode out of range");
  const std::size_t n_species = x.dim(species_mode);
  std::vector<double> sums(2 * n_species, 0.0);
  for_each_species(x, species_mode, [&](std::size_t s, double& v) {
    sums[s] += v;
    sums[n_species + s] += v * v;
  });
  const double count =
      static_cast<double>(tensor::prod_except(x.dims(), species_mode));
  NormalizationStats stats;
  stats.species_mode = species_mode;
  stats.mean.resize(n_species);
  stats.stdev.resize(n_species);
  for (std::size_t s = 0; s < n_species; ++s) {
    stats.mean[s] = sums[s] / count;
    const double var = std::max(
        0.0, sums[n_species + s] / count - stats.mean[s] * stats.mean[s]);
    stats.stdev[s] = std::sqrt(var);
  }
  for_each_species(x, species_mode, [&](std::size_t s, double& v) {
    v -= stats.mean[s];
    if (stats.stdev[s] >= kStdFloor) v /= stats.stdev[s];
  });
  return stats;
}

void denormalize_species_seq(tensor::Tensor& x,
                             const NormalizationStats& stats) {
  denormalize_species_range_seq(x, stats, 0);
}

void denormalize_species_range_seq(tensor::Tensor& x,
                                   const NormalizationStats& stats,
                                   std::size_t species_lo) {
  PT_REQUIRE(stats.species_mode >= 0 && stats.species_mode < x.order(),
             "denormalize: species mode out of range");
  PT_REQUIRE(species_lo + x.dim(stats.species_mode) <= stats.mean.size(),
             "denormalize: species range ["
                 << species_lo << ", "
                 << species_lo + x.dim(stats.species_mode)
                 << ") outside the stats (" << stats.mean.size()
                 << " species)");
  for_each_species(x, stats.species_mode, [&](std::size_t s, double& v) {
    const std::size_t g = species_lo + s;
    if (stats.stdev[g] >= kStdFloor) v *= stats.stdev[g];
    v += stats.mean[g];
  });
}

}  // namespace ptucker::data
