#include "data/synthetic.hpp"

#include "util/rng.hpp"

namespace ptucker::data {

namespace {
std::uint64_t mode_seed(std::uint64_t seed, int mode, std::uint64_t salt) {
  return util::splitmix64(seed ^ (salt + 0x9e37 * static_cast<std::uint64_t>(
                                                      mode + 1)));
}
}  // namespace

Matrix synthetic_factor(std::size_t in, std::size_t rn, std::uint64_t seed,
                        int mode) {
  PT_REQUIRE(rn <= in, "synthetic factor needs Rn <= In");
  return Matrix::random_orthonormal(in, rn, mode_seed(seed, mode, 0xFAC70));
}

Tensor synthetic_core(const Dims& ranks, std::uint64_t seed) {
  return Tensor::randn(ranks, util::splitmix64(seed ^ 0xC04Eull));
}

Tensor make_low_rank_seq(const Dims& dims, const Dims& ranks,
                         std::uint64_t seed, double noise_level) {
  PT_REQUIRE(dims.size() == ranks.size(), "dims/ranks order mismatch");
  Tensor y = synthetic_core(ranks, seed);
  for (std::size_t n = 0; n < dims.size(); ++n) {
    const Matrix u =
        synthetic_factor(dims[n], ranks[n], seed, static_cast<int>(n));
    y = tensor::local_ttm(y, u, static_cast<int>(n));
  }
  if (noise_level > 0.0) {
    const util::CounterRng noise(seed ^ 0x7015Eull);
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] += noise_level * noise.normal(i);
    }
  }
  return y;
}

DistTensor make_low_rank(std::shared_ptr<mps::CartGrid> grid,
                         const Dims& dims, const Dims& ranks,
                         std::uint64_t seed, double noise_level) {
  PT_REQUIRE(dims.size() == ranks.size(), "dims/ranks order mismatch");
  DistTensor x(grid, dims);
  // Local block = core x_n U(n)[my rows, :] chained over modes — every rank
  // reproduces the same deterministic global model, then slices it by
  // multiplying with only its factor row blocks.
  Tensor y = synthetic_core(ranks, seed);
  for (std::size_t n = 0; n < dims.size(); ++n) {
    const Matrix u =
        synthetic_factor(dims[n], ranks[n], seed, static_cast<int>(n));
    const Matrix u_rows = u.row_block(x.mode_range(static_cast<int>(n)));
    y = tensor::local_ttm(y, u_rows, static_cast<int>(n));
  }
  PT_CHECK(y.dims() == x.local().dims(), "make_low_rank: block mismatch");
  x.local() = std::move(y);

  if (noise_level > 0.0) {
    // Counter-based noise keyed by the *global* linear index.
    const util::CounterRng noise(seed ^ 0x7015Eull);
    std::vector<std::size_t> strides(dims.size());
    std::size_t stride = 1;
    for (std::size_t n = 0; n < dims.size(); ++n) {
      strides[n] = stride;
      stride *= dims[n];
    }
    Tensor& local = x.local();
    std::vector<util::Range> ranges(dims.size());
    for (std::size_t n = 0; n < dims.size(); ++n) {
      ranges[n] = x.mode_range(static_cast<int>(n));
    }
    std::vector<std::size_t> lidx(dims.size(), 0);
    for (std::size_t i = 0; i < local.size(); ++i) {
      std::size_t gidx = 0;
      for (std::size_t n = 0; n < dims.size(); ++n) {
        gidx += (ranges[n].lo + lidx[n]) * strides[n];
      }
      local[i] += noise_level * noise.normal(gidx);
      for (std::size_t n = 0; n < dims.size(); ++n) {
        if (++lidx[n] < local.dim(static_cast<int>(n))) break;
        lidx[n] = 0;
      }
    }
  }
  return x;
}

}  // namespace ptucker::data
