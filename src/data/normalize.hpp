#pragma once
/// \file normalize.hpp
/// \brief Per-species centering and scaling (paper Sec. VII-A).
///
/// "Each data set is centered and scaled for each variable/species: we
/// compute the mean and standard deviation for each species slice, subtract
/// the mean and divide by the standard deviation (unless it is less than
/// 1e-10, in which case the division is not performed)."

#include "dist/dist_tensor.hpp"

namespace ptucker::data {

struct NormalizationStats {
  int species_mode = 0;
  std::vector<double> mean;   ///< one per global species index
  std::vector<double> stdev;  ///< one per global species index (pre-floor)
};

/// Minimum standard deviation below which scaling is skipped (paper value).
inline constexpr double kStdFloor = 1e-10;

/// Distributed in-place normalization; returns the full per-species stats
/// (replicated on every rank).
NormalizationStats normalize_species(dist::DistTensor& x, int species_mode);

/// Inverse transform (for reconstructing physical values).
void denormalize_species(dist::DistTensor& x, const NormalizationStats& stats);

/// Inverse transform for a tensor whose species mode covers only the global
/// species indices [species_lo, species_lo + extent) of \p stats — a sliced
/// partial reconstruction (the streaming query path).
void denormalize_species_range(dist::DistTensor& x,
                               const NormalizationStats& stats,
                               std::size_t species_lo);

/// Sequential variants for tests and small runs.
NormalizationStats normalize_species_seq(tensor::Tensor& x, int species_mode);
void denormalize_species_seq(tensor::Tensor& x,
                             const NormalizationStats& stats);

/// Sequential inverse transform for a tensor whose species mode covers only
/// the global species indices [species_lo, species_lo + extent) of \p stats
/// — the serve layer's per-query denormalization. Applies the exact formula
/// of denormalize_species_range, so a local evaluation bit-matches the
/// distributed one.
void denormalize_species_range_seq(tensor::Tensor& x,
                                   const NormalizationStats& stats,
                                   std::size_t species_lo);

}  // namespace ptucker::data
