#pragma once
/// \file query_server.hpp
/// \brief Concurrent reconstruction serving over PTA1 archives — the
/// paper's analysis workflow ("extract only the reconstruction of a single
/// species, a few time steps, ... a subset of the grid") turned into a
/// long-lived server: many client threads query small subtensors of the
/// archived time series and each answer is reconstructed on demand from
/// the covering entries' Tucker models, never materializing a full window.
///
/// Three layers (docs/ARCHITECTURE.md):
///   router    maps (steps [a, b), spatial box) onto the covering archive
///             entries via ArchiveReader::covering, evaluates each piece
///             with core::reconstruct_range_local (row subsets of the
///             factors — cost scales with the answer, not the window), and
///             stitches along time;
///   cache     serve::PanelCache holds hot decompressed entry panels
///             (sharded LRU, hit/miss/eviction counters);
///   executor  a bounded-admission pool of worker threads; when all
///             workers are busy and the queue is full, submit() blocks —
///             overload degrades to queueing, never to unbounded memory.
///
/// Every answer is bit-identical to a single-threaded
/// StreamingReconstructor::reconstruct_steps of the same box on a 1-rank
/// grid: the evaluation shares the distributed path's contraction order
/// and denormalization formula, and the entry loads assemble the same
/// bytes (serve_test.cpp holds this invariant under 8-thread load).
///
/// Archives opened by the server are revalidated against the filesystem on
/// every query (disable with ServerOptions::revalidate): a pure append is
/// adopted in place with cached panels kept; an in-place rewrite bumps the
/// archive's cache generation and drops its panels, mirroring the
/// TimestepReader stale-file policy.

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>
#include <deque>
#include <mutex>

#include "pario/archive_io.hpp"
#include "pario/timestep_reader.hpp"  // detail::StepFileSig
#include "serve/panel_cache.hpp"

namespace ptucker::serve {

struct ServerOptions {
  /// Total decompressed entry panels kept hot (LRU).
  std::size_t cache_capacity = 64;
  /// Independently locked cache shards (clamped to cache_capacity).
  std::size_t cache_shards = 8;
  /// Executor worker threads; 0 = evaluate on the submitting thread.
  std::size_t executor_threads = 4;
  /// Bounded admission queue depth; full queue blocks submit().
  std::size_t queue_depth = 256;
  /// Re-stat archives on every query; rewritten archives are re-opened.
  bool revalidate = true;
  /// Restore physical values with each entry's archived per-window stats.
  bool denormalize = true;
  /// Deadline applied to every query whose Request leaves deadline_ms == 0;
  /// 0 = unbounded. For executor queries the clock starts at submit(), so
  /// queueing time counts against the deadline — a query that waited too
  /// long fails fast with DeadlineExceeded instead of occupying a worker.
  std::uint64_t default_deadline_ms = 0;
  /// Load shedding: when the admission queue is full, submit() throws
  /// Overloaded immediately instead of blocking the caller. Off by default
  /// (overload degrades to queueing latency, the original behavior).
  bool shed_on_overload = false;
};

/// One query: global steps [step_lo, step_hi) of archive \p archive,
/// restricted to \p box per spatial mode (empty vector = full extent
/// everywhere). The answer is a |box_1| x ... x |box_S| x (step_hi -
/// step_lo) tensor, time last — the same shape reconstruct_steps returns.
struct Request {
  std::size_t archive = 0;
  std::uint64_t step_lo = 0;
  std::uint64_t step_hi = 0;
  std::vector<util::Range> box;
  /// Per-query deadline in milliseconds; 0 = use the server default.
  /// Exceeding it throws DeadlineExceeded (on the future for executor
  /// queries) — partial answers are never returned.
  std::uint64_t deadline_ms = 0;
};

/// Executor statistics (monotonic, except peak_queue which is a
/// high-water mark).
struct ExecutorCounters {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t admission_waits = 0;  ///< submits that blocked on a full queue
  std::size_t peak_queue = 0;
  std::size_t sheds = 0;            ///< submits rejected with Overloaded
  std::size_t deadline_misses = 0;  ///< queries that threw DeadlineExceeded
};

/// Per-query introspection: what one evaluation actually did. Filled by
/// subtensor_traced(); stage times are microseconds of wall clock on the
/// evaluating thread.
struct QueryTrace {
  std::size_t entries_touched = 0;  ///< archive entries covering the range
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::uint64_t bytes_loaded = 0;  ///< compressed blob bytes read on misses
  std::uint64_t route_us = 0;      ///< validation + covering-entry lookup
  std::uint64_t load_us = 0;       ///< entry read + decompress (misses only)
  std::uint64_t reconstruct_us = 0;
  std::uint64_t denormalize_us = 0;
  std::uint64_t stitch_us = 0;
  std::uint64_t total_us = 0;
};

class QueryServer {
 public:
  /// Open the given archives (each must exist and parse). Queries name an
  /// archive by its index in this list.
  explicit QueryServer(std::vector<std::string> archive_paths,
                       ServerOptions options = {});
  /// Stops and joins the executor; queued queries complete first.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  [[nodiscard]] std::size_t archive_count() const { return archives_.size(); }
  /// Dims of one step of archive \p a (spatial x species, no time mode).
  [[nodiscard]] tensor::Dims step_dims(std::size_t a) const;
  /// One past the last committed step of archive \p a (re-snapshots the
  /// file when revalidation is on, so appends become visible).
  [[nodiscard]] std::uint64_t num_steps(std::size_t a) const;
  /// Revalidation generation of archive \p a: bumped when an in-place
  /// rewrite invalidated the cached panels; unchanged by pure appends.
  [[nodiscard]] std::uint64_t generation(std::size_t a) const;

  /// Synchronous evaluation on the calling thread (no queue).
  [[nodiscard]] tensor::Tensor subtensor(const Request& req) const;

  /// subtensor() plus a per-query breakdown (entries touched, cache hits,
  /// bytes loaded, per-stage micros) written to \p trace. Same answer bytes
  /// as subtensor() — tracing never changes evaluation.
  [[nodiscard]] tensor::Tensor subtensor_traced(const Request& req,
                                                QueryTrace& trace) const;

  /// Asynchronous evaluation through the bounded executor. While the
  /// admission queue is full, blocks — or, with shed_on_overload, throws
  /// Overloaded immediately (synchronously, not on the future). A malformed
  /// request surfaces as an exception on the future.
  [[nodiscard]] std::future<tensor::Tensor> submit(Request req) const;

  /// One element: value at spatial index \p idx of global step \p step.
  [[nodiscard]] double element(std::size_t a, std::uint64_t step,
                               std::span<const std::size_t> idx) const;

  /// One fiber: vary \p mode over its full extent with every other index
  /// fixed by (\p step, \p idx); \p mode == step order selects the time
  /// mode (the fiber then runs over ALL archived steps, spanning window
  /// boundaries, and idx[time] is ignored as step is).
  [[nodiscard]] std::vector<double> fiber(
      std::size_t a, std::uint64_t step, int mode,
      std::span<const std::size_t> idx) const;

  /// Full-box time range: every spatial index of steps [lo, hi).
  [[nodiscard]] tensor::Tensor time_range(std::size_t a, std::uint64_t lo,
                                          std::uint64_t hi) const;

  [[nodiscard]] const PanelCache& cache() const { return cache_; }
  [[nodiscard]] ExecutorCounters executor_counters() const;
  [[nodiscard]] std::size_t queue_size() const;
  /// Entries currently quarantined across all archives. An entry is
  /// quarantined when its load failed with a ptucker Error (checksum
  /// mismatch, I/O giveup, malformed blob): later queries touching it fail
  /// fast with QuarantinedError naming the original failure, while every
  /// other entry keeps serving. A rewrite of the archive (generation bump)
  /// lifts its quarantines.
  [[nodiscard]] std::size_t quarantined_entries() const;

  /// Live introspection: "name value" lines for this server (cache,
  /// executor, queue) followed by the process-wide obs registry snapshot —
  /// one dump sees the whole stack (serve, pario, blas, mps).
  [[nodiscard]] std::string stats_report() const;
  /// Same content as one JSON object:
  /// {"server":{...},"registry":{counters,gauges,histograms}}.
  [[nodiscard]] std::string stats_json() const;

 private:
  struct ArchiveState {
    std::string path;
    mutable std::mutex mutex;  ///< guards reader/sig/generation/poisoned
    std::shared_ptr<const pario::ArchiveReader> reader;
    pario::detail::StepFileSig sig;
    std::uint64_t generation = 0;
    /// Quarantined entries: index -> what its load failed with. Cleared on
    /// generation bump (a rewrite may have replaced the bad bytes).
    std::unordered_map<std::size_t, std::string> poisoned;
  };
  struct Job {
    Request req;
    std::promise<tensor::Tensor> promise;
    /// Deadline anchor: queueing time counts against the deadline.
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Stable (reader, generation) snapshot of archive \p a, revalidating
  /// against the filesystem first when enabled.
  struct Snapshot {
    std::shared_ptr<const pario::ArchiveReader> reader;
    std::uint64_t generation = 0;
  };
  [[nodiscard]] Snapshot snapshot(std::size_t a) const;
  [[nodiscard]] tensor::Tensor evaluate(const Request& req) const;
  [[nodiscard]] tensor::Tensor evaluate(const Request& req,
                                        QueryTrace* qt) const;
  /// \p anchor is when the query's deadline clock started — submit() time
  /// for executor queries, call time for synchronous ones.
  [[nodiscard]] tensor::Tensor evaluate(
      const Request& req, QueryTrace* qt,
      std::chrono::steady_clock::time_point anchor) const;
  void worker_loop();

  ServerOptions opts_;
  std::vector<std::unique_ptr<ArchiveState>> archives_;
  mutable PanelCache cache_;

  mutable std::mutex queue_mutex_;
  mutable std::condition_variable queue_not_empty_;
  mutable std::condition_variable queue_not_full_;
  mutable std::deque<Job> queue_;
  mutable ExecutorCounters exec_counters_;  ///< guarded by queue_mutex_
  bool stopping_ = false;                   ///< guarded by queue_mutex_
  std::vector<std::thread> workers_;
};

}  // namespace ptucker::serve
