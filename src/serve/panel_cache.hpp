#pragma once
/// \file panel_cache.hpp
/// \brief Sharded LRU cache of decompressed archive-entry panels (core +
/// factors + stats) for the query server: many concurrent queries over the
/// same hot windows decompress each window's model once, not once per
/// query.
///
/// The design follows the TimestepReader LRU (pario/timestep_reader.hpp)
/// scaled out for server concurrency: the key space is split over
/// independently locked shards so queries against different windows never
/// contend on one mutex, and the loader runs with no lock held so a miss's
/// disk I/O never blocks hits on other keys in the same shard. Two threads
/// racing to load the same key both load; the first insert wins and the
/// loser adopts it (one redundant read, no torn state) — the same policy
/// TimestepReader::step_file uses.
///
/// Keys carry the owning archive's revalidation generation: when the server
/// detects an archive was rewritten in place, it bumps the generation and
/// drops the archive's panels, so stale models can never serve a query (see
/// QueryServer). Values are shared_ptr-to-const: eviction never invalidates
/// a panel a query is still reading.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/normalize.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor.hpp"

namespace ptucker::serve {

/// One archive entry decompressed and ready to contract: the full core, the
/// replicated factors, the window it covers, and its normalization stats.
struct EntryPanels {
  std::uint64_t step_first = 0;
  std::uint64_t step_count = 0;
  tensor::Tensor core;
  std::vector<tensor::Matrix> factors;
  bool has_stats = false;
  data::NormalizationStats stats;  ///< valid only when has_stats
};

/// Cache key: which archive (server-local index), which revalidation
/// generation of it, which entry.
struct PanelKey {
  std::size_t archive = 0;
  std::uint64_t generation = 0;
  std::size_t entry = 0;
  bool operator==(const PanelKey&) const = default;
};

/// Monotonic cache statistics. hits + misses == lookups always holds (a
/// racing duplicate load counts as the one miss of the thread that looked
/// up and found nothing).
struct CacheCounters {
  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;      ///< capacity evictions only
  std::size_t invalidations = 0;  ///< panels dropped by erase_archive
};

class PanelCache {
 public:
  /// \p capacity panels total, spread over min(\p shards, capacity)
  /// independently locked shards (both >= 1). Shards that come first get
  /// the remainder panels, so every shard holds at least one.
  PanelCache(std::size_t capacity, std::size_t shards);

  using Loader = std::function<std::shared_ptr<const EntryPanels>()>;

  /// Return the cached panels for \p key, or invoke \p loader (with no
  /// cache lock held) and cache its result. Never returns null unless the
  /// loader returns null.
  [[nodiscard]] std::shared_ptr<const EntryPanels> get_or_load(
      const PanelKey& key, const Loader& loader);

  /// Drop every panel of \p archive (all generations) — the revalidation
  /// path when an archive was rewritten in place.
  void erase_archive(std::size_t archive);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Shard a key maps to: (archive + entry) mod shards, so consecutive
  /// entries of one archive round-robin over the shards. Deterministic and
  /// exposed for tests.
  [[nodiscard]] std::size_t shard_of(const PanelKey& key) const;
  /// Panels currently resident (sums the shards; a racing insert may make
  /// consecutive calls disagree, which is fine for observability).
  [[nodiscard]] std::size_t size() const;
  /// Aggregated counters over all shards.
  [[nodiscard]] CacheCounters counters() const;
  /// Resident keys of one shard, most recently used first (tests only).
  [[nodiscard]] std::vector<PanelKey> shard_keys(std::size_t shard) const;

 private:
  struct KeyHash {
    std::size_t operator()(const PanelKey& k) const {
      std::size_t h = std::hash<std::size_t>{}(k.archive);
      h = h * 1000003u ^ std::hash<std::uint64_t>{}(k.generation);
      return h * 1000003u ^ std::hash<std::size_t>{}(k.entry);
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::size_t capacity = 0;
    /// Front = most recently used.
    std::list<std::pair<PanelKey, std::shared_ptr<const EntryPanels>>> lru;
    std::unordered_map<PanelKey, decltype(lru)::iterator, KeyHash> index;
    CacheCounters counters;
  };

  std::size_t capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ptucker::serve
