#include "serve/panel_cache.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace ptucker::serve {

namespace {

/// Registry mirrors of the per-shard CacheCounters, aggregated process-wide
/// under "serve.cache.*" (the per-instance counters() remain the precise
/// per-cache view; these feed the unified snapshot).
struct CacheMetrics {
  obs::Counter lookups;
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter evictions;
  obs::Counter invalidations;
};

CacheMetrics& cache_metrics() {
  static CacheMetrics* m = [] {
    auto* t = new CacheMetrics;
    t->lookups = obs::registry().counter("serve.cache.lookups");
    t->hits = obs::registry().counter("serve.cache.hits");
    t->misses = obs::registry().counter("serve.cache.misses");
    t->evictions = obs::registry().counter("serve.cache.evictions");
    t->invalidations = obs::registry().counter("serve.cache.invalidations");
    return t;
  }();
  return *m;
}

}  // namespace

PanelCache::PanelCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  PT_REQUIRE(capacity >= 1, "PanelCache: capacity < 1");
  PT_REQUIRE(shards >= 1, "PanelCache: shards < 1");
  const std::size_t n = std::min(shards, capacity);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = capacity / n + (i < capacity % n ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::size_t PanelCache::shard_of(const PanelKey& key) const {
  return (key.archive + key.entry) % shards_.size();
}

std::shared_ptr<const EntryPanels> PanelCache::get_or_load(
    const PanelKey& key, const Loader& loader) {
  Shard& s = *shards_[shard_of(key)];
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    ++s.counters.lookups;
    cache_metrics().lookups.inc();
    const auto hit = s.index.find(key);
    if (hit != s.index.end()) {
      ++s.counters.hits;
      cache_metrics().hits.inc();
      s.lru.splice(s.lru.begin(), s.lru, hit->second);  // bump to front
      return s.lru.front().second;
    }
    ++s.counters.misses;
    cache_metrics().misses.inc();
  }
  // Miss: load with the lock dropped so this key's decompression I/O never
  // blocks hits on other keys of the shard. A racing thread may load the
  // same key; first insert wins, the loser adopts the winner's panels.
  std::shared_ptr<const EntryPanels> panels = loader();
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto hit = s.index.find(key);
  if (hit != s.index.end()) {
    s.lru.splice(s.lru.begin(), s.lru, hit->second);
    return s.lru.front().second;
  }
  s.lru.emplace_front(key, std::move(panels));
  s.index[key] = s.lru.begin();
  while (s.lru.size() > s.capacity) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.counters.evictions;
    cache_metrics().evictions.inc();
  }
  return s.lru.front().second;
}

void PanelCache::erase_archive(std::size_t archive) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->first.archive == archive) {
        shard->index.erase(it->first);
        it = shard->lru.erase(it);
        ++shard->counters.invalidations;
        cache_metrics().invalidations.inc();
      } else {
        ++it;
      }
    }
  }
}

std::size_t PanelCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

CacheCounters PanelCache::counters() const {
  CacheCounters total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.lookups += shard->counters.lookups;
    total.hits += shard->counters.hits;
    total.misses += shard->counters.misses;
    total.evictions += shard->counters.evictions;
    total.invalidations += shard->counters.invalidations;
  }
  return total;
}

std::vector<PanelKey> PanelCache::shard_keys(std::size_t shard) const {
  PT_REQUIRE(shard < shards_.size(),
             "PanelCache: shard " << shard << " out of range");
  const Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<PanelKey> keys;
  keys.reserve(s.lru.size());
  for (const auto& [key, panels] : s.lru) keys.push_back(key);
  return keys;
}

}  // namespace ptucker::serve
