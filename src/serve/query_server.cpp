#include "serve/query_server.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "core/reconstruct.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ptucker::serve {

namespace {

/// Serve-path registry metrics ("serve.*"), resolved once. Additive to the
/// per-instance ExecutorCounters/CacheCounters: those stay the precise
/// per-server view, these feed the unified process snapshot.
struct ServeMetrics {
  obs::Counter queries;
  obs::Counter submitted;
  obs::Counter completed;
  obs::Counter admission_waits;
  obs::Counter deadline_misses;
  obs::Counter sheds;
  obs::Counter quarantines;
  obs::Gauge queue_depth;
  obs::Gauge peak_queue;
  obs::Histogram query_us;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics* m = [] {
    auto* t = new ServeMetrics;
    t->queries = obs::registry().counter("serve.queries");
    t->submitted = obs::registry().counter("serve.exec.submitted");
    t->completed = obs::registry().counter("serve.exec.completed");
    t->admission_waits = obs::registry().counter("serve.exec.admission_waits");
    t->deadline_misses = obs::registry().counter("serve.deadline_misses");
    t->sheds = obs::registry().counter("serve.exec.sheds");
    t->quarantines = obs::registry().counter("serve.quarantines");
    t->queue_depth = obs::registry().gauge("serve.exec.queue_depth");
    t->peak_queue = obs::registry().gauge("serve.exec.peak_queue");
    t->query_us = obs::registry().histogram("serve.query_us");
    return t;
  }();
  return *m;
}

std::uint64_t us_between(std::chrono::steady_clock::time_point t0,
                         std::chrono::steady_clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());
}

/// stat result condensed exactly as the TimestepReader stale-file check
/// does (see timestep_reader.cpp): identity + size + mtime.
pario::detail::StepFileSig sig_of(const struct stat& st) {
  return {static_cast<std::uint64_t>(st.st_dev),
          static_cast<std::uint64_t>(st.st_ino),
          static_cast<std::uint64_t>(st.st_size),
          static_cast<std::int64_t>(st.st_mtim.tv_sec),
          static_cast<std::int64_t>(st.st_mtim.tv_nsec)};
}

/// True when \p fresh is \p old with zero or more entries appended: every
/// old entry is unchanged (same window, same blob bytes). Anything else —
/// fewer entries, a moved blob, a re-windowed entry — is a rewrite.
bool entries_extend(const std::vector<pario::ArchiveEntry>& old_entries,
                    const std::vector<pario::ArchiveEntry>& fresh) {
  if (fresh.size() < old_entries.size()) return false;
  for (std::size_t e = 0; e < old_entries.size(); ++e) {
    const pario::ArchiveEntry& o = old_entries[e];
    const pario::ArchiveEntry& n = fresh[e];
    if (o.step_first != n.step_first || o.step_count != n.step_count ||
        o.byte_offset != n.byte_offset || o.byte_count != n.byte_count) {
      return false;
    }
  }
  return true;
}

}  // namespace

QueryServer::QueryServer(std::vector<std::string> archive_paths,
                         ServerOptions options)
    : opts_(options),
      cache_(opts_.cache_capacity, opts_.cache_shards) {
  PT_REQUIRE(!archive_paths.empty(), "QueryServer: no archives given");
  PT_REQUIRE(opts_.executor_threads == 0 || opts_.queue_depth >= 1,
             "QueryServer: queue depth < 1");
  archives_.reserve(archive_paths.size());
  for (std::string& path : archive_paths) {
    auto st = std::make_unique<ArchiveState>();
    st->path = std::move(path);
    // Signature before parse: anything that changes the file after this
    // stat is caught by the next revalidation, never missed.
    struct stat fs {};
    PT_REQUIRE(::stat(st->path.c_str(), &fs) == 0,
               "QueryServer: cannot stat " << st->path);
    st->sig = sig_of(fs);
    st->reader = std::make_shared<const pario::ArchiveReader>(st->path);
    archives_.push_back(std::move(st));
  }
  workers_.reserve(opts_.executor_threads);
  for (std::size_t i = 0; i < opts_.executor_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryServer::~QueryServer() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

QueryServer::Snapshot QueryServer::snapshot(std::size_t a) const {
  PT_REQUIRE(a < archives_.size(),
             "serve: archive " << a << " out of range");
  ArchiveState& st = *archives_[a];
  if (!opts_.revalidate) {
    std::lock_guard<std::mutex> lock(st.mutex);
    return {st.reader, st.generation};
  }
  // Stat outside the lock so concurrent queries on the same (unchanged)
  // archive are not serialized behind each other's metadata round-trip.
  struct stat fs {};
  PT_REQUIRE(::stat(st.path.c_str(), &fs) == 0,
             "serve: cannot stat " << st.path);
  const pario::detail::StepFileSig sig = sig_of(fs);
  std::lock_guard<std::mutex> lock(st.mutex);
  if (sig == st.sig) return {st.reader, st.generation};
  // The file changed since the current reader parsed it. Re-open, then
  // decide: a pure append (same inode, grown, every old entry intact) is
  // adopted in place with the cached panels kept — their keys still name
  // the same bytes; anything else is a rewrite, so the generation is
  // bumped and the archive's panels dropped (stale models must never
  // serve). An unchanged-size mtime bump cannot be told apart from an
  // in-place payload rewrite, so it conservatively counts as a rewrite.
  auto fresh = std::make_shared<const pario::ArchiveReader>(st.path);
  PT_REQUIRE(fresh->step_dims() == st.reader->step_dims(),
             "serve: " << st.path
                       << " step dims changed under the server");
  const bool append = sig.dev == st.sig.dev && sig.ino == st.sig.ino &&
                      sig.size > st.sig.size &&
                      entries_extend(st.reader->entries(), fresh->entries());
  if (!append) {
    ++st.generation;
    cache_.erase_archive(a);
    // A rewrite may have replaced the bytes an entry was quarantined for;
    // lift the quarantines and let the next touch re-judge each entry.
    st.poisoned.clear();
  }
  st.reader = std::move(fresh);
  st.sig = sig;
  return {st.reader, st.generation};
}

tensor::Dims QueryServer::step_dims(std::size_t a) const {
  PT_REQUIRE(a < archives_.size(),
             "serve: archive " << a << " out of range");
  // Step dims are an archive invariant (snapshot() rejects a file whose
  // dims changed), so no revalidation round-trip is needed here.
  std::lock_guard<std::mutex> lock(archives_[a]->mutex);
  return archives_[a]->reader->step_dims();
}

std::uint64_t QueryServer::num_steps(std::size_t a) const {
  return snapshot(a).reader->step_end();
}

std::uint64_t QueryServer::generation(std::size_t a) const {
  return snapshot(a).generation;
}

tensor::Tensor QueryServer::evaluate(const Request& req) const {
  return evaluate(req, nullptr);
}

tensor::Tensor QueryServer::evaluate(const Request& req,
                                     QueryTrace* qt) const {
  return evaluate(req, qt, std::chrono::steady_clock::now());
}

tensor::Tensor QueryServer::evaluate(
    const Request& req, QueryTrace* qt,
    std::chrono::steady_clock::time_point anchor) const {
  using clock = std::chrono::steady_clock;
  const clock::time_point t_begin = clock::now();
  obs::Span span_query("serve.query");

  // Deadline checkpoints sit between stages (never mid-read), so an answer
  // is either complete or DeadlineExceeded — no partial results. The anchor
  // is submit() time for executor queries: a query that starved in the
  // queue fails fast instead of occupying a worker past its deadline.
  const std::uint64_t ddl_ms =
      req.deadline_ms != 0 ? req.deadline_ms : opts_.default_deadline_ms;
  const clock::time_point ddl = anchor + std::chrono::milliseconds(ddl_ms);
  const auto check_deadline = [&](const char* stage) {
    if (ddl_ms == 0) return;
    const clock::time_point now = clock::now();
    if (now < ddl) return;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      ++exec_counters_.deadline_misses;
    }
    serve_metrics().deadline_misses.inc();
    std::ostringstream os;
    os << "serve: deadline of " << ddl_ms << " ms exceeded at stage '"
       << stage << "' (" << us_between(anchor, now)
       << " us since submission)";
    throw DeadlineExceeded(os.str());
  };
  check_deadline("admit");

  const Snapshot snap = snapshot(req.archive);
  const pario::ArchiveReader& ar = *snap.reader;
  const tensor::Dims& sdims = ar.step_dims();
  const std::size_t sorder = sdims.size();

  std::vector<util::Range> box = req.box;
  std::vector<std::size_t> hits;
  {
    obs::Span span_route("serve.route");
    if (box.empty()) {
      box.resize(sorder);
      for (std::size_t n = 0; n < sorder; ++n) box[n] = {0, sdims[n]};
    }
    PT_REQUIRE(box.size() == sorder,
               "serve: " << box.size() << " box ranges for a step order of "
                         << sorder);
    for (std::size_t n = 0; n < sorder; ++n) {
      PT_REQUIRE(box[n].lo < box[n].hi && box[n].hi <= sdims[n],
                 "serve: box range [" << box[n].lo << ", " << box[n].hi
                                      << ") out of bounds in mode " << n
                                      << " (extent " << sdims[n] << ")");
    }
    // covering validates the step range (non-empty, within the archive).
    hits = ar.covering(req.step_lo, req.step_hi);
  }
  if (qt != nullptr) {
    qt->entries_touched = hits.size();
    qt->route_us = us_between(t_begin, clock::now());
  }

  tensor::Dims out_dims(sorder + 1);
  for (std::size_t n = 0; n < sorder; ++n) out_dims[n] = box[n].size();
  out_dims[sorder] = req.step_hi - req.step_lo;
  tensor::Tensor out(out_dims);
  std::size_t slab = 1;  // elements of one time slice of the answer
  for (std::size_t n = 0; n < sorder; ++n) slab *= box[n].size();

  for (std::size_t e : hits) {
    obs::Span span_entry("serve.entry", static_cast<std::int64_t>(e));
    check_deadline("entry");
    {
      // Quarantine gate: an entry whose load already failed poisons only
      // itself — queries touching it fail fast with the original failure
      // named, and every other entry keeps serving.
      ArchiveState& ast = *archives_[req.archive];
      std::lock_guard<std::mutex> lock(ast.mutex);
      const auto poison = ast.poisoned.find(e);
      if (poison != ast.poisoned.end()) {
        throw QuarantinedError("serve: entry " + std::to_string(e) + " of " +
                               ast.path +
                               " is quarantined after a failed load: " +
                               poison->second);
      }
    }
    const PanelKey key{req.archive, snap.generation, e};
    bool missed = false;
    std::shared_ptr<const EntryPanels> panels;
    try {
      panels = cache_.get_or_load(
          key, [&]() -> std::shared_ptr<const EntryPanels> {
            obs::Span span_load("serve.load", static_cast<std::int64_t>(e));
            const clock::time_point t_load = clock::now();
            missed = true;
            pario::LocalModelData md = ar.read_entry_local(e);
            auto p = std::make_shared<EntryPanels>();
            p->step_first = ar.entry(e).step_first;
            p->step_count = ar.entry(e).step_count;
            p->core = std::move(md.core);
            p->factors = std::move(md.factors);
            p->has_stats = md.has_stats;
            p->stats = std::move(md.stats);
            if (qt != nullptr) {
              qt->bytes_loaded += ar.entry(e).byte_count;
              qt->load_us += us_between(t_load, clock::now());
            }
            return p;
          });
    } catch (const Error& err) {
      // The entry's bytes are bad (checksum mismatch, I/O giveup,
      // malformed blob): quarantine it so later queries fail fast instead
      // of re-reading known-bad data. Deadline misses never land here —
      // check_deadline only fires outside the loader.
      ArchiveState& ast = *archives_[req.archive];
      bool fresh = false;
      {
        std::lock_guard<std::mutex> lock(ast.mutex);
        fresh = ast.poisoned.emplace(e, err.what()).second;
      }
      if (fresh) serve_metrics().quarantines.inc();
      throw;
    }
    check_deadline("load");
    if (qt != nullptr) {
      // A racing thread's insert still counts as this query's miss: the
      // loader ran (or didn't) on this thread, which is what load_us times.
      if (missed) {
        ++qt->cache_misses;
      } else {
        ++qt->cache_hits;
      }
    }
    // This entry's share of the answer: the requested box, restricted in
    // time to the overlap of [step_lo, step_hi) with the entry's window.
    const std::uint64_t glo = std::max(req.step_lo, panels->step_first);
    const std::uint64_t ghi = std::min(
        req.step_hi, panels->step_first + panels->step_count);
    std::vector<util::Range> ranges = box;
    ranges.push_back({static_cast<std::size_t>(glo - panels->step_first),
                      static_cast<std::size_t>(ghi - panels->step_first)});
    const clock::time_point t_recon = clock::now();
    tensor::Tensor part;
    {
      obs::Span span_recon("serve.reconstruct",
                           static_cast<std::int64_t>(e));
      part = core::reconstruct_range_local(
          panels->core,
          std::span<const tensor::Matrix>(panels->factors), ranges);
    }
    const clock::time_point t_denorm = clock::now();
    if (qt != nullptr) qt->reconstruct_us += us_between(t_recon, t_denorm);
    if (panels->has_stats && opts_.denormalize) {
      obs::Span span_denorm("serve.denormalize",
                            static_cast<std::int64_t>(e));
      PT_REQUIRE(panels->stats.species_mode >= 0 &&
                     panels->stats.species_mode < static_cast<int>(sorder),
               "serve: archived stats name a non-spatial species mode");
      data::denormalize_species_range_seq(
          part, panels->stats,
          box[static_cast<std::size_t>(panels->stats.species_mode)].lo);
    }
    const clock::time_point t_stitch = clock::now();
    if (qt != nullptr) qt->denormalize_us += us_between(t_denorm, t_stitch);
    {
      obs::Span span_stitch("serve.stitch", static_cast<std::int64_t>(e));
      // Stitch along time (last, slowest mode): this entry's share is one
      // contiguous slab of the answer — a pure memcpy, as
      // reconstruct_steps.
      PT_CHECK(part.size() == slab * (ghi - glo),
               "serve: stitch slab size mismatch");
      std::memcpy(out.data() + (glo - req.step_lo) * slab, part.data(),
                  part.size() * sizeof(double));
    }
    if (qt != nullptr) qt->stitch_us += us_between(t_stitch, clock::now());
  }
  const std::uint64_t total_us = us_between(t_begin, clock::now());
  if (qt != nullptr) qt->total_us = total_us;
  serve_metrics().queries.inc();
  serve_metrics().query_us.record(total_us);
  return out;
}

tensor::Tensor QueryServer::subtensor(const Request& req) const {
  return evaluate(req);
}

tensor::Tensor QueryServer::subtensor_traced(const Request& req,
                                             QueryTrace& trace) const {
  trace = QueryTrace{};
  return evaluate(req, &trace);
}

std::future<tensor::Tensor> QueryServer::submit(Request req) const {
  std::promise<tensor::Tensor> promise;
  std::future<tensor::Tensor> fut = promise.get_future();
  if (workers_.empty()) {
    // executor_threads == 0: evaluate on the submitting thread; the
    // returned future is already satisfied.
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      ++exec_counters_.submitted;
    }
    serve_metrics().submitted.inc();
    try {
      promise.set_value(evaluate(req));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    std::lock_guard<std::mutex> lock(queue_mutex_);
    ++exec_counters_.completed;
    serve_metrics().completed.inc();
    return fut;
  }
  std::unique_lock<std::mutex> lock(queue_mutex_);
  PT_REQUIRE(!stopping_, "serve: submit on a stopped server");
  if (queue_.size() >= opts_.queue_depth) {
    if (opts_.shed_on_overload) {
      // Load shedding: reject now so the client can back off or retry
      // elsewhere — overload degrades to an explicit error, not latency.
      ++exec_counters_.sheds;
      serve_metrics().sheds.inc();
      throw Overloaded(
          "serve: admission queue full (" +
          std::to_string(opts_.queue_depth) +
          " queued), query shed — back off and retry, raise queue_depth, "
          "or disable shed_on_overload");
    }
    // Admission control: a full queue blocks the client instead of
    // growing the queue — overload degrades to latency, not memory.
    ++exec_counters_.admission_waits;
    serve_metrics().admission_waits.inc();
    obs::Span span_wait("serve.admission_wait");
    queue_not_full_.wait(lock, [&] {
      return queue_.size() < opts_.queue_depth || stopping_;
    });
    PT_REQUIRE(!stopping_, "serve: submit on a stopped server");
  }
  queue_.push_back(Job{std::move(req), std::move(promise),
                       std::chrono::steady_clock::now()});
  ++exec_counters_.submitted;
  exec_counters_.peak_queue =
      std::max(exec_counters_.peak_queue, queue_.size());
  serve_metrics().submitted.inc();
  serve_metrics().queue_depth.set(
      static_cast<std::int64_t>(queue_.size()));
  serve_metrics().peak_queue.record_peak(
      static_cast<std::int64_t>(queue_.size()));
  lock.unlock();
  queue_not_empty_.notify_one();
  return fut;
}

void QueryServer::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(lock,
                            [&] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping, and the queue has drained
      job = std::move(queue_.front());
      queue_.pop_front();
      serve_metrics().queue_depth.set(
          static_cast<std::int64_t>(queue_.size()));
    }
    queue_not_full_.notify_one();
    // Count completion BEFORE resolving the future, so a client that has
    // seen every future resolve also sees completed == submitted.
    try {
      tensor::Tensor result = evaluate(job.req, nullptr, job.enqueued);
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++exec_counters_.completed;
      }
      serve_metrics().completed.inc();
      job.promise.set_value(std::move(result));
    } catch (...) {
      // A malformed request (bad box, uncovered range) surfaces on the
      // client's future; the worker keeps serving.
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        ++exec_counters_.completed;
      }
      serve_metrics().completed.inc();
      job.promise.set_exception(std::current_exception());
    }
  }
}

double QueryServer::element(std::size_t a, std::uint64_t step,
                            std::span<const std::size_t> idx) const {
  const tensor::Dims sdims = step_dims(a);
  PT_REQUIRE(idx.size() == sdims.size(),
             "serve: element index arity " << idx.size()
                                           << " != step order "
                                           << sdims.size());
  Request req;
  req.archive = a;
  req.step_lo = step;
  req.step_hi = step + 1;
  req.box.resize(sdims.size());
  for (std::size_t n = 0; n < sdims.size(); ++n) {
    PT_REQUIRE(idx[n] < sdims[n],
               "serve: element index out of bounds in mode " << n);
    req.box[n] = {idx[n], idx[n] + 1};
  }
  return evaluate(req)[0];
}

std::vector<double> QueryServer::fiber(
    std::size_t a, std::uint64_t step, int mode,
    std::span<const std::size_t> idx) const {
  const tensor::Dims sdims = step_dims(a);
  const int sorder = static_cast<int>(sdims.size());
  PT_REQUIRE(mode >= 0 && mode <= sorder,
             "serve: fiber mode " << mode << " out of range (time mode is "
                                  << sorder << ")");
  PT_REQUIRE(idx.size() == sdims.size(),
             "serve: fiber index arity " << idx.size() << " != step order "
                                         << sdims.size());
  Request req;
  req.archive = a;
  req.box.resize(sdims.size());
  for (int n = 0; n < sorder; ++n) {
    const auto un = static_cast<std::size_t>(n);
    if (n == mode) {
      req.box[un] = {0, sdims[un]};
    } else {
      PT_REQUIRE(idx[un] < sdims[un],
                 "serve: fiber index out of bounds in mode " << n);
      req.box[un] = {idx[un], idx[un] + 1};
    }
  }
  if (mode == sorder) {
    // Time fiber: all archived steps, spanning window boundaries.
    req.step_lo = 0;
    req.step_hi = num_steps(a);
  } else {
    req.step_lo = step;
    req.step_hi = step + 1;
  }
  const tensor::Tensor t = evaluate(req);
  return {t.data(), t.data() + t.size()};
}

tensor::Tensor QueryServer::time_range(std::size_t a, std::uint64_t lo,
                                       std::uint64_t hi) const {
  Request req;
  req.archive = a;
  req.step_lo = lo;
  req.step_hi = hi;
  return evaluate(req);
}

ExecutorCounters QueryServer::executor_counters() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return exec_counters_;
}

std::size_t QueryServer::queue_size() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::size_t QueryServer::quarantined_entries() const {
  std::size_t n = 0;
  for (const std::unique_ptr<ArchiveState>& st : archives_) {
    std::lock_guard<std::mutex> lock(st->mutex);
    n += st->poisoned.size();
  }
  return n;
}

std::string QueryServer::stats_report() const {
  const CacheCounters cc = cache_.counters();
  const ExecutorCounters ec = executor_counters();
  std::ostringstream os;
  os << "server.archives " << archives_.size() << "\n"
     << "server.cache.resident " << cache_.size() << "\n"
     << "server.cache.capacity " << cache_.capacity() << "\n"
     << "server.cache.lookups " << cc.lookups << "\n"
     << "server.cache.hits " << cc.hits << "\n"
     << "server.cache.misses " << cc.misses << "\n"
     << "server.cache.evictions " << cc.evictions << "\n"
     << "server.cache.invalidations " << cc.invalidations << "\n"
     << "server.exec.submitted " << ec.submitted << "\n"
     << "server.exec.completed " << ec.completed << "\n"
     << "server.exec.admission_waits " << ec.admission_waits << "\n"
     << "server.exec.peak_queue " << ec.peak_queue << "\n"
     << "server.exec.queue_size " << queue_size() << "\n"
     << "server.exec.sheds " << ec.sheds << "\n"
     << "server.deadline_misses " << ec.deadline_misses << "\n"
     << "server.quarantined " << quarantined_entries() << "\n"
     << obs::registry().snapshot().to_text();
  return os.str();
}

std::string QueryServer::stats_json() const {
  const CacheCounters cc = cache_.counters();
  const ExecutorCounters ec = executor_counters();
  std::ostringstream os;
  os << "{\"server\":{\"archives\":" << archives_.size()
     << ",\"cache\":{\"resident\":" << cache_.size()
     << ",\"capacity\":" << cache_.capacity()
     << ",\"lookups\":" << cc.lookups << ",\"hits\":" << cc.hits
     << ",\"misses\":" << cc.misses << ",\"evictions\":" << cc.evictions
     << ",\"invalidations\":" << cc.invalidations
     << "},\"executor\":{\"submitted\":" << ec.submitted
     << ",\"completed\":" << ec.completed
     << ",\"admission_waits\":" << ec.admission_waits
     << ",\"peak_queue\":" << ec.peak_queue
     << ",\"queue_size\":" << queue_size()
     << ",\"sheds\":" << ec.sheds
     << "},\"deadline_misses\":" << ec.deadline_misses
     << ",\"quarantined\":" << quarantined_entries()
     << "},\"registry\":" << obs::registry().snapshot().to_json() << "}";
  return os.str();
}

}  // namespace ptucker::serve
