/// \file ablate_gram_symmetry.cpp
/// \brief Ablation of the Gram symmetry optimization (paper Sec. V-C and
/// the Sec. IX future-work item): full-storage syrk (the paper's default,
/// 2 n^2 k flops) vs the symmetry-exploiting kernel (n(n+1)k flops) on the
/// Pn = 1 path where the paper says symmetry is fully exploitable.
///
/// Historically the symmetric variant *lost* wall-clock despite halving
/// the flops: it decomposed into NB=32 gemm calls that re-packed the same
/// panels and fed the microkernel slivers. The packed syrk_lower packs both
/// operand panels once per KC slab and skips strictly-upper micro tiles, so
/// the flop saving now shows up in the measured time — GramAlgo::Auto
/// prefers it on short rings.
///
/// --smoke shrinks the sizes for CI and *asserts* bit-identical Gram
/// results between the two algorithms, so kernel regressions fail the job.

#include "bench_common.hpp"
#include "blas/blas.hpp"
#include "data/synthetic.hpp"
#include "dist/gram.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("ablate_gram_symmetry",
                       "full-storage vs symmetry-exploiting Gram");
  args.add_int("dim", 96, "tensor extent per mode (3-way)");
  args.add_int("ranks", 8, "number of (thread) ranks (1x8 split: Pn=1)");
  args.add_flag("smoke", "small sizes + bit-identity assertions (CI)");
  args.parse(argc, argv);

  const bool smoke = args.get_flag("smoke");
  const std::size_t dim =
      smoke ? 48 : static_cast<std::size_t>(args.get_int("dim"));
  const int p = smoke ? 2 : static_cast<int>(args.get_int("ranks"));
  const int reps = smoke ? 1 : 3;
  const tensor::Dims dims{dim, dim, dim};
  const std::vector<int> shape =
      smoke ? std::vector<int>{1, 2, 1} : std::vector<int>{1, 2, 4};
  // P0 = 1: the mode-0 Gram is communication-free.

  bench::header("Ablation: Gram symmetry",
                "mode-0 Gram of " + bench::dims_name(dims) + " with P0 = 1");

  util::Table table({"kernel", "time(s)", "flops", "speedup"});
  double t_full = 0.0;
  std::vector<double> full_cols;  // rank-0 block column, smoke comparison
  for (auto algo : {dist::GramAlgo::FullStorage,
                    dist::GramAlgo::ExploitSymmetry}) {
    double elapsed = 0.0;
    std::uint64_t flops = 0;
    mps::run(p, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x = data::make_low_rank(
          grid, dims, tensor::Dims{8, 8, 8}, 5, 0.01);
      const auto warm = dist::gram(x, 0, algo);  // warm-up (caches, packing)
      if (comm.rank() == 0) {
        if (algo == dist::GramAlgo::FullStorage) {
          full_cols.assign(warm.cols.data(),
                           warm.cols.data() + warm.cols.size());
        } else if (smoke) {
          PT_CHECK(warm.cols.size() == full_cols.size(),
                   "gram block-column size mismatch");
          for (std::size_t i = 0; i < full_cols.size(); ++i) {
            PT_CHECK(warm.cols.data()[i] == full_cols[i],
                     "symmetric Gram diverged from full storage at element "
                         << i);
          }
        }
      }
      comm.barrier();
      if (comm.rank() == 0) blas::reset_flop_count();
      comm.barrier();
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < reps; ++rep) (void)dist::gram(x, 0, algo);
      });
      if (comm.rank() == 0) {
        elapsed = t / reps;
        flops = blas::flop_count() / static_cast<std::uint64_t>(reps);
      }
    });
    if (algo == dist::GramAlgo::FullStorage) t_full = elapsed;
    table.add_row({algo == dist::GramAlgo::FullStorage ? "full-storage syrk"
                                                       : "symmetric syrk",
                   util::Table::fmt(elapsed, 4),
                   util::Table::fmt_sci(static_cast<double>(flops), 2),
                   util::Table::fmt(t_full / elapsed, 2)});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Sec. V-C: 'up to a factor of two could be saved by exploiting "
      "symmetry of S'. The packed syrk_lower realizes the saving at full "
      "microkernel throughput (the old NB-blocked decomposition did not); "
      "flop counts use the symmetric model n(n+1)k so GF/s columns are "
      "comparable.");
  return 0;
}
