/// \file ablate_gram_symmetry.cpp
/// \brief Ablation of the Gram symmetry optimization (paper Sec. V-C and
/// the Sec. IX future-work item): full-storage syrk (the paper's default,
/// 2 n^2 k flops) vs the symmetry-exploiting kernel (~n^2 k flops) on the
/// Pn = 1 path where the paper says symmetry is fully exploitable.

#include "bench_common.hpp"
#include "blas/blas.hpp"
#include "data/synthetic.hpp"
#include "dist/gram.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("ablate_gram_symmetry",
                       "full-storage vs symmetry-exploiting Gram");
  args.add_int("dim", 96, "tensor extent per mode (3-way)");
  args.add_int("ranks", 8, "number of (thread) ranks (1x8 split: Pn=1)");
  args.parse(argc, argv);

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const int p = static_cast<int>(args.get_int("ranks"));
  const tensor::Dims dims{dim, dim, dim};
  const std::vector<int> shape{1, 2, 4};  // P0 = 1: mode-0 Gram is comm-free

  bench::header("Ablation: Gram symmetry",
                "mode-0 Gram of " + bench::dims_name(dims) + " with P0 = 1");

  util::Table table({"kernel", "time(s)", "flops", "speedup"});
  double t_full = 0.0;
  for (auto algo : {dist::GramAlgo::FullStorage,
                    dist::GramAlgo::ExploitSymmetry}) {
    double elapsed = 0.0;
    std::uint64_t flops = 0;
    mps::run(p, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x = data::make_low_rank(
          grid, dims, tensor::Dims{8, 8, 8}, 5, 0.01);
      (void)dist::gram(x, 0, algo);  // warm-up (caches, packing buffers)
      comm.barrier();
      if (comm.rank() == 0) blas::reset_flop_count();
      comm.barrier();
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < 3; ++rep) (void)dist::gram(x, 0, algo);
      });
      if (comm.rank() == 0) {
        elapsed = t / 3.0;
        flops = blas::flop_count() / 3;
      }
    });
    if (algo == dist::GramAlgo::FullStorage) t_full = elapsed;
    table.add_row({algo == dist::GramAlgo::FullStorage ? "full-storage syrk"
                                                       : "symmetric syrk",
                   util::Table::fmt(elapsed, 4),
                   util::Table::fmt_sci(static_cast<double>(flops), 2),
                   util::Table::fmt(t_full / elapsed, 2)});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Sec. V-C: 'up to a factor of two could be saved by exploiting "
      "symmetry of S' — the symmetric kernel halves the flops; wall-clock "
      "gain depends on the gemm efficiency of the smaller panels.");
  return 0;
}
