/// \file fig8a_grid_sweep.cpp
/// \brief Reproduces Fig. 8a: relative ST-HOSVD run time across processor
/// grid configurations for a 4-way cubical tensor compressed 4x per mode
/// (paper: 384^4 -> 96^4 on 384 cores; here scaled to thread-ranks on one
/// node). Each bar is broken down into Gram / Evecs / TTM time.

#include <algorithm>

#include "bench_common.hpp"
#include "core/st_hosvd.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("fig8a_grid_sweep",
                       "ST-HOSVD time across processor grids");
  args.add_int("dim", 48, "tensor extent per mode (4-way)");
  args.add_int("reduced", 12, "target rank per mode (dim/4 as in the paper)");
  args.add_int("ranks", 16, "number of (thread) ranks");
  args.add_int("max_grids", 8, "max number of grids to sweep");
  args.parse(argc, argv);

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t red = static_cast<std::size_t>(args.get_int("reduced"));
  const int p = static_cast<int>(args.get_int("ranks"));
  const tensor::Dims dims{dim, dim, dim, dim};
  const tensor::Dims ranks{red, red, red, red};

  bench::header("Fig. 8a", "processor-grid sweep, " + bench::dims_name(dims) +
                               " -> " + bench::dims_name(ranks) + " on " +
                               std::to_string(p) + " ranks");

  // All 4-way factorizations of P with no extent exceeding the dims,
  // deduplicated and capped (the paper also omits grids > 5x the optimum).
  auto shapes = mps::all_grid_shapes(p, 4);
  shapes.erase(std::remove_if(shapes.begin(), shapes.end(),
                              [&](const std::vector<int>& s) {
                                for (std::size_t n = 0; n < 4; ++n) {
                                  if (static_cast<std::size_t>(s[n]) > dims[n])
                                    return true;
                                }
                                return false;
                              }),
               shapes.end());
  // The paper's figure contrasts good grids (P1 = 1) with bad ones
  // (P1 > 1, omitting grids worse than 5x the optimum). Keep a diverse
  // sweep: half the budget for P1 = 1 shapes (squattest first), half for
  // increasing P1, preferring balanced remainders.
  std::stable_sort(shapes.begin(), shapes.end(),
                   [](const auto& a, const auto& b) {
                     const int ma = *std::max_element(a.begin(), a.end());
                     const int mb = *std::max_element(b.begin(), b.end());
                     return std::tie(a[0], ma) < std::tie(b[0], mb);
                   });
  const std::size_t budget =
      static_cast<std::size_t>(args.get_int("max_grids"));
  std::vector<std::vector<int>> sweep;
  for (const auto& s : shapes) {  // P1 == 1 half
    if (sweep.size() >= budget / 2) break;
    if (s[0] == 1) sweep.push_back(s);
  }
  int last_p1 = 1;
  for (const auto& s : shapes) {  // P1 > 1 half, one per distinct P1
    if (sweep.size() >= budget) break;
    if (s[0] > last_p1) {
      sweep.push_back(s);
      last_p1 = s[0];
    }
  }

  struct Result {
    std::vector<int> shape;
    double total = 0.0;
    double gram = 0.0;
    double evecs = 0.0;
    double ttm = 0.0;
  };
  std::vector<Result> results;

  for (const auto& shape : sweep) {
    Result res;
    res.shape = shape;
    mps::run(p, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x =
          data::make_low_rank(grid, dims, ranks, 5, 0.01);
      util::KernelTimers timers;
      core::SthosvdOptions opts;
      opts.fixed_ranks = ranks;
      opts.timers = &timers;
      const double t = bench::time_region(comm, [&] {
        (void)core::st_hosvd(x, opts);
      });
      if (comm.rank() == 0) {
        res.total = t;
        res.gram = timers.total("Gram");
        res.evecs = timers.total("Evecs");
        res.ttm = timers.total("TTM");
      }
    });
    results.push_back(res);
  }

  const double best = std::min_element(results.begin(), results.end(),
                                       [](const Result& a, const Result& b) {
                                         return a.total < b.total;
                                       })
                          ->total;
  util::Table table({"grid", "time(s)", "relative", "Gram(s)", "Evecs(s)",
                     "TTM(s)"});
  for (const auto& r : results) {
    table.add_row({bench::shape_name(r.shape), util::Table::fmt(r.total, 3),
                   util::Table::fmt(r.total / best, 2),
                   util::Table::fmt(r.gram, 3), util::Table::fmt(r.evecs, 3),
                   util::Table::fmt(r.ttm, 3)});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Fig. 8a: best grids have P1 = 1 (no communication in the dominant "
      "first Gram/TTM); bad grids are several times slower; Evecs is "
      "negligible throughout.");
  return 0;
}
