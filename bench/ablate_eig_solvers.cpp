/// \file ablate_eig_solvers.cpp
/// \brief Ablation of the factor-matrix solver (paper Sec. II-B and IX):
/// Gram + tridiagonal QL (the dsyevx stand-in), Gram + cyclic Jacobi, and
/// the Gram-free SVD-via-QR route the paper proposes for accuracy near
/// sqrt(machine eps) — "at roughly twice the cost of our current approach".

#include <cmath>

#include "bench_common.hpp"
#include "blas/blas.hpp"
#include "core/seq/seq_tucker.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "dist/tsqr.hpp"
#include "lapack/lapack.hpp"
#include "tensor/local_kernels.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("ablate_eig_solvers",
                       "eigensolver / SVD route comparison");
  args.add_int("dim", 64, "mode-0 extent (Gram size)");
  args.add_int("cols", 4096, "unfolding column count");
  args.parse(argc, argv);

  const std::size_t n = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t cols = static_cast<std::size_t>(args.get_int("cols"));

  bench::header("Ablation: factor solvers",
                "leading left singular basis of a " + std::to_string(n) +
                    " x " + std::to_string(cols) + " unfolding");

  // A wide unfolding with geometrically decaying singular values spanning
  // ~10 decades (the regime where Gram squaring loses the tail).
  const tensor::Matrix u = tensor::Matrix::random_orthonormal(n, n, 3);
  const tensor::Matrix v = tensor::Matrix::random_orthonormal(cols, n, 4);
  std::vector<double> sigma(n);
  for (std::size_t i = 0; i < n; ++i) {
    sigma[i] = std::pow(10.0, -10.0 * static_cast<double>(i) /
                                  static_cast<double>(n - 1));
  }
  tensor::Matrix us(n, n);
  blas::copy(n * n, u.data(), us.data());
  for (std::size_t j = 0; j < n; ++j) blas::scal(n, sigma[j], us.col(j));
  const tensor::Matrix y = tensor::Matrix::multiply(us, false, v, true);

  util::Table table({"solver", "time(s)", "max rel sigma err (top half)",
                     "tail sigma rel err"});
  auto report = [&](const std::string& name, double seconds,
                    const std::vector<double>& got) {
    double top_err = 0.0;
    for (std::size_t i = 0; i < n / 2; ++i) {
      top_err = std::max(top_err, std::fabs(got[i] - sigma[i]) / sigma[i]);
    }
    const std::size_t tail = n - 2;
    const double tail_err =
        std::fabs(got[tail] - sigma[tail]) / sigma[tail];
    table.add_row({name, util::Table::fmt(seconds, 4),
                   util::Table::fmt_sci(top_err, 1),
                   util::Table::fmt_sci(tail_err, 1)});
  };

  {
    util::Timer t;
    tensor::Matrix s(n, n);
    blas::syrk_full(blas::Trans::No, n, cols, 1.0, y.data(), n, 0.0, s.data(),
                    n);
    const la::SymEig eig = la::eig_sym(s.data(), n, n);
    std::vector<double> got(n);
    for (std::size_t i = 0; i < n; ++i) {
      got[i] = std::sqrt(std::max(0.0, eig.values[i]));
    }
    report("gram + tridiagonal QL", t.seconds(), got);
  }
  {
    util::Timer t;
    tensor::Matrix s(n, n);
    blas::syrk_full(blas::Trans::No, n, cols, 1.0, y.data(), n, 0.0, s.data(),
                    n);
    const la::SymEig eig = la::eig_sym_jacobi(s.data(), n, n);
    std::vector<double> got(n);
    for (std::size_t i = 0; i < n; ++i) {
      got[i] = std::sqrt(std::max(0.0, eig.values[i]));
    }
    report("gram + cyclic Jacobi", t.seconds(), got);
  }
  {
    util::Timer t;
    const la::LeftSvd svd = la::left_svd_via_qr(y.data(), n, cols, n);
    report("SVD via QR (Sec. IX)", t.seconds(), svd.singular_values);
  }
  {
    // Distributed variant: the same matrix viewed as an n x c1 x c2 tensor
    // on a 1 x 2 x 2 grid, factored with the communication-avoiding TSQR.
    const std::size_t c1 = 64;
    const std::size_t c2 = cols / c1;
    double seconds = 0.0;
    std::vector<double> got(n);
    mps::run(4, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, {1, 2, 2});
      dist::DistTensor x(grid, tensor::Dims{n, c1, c2});
      x.fill_global([&](std::span<const std::size_t> idx) {
        return y(idx[0], idx[1] + c1 * idx[2]);
      });
      comm.barrier();
      util::Timer t;
      const dist::FactorResult f = dist::factor_via_tsqr(
          x, 0, dist::RankSelection::fixed_rank(n));
      comm.barrier();
      if (comm.rank() == 0) {
        seconds = t.seconds();
        for (std::size_t i = 0; i < n; ++i) {
          got[i] = std::sqrt(std::max(0.0, f.eigenvalues[i]));
        }
      }
    });
    report("distributed TSQR (4 ranks)", seconds, got);
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Sec. IX: the Gram route squares the condition number, losing "
      "singular values below sqrt(machine eps) ~ 1e-8 of the largest; the "
      "QR route resolves the deep tail at roughly twice the cost.");
  return 0;
}
