#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the figure/table reproduction benches.
///
/// Every bench prints (a) a header identifying the paper artifact it
/// regenerates, (b) the measured rows/series, and (c) a `paper:` line
/// quoting what the paper reports, so EXPERIMENTS.md can be assembled
/// directly from bench output.

#include <cstdio>
#include <string>
#include <vector>

#include "mps/runtime.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ptucker::bench {

inline void header(const std::string& artifact, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

inline void paper_note(const std::string& note) {
  std::printf("paper: %s\n\n", note.c_str());
}

inline std::string shape_name(const std::vector<int>& shape) {
  std::string s;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += "x";
    s += std::to_string(shape[i]);
  }
  return s;
}

inline std::string dims_name(const std::vector<std::size_t>& dims) {
  std::string s;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) s += "x";
    s += std::to_string(dims[i]);
  }
  return s;
}

/// Time a parallel body: barrier, run, barrier; returns the rank-0 measured
/// wall time (all ranks are synchronized around the region).
template <class Body>
double time_region(mps::Comm& comm, Body&& body) {
  comm.barrier();
  util::Timer timer;
  body();
  comm.barrier();
  return timer.seconds();
}

/// Estimate this machine's per-core GEMM throughput (flops/s) for the
/// %-of-peak columns (paper reports % of the Ivy Bridge 19.2 GFLOPS core
/// peak; we report % of measured single-core GEMM peak instead).
double measure_core_gemm_flops();

}  // namespace ptucker::bench
