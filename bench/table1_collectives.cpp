/// \file table1_collectives.cpp
/// \brief Reproduces Tab. I: communication costs of the collectives in the
/// alpha-beta-gamma model. For each collective we measure the per-rank
/// injected messages and words with the runtime counters and print them next
/// to the paper's model terms and our implementation's exact formulas.

#include "bench_common.hpp"
#include "costmodel/collective_model.hpp"
#include "mps/collectives.hpp"
#include "util/cli.hpp"

using namespace ptucker;

namespace {

struct Row {
  std::string name;
  mps::OpKind op;
  costmodel::CommVolume paper;
  costmodel::CommVolume impl;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("table1_collectives",
                       "measured collective costs vs the Tab. I model");
  args.add_int("ranks", 8, "communicator size P");
  args.add_int("words", 4096, "payload size W in 8-byte words");
  args.parse(argc, argv);

  const int p = static_cast<int>(args.get_int("ranks"));
  const std::size_t w = static_cast<std::size_t>(args.get_int("words"));
  const double dw = static_cast<double>(w);

  bench::header("Tab. I", "collective communication costs (alpha-beta model)");
  std::printf("P = %d ranks, W = %zu words (8-byte)\n\n", p, w);

  mps::Runtime rt(p);

  // --- send/receive -----------------------------------------------------------
  rt.reset_stats();
  rt.run([&](mps::Comm& comm) {
    std::vector<double> buf(w, 1.0);
    if (comm.rank() == 0) {
      comm.send(std::span<const double>(buf), 1, 0);
    } else if (comm.rank() == 1) {
      comm.recv(std::span<double>(buf), 0, 0);
    }
  });
  const auto send_stats = rt.rank_stats(0);

  // --- collectives ------------------------------------------------------------
  auto run_collective = [&](mps::OpKind kind) {
    rt.reset_stats();
    rt.run([&](mps::Comm& comm) {
      std::vector<double> buf(w, 1.0 + comm.rank());
      switch (kind) {
        case mps::OpKind::AllGather: {
          std::vector<double> all(w * static_cast<std::size_t>(p));
          const std::vector<double> mine(w / static_cast<std::size_t>(p) +
                                             (comm.rank() <
                                                      static_cast<int>(w %
                                                                       static_cast<std::size_t>(p))
                                                  ? 1
                                                  : 0),
                                         1.0);
          // Use equal blocks of w/p for a clean comparison (truncate W).
          const std::size_t block = w / static_cast<std::size_t>(p);
          std::vector<double> mine_eq(block, 1.0);
          std::vector<double> all_eq(block * static_cast<std::size_t>(p));
          mps::allgather(comm, std::span<const double>(mine_eq),
                         std::span<double>(all_eq));
          break;
        }
        case mps::OpKind::Reduce: {
          std::vector<double> out(comm.rank() == 0 ? w : 0);
          mps::reduce(comm, std::span<const double>(buf),
                      std::span<double>(out), 0);
          break;
        }
        case mps::OpKind::AllReduce:
          mps::allreduce(comm, std::span<double>(buf));
          break;
        default:
          break;
      }
    });
    // Report the max over ranks (critical path proxy).
    return rt.max_stats();
  };

  const auto ag = run_collective(mps::OpKind::AllGather);
  const auto red = run_collective(mps::OpKind::Reduce);
  const auto ar = run_collective(mps::OpKind::AllReduce);

  util::Table table({"collective", "measured msgs", "measured words",
                     "paper msgs", "paper words", "impl msgs", "impl words"});
  auto add = [&](const std::string& name, const mps::CommStats& stats,
                 mps::OpKind op, costmodel::CommVolume paper,
                 costmodel::CommVolume impl) {
    table.add_row({name,
                   util::Table::fmt_int(static_cast<long long>(
                       stats.op_message_count(op))),
                   util::Table::fmt(stats.op_words(op), 0),
                   util::Table::fmt(paper.messages, 0),
                   util::Table::fmt(paper.words, 0),
                   util::Table::fmt(impl.messages, 0),
                   util::Table::fmt(impl.words, 0)});
  };
  add("send/recv", send_stats, mps::OpKind::P2P, costmodel::paper_send(dw),
      costmodel::paper_send(dw));
  const double w_eq = static_cast<double>(w / static_cast<std::size_t>(p)) *
                      static_cast<double>(p);
  add("all-gather", ag, mps::OpKind::AllGather,
      costmodel::paper_allgather(p, w_eq),
      costmodel::impl_allgather(p, w_eq));
  add("reduce", red, mps::OpKind::Reduce, costmodel::paper_reduce(p, dw),
      costmodel::impl_reduce(p, dw));
  add("all-reduce", ar, mps::OpKind::AllReduce,
      costmodel::paper_allreduce(p, dw), costmodel::impl_allreduce(p, dw));
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nnotes: paper formulas assume bandwidth-optimal collectives with\n"
      "log(P) latency; our rings pay (P-1) messages for exactly-(P-1)/P*W\n"
      "words, and the binomial reduce injects at most W words per rank.\n");
  bench::paper_note(
      "Tab. I: send a+bW; all-gather a logP + b (P-1)/P W; reduce a logP + "
      "(b+g)(P-1)/P W; all-reduce 2a logP + (2b+g)(P-1)/P W.");
  return 0;
}
