#include "bench_common.hpp"

#include <vector>

#include "blas/blas.hpp"

namespace ptucker::bench {

double measure_core_gemm_flops() {
  const std::size_t n = 384;
  std::vector<double> a(n * n, 1.5);
  std::vector<double> b(n * n, -0.5);
  std::vector<double> c(n * n, 0.0);
  // Warm-up.
  blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, a.data(), n,
             b.data(), n, 0.0, c.data(), n);
  util::Timer timer;
  const int reps = 3;
  for (int r = 0; r < reps; ++r) {
    blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, a.data(), n,
               b.data(), n, 0.0, c.data(), n);
  }
  const double seconds = timer.seconds();
  return 2.0 * static_cast<double>(n) * n * n * reps / seconds;
}

}  // namespace ptucker::bench
