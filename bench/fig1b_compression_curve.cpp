/// \file fig1b_compression_curve.cpp
/// \brief Reproduces Fig. 1b: compression ratio vs normalized RMS error for
/// the SP dataset (paper: 550 GB, ratios 5 -> 5,580 across eps 1e-6..1e-2).
///
/// We run the SP surrogate at reduced scale; the reproduction target is the
/// *shape*: ratios spanning several orders of magnitude as the error budget
/// loosens, with steep gains between 1e-4 and 1e-2.

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/reconstruct.hpp"
#include "core/st_hosvd.hpp"
#include "data/combustion.hpp"
#include "data/normalize.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("fig1b_compression_curve",
                       "compression ratio vs error for the SP surrogate");
  args.add_double("scale", 0.05, "dataset scale factor vs the paper's 550 GB");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.parse(argc, argv);

  bench::header("Fig. 1b", "compression ratio vs normalized RMS error (SP)");
  const auto spec = data::combustion_spec(data::CombustionPreset::SP,
                                          args.get_double("scale"));
  const int p = static_cast<int>(args.get_int("ranks"));

  util::Table table({"eps", "measured err", "compression", "reduced dims"});
  mps::run(p, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, dist::default_grid_shape(p, spec.dims));
    dist::DistTensor x = data::make_combustion(grid, spec);
    data::normalize_species(x, spec.species_mode);
    for (double eps : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
      core::SthosvdOptions opts;
      opts.epsilon = eps;
      const auto result = core::st_hosvd(x, opts);
      const dist::DistTensor xt = core::reconstruct(result.tucker);
      const double err = core::normalized_error(x, xt);
      if (comm.rank() == 0) {
        table.add_row({util::Table::fmt_sci(eps, 0),
                       util::Table::fmt_sci(err, 2),
                       util::Table::fmt(result.tucker.compression_ratio(), 1),
                       bench::dims_name(result.tucker.core_dims())});
      }
    }
    if (comm.rank() == 0) {
      std::printf("dataset: SP surrogate %s (%.1f MB)\n",
                  bench::dims_name(spec.dims).c_str(),
                  static_cast<double>(tensor::prod(spec.dims)) * 8.0 /
                      1048576.0);
      std::printf("%s", table.str().c_str());
    }
  });
  bench::paper_note(
      "550 GB SP dataset compresses 5x at err 1e-6 up to 5,580x at 1e-2 "
      "(ratios rise ~3 orders of magnitude across the sweep).");
  return 0;
}
