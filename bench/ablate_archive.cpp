/// \file ablate_archive.cpp
/// \brief One PTA1 archive vs one PTZ1 file per window for a time-series of
/// K window models: write cost, then the analyst-side open/seek cost of a
/// ranged query (load every covering model). The archive pays one open +
/// one header parse for any number of windows, where the N-files layout
/// pays an open + parse per window — exactly the metadata cost TuckerMPI's
/// time-series archiving concentrates into one container.

#include <cmath>
#include <filesystem>

#include "bench_common.hpp"
#include "core/st_hosvd.hpp"
#include "core/streaming.hpp"
#include "dist/grid.hpp"
#include "pario/archive_io.hpp"
#include "pario/model_io.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("ablate_archive",
                       "one PTA1 archive vs one PTZ1 file per window");
  args.add_int("dim", 24, "spatial extent (dim x dim x species steps)");
  args.add_int("species", 6, "number of species");
  args.add_int("windows", 8, "number of window models");
  args.add_int("window", 3, "timesteps per window");
  args.add_int("ranks", 2, "number of (thread) ranks");
  args.add_int("reps", 5, "query repetitions");
  args.add_double("eps", 1e-3, "per-window eps");
  args.parse(argc, argv);

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t species =
      static_cast<std::size_t>(args.get_int("species"));
  const std::size_t windows =
      static_cast<std::size_t>(args.get_int("windows"));
  const std::size_t window = static_cast<std::size_t>(args.get_int("window"));
  const int p = static_cast<int>(args.get_int("ranks"));
  const int reps = static_cast<int>(args.get_int("reps"));
  const tensor::Dims step_dims{dim, dim, species};

  namespace fs = std::filesystem;
  const std::string dir = (fs::temp_directory_path() / "ptucker_arch").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string archive = dir + "/models.pta";

  bench::header("Ablation: model archive",
                std::to_string(windows) + " windows of " +
                    std::to_string(window) + " steps of " +
                    bench::dims_name(step_dims) + " on " + std::to_string(p) +
                    " ranks");

  mps::Runtime rt(p);
  double write_archive_s = 0.0;
  double write_files_s = 0.0;
  rt.run([&](mps::Comm& comm) {
    std::vector<int> shape = dist::default_grid_shape(p, step_dims);
    shape.push_back(1);
    auto grid = dist::make_grid(comm, shape);

    // Compress every window once; the IO paths are what is measured.
    std::vector<core::TuckerTensor> models;
    for (std::size_t w = 0; w < windows; ++w) {
      tensor::Dims dims = step_dims;
      dims.push_back(window);
      dist::DistTensor x(grid, dims);
      x.fill_global([&](std::span<const std::size_t> idx) {
        double v = 0.3;
        for (std::size_t i = 0; i < idx.size(); ++i) {
          v += std::sin(0.21 * static_cast<double>(idx[i] + 3 * i + w));
        }
        return v;
      });
      core::SthosvdOptions opts;
      opts.epsilon = args.get_double("eps");
      models.push_back(core::st_hosvd(x, opts).tucker);
    }

    const double ta = bench::time_region(comm, [&] {
      pario::archive_create(archive, comm, step_dims, /*species_mode=*/-1,
                            pario::kDefaultArchiveCapacity);
      for (std::size_t w = 0; w < windows; ++w) {
        pario::archive_append_model(
            archive, w * window, args.get_double("eps"), models[w].core,
            std::span<const tensor::Matrix>(models[w].factors));
      }
    });
    const double tf = bench::time_region(comm, [&] {
      for (std::size_t w = 0; w < windows; ++w) {
        char name[32];
        std::snprintf(name, sizeof(name), "/w_%04zu.ptz", w);
        pario::write_model(dir + name, models[w].core,
                           std::span<const tensor::Matrix>(models[w].factors));
      }
    });
    if (comm.rank() == 0) {
      write_archive_s = ta;
      write_files_s = tf;
    }
  });

  // Analyst-side ranged query: load every model covering the whole range.
  double open_archive_s = 0.0;
  double open_files_s = 0.0;
  rt.run([&](mps::Comm& comm) {
    std::vector<int> shape = dist::default_grid_shape(p, step_dims);
    shape.push_back(1);
    auto grid = dist::make_grid(comm, shape);
    const double ta = bench::time_region(comm, [&] {
      for (int r = 0; r < reps; ++r) {
        const pario::ArchiveReader reader(archive);  // 1 open, 1 parse
        for (std::size_t e = 0; e < reader.entry_count(); ++e) {
          (void)reader.read_entry(e, grid);
        }
      }
    });
    const double tf = bench::time_region(comm, [&] {
      for (int r = 0; r < reps; ++r) {
        for (std::size_t w = 0; w < windows; ++w) {  // K opens, K parses
          char name[32];
          std::snprintf(name, sizeof(name), "/w_%04zu.ptz", w);
          (void)pario::read_model(dir + name, grid);
        }
      }
    });
    if (comm.rank() == 0) {
      open_archive_s = ta / reps;
      open_files_s = tf / reps;
    }
  });

  util::Table table({"layout", "write(s)", "ranged load(s)", "files opened"});
  table.add_row({"PTA1 archive", util::Table::fmt(write_archive_s, 4),
                 util::Table::fmt(open_archive_s, 4), "1"});
  table.add_row({"one .ptz per window", util::Table::fmt(write_files_s, 4),
                 util::Table::fmt(open_files_s, 4),
                 std::to_string(windows)});
  std::printf("%s", table.str().c_str());
  std::printf("archive vs per-window files: load %.2fx\n",
              open_files_s / open_archive_s);
  bench::paper_note(
      "the paper's in-situ story archives a long run as a sequence of "
      "window models; holding them in one appendable PTA1 container "
      "replaces K opens + K header parses per ranged query with one of "
      "each, keeps the windows' time ranges queryable from a single table, "
      "and survives a crash mid-append with all committed entries intact.");

  fs::remove_all(dir);
  return 0;
}
