/// \file fig9a_strong_scaling.cpp
/// \brief Reproduces Fig. 9a: strong scaling of ST-HOSVD and one HOOI sweep
/// on a fixed problem (paper: 200^4 -> 20^4 over 2^k nodes; here a scaled
/// 4-way tensor over 1..16+ thread-ranks, grid tuned per rank count over the
/// Sec. VIII-B heuristic shortlist).

#include <algorithm>

#include "bench_common.hpp"
#include "core/hooi.hpp"
#include "core/st_hosvd.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("fig9a_strong_scaling",
                       "strong scaling of ST-HOSVD + one HOOI sweep");
  args.add_int("dim", 48, "tensor extent per mode (4-way)");
  args.add_int("reduced", 5, "target rank per mode (paper uses dim/10)");
  args.add_int("max_ranks", 16, "largest rank count (powers of two up to)");
  args.add_int("grids_per_p", 3, "grid candidates tried per rank count");
  args.parse(argc, argv);

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t red = static_cast<std::size_t>(args.get_int("reduced"));
  const tensor::Dims dims{dim, dim, dim, dim};
  const tensor::Dims ranks{red, red, red, red};
  const int max_p = static_cast<int>(args.get_int("max_ranks"));

  bench::header("Fig. 9a", "strong scaling, " + bench::dims_name(dims) +
                               " -> " + bench::dims_name(ranks));

  util::Table table({"ranks", "grid", "ST-HOSVD(s)", "HOOI sweep(s)",
                     "speedup", "efficiency"});
  double t1 = 0.0;
  for (int p = 1; p <= max_p; p *= 2) {
    const auto candidates = mps::heuristic_grid_shapes(
        p, dims, static_cast<std::size_t>(args.get_int("grids_per_p")));
    double best_st = 1e300;
    double best_hooi = 0.0;
    std::vector<int> best_shape;
    for (const auto& shape : candidates) {
      double st_time = 0.0;
      double hooi_time = 0.0;
      mps::run(p, [&](mps::Comm& comm) {
        auto grid = dist::make_grid(comm, shape);
        const dist::DistTensor x =
            data::make_low_rank(grid, dims, ranks, 3, 0.01);
        core::SthosvdOptions opts;
        opts.fixed_ranks = ranks;
        const double t_st = bench::time_region(comm, [&] {
          (void)core::st_hosvd(x, opts);
        });
        core::HooiOptions hooi_opts;
        hooi_opts.max_sweeps = 1;
        hooi_opts.improvement_tol = -1.0;  // force exactly one sweep
        const double t_all = bench::time_region(comm, [&] {
          (void)core::hooi(x, opts, hooi_opts);
        });
        if (comm.rank() == 0) {
          st_time = t_st;
          hooi_time = std::max(0.0, t_all - t_st);
        }
      });
      if (best_shape.empty() || st_time < best_st) {
        best_st = st_time;
        best_hooi = hooi_time;
        best_shape = shape;
      }
    }
    if (p == 1) t1 = best_st;
    const double speedup = t1 / best_st;
    table.add_row({std::to_string(p), bench::shape_name(best_shape),
                   util::Table::fmt(best_st, 3),
                   util::Table::fmt(best_hooi, 3),
                   util::Table::fmt(speedup, 2),
                   util::Table::fmt(speedup / p, 2)});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Fig. 9a: run time keeps decreasing up to 256 nodes (6144 cores) with "
      "near-linear scaling at low counts; HOOI costs a small multiple of "
      "ST-HOSVD per sweep. Reproduction target: monotone decrease and high "
      "efficiency at small P on one node.");
  return 0;
}
