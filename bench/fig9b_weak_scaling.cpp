/// \file fig9b_weak_scaling.cpp
/// \brief Reproduces Fig. 9b: weak scaling — fixed data per rank, growing
/// tensors (paper: (200k)^4 with cores of (20k)^4 on k^4 nodes, reporting
/// GFLOPS per core). We grow one mode per doubling so the local volume
/// stays constant at every rank count, and report measured GFLOPS/core
/// (from the exact kernel flop counters) plus %% of the machine's measured
/// single-core GEMM throughput.

#include "bench_common.hpp"
#include "blas/blas.hpp"
#include "core/st_hosvd.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("fig9b_weak_scaling",
                       "weak scaling: GFLOPS per core at fixed local volume");
  args.add_int("base_dim", 32, "extent per mode at 1 rank (4-way)");
  args.add_int("max_ranks", 16, "largest rank count (powers of two)");
  args.parse(argc, argv);

  const std::size_t base = static_cast<std::size_t>(args.get_int("base_dim"));
  const int max_p = static_cast<int>(args.get_int("max_ranks"));

  bench::header("Fig. 9b", "weak scaling from " +
                               std::to_string(base) + "^4 per rank");
  const double core_peak = bench::measure_core_gemm_flops();
  std::printf("measured single-core gemm throughput: %.2f GFLOP/s\n\n",
              core_peak / 1e9);

  util::Table table({"ranks", "grid", "global dims", "time(s)",
                     "GFLOPS/core", "% gemm peak"});
  for (int p = 1; p <= max_p; p *= 2) {
    // Grow one grid mode per doubling: P = 2^a distributed as extents
    // (2,2,2,...) over the first a modes; dims grow with the grid so the
    // local block stays base^4.
    std::vector<int> shape(4, 1);
    tensor::Dims dims(4, base);
    tensor::Dims ranks(4, base / 8);
    int rem = p;
    int mode = 0;
    while (rem > 1) {
      shape[static_cast<std::size_t>(mode % 4)] *= 2;
      dims[static_cast<std::size_t>(mode % 4)] *= 2;
      ranks[static_cast<std::size_t>(mode % 4)] *= 2;
      rem /= 2;
      ++mode;
    }
    double elapsed = 0.0;
    std::uint64_t flops = 0;
    mps::run(p, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x =
          data::make_low_rank(grid, dims, ranks, 11, 0.01);
      comm.barrier();
      if (comm.rank() == 0) blas::reset_flop_count();
      comm.barrier();
      core::SthosvdOptions opts;
      opts.fixed_ranks = ranks;
      const double t = bench::time_region(comm, [&] {
        (void)core::st_hosvd(x, opts);
      });
      if (comm.rank() == 0) {
        elapsed = t;
        flops = blas::flop_count();
      }
    });
    const double gflops_core =
        static_cast<double>(flops) / elapsed / p / 1e9;
    table.add_row({std::to_string(p), bench::shape_name(shape),
                   bench::dims_name(dims), util::Table::fmt(elapsed, 3),
                   util::Table::fmt(gflops_core, 2),
                   util::Table::fmt(100.0 * gflops_core * 1e9 / core_peak, 1)});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Fig. 9b: 66%% of core peak at 1 node falling to 17%% at 1296 nodes "
      "(15 TB in 70 s, up to 104 TFLOPS aggregate). Reproduction target: "
      "high per-core efficiency at 1 rank, gradual decline as "
      "communication and grid trade-offs kick in.");
  return 0;
}
