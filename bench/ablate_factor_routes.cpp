/// \file ablate_factor_routes.cpp
/// \brief The three per-mode factor routes head to head: Gram + eigensolver
/// (paper default), general row-distributed TSQR + small SVD (Sec. IX), and
/// the randomized sketch (counter-based Omega, thin QR, projected spectrum).
/// Prints a per-mode table on a grid that distributes every mode, then a
/// crossover sweep over growing mode-0 extents where the sketch's
/// O((1+2q) w J) flops undercut both exact routes — with the cost-model Auto
/// pick alongside so the dispatch policy can be read off the timings.
///
/// `--smoke` runs one small end-to-end ST-HOSVD per route and asserts the
/// eq. 3 error bound for each; CI uses it as a release-kernel gate.

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/reconstruct.hpp"
#include "core/st_hosvd.hpp"
#include "costmodel/tucker_model.hpp"
#include "data/synthetic.hpp"
#include "dist/gram.hpp"
#include "dist/grid.hpp"
#include "dist/sketch.hpp"
#include "dist/tsqr.hpp"
#include "util/cli.hpp"

using namespace ptucker;

namespace {

/// Mean wall-clock over `reps` runs of one factor route on mode `mode`.
double time_route(mps::Runtime& rt, std::vector<dist::DistTensor>& xs,
                  int mode, const dist::RankSelection& select,
                  int route,  // 0 = gram, 1 = tsqr, 2 = randomized
                  const dist::SketchOptions& sketch, int reps) {
  double t_out = 0.0;
  rt.run([&](mps::Comm& comm) {
    auto& x = xs[static_cast<std::size_t>(comm.rank())];
    const double t = bench::time_region(comm, [&] {
      for (int rep = 0; rep < reps; ++rep) {
        switch (route) {
          case 0: {
            const dist::GramColumns s = dist::gram(x, mode);
            (void)dist::eigenvectors(s, x.grid(), mode, select);
            break;
          }
          case 1:
            (void)dist::factor_via_tsqr(x, mode, select);
            break;
          default:
            (void)dist::factor_via_sketch(x, mode, select, sketch);
        }
      }
    });
    if (comm.rank() == 0) t_out = t / reps;
  });
  return t_out;
}

const char* auto_pick(const tensor::Dims& dims, int mode, std::size_t rank,
                      const dist::SketchOptions& sketch,
                      const std::vector<int>& shape) {
  const std::size_t jn = dims[static_cast<std::size_t>(mode)];
  const std::size_t w = dist::sketch_width(jn, rank, sketch);
  if (costmodel::prefer_sketch(dims, mode, w, sketch.power_iterations, shape))
    return "randomized";
  return costmodel::prefer_tsqr(dims, mode, shape) ? "tsqr" : "gram";
}

/// One end-to-end ST-HOSVD per route on a small eps-driven problem; each
/// must honor the eq. 3 bound. Exits nonzero on the first violation.
int run_smoke() {
  const tensor::Dims dims{48, 24, 20};
  const std::vector<int> shape{2, 2, 1};
  const double eps = 0.15;
  const core::FactorMethod methods[] = {core::FactorMethod::GramEig,
                                        core::FactorMethod::TsqrSvd,
                                        core::FactorMethod::Randomized};
  bool ok = true;
  for (const auto method : methods) {
    mps::Runtime rt(4);
    rt.run([&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x =
          data::make_low_rank(grid, dims, tensor::Dims{6, 5, 4}, 11, 0.005);
      core::SthosvdOptions opts;
      opts.epsilon = eps;
      opts.factor_method = method;
      const auto result = core::st_hosvd(x, opts);
      const double err =
          core::normalized_error(x, core::reconstruct(result.tucker));
      if (comm.rank() == 0) {
        const char* name =
            core::factor_route_name(result.mode_routes.empty()
                                        ? core::FactorRoute::Gram
                                        : result.mode_routes[0])
                .data();
        const bool bound_ok = err <= eps && result.error_bound <= eps;
        const bool route_ok = result.downgrades.empty();
        std::printf("smoke %-10s: err %.3e bound %.3e (eps %.2f) %s\n", name,
                    err, result.error_bound, eps,
                    bound_ok && route_ok ? "ok" : "FAIL");
        if (!bound_ok || !route_ok) ok = false;
      }
    });
  }
  std::printf(ok ? "smoke: all three routes honor eq. 3\n"
                 : "smoke: eq. 3 violated\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablate_factor_routes",
                       "Gram+eig vs TSQR+SVD vs randomized sketch per mode");
  args.add_int("dim", 64, "extent of the two fat modes");
  args.add_int("skinny", 8, "extent of the tall-skinny first mode");
  args.add_int("ranks", 8, "number of (thread) ranks (must be 8: the "
                           "ablation uses a fixed 2x2x2 grid)");
  args.add_flag("smoke", "assert the eq. 3 bound end to end for all three "
                         "routes and exit");
  args.parse(argc, argv);

  if (args.get_flag("smoke")) return run_smoke();

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t skinny = static_cast<std::size_t>(args.get_int("skinny"));
  const int p = static_cast<int>(args.get_int("ranks"));
  PT_REQUIRE(p == 8, "ablation uses a fixed 2x2x2 grid (8 ranks)");
  const tensor::Dims dims{skinny, dim, dim};
  const std::vector<int> shape{2, 2, 2};
  const dist::SketchOptions sketch;  // defaults: p = 8, q = 1

  bench::header("Ablation: factor routes",
                "Gram+eig vs TSQR+SVD vs randomized sketch per mode of " +
                    bench::dims_name(dims) + " on a 2x2x2 grid");

  util::Table table({"mode", "Jn", "gram(s)", "tsqr(s)", "rand(s)", "width",
                     "auto picks"});
  for (int mode = 0; mode < 3; ++mode) {
    const std::size_t jn = dims[static_cast<std::size_t>(mode)];
    const std::size_t rank = std::min<std::size_t>(4, jn);
    const dist::RankSelection select = dist::RankSelection::fixed_rank(rank);
    mps::Runtime rt(p);
    std::vector<dist::DistTensor> xs(static_cast<std::size_t>(p));
    rt.run([&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      xs[static_cast<std::size_t>(comm.rank())] = data::make_low_rank(
          grid, dims, tensor::Dims{4, 8, 8}, 3, 0.01);
    });

    const double t_gram = time_route(rt, xs, mode, select, 0, sketch, 3);
    const double t_tsqr = time_route(rt, xs, mode, select, 1, sketch, 3);
    const double t_rand = time_route(rt, xs, mode, select, 2, sketch, 3);
    table.add_row({std::to_string(mode), std::to_string(jn),
                   util::Table::fmt(t_gram, 4), util::Table::fmt(t_tsqr, 4),
                   util::Table::fmt(t_rand, 4),
                   std::to_string(dist::sketch_width(jn, rank, sketch)),
                   auto_pick(dims, mode, rank, sketch, shape)});
  }
  std::printf("%s", table.str().c_str());

  // Crossover sweep: grow the mode-0 extent with the other modes fixed. The
  // exact routes pay O(Jn) per unfolding column (Gram) or an O(Jn^2)-row
  // tree (TSQR); the sketch pays O((1+2q) w) per column at fixed width
  // w = rank + oversample, so past the crossover it wins by a growing ratio.
  bench::header("Crossover: mode-0 extent sweep",
                "fixed rank 8, sketch width " +
                    std::to_string(dist::sketch_width(256, 8, sketch)) +
                    ", q = 1, modes 1-2 at 48");
  util::Table sweep({"J0", "gram(s)", "tsqr(s)", "rand(s)", "rand speedup",
                     "auto picks"});
  for (const std::size_t d0 : {std::size_t{64}, std::size_t{128},
                               std::size_t{192}, std::size_t{256}}) {
    const tensor::Dims sdims{d0, 48, 48};
    const dist::RankSelection select = dist::RankSelection::fixed_rank(8);
    mps::Runtime rt(p);
    std::vector<dist::DistTensor> xs(static_cast<std::size_t>(p));
    rt.run([&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      xs[static_cast<std::size_t>(comm.rank())] = data::make_low_rank(
          grid, sdims, tensor::Dims{8, 8, 8}, 3, 0.01);
    });
    const double t_gram = time_route(rt, xs, 0, select, 0, sketch, 3);
    const double t_tsqr = time_route(rt, xs, 0, select, 1, sketch, 3);
    const double t_rand = time_route(rt, xs, 0, select, 2, sketch, 3);
    const double best_exact = std::min(t_gram, t_tsqr);
    sweep.add_row({std::to_string(d0), util::Table::fmt(t_gram, 4),
                   util::Table::fmt(t_tsqr, 4), util::Table::fmt(t_rand, 4),
                   util::Table::fmt(best_exact / t_rand, 2) + "x",
                   auto_pick(sdims, 0, 8, sketch, shape)});
  }
  std::printf("%s", sweep.str().c_str());

  bench::paper_note(
      "The randomized route sketches the unfolding down to w = rank + p "
      "columns before any factorization, so its leading cost 2(1+2q) w J / P "
      "is independent of the mode extent Jn where the Gram route pays "
      "2 Jn J / P and TSQR factors Jn x Jn tree blocks. Past the crossover "
      "extent the sketch wins by a growing ratio, which is exactly what the "
      "Auto column dispatches on; the eps-aware posteriori check (see "
      "--smoke) keeps eq. 3 certified or falls back to Gram, recorded.");
  return 0;
}
