/// \file ablate_factor_routes.cpp
/// \brief Gram + eigensolver (paper default) vs the general row-distributed
/// TSQR + small SVD (Sec. IX, generalized to any grid) for the per-mode
/// factor computation, on a grid that distributes every mode — the
/// configuration the old Pn == 1 kernel could not run at all. Also prints
/// the cost-model Auto pick per mode (tall-skinny unfoldings -> TSQR).

#include "bench_common.hpp"
#include "costmodel/tucker_model.hpp"
#include "data/synthetic.hpp"
#include "dist/gram.hpp"
#include "dist/grid.hpp"
#include "dist/tsqr.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("ablate_factor_routes",
                       "Gram+eig vs general TSQR per mode");
  args.add_int("dim", 64, "extent of the two fat modes");
  args.add_int("skinny", 8, "extent of the tall-skinny first mode");
  args.add_int("ranks", 8, "number of (thread) ranks (must be 8: the "
                           "ablation uses a fixed 2x2x2 grid)");
  args.parse(argc, argv);

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t skinny = static_cast<std::size_t>(args.get_int("skinny"));
  const int p = static_cast<int>(args.get_int("ranks"));
  PT_REQUIRE(p == 8, "ablation uses a fixed 2x2x2 grid (8 ranks)");
  const tensor::Dims dims{skinny, dim, dim};
  const std::vector<int> shape{2, 2, 2};

  bench::header("Ablation: factor routes",
                "Gram+eig vs TSQR+SVD per mode of " + bench::dims_name(dims) +
                    " on a 2x2x2 grid");

  util::Table table({"mode", "Jn", "gram(s)", "gram words/rank", "tsqr(s)",
                     "tsqr words/rank", "auto picks"});
  for (int mode = 0; mode < 3; ++mode) {
    const std::size_t jn = dims[static_cast<std::size_t>(mode)];
    const dist::RankSelection select =
        dist::RankSelection::fixed_rank(std::min<std::size_t>(4, jn));
    double t_gram = 0.0;
    double t_tsqr = 0.0;
    mps::Runtime rt(p);
    std::vector<dist::DistTensor> xs(static_cast<std::size_t>(p));
    rt.run([&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      xs[static_cast<std::size_t>(comm.rank())] = data::make_low_rank(
          grid, dims, tensor::Dims{4, 8, 8}, 3, 0.01);
    });

    rt.reset_stats();
    rt.run([&](mps::Comm& comm) {
      auto& x = xs[static_cast<std::size_t>(comm.rank())];
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < 3; ++rep) {
          const dist::GramColumns s = dist::gram(x, mode);
          (void)dist::eigenvectors(s, x.grid(), mode, select);
        }
      });
      if (comm.rank() == 0) t_gram = t / 3.0;
    });
    const double w_gram = rt.max_stats().words_sent() / 3.0;

    rt.reset_stats();
    rt.run([&](mps::Comm& comm) {
      auto& x = xs[static_cast<std::size_t>(comm.rank())];
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < 3; ++rep) {
          (void)dist::factor_via_tsqr(x, mode, select);
        }
      });
      if (comm.rank() == 0) t_tsqr = t / 3.0;
    });
    const double w_tsqr = rt.max_stats().words_sent() / 3.0;

    const bool auto_tsqr = costmodel::prefer_tsqr(dims, mode, shape);
    table.add_row({std::to_string(mode), std::to_string(jn),
                   util::Table::fmt(t_gram, 4), util::Table::fmt(w_gram, 0),
                   util::Table::fmt(t_tsqr, 4), util::Table::fmt(w_tsqr, 0),
                   auto_tsqr ? "tsqr" : "gram"});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Sec. IX: the Gram-free TSQR route now runs on any grid. For "
      "tall-skinny unfoldings it moves 1/Pn of the local block once instead "
      "of ring-shifting all of it Pn-1 times, and it resolves spectral "
      "tails the Gram route flattens; for fat unfoldings the O(log P) Jn^3 "
      "tree factorizations favor the Gram route, which is what the Auto "
      "policy encodes.");
  return 0;
}
