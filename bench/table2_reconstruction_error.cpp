/// \file table2_reconstruction_error.cpp
/// \brief Reproduces Tab. II: compression and errors at the eps = 1e-3
/// error threshold — reduced dims, normalized RMS and max-abs-element error
/// for ST-HOSVD and HOOI, and the compression ratio, for all three datasets.

#include "bench_common.hpp"
#include "core/hooi.hpp"
#include "core/metrics.hpp"
#include "core/reconstruct.hpp"
#include "data/combustion.hpp"
#include "data/normalize.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("table2_reconstruction_error",
                       "Tab. II at eps = 1e-3 for HCCI / TJLR / SP");
  args.add_double("scale", 0.045, "dataset scale factor");
  args.add_double("eps", 1e-3, "max normalized RMS error threshold");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.parse(argc, argv);

  bench::header("Tab. II",
                "compression and errors at the 1e-3 error threshold");
  const double scale = args.get_double("scale");
  const double eps = args.get_double("eps");
  const int p = static_cast<int>(args.get_int("ranks"));

  util::Table table({"dataset", "reduced dims", "ST err", "ST maxabs",
                     "HOOI err", "HOOI maxabs", "ratio"});
  for (auto preset : {data::CombustionPreset::HCCI,
                      data::CombustionPreset::TJLR,
                      data::CombustionPreset::SP}) {
    const auto spec = data::combustion_spec(preset, scale);
    mps::run(p, [&](mps::Comm& comm) {
      auto grid =
          dist::make_grid(comm, dist::default_grid_shape(p, spec.dims));
      dist::DistTensor x = data::make_combustion(grid, spec);
      data::normalize_species(x, spec.species_mode);

      core::SthosvdOptions init;
      init.epsilon = eps;
      const auto st = core::st_hosvd(x, init);
      const dist::DistTensor st_rec = core::reconstruct(st.tucker);
      const double st_err = core::normalized_error(x, st_rec);
      const double st_max = core::max_abs_error(x, st_rec);

      core::HooiOptions hooi_opts;
      hooi_opts.max_sweeps = 2;
      const auto hooi = core::hooi(x, init, hooi_opts);
      const dist::DistTensor ho_rec = core::reconstruct(hooi.tucker);
      const double ho_err = core::normalized_error(x, ho_rec);
      const double ho_max = core::max_abs_error(x, ho_rec);

      if (comm.rank() == 0) {
        table.add_row({data::preset_name(preset),
                       bench::dims_name(st.tucker.core_dims()),
                       util::Table::fmt_sci(st_err, 3),
                       util::Table::fmt_sci(st_max, 3),
                       util::Table::fmt_sci(ho_err, 3),
                       util::Table::fmt_sci(ho_max, 3),
                       util::Table::fmt(st.tucker.compression_ratio(), 0)});
      }
    });
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Tab. II (full size): HCCI (297,279,29,153) err 9.26e-4 ratio 25; TJLR "
      "(306,232,239,35,16) err 7.62e-4 ratio 7; SP (81,129,127,7,32) err "
      "8.66e-4 ratio 231. HOOI barely improves on ST-HOSVD (the paper's "
      "conclusion that ST-HOSVD alone suffices here).");
  return 0;
}
