/// \file fig6_modewise_error.cpp
/// \brief Reproduces Fig. 6: mode-wise contributions to the error bound for
/// the three combustion datasets — the curves sqrt(sum_{i>R} lambda_i)/||X||
/// per mode, whose intersections with eps/sqrt(N) give the reduced dims.

#include <cmath>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "dist/eigenvectors.hpp"
#include "dist/gram.hpp"
#include "dist/grid.hpp"
#include "data/combustion.hpp"
#include "data/normalize.hpp"
#include "util/cli.hpp"

using namespace ptucker;

namespace {

void run_preset(data::CombustionPreset preset, double scale, int p) {
  const auto spec = data::combustion_spec(preset, scale);
  std::printf("--- %s surrogate: dims = %s ---\n", data::preset_name(preset),
              bench::dims_name(spec.dims).c_str());

  mps::run(p, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, dist::default_grid_shape(p, spec.dims));
    dist::DistTensor x = data::make_combustion(grid, spec);
    data::normalize_species(x, spec.species_mode);
    const double norm_x = x.norm();

    // Gram spectrum of every mode of the *untruncated* tensor (the Fig. 6
    // curves are T-HOSVD style, per mode independently).
    std::vector<std::vector<double>> spectra(spec.dims.size());
    for (int n = 0; n < static_cast<int>(spec.dims.size()); ++n) {
      const dist::GramColumns s = dist::gram(x, n);
      const dist::FactorResult f = dist::eigenvectors(
          s, *grid, n, dist::RankSelection::fixed_rank(spec.dims[
              static_cast<std::size_t>(n)]));
      spectra[static_cast<std::size_t>(n)] = f.eigenvalues;
    }

    if (comm.rank() == 0) {
      // Print each mode's error at a geometric set of ranks.
      std::vector<std::string> headers = {"rank fraction"};
      for (std::size_t n = 0; n < spec.dims.size(); ++n) {
        std::string label = "mode" + std::to_string(n + 1);
        if (static_cast<int>(n) == spec.species_mode) label += "(species)";
        if (static_cast<int>(n) == spec.time_mode) label += "(time)";
        headers.push_back(label);
      }
      util::Table table(headers);
      for (double frac : {0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9, 1.0}) {
        std::vector<std::string> row = {util::Table::fmt(frac, 2)};
        for (std::size_t n = 0; n < spec.dims.size(); ++n) {
          const auto& ev = spectra[n];
          const std::size_t rank = std::max<std::size_t>(
              1, static_cast<std::size_t>(std::llround(
                     frac * static_cast<double>(ev.size()))));
          row.push_back(util::Table::fmt_sci(
              core::modewise_error(ev, rank, norm_x), 1));
        }
        table.add_row(row);
      }
      std::printf("%s\n", table.str().c_str());
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("fig6_modewise_error",
                       "mode-wise error-bound contributions per dataset");
  args.add_double("scale", 0.04, "dataset scale factor");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.parse(argc, argv);

  bench::header("Fig. 6", "mode-wise normalized RMS error vs rank");
  const double scale = args.get_double("scale");
  const int p = static_cast<int>(args.get_int("ranks"));
  run_preset(data::CombustionPreset::HCCI, scale, p);
  run_preset(data::CombustionPreset::TJLR, scale, p);
  run_preset(data::CombustionPreset::SP, scale, p);
  bench::paper_note(
      "spatial modes decay over many decades (SP steepest), species modes "
      "stay nearly flat (barely compressible), time modes are intermediate; "
      "TJLR decays slowest of the three datasets.");
  return 0;
}
