/// \file serve_qps.cpp
/// \brief Query-serving throughput/latency over a PTA1 archive: N client
/// threads issue small subtensor queries against serve::QueryServer and we
/// report per-query latency percentiles (p50/p90/p99), sustained QPS, and
/// the panel-cache hit rate — cold (capacity-1 cache, every query reloads
/// its entry from disk) vs warm (all panels resident after a warm-up pass).
/// A final block drives the same workload through the bounded executor
/// (submit + future) to show admission behaviour under overload.
///
/// --smoke asserts the correctness invariant instead of timing: every warm
/// answer must be bit-identical to the cold answer for the same query (the
/// cache must never change bytes), and the warm pass must actually hit.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <future>
#include <thread>

#include "bench_common.hpp"
#include "core/st_hosvd.hpp"
#include "dist/grid.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pario/archive_io.hpp"
#include "serve/query_server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace ptucker;

namespace {

using Clock = std::chrono::steady_clock;

/// Exact nearest-rank percentile of the sorted sample: the k-th smallest,
/// k = ceil(p/100 * n). Kept as the oracle the shared obs histogram is
/// checked against — same rank rule, so the exact value must fall inside
/// the histogram's reported bucket.
std::uint64_t exact_percentile(const std::vector<std::uint64_t>& sorted_us,
                               double p) {
  if (sorted_us.empty()) return 0;
  const auto n = static_cast<double>(sorted_us.size());
  auto rank = static_cast<std::size_t>(p / 100.0 * n + 0.9999999999);
  rank = std::max<std::size_t>(rank, 1);
  rank = std::min(rank, sorted_us.size());
  return sorted_us[rank - 1];
}

/// Deterministic single-step queries, round-robin over the archive entries
/// so a capacity-1 cache is evicted on every consecutive query.
std::vector<serve::Request> make_queries(const tensor::Dims& step_dims,
                                         std::size_t windows,
                                         std::size_t window, std::size_t count,
                                         std::size_t box_extent,
                                         std::uint64_t deadline_ms) {
  std::vector<serve::Request> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t w = i % windows;
    const std::uint64_t step =
        w * window + util::splitmix64(2 * i) % window;
    serve::Request req;
    req.archive = 0;
    req.step_lo = step;
    req.step_hi = step + 1;
    req.deadline_ms = deadline_ms;
    req.box.resize(step_dims.size());
    for (std::size_t n = 0; n < step_dims.size(); ++n) {
      const std::size_t extent = std::min(box_extent, step_dims[n]);
      const std::size_t lo =
          util::splitmix64(util::splitmix64(i) + n) %
          (step_dims[n] - extent + 1);
      req.box[n] = util::Range{lo, lo + extent};
    }
    qs.push_back(std::move(req));
  }
  return qs;
}

struct ScenarioResult {
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
  std::size_t sheds = 0;            ///< queries rejected with Overloaded
  std::size_t deadline_misses = 0;  ///< queries lost to DeadlineExceeded
};

/// Run every query once across \p clients threads against \p server,
/// recording per-query latency. Answers are folded into \p checksum so the
/// reconstruction cannot be optimized away (and smoke can store them).
ScenarioResult run_clients(const serve::QueryServer& server,
                           const std::vector<serve::Request>& qs,
                           std::size_t clients, bool via_executor,
                           std::vector<tensor::Tensor>* answers_out = nullptr) {
  const serve::CacheCounters before = server.cache().counters();
  // Latencies go to the shared obs histogram (the same digest the server
  // exports for serve.query_us) AND to an exact per-thread list used to
  // cross-check the histogram's log-bucketed percentiles below.
  auto hist = std::make_unique<obs::HistogramData>();
  std::vector<std::vector<std::uint64_t>> lat(clients);
  if (answers_out) answers_out->assign(qs.size(), tensor::Tensor{});
  std::atomic<double> checksum{0.0};
  std::atomic<std::size_t> sheds{0};
  std::atomic<std::size_t> deadline_misses{0};

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Contiguous chunk per client: each thread walks the entry
      // round-robin in order, so the cold capacity-1 cache is evicted on
      // every consecutive query regardless of the client count.
      const std::size_t lo = c * qs.size() / clients;
      const std::size_t hi = (c + 1) * qs.size() / clients;
      double local = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        const auto q0 = Clock::now();
        tensor::Tensor ans;
        try {
          ans = via_executor ? server.submit(qs[i]).get()
                             : server.subtensor(qs[i]);
        } catch (const Overloaded&) {
          // Shed at admission (shed_on_overload): the client's cue to back
          // off. No latency sample — the query never ran.
          ++sheds;
          continue;
        } catch (const DeadlineExceeded&) {
          ++deadline_misses;
          continue;
        }
        const auto q1 = Clock::now();
        const auto us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
                .count());
        hist->record(us);
        lat[c].push_back(us);
        local += ans.data()[0];
        if (answers_out) (*answers_out)[i] = std::move(ans);
      }
      double expect = checksum.load();
      while (!checksum.compare_exchange_weak(expect, expect + local)) {
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<std::uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  // The histogram is exact to the bucket (~12.5% relative): the true
  // nearest-rank sample must lie inside the bucket each percentile names.
  // (With every query shed there is no sample to check.)
  if (!all.empty()) {
    for (const double p : {50.0, 90.0, 99.0}) {
      const obs::HistogramData::Bounds b = hist->percentile_bounds(p);
      const std::uint64_t exact = exact_percentile(all, p);
      if (exact < b.lo || exact >= b.hi) {
        std::fprintf(stderr,
                     "serve_qps: histogram p%.0f bucket [%llu, %llu) does "
                     "not contain the exact percentile %llu\n",
                     p, static_cast<unsigned long long>(b.lo),
                     static_cast<unsigned long long>(b.hi),
                     static_cast<unsigned long long>(exact));
        std::exit(1);
      }
    }
  }

  const serve::CacheCounters after = server.cache().counters();
  const std::size_t lookups = after.lookups - before.lookups;
  ScenarioResult r;
  r.p50_us = static_cast<double>(hist->percentile(50));
  r.p90_us = static_cast<double>(hist->percentile(90));
  r.p99_us = static_cast<double>(hist->percentile(99));
  r.qps = static_cast<double>(all.size()) / wall;  // completed queries only
  r.hit_rate = lookups == 0 ? 0.0
                            : static_cast<double>(after.hits - before.hits) /
                                  static_cast<double>(lookups);
  r.sheds = sheds.load();
  r.deadline_misses = deadline_misses.load();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("serve_qps",
                       "concurrent query serving over a PTA1 archive");
  args.add_int("dim", 32, "spatial extent (dim x dim x species steps)");
  args.add_int("species", 8, "number of species");
  args.add_int("windows", 6, "number of window models in the archive");
  args.add_int("window", 4, "timesteps per window");
  args.add_int("ranks", 2, "number of (thread) ranks for archive build");
  args.add_int("queries", 400, "queries per scenario");
  args.add_int("box", 2, "spatial box extent per mode of each query");
  args.add_int("max_clients", 8, "sweep client counts 1,2,4,...,max_clients");
  args.add_int("cache", 16, "warm-scenario panel-cache capacity");
  args.add_int("shards", 4, "warm-scenario cache shards");
  args.add_int("queue_depth", 8, "executor admission-queue depth");
  args.add_double("eps", 1e-4, "per-window compression eps");
  args.add_int("deadline_ms", 0, "per-query deadline in ms (0 = unbounded)");
  args.add_flag("shed",
                "executor scenario sheds on overload (Overloaded) instead "
                "of blocking submit()");
  args.add_flag("smoke", "assert warm answers bit-match cold, then exit");
  args.add_string("trace", "",
                  "write a chrome://tracing JSON of the run to this path");
  args.parse(argc, argv);

  const std::string trace_path = args.get_string("trace");
  if (!trace_path.empty()) obs::TraceSession::start(1 << 20);
  auto finish_trace = [&] {
    if (trace_path.empty()) return;
    obs::TraceSession::stop();
    obs::TraceSession::write_chrome_json(trace_path);
    std::printf("trace: %llu events -> %s (%llu dropped)\n",
                static_cast<unsigned long long>(
                    obs::TraceSession::events().size()),
                trace_path.c_str(),
                static_cast<unsigned long long>(obs::TraceSession::dropped()));
  };

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t species =
      static_cast<std::size_t>(args.get_int("species"));
  const std::size_t windows =
      static_cast<std::size_t>(args.get_int("windows"));
  const std::size_t window = static_cast<std::size_t>(args.get_int("window"));
  const int p = static_cast<int>(args.get_int("ranks"));
  const std::size_t queries =
      static_cast<std::size_t>(args.get_int("queries"));
  const tensor::Dims step_dims{dim, dim, species};

  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "ptucker_serve_qps").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string archive = dir + "/run.pta";

  bench::header("Serve QPS: concurrent reconstruction queries",
                std::to_string(windows) + " windows of " +
                    std::to_string(window) + " steps of " +
                    bench::dims_name(step_dims));

  // Build the archive once: a drifting smooth field, one Tucker model per
  // window, appended to a single PTA1 container.
  mps::Runtime rt(p);
  rt.run([&](mps::Comm& comm) {
    std::vector<int> shape = dist::default_grid_shape(p, step_dims);
    shape.push_back(1);
    auto grid = dist::make_grid(comm, shape);
    pario::archive_create(archive, comm, step_dims, /*species_mode=*/-1);
    for (std::size_t w = 0; w < windows; ++w) {
      tensor::Dims dims = step_dims;
      dims.push_back(window);
      dist::DistTensor x(grid, dims);
      x.fill_global([&](std::span<const std::size_t> idx) {
        double v = 0.4;
        for (std::size_t i = 0; i < idx.size(); ++i) {
          v += std::sin(0.17 * static_cast<double>(idx[i] + 5 * i) +
                        0.3 * static_cast<double>(w));
        }
        return v;
      });
      core::SthosvdOptions opts;
      opts.epsilon = args.get_double("eps");
      core::TuckerTensor model = core::st_hosvd(x, opts).tucker;
      pario::archive_append_model(
          archive, w * window, opts.epsilon, model.core,
          std::span<const tensor::Matrix>(model.factors));
    }
  });

  const std::vector<serve::Request> qs = make_queries(
      step_dims, windows, window, queries,
      static_cast<std::size_t>(args.get_int("box")),
      static_cast<std::uint64_t>(args.get_int("deadline_ms")));

  serve::ServerOptions cold_opts;
  cold_opts.cache_capacity = 1;  // entry round-robin -> every query reloads
  cold_opts.cache_shards = 1;
  cold_opts.executor_threads = 0;
  cold_opts.revalidate = false;
  serve::ServerOptions warm_opts;
  warm_opts.cache_capacity = static_cast<std::size_t>(args.get_int("cache"));
  warm_opts.cache_shards = static_cast<std::size_t>(args.get_int("shards"));
  warm_opts.executor_threads = 0;
  warm_opts.revalidate = false;

  if (args.get_flag("smoke")) {
    // Correctness, not timing: the cache must never change answer bytes.
    serve::QueryServer cold({archive}, cold_opts);
    std::vector<tensor::Tensor> cold_ans;
    const ScenarioResult rc = run_clients(cold, qs, 1, false, &cold_ans);

    serve::ServerOptions smoke_warm = warm_opts;
    smoke_warm.executor_threads = 4;
    smoke_warm.queue_depth =
        static_cast<std::size_t>(args.get_int("queue_depth"));
    serve::QueryServer warm({archive}, smoke_warm);
    for (std::size_t w = 0; w < windows; ++w) {  // warm-up pass
      (void)warm.time_range(0, w * window, w * window + 1);
    }
    std::vector<tensor::Tensor> warm_ans;
    const ScenarioResult rw = run_clients(warm, qs, 4, true, &warm_ans);

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if (cold_ans[i].size() != warm_ans[i].size() ||
          std::memcmp(cold_ans[i].data(), warm_ans[i].data(),
                      cold_ans[i].size() * sizeof(double)) != 0) {
        ++mismatches;
      }
    }
    std::printf("smoke: %zu queries, %zu mismatches, warm hit rate %.2f\n",
                qs.size(), mismatches, rw.hit_rate);
    std::printf("smoke: cold p99 %.1f us, warm p99 %.1f us\n", rc.p99_us,
                rw.p99_us);
    // Exercise the live-introspection path: the unified registry must see
    // the serve-layer counters this run just generated.
    const obs::Snapshot snap = obs::registry().snapshot("serve.");
    std::printf("smoke: registry serve.queries %llu, serve.cache.hits %llu\n",
                static_cast<unsigned long long>(
                    snap.counters.count("serve.queries")
                        ? snap.counters.at("serve.queries") : 0),
                static_cast<unsigned long long>(
                    snap.counters.count("serve.cache.hits")
                        ? snap.counters.at("serve.cache.hits") : 0));
    finish_trace();
    fs::remove_all(dir);
    if (mismatches != 0 || rw.hit_rate <= 0.5) {
      std::fprintf(stderr, "serve smoke FAILED\n");
      return 1;
    }
    if (obs::kEnabled &&
        (!snap.counters.count("serve.queries") ||
         snap.counters.at("serve.queries") < qs.size())) {
      std::fprintf(stderr, "serve smoke FAILED: registry missed queries\n");
      return 1;
    }
    std::printf("serve smoke ok: warm answers bit-match cold\n");
    return 0;
  }

  util::Table table({"clients", "cache", "p50(us)", "p90(us)", "p99(us)",
                     "qps", "hit%", "ddl_miss", "shed"});
  const std::size_t max_clients =
      static_cast<std::size_t>(args.get_int("max_clients"));
  for (std::size_t clients = 1; clients <= max_clients; clients *= 2) {
    {
      serve::QueryServer server({archive}, cold_opts);
      const ScenarioResult r = run_clients(server, qs, clients, false);
      table.add_row({std::to_string(clients), "cold",
                     util::Table::fmt(r.p50_us, 1),
                     util::Table::fmt(r.p90_us, 1),
                     util::Table::fmt(r.p99_us, 1), util::Table::fmt(r.qps, 0),
                     util::Table::fmt(100.0 * r.hit_rate, 1),
                     std::to_string(r.deadline_misses),
                     std::to_string(r.sheds)});
    }
    {
      serve::QueryServer server({archive}, warm_opts);
      for (std::size_t w = 0; w < windows; ++w) {  // warm-up pass
        (void)server.time_range(0, w * window, w * window + 1);
      }
      const ScenarioResult r = run_clients(server, qs, clients, false);
      table.add_row({std::to_string(clients), "warm",
                     util::Table::fmt(r.p50_us, 1),
                     util::Table::fmt(r.p90_us, 1),
                     util::Table::fmt(r.p99_us, 1), util::Table::fmt(r.qps, 0),
                     util::Table::fmt(100.0 * r.hit_rate, 1),
                     std::to_string(r.deadline_misses),
                     std::to_string(r.sheds)});
    }
  }
  std::printf("%s", table.str().c_str());

  // Executor path: same warm workload through submit() with a deliberately
  // shallow admission queue, so overload shows up as admission_waits
  // (blocked submitters), never as unbounded queue growth.
  serve::ServerOptions exec_opts = warm_opts;
  exec_opts.executor_threads = 4;
  exec_opts.queue_depth =
      static_cast<std::size_t>(args.get_int("queue_depth"));
  exec_opts.shed_on_overload = args.get_flag("shed");
  serve::QueryServer server({archive}, exec_opts);
  for (std::size_t w = 0; w < windows; ++w) {
    (void)server.time_range(0, w * window, w * window + 1);
  }
  const ScenarioResult r = run_clients(server, qs, max_clients, true);
  const serve::ExecutorCounters ec = server.executor_counters();
  std::printf(
      "executor (%zu clients -> 4 workers, queue %zu%s): p50 %.1f us, "
      "p99 %.1f us, %0.f qps, %zu/%zu submits blocked, peak queue %zu, "
      "%zu shed, %zu deadline misses\n",
      max_clients, exec_opts.queue_depth,
      exec_opts.shed_on_overload ? ", shedding" : "", r.p50_us, r.p99_us,
      r.qps, ec.admission_waits, ec.submitted, ec.peak_queue, r.sheds,
      r.deadline_misses);

  bench::paper_note(
      "the paper's analysis workflow reconstructs only the requested "
      "subdomain from the Tucker factors; serving that as a query API makes "
      "the decompressed-panel working set the knob — a warm panel cache "
      "answers from memory at microsecond latency while a cold one pays one "
      "entry load per query, and the bounded executor turns overload into "
      "queueing instead of memory growth.");

  finish_trace();
  fs::remove_all(dir);
  return 0;
}
