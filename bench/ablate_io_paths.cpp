/// \file ablate_io_paths.cpp
/// \brief The three ways to move a distributed tensor to and from disk:
///   root-funnel : gather/scatter through rank 0 with the flat direct-send
///                 loops (the seed behaviour), rank 0 streams PTT1
///   tree        : same funnel, but binomial-tree gather/scatter
///                 (O(log P) root latency instead of O(P))
///   parallel    : the PTB1 chunked container — every rank pread/pwrites
///                 its own block, zero inter-rank data movement
/// TuckerMPI (Ballard, Klinvex, Kolda 2019) made exactly this layer
/// first-class because the decomposition is IO-bound at combustion scale.

#include <filesystem>

#include "bench_common.hpp"
#include "dist/grid.hpp"
#include "pario/block_file.hpp"
#include "tensor/tensor_io.hpp"
#include "util/cli.hpp"

using namespace ptucker;

namespace {

std::string tmp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct PathResult {
  double write_s = 0.0;
  double read_s = 0.0;
  double words = 0.0;     // max per-rank injected words
  std::uint64_t msgs = 0; // max per-rank injected messages
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablate_io_paths",
                       "root-funnel vs tree vs parallel-chunk tensor IO");
  args.add_int("dim", 48, "extent of every mode (order-3 tensor)");
  args.add_int("ranks", 4, "number of (thread) ranks");
  args.add_int("reps", 3, "write+read repetitions per path");
  args.parse(argc, argv);

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const int p = static_cast<int>(args.get_int("ranks"));
  const int reps = static_cast<int>(args.get_int("reps"));
  const tensor::Dims dims{dim, dim, dim};

  bench::header("Ablation: IO paths",
                "write+read a " + bench::dims_name(dims) + " DistTensor on " +
                    std::to_string(p) + " ranks");

  mps::Runtime rt(p);
  std::vector<dist::DistTensor> xs(static_cast<std::size_t>(p));
  rt.run([&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, dist::default_grid_shape(p, dims));
    dist::DistTensor x(grid, dims);
    x.fill_global([](std::span<const std::size_t> idx) {
      double v = 1.0;
      for (std::size_t i : idx) v += static_cast<double>(i % 7);
      return v;
    });
    xs[static_cast<std::size_t>(comm.rank())] = std::move(x);
  });

  const std::string funnel_file = tmp_path("ptucker_io_funnel.ptt");
  const std::string chunk_file = tmp_path("ptucker_io_chunk.ptb");

  auto run_funnel = [&](mps::RootedAlgo algo) {
    PathResult res;
    rt.reset_stats();
    rt.run([&](mps::Comm& comm) {
      auto& x = xs[static_cast<std::size_t>(comm.rank())];
      const double tw = bench::time_region(comm, [&] {
        for (int r = 0; r < reps; ++r) {
          const tensor::Tensor global = x.gather(0, algo);
          if (comm.rank() == 0) tensor::save_tensor(funnel_file, global);
          comm.barrier();  // file complete before anyone reads
        }
      });
      const double tr = bench::time_region(comm, [&] {
        for (int r = 0; r < reps; ++r) {
          tensor::Tensor global;
          if (comm.rank() == 0) global = tensor::load_tensor(funnel_file);
          const dist::DistTensor y =
              dist::DistTensor::scatter(x.grid_ptr(), global, 0, algo);
          PT_CHECK(y.local().size() == x.local().size(), "bad round trip");
        }
      });
      if (comm.rank() == 0) {
        res.write_s = tw / reps;
        res.read_s = tr / reps;
      }
    });
    res.words = rt.max_stats().words_sent() / reps;
    res.msgs = rt.max_stats().messages_sent / static_cast<std::uint64_t>(reps);
    return res;
  };

  auto run_parallel = [&] {
    PathResult res;
    rt.reset_stats();
    rt.run([&](mps::Comm& comm) {
      auto& x = xs[static_cast<std::size_t>(comm.rank())];
      const double tw = bench::time_region(comm, [&] {
        for (int r = 0; r < reps; ++r) {
          pario::write_dist_tensor(chunk_file, x);
        }
      });
      const double tr = bench::time_region(comm, [&] {
        for (int r = 0; r < reps; ++r) {
          const dist::DistTensor y =
              pario::read_dist_tensor(x.grid_ptr(), chunk_file);
          PT_CHECK(y.local().size() == x.local().size(), "bad round trip");
        }
      });
      if (comm.rank() == 0) {
        res.write_s = tw / reps;
        res.read_s = tr / reps;
      }
    });
    res.words = rt.max_stats().words_sent() / reps;
    res.msgs = rt.max_stats().messages_sent / static_cast<std::uint64_t>(reps);
    return res;
  };

  const PathResult flat = run_funnel(mps::RootedAlgo::Flat);
  const PathResult tree = run_funnel(mps::RootedAlgo::Tree);
  const PathResult chunk = run_parallel();

  util::Table table({"path", "write(s)", "read(s)", "words/rank(max)",
                     "msgs/rank(max)"});
  auto row = [&](const char* name, const PathResult& r) {
    table.add_row({name, util::Table::fmt(r.write_s, 4),
                   util::Table::fmt(r.read_s, 4), util::Table::fmt(r.words, 0),
                   std::to_string(r.msgs)});
  };
  row("root-funnel(flat)", flat);
  row("root-funnel(tree)", tree);
  row("parallel-chunk", chunk);
  std::printf("%s", table.str().c_str());
  std::printf("parallel-chunk vs flat funnel: write %.2fx, read %.2fx\n",
              flat.write_s / chunk.write_s, flat.read_s / chunk.read_s);
  bench::paper_note(
      "TuckerMPI-style parallel IO: the chunked PTB1 container moves zero "
      "words between ranks (the residual messages are barrier tokens) and "
      "removes the O(P) root latency and the full-tensor copy on rank 0; "
      "the tree funnel keeps the root copy but cuts its latency to "
      "O(log P).");

  std::filesystem::remove(funnel_file);
  std::filesystem::remove(chunk_file);
  return 0;
}
