/// \file ablate_gram_overlap.cpp
/// \brief Ablation of communication/computation overlap in the Gram ring
/// (paper Sec. IX item 2: "we can overlap communication and computation").
/// The overlapped variant keeps a window of eager ring sends in flight and
/// pre-posts the next hop's irecv, so each incoming block transfers while
/// the previous cross-Gram computes.
///
/// --smoke shrinks the sizes for CI and *asserts* bit-identical Gram
/// results between the blocking stepwise ring and the handle-driven
/// overlapped ring — the nonblocking schedule runs the same action
/// sequence, so any divergence is a transport or ordering regression.

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "dist/gram.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("ablate_gram_overlap",
                       "stepwise vs overlapped Gram ring");
  args.add_int("dim", 64, "tensor extent per mode (3-way)");
  args.add_int("ranks", 8, "number of (thread) ranks (8x1x1: Pn = 8 ring)");
  args.add_flag("smoke", "small sizes + bit-identity assertion (CI)");
  args.parse(argc, argv);

  const bool smoke = args.get_flag("smoke");
  const std::size_t dim =
      smoke ? 32 : static_cast<std::size_t>(args.get_int("dim"));
  const int p = smoke ? 4 : static_cast<int>(args.get_int("ranks"));
  const int reps = smoke ? 1 : 5;
  const tensor::Dims dims{dim, dim, dim};
  // All ranks in one processor column: the worst case for ring latency and
  // therefore the best case for overlap.
  const std::vector<int> shape{p, 1, 1};

  bench::header("Ablation: Gram ring overlap",
                "mode-0 Gram of " + bench::dims_name(dims) + " with P0 = " +
                    std::to_string(p));

  if (smoke) {
    // Every rank compares its own Gram block column element for element:
    // the overlapped ring must be bit-identical to the blocking one.
    mps::run(p, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x = data::make_low_rank(
          grid, dims, tensor::Dims{8, 8, 8}, 5, 0.01);
      const auto blocking = dist::gram(x, 0, dist::GramAlgo::FullStorage);
      const auto overlapped =
          dist::gram(x, 0, dist::GramAlgo::OverlappedRing);
      PT_CHECK(blocking.cols.size() == overlapped.cols.size(),
               "gram block-column size mismatch on rank " << comm.rank());
      for (std::size_t i = 0; i < blocking.cols.size(); ++i) {
        PT_CHECK(blocking.cols.data()[i] == overlapped.cols.data()[i],
                 "overlapped ring diverged from blocking ring at element "
                     << i << " on rank " << comm.rank());
      }
    });
    std::printf("smoke: overlapped ring bit-identical to blocking ring "
                "(P0 = %d)\n",
                p);
  }

  util::Table table({"variant", "time(s)", "speedup"});
  double t_plain = 0.0;
  for (auto algo :
       {dist::GramAlgo::FullStorage, dist::GramAlgo::OverlappedRing}) {
    double elapsed = 0.0;
    mps::run(p, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x = data::make_low_rank(
          grid, dims, tensor::Dims{8, 8, 8}, 5, 0.01);
      (void)dist::gram(x, 0, algo);  // warm-up
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < reps; ++rep) (void)dist::gram(x, 0, algo);
      });
      if (comm.rank() == 0) elapsed = t / reps;
    });
    if (algo == dist::GramAlgo::FullStorage) t_plain = elapsed;
    table.add_row({algo == dist::GramAlgo::FullStorage ? "stepwise ring"
                                                       : "overlapped ring",
                   util::Table::fmt(elapsed, 4),
                   util::Table::fmt(t_plain / elapsed, 2)});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Sec. IX: 'we can overlap communication and computation' — the "
      "handle-driven ring pre-posts the next irecv and keeps a send window "
      "in flight, hiding transfer time behind the cross-Gram gemms at the "
      "price of O(window) in-flight block copies.");
  return 0;
}
