/// \file ablate_gram_overlap.cpp
/// \brief Ablation of communication/computation overlap in the Gram ring
/// (paper Sec. IX item 2: "we can overlap communication and computation").
/// The overlapped variant posts all Pn-1 ring sends up front, so each
/// incoming block is in flight while the previous cross-Gram computes.

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "dist/gram.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("ablate_gram_overlap",
                       "stepwise vs overlapped Gram ring");
  args.add_int("dim", 64, "tensor extent per mode (3-way)");
  args.add_int("ranks", 8, "number of (thread) ranks (8x1x1: Pn = 8 ring)");
  args.parse(argc, argv);

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const int p = static_cast<int>(args.get_int("ranks"));
  const tensor::Dims dims{dim, dim, dim};
  // All ranks in one processor column: the worst case for ring latency and
  // therefore the best case for overlap.
  const std::vector<int> shape{p, 1, 1};

  bench::header("Ablation: Gram ring overlap",
                "mode-0 Gram of " + bench::dims_name(dims) + " with P0 = " +
                    std::to_string(p));

  util::Table table({"variant", "time(s)", "speedup"});
  double t_plain = 0.0;
  for (auto algo :
       {dist::GramAlgo::FullStorage, dist::GramAlgo::OverlappedRing}) {
    double elapsed = 0.0;
    mps::run(p, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x = data::make_low_rank(
          grid, dims, tensor::Dims{8, 8, 8}, 5, 0.01);
      (void)dist::gram(x, 0, algo);  // warm-up
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < 5; ++rep) (void)dist::gram(x, 0, algo);
      });
      if (comm.rank() == 0) elapsed = t / 5.0;
    });
    if (algo == dist::GramAlgo::FullStorage) t_plain = elapsed;
    table.add_row({algo == dist::GramAlgo::FullStorage ? "stepwise ring"
                                                       : "overlapped ring",
                   util::Table::fmt(elapsed, 4),
                   util::Table::fmt(t_plain / elapsed, 2)});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Sec. IX: 'we can overlap communication and computation' — with eager "
      "sends, posting the whole ring up front hides transfer time behind "
      "the cross-Gram gemms at the price of Pn-1 in-flight block copies.");
  return 0;
}
