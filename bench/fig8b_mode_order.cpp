/// \file fig8b_mode_order.cpp
/// \brief Reproduces Fig. 8b: ST-HOSVD run time across mode-processing
/// orders for a tensor whose first mode is 10x smaller than the rest
/// (paper: 25x250x250x250 -> 10x10x100x100 on a 2x2x2x2 grid; the optimal
/// order starts with the *second* dimension, beating the greedy
/// smallest-first heuristic).

#include <algorithm>
#include <numeric>

#include "bench_common.hpp"
#include "core/st_hosvd.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("fig8b_mode_order",
                       "ST-HOSVD time across mode orderings");
  args.add_double("scale", 0.4, "scale vs the paper's 25x250^3 tensor");
  args.add_int("ranks", 16, "number of (thread) ranks (2x2x2x2 grid)");
  args.parse(argc, argv);

  const double scale = args.get_double("scale");
  auto scaled = [&](std::size_t v) {
    return std::max<std::size_t>(4, static_cast<std::size_t>(v * scale));
  };
  const tensor::Dims dims{scaled(25), scaled(250), scaled(250), scaled(250)};
  const tensor::Dims ranks{scaled(10), scaled(10), scaled(100), scaled(100)};
  const int p = static_cast<int>(args.get_int("ranks"));
  PT_REQUIRE(p == 16, "fig8b uses the paper's 2x2x2x2 grid (16 ranks)");
  const std::vector<int> shape{2, 2, 2, 2};

  bench::header("Fig. 8b", "mode-order sweep, " + bench::dims_name(dims) +
                               " -> " + bench::dims_name(ranks) +
                               " on a 2x2x2x2 grid");

  std::vector<int> order{0, 1, 2, 3};
  struct Result {
    std::vector<int> order;
    double total = 0.0;
    double gram = 0.0;
    double evecs = 0.0;
    double ttm = 0.0;
  };
  std::vector<Result> results;

  do {
    Result res;
    res.order = order;
    mps::run(p, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const dist::DistTensor x =
          data::make_low_rank(grid, dims, ranks, 9, 0.01);
      util::KernelTimers timers;
      core::SthosvdOptions opts;
      opts.fixed_ranks = ranks;
      opts.order_strategy = core::ModeOrderStrategy::Custom;
      opts.custom_order = order;
      opts.timers = &timers;
      const double t = bench::time_region(comm, [&] {
        (void)core::st_hosvd(x, opts);
      });
      if (comm.rank() == 0) {
        res.total = t;
        res.gram = timers.total("Gram");
        res.evecs = timers.total("Evecs");
        res.ttm = timers.total("TTM");
      }
    });
    results.push_back(res);
  } while (std::next_permutation(order.begin(), order.end()));

  const double best = std::min_element(results.begin(), results.end(),
                                       [](const Result& a, const Result& b) {
                                         return a.total < b.total;
                                       })
                          ->total;
  util::Table table({"order", "time(s)", "relative", "Gram(s)", "Evecs(s)",
                     "TTM(s)"});
  for (const auto& r : results) {
    std::string name;
    for (int n : r.order) name += std::to_string(n + 1);
    table.add_row({name, util::Table::fmt(r.total, 3),
                   util::Table::fmt(r.total / best, 2),
                   util::Table::fmt(r.gram, 3), util::Table::fmt(r.evecs, 3),
                   util::Table::fmt(r.ttm, 3)});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Fig. 8b: the small first dimension makes the first Gram cheap, but "
      "the optimal order starts with the mode of largest compression ratio "
      "(mode 2); spreads of ~2.5x between best and worst orders.");
  return 0;
}
