/// \file micro_local_kernels.cpp
/// \brief google-benchmark microbenchmarks for the sequential building
/// blocks: gemm, syrk, local TTM, and local Gram across modes — the kernels
/// whose efficiency determines the %%-of-peak numbers in Fig. 9.

#include <benchmark/benchmark.h>

#include "blas/blas.hpp"
#include "lapack/lapack.hpp"
#include "tensor/local_kernels.hpp"

namespace {

using ptucker::blas::Trans;
using ptucker::tensor::Dims;
using ptucker::tensor::Matrix;
using ptucker::tensor::Tensor;

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = Matrix::randn(n, n, 1);
  const Matrix b = Matrix::randn(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    ptucker::blas::gemm(Trans::No, Trans::No, n, n, n, 1.0, a.data(), n,
                        b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(384);

void BM_SyrkFullVsLower(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 256;
  const bool lower = state.range(1) == 1;
  const Matrix a = Matrix::randn(n, k, 3);
  Matrix c(n, n);
  for (auto _ : state) {
    if (lower) {
      ptucker::blas::syrk_lower(Trans::No, n, k, 1.0, a.data(), n, 0.0,
                                c.data(), n);
      ptucker::blas::symmetrize_from_lower(n, c.data(), n);
    } else {
      ptucker::blas::syrk_full(Trans::No, n, k, 1.0, a.data(), n, 0.0,
                               c.data(), n);
    }
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SyrkFullVsLower)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1});

/// Args: (mode, path) with path 0 = batched single-invocation engine,
/// 1 = the pre-batched per-right-slice gemm loop (ablation flag).
void BM_LocalTtm(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto path = state.range(1) == 0
                        ? ptucker::tensor::LocalKernelPath::Batched
                        : ptucker::tensor::LocalKernelPath::PerSlice;
  const Dims dims{48, 48, 48};
  const std::size_t k = 12;
  const Tensor y = Tensor::randn(dims, 5);
  const Matrix m = Matrix::randn(k, dims[static_cast<std::size_t>(mode)], 6);
  ptucker::tensor::set_local_kernel_path(path);
  for (auto _ : state) {
    Tensor z = ptucker::tensor::local_ttm(y, m, mode);
    benchmark::DoNotOptimize(z.data());
  }
  ptucker::tensor::set_local_kernel_path(
      ptucker::tensor::LocalKernelPath::Batched);
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(ptucker::tensor::prod(dims)) * k *
          state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LocalTtm)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

/// Args: (mode, path) as in BM_LocalTtm.
void BM_LocalGram(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto path = state.range(1) == 0
                        ? ptucker::tensor::LocalKernelPath::Batched
                        : ptucker::tensor::LocalKernelPath::PerSlice;
  const Dims dims{48, 48, 48};
  const Tensor y = Tensor::randn(dims, 7);
  ptucker::tensor::set_local_kernel_path(path);
  for (auto _ : state) {
    Matrix s = ptucker::tensor::local_gram(y, mode);
    benchmark::DoNotOptimize(s.data());
  }
  ptucker::tensor::set_local_kernel_path(
      ptucker::tensor::LocalKernelPath::Batched);
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(dims[static_cast<std::size_t>(mode)]) *
          static_cast<double>(ptucker::tensor::prod(dims)) *
          state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LocalGram)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

/// The symmetric local Gram (packed syrk_lower_batch_strided + tiled
/// symmetrize) vs the full-storage batched gemm, interior mode.
void BM_LocalGramSym(benchmark::State& state) {
  const bool sym = state.range(0) == 1;
  const Dims dims{48, 48, 48};
  const Tensor y = Tensor::randn(dims, 8);
  for (auto _ : state) {
    Matrix s = sym ? ptucker::tensor::local_gram_sym(y, 1)
                   : ptucker::tensor::local_gram(y, 1);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_LocalGramSym)->Arg(0)->Arg(1);

void BM_Eig(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix g = Matrix::randn(n, n, 9);
  Matrix s(n, n);
  ptucker::blas::syrk_full(Trans::No, n, n, 1.0, g.data(), n, 0.0, s.data(),
                           n);
  for (auto _ : state) {
    auto eig = ptucker::la::eig_sym(s.data(), n, n);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_Eig)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
