/// \file ablate_hooi_iters.cpp
/// \brief Ablation of the HOOI iteration count: the paper observes (Tab. II
/// discussion) that "HOOI iterations make little improvement on the
/// ST-HOSVD initialization" for combustion data. We measure the error after
/// each sweep and its cost, for a DNS surrogate and for an adversarial
/// random-ranks case where HOOI genuinely helps.

#include "bench_common.hpp"
#include "core/hooi.hpp"
#include "data/combustion.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

namespace {

void run_case(const std::string& label, int p,
              const std::function<dist::DistTensor(
                  std::shared_ptr<mps::CartGrid>)>& make,
              const tensor::Dims& dims, core::SthosvdOptions init) {
  std::printf("--- %s ---\n", label.c_str());
  util::Table table({"sweeps", "rel error", "improvement", "time(s)"});
  mps::run(p, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, dist::default_grid_shape(p, dims));
    const dist::DistTensor x = make(grid);
    core::HooiOptions opts;
    opts.max_sweeps = 4;
    opts.improvement_tol = 0.0;  // run all sweeps
    util::Timer timer;
    const auto result = core::hooi(x, init, opts);
    const double total = timer.seconds();
    if (comm.rank() == 0) {
      const auto& hist = result.error_history;
      for (std::size_t i = 0; i < hist.size(); ++i) {
        const double improvement =
            (i == 0) ? 0.0 : hist[i - 1] - hist[i];
        table.add_row({i == 0 ? "init (ST-HOSVD)" : std::to_string(i),
                       util::Table::fmt_sci(hist[i], 4),
                       i == 0 ? "-" : util::Table::fmt_sci(improvement, 2),
                       i == 0 ? "-"
                              : util::Table::fmt(total *
                                                     static_cast<double>(i) /
                                                     static_cast<double>(
                                                         hist.size() - 1),
                                                 2)});
      }
      std::printf("%s\n", table.str().c_str());
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablate_hooi_iters",
                       "HOOI error improvement per sweep vs cost");
  args.add_double("scale", 0.035, "combustion dataset scale");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.parse(argc, argv);

  bench::header("Ablation: HOOI sweeps", "does iterating beyond ST-HOSVD pay?");
  const int p = static_cast<int>(args.get_int("ranks"));

  // Case 1: combustion surrogate at a practical threshold (paper's setting).
  const auto spec =
      data::combustion_spec(data::CombustionPreset::HCCI,
                            args.get_double("scale"));
  core::SthosvdOptions init1;
  init1.epsilon = 1e-3;
  run_case("HCCI surrogate, eps = 1e-3", p,
           [&](std::shared_ptr<mps::CartGrid> grid) {
             dist::DistTensor x = data::make_combustion(grid, spec);
             data::normalize_species(x, spec.species_mode);
             return x;
           },
           spec.dims, init1);

  // Case 2: aggressive truncation of a noisy low-rank tensor — the regime
  // where alternating optimization visibly improves the subspaces.
  const tensor::Dims dims{40, 40, 40};
  core::SthosvdOptions init2;
  init2.fixed_ranks = {3, 3, 3};
  run_case("noisy low-rank tensor, ranks fixed at (3,3,3)", p,
           [&](std::shared_ptr<mps::CartGrid> grid) {
             return data::make_low_rank(grid, dims, tensor::Dims{8, 8, 8}, 7,
                                        0.3);
           },
           dims, init2);

  bench::paper_note(
      "Tab. II: HOOI changes the error only in the 4th digit for the "
      "combustion datasets — 'simply performing ST-HOSVD is likely "
      "sufficient for this application area'. Aggressive truncation is "
      "where HOOI earns its cost.");
  return 0;
}
