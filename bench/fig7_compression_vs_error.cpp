/// \file fig7_compression_vs_error.cpp
/// \brief Reproduces Fig. 7: compression ratio vs max normalized RMS error
/// for HCCI, TJLR, and SP (paper: TJLR least compressible, C = 2..37; SP
/// most compressible, C = 5..5600).

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/reconstruct.hpp"
#include "core/st_hosvd.hpp"
#include "data/combustion.hpp"
#include "data/normalize.hpp"
#include "dist/grid.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("fig7_compression_vs_error",
                       "compression vs error for all three datasets");
  args.add_double("scale", 0.045, "dataset scale factor");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.parse(argc, argv);

  bench::header("Fig. 7", "compression ratio vs max normalized RMS error");
  const double scale = args.get_double("scale");
  const int p = static_cast<int>(args.get_int("ranks"));

  util::Table table({"dataset", "eps=1e-6", "1e-5", "1e-4", "1e-3", "1e-2"});
  for (auto preset : {data::CombustionPreset::HCCI,
                      data::CombustionPreset::TJLR,
                      data::CombustionPreset::SP}) {
    const auto spec = data::combustion_spec(preset, scale);
    std::vector<std::string> row = {data::preset_name(preset)};
    mps::run(p, [&](mps::Comm& comm) {
      auto grid =
          dist::make_grid(comm, dist::default_grid_shape(p, spec.dims));
      dist::DistTensor x = data::make_combustion(grid, spec);
      data::normalize_species(x, spec.species_mode);
      for (double eps : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
        core::SthosvdOptions opts;
        opts.epsilon = eps;
        const auto result = core::st_hosvd(x, opts);
        if (comm.rank() == 0) {
          row.push_back(
              util::Table::fmt(result.tucker.compression_ratio(), 1));
        }
      }
    });
    table.add_row(row);
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Fig. 7 (full-size data): TJLR 2 -> 37, HCCI intermediate (25 at "
      "1e-3), SP 5 -> 5600. Reproduction target: SP >> HCCI >> TJLR at every "
      "eps, with ratios growing steeply as eps loosens.");
  return 0;
}
