/// \file ablate_ttm_paths.cpp
/// \brief Two TTM ablations:
///
///  (1) the Sec. V-B design choice: the paper's blocked Alg. 3 (Pn reduces,
///      bounded temporaries) vs the single-multiply + reduce-scatter fast
///      path (fewer messages, larger temporary), sweeping the output extent
///      K across the K = Jn/Pn threshold the paper uses to switch; and
///  (2) the local-kernel engine: the batched single-invocation path
///      (gemm_batch_strided — shared packed factor panels, threading on
///      aggregate flops) vs the pre-batched per-right-slice gemm loop, on
///      shapes whose slices are small (mode 0 of a cube has left = 1, i.e.
///      thousands of rank-1-row multiplies under the per-slice policy).
///
/// --smoke shrinks the sizes for CI and *asserts* that both local paths
/// produce bit-identical outputs, so kernel regressions fail the job.

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "dist/ttm.hpp"
#include "tensor/local_kernels.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace ptucker;

namespace {

double time_local_ttm(const tensor::Tensor& y, const tensor::Matrix& m,
                      int mode, tensor::LocalKernelPath path, int reps,
                      tensor::Tensor& out) {
  tensor::set_local_kernel_path(path);
  tensor::local_ttm_into(y, m, mode, out);  // warm-up + result capture
  util::Timer timer;
  for (int rep = 0; rep < reps; ++rep) {
    tensor::local_ttm_into(y, m, mode, out);
  }
  const double t = timer.seconds() / reps;
  tensor::set_local_kernel_path(tensor::LocalKernelPath::Batched);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablate_ttm_paths",
                       "blocked Alg. 3 vs reduce-scatter TTM, and "
                       "batched vs per-slice local kernels");
  args.add_int("dim", 64, "tensor extent per mode for the distributed sweep");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.add_int("local_dim", 128, "extent per mode for the local-path table");
  args.add_int("local_k", 12, "output extent K for the local-path table");
  args.add_flag("smoke", "small sizes + bit-identity assertions (CI)");
  args.parse(argc, argv);

  const bool smoke = args.get_flag("smoke");
  const std::size_t dim =
      smoke ? 24 : static_cast<std::size_t>(args.get_int("dim"));
  const std::size_t local_dim =
      smoke ? 48 : static_cast<std::size_t>(args.get_int("local_dim"));
  const std::size_t local_k = static_cast<std::size_t>(args.get_int("local_k"));
  const int p = static_cast<int>(args.get_int("ranks"));
  const int reps = smoke ? 1 : 3;

  // --- (2) local engine: batched vs per-slice ------------------------------
  {
    const tensor::Dims ldims{local_dim, local_dim, local_dim};
    bench::header("Ablation: local TTM path",
                  bench::dims_name(ldims) + " x_n M (K = " +
                      std::to_string(local_k) + "), single rank");
    util::Table table({"mode", "slices", "per-slice(s)", "batched(s)",
                       "speedup"});
    const tensor::Tensor y = tensor::Tensor::randn(ldims, 42);
    for (int mode = 0; mode < 3; ++mode) {
      const tensor::UnfoldShape s = tensor::unfold_shape(ldims, mode);
      const tensor::Matrix m =
          tensor::Matrix::randn(local_k, ldims[static_cast<std::size_t>(mode)],
                                7 + static_cast<std::uint64_t>(mode));
      tensor::Dims zdims = ldims;
      zdims[static_cast<std::size_t>(mode)] = local_k;
      tensor::Tensor z_slice(zdims);
      tensor::Tensor z_batch(zdims);
      const double t_slice = time_local_ttm(
          y, m, mode, tensor::LocalKernelPath::PerSlice, reps, z_slice);
      const double t_batch = time_local_ttm(
          y, m, mode, tensor::LocalKernelPath::Batched, reps, z_batch);
      if (smoke) {
        for (std::size_t i = 0; i < z_slice.size(); ++i) {
          PT_CHECK(z_slice[i] == z_batch[i],
                   "local TTM paths diverged at element " << i << " mode "
                                                          << mode);
        }
      }
      table.add_row({std::to_string(mode), std::to_string(s.right),
                     util::Table::fmt(t_slice, 4),
                     util::Table::fmt(t_batch, 4),
                     util::Table::fmt(t_slice / t_batch, 2)});
    }
    std::printf("%s", table.str().c_str());
    bench::paper_note(
        "the per-slice policy issues one gemm per right-slice ('multiple "
        "subroutine calls to respect the local layout'), applied uniformly "
        "here: for mode 0 the slices are single rows, so call overhead, "
        "per-call factor packing and microkernel padding dominate (the "
        "pre-batched code special-cased left == 1 to a single gemm — the "
        "batched engine generalizes that collapse to every mode). Interior "
        "modes are near parity single-core; their batched win is the "
        "aggregate-flop threading decision. Bit-identical results on every "
        "path.");
  }

  // --- (1) distributed: blocked Alg. 3 vs reduce-scatter -------------------
  const tensor::Dims dims{dim, dim, dim};
  const std::vector<int> shape{2, 2, 2};
  PT_REQUIRE(p == 8, "ablation uses a fixed 2x2x2 grid (8 ranks)");

  bench::header("Ablation: TTM paths",
                bench::dims_name(dims) + " x_0 M, K sweep on a 2x2x2 grid");

  util::Table table({"K", "blocked(s)", "blocked words/rank", "rs(s)",
                     "rs words/rank", "auto picks"});
  for (std::size_t k : {dim / 16, dim / 8, dim / 4, dim / 2, dim}) {
    if (k == 0) continue;
    double t_blocked = 0.0;
    double t_rs = 0.0;
    double w_blocked = 0.0;
    double w_rs = 0.0;
    mps::Runtime rt(p);
    std::vector<dist::DistTensor> xs(static_cast<std::size_t>(p));
    rt.run([&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      xs[static_cast<std::size_t>(comm.rank())] = data::make_low_rank(
          grid, dims, tensor::Dims{8, 8, 8}, 3, 0.01);
    });
    const tensor::Matrix m = tensor::Matrix::randn(k, dim, 7);

    rt.reset_stats();
    rt.run([&](mps::Comm& comm) {
      auto& x = xs[static_cast<std::size_t>(comm.rank())];
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < reps; ++rep) {
          (void)dist::ttm(x, m, 0, dist::TtmAlgo::Blocked);
        }
      });
      if (comm.rank() == 0) t_blocked = t / reps;
    });
    w_blocked = rt.max_stats().words_sent() / reps;

    rt.reset_stats();
    rt.run([&](mps::Comm& comm) {
      auto& x = xs[static_cast<std::size_t>(comm.rank())];
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < reps; ++rep) {
          (void)dist::ttm(x, m, 0, dist::TtmAlgo::ReduceScatter);
        }
      });
      if (comm.rank() == 0) t_rs = t / reps;
    });
    w_rs = rt.max_stats().words_sent() / reps;

    const bool auto_rs = k * 2 <= dim;  // the Auto criterion for Pn = 2
    table.add_row({std::to_string(k), util::Table::fmt(t_blocked, 4),
                   util::Table::fmt(w_blocked, 0), util::Table::fmt(t_rs, 4),
                   util::Table::fmt(w_rs, 0),
                   auto_rs ? "reduce-scatter" : "blocked"});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Sec. V-B: when K < Jn/Pn the unblocked reduce-scatter path avoids "
      "the Pn-round latency at no bandwidth/compute penalty; the blocked "
      "path bounds temporary memory when K is large.");
  return 0;
}
