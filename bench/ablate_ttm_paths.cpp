/// \file ablate_ttm_paths.cpp
/// \brief Ablation of the Sec. V-B TTM design choice: the paper's blocked
/// Alg. 3 (Pn reduces, bounded temporaries) vs the single-multiply +
/// reduce-scatter fast path (fewer messages, larger temporary). Sweeps the
/// output extent K across the K = Jn/Pn threshold the paper uses to switch.

#include "bench_common.hpp"
#include "dist/grid.hpp"
#include "dist/ttm.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

using namespace ptucker;

int main(int argc, char** argv) {
  util::ArgParser args("ablate_ttm_paths",
                       "blocked Alg. 3 vs reduce-scatter TTM");
  args.add_int("dim", 64, "tensor extent per mode (3-way)");
  args.add_int("ranks", 8, "number of (thread) ranks");
  args.parse(argc, argv);

  const std::size_t dim = static_cast<std::size_t>(args.get_int("dim"));
  const int p = static_cast<int>(args.get_int("ranks"));
  const tensor::Dims dims{dim, dim, dim};
  const std::vector<int> shape{2, 2, 2};
  PT_REQUIRE(p == 8, "ablation uses a fixed 2x2x2 grid (8 ranks)");

  bench::header("Ablation: TTM paths",
                bench::dims_name(dims) + " x_0 M, K sweep on a 2x2x2 grid");

  util::Table table({"K", "blocked(s)", "blocked words/rank", "rs(s)",
                     "rs words/rank", "auto picks"});
  for (std::size_t k : {dim / 16, dim / 8, dim / 4, dim / 2, dim}) {
    double t_blocked = 0.0;
    double t_rs = 0.0;
    double w_blocked = 0.0;
    double w_rs = 0.0;
    mps::Runtime rt(p);
    std::vector<dist::DistTensor> xs(static_cast<std::size_t>(p));
    rt.run([&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      xs[static_cast<std::size_t>(comm.rank())] = data::make_low_rank(
          grid, dims, tensor::Dims{8, 8, 8}, 3, 0.01);
    });
    const tensor::Matrix m = tensor::Matrix::randn(k, dim, 7);

    rt.reset_stats();
    rt.run([&](mps::Comm& comm) {
      auto& x = xs[static_cast<std::size_t>(comm.rank())];
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < 3; ++rep) {
          (void)dist::ttm(x, m, 0, dist::TtmAlgo::Blocked);
        }
      });
      if (comm.rank() == 0) t_blocked = t / 3.0;
    });
    w_blocked = rt.max_stats().words_sent() / 3.0;

    rt.reset_stats();
    rt.run([&](mps::Comm& comm) {
      auto& x = xs[static_cast<std::size_t>(comm.rank())];
      const double t = bench::time_region(comm, [&] {
        for (int rep = 0; rep < 3; ++rep) {
          (void)dist::ttm(x, m, 0, dist::TtmAlgo::ReduceScatter);
        }
      });
      if (comm.rank() == 0) t_rs = t / 3.0;
    });
    w_rs = rt.max_stats().words_sent() / 3.0;

    const bool auto_rs = k * 2 <= dim;  // the Auto criterion for Pn = 2
    table.add_row({std::to_string(k), util::Table::fmt(t_blocked, 4),
                   util::Table::fmt(w_blocked, 0), util::Table::fmt(t_rs, 4),
                   util::Table::fmt(w_rs, 0),
                   auto_rs ? "reduce-scatter" : "blocked"});
  }
  std::printf("%s", table.str().c_str());
  bench::paper_note(
      "Sec. V-B: when K < Jn/Pn the unblocked reduce-scatter path avoids "
      "the Pn-round latency at no bandwidth/compute penalty; the blocked "
      "path bounds temporary memory when K is large.");
  return 0;
}
