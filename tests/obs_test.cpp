/// \file obs_test.cpp
/// \brief The observability layer: registry counters/gauges/histograms
/// under thread hammering, histogram bucket math against exact sorted
/// percentiles, and the bounded trace ring with its chrome://tracing
/// export. Everything here observes only — the determinism suites check
/// separately that results are bit-identical with tracing on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace ptucker {
namespace {

/// Nearest-rank percentile over a sorted sample: value at rank
/// ceil(p/100 * n), 1-based. The oracle the bucketed histogram must hit
/// within one bucket.
std::uint64_t exact_percentile(const std::vector<std::uint64_t>& sorted,
                               double p) {
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n - 1e-9));
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

TEST(Registry, CountersAccumulateAndShareCellsByName) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PTUCKER_OBS=OFF";
  obs::Counter a = obs::registry().counter("test.shared");
  obs::Counter b = obs::registry().counter("test.shared");
  const std::uint64_t before = a.value();
  a.inc();
  b.add(4);
  EXPECT_EQ(a.value(), before + 5);
  EXPECT_EQ(b.value(), a.value());
}

TEST(Registry, GaugeSetAddAndPeak) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PTUCKER_OBS=OFF";
  obs::Gauge g = obs::registry().gauge("test.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  obs::Gauge peak = obs::registry().gauge("test.gauge_peak");
  peak.record_peak(5);
  peak.record_peak(3);  // not a new high
  peak.record_peak(9);
  EXPECT_EQ(peak.value(), 9);
}

TEST(Registry, SnapshotFiltersByPrefixAndSerializes) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PTUCKER_OBS=OFF";
  obs::registry().counter("snapprefix.one").add(1);
  obs::registry().counter("snapprefix.two").add(2);
  obs::registry().counter("othersnap.three").add(3);
  const obs::Snapshot snap = obs::registry().snapshot("snapprefix.");
  EXPECT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.at("snapprefix.one"), 1u);
  EXPECT_EQ(snap.counters.count("othersnap.three"), 0u);
  const std::string text = obs::registry().snapshot().to_text();
  EXPECT_NE(text.find("snapprefix.one 1"), std::string::npos);
  const std::string json = obs::registry().snapshot().to_json();
  EXPECT_NE(json.find("\"snapprefix.two\":2"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
}

TEST(Registry, ResetZeroesButKeepsHandlesValid) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PTUCKER_OBS=OFF";
  obs::Counter c = obs::registry().counter("test.reset_me");
  c.add(42);
  obs::registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();  // the handle still points at a live cell
  EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, ConcurrentUpdatesAndSnapshotsAreConsistent) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with PTUCKER_OBS=OFF";
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  obs::Counter c = obs::registry().counter("test.hammer.counter");
  obs::Histogram h = obs::registry().histogram("test.hammer.hist");
  const std::uint64_t c0 = c.value();

  std::atomic<bool> stop{false};
  // A reader snapshotting concurrently with the writers: every observed
  // value must be monotone and <= the final total (and TSan must be quiet).
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::Snapshot s = obs::registry().snapshot("test.hammer.");
      const auto it = s.counters.find("test.hammer.counter");
      if (it != s.counters.end()) {
        EXPECT_GE(it->second, last);
        last = it->second;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Each thread also registers a name of its own: registration (mutex)
      // and updates (relaxed atomics) must interleave safely.
      obs::Counter mine = obs::registry().counter(
          "test.hammer.t" + std::to_string(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        mine.inc();
        h.record(i & 1023);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(c.value(), c0 + kThreads * kPerThread);
  EXPECT_EQ(h.data()->count(), std::uint64_t{kThreads} * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(obs::registry()
                  .counter("test.hammer.t" + std::to_string(t))
                  .value(),
              kPerThread);
  }
}

TEST(HistogramBuckets, PartitionTheValueRange) {
  // Buckets tile [0, 2^64): every bucket's hi is the next bucket's lo, and
  // bucket_of(v) lands v inside [lo, hi).
  for (int b = 0; b + 1 < obs::HistogramData::kBuckets; ++b) {
    EXPECT_EQ(obs::HistogramData::bucket_hi(b),
              obs::HistogramData::bucket_lo(b + 1))
        << "gap after bucket " << b;
  }
  util::Rng rng(99);
  std::vector<std::uint64_t> probes = {0,  1,  7,  8,  9,  1023,
                                       1024, 1025, ~std::uint64_t{0}};
  for (int i = 0; i < 1000; ++i) {
    probes.push_back(rng.engine()() >> (i % 60));
  }
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  for (std::uint64_t v : probes) {
    const int b = obs::HistogramData::bucket_of(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, obs::HistogramData::kBuckets);
    EXPECT_GE(v, obs::HistogramData::bucket_lo(b));
    const std::uint64_t hi = obs::HistogramData::bucket_hi(b);
    // The top bucket's saturated bound is inclusive (2^64 - 1 itself).
    EXPECT_TRUE(v < hi || (v == kMax && hi == kMax)) << "v=" << v;
  }
}

TEST(HistogramBuckets, SmallValuesAreExact) {
  obs::HistogramData h;
  for (std::uint64_t v = 0; v < 8; ++v) h.record(v);
  // One value per exact bucket: every percentile is the sample itself + 1
  // (bucket width 1 ⇒ hi = v + 1), and min/max/sum are exact.
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_EQ(h.sum(), 28u);
  const obs::HistogramData::Bounds b = h.percentile_bounds(50.0);
  EXPECT_EQ(b.hi - b.lo, 1u);
}

TEST(HistogramPercentiles, AgreeWithExactSortWithinOneBucket) {
  obs::HistogramData h;
  util::Rng rng(4242);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    // Mix of magnitudes: sub-octave, mid-range, heavy tail.
    const std::uint64_t v =
        i % 3 == 0 ? rng.index(16)
                   : (i % 3 == 1 ? rng.index(100000)
                                 : rng.index(100000000));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::uint64_t exact = exact_percentile(values, p);
    const obs::HistogramData::Bounds b = h.percentile_bounds(p);
    EXPECT_GE(exact, b.lo) << "p" << p;
    EXPECT_LT(exact, b.hi) << "p" << p;
    EXPECT_EQ(h.percentile(p), b.hi) << "p" << p;
  }
}

TEST(Trace, InactiveSessionRecordsNothing) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with PTUCKER_OBS=OFF";
  obs::TraceSession::stop();
  {
    obs::Span span("trace_test.should_not_appear");
  }
  obs::TraceSession::start(256);
  obs::TraceSession::stop();
  for (const obs::TraceEvent& e : obs::TraceSession::events()) {
    EXPECT_STRNE(e.name, "trace_test.should_not_appear");
  }
}

TEST(Trace, RecordsNestedSpansWithContainment) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with PTUCKER_OBS=OFF";
  obs::TraceSession::start(256);
  {
    obs::Span outer("trace_test.outer", 7);
    {
      obs::Span inner("trace_test.inner");
    }
  }
  obs::TraceSession::stop();
  const std::vector<obs::TraceEvent> events = obs::TraceSession::events();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: the inner span ends (and is recorded) first.
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "trace_test.inner");
  EXPECT_STREQ(outer.name, "trace_test.outer");
  EXPECT_EQ(outer.arg, 7);
  EXPECT_EQ(inner.arg, -1);
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_EQ(inner.rank, -1);  // recorded outside any mps rank

  const std::string json = obs::TraceSession::chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"trace_test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, RingBoundsEventsAndCountsDrops) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with PTUCKER_OBS=OFF";
  constexpr std::size_t kCapacity = 64;
  obs::TraceSession::start(kCapacity);
  for (int i = 0; i < 200; ++i) {
    obs::Span span("trace_test.flood", i);
  }
  obs::TraceSession::stop();
  EXPECT_EQ(obs::TraceSession::events().size(), kCapacity);
  EXPECT_EQ(obs::TraceSession::dropped(), 200 - kCapacity);
  // A restart discards the old ring and its drop count.
  obs::TraceSession::start(kCapacity);
  obs::TraceSession::stop();
  EXPECT_EQ(obs::TraceSession::events().size(), 0u);
  EXPECT_EQ(obs::TraceSession::dropped(), 0u);
}

TEST(Trace, ConcurrentRecordersGetDistinctThreadIds) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with PTUCKER_OBS=OFF";
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  obs::TraceSession::start(1 << 14);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::Span span("trace_test.mt", i);
      }
    });
  }
  for (auto& th : threads) th.join();
  obs::TraceSession::stop();
  const std::vector<obs::TraceEvent> events = obs::TraceSession::events();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(obs::TraceSession::dropped(), 0u);
  std::vector<std::uint32_t> tids;
  for (const obs::TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace ptucker
