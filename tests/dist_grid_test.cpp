#include <gtest/gtest.h>

#include <thread>

#include "blas/blas.hpp"
#include "dist/grid.hpp"
#include "test_utils.hpp"

namespace ptucker {
namespace {

using tensor::Dims;
using testing::run_ranks;

/// Focused coverage of the dist grid facade: shape validation, the
/// default-shape heuristic, and the sub-communicator invariants the Gram /
/// TTM kernels rely on.

TEST(MakeGrid, SubCommunicatorSizesAndCoordinates) {
  run_ranks(12, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {3, 2, 2});
    ASSERT_EQ(grid->order(), 3);
    int p = 1;
    for (int n = 0; n < 3; ++n) p *= grid->extent(n);
    EXPECT_EQ(p, 12);
    for (int n = 0; n < 3; ++n) {
      // Processor column: size Pn, my rank there == my coordinate.
      EXPECT_EQ(grid->mode_comm(n).size(), grid->extent(n));
      EXPECT_EQ(grid->mode_comm(n).rank(), grid->coord(n));
      // Processor row: the complementary size.
      EXPECT_EQ(grid->slice_comm(n).size(), 12 / grid->extent(n));
    }
    // Round trip rank <-> coordinates.
    EXPECT_EQ(grid->rank_of(grid->coords()), comm.rank());
  });
}

TEST(MakeGrid, RejectsWrongProduct) {
  EXPECT_THROW(run_ranks(4,
                         [](mps::Comm& comm) {
                           (void)dist::make_grid(comm, {2, 3});
                         }),
               InvalidArgument);
}

TEST(MakeGrid, RejectsNonPositiveExtent) {
  EXPECT_THROW(run_ranks(2,
                         [](mps::Comm& comm) {
                           (void)dist::make_grid(comm, {2, 0});
                         }),
               InvalidArgument);
}

TEST(MakeGrid, SingleRankSingleMode) {
  run_ranks(1, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {1});
    EXPECT_EQ(grid->order(), 1);
    EXPECT_EQ(grid->comm().size(), 1);
    (void)comm;
  });
}

TEST(DefaultGridShape, ProductAndOrderAlwaysMatch) {
  const Dims dims{100, 90, 80};
  for (int p : {1, 2, 3, 4, 6, 7, 8, 12, 16, 17}) {
    const auto shape = dist::default_grid_shape(p, dims);
    ASSERT_EQ(shape.size(), dims.size()) << "p = " << p;
    int product = 1;
    for (int e : shape) {
      EXPECT_GE(e, 1);
      product *= e;
    }
    EXPECT_EQ(product, p) << "p = " << p;
  }
}

TEST(DefaultGridShape, PrefersUnitFirstExtent) {
  // Paper Sec. VIII-B: the first (most expensive) mode should stay whole
  // whenever a factorization with P1 = 1 exists.
  for (int p : {2, 4, 8, 12}) {
    const auto shape = dist::default_grid_shape(p, Dims{64, 64, 64});
    EXPECT_EQ(shape[0], 1) << "p = " << p;
  }
}

TEST(DefaultGridShape, WorksForPrimeRankCounts) {
  const auto shape = dist::default_grid_shape(13, Dims{40, 40});
  int product = 1;
  for (int e : shape) product *= e;
  EXPECT_EQ(product, 13);
}

TEST(DefaultGridShape, UsableByMakeGrid) {
  const Dims dims{9, 7, 5};
  run_ranks(6, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, dist::default_grid_shape(6, dims));
    EXPECT_EQ(grid->comm().size(), 6);
    (void)comm;
  });
}

TEST(MakeGrid, AutoTunesGemmThreadsToSpareCores) {
  // Grid construction hands the idle cores to the local BLAS:
  // max(1, hardware_threads / ranks). Re-arm the auto-tune first (and on
  // exit) so this test is independent of suite ordering.
  blas::reset_gemm_threads();
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  run_ranks(2, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 1});
    (void)grid;
    EXPECT_EQ(blas::gemm_threads(), std::max(1, hw / 2));
    (void)comm;
  });
  // An explicit user setting always wins over later grid constructions.
  blas::set_gemm_threads(3);
  run_ranks(2, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {1, 2});
    (void)grid;
    EXPECT_EQ(blas::gemm_threads(), 3);
    (void)comm;
  });
  blas::reset_gemm_threads();
}

}  // namespace
}  // namespace ptucker
