#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/query.hpp"
#include "core/reconstruct.hpp"
#include "core/seq/seq_tucker.hpp"
#include "core/st_hosvd.hpp"
#include "core/streaming.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "serve/query_server.hpp"
#include "test_utils.hpp"

namespace ptucker {
namespace {

using core::CompressedQuery;
using core::TuckerTensor;
using dist::DistTensor;
using tensor::Dims;
using tensor::Tensor;
using testing::run_ranks;

TuckerTensor make_model(std::shared_ptr<mps::CartGrid> grid, const Dims& dims,
                        const Dims& ranks, std::uint64_t seed) {
  const DistTensor x = data::make_low_rank(grid, dims, ranks, seed, 0.05);
  core::SthosvdOptions opts;
  opts.epsilon = 1e-3;
  return core::st_hosvd(x, opts).tucker;
}

TEST(Query, ElementMatchesReconstruction) {
  run_ranks(4, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 2, 1});
    const Dims dims{9, 8, 7};
    const TuckerTensor model = make_model(grid, dims, Dims{3, 3, 2}, 3);
    const CompressedQuery query(model);
    const Tensor full = core::reconstruct(model).gather(0);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < 9; i += 2) {
        for (std::size_t j = 0; j < 8; j += 3) {
          for (std::size_t k = 0; k < 7; k += 2) {
            const std::size_t idx[] = {i, j, k};
            EXPECT_NEAR(query.element(idx), full.at(idx), 1e-11)
                << "(" << i << "," << j << "," << k << ")";
          }
        }
      }
    }
  });
}

TEST(Query, EveryRankCanAnswerIdentically) {
  // After construction the query is communication-free and replicated.
  const int p = 4;
  std::vector<double> answers(static_cast<std::size_t>(p));
  run_ranks(p, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 2});
    const TuckerTensor model =
        make_model(grid, Dims{10, 8}, Dims{3, 2}, 5);
    const CompressedQuery query(model);
    const std::size_t idx[] = {7, 3};
    answers[static_cast<std::size_t>(comm.rank())] = query.element(idx);
  });
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(answers[0], answers[static_cast<std::size_t>(r)]);
  }
}

TEST(Query, FiberMatchesReconstructionColumn) {
  run_ranks(2, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 1, 1});
    const Dims dims{8, 7, 6};
    const TuckerTensor model = make_model(grid, dims, Dims{3, 2, 2}, 7);
    const CompressedQuery query(model);
    const Tensor full = core::reconstruct(model).gather(0);
    if (comm.rank() == 0) {
      for (int mode = 0; mode < 3; ++mode) {
        const std::size_t idx[] = {2, 4, 1};
        const auto fiber = query.fiber(mode, idx);
        ASSERT_EQ(fiber.size(), dims[static_cast<std::size_t>(mode)]);
        std::size_t probe[] = {2, 4, 1};
        for (std::size_t i = 0; i < fiber.size(); ++i) {
          probe[static_cast<std::size_t>(mode)] = i;
          EXPECT_NEAR(fiber[i], full.at(probe), 1e-11)
              << "mode " << mode << " position " << i;
        }
      }
    }
  });
}

TEST(Query, LocalConstructorWorksWithoutCommunication) {
  const Tensor x = data::make_low_rank_seq(Dims{8, 8, 8}, Dims{2, 2, 2}, 9);
  core::seq::SeqOptions opts;
  opts.epsilon = 1e-6;
  const auto result = core::seq::seq_st_hosvd(x, opts);
  const CompressedQuery query(result.tucker.core, result.tucker.factors);
  const std::size_t idx[] = {3, 5, 2};
  EXPECT_NEAR(query.element(idx), x.at(idx), 1e-8);
}

TEST(Query, RejectsOutOfRangeIndex) {
  const Tensor x = data::make_low_rank_seq(Dims{6, 6}, Dims{2, 2}, 11);
  core::seq::SeqOptions opts;
  const auto result = core::seq::seq_st_hosvd(x, opts);
  const CompressedQuery query(result.tucker.core, result.tucker.factors);
  const std::size_t bad[] = {6, 0};
  EXPECT_THROW((void)query.element(bad), InvalidArgument);
}

TEST(Query, RejectsWrongIndexArity) {
  const Tensor x = data::make_low_rank_seq(Dims{6, 6}, Dims{2, 2}, 13);
  core::seq::SeqOptions opts;
  const auto result = core::seq::seq_st_hosvd(x, opts);
  const CompressedQuery query(result.tucker.core, result.tucker.factors);
  const std::size_t one[] = {3};
  const std::size_t three[] = {3, 3, 3};
  EXPECT_THROW((void)query.element(one), InvalidArgument);
  EXPECT_THROW((void)query.element(three), InvalidArgument);
  EXPECT_THROW((void)query.fiber(0, one), InvalidArgument);
}

TEST(Query, RejectsOutOfRangeFiberModeAndIndex) {
  const Tensor x = data::make_low_rank_seq(Dims{6, 5}, Dims{2, 2}, 17);
  core::seq::SeqOptions opts;
  const auto result = core::seq::seq_st_hosvd(x, opts);
  const CompressedQuery query(result.tucker.core, result.tucker.factors);
  const std::size_t idx[] = {2, 2};
  EXPECT_THROW((void)query.fiber(-1, idx), InvalidArgument);
  EXPECT_THROW((void)query.fiber(2, idx), InvalidArgument);
  // A component out of range throws even when it names the fiber mode the
  // query would skip — garbage indices never silently "work".
  const std::size_t bad_other[] = {2, 5};
  EXPECT_THROW((void)query.fiber(0, bad_other), InvalidArgument);
  const std::size_t bad_skipped[] = {6, 2};
  EXPECT_THROW((void)query.fiber(0, bad_skipped), InvalidArgument);
}

/// Archive fixture for the time-range query tests: two 2-step windows of
/// a low-rank field, no normalization (exact shapes are what matters).
std::string make_time_archive(const char* name, const Dims& step_dims,
                              std::size_t windows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  run_ranks(2, [&](mps::Comm& comm) {
    std::vector<int> shape(step_dims.size() + 1, 1);
    shape[0] = 2;
    auto grid = dist::make_grid(comm, shape);
    pario::archive_create(path, comm, step_dims, -1, 8);
    for (std::size_t w = 0; w < windows; ++w) {
      Dims dims = step_dims;
      dims.push_back(2);
      const DistTensor x = data::make_low_rank(
          grid, dims, Dims(dims.size(), 2), 41 + w, 0.0);
      core::SthosvdOptions opts;
      opts.epsilon = 1e-6;
      const auto result = core::st_hosvd(x, opts);
      pario::archive_append_model(
          path, 2 * w, 1e-6, result.tucker.core,
          std::span<const tensor::Matrix>(result.tucker.factors));
    }
  });
  return path;
}

TEST(TimeRangeQuery, OutOfRangeStepsThrow) {
  const Dims step_dims{5, 4, 3};
  const std::string path =
      make_time_archive("ptucker_trq_oob.pta", step_dims, 2);
  serve::ServerOptions opts;
  opts.executor_threads = 0;
  const serve::QueryServer server({path}, opts);
  EXPECT_EQ(server.num_steps(0), 4u);
  // Past the archived end, through every route.
  EXPECT_THROW((void)server.time_range(0, 2, 5), InvalidArgument);
  EXPECT_THROW((void)server.time_range(0, 4, 5), InvalidArgument);
  const std::size_t idx[] = {0, 0, 0};
  EXPECT_THROW((void)server.element(0, 4, idx), InvalidArgument);
  run_ranks(1, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {1, 1, 1, 1});
    const core::StreamingReconstructor recon(path);
    EXPECT_THROW((void)recon.reconstruct_steps(grid, 2, 5),
                 InvalidArgument);
  });
  std::filesystem::remove(path);
}

TEST(TimeRangeQuery, InvertedAndEmptyRangesThrow) {
  const Dims step_dims{5, 4, 3};
  const std::string path =
      make_time_archive("ptucker_trq_inv.pta", step_dims, 2);
  serve::ServerOptions opts;
  opts.executor_threads = 0;
  const serve::QueryServer server({path}, opts);
  EXPECT_THROW((void)server.time_range(0, 2, 2), InvalidArgument);
  EXPECT_THROW((void)server.time_range(0, 3, 1), InvalidArgument);
  // An inverted or out-of-bounds spatial box throws too.
  serve::Request req{0, 0, 2, {{3, 2}, {0, 4}, {0, 3}}};
  EXPECT_THROW((void)server.subtensor(req), InvalidArgument);
  req.box = {{0, 6}, {0, 4}, {0, 3}};
  EXPECT_THROW((void)server.subtensor(req), InvalidArgument);
  req.box = {{0, 5}, {0, 4}};  // wrong arity
  EXPECT_THROW((void)server.subtensor(req), InvalidArgument);
  std::filesystem::remove(path);
}

TEST(TimeRangeQuery, WindowBoundarySpanMatchesSingleEntryAnswers) {
  const Dims step_dims{5, 4, 3};
  const std::string path =
      make_time_archive("ptucker_trq_span.pta", step_dims, 2);
  serve::ServerOptions opts;
  opts.executor_threads = 0;
  const serve::QueryServer server({path}, opts);
  // [1, 3) straddles the entry boundary at step 2. The stitched answer
  // must equal the two single-entry answers laid side by side, bit for
  // bit — stitching adds nothing and loses nothing.
  const Tensor span = server.time_range(0, 1, 3);
  const Tensor left = server.time_range(0, 1, 2);
  const Tensor right = server.time_range(0, 2, 3);
  ASSERT_EQ(span.size(), left.size() + right.size());
  EXPECT_EQ(std::memcmp(span.data(), left.data(),
                        left.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(span.data() + left.size(), right.data(),
                        right.size() * sizeof(double)),
            0);
  // And it bit-matches the distributed query path on one rank.
  Tensor want;
  run_ranks(1, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {1, 1, 1, 1});
    const core::StreamingReconstructor recon(path);
    want = recon.reconstruct_steps(grid, 1, 3).local();
  });
  ASSERT_EQ(span.dims(), want.dims());
  EXPECT_EQ(std::memcmp(span.data(), want.data(),
                        span.size() * sizeof(double)),
            0);
  std::filesystem::remove(path);
}

TEST(TimeRangeQuery, UncommittedTailEntriesAreInvisible) {
  const Dims step_dims{5, 4, 3};
  const std::string path =
      make_time_archive("ptucker_trq_tail.pta", step_dims, 2);
  // Roll the commit point back to one entry: the second entry's table
  // slot and payload bytes are still in the file, but uncommitted — every
  // query path must treat the archive as 2 steps long.
  {
    std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
    const std::uint64_t one = 1;
    // count field offset: magic + u64 * (version, order, 3 step dims,
    // species_mode, capacity) = 4 + 8 * 7 (see archive_io.hpp).
    fs.seekp(4 + 8 * 7);
    fs.write(reinterpret_cast<const char*>(&one), sizeof(one));
  }
  serve::ServerOptions opts;
  opts.executor_threads = 0;
  const serve::QueryServer server({path}, opts);
  EXPECT_EQ(server.num_steps(0), 2u);
  EXPECT_THROW((void)server.time_range(0, 0, 4), InvalidArgument);
  EXPECT_THROW((void)server.time_range(0, 2, 3), InvalidArgument);
  // The committed entry still answers, bit-matching the oracle.
  const Tensor got = server.time_range(0, 0, 2);
  Tensor want;
  run_ranks(1, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {1, 1, 1, 1});
    const core::StreamingReconstructor recon(path);
    EXPECT_EQ(recon.num_steps(), 2u);
    want = recon.reconstruct_steps(grid, 0, 2).local();
  });
  ASSERT_EQ(got.dims(), want.dims());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(double)),
            0);
  std::filesystem::remove(path);
}

TEST(GramOverlap, OverlappedRingMatchesDefault) {
  run_ranks(8, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {4, 2, 1});
    const DistTensor x =
        data::make_low_rank(grid, Dims{8, 8, 6}, Dims{3, 3, 3}, 13, 0.1);
    for (int mode = 0; mode < 3; ++mode) {
      const auto plain = dist::gram(x, mode, dist::GramAlgo::FullStorage);
      const auto overlapped =
          dist::gram(x, mode, dist::GramAlgo::OverlappedRing);
      EXPECT_EQ(plain.range.lo, overlapped.range.lo);
      EXPECT_LT(testing::max_diff(plain.cols, overlapped.cols), 1e-12)
          << "mode " << mode;
    }
  });
}

TEST(GramOverlap, SthosvdWithOverlapMatchesDefault) {
  run_ranks(4, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 2, 1});
    const DistTensor x =
        data::make_low_rank(grid, Dims{8, 7, 6}, Dims{3, 3, 3}, 15, 0.1);
    core::SthosvdOptions a;
    a.epsilon = 0.2;
    core::SthosvdOptions b = a;
    b.gram_algo = dist::GramAlgo::OverlappedRing;
    const auto ra = core::st_hosvd(x, a);
    const auto rb = core::st_hosvd(x, b);
    EXPECT_EQ(ra.tucker.core_dims(), rb.tucker.core_dims());
    EXPECT_NEAR(ra.tucker.core.norm_squared(), rb.tucker.core.norm_squared(),
                1e-9 * (1.0 + ra.tucker.core.norm_squared()));
  });
}

}  // namespace
}  // namespace ptucker
