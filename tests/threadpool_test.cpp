#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "blas/blas.hpp"
#include "blas/threadpool.hpp"
#include "util/rng.hpp"

namespace ptucker {
namespace {

TEST(ThreadPool, RunsEveryPartExactlyOnce) {
  blas::ThreadPool pool;
  for (int parts : {1, 2, 3, 8}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(parts));
    for (auto& h : hits) h.store(0);
    pool.run(parts, [&](int part) {
      hits[static_cast<std::size_t>(part)].fetch_add(1);
    });
    for (int p = 0; p < parts; ++p) {
      EXPECT_EQ(hits[static_cast<std::size_t>(p)].load(), 1)
          << "parts=" << parts << " part=" << p;
    }
  }
  // Workers grew to the high-water mark and stayed.
  EXPECT_EQ(pool.workers(), 7);
}

TEST(ThreadPool, PartZeroRunsOnTheCaller) {
  blas::ThreadPool pool;
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id part0;
  pool.run(4, [&](int part) {
    if (part == 0) part0 = std::this_thread::get_id();
  });
  EXPECT_EQ(part0, caller);
  EXPECT_FALSE(blas::ThreadPool::in_worker());
}

TEST(ThreadPool, WorkersPersistAcrossKernelCalls) {
  // The point of the pool: a batch of large gemms must not spawn threads
  // per call. Prime one threaded call, snapshot the global spawn counter,
  // then hammer the kernel — the counter must not move.
  blas::set_gemm_threads(3);
  const std::size_t n = 160;  // 2n^3 > 4e6: threading engages
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  std::vector<double> c(n * n);
  util::Rng rng(7);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);
  blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, a.data(), n,
             b.data(), n, 0.0, c.data(), n);
  const std::uint64_t spawned = blas::ThreadPool::workers_spawned();
  EXPECT_GE(spawned, 2u);  // the priming call created this thread's workers
  for (int rep = 0; rep < 20; ++rep) {
    blas::gemm(blas::Trans::No, blas::Trans::No, n, n, n, 1.0, a.data(), n,
               b.data(), n, 0.0, c.data(), n);
  }
  EXPECT_EQ(blas::ThreadPool::workers_spawned(), spawned)
      << "kernel calls after the first must reuse the persistent workers";
  blas::set_gemm_threads(1);
}

TEST(ThreadPool, GrowingThePoolBetweenJobsKeepsJoinsExact) {
  // Regression: workers spawned *after* earlier jobs ran (generation > 0)
  // must adopt the current generation before run() proceeds — a worker
  // starting from generation 0 would consume a stale job and decrement the
  // join counter early, releasing run() while parts still execute.
  blas::ThreadPool pool;
  for (int round = 0; round < 100; ++round) {
    for (int parts : {2, 5, 3, 8}) {  // growth happens mid-sequence, gen > 0
      std::atomic<int> sum{0};
      pool.run(parts, [&](int part) { sum.fetch_add(part + 1); });
      ASSERT_EQ(sum.load(), parts * (parts + 1) / 2)
          << "round " << round << " parts " << parts;
    }
  }
}

TEST(ThreadPool, PropagatesExceptionsAfterJoin) {
  blas::ThreadPool pool;
  EXPECT_THROW(
      pool.run(4,
               [&](int part) {
                 if (part == 2) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool is still usable after a failed job.
  std::atomic<int> sum{0};
  pool.run(4, [&](int part) { sum.fetch_add(part); });
  EXPECT_EQ(sum.load(), 6);
}

TEST(ThreadPool, InWorkerFlagVisibleInsideJobs) {
  blas::ThreadPool pool;
  std::atomic<int> worker_flags{0};
  std::atomic<int> caller_flags{0};
  pool.run(3, [&](int part) {
    if (part == 0) {
      caller_flags.fetch_add(blas::ThreadPool::in_worker() ? 1 : 0);
    } else {
      worker_flags.fetch_add(blas::ThreadPool::in_worker() ? 1 : 0);
    }
  });
  EXPECT_EQ(caller_flags.load(), 0);  // part 0 is the caller, not a worker
  EXPECT_EQ(worker_flags.load(), 2);
}

}  // namespace
}  // namespace ptucker
