#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/st_hosvd.hpp"
#include "core/streaming.hpp"
#include "data/normalize.hpp"
#include "dist/grid.hpp"
#include "pario/archive_io.hpp"
#include "serve/query_server.hpp"
#include "test_utils.hpp"
#include "util/rng.hpp"

namespace ptucker {
namespace {

using dist::DistTensor;
using tensor::Dims;
using tensor::Tensor;
using testing::run_ranks;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

double field_value(std::span<const std::size_t> idx, std::size_t t) {
  double v = 0.2;
  for (std::size_t n = 0; n < idx.size(); ++n) {
    v += std::sin(0.3 * static_cast<double>(idx[n]) +
                  0.7 * static_cast<double>(n + 1) +
                  0.11 * static_cast<double>(t));
  }
  return v;
}

/// Create (truncating) an archive of \p windows x \p window steps; a
/// nonzero \p field_shift yields different archived values at the same
/// path — the "archive rewritten in place" scenario.
void build_archive(const std::string& path, const Dims& step_dims,
                   std::size_t window, std::size_t windows,
                   std::uint64_t field_shift = 0) {
  run_ranks(2, [&](mps::Comm& comm) {
    std::vector<int> shape(step_dims.size() + 1, 1);
    shape[0] = 2;
    auto grid = dist::make_grid(comm, shape);
    pario::archive_create(path, comm, step_dims, /*species_mode=*/1, 8);
    for (std::size_t w = 0; w < windows; ++w) {
      Dims dims = step_dims;
      dims.push_back(window);
      DistTensor x(grid, dims);
      x.fill_global([&](std::span<const std::size_t> idx) {
        return field_value(idx.subspan(0, idx.size() - 1),
                           field_shift + w * window + idx[idx.size() - 1]);
      });
      data::NormalizationStats stats =
          data::normalize_species(x, /*species_mode=*/1);
      core::SthosvdOptions opts;
      opts.epsilon = 1e-8;
      const auto result = core::st_hosvd(x, opts);
      pario::archive_append_model(
          path, w * window, 1e-8, result.tucker.core,
          std::span<const tensor::Matrix>(result.tucker.factors), &stats);
    }
  });
}

/// Append one more window to an existing archive (pure append: every
/// committed byte of the old entries is untouched).
void append_window(const std::string& path, const Dims& step_dims,
                   std::size_t step_first, std::size_t window) {
  run_ranks(2, [&](mps::Comm& comm) {
    std::vector<int> shape(step_dims.size() + 1, 1);
    shape[0] = 2;
    auto grid = dist::make_grid(comm, shape);
    Dims dims = step_dims;
    dims.push_back(window);
    DistTensor x(grid, dims);
    x.fill_global([&](std::span<const std::size_t> idx) {
      return field_value(idx.subspan(0, idx.size() - 1),
                         step_first + idx[idx.size() - 1]);
    });
    data::NormalizationStats stats = data::normalize_species(x, 1);
    core::SthosvdOptions opts;
    opts.epsilon = 1e-8;
    const auto result = core::st_hosvd(x, opts);
    pario::archive_append_model(
        path, step_first, 1e-8, result.tucker.core,
        std::span<const tensor::Matrix>(result.tucker.factors), &stats);
  });
}

/// A loader stamping the entry index, counting invocations.
serve::PanelCache::Loader stub_loader(std::size_t entry,
                                      std::atomic<std::size_t>* loads) {
  return [entry, loads]() {
    ++*loads;
    auto p = std::make_shared<serve::EntryPanels>();
    p->step_first = entry;
    return p;
  };
}

TEST(PanelCache, EvictsLeastRecentlyUsed) {
  serve::PanelCache cache(/*capacity=*/3, /*shards=*/1);
  std::atomic<std::size_t> loads{0};
  const auto key = [](std::size_t e) {
    return serve::PanelKey{0, 0, e};
  };
  for (std::size_t e = 0; e < 3; ++e) {
    (void)cache.get_or_load(key(e), stub_loader(e, &loads));
  }
  EXPECT_EQ(loads.load(), 3u);
  // Touch e0 so e1 becomes the least recently used...
  (void)cache.get_or_load(key(0), stub_loader(0, &loads));
  EXPECT_EQ(loads.load(), 3u);  // a hit, no load
  // ...then a fourth key must evict e1, keeping e0 and e2.
  (void)cache.get_or_load(key(3), stub_loader(3, &loads));
  const std::vector<serve::PanelKey> keys = cache.shard_keys(0);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].entry, 3u);  // most recently used first
  EXPECT_EQ(keys[1].entry, 0u);
  EXPECT_EQ(keys[2].entry, 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  // e1 is gone (reload), e2 is not.
  (void)cache.get_or_load(key(2), stub_loader(2, &loads));
  EXPECT_EQ(loads.load(), 4u);
  (void)cache.get_or_load(key(1), stub_loader(1, &loads));
  EXPECT_EQ(loads.load(), 5u);
}

TEST(PanelCache, ShardsAreIndependent) {
  // shard_of = (archive + entry) mod shards: entries alternate shards.
  serve::PanelCache cache(/*capacity=*/4, /*shards=*/2);
  ASSERT_EQ(cache.shard_count(), 2u);
  std::atomic<std::size_t> loads{0};
  for (std::size_t e = 0; e < 4; ++e) {
    const serve::PanelKey k{0, 0, e};
    EXPECT_EQ(cache.shard_of(k), e % 2);
    (void)cache.get_or_load(k, stub_loader(e, &loads));
  }
  EXPECT_EQ(cache.size(), 4u);
  // A fifth key lands in shard 0 (capacity 2) and evicts ITS oldest (e0);
  // shard 1 is untouched.
  (void)cache.get_or_load(serve::PanelKey{0, 0, 4}, stub_loader(4, &loads));
  EXPECT_EQ(cache.counters().evictions, 1u);
  const std::vector<serve::PanelKey> s0 = cache.shard_keys(0);
  ASSERT_EQ(s0.size(), 2u);
  EXPECT_EQ(s0[0].entry, 4u);
  EXPECT_EQ(s0[1].entry, 2u);
  const std::vector<serve::PanelKey> s1 = cache.shard_keys(1);
  ASSERT_EQ(s1.size(), 2u);
  EXPECT_EQ(s1[0].entry, 3u);
  EXPECT_EQ(s1[1].entry, 1u);
}

TEST(PanelCache, CountersStayConsistentUnderConcurrency) {
  serve::PanelCache cache(/*capacity=*/4, /*shards=*/2);
  std::atomic<std::size_t> loads{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t h = 31 + t;
      for (std::size_t i = 0; i < 100; ++i) {
        h = util::splitmix64(h);
        const std::size_t e = h % 6;
        const auto p =
            cache.get_or_load(serve::PanelKey{0, 0, e},
                              stub_loader(e, &loads));
        if (p == nullptr || p->step_first != e) std::abort();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const serve::CacheCounters c = cache.counters();
  EXPECT_EQ(c.lookups, 400u);
  EXPECT_EQ(c.hits + c.misses, c.lookups);
  // Every counted miss invokes the loader exactly once (racing duplicate
  // loads are each counted as their own thread's miss).
  EXPECT_EQ(loads.load(), c.misses);
  EXPECT_LE(cache.size(), 4u);
}

TEST(PanelCache, EraseArchiveDropsOnlyThatArchive) {
  serve::PanelCache cache(/*capacity=*/8, /*shards=*/2);
  std::atomic<std::size_t> loads{0};
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t e = 0; e < 2; ++e) {
      (void)cache.get_or_load(serve::PanelKey{a, 0, e},
                              stub_loader(e, &loads));
    }
  }
  EXPECT_EQ(cache.size(), 4u);
  cache.erase_archive(0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().invalidations, 2u);
  // Archive 1's panels still hit; archive 0's reload.
  (void)cache.get_or_load(serve::PanelKey{1, 0, 0}, stub_loader(0, &loads));
  EXPECT_EQ(loads.load(), 4u);
  (void)cache.get_or_load(serve::PanelKey{0, 0, 0}, stub_loader(0, &loads));
  EXPECT_EQ(loads.load(), 5u);
}

TEST(ServeRevalidate, InPlaceRewriteBumpsGenerationAndDropsPanels) {
  const std::string path = temp_path("ptucker_serve_rw.pta");
  const Dims step_dims{5, 4, 3};
  build_archive(path, step_dims, 2, 2, /*field_shift=*/0);
  serve::ServerOptions opts;
  opts.executor_threads = 0;
  serve::QueryServer server({path}, opts);
  const serve::Request req{0, 0, 4, {}};
  (void)server.subtensor(req);
  EXPECT_EQ(server.generation(0), 0u);
  EXPECT_EQ(server.cache().size(), 2u);

  // Rewrite the archive in place with different values (mtime tick first,
  // mirroring the TimestepReader stale tests).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  build_archive(path, step_dims, 2, 2, /*field_shift=*/100);

  // The next query must serve the NEW archive: generation bumped, stale
  // panels dropped, answers bit-matching a fresh single-threaded oracle.
  const Tensor got = server.subtensor(req);
  EXPECT_EQ(server.generation(0), 1u);
  EXPECT_GE(server.cache().counters().invalidations, 2u);
  Tensor want;
  run_ranks(1, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {1, 1, 1, 1});
    const core::StreamingReconstructor recon(path);
    want = recon.reconstruct_steps(grid, 0, 4).local();
  });
  ASSERT_EQ(got.dims(), want.dims());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(double)),
            0);
  // And the new values really differ from the old field (shift 100).
  const std::size_t idx[] = {1, 2, 1, 0};
  EXPECT_NEAR(got.at(idx),
              field_value(std::span<const std::size_t>(idx, 3), 100), 1e-6);
  std::filesystem::remove(path);
}

TEST(ServeRevalidate, PureAppendKeepsGenerationAndCachedPanels) {
  const std::string path = temp_path("ptucker_serve_app.pta");
  const Dims step_dims{5, 4, 3};
  build_archive(path, step_dims, 2, 2);
  serve::ServerOptions opts;
  opts.executor_threads = 0;
  serve::QueryServer server({path}, opts);
  EXPECT_EQ(server.num_steps(0), 4u);
  (void)server.time_range(0, 0, 4);  // loads entries 0 and 1
  EXPECT_EQ(server.cache().counters().misses, 2u);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  append_window(path, step_dims, 4, 2);

  // The appended window is visible, the generation is unchanged, and the
  // old entries' panels still hit — only the new entry is loaded.
  EXPECT_EQ(server.num_steps(0), 6u);
  const Tensor got = server.time_range(0, 0, 6);
  EXPECT_EQ(server.generation(0), 0u);
  const serve::CacheCounters c = server.cache().counters();
  EXPECT_EQ(c.misses, 3u);
  EXPECT_GE(c.hits, 2u);
  EXPECT_EQ(c.invalidations, 0u);
  Tensor want;
  run_ranks(1, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {1, 1, 1, 1});
    const core::StreamingReconstructor recon(path);
    want = recon.reconstruct_steps(grid, 0, 6).local();
  });
  ASSERT_EQ(got.dims(), want.dims());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(double)),
            0);
  std::filesystem::remove(path);
}

TEST(ServeRevalidate, StepDimsChangeUnderTheServerThrows) {
  const std::string path = temp_path("ptucker_serve_dims.pta");
  build_archive(path, Dims{5, 4, 3}, 2, 2);
  serve::ServerOptions opts;
  opts.executor_threads = 0;
  serve::QueryServer server({path}, opts);
  (void)server.time_range(0, 0, 4);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  build_archive(path, Dims{6, 4, 3}, 2, 2);
  EXPECT_THROW((void)server.time_range(0, 0, 4), InvalidArgument);
  std::filesystem::remove(path);
}

TEST(ServeRevalidate, DisabledRevalidationServesTheOpenSnapshot) {
  const std::string path = temp_path("ptucker_serve_norev.pta");
  const Dims step_dims{5, 4, 3};
  build_archive(path, step_dims, 2, 2);
  serve::ServerOptions opts;
  opts.executor_threads = 0;
  opts.revalidate = false;
  serve::QueryServer server({path}, opts);
  const Tensor before = server.time_range(0, 0, 4);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  append_window(path, step_dims, 4, 2);
  // Without revalidation the server stays on its open snapshot: the
  // appended steps are not visible and the old answers are unchanged.
  EXPECT_EQ(server.num_steps(0), 4u);
  const Tensor after = server.time_range(0, 0, 4);
  EXPECT_EQ(std::memcmp(before.data(), after.data(),
                        before.size() * sizeof(double)),
            0);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ptucker
