#include <gtest/gtest.h>

#include <numeric>

#include "mps/cart.hpp"
#include "mps/collectives.hpp"
#include "test_utils.hpp"
#include "util/rng.hpp"

namespace ptucker {
namespace {

using testing::run_ranks;

/// Stress and determinism tests for the message-passing substrate: the
/// distributed algorithms above it are only as trustworthy as these
/// primitives under load.

TEST(Stress, RandomizedPointToPointTraffic) {
  // Every rank sends a random (but deterministic) set of messages to random
  // peers, then receives exactly what it expects; repeated 3 rounds.
  const int p = 9;
  run_ranks(p, [p](mps::Comm& comm) {
    const int me = comm.rank();
    for (int round = 0; round < 3; ++round) {
      // Schedule known to all ranks: sender s sends to (s + k) % p for
      // k = 1..s%4+1, payload = s*1000 + k + round.
      for (int k = 1; k <= me % 4 + 1; ++k) {
        const double payload = me * 1000 + k + round;
        comm.send(std::span<const double>(&payload, 1), (me + k) % p,
                  100 + round);
      }
      for (int s = 0; s < p; ++s) {
        for (int k = 1; k <= s % 4 + 1; ++k) {
          if ((s + k) % p != me) continue;
          double got = -1.0;
          comm.recv(std::span<double>(&got, 1), s, 100 + round);
          EXPECT_DOUBLE_EQ(got, s * 1000 + k + round);
        }
      }
    }
  });
}

TEST(Stress, LargePayloadsSurvive) {
  const std::size_t count = 1 << 20;  // 8 MB per message
  run_ranks(2, [&](mps::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(count);
      std::iota(big.begin(), big.end(), 0.0);
      comm.send(std::span<const double>(big), 1, 0);
    } else {
      std::vector<double> big(count);
      comm.recv(std::span<double>(big), 0, 0);
      EXPECT_DOUBLE_EQ(big.front(), 0.0);
      EXPECT_DOUBLE_EQ(big.back(), static_cast<double>(count - 1));
    }
  });
}

TEST(Stress, ManyConcurrentSubCommunicators) {
  // Build 8 sub-communicators and use all of them interleaved; context
  // isolation must keep their traffic apart.
  const int p = 8;
  run_ranks(p, [p](mps::Comm& comm) {
    std::vector<mps::Comm> subs;
    for (int i = 0; i < 8; ++i) {
      subs.push_back(comm.split(comm.rank() % (i + 1), comm.rank()));
    }
    for (int i = 7; i >= 0; --i) {
      double v = comm.rank() + i;
      const double sum = mps::allreduce_scalar(subs[static_cast<std::size_t>(i)], v);
      // Reference: sum over ranks with the same color.
      double expected = 0.0;
      for (int r = 0; r < p; ++r) {
        if (r % (i + 1) == comm.rank() % (i + 1)) expected += r + i;
      }
      EXPECT_DOUBLE_EQ(sum, expected) << "sub-communicator " << i;
    }
  });
}

TEST(Stress, RuntimeReuseAcrossManyRuns) {
  mps::Runtime rt(4);
  for (int iter = 0; iter < 20; ++iter) {
    rt.run([iter](mps::Comm& comm) {
      double v = comm.rank() + iter;
      v = mps::allreduce_scalar(comm, v);
      EXPECT_DOUBLE_EQ(v, 6.0 + 4.0 * iter);
    });
  }
}

TEST(Stress, BitwiseDeterministicCollectives) {
  // Floating-point all-reduce must produce bitwise identical results on
  // every rank and across repeated runs (fixed reduction order).
  const int p = 7;
  std::vector<std::vector<double>> first(static_cast<std::size_t>(p));
  for (int repeat = 0; repeat < 2; ++repeat) {
    run_ranks(p, [&, repeat](mps::Comm& comm) {
      util::Rng rng(500 + static_cast<std::uint64_t>(comm.rank()));
      std::vector<double> buf(257);
      for (double& x : buf) x = rng.normal() * 1e-8 + rng.normal();
      mps::allreduce(comm, std::span<double>(buf));
      auto& slot = first[static_cast<std::size_t>(comm.rank())];
      if (repeat == 0) {
        slot = buf;
      } else {
        EXPECT_EQ(testing::max_diff(slot.data(), buf.data(), buf.size()),
                  0.0)
            << "all-reduce result changed between runs";
      }
    });
  }
  // All ranks agree bitwise.
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(testing::max_diff(first[0].data(),
                                first[static_cast<std::size_t>(r)].data(),
                                first[0].size()),
              0.0);
  }
}

TEST(Stress, IntegerCollectives) {
  run_ranks(5, [](mps::Comm& comm) {
    int v = comm.rank() + 1;
    mps::allreduce(comm, std::span<int>(&v, 1));
    EXPECT_EQ(v, 15);
    long mn = 100 - comm.rank();
    mps::allreduce(comm, std::span<long>(&mn, 1), mps::Min<long>{});
    EXPECT_EQ(mn, 96);
  });
}

TEST(Stress, NestedCartesianGrids) {
  // A grid over a slice communicator of another grid — the pattern the
  // Tucker drivers rely on implicitly via sub-communicators.
  run_ranks(12, [](mps::Comm& comm) {
    mps::CartGrid outer(comm, {3, 4});
    const mps::Comm& col = outer.slice_comm(0);  // 4 ranks sharing coord 0
    ASSERT_EQ(col.size(), 4);
    mps::CartGrid inner(col, {2, 2});
    const double sum = mps::allreduce_scalar(
        inner.comm(), static_cast<double>(comm.rank()));
    // Sum of the 4 world ranks in my slice; cross-check via the outer comm.
    double expected = 0.0;
    for (int r = 0; r < 12; ++r) {
      if (outer.coords_of(r)[0] == outer.coord(0)) expected += r;
    }
    EXPECT_DOUBLE_EQ(sum, expected);
  });
}

TEST(Stress, EmptyPayloadCollectives) {
  run_ranks(4, [](mps::Comm& comm) {
    std::vector<double> empty;
    mps::broadcast(comm, std::span<double>(empty), 0);
    mps::allreduce(comm, std::span<double>(empty));
    std::vector<double> all;
    std::vector<std::size_t> counts(4, 0);
    mps::allgatherv(comm, std::span<const double>(empty),
                    std::span<double>(all),
                    std::span<const std::size_t>(counts));
    SUCCEED();
  });
}

TEST(Stress, BarrierHeavyInterleaving) {
  // Alternate barriers with asymmetric p2p to shake out tag collisions
  // between the dissemination barrier and user traffic.
  run_ranks(6, [](mps::Comm& comm) {
    for (int i = 0; i < 10; ++i) {
      if (comm.rank() == i % 6) {
        const double v = i;
        comm.send(std::span<const double>(&v, 1), (i + 1) % 6, i);
      }
      comm.barrier();
      if (comm.rank() == (i + 1) % 6) {
        double v = -1.0;
        comm.recv(std::span<double>(&v, 1), i % 6, i);
        EXPECT_DOUBLE_EQ(v, static_cast<double>(i));
      }
      comm.barrier();
    }
  });
}

TEST(Stress, GatherScatterRoundTripLargeBlocks) {
  const int p = 6;
  run_ranks(p, [p](mps::Comm& comm) {
    // scatter blocks of different sizes, transform, gather back.
    std::vector<std::vector<double>> blocks;
    if (comm.rank() == 0) {
      blocks.resize(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        blocks[static_cast<std::size_t>(r)].assign(
            static_cast<std::size_t>(1000 * (r + 1)), r + 0.5);
      }
    }
    auto mine = mps::scatter_varied(comm, blocks, 0);
    EXPECT_EQ(mine.size(), static_cast<std::size_t>(1000 * (comm.rank() + 1)));
    for (double& v : mine) v *= 2.0;
    const auto gathered =
        mps::gather_varied(comm, std::span<const double>(mine), 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        const auto& block = gathered[static_cast<std::size_t>(r)];
        EXPECT_EQ(block.size(), static_cast<std::size_t>(1000 * (r + 1)));
        EXPECT_DOUBLE_EQ(block.front(), 2.0 * (r + 0.5));
      }
    }
  });
}

}  // namespace
}  // namespace ptucker
