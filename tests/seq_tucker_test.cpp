#include <gtest/gtest.h>

#include "core/seq/seq_tucker.hpp"
#include "data/synthetic.hpp"
#include "test_utils.hpp"

namespace ptucker {
namespace {

using core::seq::FactorMethod;
using core::seq::SeqOptions;
using tensor::Dims;
using tensor::Tensor;

TEST(SeqSthosvd, ExactRecovery) {
  const Tensor x = data::make_low_rank_seq(Dims{9, 8, 7}, Dims{3, 2, 3}, 1);
  SeqOptions opts;
  opts.epsilon = 1e-6;
  const auto result = core::seq::seq_st_hosvd(x, opts);
  EXPECT_EQ(result.tucker.core.dims(), (Dims{3, 2, 3}));
  const Tensor xt = core::seq::seq_reconstruct(result.tucker);
  EXPECT_LT(core::seq::seq_normalized_error(x, xt), 1e-6);
}

TEST(SeqSthosvd, ErrorBoundHolds) {
  const Tensor x =
      data::make_low_rank_seq(Dims{8, 8, 8}, Dims{3, 3, 3}, 3, 0.1);
  SeqOptions opts;
  opts.epsilon = 0.25;
  const auto result = core::seq::seq_st_hosvd(x, opts);
  const Tensor xt = core::seq::seq_reconstruct(result.tucker);
  EXPECT_LE(core::seq::seq_normalized_error(x, xt), 0.25 * 1.0000001);
}

TEST(SeqSthosvd, GramAndJacobiMethodsAgree) {
  const Tensor x =
      data::make_low_rank_seq(Dims{7, 6, 5}, Dims{3, 2, 2}, 5, 0.05);
  SeqOptions gram_opts;
  gram_opts.epsilon = 1e-3;
  SeqOptions jac_opts = gram_opts;
  jac_opts.method = FactorMethod::GramJacobi;
  const auto a = core::seq::seq_st_hosvd(x, gram_opts);
  const auto b = core::seq::seq_st_hosvd(x, jac_opts);
  EXPECT_EQ(a.tucker.core.dims(), b.tucker.core.dims());
  const double err_a = core::seq::seq_normalized_error(
      x, core::seq::seq_reconstruct(a.tucker));
  const double err_b = core::seq::seq_normalized_error(
      x, core::seq::seq_reconstruct(b.tucker));
  EXPECT_NEAR(err_a, err_b, 1e-8);
}

TEST(SeqSthosvd, SvdQrMethodAgreesWithGramRoute) {
  // The Sec. IX Gram-free path must yield the same subspaces and errors in
  // well-conditioned settings.
  const Tensor x =
      data::make_low_rank_seq(Dims{6, 8, 7}, Dims{2, 3, 2}, 7, 0.05);
  SeqOptions gram_opts;
  gram_opts.epsilon = 1e-3;
  SeqOptions qr_opts = gram_opts;
  qr_opts.method = FactorMethod::SvdQr;
  const auto a = core::seq::seq_st_hosvd(x, gram_opts);
  const auto b = core::seq::seq_st_hosvd(x, qr_opts);
  EXPECT_EQ(a.tucker.core.dims(), b.tucker.core.dims());
  const double err_a = core::seq::seq_normalized_error(
      x, core::seq::seq_reconstruct(a.tucker));
  const double err_b = core::seq::seq_normalized_error(
      x, core::seq::seq_reconstruct(b.tucker));
  EXPECT_NEAR(err_a, err_b, 1e-7);
}

TEST(SeqHooi, ImprovesOrMatchesInitialization) {
  const Tensor x =
      data::make_low_rank_seq(Dims{9, 8, 7}, Dims{4, 4, 3}, 9, 0.3);
  SeqOptions init;
  init.fixed_ranks = {2, 2, 2};
  const auto result = core::seq::seq_hooi(x, init, 5, 0.0);
  ASSERT_GE(result.error_history.size(), 2u);
  EXPECT_LE(result.error_history.back(), result.error_history.front() + 1e-12);
  for (std::size_t i = 1; i < result.error_history.size(); ++i) {
    EXPECT_LE(result.error_history[i], result.error_history[i - 1] + 1e-10);
  }
}

TEST(SeqHooi, CompressionRatioReported) {
  const Tensor x =
      data::make_low_rank_seq(Dims{10, 10, 10}, Dims{2, 2, 2}, 11);
  SeqOptions opts;
  opts.epsilon = 1e-6;
  const auto result = core::seq::seq_st_hosvd(x, opts);
  EXPECT_NEAR(result.tucker.compression_ratio(), 1000.0 / 68.0, 1e-9);
}

TEST(SeqSthosvd, GreedyOrderStrategiesAreValidPermutations) {
  const Tensor x =
      data::make_low_rank_seq(Dims{4, 12, 8}, Dims{2, 5, 3}, 13, 0.05);
  for (auto strategy : {core::ModeOrderStrategy::GreedyFlops,
                        core::ModeOrderStrategy::GreedyRatio}) {
    SeqOptions opts;
    opts.epsilon = 1e-3;
    opts.order_strategy = strategy;
    const auto result = core::seq::seq_st_hosvd(x, opts);
    std::vector<bool> seen(3, false);
    for (int n : result.mode_order_used) {
      seen[static_cast<std::size_t>(n)] = true;
    }
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  }
}

TEST(SeqSthosvd, GreedyFlopsStartsWithSmallestDim) {
  // With unknown ranks the greedy-flops heuristic minimizes the current
  // Gram cost, i.e. picks the smallest current dimension first.
  const Tensor x = data::make_low_rank_seq(Dims{4, 12, 8}, Dims{2, 2, 2}, 15);
  SeqOptions opts;
  opts.epsilon = 1e-3;
  opts.order_strategy = core::ModeOrderStrategy::GreedyFlops;
  const auto result = core::seq::seq_st_hosvd(x, opts);
  EXPECT_EQ(result.mode_order_used.front(), 0);
}

}  // namespace
}  // namespace ptucker
