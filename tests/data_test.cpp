#include <gtest/gtest.h>

#include "core/seq/seq_tucker.hpp"
#include "data/combustion.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "test_utils.hpp"

namespace ptucker {
namespace {

using data::CombustionPreset;
using data::CombustionSpec;
using dist::DistTensor;
using tensor::Dims;
using tensor::Tensor;
using testing::run_ranks;

TEST(Synthetic, ExactLowRankHasExactRank) {
  const Tensor x = data::make_low_rank_seq(Dims{10, 9, 8}, Dims{3, 2, 4}, 1);
  core::seq::SeqOptions opts;
  opts.epsilon = 1e-6;
  const auto result = core::seq::seq_st_hosvd(x, opts);
  EXPECT_EQ(result.tucker.core.dims(), (Dims{3, 2, 4}));
}

TEST(Synthetic, NoiseRaisesResidualRank) {
  const Tensor clean = data::make_low_rank_seq(Dims{8, 8, 8}, Dims{2, 2, 2}, 2);
  const Tensor noisy =
      data::make_low_rank_seq(Dims{8, 8, 8}, Dims{2, 2, 2}, 2, 0.5);
  core::seq::SeqOptions opts;
  opts.epsilon = 1e-6;
  const auto r_clean = core::seq::seq_st_hosvd(clean, opts);
  const auto r_noisy = core::seq::seq_st_hosvd(noisy, opts);
  EXPECT_GT(tensor::prod(r_noisy.tucker.core.dims()),
            tensor::prod(r_clean.tucker.core.dims()));
}

TEST(Combustion, SpecScalesSpatialAndTimeDimsOnly) {
  const CombustionSpec full = data::combustion_spec(CombustionPreset::HCCI, 1.0);
  EXPECT_EQ(full.dims, (Dims{672, 672, 33, 627}));
  const CombustionSpec small =
      data::combustion_spec(CombustionPreset::HCCI, 0.05);
  EXPECT_EQ(small.dims[2], 33u);  // species preserved
  EXPECT_LT(small.dims[0], 60u);
  EXPECT_GE(small.dims[0], 8u);
}

TEST(Combustion, PresetsHaveDocumentedShapes) {
  EXPECT_EQ(data::combustion_spec(CombustionPreset::TJLR, 1.0).dims,
            (Dims{460, 700, 360, 35, 16}));
  EXPECT_EQ(data::combustion_spec(CombustionPreset::SP, 1.0).dims,
            (Dims{500, 500, 500, 11, 50}));
  EXPECT_STREQ(data::preset_name(CombustionPreset::SP), "SP");
}

TEST(Combustion, GenerationIsGridIndependent) {
  CombustionSpec spec = data::combustion_spec(CombustionPreset::HCCI, 0.02);

  const Tensor expected = data::make_combustion_seq(spec);
  run_ranks(4, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 2, 1, 1});
    const DistTensor x = data::make_combustion(grid, spec);
    const Tensor gathered = x.gather(0);
    if (comm.rank() == 0) {
      EXPECT_LT(testing::max_diff(expected, gathered), 1e-12);
    }
  });
}

TEST(Combustion, CompressibilityOrderingMatchesPaper) {
  // SP must compress better than HCCI, which must compress better than
  // TJLR, at the same relative error (paper Fig. 7). Measured at tiny scale.
  auto ratio_for = [&](CombustionPreset preset) {
    CombustionSpec spec = data::combustion_spec(preset, 0.02);

    Tensor x = data::make_combustion_seq(spec);
    data::normalize_species_seq(x, spec.species_mode);
    core::seq::SeqOptions opts;
    opts.epsilon = 1e-2;
    const auto result = core::seq::seq_st_hosvd(x, opts);
    return result.tucker.compression_ratio();
  };
  const double sp = ratio_for(CombustionPreset::SP);
  const double hcci = ratio_for(CombustionPreset::HCCI);
  const double tjlr = ratio_for(CombustionPreset::TJLR);
  EXPECT_GT(sp, hcci);
  EXPECT_GT(hcci, tjlr);
}

TEST(Normalize, SeqProducesZeroMeanUnitStd) {
  CombustionSpec spec = data::combustion_spec(CombustionPreset::HCCI, 0.02);

  Tensor x = data::make_combustion_seq(spec);
  const auto stats = data::normalize_species_seq(x, spec.species_mode);
  ASSERT_EQ(stats.mean.size(), x.dim(spec.species_mode));
  // Re-measure: every species slice now has ~0 mean, ~1 std.
  const auto verify = data::normalize_species_seq(x, spec.species_mode);
  for (std::size_t s = 0; s < verify.mean.size(); ++s) {
    EXPECT_NEAR(verify.mean[s], 0.0, 1e-10);
    if (stats.stdev[s] >= data::kStdFloor) {
      EXPECT_NEAR(verify.stdev[s], 1.0, 1e-8);
    }
  }
}

TEST(Normalize, DistMatchesSeq) {
  CombustionSpec spec = data::combustion_spec(CombustionPreset::SP, 0.018);

  Tensor expected = data::make_combustion_seq(spec);
  const auto seq_stats =
      data::normalize_species_seq(expected, spec.species_mode);
  run_ranks(8, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 2, 1, 1, 2});
    DistTensor x = data::make_combustion(grid, spec);
    const auto stats = data::normalize_species(x, spec.species_mode);
    for (std::size_t s = 0; s < stats.mean.size(); ++s) {
      EXPECT_NEAR(stats.mean[s], seq_stats.mean[s],
                  1e-9 * (1.0 + std::fabs(seq_stats.mean[s])));
      EXPECT_NEAR(stats.stdev[s], seq_stats.stdev[s],
                  1e-9 * (1.0 + seq_stats.stdev[s]));
    }
    const Tensor gathered = x.gather(0);
    if (comm.rank() == 0) {
      EXPECT_LT(testing::max_diff(expected, gathered), 1e-9);
    }
  });
}

TEST(Normalize, DenormalizeRoundTrips) {
  CombustionSpec spec = data::combustion_spec(CombustionPreset::HCCI, 0.02);

  run_ranks(2, [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 1, 1, 1});
    DistTensor x = data::make_combustion(grid, spec);
    const Tensor original = x.local();
    const auto stats = data::normalize_species(x, spec.species_mode);
    data::denormalize_species(x, stats);
    EXPECT_LT(testing::max_diff(original, x.local()), 1e-9);
  });
}

TEST(Normalize, ConstantSliceGetsStdFloorTreatment) {
  // A species slice with zero variance must be centered but not divided.
  Tensor x(Dims{4, 3, 5});
  x.fill_from([](std::span<const std::size_t> idx) {
    return idx[1] == 1 ? 7.5 : static_cast<double>(idx[0] + idx[2]);
  });
  const auto stats = data::normalize_species_seq(x, 1);
  EXPECT_LT(stats.stdev[1], data::kStdFloor);
  // Centered: slice 1 values are all zero now (not NaN/inf).
  const tensor::UnfoldShape s = tensor::unfold_shape(x.dims(), 1);
  for (std::size_t r = 0; r < s.right; ++r) {
    for (std::size_t l = 0; l < s.left; ++l) {
      EXPECT_DOUBLE_EQ(x[l + 1 * s.left + r * s.left * s.mid], 0.0);
    }
  }
}

TEST(Combustion, ModeSpectraDecayFasterForSteadyPreset) {
  // The SP surrogate's spatial spectra must decay faster than TJLR's —
  // that decay ordering is what drives the Fig. 6/7 reproduction.
  auto spatial_tail = [&](CombustionPreset preset) {
    CombustionSpec spec = data::combustion_spec(preset, 0.02);

    Tensor x = data::make_combustion_seq(spec);
    data::normalize_species_seq(x, spec.species_mode);
    core::seq::SeqOptions opts;
    opts.epsilon = 1e-4;
    const auto result = core::seq::seq_st_hosvd(x, opts);
    // Fraction of spectrum mass outside the top 5 eigenvalues of mode 0.
    const auto& ev = result.mode_eigenvalues[0];
    double total = 0.0;
    double tail = 0.0;
    for (std::size_t i = 0; i < ev.size(); ++i) {
      total += std::max(0.0, ev[i]);
      if (i >= 5) tail += std::max(0.0, ev[i]);
    }
    return tail / total;
  };
  EXPECT_LT(spatial_tail(CombustionPreset::SP),
            spatial_tail(CombustionPreset::TJLR));
}

}  // namespace
}  // namespace ptucker
