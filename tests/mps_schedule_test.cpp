/// \file mps_schedule_test.cpp
/// \brief Collective-schedule verification (the Parcoach-style debug mode):
/// every rank fingerprints its (op, comm-context, bytes) sequence, and
/// Runtime::run flags ranks whose schedules diverged — the bug class where
/// one rank skips a broadcast and the job deadlocks or leaks messages with
/// no indication of *which* collective went wrong.

#include <gtest/gtest.h>

#include <string>

#include "mps/collectives.hpp"
#include "mps/runtime.hpp"
#include "mps/stats.hpp"
#include "mps/universe.hpp"
#include "test_utils.hpp"
#include "util/error.hpp"

namespace ptucker {
namespace {

/// A runtime with verification on and a short recv deadline.
void run_verified(int p, const std::function<void(mps::Comm&)>& body) {
  mps::Runtime rt(p);
  rt.set_recv_timeout_ms(30000);
  rt.set_verify_schedule(true);
  rt.run(body);
}

TEST(Schedule, MatchingScheduleVerifiesClean) {
  for (int p : {1, 2, 3, 4}) {
    EXPECT_NO_THROW(run_verified(p, [](mps::Comm& comm) {
      std::vector<double> buf(8, comm.rank() == 0 ? 3.0 : 0.0);
      mps::broadcast(comm, std::span<double>(buf), 0);
      double s = buf[0];
      s = mps::allreduce_scalar(comm, s);
      comm.barrier();
      EXPECT_DOUBLE_EQ(s, 3.0 * comm.size());
    }));
  }
}

TEST(Schedule, DivergentBroadcastIsFlagged) {
  // Rank 0 broadcasts (eager send: it completes), rank 1 silently skips it.
  // Without verification this surfaces as an unconsumed-message
  // InternalError at finalize; with verification the diagnosis names the
  // collective instead.
  try {
    run_verified(2, [](mps::Comm& comm) {
      if (comm.rank() == 0) {
        std::vector<double> buf(4, 1.0);
        mps::broadcast(comm, std::span<double>(buf), 0);
      }
    });
    FAIL() << "divergent schedule not flagged";
  } catch (const mps::ScheduleMismatchError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("broadcast"), std::string::npos) << what;
    EXPECT_NE(what.find("rank"), std::string::npos) << what;
  }
}

TEST(Schedule, SilentRankIsFlaggedEvenWithZeroCalls) {
  // The context is seeded at communicator creation, so a rank that makes NO
  // collective calls at all still has a (calls == 0) entry to compare —
  // silence is detectable, not just different noise. Broadcast is used
  // because its sends are eager: the participating ranks complete even
  // though rank 2 never shows up.
  EXPECT_THROW(run_verified(3,
                            [](mps::Comm& comm) {
                              if (comm.rank() == 2) return;  // silent rank
                              std::vector<double> buf(4,
                                                      1.0 * comm.rank());
                              mps::broadcast(comm, std::span<double>(buf),
                                             0);
                            }),
               mps::ScheduleMismatchError);
}

TEST(Schedule, VerificationOffFallsBackToQuiescenceError) {
  // Same divergence with verification off: the runtime still fails, but
  // with the generic leaked-message InternalError — demonstrating what the
  // schedule check adds (ScheduleMismatchError is not an InternalError).
  EXPECT_THROW(testing::run_ranks(2,
                                  [](mps::Comm& comm) {
                                    if (comm.rank() == 0) {
                                      std::vector<double> buf(4, 1.0);
                                      mps::broadcast(
                                          comm, std::span<double>(buf), 0);
                                    }
                                  }),
               InternalError);
}

TEST(Schedule, SplitColorsMayRunDifferentSchedules) {
  // Ranks in different split colors legitimately run different collective
  // sequences on their sub-communicators; only members of the SAME context
  // are compared.
  EXPECT_NO_THROW(run_verified(4, [](mps::Comm& comm) {
    mps::Comm sub = comm.split(comm.rank() % 2, comm.rank());
    if (comm.rank() % 2 == 0) {
      sub.barrier();
    } else {
      double v = 1.0;
      v = mps::allreduce_scalar(sub, v);
      EXPECT_DOUBLE_EQ(v, 2.0);
      sub.barrier();
    }
    comm.barrier();  // the world schedule itself must still agree
  }));
}

TEST(Schedule, ByteCountMismatchIsFlagged) {
  // Unit-level: same op sequence but different payload sizes hash apart.
  // Driven through Universe directly because actually exchanging
  // mismatched buffers would fault inside the transport before finalize.
  mps::Universe u(2);
  u.set_verify_schedule(true);
  u.fingerprint_seed(0, 7);
  u.fingerprint_seed(1, 7);
  u.fingerprint_record(0, 7, mps::OpKind::AllReduce, 64);
  u.fingerprint_record(1, 7, mps::OpKind::AllReduce, 128);
  EXPECT_THROW(u.verify_schedule(), mps::ScheduleMismatchError);
  u.reset_schedule();
  u.fingerprint_seed(0, 7);
  u.fingerprint_seed(1, 7);
  u.fingerprint_record(0, 7, mps::OpKind::AllReduce, 64);
  u.fingerprint_record(1, 7, mps::OpKind::AllReduce, 64);
  EXPECT_NO_THROW(u.verify_schedule());
}

TEST(Schedule, NestedCollectivesFingerprintOnlyTheOuterOp) {
  // allreduce is built from reduce_scatter/allgatherv (or reduce+broadcast)
  // internally; the fingerprint must record ONE allreduce, not its guts, so
  // algorithm choice can't masquerade as divergence.
  run_verified(2, [](mps::Comm& comm) {
    double v = 1.0;
    v = mps::allreduce_scalar(comm, v);
    EXPECT_DOUBLE_EQ(v, 2.0);
    const auto& contexts =
        comm.universe().schedule_fingerprints(comm.rank());
    std::uint64_t calls = 0;
    for (const auto& [ctx, fp] : contexts) calls += fp.calls;
    EXPECT_EQ(calls, 1u);
  });
}

TEST(Schedule, AsyncMatchingScheduleVerifiesClean) {
  // Nonblocking ops fingerprint at INITIATION, so a matching istart/wait
  // schedule verifies exactly like its blocking counterpart.
  EXPECT_NO_THROW(run_verified(3, [](mps::Comm& comm) {
    std::vector<double> buf(6, comm.rank() == 0 ? 2.0 : 0.0);
    mps::CollectiveHandle hb =
        mps::ibroadcast(comm, std::span<double>(buf), 0);
    std::vector<double> sum(4, 1.0);
    mps::CollectiveHandle hs = mps::iallreduce(comm, std::span<double>(sum));
    hs.wait();
    hb.wait();
    EXPECT_DOUBLE_EQ(buf[0], 2.0);
    EXPECT_DOUBLE_EQ(sum[0], 1.0 * comm.size());
    comm.barrier();
  }));
}

TEST(Schedule, AsyncDivergenceIsFlaggedWithOpNamed) {
  // Rank 0 initiates-and-completes an ibroadcast (its sends are eager, so
  // it finishes without rank 1); rank 1 silently skips it. Because i-ops
  // record their fingerprint at initiation, the verifier names the
  // collective just as it does for the blocking form.
  try {
    run_verified(2, [](mps::Comm& comm) {
      if (comm.rank() == 0) {
        std::vector<double> buf(4, 1.0);
        mps::ibroadcast(comm, std::span<double>(buf), 0).wait();
      }
    });
    FAIL() << "divergent async schedule not flagged";
  } catch (const mps::ScheduleMismatchError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("broadcast"), std::string::npos) << what;
    EXPECT_NE(what.find("rank"), std::string::npos) << what;
  }
}

TEST(Schedule, LeakedInflightHandleIsFlaggedWithOpNamed) {
  // A handle destroyed before its op completes is a silent-data-loss bug
  // (the transfer may be half done). Non-root ranks initiate an ibroadcast
  // the root never sends for — the recv can never complete — and abandon
  // the handle. Finalize must fail loudly, naming the op and the rank, and
  // the leak check runs BEFORE schedule verification so the report is about
  // the leak even though the schedules also diverged.
  try {
    testing::run_ranks(2, [](mps::Comm& comm) {
      if (comm.rank() == 0) return;  // root never initiates
      std::vector<double> buf(4, 0.0);
      mps::CollectiveHandle h =
          mps::ibroadcast(comm, std::span<double>(buf), 0);
      EXPECT_FALSE(h.test());
      // h goes out of scope still in flight.
    });
    FAIL() << "leaked in-flight handle not flagged";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("broadcast on rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("in flight"), std::string::npos) << what;
    EXPECT_NE(what.find("wait()"), std::string::npos) << what;
  }
}

TEST(Schedule, ResetsBetweenRuns) {
  // Each Runtime::run starts from a clean slate: a schedule from run 1 must
  // not be compared against run 2's.
  mps::Runtime rt(2);
  rt.set_recv_timeout_ms(30000);
  rt.set_verify_schedule(true);
  rt.run([](mps::Comm& comm) { comm.barrier(); });
  EXPECT_NO_THROW(rt.run([](mps::Comm& comm) {
    double v = 1.0;
    (void)mps::allreduce_scalar(comm, v);
  }));
}

}  // namespace
}  // namespace ptucker
