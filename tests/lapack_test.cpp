#include <gtest/gtest.h>

#include <cmath>

#include "blas/blas.hpp"
#include "lapack/lapack.hpp"
#include "tensor/matrix.hpp"
#include "test_utils.hpp"
#include "util/rng.hpp"

namespace ptucker {
namespace {

using tensor::Matrix;

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  const Matrix g = Matrix::randn(n, n, seed);
  Matrix s(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      s(i, j) = 0.5 * (g(i, j) + g(j, i));
    }
  }
  return s;
}

/// Symmetric matrix with a prescribed spectrum: V diag(vals) V^T.
Matrix with_spectrum(const std::vector<double>& vals, std::uint64_t seed) {
  const std::size_t n = vals.size();
  const Matrix v = Matrix::random_orthonormal(n, n, seed);
  Matrix scaled = v;
  for (std::size_t j = 0; j < n; ++j) {
    blas::scal(n, vals[j], scaled.col(j));
  }
  return Matrix::multiply(scaled, false, v, true);
}

void expect_eig_valid(const la::SymEig& eig, const Matrix& a, double tol) {
  const std::size_t n = eig.n;
  // Descending order.
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(eig.values[i - 1], eig.values[i] - 1e-12);
  }
  // A v = lambda v for each pair.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> av(n, 0.0);
    blas::gemv(blas::Trans::No, n, n, 1.0, a.data(), n, eig.vector(j), 0.0,
               av.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], eig.values[j] * eig.vector(j)[i], tol)
          << "pair " << j << " row " << i;
    }
  }
  // Orthonormal eigenvectors.
  Matrix v(n, n);
  blas::copy(n * n, eig.vectors.data(), v.data());
  EXPECT_LT(testing::orthonormality_defect(v), tol);
}

class EigSizes : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, EigSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 20, 64, 150),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST_P(EigSizes, RandomSymmetricEigenpairsValid) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  const Matrix a = random_symmetric(n, 42 + n);
  const la::SymEig eig = la::eig_sym(a.data(), n, n);
  expect_eig_valid(eig, a, 1e-9 * static_cast<double>(n));
}

TEST_P(EigSizes, JacobiAgreesWithQL) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  const Matrix a = random_symmetric(n, 17 + n);
  const la::SymEig ql = la::eig_sym(a.data(), n, n);
  const la::SymEig jac = la::eig_sym_jacobi(a.data(), n, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ql.values[i], jac.values[i], 1e-9 * static_cast<double>(n));
  }
}

TEST(Eig, DiagonalMatrix) {
  const std::size_t n = 5;
  Matrix a(n, n);
  const std::vector<double> diag = {5.0, -2.0, 3.0, 0.0, 1.0};
  for (std::size_t i = 0; i < n; ++i) a(i, i) = diag[i];
  const la::SymEig eig = la::eig_sym(a.data(), n, n);
  const std::vector<double> expected = {5.0, 3.0, 1.0, 0.0, -2.0};
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(eig.values[i], expected[i], 1e-12);
  }
}

TEST(Eig, PrescribedSpectrumRecovered) {
  const std::vector<double> vals = {100.0, 10.0, 1.0, 0.1, 0.01, 0.0};
  const Matrix a = with_spectrum(vals, 7);
  const la::SymEig eig = la::eig_sym(a.data(), vals.size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_NEAR(eig.values[i], vals[i], 1e-9);
  }
}

TEST(Eig, RepeatedEigenvaluesStillOrthonormal) {
  const std::vector<double> vals = {2.0, 2.0, 2.0, 1.0, 1.0};
  const Matrix a = with_spectrum(vals, 11);
  const la::SymEig eig = la::eig_sym(a.data(), 5, 5);
  expect_eig_valid(eig, a, 1e-9);
}

TEST(Eig, RespectsLeadingDimension) {
  const std::size_t n = 4;
  const std::size_t lda = 7;
  const Matrix small = random_symmetric(n, 3);
  std::vector<double> padded(lda * n, -99.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      padded[i + j * lda] = small(i, j);
    }
  }
  const la::SymEig a = la::eig_sym(padded.data(), n, lda);
  const la::SymEig b = la::eig_sym(small.data(), n, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-12);
  }
}

TEST(Eig, WilkinsonStyleGradedMatrix) {
  // Graded diagonal plus weak coupling: classic accuracy stress for
  // tridiagonal QL implementations.
  const std::size_t n = 21;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = std::fabs(static_cast<double>(i) - 10.0);
    if (i + 1 < n) {
      a(i, i + 1) = 1.0;
      a(i + 1, i) = 1.0;
    }
  }
  const la::SymEig eig = la::eig_sym(a.data(), n, n);
  expect_eig_valid(eig, a, 1e-9);
  // Wilkinson's W21: the two largest eigenvalues are famously close
  // (~10.746); they must be resolved as distinct but nearly equal.
  EXPECT_NEAR(eig.values[0], eig.values[1], 1e-3);
  EXPECT_GT(eig.values[0] - eig.values[1], 0.0);
  EXPECT_NEAR(eig.values[0], 10.746, 1e-2);
}

TEST(Eig, TinyAndHugeScalesHandled) {
  // Scaling the matrix scales the spectrum exactly; the solver must not
  // lose accuracy to over/underflow at extreme magnitudes.
  const std::size_t n = 12;
  const Matrix base = random_symmetric(n, 31);
  const la::SymEig ref = la::eig_sym(base.data(), n, n);
  for (double scale : {1e-150, 1e150}) {
    Matrix scaled = base;
    blas::scal(n * n, scale, scaled.data());
    const la::SymEig eig = la::eig_sym(scaled.data(), n, n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(eig.values[i] / scale, ref.values[i],
                  1e-10 * std::fabs(ref.values[0]));
    }
  }
}

TEST(Eig, ZeroMatrixIsHarmless) {
  const std::size_t n = 7;
  Matrix a(n, n);
  const la::SymEig eig = la::eig_sym(a.data(), n, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(eig.values[i], 0.0);
  }
  Matrix v(n, n);
  blas::copy(n * n, eig.vectors.data(), v.data());
  EXPECT_LT(testing::orthonormality_defect(v), 1e-12);
}

TEST(Qr, ThinQrReconstructsInput) {
  const std::size_t m = 23;
  const std::size_t n = 7;
  const Matrix a = Matrix::randn(m, n, 5);
  Matrix q(m, n);
  Matrix r(n, n);
  la::qr_thin(a.data(), m, n, m, q.data(), m, r.data(), n);
  EXPECT_LT(testing::orthonormality_defect(q), 1e-12);
  const Matrix qr = Matrix::multiply(q, false, r, false);
  EXPECT_LT(testing::max_diff(qr, a), 1e-11);
  // R strictly upper triangular below the diagonal.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j + 1; i < n; ++i) {
      EXPECT_EQ(r(i, j), 0.0);
    }
  }
}

TEST(Qr, SquareMatrix) {
  const std::size_t n = 12;
  const Matrix a = Matrix::randn(n, n, 8);
  Matrix q(n, n);
  Matrix r(n, n);
  la::qr_thin(a.data(), n, n, n, q.data(), n, r.data(), n);
  const Matrix qr = Matrix::multiply(q, false, r, false);
  EXPECT_LT(testing::max_diff(qr, a), 1e-11);
}

TEST(Qr, RankDeficientColumnHandled) {
  const std::size_t m = 10;
  const std::size_t n = 3;
  Matrix a = Matrix::randn(m, n, 9);
  for (std::size_t i = 0; i < m; ++i) a(i, 1) = 0.0;  // zero column
  Matrix q(m, n);
  Matrix r(n, n);
  la::qr_thin(a.data(), m, n, m, q.data(), m, r.data(), n);
  const Matrix qr = Matrix::multiply(q, false, r, false);
  EXPECT_LT(testing::max_diff(qr, a), 1e-11);
}

TEST(JacobiSvd, ReconstructsAndOrders) {
  const std::size_t m = 15;
  const std::size_t n = 6;
  const Matrix a = Matrix::randn(m, n, 13);
  const la::JacobiSvd svd = la::jacobi_svd(a.data(), m, n, m);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(svd.sigma[i - 1], svd.sigma[i]);
  }
  // A = U diag(sigma) V^T.
  Matrix us(m, n);
  blas::copy(m * n, svd.u.data(), us.data());
  for (std::size_t j = 0; j < n; ++j) blas::scal(m, svd.sigma[j], us.col(j));
  Matrix v(n, n);
  blas::copy(n * n, svd.v.data(), v.data());
  const Matrix rec = Matrix::multiply(us, false, v, true);
  EXPECT_LT(testing::max_diff(rec, a), 1e-10);
}

TEST(LeftSvd, GramAndQrRoutesAgreeOnSingularValues) {
  const std::size_t rows = 8;
  const std::size_t cols = 50;
  const Matrix y = Matrix::randn(rows, cols, 21);
  const la::LeftSvd gram = la::left_svd_via_gram(y.data(), rows, cols, rows);
  const la::LeftSvd qr = la::left_svd_via_qr(y.data(), rows, cols, rows);
  ASSERT_EQ(gram.singular_values.size(), rows);
  ASSERT_EQ(qr.singular_values.size(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_NEAR(gram.singular_values[i], qr.singular_values[i], 1e-8)
        << "sigma_" << i;
  }
  // Leading subspaces agree: |u_g . u_q| = 1 for well-separated values.
  for (std::size_t i = 0; i < 3; ++i) {
    const double d = std::fabs(
        blas::dot(rows, gram.left_vector(i), qr.left_vector(i)));
    EXPECT_NEAR(d, 1.0, 1e-6);
  }
}

TEST(LeftSvd, QrRouteMoreAccurateOnIllConditionedData) {
  // Construct a wide matrix with tiny trailing singular value; the Gram
  // route squares the condition number, the QR route does not (Sec. IX).
  const std::size_t rows = 4;
  const std::size_t cols = 64;
  const Matrix u = Matrix::random_orthonormal(rows, rows, 3);
  const Matrix v = Matrix::random_orthonormal(cols, rows, 4);
  const std::vector<double> sigma = {1.0, 1e-4, 1e-7, 1e-9};
  Matrix us(rows, rows);
  blas::copy(rows * rows, u.data(), us.data());
  for (std::size_t j = 0; j < rows; ++j) blas::scal(rows, sigma[j], us.col(j));
  const Matrix y = Matrix::multiply(us, false, v, true);

  const la::LeftSvd qr = la::left_svd_via_qr(y.data(), rows, cols, rows);
  // sigma_2 = 1e-7: sigma^2 = 1e-14 is at the edge of double precision for
  // the Gram route but easily resolved by the QR route.
  EXPECT_NEAR(qr.singular_values[2] / 1e-7, 1.0, 1e-3);
}

}  // namespace
}  // namespace ptucker
