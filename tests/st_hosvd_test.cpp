#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/reconstruct.hpp"
#include "core/st_hosvd.hpp"
#include "data/synthetic.hpp"
#include "dist/grid.hpp"
#include "test_utils.hpp"

namespace ptucker {
namespace {

using core::SthosvdOptions;
using dist::DistTensor;
using tensor::Dims;
using tensor::Tensor;
using testing::run_ranks;

int grid_size(const std::vector<int>& shape) {
  int p = 1;
  for (int e : shape) p *= e;
  return p;
}

class SthosvdGrids : public ::testing::TestWithParam<std::vector<int>> {};

INSTANTIATE_TEST_SUITE_P(
    Grids, SthosvdGrids,
    ::testing::Values(std::vector<int>{1, 1, 1}, std::vector<int>{2, 1, 1},
                      std::vector<int>{2, 2, 1}, std::vector<int>{2, 2, 2},
                      std::vector<int>{1, 3, 2}, std::vector<int>{4, 2, 1}),
    [](const auto& info) { return testing::shape_name(info.param); });

TEST_P(SthosvdGrids, RecoversExactLowRankTensor) {
  const auto& shape = GetParam();
  const Dims dims{10, 9, 8};
  const Dims ranks{3, 4, 2};
  run_ranks(grid_size(shape), [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, shape);
    const DistTensor x = data::make_low_rank(grid, dims, ranks, 7, 0.0);
    SthosvdOptions opts;
    // eps = 1e-6 keeps the tail threshold comfortably above the ~1e-15
    // relative eigenvalue noise floor of an exactly low-rank Gram matrix.
    opts.epsilon = 1e-6;
    const auto result = core::st_hosvd(x, opts);
    // Exact multilinear ranks detected.
    EXPECT_EQ(result.tucker.core_dims(), ranks);
    // Reconstruction error at numerical noise level.
    const DistTensor xt = core::reconstruct(result.tucker);
    EXPECT_LT(core::normalized_error(x, xt), 1e-6);
  });
}

TEST_P(SthosvdGrids, ErrorBoundHolds) {
  const auto& shape = GetParam();
  const Dims dims{9, 8, 7};
  const Dims ranks{3, 3, 3};
  const double eps = 0.2;  // loose target so truncation actually happens
  run_ranks(grid_size(shape), [&](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, shape);
    const DistTensor x = data::make_low_rank(grid, dims, ranks, 13, 0.05);
    SthosvdOptions opts;
    opts.epsilon = eps;
    const auto result = core::st_hosvd(x, opts);
    const DistTensor xt = core::reconstruct(result.tucker);
    const double err = core::normalized_error(x, xt);
    // Paper eq. (3): ‖X − X̃‖ <= eps ‖X‖ — with slack for fp rounding.
    EXPECT_LE(err, eps * 1.0000001);
    // And the a-priori bound from the truncated tails dominates the error.
    EXPECT_LE(err, result.error_bound + 1e-9);
  });
}

TEST(Sthosvd, ErrorIsIndependentOfProcessorGrid) {
  const Dims dims{8, 8, 8};
  const Dims ranks{3, 3, 3};
  const double eps = 0.3;
  std::vector<double> errors;
  for (const auto& shape : {std::vector<int>{1, 1, 1},
                            std::vector<int>{2, 2, 2},
                            std::vector<int>{4, 1, 2}}) {
    double err = 0.0;
    run_ranks(grid_size(shape), [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, shape);
      const DistTensor x = data::make_low_rank(grid, dims, ranks, 3, 0.1);
      SthosvdOptions opts;
      opts.epsilon = eps;
      const auto result = core::st_hosvd(x, opts);
      const DistTensor xt = core::reconstruct(result.tucker);
      const double e = core::normalized_error(x, xt);
      if (comm.rank() == 0) err = e;
    });
    errors.push_back(err);
  }
  EXPECT_NEAR(errors[0], errors[1], 1e-8);
  EXPECT_NEAR(errors[0], errors[2], 1e-8);
}

TEST(Sthosvd, FixedRanksAreRespected) {
  run_ranks(4, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 2, 1});
    const DistTensor x =
        data::make_low_rank(grid, Dims{8, 8, 6}, Dims{4, 4, 3}, 5, 0.2);
    SthosvdOptions opts;
    opts.fixed_ranks = {2, 3, 2};
    const auto result = core::st_hosvd(x, opts);
    EXPECT_EQ(result.tucker.core_dims(), (Dims{2, 3, 2}));
    for (int n = 0; n < 3; ++n) {
      EXPECT_EQ(result.tucker.factors[static_cast<std::size_t>(n)].cols(),
                opts.fixed_ranks[static_cast<std::size_t>(n)]);
    }
  });
}

TEST(Sthosvd, FactorsAreOrthonormal) {
  run_ranks(4, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 2, 1});
    const DistTensor x =
        data::make_low_rank(grid, Dims{8, 7, 6}, Dims{3, 3, 3}, 9, 0.1);
    const auto result = core::st_hosvd(x, SthosvdOptions{});
    for (const auto& u : result.tucker.factors) {
      EXPECT_LT(testing::orthonormality_defect(u), 1e-9);
    }
  });
}

TEST(Sthosvd, CoreNormPlusErrorAccountsForFullNorm) {
  // ‖X‖² = ‖G‖² + ‖X − X̃‖² for orthonormal factors (Pythagoras).
  run_ranks(4, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 2, 1});
    const DistTensor x =
        data::make_low_rank(grid, Dims{8, 8, 8}, Dims{3, 3, 3}, 11, 0.15);
    SthosvdOptions opts;
    opts.epsilon = 0.25;
    const auto result = core::st_hosvd(x, opts);
    const DistTensor xt = core::reconstruct(result.tucker);
    const double norm_x_sq = x.norm_squared();
    const double core_sq = result.tucker.core.norm_squared();
    const double err = core::normalized_error(x, xt);
    EXPECT_NEAR(core_sq + err * err * norm_x_sq, norm_x_sq,
                1e-8 * norm_x_sq);
  });
}

TEST(Sthosvd, ModeOrderDoesNotChangeErrorGuarantee) {
  const Dims dims{8, 6, 7};
  const double eps = 0.3;
  for (const auto strategy :
       {core::ModeOrderStrategy::Natural, core::ModeOrderStrategy::GreedyFlops}) {
    run_ranks(4, [&](mps::Comm& comm) {
      auto grid = dist::make_grid(comm, {2, 2, 1});
      const DistTensor x =
          data::make_low_rank(grid, dims, Dims{3, 2, 3}, 21, 0.1);
      SthosvdOptions opts;
      opts.epsilon = eps;
      opts.order_strategy = strategy;
      const auto result = core::st_hosvd(x, opts);
      const DistTensor xt = core::reconstruct(result.tucker);
      EXPECT_LE(core::normalized_error(x, xt), eps * 1.0000001);
    });
  }
}

TEST(Sthosvd, CustomModeOrderIsUsed) {
  run_ranks(2, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 1, 1});
    const DistTensor x =
        data::make_low_rank(grid, Dims{6, 6, 6}, Dims{2, 2, 2}, 1, 0.05);
    SthosvdOptions opts;
    opts.order_strategy = core::ModeOrderStrategy::Custom;
    opts.custom_order = {2, 0, 1};
    const auto result = core::st_hosvd(x, opts);
    EXPECT_EQ(result.mode_order_used, (std::vector<int>{2, 0, 1}));
  });
}

TEST(Sthosvd, SpectraHaveFullLengthPerMode) {
  run_ranks(2, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {1, 2, 1});
    const DistTensor x =
        data::make_low_rank(grid, Dims{7, 6, 5}, Dims{3, 3, 3}, 2, 0.1);
    const auto result = core::st_hosvd(x, SthosvdOptions{});
    ASSERT_EQ(result.mode_eigenvalues.size(), 3u);
    EXPECT_EQ(result.mode_eigenvalues[0].size(), 7u);
    EXPECT_EQ(result.mode_eigenvalues[1].size(), 6u);
    EXPECT_EQ(result.mode_eigenvalues[2].size(), 5u);
  });
}

TEST(Sthosvd, EpsilonZeroKeepsEverything) {
  run_ranks(2, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 1, 1});
    const DistTensor x =
        data::make_low_rank(grid, Dims{5, 4, 3}, Dims{5, 4, 3}, 3, 0.3);
    SthosvdOptions opts;
    opts.epsilon = 0.0;
    const auto result = core::st_hosvd(x, opts);
    // Full-rank data with eps = 0: nothing may be truncated.
    EXPECT_EQ(result.tucker.core_dims(), (Dims{5, 4, 3}));
    const dist::DistTensor xt = core::reconstruct(result.tucker);
    EXPECT_LT(core::normalized_error(x, xt), 1e-9);
  });
}

TEST(Sthosvd, TuckerCompressionAccountants) {
  run_ranks(1, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {1, 1, 1});
    const DistTensor x =
        data::make_low_rank(grid, Dims{10, 10, 10}, Dims{2, 2, 2}, 4, 0.0);
    const auto result = core::st_hosvd(x, SthosvdOptions{});
    const auto& t = result.tucker;
    EXPECT_EQ(t.original_elements(), 1000u);
    EXPECT_EQ(t.compressed_elements(), 8u + 3u * 20u);
    EXPECT_NEAR(t.compression_ratio(), 1000.0 / 68.0, 1e-12);
    EXPECT_NEAR(core::compression_ratio(Dims{10, 10, 10}, Dims{2, 2, 2}),
                t.compression_ratio(), 1e-12);
  });
}

TEST(Sthosvd, FourWayTensor) {
  run_ranks(8, [](mps::Comm& comm) {
    auto grid = dist::make_grid(comm, {2, 2, 2, 1});
    const DistTensor x = data::make_low_rank(grid, Dims{6, 6, 6, 5},
                                             Dims{2, 3, 2, 2}, 17, 0.0);
    SthosvdOptions opts;
    opts.epsilon = 1e-6;
    const auto result = core::st_hosvd(x, opts);
    EXPECT_EQ(result.tucker.core_dims(), (Dims{2, 3, 2, 2}));
    const DistTensor xt = core::reconstruct(result.tucker);
    EXPECT_LT(core::normalized_error(x, xt), 1e-6);
  });
}

}  // namespace
}  // namespace ptucker
