#include <gtest/gtest.h>

#include <set>

#include "mps/cart.hpp"
#include "test_utils.hpp"

namespace ptucker {
namespace {

using testing::run_ranks;

TEST(CartGrid, CoordinateRankRoundTrip) {
  run_ranks(12, [](mps::Comm& comm) {
    mps::CartGrid grid(comm, {3, 2, 2});
    const auto coords = grid.coords();
    EXPECT_EQ(grid.rank_of(coords), comm.rank());
    EXPECT_EQ(grid.coords_of(comm.rank()), coords);
    // Mode-1 varies fastest in the linearization.
    if (comm.rank() == 1) {
      EXPECT_EQ(coords[0], 1);
      EXPECT_EQ(coords[1], 0);
      EXPECT_EQ(coords[2], 0);
    }
  });
}

TEST(CartGrid, RejectsMismatchedShape) {
  EXPECT_THROW(run_ranks(6,
                         [](mps::Comm& comm) {
                           mps::CartGrid grid(comm, {2, 2});  // product 4 != 6
                         }),
               InvalidArgument);
}

TEST(CartGrid, ModeCommVariesOnlyThatMode) {
  run_ranks(12, [](mps::Comm& comm) {
    mps::CartGrid grid(comm, {3, 2, 2});
    for (int n = 0; n < 3; ++n) {
      const mps::Comm& mc = grid.mode_comm(n);
      ASSERT_TRUE(mc.valid());
      EXPECT_EQ(mc.size(), grid.extent(n));
      // The paper's convention: rank within the processor column equals the
      // mode coordinate.
      EXPECT_EQ(mc.rank(), grid.coord(n));
      // All members share the other coordinates: all-gather a linearized id
      // of the non-n coordinates and check it is constant across the comm.
      int id = 0;
      for (int m = 2; m >= 0; --m) {
        if (m != n) id = id * grid.extent(m) + grid.coord(m);
      }
      std::vector<int> ids(static_cast<std::size_t>(mc.size()));
      mps::allgather(mc, std::span<const int>(&id, 1), std::span<int>(ids));
      for (int other : ids) EXPECT_EQ(other, id);
    }
  });
}

TEST(CartGrid, SliceCommHoldsComplement) {
  run_ranks(12, [](mps::Comm& comm) {
    mps::CartGrid grid(comm, {3, 2, 2});
    for (int n = 0; n < 3; ++n) {
      const mps::Comm& sc = grid.slice_comm(n);
      ASSERT_TRUE(sc.valid());
      EXPECT_EQ(sc.size(), 12 / grid.extent(n));
      // All members share coordinate n.
      std::vector<int> coords(static_cast<std::size_t>(sc.size()));
      const int mine = grid.coord(n);
      mps::allgather(sc, std::span<const int>(&mine, 1),
                     std::span<int>(coords));
      for (int c : coords) EXPECT_EQ(c, mine);
    }
  });
}

TEST(CartGrid, ModeAndSliceCommsPartitionTheGrid) {
  run_ranks(8, [](mps::Comm& comm) {
    mps::CartGrid grid(comm, {2, 2, 2});
    for (int n = 0; n < 3; ++n) {
      // Every rank belongs to exactly one mode comm (of size Pn) and one
      // slice comm (of size P/Pn); their product covers the grid.
      EXPECT_EQ(grid.mode_comm(n).size() * grid.slice_comm(n).size(), 8);
    }
  });
}

TEST(CartGrid, TrivialExtentsAllowed) {
  run_ranks(4, [](mps::Comm& comm) {
    mps::CartGrid grid(comm, {1, 4, 1});
    EXPECT_EQ(grid.mode_comm(0).size(), 1);
    EXPECT_EQ(grid.mode_comm(1).size(), 4);
    EXPECT_EQ(grid.slice_comm(1).size(), 1);
    EXPECT_EQ(grid.coord(0), 0);
  });
}

TEST(GridShapes, AllShapesEnumeratesEveryFactorization) {
  const auto shapes = mps::all_grid_shapes(12, 2);
  // 12 = 1x12, 2x6, 3x4, 4x3, 6x2, 12x1.
  EXPECT_EQ(shapes.size(), 6u);
  std::set<std::vector<int>> unique(shapes.begin(), shapes.end());
  EXPECT_EQ(unique.size(), shapes.size());
  for (const auto& s : shapes) {
    EXPECT_EQ(s[0] * s[1], 12);
  }
}

TEST(GridShapes, AllShapesOrderThree) {
  const auto shapes = mps::all_grid_shapes(8, 3);
  // Number of ordered factorizations of 8 = 2^3 into 3 factors: C(3+2,2)=10.
  EXPECT_EQ(shapes.size(), 10u);
}

TEST(GridShapes, HeuristicPrefersUnitFirstExtent) {
  const auto shapes =
      mps::heuristic_grid_shapes(16, tensor::Dims{64, 64, 64, 64}, 4);
  ASSERT_FALSE(shapes.empty());
  EXPECT_EQ(shapes.front()[0], 1)
      << "paper Sec. VIII-B: best grids have P1 = 1";
}

TEST(GridShapes, HeuristicAvoidsExtentsLargerThanDims) {
  const auto shapes = mps::heuristic_grid_shapes(16, tensor::Dims{2, 64, 64}, 2);
  for (const auto& s : shapes) {
    EXPECT_LE(s[0], 2);
  }
}

}  // namespace
}  // namespace ptucker
